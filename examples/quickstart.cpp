// Quickstart: one invocation period of the bill capping algorithm.
//
// Builds the paper's three data centers and locational pricing policies,
// asks the cost minimizer (step 1) to place one hour of workload, then
// tightens the hourly budget until the capper has to throttle ordinary
// customers (step 2). Prints what each component decided.

#include <cstdio>
#include <exception>
#include <iostream>

#include "core/bill_capper.hpp"
#include "core/exit_codes.hpp"
#include "core/cost_model.hpp"
#include "datacenter/catalog.hpp"
#include "market/pricing_policy.hpp"
#include "util/table.hpp"

int run() {
  using namespace billcap;

  // The substrate: three sites (Section VI-A) under Policy 1 locational
  // step prices (Section VII-A), with background demand putting each
  // location near a price threshold.
  const std::vector<datacenter::DataCenter> sites =
      datacenter::paper_datacenters();
  const std::vector<market::PricingPolicy> policies =
      market::paper_policies(/*level=*/1);
  const std::vector<double> background_mw = {190.0, 205.0, 225.0};

  std::printf("Sites and pricing policies:\n");
  for (std::size_t i = 0; i < sites.size(); ++i) {
    std::printf("  %-14s cap %.0f MW | policy: %s\n",
                sites[i].name().c_str(), sites[i].spec().power_cap_mw,
                policies[i].to_string().c_str());
  }

  // One hour of workload: 6e11 requests/hour, 80 % premium.
  const double premium = 4.8e11;
  const double ordinary = 1.2e11;
  const core::BillCapper capper(sites, policies);

  auto report = [&](const char* label, double budget) {
    const core::CappingOutcome outcome =
        capper.decide(premium, ordinary, background_mw, budget);
    const core::GroundTruth truth = core::evaluate_allocation(
        sites, policies, background_mw, outcome.allocation.lambda_vector());

    std::printf("\n=== %s (hourly budget $%.0f) -> mode %s ===\n", label,
                budget, core::to_string(outcome.mode));
    util::Table table({"site", "Greq/h", "servers", "power MW", "$/MWh",
                       "cost $"});
    for (std::size_t i = 0; i < truth.sites.size(); ++i) {
      const auto& s = truth.sites[i];
      table.add_row({sites[i].name(), util::format_fixed(s.lambda / 1e9, 1),
                     std::to_string(s.servers),
                     util::format_fixed(s.power.total_mw(), 2),
                     util::format_fixed(s.price_per_mwh, 2),
                     util::format_fixed(s.cost, 0)});
    }
    table.print(std::cout);
    std::printf("total: $%.0f/h | served premium %.0f%% | ordinary %.0f%%\n",
                truth.total_cost,
                100.0 * outcome.served_premium / premium,
                100.0 * outcome.served_ordinary / ordinary);
  };

  report("Ample budget: pure cost minimization", 10'000.0);
  report("Tight budget: ordinary traffic throttled", 1'200.0);
  report("Punishing budget: premium-only fallback", 300.0);
  return billcap::core::kExitSuccess;
}

int main() {
  try {
    return run();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return billcap::core::kExitRuntimeError;
  }
}
