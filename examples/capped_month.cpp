// capped_month — simulate a full budgeting period end to end.
//
// Demonstrates the closed loop the paper's architecture (Figure 2)
// describes: the budgeter turns a monthly budget into hourly budgets from
// hour-of-week history, the bill capper allocates each hour's workload,
// ground truth billing feeds the spend back, and the monthly aggregates
// show where ordinary traffic was traded for budget compliance.
//
// Usage: capped_month [monthly_budget_dollars] [policy_level]
//   defaults: 1.0e6, 1

#include <cstdio>
#include <cstdlib>
#include <exception>
#include <iostream>

#include "core/exit_codes.hpp"
#include "core/simulator.hpp"
#include "util/calendar.hpp"
#include "util/table.hpp"

int run(int argc, char** argv) {
  using namespace billcap;

  core::SimulationConfig config;
  config.monthly_budget = argc > 1 ? std::atof(argv[1]) : 1.0e6;
  config.policy_level = argc > 2 ? std::atoi(argv[2]) : 1;

  std::printf("Simulating November under a $%.2fM budget, Policy %d...\n",
              config.monthly_budget / 1e6, config.policy_level);
  const core::Simulator sim(config);
  const core::MonthlyResult r = sim.run(core::Strategy::kCostCapping);

  // Daily digest.
  util::Table table({"day", "arrivals (G)", "served (G)", "ord served %",
                     "cost $", "budget $", "capped hrs", "prem-only hrs"});
  for (std::size_t day = 0; day < r.hours.size() / 24; ++day) {
    double arrivals = 0.0;
    double served = 0.0;
    double ord_in = 0.0;
    double ord_served = 0.0;
    double cost = 0.0;
    double budget = 0.0;
    int capped = 0;
    int prem_only = 0;
    for (std::size_t h = day * 24; h < (day + 1) * 24; ++h) {
      const auto& rec = r.hours[h];
      arrivals += rec.arrivals;
      served += rec.served_premium + rec.served_ordinary;
      ord_in += rec.ordinary_arrivals;
      ord_served += rec.served_ordinary;
      cost += rec.cost;
      budget += rec.hourly_budget;
      if (rec.mode == core::CappingOutcome::Mode::kCapped) ++capped;
      if (rec.mode == core::CappingOutcome::Mode::kPremiumOnly) ++prem_only;
    }
    table.add_row({std::to_string(day),
                   util::format_fixed(arrivals / 1e9, 0),
                   util::format_fixed(served / 1e9, 0),
                   util::format_fixed(100.0 * ord_served / ord_in, 1),
                   util::format_fixed(cost, 0),
                   util::format_fixed(budget, 0), std::to_string(capped),
                   std::to_string(prem_only)});
  }
  table.print(std::cout);

  std::printf(
      "\nMonth: cost $%.0f / budget $%.0f (%.1f%%) | premium %.2f%% | "
      "ordinary %.2f%% | max solve %.2f ms\n",
      r.total_cost, r.monthly_budget, 100.0 * r.budget_utilization(),
      100.0 * r.premium_throughput_ratio(),
      100.0 * r.ordinary_throughput_ratio(), r.max_solve_ms);
  return billcap::core::kExitSuccess;
}

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return billcap::core::kExitRuntimeError;
  }
}
