// heterogeneous_fleet — the Section IX extension in action: sites with
// mixed server generations.
//
// Builds two sites that each host an old Pentium-4 pool and a newer
// Athlon pool, shows the intra-site local optimizer splitting load across
// classes (cheap first), and runs the cost-minimization MILP over the
// multi-segment power curves.

#include <cstdio>
#include <exception>
#include <iostream>
#include <vector>

#include "core/cost_minimizer.hpp"
#include "core/exit_codes.hpp"
#include "core/cost_model.hpp"
#include "datacenter/heterogeneous.hpp"
#include "market/pricing_policy.hpp"
#include "util/table.hpp"

namespace {

using namespace billcap;

datacenter::ServerPool make_pool(std::string name, double req_per_sec,
                                 double watts, std::uint64_t count) {
  return datacenter::ServerPool{
      .name = std::move(name),
      .queue = {.service_rate = req_per_sec * 3600.0, .ca2 = 1.0, .cb2 = 1.0},
      .server = datacenter::ServerModel::from_active_power(watts, 0.8),
      .operating_utilization = 0.8,
      .count = count,
  };
}

}  // namespace

int run() {
  using namespace billcap;

  const std::vector<datacenter::HeterogeneousSite> sites = {
      datacenter::HeterogeneousSite::from_pools(
          "east",
          {make_pool("p4-legacy", 300.0, 134.0, 80'000),
           make_pool("athlon-new", 500.0, 88.88, 80'000)},
          2.0 / (300.0 * 3600.0), 45.0),
      datacenter::HeterogeneousSite::from_pools(
          "west",
          {make_pool("p4-legacy", 300.0, 134.0, 40'000),
           make_pool("pentiumd", 725.0, 149.9, 100'000)},
          2.0 / (300.0 * 3600.0), 50.0),
  };
  const auto policies = market::paper_policies(1);
  const std::vector<double> demand = {210.0, 180.0};

  std::printf("Part 1: the intra-site local optimizer (site 'east')\n\n");
  util::Table split({"load (Greq/h)", "cheap-class G", "legacy G",
                     "servers cheap", "servers legacy", "power MW"});
  const double cap = sites[0].max_requests_per_hour();
  for (double frac : {0.2, 0.5, 0.8, 0.99}) {
    const auto d = sites[0].dispatch(frac * cap);
    split.add_row({util::format_fixed(frac * cap / 1e9, 0),
                   util::format_fixed(d.pool_lambda[0] / 1e9, 0),
                   util::format_fixed(d.pool_lambda[1] / 1e9, 0),
                   std::to_string(d.pool_servers[0]),
                   std::to_string(d.pool_servers[1]),
                   util::format_fixed(d.total_mw(), 2)});
  }
  split.print(std::cout);
  std::printf("\nThe efficient class fills first; the legacy pool only wakes "
              "up when needed.\n");

  std::printf("\nPart 2: network-level cost minimization over both sites\n\n");
  std::vector<core::SiteModel> models = {
      core::make_heterogeneous_site_model(sites[0], policies[0], demand[0]),
      core::make_heterogeneous_site_model(sites[1], policies[1], demand[1])};
  const double lambda = 0.7 * core::system_capacity(models);
  const core::AllocationResult r =
      core::minimize_cost_over_models(models, lambda);
  if (!r.ok()) {
    std::printf("allocation failed: %s\n", lp::to_string(r.status));
    return billcap::core::kExitRuntimeError;
  }
  util::Table alloc({"site", "Greq/h", "believed power MW", "exact power MW",
                     "believed cost $"});
  for (std::size_t i = 0; i < sites.size(); ++i) {
    alloc.add_row({sites[i].name(),
                   util::format_fixed(r.sites[i].lambda / 1e9, 0),
                   util::format_fixed(r.sites[i].power_mw, 2),
                   util::format_fixed(sites[i].power_mw(r.sites[i].lambda), 2),
                   util::format_fixed(r.sites[i].cost, 0)});
  }
  alloc.print(std::cout);
  std::printf("\ntotal believed cost: $%.0f/h for %.0f Greq/h\n",
              r.predicted_cost, lambda / 1e9);
  return billcap::core::kExitSuccess;
}

int main() {
  try {
    return run();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return billcap::core::kExitRuntimeError;
  }
}
