// opf_pricing — derive locational step pricing policies from the physics
// of a transmission grid.
//
// Walks the PJM five-bus system through a load sweep, solving a DC optimal
// power flow at each point with the repository's own simplex. The
// locational marginal price at each bus is the dual variable of its nodal
// balance constraint; wherever a generator or line limit starts to bind,
// the LMP vector jumps — producing exactly the step pricing policies the
// bill capper consumes (Figure 1 / Section II).
//
// Usage: opf_pricing [max_system_load_mw]   (default 920)

#include <cstdio>
#include <cstdlib>
#include <exception>
#include <iostream>

#include "core/exit_codes.hpp"
#include "market/dcopf.hpp"
#include "market/pjm5.hpp"
#include "market/policy_derivation.hpp"
#include "util/table.hpp"

int run(int argc, char** argv) {
  using namespace billcap;

  const double max_load = argc > 1 ? std::atof(argv[1]) : 920.0;
  const market::Grid grid = market::pjm5_grid();

  std::printf("PJM five-bus system: %d buses, %d lines, %d generators "
              "(%.0f MW capacity)\n\n",
              grid.num_buses(), grid.num_lines(), grid.num_generators(),
              grid.total_capacity_mw());

  // Snapshot dispatches at a few loads.
  util::Table dispatch({"system MW", "Alta", "ParkCity", "Solitude",
                        "Sundance", "Brighton", "LMP B", "LMP C", "LMP D"});
  for (double load : {150.0, 450.0, 650.0, 800.0, 900.0}) {
    if (load > max_load) break;
    const market::DcOpfResult r =
        market::solve_dcopf(grid, market::pjm5_loads(load));
    if (!r.ok()) {
      std::printf("OPF infeasible at %.0f MW\n", load);
      continue;
    }
    dispatch.add_numeric_row({load, r.dispatch_mw[0], r.dispatch_mw[1],
                              r.dispatch_mw[2], r.dispatch_mw[3],
                              r.dispatch_mw[4], r.lmp[1], r.lmp[2], r.lmp[3]},
                             1);
  }
  dispatch.print(std::cout);
  std::printf("\nBrighton (cheapest, bus E) carries the system until its "
              "600 MW limit binds;\nthe 240 MW D-E line separates prices "
              "further.\n\n");

  // Full derivation into step policies.
  const auto policies = market::derive_policies_from_opf(
      grid, market::pjm5_load_buses(), max_load, 2.0);
  const char* names[3] = {"B", "C", "D"};
  for (std::size_t i = 0; i < policies.size(); ++i) {
    std::printf("location %s policy: %s\n", names[i],
                policies[i].to_string().c_str());
  }
  std::printf("\nThese derived step curves are the mechanism behind the "
              "canonical Policy 1\nthe evaluation uses "
              "(market::paper_policies).\n");
  return billcap::core::kExitSuccess;
}

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return billcap::core::kExitRuntimeError;
  }
}
