// price_maker_analysis — why a cloud-scale data center cannot pretend to
// be a price taker.
//
// Sweeps one site's request load and shows, side by side:
//   * the locational price the load actually triggers (the site's own
//     draw crosses the policy's thresholds), and
//   * the bill a price-taker model would have predicted at the flat
//     average price.
// Then compares a whole hour of the network allocated both ways.

#include <cstdio>
#include <exception>
#include <iostream>
#include <vector>

#include "core/cost_minimizer.hpp"
#include "core/exit_codes.hpp"
#include "core/cost_model.hpp"
#include "core/formulation.hpp"
#include "datacenter/catalog.hpp"
#include "market/pricing_policy.hpp"
#include "util/table.hpp"

int run() {
  using namespace billcap;

  const auto sites = datacenter::paper_datacenters();
  const auto policies = market::paper_policies(1);
  const std::vector<double> demand = {228.0, 182.0, 172.0};

  std::printf("Part 1: one site's bill as its own load grows (dc1, d = %.0f "
              "MW background)\n\n",
              demand[0]);
  util::Table sweep({"Greq/h", "site power MW", "location total MW",
                     "real $/MWh", "real bill $", "price-taker bill $"});
  const double flat = policies[0].average_price();
  for (double greq = 50.0; greq <= 500.0; greq += 50.0) {
    const double lambda = greq * 1e9;
    const double power = sites[0].power_mw(lambda);
    const double total = power + demand[0];
    const double price = policies[0].price_at(total);
    sweep.add_numeric_row({greq, power, total, price, price * power,
                           flat * power},
                          2);
  }
  sweep.print(std::cout);
  std::printf("\nThe real price steps up as the site itself crosses 237.3 "
              "and 266.7 MW\n— the price-maker effect the paper models "
              "(Section II).\n");

  std::printf("\nPart 2: one hour of the whole network, 9e11 requests\n\n");
  const double lambda = 9e11;
  const core::AllocationResult maker =
      core::minimize_cost(sites, policies, demand, lambda);

  // A price taker with full power awareness (only the price model differs).
  std::vector<core::SiteModel> taker_models;
  for (std::size_t i = 0; i < sites.size(); ++i)
    taker_models.push_back(core::make_site_model(
        sites[i], market::PricingPolicy::flat(policies[i].average_price()),
        0.0, true));
  const core::AllocationResult taker =
      core::minimize_cost_over_models(taker_models, lambda);

  util::Table compare({"strategy", "dc1 G", "dc2 G", "dc3 G",
                       "believed $", "billed $"});
  for (const auto* r : {&maker, &taker}) {
    const core::GroundTruth truth =
        core::evaluate_allocation(sites, policies, demand, r->lambda_vector());
    compare.add_row({r == &maker ? "price maker" : "price taker",
                     util::format_fixed(r->sites[0].lambda / 1e9, 0),
                     util::format_fixed(r->sites[1].lambda / 1e9, 0),
                     util::format_fixed(r->sites[2].lambda / 1e9, 0),
                     util::format_fixed(r->predicted_cost, 0),
                     util::format_fixed(truth.total_cost, 0)});
  }
  compare.print(std::cout);
  std::printf("\nSame workload, same physics — the taker's allocation is "
              "blind to the steps\nit triggers and pays for it at billing "
              "time.\n");
  return billcap::core::kExitSuccess;
}

int main() {
  try {
    return run();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return billcap::core::kExitRuntimeError;
  }
}
