file(REMOVE_RECURSE
  "CMakeFiles/capped_month.dir/capped_month.cpp.o"
  "CMakeFiles/capped_month.dir/capped_month.cpp.o.d"
  "capped_month"
  "capped_month.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/capped_month.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
