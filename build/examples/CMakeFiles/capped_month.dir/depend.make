# Empty dependencies file for capped_month.
# This may be replaced when dependencies are built.
