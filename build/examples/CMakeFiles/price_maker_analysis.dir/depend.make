# Empty dependencies file for price_maker_analysis.
# This may be replaced when dependencies are built.
