file(REMOVE_RECURSE
  "CMakeFiles/price_maker_analysis.dir/price_maker_analysis.cpp.o"
  "CMakeFiles/price_maker_analysis.dir/price_maker_analysis.cpp.o.d"
  "price_maker_analysis"
  "price_maker_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/price_maker_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
