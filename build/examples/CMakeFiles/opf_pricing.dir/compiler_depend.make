# Empty compiler generated dependencies file for opf_pricing.
# This may be replaced when dependencies are built.
