file(REMOVE_RECURSE
  "CMakeFiles/opf_pricing.dir/opf_pricing.cpp.o"
  "CMakeFiles/opf_pricing.dir/opf_pricing.cpp.o.d"
  "opf_pricing"
  "opf_pricing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/opf_pricing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
