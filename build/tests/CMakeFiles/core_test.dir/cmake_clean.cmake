file(REMOVE_RECURSE
  "CMakeFiles/core_test.dir/core/baselines_test.cpp.o"
  "CMakeFiles/core_test.dir/core/baselines_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/bill_capper_test.cpp.o"
  "CMakeFiles/core_test.dir/core/bill_capper_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/budgeter_test.cpp.o"
  "CMakeFiles/core_test.dir/core/budgeter_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/cost_minimizer_test.cpp.o"
  "CMakeFiles/core_test.dir/core/cost_minimizer_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/cost_model_test.cpp.o"
  "CMakeFiles/core_test.dir/core/cost_model_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/formulation_test.cpp.o"
  "CMakeFiles/core_test.dir/core/formulation_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/heterogeneous_allocation_test.cpp.o"
  "CMakeFiles/core_test.dir/core/heterogeneous_allocation_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/hierarchical_test.cpp.o"
  "CMakeFiles/core_test.dir/core/hierarchical_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/simulator_test.cpp.o"
  "CMakeFiles/core_test.dir/core/simulator_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/throughput_maximizer_test.cpp.o"
  "CMakeFiles/core_test.dir/core/throughput_maximizer_test.cpp.o.d"
  "core_test"
  "core_test.pdb"
  "core_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
