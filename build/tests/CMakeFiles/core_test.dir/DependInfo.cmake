
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/baselines_test.cpp" "tests/CMakeFiles/core_test.dir/core/baselines_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/baselines_test.cpp.o.d"
  "/root/repo/tests/core/bill_capper_test.cpp" "tests/CMakeFiles/core_test.dir/core/bill_capper_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/bill_capper_test.cpp.o.d"
  "/root/repo/tests/core/budgeter_test.cpp" "tests/CMakeFiles/core_test.dir/core/budgeter_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/budgeter_test.cpp.o.d"
  "/root/repo/tests/core/cost_minimizer_test.cpp" "tests/CMakeFiles/core_test.dir/core/cost_minimizer_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/cost_minimizer_test.cpp.o.d"
  "/root/repo/tests/core/cost_model_test.cpp" "tests/CMakeFiles/core_test.dir/core/cost_model_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/cost_model_test.cpp.o.d"
  "/root/repo/tests/core/formulation_test.cpp" "tests/CMakeFiles/core_test.dir/core/formulation_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/formulation_test.cpp.o.d"
  "/root/repo/tests/core/heterogeneous_allocation_test.cpp" "tests/CMakeFiles/core_test.dir/core/heterogeneous_allocation_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/heterogeneous_allocation_test.cpp.o.d"
  "/root/repo/tests/core/hierarchical_test.cpp" "tests/CMakeFiles/core_test.dir/core/hierarchical_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/hierarchical_test.cpp.o.d"
  "/root/repo/tests/core/simulator_test.cpp" "tests/CMakeFiles/core_test.dir/core/simulator_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/simulator_test.cpp.o.d"
  "/root/repo/tests/core/throughput_maximizer_test.cpp" "tests/CMakeFiles/core_test.dir/core/throughput_maximizer_test.cpp.o" "gcc" "tests/CMakeFiles/core_test.dir/core/throughput_maximizer_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/billcap_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/billcap_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/market/CMakeFiles/billcap_market.dir/DependInfo.cmake"
  "/root/repo/build/src/datacenter/CMakeFiles/billcap_datacenter.dir/DependInfo.cmake"
  "/root/repo/build/src/queueing/CMakeFiles/billcap_queueing.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/billcap_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/billcap_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
