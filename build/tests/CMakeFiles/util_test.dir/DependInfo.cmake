
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/util/calendar_test.cpp" "tests/CMakeFiles/util_test.dir/util/calendar_test.cpp.o" "gcc" "tests/CMakeFiles/util_test.dir/util/calendar_test.cpp.o.d"
  "/root/repo/tests/util/cli_test.cpp" "tests/CMakeFiles/util_test.dir/util/cli_test.cpp.o" "gcc" "tests/CMakeFiles/util_test.dir/util/cli_test.cpp.o.d"
  "/root/repo/tests/util/csv_test.cpp" "tests/CMakeFiles/util_test.dir/util/csv_test.cpp.o" "gcc" "tests/CMakeFiles/util_test.dir/util/csv_test.cpp.o.d"
  "/root/repo/tests/util/rng_test.cpp" "tests/CMakeFiles/util_test.dir/util/rng_test.cpp.o" "gcc" "tests/CMakeFiles/util_test.dir/util/rng_test.cpp.o.d"
  "/root/repo/tests/util/stats_test.cpp" "tests/CMakeFiles/util_test.dir/util/stats_test.cpp.o" "gcc" "tests/CMakeFiles/util_test.dir/util/stats_test.cpp.o.d"
  "/root/repo/tests/util/table_test.cpp" "tests/CMakeFiles/util_test.dir/util/table_test.cpp.o" "gcc" "tests/CMakeFiles/util_test.dir/util/table_test.cpp.o.d"
  "/root/repo/tests/util/thread_pool_test.cpp" "tests/CMakeFiles/util_test.dir/util/thread_pool_test.cpp.o" "gcc" "tests/CMakeFiles/util_test.dir/util/thread_pool_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/billcap_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/billcap_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/market/CMakeFiles/billcap_market.dir/DependInfo.cmake"
  "/root/repo/build/src/datacenter/CMakeFiles/billcap_datacenter.dir/DependInfo.cmake"
  "/root/repo/build/src/queueing/CMakeFiles/billcap_queueing.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/billcap_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/billcap_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
