
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/integration/end_to_end_test.cpp" "tests/CMakeFiles/integration_test.dir/integration/end_to_end_test.cpp.o" "gcc" "tests/CMakeFiles/integration_test.dir/integration/end_to_end_test.cpp.o.d"
  "/root/repo/tests/integration/paper_shapes_test.cpp" "tests/CMakeFiles/integration_test.dir/integration/paper_shapes_test.cpp.o" "gcc" "tests/CMakeFiles/integration_test.dir/integration/paper_shapes_test.cpp.o.d"
  "/root/repo/tests/integration/robustness_test.cpp" "tests/CMakeFiles/integration_test.dir/integration/robustness_test.cpp.o" "gcc" "tests/CMakeFiles/integration_test.dir/integration/robustness_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/billcap_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/billcap_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/market/CMakeFiles/billcap_market.dir/DependInfo.cmake"
  "/root/repo/build/src/datacenter/CMakeFiles/billcap_datacenter.dir/DependInfo.cmake"
  "/root/repo/build/src/queueing/CMakeFiles/billcap_queueing.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/billcap_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/billcap_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
