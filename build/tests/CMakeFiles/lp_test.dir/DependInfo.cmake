
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/lp/lp_io_test.cpp" "tests/CMakeFiles/lp_test.dir/lp/lp_io_test.cpp.o" "gcc" "tests/CMakeFiles/lp_test.dir/lp/lp_io_test.cpp.o.d"
  "/root/repo/tests/lp/milp_test.cpp" "tests/CMakeFiles/lp_test.dir/lp/milp_test.cpp.o" "gcc" "tests/CMakeFiles/lp_test.dir/lp/milp_test.cpp.o.d"
  "/root/repo/tests/lp/piecewise_test.cpp" "tests/CMakeFiles/lp_test.dir/lp/piecewise_test.cpp.o" "gcc" "tests/CMakeFiles/lp_test.dir/lp/piecewise_test.cpp.o.d"
  "/root/repo/tests/lp/presolve_test.cpp" "tests/CMakeFiles/lp_test.dir/lp/presolve_test.cpp.o" "gcc" "tests/CMakeFiles/lp_test.dir/lp/presolve_test.cpp.o.d"
  "/root/repo/tests/lp/problem_test.cpp" "tests/CMakeFiles/lp_test.dir/lp/problem_test.cpp.o" "gcc" "tests/CMakeFiles/lp_test.dir/lp/problem_test.cpp.o.d"
  "/root/repo/tests/lp/simplex_test.cpp" "tests/CMakeFiles/lp_test.dir/lp/simplex_test.cpp.o" "gcc" "tests/CMakeFiles/lp_test.dir/lp/simplex_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/billcap_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/billcap_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/market/CMakeFiles/billcap_market.dir/DependInfo.cmake"
  "/root/repo/build/src/datacenter/CMakeFiles/billcap_datacenter.dir/DependInfo.cmake"
  "/root/repo/build/src/queueing/CMakeFiles/billcap_queueing.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/billcap_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/billcap_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
