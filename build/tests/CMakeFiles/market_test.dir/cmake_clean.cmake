file(REMOVE_RECURSE
  "CMakeFiles/market_test.dir/market/background_demand_test.cpp.o"
  "CMakeFiles/market_test.dir/market/background_demand_test.cpp.o.d"
  "CMakeFiles/market_test.dir/market/dcopf_test.cpp.o"
  "CMakeFiles/market_test.dir/market/dcopf_test.cpp.o.d"
  "CMakeFiles/market_test.dir/market/grid_test.cpp.o"
  "CMakeFiles/market_test.dir/market/grid_test.cpp.o.d"
  "CMakeFiles/market_test.dir/market/pjm5_test.cpp.o"
  "CMakeFiles/market_test.dir/market/pjm5_test.cpp.o.d"
  "CMakeFiles/market_test.dir/market/policy_derivation_test.cpp.o"
  "CMakeFiles/market_test.dir/market/policy_derivation_test.cpp.o.d"
  "CMakeFiles/market_test.dir/market/pricing_policy_test.cpp.o"
  "CMakeFiles/market_test.dir/market/pricing_policy_test.cpp.o.d"
  "CMakeFiles/market_test.dir/market/rebate_test.cpp.o"
  "CMakeFiles/market_test.dir/market/rebate_test.cpp.o.d"
  "market_test"
  "market_test.pdb"
  "market_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/market_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
