
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/datacenter/catalog.cpp" "src/datacenter/CMakeFiles/billcap_datacenter.dir/catalog.cpp.o" "gcc" "src/datacenter/CMakeFiles/billcap_datacenter.dir/catalog.cpp.o.d"
  "/root/repo/src/datacenter/cooling.cpp" "src/datacenter/CMakeFiles/billcap_datacenter.dir/cooling.cpp.o" "gcc" "src/datacenter/CMakeFiles/billcap_datacenter.dir/cooling.cpp.o.d"
  "/root/repo/src/datacenter/datacenter.cpp" "src/datacenter/CMakeFiles/billcap_datacenter.dir/datacenter.cpp.o" "gcc" "src/datacenter/CMakeFiles/billcap_datacenter.dir/datacenter.cpp.o.d"
  "/root/repo/src/datacenter/fat_tree.cpp" "src/datacenter/CMakeFiles/billcap_datacenter.dir/fat_tree.cpp.o" "gcc" "src/datacenter/CMakeFiles/billcap_datacenter.dir/fat_tree.cpp.o.d"
  "/root/repo/src/datacenter/heterogeneous.cpp" "src/datacenter/CMakeFiles/billcap_datacenter.dir/heterogeneous.cpp.o" "gcc" "src/datacenter/CMakeFiles/billcap_datacenter.dir/heterogeneous.cpp.o.d"
  "/root/repo/src/datacenter/server.cpp" "src/datacenter/CMakeFiles/billcap_datacenter.dir/server.cpp.o" "gcc" "src/datacenter/CMakeFiles/billcap_datacenter.dir/server.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/queueing/CMakeFiles/billcap_queueing.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/billcap_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
