file(REMOVE_RECURSE
  "CMakeFiles/billcap_datacenter.dir/catalog.cpp.o"
  "CMakeFiles/billcap_datacenter.dir/catalog.cpp.o.d"
  "CMakeFiles/billcap_datacenter.dir/cooling.cpp.o"
  "CMakeFiles/billcap_datacenter.dir/cooling.cpp.o.d"
  "CMakeFiles/billcap_datacenter.dir/datacenter.cpp.o"
  "CMakeFiles/billcap_datacenter.dir/datacenter.cpp.o.d"
  "CMakeFiles/billcap_datacenter.dir/fat_tree.cpp.o"
  "CMakeFiles/billcap_datacenter.dir/fat_tree.cpp.o.d"
  "CMakeFiles/billcap_datacenter.dir/heterogeneous.cpp.o"
  "CMakeFiles/billcap_datacenter.dir/heterogeneous.cpp.o.d"
  "CMakeFiles/billcap_datacenter.dir/server.cpp.o"
  "CMakeFiles/billcap_datacenter.dir/server.cpp.o.d"
  "libbillcap_datacenter.a"
  "libbillcap_datacenter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/billcap_datacenter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
