file(REMOVE_RECURSE
  "libbillcap_datacenter.a"
)
