# Empty compiler generated dependencies file for billcap_datacenter.
# This may be replaced when dependencies are built.
