file(REMOVE_RECURSE
  "libbillcap_market.a"
)
