
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/market/background_demand.cpp" "src/market/CMakeFiles/billcap_market.dir/background_demand.cpp.o" "gcc" "src/market/CMakeFiles/billcap_market.dir/background_demand.cpp.o.d"
  "/root/repo/src/market/dcopf.cpp" "src/market/CMakeFiles/billcap_market.dir/dcopf.cpp.o" "gcc" "src/market/CMakeFiles/billcap_market.dir/dcopf.cpp.o.d"
  "/root/repo/src/market/grid.cpp" "src/market/CMakeFiles/billcap_market.dir/grid.cpp.o" "gcc" "src/market/CMakeFiles/billcap_market.dir/grid.cpp.o.d"
  "/root/repo/src/market/pjm5.cpp" "src/market/CMakeFiles/billcap_market.dir/pjm5.cpp.o" "gcc" "src/market/CMakeFiles/billcap_market.dir/pjm5.cpp.o.d"
  "/root/repo/src/market/policy_derivation.cpp" "src/market/CMakeFiles/billcap_market.dir/policy_derivation.cpp.o" "gcc" "src/market/CMakeFiles/billcap_market.dir/policy_derivation.cpp.o.d"
  "/root/repo/src/market/pricing_policy.cpp" "src/market/CMakeFiles/billcap_market.dir/pricing_policy.cpp.o" "gcc" "src/market/CMakeFiles/billcap_market.dir/pricing_policy.cpp.o.d"
  "/root/repo/src/market/rebate.cpp" "src/market/CMakeFiles/billcap_market.dir/rebate.cpp.o" "gcc" "src/market/CMakeFiles/billcap_market.dir/rebate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/lp/CMakeFiles/billcap_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/billcap_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
