# Empty compiler generated dependencies file for billcap_market.
# This may be replaced when dependencies are built.
