file(REMOVE_RECURSE
  "CMakeFiles/billcap_market.dir/background_demand.cpp.o"
  "CMakeFiles/billcap_market.dir/background_demand.cpp.o.d"
  "CMakeFiles/billcap_market.dir/dcopf.cpp.o"
  "CMakeFiles/billcap_market.dir/dcopf.cpp.o.d"
  "CMakeFiles/billcap_market.dir/grid.cpp.o"
  "CMakeFiles/billcap_market.dir/grid.cpp.o.d"
  "CMakeFiles/billcap_market.dir/pjm5.cpp.o"
  "CMakeFiles/billcap_market.dir/pjm5.cpp.o.d"
  "CMakeFiles/billcap_market.dir/policy_derivation.cpp.o"
  "CMakeFiles/billcap_market.dir/policy_derivation.cpp.o.d"
  "CMakeFiles/billcap_market.dir/pricing_policy.cpp.o"
  "CMakeFiles/billcap_market.dir/pricing_policy.cpp.o.d"
  "CMakeFiles/billcap_market.dir/rebate.cpp.o"
  "CMakeFiles/billcap_market.dir/rebate.cpp.o.d"
  "libbillcap_market.a"
  "libbillcap_market.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/billcap_market.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
