# Empty dependencies file for billcap_workload.
# This may be replaced when dependencies are built.
