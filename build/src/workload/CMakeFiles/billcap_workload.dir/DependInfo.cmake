
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/predictor.cpp" "src/workload/CMakeFiles/billcap_workload.dir/predictor.cpp.o" "gcc" "src/workload/CMakeFiles/billcap_workload.dir/predictor.cpp.o.d"
  "/root/repo/src/workload/trace.cpp" "src/workload/CMakeFiles/billcap_workload.dir/trace.cpp.o" "gcc" "src/workload/CMakeFiles/billcap_workload.dir/trace.cpp.o.d"
  "/root/repo/src/workload/trace_stats.cpp" "src/workload/CMakeFiles/billcap_workload.dir/trace_stats.cpp.o" "gcc" "src/workload/CMakeFiles/billcap_workload.dir/trace_stats.cpp.o.d"
  "/root/repo/src/workload/wiki_synth.cpp" "src/workload/CMakeFiles/billcap_workload.dir/wiki_synth.cpp.o" "gcc" "src/workload/CMakeFiles/billcap_workload.dir/wiki_synth.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/billcap_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
