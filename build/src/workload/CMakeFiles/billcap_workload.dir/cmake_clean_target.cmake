file(REMOVE_RECURSE
  "libbillcap_workload.a"
)
