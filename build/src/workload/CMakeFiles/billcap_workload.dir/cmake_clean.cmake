file(REMOVE_RECURSE
  "CMakeFiles/billcap_workload.dir/predictor.cpp.o"
  "CMakeFiles/billcap_workload.dir/predictor.cpp.o.d"
  "CMakeFiles/billcap_workload.dir/trace.cpp.o"
  "CMakeFiles/billcap_workload.dir/trace.cpp.o.d"
  "CMakeFiles/billcap_workload.dir/trace_stats.cpp.o"
  "CMakeFiles/billcap_workload.dir/trace_stats.cpp.o.d"
  "CMakeFiles/billcap_workload.dir/wiki_synth.cpp.o"
  "CMakeFiles/billcap_workload.dir/wiki_synth.cpp.o.d"
  "libbillcap_workload.a"
  "libbillcap_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/billcap_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
