# Empty dependencies file for billcap_util.
# This may be replaced when dependencies are built.
