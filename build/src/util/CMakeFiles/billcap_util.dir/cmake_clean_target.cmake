file(REMOVE_RECURSE
  "libbillcap_util.a"
)
