file(REMOVE_RECURSE
  "CMakeFiles/billcap_util.dir/calendar.cpp.o"
  "CMakeFiles/billcap_util.dir/calendar.cpp.o.d"
  "CMakeFiles/billcap_util.dir/cli.cpp.o"
  "CMakeFiles/billcap_util.dir/cli.cpp.o.d"
  "CMakeFiles/billcap_util.dir/csv.cpp.o"
  "CMakeFiles/billcap_util.dir/csv.cpp.o.d"
  "CMakeFiles/billcap_util.dir/rng.cpp.o"
  "CMakeFiles/billcap_util.dir/rng.cpp.o.d"
  "CMakeFiles/billcap_util.dir/stats.cpp.o"
  "CMakeFiles/billcap_util.dir/stats.cpp.o.d"
  "CMakeFiles/billcap_util.dir/table.cpp.o"
  "CMakeFiles/billcap_util.dir/table.cpp.o.d"
  "CMakeFiles/billcap_util.dir/thread_pool.cpp.o"
  "CMakeFiles/billcap_util.dir/thread_pool.cpp.o.d"
  "libbillcap_util.a"
  "libbillcap_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/billcap_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
