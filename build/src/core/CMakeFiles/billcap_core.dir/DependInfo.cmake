
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/baselines.cpp" "src/core/CMakeFiles/billcap_core.dir/baselines.cpp.o" "gcc" "src/core/CMakeFiles/billcap_core.dir/baselines.cpp.o.d"
  "/root/repo/src/core/bill_capper.cpp" "src/core/CMakeFiles/billcap_core.dir/bill_capper.cpp.o" "gcc" "src/core/CMakeFiles/billcap_core.dir/bill_capper.cpp.o.d"
  "/root/repo/src/core/budgeter.cpp" "src/core/CMakeFiles/billcap_core.dir/budgeter.cpp.o" "gcc" "src/core/CMakeFiles/billcap_core.dir/budgeter.cpp.o.d"
  "/root/repo/src/core/cost_minimizer.cpp" "src/core/CMakeFiles/billcap_core.dir/cost_minimizer.cpp.o" "gcc" "src/core/CMakeFiles/billcap_core.dir/cost_minimizer.cpp.o.d"
  "/root/repo/src/core/cost_model.cpp" "src/core/CMakeFiles/billcap_core.dir/cost_model.cpp.o" "gcc" "src/core/CMakeFiles/billcap_core.dir/cost_model.cpp.o.d"
  "/root/repo/src/core/formulation.cpp" "src/core/CMakeFiles/billcap_core.dir/formulation.cpp.o" "gcc" "src/core/CMakeFiles/billcap_core.dir/formulation.cpp.o.d"
  "/root/repo/src/core/hierarchical.cpp" "src/core/CMakeFiles/billcap_core.dir/hierarchical.cpp.o" "gcc" "src/core/CMakeFiles/billcap_core.dir/hierarchical.cpp.o.d"
  "/root/repo/src/core/simulator.cpp" "src/core/CMakeFiles/billcap_core.dir/simulator.cpp.o" "gcc" "src/core/CMakeFiles/billcap_core.dir/simulator.cpp.o.d"
  "/root/repo/src/core/throughput_maximizer.cpp" "src/core/CMakeFiles/billcap_core.dir/throughput_maximizer.cpp.o" "gcc" "src/core/CMakeFiles/billcap_core.dir/throughput_maximizer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/datacenter/CMakeFiles/billcap_datacenter.dir/DependInfo.cmake"
  "/root/repo/build/src/market/CMakeFiles/billcap_market.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/billcap_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/billcap_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/billcap_util.dir/DependInfo.cmake"
  "/root/repo/build/src/queueing/CMakeFiles/billcap_queueing.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
