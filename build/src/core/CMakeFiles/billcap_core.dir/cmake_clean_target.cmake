file(REMOVE_RECURSE
  "libbillcap_core.a"
)
