# Empty dependencies file for billcap_core.
# This may be replaced when dependencies are built.
