file(REMOVE_RECURSE
  "CMakeFiles/billcap_core.dir/baselines.cpp.o"
  "CMakeFiles/billcap_core.dir/baselines.cpp.o.d"
  "CMakeFiles/billcap_core.dir/bill_capper.cpp.o"
  "CMakeFiles/billcap_core.dir/bill_capper.cpp.o.d"
  "CMakeFiles/billcap_core.dir/budgeter.cpp.o"
  "CMakeFiles/billcap_core.dir/budgeter.cpp.o.d"
  "CMakeFiles/billcap_core.dir/cost_minimizer.cpp.o"
  "CMakeFiles/billcap_core.dir/cost_minimizer.cpp.o.d"
  "CMakeFiles/billcap_core.dir/cost_model.cpp.o"
  "CMakeFiles/billcap_core.dir/cost_model.cpp.o.d"
  "CMakeFiles/billcap_core.dir/formulation.cpp.o"
  "CMakeFiles/billcap_core.dir/formulation.cpp.o.d"
  "CMakeFiles/billcap_core.dir/hierarchical.cpp.o"
  "CMakeFiles/billcap_core.dir/hierarchical.cpp.o.d"
  "CMakeFiles/billcap_core.dir/simulator.cpp.o"
  "CMakeFiles/billcap_core.dir/simulator.cpp.o.d"
  "CMakeFiles/billcap_core.dir/throughput_maximizer.cpp.o"
  "CMakeFiles/billcap_core.dir/throughput_maximizer.cpp.o.d"
  "libbillcap_core.a"
  "libbillcap_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/billcap_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
