file(REMOVE_RECURSE
  "CMakeFiles/billcap_queueing.dir/des.cpp.o"
  "CMakeFiles/billcap_queueing.dir/des.cpp.o.d"
  "CMakeFiles/billcap_queueing.dir/ggm.cpp.o"
  "CMakeFiles/billcap_queueing.dir/ggm.cpp.o.d"
  "CMakeFiles/billcap_queueing.dir/mmm.cpp.o"
  "CMakeFiles/billcap_queueing.dir/mmm.cpp.o.d"
  "libbillcap_queueing.a"
  "libbillcap_queueing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/billcap_queueing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
