file(REMOVE_RECURSE
  "libbillcap_queueing.a"
)
