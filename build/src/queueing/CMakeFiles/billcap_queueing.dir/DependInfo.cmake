
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/queueing/des.cpp" "src/queueing/CMakeFiles/billcap_queueing.dir/des.cpp.o" "gcc" "src/queueing/CMakeFiles/billcap_queueing.dir/des.cpp.o.d"
  "/root/repo/src/queueing/ggm.cpp" "src/queueing/CMakeFiles/billcap_queueing.dir/ggm.cpp.o" "gcc" "src/queueing/CMakeFiles/billcap_queueing.dir/ggm.cpp.o.d"
  "/root/repo/src/queueing/mmm.cpp" "src/queueing/CMakeFiles/billcap_queueing.dir/mmm.cpp.o" "gcc" "src/queueing/CMakeFiles/billcap_queueing.dir/mmm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/billcap_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
