# Empty compiler generated dependencies file for billcap_queueing.
# This may be replaced when dependencies are built.
