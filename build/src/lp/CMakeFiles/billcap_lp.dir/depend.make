# Empty dependencies file for billcap_lp.
# This may be replaced when dependencies are built.
