file(REMOVE_RECURSE
  "libbillcap_lp.a"
)
