file(REMOVE_RECURSE
  "CMakeFiles/billcap_lp.dir/lp_io.cpp.o"
  "CMakeFiles/billcap_lp.dir/lp_io.cpp.o.d"
  "CMakeFiles/billcap_lp.dir/milp.cpp.o"
  "CMakeFiles/billcap_lp.dir/milp.cpp.o.d"
  "CMakeFiles/billcap_lp.dir/piecewise.cpp.o"
  "CMakeFiles/billcap_lp.dir/piecewise.cpp.o.d"
  "CMakeFiles/billcap_lp.dir/presolve.cpp.o"
  "CMakeFiles/billcap_lp.dir/presolve.cpp.o.d"
  "CMakeFiles/billcap_lp.dir/problem.cpp.o"
  "CMakeFiles/billcap_lp.dir/problem.cpp.o.d"
  "CMakeFiles/billcap_lp.dir/simplex.cpp.o"
  "CMakeFiles/billcap_lp.dir/simplex.cpp.o.d"
  "libbillcap_lp.a"
  "libbillcap_lp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/billcap_lp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
