# Empty compiler generated dependencies file for billcap.
# This may be replaced when dependencies are built.
