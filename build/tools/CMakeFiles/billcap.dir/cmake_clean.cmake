file(REMOVE_RECURSE
  "CMakeFiles/billcap.dir/billcap_cli.cpp.o"
  "CMakeFiles/billcap.dir/billcap_cli.cpp.o.d"
  "billcap"
  "billcap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/billcap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
