file(REMOVE_RECURSE
  "CMakeFiles/fig05_fig06_ample_budget.dir/fig05_fig06_ample_budget.cpp.o"
  "CMakeFiles/fig05_fig06_ample_budget.dir/fig05_fig06_ample_budget.cpp.o.d"
  "fig05_fig06_ample_budget"
  "fig05_fig06_ample_budget.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_fig06_ample_budget.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
