# Empty dependencies file for fig05_fig06_ample_budget.
# This may be replaced when dependencies are built.
