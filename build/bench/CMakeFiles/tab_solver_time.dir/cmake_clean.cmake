file(REMOVE_RECURSE
  "CMakeFiles/tab_solver_time.dir/tab_solver_time.cpp.o"
  "CMakeFiles/tab_solver_time.dir/tab_solver_time.cpp.o.d"
  "tab_solver_time"
  "tab_solver_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_solver_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
