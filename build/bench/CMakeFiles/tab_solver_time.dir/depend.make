# Empty dependencies file for tab_solver_time.
# This may be replaced when dependencies are built.
