# Empty dependencies file for ablation_budgeter.
# This may be replaced when dependencies are built.
