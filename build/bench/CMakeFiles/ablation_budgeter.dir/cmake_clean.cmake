file(REMOVE_RECURSE
  "CMakeFiles/ablation_budgeter.dir/ablation_budgeter.cpp.o"
  "CMakeFiles/ablation_budgeter.dir/ablation_budgeter.cpp.o.d"
  "ablation_budgeter"
  "ablation_budgeter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_budgeter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
