file(REMOVE_RECURSE
  "CMakeFiles/fig04_policy_sweep.dir/fig04_policy_sweep.cpp.o"
  "CMakeFiles/fig04_policy_sweep.dir/fig04_policy_sweep.cpp.o.d"
  "fig04_policy_sweep"
  "fig04_policy_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_policy_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
