# Empty compiler generated dependencies file for fig04_policy_sweep.
# This may be replaced when dependencies are built.
