# Empty dependencies file for fig10_budget_sweep.
# This may be replaced when dependencies are built.
