# Empty compiler generated dependencies file for ablation_power_model.
# This may be replaced when dependencies are built.
