# Empty compiler generated dependencies file for ablation_price_model.
# This may be replaced when dependencies are built.
