# Empty dependencies file for ablation_price_model.
# This may be replaced when dependencies are built.
