file(REMOVE_RECURSE
  "CMakeFiles/ablation_price_model.dir/ablation_price_model.cpp.o"
  "CMakeFiles/ablation_price_model.dir/ablation_price_model.cpp.o.d"
  "ablation_price_model"
  "ablation_price_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_price_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
