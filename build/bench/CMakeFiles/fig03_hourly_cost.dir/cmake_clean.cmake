file(REMOVE_RECURSE
  "CMakeFiles/fig03_hourly_cost.dir/fig03_hourly_cost.cpp.o"
  "CMakeFiles/fig03_hourly_cost.dir/fig03_hourly_cost.cpp.o.d"
  "fig03_hourly_cost"
  "fig03_hourly_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_hourly_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
