# Empty dependencies file for fig03_hourly_cost.
# This may be replaced when dependencies are built.
