file(REMOVE_RECURSE
  "CMakeFiles/hierarchical_scale.dir/hierarchical_scale.cpp.o"
  "CMakeFiles/hierarchical_scale.dir/hierarchical_scale.cpp.o.d"
  "hierarchical_scale"
  "hierarchical_scale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hierarchical_scale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
