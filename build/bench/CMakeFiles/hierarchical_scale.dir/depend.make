# Empty dependencies file for hierarchical_scale.
# This may be replaced when dependencies are built.
