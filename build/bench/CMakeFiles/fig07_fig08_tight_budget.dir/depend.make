# Empty dependencies file for fig07_fig08_tight_budget.
# This may be replaced when dependencies are built.
