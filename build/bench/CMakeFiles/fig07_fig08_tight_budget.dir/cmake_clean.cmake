file(REMOVE_RECURSE
  "CMakeFiles/fig07_fig08_tight_budget.dir/fig07_fig08_tight_budget.cpp.o"
  "CMakeFiles/fig07_fig08_tight_budget.dir/fig07_fig08_tight_budget.cpp.o.d"
  "fig07_fig08_tight_budget"
  "fig07_fig08_tight_budget.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_fig08_tight_budget.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
