# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig07_fig08_tight_budget.
