file(REMOVE_RECURSE
  "CMakeFiles/rebate_experiment.dir/rebate_experiment.cpp.o"
  "CMakeFiles/rebate_experiment.dir/rebate_experiment.cpp.o.d"
  "rebate_experiment"
  "rebate_experiment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rebate_experiment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
