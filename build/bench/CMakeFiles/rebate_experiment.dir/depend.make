# Empty dependencies file for rebate_experiment.
# This may be replaced when dependencies are built.
