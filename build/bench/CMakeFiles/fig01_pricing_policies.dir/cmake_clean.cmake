file(REMOVE_RECURSE
  "CMakeFiles/fig01_pricing_policies.dir/fig01_pricing_policies.cpp.o"
  "CMakeFiles/fig01_pricing_policies.dir/fig01_pricing_policies.cpp.o.d"
  "fig01_pricing_policies"
  "fig01_pricing_policies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_pricing_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
