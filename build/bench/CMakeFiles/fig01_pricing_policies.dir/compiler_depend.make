# Empty compiler generated dependencies file for fig01_pricing_policies.
# This may be replaced when dependencies are built.
