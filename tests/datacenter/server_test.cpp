#include "datacenter/server.hpp"

#include <gtest/gtest.h>

namespace billcap::datacenter {
namespace {

TEST(ServerModelTest, LinearInterpolation) {
  const ServerModel m(60.0, 100.0);
  EXPECT_DOUBLE_EQ(m.power_watts(0.0), 60.0);
  EXPECT_DOUBLE_EQ(m.power_watts(1.0), 100.0);
  EXPECT_DOUBLE_EQ(m.power_watts(0.5), 80.0);
}

TEST(ServerModelTest, ClampsUtilization) {
  const ServerModel m(60.0, 100.0);
  EXPECT_DOUBLE_EQ(m.power_watts(-0.5), 60.0);
  EXPECT_DOUBLE_EQ(m.power_watts(1.5), 100.0);
}

TEST(ServerModelTest, RejectsBadBounds) {
  EXPECT_THROW(ServerModel(-1.0, 100.0), std::invalid_argument);
  EXPECT_THROW(ServerModel(120.0, 100.0), std::invalid_argument);
}

TEST(ServerModelTest, ZeroIdleAllowed) {
  // A perfectly energy-proportional server (Barroso's ideal [5]).
  const ServerModel m(0.0, 100.0);
  EXPECT_DOUBLE_EQ(m.power_watts(0.0), 0.0);
  EXPECT_DOUBLE_EQ(m.power_watts(0.3), 30.0);
}

TEST(ServerModelTest, FromActivePowerHitsCatalogValue) {
  // The catalog quotes 88.88 W at the 80 % operating point.
  const ServerModel m = ServerModel::from_active_power(88.88, 0.8, 0.6);
  EXPECT_NEAR(m.power_watts(0.8), 88.88, 1e-9);
  EXPECT_GT(m.peak_watts(), 88.88);
  EXPECT_NEAR(m.idle_watts(), 0.6 * m.peak_watts(), 1e-9);
}

TEST(ServerModelTest, FromActivePowerFullUtilization) {
  const ServerModel m = ServerModel::from_active_power(100.0, 1.0, 0.5);
  EXPECT_NEAR(m.peak_watts(), 100.0, 1e-9);
  EXPECT_NEAR(m.idle_watts(), 50.0, 1e-9);
}

TEST(ServerModelTest, FromActivePowerValidation) {
  EXPECT_THROW(ServerModel::from_active_power(-5.0), std::invalid_argument);
  EXPECT_THROW(ServerModel::from_active_power(100.0, 0.0), std::invalid_argument);
  EXPECT_THROW(ServerModel::from_active_power(100.0, 1.5), std::invalid_argument);
  EXPECT_THROW(ServerModel::from_active_power(100.0, 0.8, 1.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace billcap::datacenter
