#include "datacenter/fat_tree.hpp"

#include <gtest/gtest.h>

namespace billcap::datacenter {
namespace {

TEST(FatTreeTest, CanonicalK4Counts) {
  // The textbook k = 4 fat-tree: 16 hosts, 8 edge, 8 agg, 4 core.
  const FatTree t(4);
  EXPECT_EQ(t.total_hosts(), 16u);
  EXPECT_EQ(t.edge_switches_total(), 8u);
  EXPECT_EQ(t.aggregation_switches_total(), 8u);
  EXPECT_EQ(t.core_switches_total(), 4u);
  EXPECT_EQ(t.hosts_per_edge_switch(), 2u);
  EXPECT_EQ(t.hosts_per_pod(), 4u);
}

TEST(FatTreeTest, PaperScaleK108HostsThreeHundredThousand) {
  const FatTree t(108);
  EXPECT_EQ(t.total_hosts(), 314'928u);
  EXPECT_GE(t.total_hosts(), 300'000u);  // fits the catalog's max_servers
}

TEST(FatTreeTest, RejectsOddOrTinyK) {
  EXPECT_THROW(FatTree(3), std::invalid_argument);
  EXPECT_THROW(FatTree(0), std::invalid_argument);
  EXPECT_NO_THROW(FatTree(2));
}

TEST(FatTreeTest, ZeroServersZeroSwitches) {
  const FatTree t(8);
  const auto active = t.active_switches(0);
  EXPECT_EQ(active.edge, 0u);
  EXPECT_EQ(active.aggregation, 0u);
  EXPECT_EQ(active.core, 0u);
}

TEST(FatTreeTest, FullFabricAllSwitchesOn) {
  const FatTree t(8);
  const auto active = t.active_switches(t.total_hosts());
  EXPECT_EQ(active.edge, t.edge_switches_total());
  EXPECT_EQ(active.aggregation, t.aggregation_switches_total());
  EXPECT_EQ(active.core, t.core_switches_total());
}

TEST(FatTreeTest, ActiveCountsMonotone) {
  const FatTree t(8);
  FatTree::ActiveSwitches prev;
  for (std::uint64_t n = 0; n <= t.total_hosts(); n += 7) {
    const auto cur = t.active_switches(n);
    EXPECT_GE(cur.edge, prev.edge);
    EXPECT_GE(cur.aggregation, prev.aggregation);
    EXPECT_GE(cur.core, prev.core);
    prev = cur;
  }
}

TEST(FatTreeTest, OneServerNeedsMinimalFootprint) {
  const FatTree t(8);
  const auto active = t.active_switches(1);
  EXPECT_EQ(active.edge, 1u);
  EXPECT_EQ(active.aggregation, t.k() / 2);  // one pod's aggregation layer
  EXPECT_EQ(active.core, 1u);
}

TEST(FatTreeTest, RejectsOverCapacity) {
  const FatTree t(4);
  EXPECT_THROW(t.active_switches(17), std::invalid_argument);
}

TEST(FatTreeTest, RatiosMatchTotalsAtFullLoad) {
  const FatTree t(16);
  const auto r = t.switch_ratios();
  const double hosts = static_cast<double>(t.total_hosts());
  EXPECT_NEAR(r.edge_per_server * hosts,
              static_cast<double>(t.edge_switches_total()), 1e-9);
  EXPECT_NEAR(r.aggregation_per_server * hosts,
              static_cast<double>(t.aggregation_switches_total()), 1e-9);
  EXPECT_NEAR(r.core_per_server * hosts,
              static_cast<double>(t.core_switches_total()), 1e-9);
}

TEST(NetworkPowerTest, ZeroAtZeroServers) {
  const FatTree t(8);
  const SwitchPowers p{84.0, 84.0, 240.0};
  EXPECT_DOUBLE_EQ(network_power_watts(t, p, 0), 0.0);
}

TEST(NetworkPowerTest, FullFabricMatchesHandComputation) {
  const FatTree t(4);
  const SwitchPowers p{10.0, 20.0, 30.0};
  // 8 edge * 10 + 8 agg * 20 + 4 core * 30 = 80 + 160 + 120.
  EXPECT_DOUBLE_EQ(network_power_watts(t, p, 16), 360.0);
}

TEST(NetworkPowerTest, ContinuousSlopeApproximatesExactAtScale) {
  // At cloud scale the ceilinged switch counts and the continuous ratio
  // agree to ~2 % (pod-granular aggregation switching is the coarsest
  // step) — the MILP's affine model is sound.
  const FatTree t(108);
  const SwitchPowers p{84.0, 84.0, 240.0};
  const double slope = network_watts_per_server(t, p);
  for (std::uint64_t n : {50'000ull, 150'000ull, 300'000ull}) {
    const double exact = network_power_watts(t, p, n);
    const double approx = slope * static_cast<double>(n);
    EXPECT_NEAR(approx / exact, 1.0, 0.02) << "n = " << n;
  }
}

TEST(NetworkPowerTest, PerServerSlopePositive) {
  const FatTree t(108);
  const SwitchPowers p{70.0, 70.0, 260.0};
  EXPECT_GT(network_watts_per_server(t, p), 0.0);
  EXPECT_LT(network_watts_per_server(t, p), 20.0);  // a few W per server
}

}  // namespace
}  // namespace billcap::datacenter
