#include "datacenter/heterogeneous.hpp"

#include <gtest/gtest.h>

#include <numeric>

namespace billcap::datacenter {
namespace {

ServerPool make_pool(std::string name, double req_per_sec, double watts,
                     std::uint64_t count) {
  const double mu = req_per_sec * 3600.0;
  return ServerPool{
      .name = std::move(name),
      .queue = {.service_rate = mu, .ca2 = 1.0, .cb2 = 1.0},
      .server = ServerModel::from_active_power(watts, 0.8),
      .operating_utilization = 0.8,
      .count = count,
  };
}

/// A two-generation site: old power-hungry slow servers plus a newer,
/// faster and more efficient generation.
HeterogeneousSite mixed_site() {
  return HeterogeneousSite::from_pools(
      "mixed",
      {make_pool("old-p4", 300.0, 134.0, 50'000),
       make_pool("new-athlon", 500.0, 88.88, 50'000)},
      /*response_target_hours=*/2.0 / (300.0 * 3600.0),
      /*power_cap_mw=*/30.0);
}

TEST(HeterogeneousSiteTest, Validation) {
  EXPECT_THROW(HeterogeneousSite::from_pools("empty", {}, 1e-6, 10.0),
               std::invalid_argument);
  EXPECT_THROW(HeterogeneousSite::from_pools(
                   "zero-pool", {make_pool("p", 100.0, 50.0, 0)}, 1e-5, 10.0),
               std::invalid_argument);
  // Response target below the slowest class's service time is impossible.
  EXPECT_THROW(HeterogeneousSite::from_pools(
                   "impossible", {make_pool("p", 100.0, 50.0, 10)},
                   0.5 / (100.0 * 3600.0), 10.0),
               std::invalid_argument);
}

TEST(HeterogeneousSiteTest, PoolsSortedByEfficiency) {
  const HeterogeneousSite site = mixed_site();
  // new-athlon: 88.88 W / 500 rps is far cheaper per request than
  // old-p4: 134 W / 300 rps -> must come first after sorting.
  EXPECT_EQ(site.pools().front().name, "new-athlon");
  const auto segments = site.power_segments();
  ASSERT_EQ(segments.size(), 2u);
  EXPECT_LT(segments[0].slope_mw_per_request, segments[1].slope_mw_per_request);
}

TEST(HeterogeneousSiteTest, CapacityIsSumOfPools) {
  const HeterogeneousSite site = mixed_site();
  // ~50k * 500/s + 50k * 300/s in hourly units (minus the tiny queueing
  // intercepts).
  const double expected = (50'000.0 * 500.0 + 50'000.0 * 300.0) * 3600.0;
  EXPECT_NEAR(site.max_requests_per_hour() / expected, 1.0, 1e-4);
}

TEST(HeterogeneousSiteTest, LightLoadUsesOnlyCheapClass) {
  const HeterogeneousSite site = mixed_site();
  const auto d = site.dispatch(1e10);
  EXPECT_GT(d.pool_lambda[0], 0.0);   // cheap class takes it all
  EXPECT_DOUBLE_EQ(d.pool_lambda[1], 0.0);
  EXPECT_EQ(d.pool_servers[1], 0u);
}

TEST(HeterogeneousSiteTest, HeavyLoadSpillsToExpensiveClass) {
  const HeterogeneousSite site = mixed_site();
  const double lambda = 0.9 * site.max_requests_per_hour();
  const auto d = site.dispatch(lambda);
  EXPECT_GT(d.pool_lambda[0], 0.0);
  EXPECT_GT(d.pool_lambda[1], 0.0);
  EXPECT_NEAR(d.pool_lambda[0] + d.pool_lambda[1], lambda, 1.0);
}

TEST(HeterogeneousSiteTest, DispatchBeyondCapacityThrows) {
  const HeterogeneousSite site = mixed_site();
  EXPECT_THROW(site.dispatch(site.max_requests_per_hour() * 1.01),
               std::invalid_argument);
  EXPECT_THROW(site.dispatch(-1.0), std::invalid_argument);
}

TEST(HeterogeneousSiteTest, PowerBreakdownComposition) {
  const HeterogeneousSite site = mixed_site();
  const auto d = site.dispatch(5e10);
  EXPECT_GT(d.server_mw, 0.0);
  EXPECT_GT(d.network_mw, 0.0);
  EXPECT_NEAR(d.cooling_mw,
              (d.server_mw + d.network_mw) / site.cooling().coe(), 1e-9);
}

TEST(HeterogeneousSiteTest, PowerMonotoneAndConvex) {
  const HeterogeneousSite site = mixed_site();
  const double cap = site.max_requests_per_hour();
  double prev_power = 0.0;
  double prev_slope = 0.0;
  for (double frac = 0.1; frac <= 0.9; frac += 0.1) {
    const double power = site.power_mw(frac * cap);
    EXPECT_GT(power, prev_power);
    const double slope = power - prev_power;
    EXPECT_GE(slope, prev_slope - 0.05 * slope);  // convex: slopes rise
    prev_power = power;
    prev_slope = slope;
  }
}

TEST(HeterogeneousSiteTest, GreedyBeatsAnyOtherSplit) {
  const HeterogeneousSite site = mixed_site();
  const double lambda = 0.5 * site.max_requests_per_hour();
  const double greedy_power = site.power_mw(lambda);
  // Mimic alternative splits by computing pool powers directly.
  const auto segments = site.power_segments();
  for (double share : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    const double to_cheap = std::min(lambda * share, segments[0].lambda_cap);
    const double to_costly = lambda - to_cheap;
    if (to_costly > segments[1].lambda_cap) continue;
    const double power = site.activation_mw() +
                         to_cheap * segments[0].slope_mw_per_request +
                         to_costly * segments[1].slope_mw_per_request;
    EXPECT_LE(greedy_power, power * 1.01) << "share " << share;
  }
}

TEST(HeterogeneousSiteTest, SingleClassMatchesHomogeneousBehaviour) {
  const HeterogeneousSite site = HeterogeneousSite::from_pools(
      "single", {make_pool("only", 500.0, 88.88, 100'000)},
      2.0 / (500.0 * 3600.0), 20.0);
  const auto segments = site.power_segments();
  ASSERT_EQ(segments.size(), 1u);
  const auto d = site.dispatch(1e11);
  EXPECT_NEAR(d.total_mw(),
              site.activation_mw() + 1e11 * segments[0].slope_mw_per_request,
              0.02 * d.total_mw());
}

}  // namespace
}  // namespace billcap::datacenter
