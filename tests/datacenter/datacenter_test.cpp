#include "datacenter/datacenter.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "datacenter/catalog.hpp"

namespace billcap::datacenter {
namespace {

class PaperSitesTest : public ::testing::TestWithParam<int> {
 protected:
  const DataCenter& site() const {
    static const std::vector<DataCenter> sites = paper_datacenters();
    return sites[static_cast<std::size_t>(GetParam())];
  }
};

TEST(CatalogTest, ThreeSitesWithPaperParameters) {
  const auto specs = paper_datacenter_specs();
  ASSERT_EQ(specs.size(), 3u);
  EXPECT_EQ(specs[0].name, "dc1-athlon");
  // Service rates: 500 / 300 / 725 requests per second, in hourly units.
  EXPECT_DOUBLE_EQ(specs[0].queue.service_rate, 500.0 * 3600);
  EXPECT_DOUBLE_EQ(specs[1].queue.service_rate, 300.0 * 3600);
  EXPECT_DOUBLE_EQ(specs[2].queue.service_rate, 725.0 * 3600);
  // Active-server power: the restored catalog wattages.
  for (std::size_t i = 0; i < 3; ++i) {
    const DataCenter dc(specs[i]);
    const double expected = (i == 0) ? 88.88 : (i == 1) ? 134.0 : 149.9;
    EXPECT_NEAR(dc.active_server_watts(), expected, 1e-9) << "site " << i;
    EXPECT_EQ(specs[i].max_servers, 300'000u);
  }
  // Cooling efficiencies 1.94 / 1.39 / 1.74.
  EXPECT_DOUBLE_EQ(specs[0].cooling.coe(), 1.94);
  EXPECT_DOUBLE_EQ(specs[1].cooling.coe(), 1.39);
  EXPECT_DOUBLE_EQ(specs[2].cooling.coe(), 1.74);
}

TEST(DataCenterTest, ConstructorValidation) {
  DataCenterSpec spec = paper_datacenter_specs()[0];
  spec.max_servers = 0;
  EXPECT_THROW(DataCenter{spec}, std::invalid_argument);

  spec = paper_datacenter_specs()[0];
  spec.max_servers = spec.topology.total_hosts() + 1;
  EXPECT_THROW(DataCenter{spec}, std::invalid_argument);

  spec = paper_datacenter_specs()[0];
  spec.power_cap_mw = 0.0;
  EXPECT_THROW(DataCenter{spec}, std::invalid_argument);

  spec = paper_datacenter_specs()[0];
  spec.operating_utilization = 1.5;
  EXPECT_THROW(DataCenter{spec}, std::invalid_argument);
}

TEST_P(PaperSitesTest, ZeroLoadMeansPoweredOff) {
  EXPECT_EQ(site().servers_for(0.0), 0u);
  EXPECT_DOUBLE_EQ(site().power_mw(0.0), 0.0);
}

TEST_P(PaperSitesTest, ServersScaleWithLoad) {
  const double lambda = 1e11;
  const std::uint64_t n1 = site().servers_for(lambda);
  const std::uint64_t n2 = site().servers_for(2 * lambda);
  EXPECT_GT(n1, 0u);
  EXPECT_GT(n2, n1);
  // Near-proportional at scale.
  EXPECT_NEAR(static_cast<double>(n2) / static_cast<double>(n1), 2.0, 0.01);
}

TEST_P(PaperSitesTest, ResponseTimeMeetsTarget) {
  for (double lambda : {1e9, 5e10, 2e11}) {
    EXPECT_LE(site().response_time_hours(lambda),
              site().spec().response_target_hours + 1e-15)
        << "lambda " << lambda;
  }
}

TEST_P(PaperSitesTest, PowerBreakdownComposition) {
  const auto breakdown = site().power_breakdown(1e11);
  EXPECT_GT(breakdown.server_mw, 0.0);
  EXPECT_GT(breakdown.network_mw, 0.0);
  EXPECT_GT(breakdown.cooling_mw, 0.0);
  // Cooling = (server + network) / coe exactly (eq. 7).
  EXPECT_NEAR(breakdown.cooling_mw,
              (breakdown.server_mw + breakdown.network_mw) /
                  site().spec().cooling.coe(),
              1e-9);
  // Servers dominate IT power; network is single-digit percent.
  EXPECT_LT(breakdown.network_mw, 0.15 * breakdown.server_mw);
}

TEST_P(PaperSitesTest, AffineModelTracksExactPower) {
  const auto affine = site().affine_power();
  for (double lambda : {2e10, 1e11, 3e11}) {
    if (lambda > site().max_requests_per_hour()) continue;
    const double exact = site().power_mw(lambda);
    const double approx =
        affine.slope_mw_per_request_hour * lambda + affine.intercept_mw;
    EXPECT_NEAR(approx / exact, 1.0, 0.005) << "lambda " << lambda;
  }
}

TEST_P(PaperSitesTest, ServerOnlyModelUnderestimates) {
  // The Min-Only belief misses cooling + networking: roughly the cooling
  // overhead factor of underestimation.
  const auto full = site().affine_power();
  const auto servers_only = site().affine_server_power_only();
  EXPECT_LT(servers_only.slope_mw_per_request_hour,
            full.slope_mw_per_request_hour);
  const double ratio = full.slope_mw_per_request_hour /
                       servers_only.slope_mw_per_request_hour;
  EXPECT_GT(ratio, site().spec().cooling.overhead_factor() * 0.99);
}

TEST_P(PaperSitesTest, MaxRequestsConsistentWithServerCap) {
  const double lambda_max = site().max_requests_per_hour();
  EXPECT_GT(lambda_max, 0.0);
  // At lambda_max the fractional requirement equals max_servers.
  EXPECT_EQ(site().servers_for(lambda_max), site().spec().max_servers);
  EXPECT_THROW(site().servers_for(lambda_max * 1.01), std::invalid_argument);
}

TEST_P(PaperSitesTest, PowerCapTightensCapacity) {
  EXPECT_LE(site().max_requests_within_power_cap(),
            site().max_requests_per_hour());
  // At the power-cap-limited load, power is within the cap (affine), and
  // the exact model agrees within the ceiling error.
  const double lambda = site().max_requests_within_power_cap();
  EXPECT_LE(site().power_mw(lambda), site().spec().power_cap_mw * 1.001);
}

TEST_P(PaperSitesTest, CloudScalePowerIsTensOfMw) {
  // "cloud-scale data centers ... can draw tens to hundreds of megawatts".
  const double peak = site().power_mw(site().max_requests_per_hour());
  EXPECT_GT(peak, 20.0);
  EXPECT_LT(peak, 200.0);
}

INSTANTIATE_TEST_SUITE_P(AllSites, PaperSitesTest, ::testing::Values(0, 1, 2));

}  // namespace
}  // namespace billcap::datacenter
