#include "datacenter/cooling.hpp"

#include <gtest/gtest.h>

namespace billcap::datacenter {
namespace {

TEST(CoolingModelTest, PowerIsItOverCoe) {
  const CoolingModel c(2.0);
  EXPECT_DOUBLE_EQ(c.power_watts(100.0), 50.0);
  EXPECT_DOUBLE_EQ(c.power_watts(0.0), 0.0);
}

TEST(CoolingModelTest, PaperEfficiencies) {
  // coe 1.94 / 1.39 / 1.74: cooling is 51 % / 72 % / 57 % of IT power —
  // consistent with "cooling can take up to 25-50 % of the total".
  for (double coe : {1.94, 1.39, 1.74}) {
    const CoolingModel c(coe);
    const double cooling_share =
        c.power_watts(1.0) / (1.0 + c.power_watts(1.0));
    EXPECT_GT(cooling_share, 0.30);
    EXPECT_LT(cooling_share, 0.45);
  }
}

TEST(CoolingModelTest, HigherCoeMeansLessCoolingPower) {
  EXPECT_LT(CoolingModel(1.94).power_watts(100.0),
            CoolingModel(1.39).power_watts(100.0));
}

TEST(CoolingModelTest, OverheadFactor) {
  const CoolingModel c(2.0);
  EXPECT_DOUBLE_EQ(c.overhead_factor(), 1.5);
  // total = IT * overhead must equal IT + cooling(IT).
  EXPECT_DOUBLE_EQ(100.0 * c.overhead_factor(),
                   100.0 + c.power_watts(100.0));
}

TEST(CoolingModelTest, RejectsBadInputs) {
  EXPECT_THROW(CoolingModel(0.0), std::invalid_argument);
  EXPECT_THROW(CoolingModel(-1.0), std::invalid_argument);
  EXPECT_THROW(CoolingModel(1.0).power_watts(-5.0), std::invalid_argument);
}

TEST(CoolingModelTest, OutsideAirDerating) {
  // Colder air -> higher coe -> cheaper cooling (Section IV-B).
  const CoolingModel cold = CoolingModel::from_outside_air(1.9, 5.0);
  const CoolingModel hot = CoolingModel::from_outside_air(1.9, 35.0);
  EXPECT_GT(cold.coe(), hot.coe());
  EXPECT_NEAR(CoolingModel::from_outside_air(1.9, 15.0).coe(), 1.9, 1e-12);
}

TEST(CoolingModelTest, OutsideAirFloorsAtMinimumEfficiency) {
  const CoolingModel extreme = CoolingModel::from_outside_air(1.0, 200.0);
  EXPECT_DOUBLE_EQ(extreme.coe(), 0.2);
}

}  // namespace
}  // namespace billcap::datacenter
