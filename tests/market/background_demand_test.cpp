#include "market/background_demand.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "util/calendar.hpp"
#include "util/stats.hpp"

namespace billcap::market {
namespace {

TEST(BackgroundDemandTest, DeterministicInSeed) {
  const BackgroundDemandParams params;
  const auto a = generate_background_demand(params, 100, 7);
  const auto b = generate_background_demand(params, 100, 7);
  EXPECT_EQ(a, b);
  const auto c = generate_background_demand(params, 100, 8);
  EXPECT_NE(a, c);
}

TEST(BackgroundDemandTest, RequestedLength) {
  const auto series = generate_background_demand({}, 720, 1);
  EXPECT_EQ(series.size(), 720u);
}

TEST(BackgroundDemandTest, AlwaysPositiveAndBounded) {
  const BackgroundDemandParams params;
  const auto series = generate_background_demand(params, 2000, 3);
  for (double d : series) {
    EXPECT_GT(d, 0.0);
    EXPECT_LT(d, params.base_mw + params.diurnal_amplitude_mw + 60.0);
  }
}

TEST(BackgroundDemandTest, DiurnalSwingPresent) {
  BackgroundDemandParams params;
  params.noise_sigma = 0.0;  // isolate the deterministic shape
  const auto series = generate_background_demand(params, 24, 5);
  const double peak = *std::max_element(series.begin(), series.end());
  const double trough = *std::min_element(series.begin(), series.end());
  EXPECT_NEAR(peak - trough, params.diurnal_amplitude_mw, 1.0);
}

TEST(BackgroundDemandTest, PeakNearConfiguredHour) {
  BackgroundDemandParams params;
  params.noise_sigma = 0.0;
  params.peak_hour = 15.0;
  const auto series = generate_background_demand(params, 24, 5);
  const auto peak_it = std::max_element(series.begin(), series.end());
  const auto peak_hour = static_cast<std::size_t>(peak_it - series.begin());
  EXPECT_NEAR(static_cast<double>(peak_hour), 15.0, 1.0);
}

TEST(BackgroundDemandTest, WeekendsLighter) {
  BackgroundDemandParams params;
  params.noise_sigma = 0.0;
  const auto series =
      generate_background_demand(params, util::kHoursPerWeek, 5);
  // Compare the same hour of day on Wednesday vs Saturday.
  const std::size_t wed_noon = 2 * 24 + 12;
  const std::size_t sat_noon = 5 * 24 + 12;
  EXPECT_GT(series[wed_noon], series[sat_noon]);
  EXPECT_NEAR(series[sat_noon] / series[wed_noon], 1.0 - params.weekend_drop,
              1e-9);
}

TEST(BackgroundDemandTest, Validation) {
  BackgroundDemandParams params;
  params.base_mw = -1.0;
  EXPECT_THROW(generate_background_demand(params, 10, 1),
               std::invalid_argument);
  params = {};
  params.weekend_drop = 1.5;
  EXPECT_THROW(generate_background_demand(params, 10, 1),
               std::invalid_argument);
}

TEST(PaperBackgroundTest, ThreeSitesNearPolicyThresholds) {
  const auto series = paper_background_demand(720, 42);
  ASSERT_EQ(series.size(), 3u);
  for (const auto& site : series) {
    util::RunningStats stats;
    for (double d : site) stats.add(d);
    // Each location lives in the 150-300 MW band where the canonical
    // policies' thresholds (200/237/267/300) actually matter.
    EXPECT_GT(stats.mean(), 150.0);
    EXPECT_LT(stats.mean(), 300.0);
    EXPECT_GT(stats.max(), 200.0);  // crosses at least the first threshold
  }
}

TEST(PaperBackgroundTest, SitesAreDecorrelatedStreams) {
  const auto series = paper_background_demand(100, 42);
  EXPECT_NE(series[0], series[1]);
  EXPECT_NE(series[1], series[2]);
}

}  // namespace
}  // namespace billcap::market
