#include "market/pjm5.hpp"

#include <gtest/gtest.h>

#include "market/dcopf.hpp"

namespace billcap::market {
namespace {

TEST(Pjm5Test, SystemComposition) {
  const Grid g = pjm5_grid();
  EXPECT_EQ(g.num_buses(), 5);
  EXPECT_EQ(g.num_lines(), 6);
  EXPECT_EQ(g.num_generators(), 5);
  EXPECT_DOUBLE_EQ(g.total_capacity_mw(), 110 + 100 + 520 + 200 + 600);
}

TEST(Pjm5Test, BrightonIsTheCheapUnit) {
  const Grid g = pjm5_grid();
  double min_cost = 1e9;
  std::string cheapest;
  for (const auto& gen : g.generators()) {
    if (gen.marginal_cost < min_cost) {
      min_cost = gen.marginal_cost;
      cheapest = gen.name;
    }
  }
  EXPECT_EQ(cheapest, "Brighton");
  EXPECT_DOUBLE_EQ(min_cost, 10.0);
}

TEST(Pjm5Test, LoadsUniformOverBcd) {
  const auto loads = pjm5_loads(600.0);
  ASSERT_EQ(loads.size(), 5u);
  EXPECT_DOUBLE_EQ(loads[0], 0.0);  // A carries no load
  EXPECT_DOUBLE_EQ(loads[1], 200.0);
  EXPECT_DOUBLE_EQ(loads[2], 200.0);
  EXPECT_DOUBLE_EQ(loads[3], 200.0);
  EXPECT_DOUBLE_EQ(loads[4], 0.0);  // E carries no load
}

TEST(Pjm5Test, LightLoadUniformTenDollarLmp) {
  // At light load Brighton serves everything: LMP = 10 $/MWh everywhere
  // (the first level of Figure 1).
  const Grid g = pjm5_grid();
  const auto r = solve_dcopf(g, pjm5_loads(150.0));
  ASSERT_TRUE(r.ok());
  for (int b = 0; b < 5; ++b) EXPECT_NEAR(r.lmp[static_cast<std::size_t>(b)], 10.0, 1e-6);
}

TEST(Pjm5Test, HeavyLoadRaisesAndSeparatesLmps) {
  // Near the 900 MW base case, multiple constraints bind: prices rise
  // above 10 and differ across the load buses (the step structure the
  // paper's policies encode).
  const Grid g = pjm5_grid();
  const auto r = solve_dcopf(g, pjm5_loads(900.0));
  ASSERT_TRUE(r.ok());
  for (int bus : pjm5_load_buses())
    EXPECT_GT(r.lmp[static_cast<std::size_t>(bus)], 10.0 + 1e-6);
  // Not all equal: congestion discriminates by location.
  const double b = r.lmp[1];
  const double c = r.lmp[2];
  const double d = r.lmp[3];
  EXPECT_TRUE(std::abs(b - c) > 1e-6 || std::abs(c - d) > 1e-6);
}

TEST(Pjm5Test, BrightonCapacityStepNearSixHundredMw) {
  // Below ~600 MW Brighton covers the whole system (LMP 10); once its
  // 600 MW limit binds the price steps up — the paper's first step event.
  const Grid g = pjm5_grid();
  const auto before = solve_dcopf(g, pjm5_loads(500.0));
  const auto after = solve_dcopf(g, pjm5_loads(750.0));
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE(after.ok());
  EXPECT_NEAR(before.lmp[1], 10.0, 1e-6);
  EXPECT_GT(after.lmp[1], 10.0 + 1e-6);
}

TEST(Pjm5Test, FeasibleUpToTotalCapacity) {
  const Grid g = pjm5_grid();
  EXPECT_TRUE(solve_dcopf(g, pjm5_loads(1200.0)).ok());
  EXPECT_FALSE(solve_dcopf(g, pjm5_loads(1600.0)).ok());
}

TEST(Pjm5Test, EdLineRespectsLimit) {
  const Grid g = pjm5_grid();
  const auto r = solve_dcopf(g, pjm5_loads(900.0));
  ASSERT_TRUE(r.ok());
  // Line index 5 is D-E with the 240 MW limit.
  EXPECT_LE(std::abs(r.flow_mw[5]), 240.0 + 1e-6);
}

}  // namespace
}  // namespace billcap::market
