#include "market/dcopf.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace billcap::market {
namespace {

/// Two buses, one line, cheap generator at bus 0, load at bus 1.
Grid two_bus(double line_limit = 0.0) {
  Grid g;
  g.add_bus("G");
  g.add_bus("L");
  g.add_line("G-L", 0, 1, 0.1, line_limit);
  g.add_generator("cheap", 0, 100.0, 10.0);
  g.add_generator("local", 1, 100.0, 30.0);
  return g;
}

TEST(DcOpfTest, DispatchesCheapestFirst) {
  const Grid g = two_bus();
  const auto r = solve_dcopf(g, std::vector<double>{0.0, 50.0});
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r.dispatch_mw[0], 50.0, 1e-6);
  EXPECT_NEAR(r.dispatch_mw[1], 0.0, 1e-6);
  EXPECT_NEAR(r.total_cost, 500.0, 1e-6);
}

TEST(DcOpfTest, UncongestedLmpsEqualMarginalCost) {
  const Grid g = two_bus();
  const auto r = solve_dcopf(g, std::vector<double>{0.0, 50.0});
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r.lmp[0], 10.0, 1e-6);
  EXPECT_NEAR(r.lmp[1], 10.0, 1e-6);  // no congestion: uniform price
}

TEST(DcOpfTest, CongestionSeparatesPrices) {
  // 40 MW line limit forces the expensive local unit to cover the rest.
  const Grid g = two_bus(40.0);
  const auto r = solve_dcopf(g, std::vector<double>{0.0, 70.0});
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r.dispatch_mw[0], 40.0, 1e-6);
  EXPECT_NEAR(r.dispatch_mw[1], 30.0, 1e-6);
  EXPECT_NEAR(r.lmp[0], 10.0, 1e-6);   // exporting bus stays cheap
  EXPECT_NEAR(r.lmp[1], 30.0, 1e-6);   // importing bus pays the local unit
  EXPECT_NEAR(std::abs(r.flow_mw[0]), 40.0, 1e-6);
}

TEST(DcOpfTest, GeneratorLimitRaisesPrice) {
  Grid g;
  g.add_bus("A");
  g.add_generator("small", 0, 20.0, 5.0);
  g.add_generator("big", 0, 500.0, 25.0);
  const auto low = solve_dcopf(g, std::vector<double>{10.0});
  const auto high = solve_dcopf(g, std::vector<double>{100.0});
  ASSERT_TRUE(low.ok());
  ASSERT_TRUE(high.ok());
  EXPECT_NEAR(low.lmp[0], 5.0, 1e-6);
  EXPECT_NEAR(high.lmp[0], 25.0, 1e-6);  // step change as capacity binds
}

TEST(DcOpfTest, InfeasibleWhenLoadExceedsCapacity) {
  Grid g;
  g.add_bus("A");
  g.add_generator("only", 0, 50.0, 10.0);
  const auto r = solve_dcopf(g, std::vector<double>{80.0});
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status, lp::SolveStatus::kInfeasible);
}

TEST(DcOpfTest, EnergyBalanceHolds) {
  const Grid g = two_bus(40.0);
  const std::vector<double> loads = {10.0, 60.0};
  const auto r = solve_dcopf(g, loads);
  ASSERT_TRUE(r.ok());
  const double gen = r.dispatch_mw[0] + r.dispatch_mw[1];
  EXPECT_NEAR(gen, 70.0, 1e-6);
}

TEST(DcOpfTest, FlowMatchesAngleDifference) {
  const Grid g = two_bus();
  const auto r = solve_dcopf(g, std::vector<double>{0.0, 30.0});
  ASSERT_TRUE(r.ok());
  const double b = 1.0 / 0.1;
  EXPECT_NEAR(r.flow_mw[0], b * (r.theta[0] - r.theta[1]), 1e-6);
  EXPECT_NEAR(r.theta[0], 0.0, 1e-12);  // slack pinned
}

TEST(DcOpfTest, MeshNetworkKirchhoff) {
  // Three buses in a triangle: flows must satisfy both balance and the
  // angle consistency around the loop.
  Grid g;
  g.add_bus("A");
  g.add_bus("B");
  g.add_bus("C");
  g.add_line("A-B", 0, 1, 0.1);
  g.add_line("B-C", 1, 2, 0.1);
  g.add_line("A-C", 0, 2, 0.1);
  g.add_generator("gen", 0, 300.0, 10.0);
  const auto r = solve_dcopf(g, std::vector<double>{0.0, 30.0, 60.0});
  ASSERT_TRUE(r.ok());
  // Net injection at B: inflow(A-B) - outflow(B-C) = load 30.
  EXPECT_NEAR(r.flow_mw[0] - r.flow_mw[1], 30.0, 1e-6);
  // Loop equation: f(A-B) + f(B-C) - f(A-C) proportional angle sum = 0.
  EXPECT_NEAR(r.flow_mw[0] + r.flow_mw[1] - r.flow_mw[2], 0.0, 1e-6);
}

TEST(DcOpfTest, InputValidation) {
  Grid g;
  g.add_bus("A");
  g.add_generator("gen", 0, 10.0, 1.0);
  EXPECT_THROW(solve_dcopf(g, std::vector<double>{1.0, 2.0}),
               std::invalid_argument);
  Grid empty;
  EXPECT_THROW(solve_dcopf(empty, std::vector<double>{}),
               std::invalid_argument);
}

TEST(DcOpfTest, LmpIsMarginalCostOfLoad) {
  // Finite-difference check of the LMP against a load perturbation.
  const Grid g = two_bus(40.0);
  const std::vector<double> base_loads = {0.0, 70.0};
  const auto base = solve_dcopf(g, base_loads);
  ASSERT_TRUE(base.ok());
  const double eps = 0.01;
  const auto pert = solve_dcopf(g, std::vector<double>{0.0, 70.0 + eps});
  ASSERT_TRUE(pert.ok());
  EXPECT_NEAR((pert.total_cost - base.total_cost) / eps, base.lmp[1], 1e-4);
}

TEST(OpfReportTest, RejectsNonOptimalResult) {
  DcOpfResult bad;
  bad.status = lp::SolveStatus::kInfeasible;
  EXPECT_THROW(analyze_opf(two_bus(), bad), std::invalid_argument);
}

TEST(OpfReportTest, UncongestedHasNoCongestionComponent) {
  const Grid g = two_bus();
  const auto r = solve_dcopf(g, std::vector<double>{0.0, 50.0});
  ASSERT_TRUE(r.ok());
  const DcOpfReport report = analyze_opf(g, r);
  EXPECT_NEAR(report.reference_price, 10.0, 1e-6);
  for (double c : report.congestion_component) EXPECT_NEAR(c, 0.0, 1e-6);
  EXPECT_TRUE(report.binding.empty());
}

TEST(OpfReportTest, CongestedLineIsReportedBinding) {
  const Grid g = two_bus(40.0);
  const auto r = solve_dcopf(g, std::vector<double>{0.0, 70.0});
  ASSERT_TRUE(r.ok());
  const DcOpfReport report = analyze_opf(g, r);
  ASSERT_EQ(report.binding.size(), 1u);
  EXPECT_EQ(report.binding[0].kind, BindingConstraint::Kind::kLineLimit);
  EXPECT_EQ(report.binding[0].index, 0);
  EXPECT_NEAR(report.binding[0].value, 40.0, 1e-6);
  // Importing bus carries the congestion premium 30 - 10 = 20.
  EXPECT_NEAR(report.congestion_component[1], 20.0, 1e-6);
}

TEST(OpfReportTest, SaturatedGeneratorIsReportedBinding) {
  Grid g;
  g.add_bus("A");
  g.add_generator("small", 0, 20.0, 5.0);
  g.add_generator("big", 0, 500.0, 25.0);
  const auto r = solve_dcopf(g, std::vector<double>{100.0});
  ASSERT_TRUE(r.ok());
  const DcOpfReport report = analyze_opf(g, r);
  ASSERT_EQ(report.binding.size(), 1u);
  EXPECT_EQ(report.binding[0].kind,
            BindingConstraint::Kind::kGeneratorLimit);
  EXPECT_EQ(report.binding[0].index, 0);  // the 20 MW unit is maxed
}

TEST(OpfReportTest, PriceStepsCoincideWithNewBindingConstraints) {
  // Sweep the two-bus system: the price at the load bus steps exactly when
  // the line limit starts binding — the Section II mechanism, verified.
  const Grid g = two_bus(40.0);
  double previous_price = 0.0;
  bool stepped = false;
  for (double load = 10.0; load <= 90.0; load += 5.0) {
    const auto r = solve_dcopf(g, std::vector<double>{0.0, load});
    ASSERT_TRUE(r.ok());
    const DcOpfReport report = analyze_opf(g, r);
    if (load > 10.0 && r.lmp[1] > previous_price + 1e-6) {
      stepped = true;
      EXPECT_FALSE(report.binding.empty())
          << "price stepped without a binding constraint at " << load;
    }
    previous_price = r.lmp[1];
  }
  EXPECT_TRUE(stepped);
}

}  // namespace
}  // namespace billcap::market
