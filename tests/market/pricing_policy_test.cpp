#include "market/pricing_policy.hpp"

#include <gtest/gtest.h>

namespace billcap::market {
namespace {

PricingPolicy dc1_policy() {
  return PricingPolicy({0.0, 200.0, 237.3, 266.7, 300.0},
                       {10.00, 13.90, 15.00, 22.00, 24.00});
}

TEST(PricingPolicyTest, ValidationRejectsMalformed) {
  EXPECT_THROW(PricingPolicy({}, {}), std::invalid_argument);
  EXPECT_THROW(PricingPolicy({0.0, 100.0}, {10.0}), std::invalid_argument);
  EXPECT_THROW(PricingPolicy({50.0}, {10.0}), std::invalid_argument);
  EXPECT_THROW(PricingPolicy({0.0, 100.0, 100.0}, {1.0, 2.0, 3.0}),
               std::invalid_argument);
  EXPECT_THROW(PricingPolicy({0.0}, {-1.0}), std::invalid_argument);
}

TEST(PricingPolicyTest, PriceAtStepsUpAtThresholds) {
  const PricingPolicy p = dc1_policy();
  EXPECT_DOUBLE_EQ(p.price_at(0.0), 10.0);
  EXPECT_DOUBLE_EQ(p.price_at(199.99), 10.0);
  EXPECT_DOUBLE_EQ(p.price_at(200.0), 13.9);  // price maker crosses a step
  EXPECT_DOUBLE_EQ(p.price_at(250.0), 15.0);
  EXPECT_DOUBLE_EQ(p.price_at(280.0), 22.0);
  EXPECT_DOUBLE_EQ(p.price_at(1000.0), 24.0);
  EXPECT_DOUBLE_EQ(p.price_at(-5.0), 10.0);
}

TEST(PricingPolicyTest, CostForUsesTotalButBillsDcOnly) {
  const PricingPolicy p = dc1_policy();
  // 30 MW data center + 180 MW others = 210 MW total -> 13.90 $/MWh, but
  // only the 30 MWh of the data center are billed here.
  EXPECT_DOUBLE_EQ(p.cost_for(30.0, 180.0), 13.9 * 30.0);
  // Same draw with light background stays in the first tier.
  EXPECT_DOUBLE_EQ(p.cost_for(30.0, 100.0), 10.0 * 30.0);
}

TEST(PricingPolicyTest, PriceMakerEffect) {
  // The data center's own draw crosses the threshold: the paper's central
  // point — routing decisions change the price.
  const PricingPolicy p = dc1_policy();
  EXPECT_GT(p.price_at(190.0 + 20.0), p.price_at(190.0 + 5.0));
}

TEST(PricingPolicyTest, AverageAndMin) {
  const PricingPolicy p = dc1_policy();
  // The paper quotes 16.98 = (10 + 13.9 + 15 + 22 + 24)/5 for Min-Only
  // (Avg) and 10.00 for Min-Only (Low) at Data Center 1 (Section VII-A).
  EXPECT_NEAR(p.average_price(), 16.98, 1e-12);
  EXPECT_DOUBLE_EQ(p.min_price(), 10.0);
}

TEST(PricingPolicyTest, FlatPolicy) {
  const PricingPolicy p = PricingPolicy::flat(12.5);
  EXPECT_EQ(p.num_levels(), 1u);
  EXPECT_DOUBLE_EQ(p.price_at(0.0), 12.5);
  EXPECT_DOUBLE_EQ(p.price_at(1e6), 12.5);
}

TEST(PricingPolicyTest, ScaleIncreasesReproducesPaperPolicies23) {
  const PricingPolicy p1 = dc1_policy();
  // Section VII-B quotes Policy 2 = (10.00, 17.80, 20.00, 34.00, 38.00) and
  // Policy 3 = (10.00, 21.70, 25.00, 46.00, 52.00) for Data Center 1.
  const PricingPolicy p2 = p1.scale_increases(2.0);
  const std::vector<double> expect2 = {10.00, 17.80, 20.00, 34.00, 38.00};
  for (std::size_t k = 0; k < 5; ++k)
    EXPECT_NEAR(p2.prices_per_mwh()[k], expect2[k], 1e-9);

  const PricingPolicy p3 = p1.scale_increases(3.0);
  const std::vector<double> expect3 = {10.00, 21.70, 25.00, 46.00, 52.00};
  for (std::size_t k = 0; k < 5; ++k)
    EXPECT_NEAR(p3.prices_per_mwh()[k], expect3[k], 1e-9);
}

TEST(PricingPolicyTest, DcCostCurveLowBackground) {
  // With d = 0 the whole step structure is visible to the data center.
  const PricingPolicy p = dc1_policy();
  const lp::PiecewiseAffine pw = p.dc_cost_curve(0.0, 400.0);
  EXPECT_EQ(pw.num_segments(), 5u);
  EXPECT_DOUBLE_EQ(pw.slopes.front(), 10.0);
  EXPECT_DOUBLE_EQ(pw.slopes.back(), 24.0);
  EXPECT_DOUBLE_EQ(pw.breaks.back(), 400.0);
}

TEST(PricingPolicyTest, DcCostCurveShiftsWithBackground) {
  // d = 210 MW: the location is already in tier 2; tier 1 is unreachable.
  const PricingPolicy p = dc1_policy();
  const lp::PiecewiseAffine pw = p.dc_cost_curve(210.0, 50.0);
  EXPECT_DOUBLE_EQ(pw.slopes.front(), 13.9);
  // First break ~= 237.3 - 210 (minus the threshold safety margin).
  EXPECT_NEAR(pw.breaks[1], 237.3 - 210.0, 0.05);
}

TEST(PricingPolicyTest, DcCostCurveBeyondLastThreshold) {
  // d beyond every threshold: single top-price segment.
  const PricingPolicy p = dc1_policy();
  const lp::PiecewiseAffine pw = p.dc_cost_curve(500.0, 42.0);
  EXPECT_EQ(pw.num_segments(), 1u);
  EXPECT_DOUBLE_EQ(pw.slopes.front(), 24.0);
}

TEST(PricingPolicyTest, DcCostCurveMatchesCostForAwayFromSteps) {
  const PricingPolicy p = dc1_policy();
  const double d = 150.0;
  const lp::PiecewiseAffine pw = p.dc_cost_curve(d, 120.0);
  for (double dc_power : {5.0, 30.0, 60.0, 100.0, 115.0}) {
    EXPECT_NEAR(pw.value(dc_power), p.cost_for(dc_power, d), 0.7)
        << "power " << dc_power;  // within margin-induced slack
  }
}

TEST(PricingPolicyTest, DcCostCurveConservativeNearSteps) {
  // Just below a real threshold the curve may already assume the higher
  // price (safety margin), never the other way around.
  const PricingPolicy p = dc1_policy();
  const double d = 150.0;
  const lp::PiecewiseAffine pw = p.dc_cost_curve(d, 120.0);
  for (double dc_power = 0.5; dc_power < 120.0; dc_power += 0.5) {
    EXPECT_GE(pw.value(dc_power) + 1e-9, p.cost_for(dc_power, d))
        << "power " << dc_power;
  }
}

TEST(PricingPolicyTest, DcCostCurveValidation) {
  const PricingPolicy p = dc1_policy();
  EXPECT_THROW(p.dc_cost_curve(-1.0, 50.0), std::invalid_argument);
  EXPECT_THROW(p.dc_cost_curve(100.0, 0.0), std::invalid_argument);
}

TEST(PaperPoliciesTest, LevelsAndStructure) {
  for (int level : {0, 1, 2, 3}) {
    const auto policies = paper_policies(level);
    ASSERT_EQ(policies.size(), 3u) << "level " << level;
  }
  EXPECT_THROW(paper_policies(4), std::invalid_argument);
  EXPECT_THROW(paper_policies(-1), std::invalid_argument);
}

TEST(PaperPoliciesTest, Policy0IsFlatAtPolicy1Average) {
  const auto p0 = paper_policies(0);
  const auto p1 = paper_policies(1);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(p0[i].num_levels(), 1u);
    EXPECT_NEAR(p0[i].price_at(250.0), p1[i].average_price(), 1e-12);
  }
}

TEST(PaperPoliciesTest, Policy1Dc1MatchesPaperVerbatim) {
  const auto p1 = paper_policies(1);
  const std::vector<double> expect = {10.00, 13.90, 15.00, 22.00, 24.00};
  ASSERT_EQ(p1[0].prices_per_mwh().size(), 5u);
  for (std::size_t k = 0; k < 5; ++k)
    EXPECT_DOUBLE_EQ(p1[0].prices_per_mwh()[k], expect[k]);
}

TEST(PaperPoliciesTest, HigherLevelsDominate) {
  // For any load, policy 3 price >= policy 2 >= policy 1 at every site.
  const auto p1 = paper_policies(1);
  const auto p2 = paper_policies(2);
  const auto p3 = paper_policies(3);
  for (std::size_t i = 0; i < 3; ++i) {
    for (double load = 0.0; load < 400.0; load += 10.0) {
      EXPECT_LE(p1[i].price_at(load), p2[i].price_at(load));
      EXPECT_LE(p2[i].price_at(load), p3[i].price_at(load));
    }
  }
}

}  // namespace
}  // namespace billcap::market
