#include "market/grid.hpp"

#include <gtest/gtest.h>

namespace billcap::market {
namespace {

TEST(GridTest, BusIndexing) {
  Grid g;
  EXPECT_EQ(g.add_bus("A"), 0);
  EXPECT_EQ(g.add_bus("B"), 1);
  EXPECT_EQ(g.num_buses(), 2);
  EXPECT_EQ(g.bus_index("B"), 1);
  EXPECT_THROW(g.bus_index("Z"), std::out_of_range);
}

TEST(GridTest, LineValidation) {
  Grid g;
  g.add_bus("A");
  g.add_bus("B");
  EXPECT_EQ(g.add_line("A-B", 0, 1, 0.1, 100.0), 0);
  EXPECT_THROW(g.add_line("bad", 0, 5, 0.1), std::out_of_range);
  EXPECT_THROW(g.add_line("loop", 0, 0, 0.1), std::invalid_argument);
  EXPECT_THROW(g.add_line("zero-x", 0, 1, 0.0), std::invalid_argument);
}

TEST(GridTest, GeneratorValidation) {
  Grid g;
  g.add_bus("A");
  EXPECT_EQ(g.add_generator("G1", 0, 100.0, 12.0), 0);
  EXPECT_THROW(g.add_generator("bad-bus", 3, 100.0, 12.0), std::out_of_range);
  EXPECT_THROW(g.add_generator("no-cap", 0, 0.0, 12.0),
               std::invalid_argument);
}

TEST(GridTest, TotalCapacity) {
  Grid g;
  g.add_bus("A");
  g.add_generator("G1", 0, 100.0, 12.0);
  g.add_generator("G2", 0, 250.0, 20.0);
  EXPECT_DOUBLE_EQ(g.total_capacity_mw(), 350.0);
}

TEST(GridTest, AccessorsReturnStoredData) {
  Grid g;
  g.add_bus("A");
  g.add_bus("B");
  g.add_line("A-B", 0, 1, 0.05, 240.0);
  g.add_generator("G", 1, 600.0, 10.0);
  EXPECT_EQ(g.line(0).name, "A-B");
  EXPECT_DOUBLE_EQ(g.line(0).limit_mw, 240.0);
  EXPECT_EQ(g.generator(0).bus, 1);
  EXPECT_DOUBLE_EQ(g.generator(0).marginal_cost, 10.0);
}

}  // namespace
}  // namespace billcap::market
