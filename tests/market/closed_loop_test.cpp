// Pure-unit tests for the closed-loop coupler's two safety mechanisms:
// the oscillation detector (a period-k cycle finder over fixed-point
// iterates) and the damping ladder (escalate-per-trouble, de-escalate
// after a clean streak). Both are exercised here without a grid, a
// solver or a simulator — they are plain deterministic state machines.

#include "market/closed_loop.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace billcap::market {
namespace {

TEST(OscillationDetectorTest, PeriodTwoCycleFires) {
  OscillationDetector detector(/*window=*/8, /*tol_mw=*/0.5);
  const std::vector<double> a = {10.0, 40.0};
  const std::vector<double> b = {30.0, 5.0};
  bool fired = false;
  // A period-2 orbit must be caught within the window: two full periods
  // of evidence is four pushes, so it certainly fires by push eight.
  for (int i = 0; i < 8 && !fired; ++i) fired = detector.push(i % 2 ? b : a);
  EXPECT_TRUE(fired);
  EXPECT_EQ(detector.period(), 2u);
}

TEST(OscillationDetectorTest, PeriodThreeCycleFires) {
  OscillationDetector detector(/*window=*/8, /*tol_mw=*/0.5);
  const std::vector<std::vector<double>> orbit = {
      {10.0}, {25.0}, {40.0}};
  bool fired = false;
  std::size_t fired_at = 0;
  for (std::size_t i = 0; i < 12 && !fired; ++i) {
    fired = detector.push(orbit[i % 3]);
    fired_at = i;
  }
  EXPECT_TRUE(fired) << "period-3 orbit never detected";
  EXPECT_EQ(detector.period(), 3u) << "fired at push " << fired_at;
}

TEST(OscillationDetectorTest, SettlingSequenceNeverFires) {
  // Geometric convergence toward a fixed point: consecutive deltas shrink
  // under the tolerance, which is plain (period-1) convergence, not a
  // cycle — the detector must stay silent the whole way down.
  OscillationDetector detector(/*window=*/8, /*tol_mw=*/0.5);
  double x = 64.0;
  for (int i = 0; i < 16; ++i) {
    const std::vector<double> iterate = {100.0 - x};
    EXPECT_FALSE(detector.push(iterate)) << "fired on settling push " << i;
    x *= 0.5;
  }
  EXPECT_EQ(detector.period(), 0u);
}

TEST(OscillationDetectorTest, SlowMonotoneDriftNeverFires) {
  // Every step moves by more than the tolerance but never revisits an
  // earlier iterate: no cycle, no firing, however long it runs.
  OscillationDetector detector(/*window=*/8, /*tol_mw=*/0.5);
  for (int i = 0; i < 32; ++i) {
    const std::vector<double> iterate = {2.0 * i, 100.0 - 2.0 * i};
    EXPECT_FALSE(detector.push(iterate)) << "fired on drift push " << i;
  }
}

TEST(OscillationDetectorTest, ResetForgetsTheOrbit) {
  OscillationDetector detector(/*window=*/8, /*tol_mw=*/0.5);
  const std::vector<double> a = {10.0};
  const std::vector<double> b = {30.0};
  bool fired = false;
  for (int i = 0; i < 8 && !fired; ++i) fired = detector.push(i % 2 ? b : a);
  ASSERT_TRUE(fired);
  detector.reset();
  EXPECT_EQ(detector.period(), 0u);
  // After a reset the detector needs fresh evidence of two full periods
  // again; the first few pushes cannot fire.
  EXPECT_FALSE(detector.push(a));
  EXPECT_FALSE(detector.push(b));
  EXPECT_FALSE(detector.push(a));
}

TEST(DampingLadderTest, TroubledHoursEscalateOneRungEach) {
  DampingLadder ladder(/*deescalate_after=*/3);
  EXPECT_EQ(ladder.rung(), 0u);
  ladder.on_hour(/*troubled=*/true);
  EXPECT_EQ(ladder.rung(), 1u);
  ladder.on_hour(true);
  EXPECT_EQ(ladder.rung(), 2u);
  ladder.on_hour(true);
  EXPECT_EQ(ladder.rung(), 3u);
  // Saturates at the top rung; more trouble cannot push it past kMaxRung.
  ladder.on_hour(true);
  EXPECT_EQ(ladder.rung(), DampingLadder::kMaxRung);
}

TEST(DampingLadderTest, DeescalatesOnlyAfterCleanStreak) {
  DampingLadder ladder(/*deescalate_after=*/3);
  ladder.on_hour(true);
  ladder.on_hour(true);
  ASSERT_EQ(ladder.rung(), 2u);
  // Two clean hours are not enough; the third completes the streak.
  ladder.on_hour(false);
  ladder.on_hour(false);
  EXPECT_EQ(ladder.rung(), 2u);
  ladder.on_hour(false);
  EXPECT_EQ(ladder.rung(), 1u);
  // One step down per completed streak, not a collapse to zero.
  ladder.on_hour(false);
  ladder.on_hour(false);
  EXPECT_EQ(ladder.rung(), 1u);
  ladder.on_hour(false);
  EXPECT_EQ(ladder.rung(), 0u);
}

TEST(DampingLadderTest, TroubleResetsTheCleanStreak) {
  DampingLadder ladder(/*deescalate_after=*/3);
  ladder.on_hour(true);
  ladder.on_hour(true);
  ASSERT_EQ(ladder.rung(), 2u);
  ladder.on_hour(false);
  ladder.on_hour(false);
  ladder.on_hour(true);  // streak broken at two — and escalates
  EXPECT_EQ(ladder.rung(), 3u);
  ladder.on_hour(false);
  ladder.on_hour(false);
  ladder.on_hour(false);
  EXPECT_EQ(ladder.rung(), 2u);
}

TEST(DampingLadderTest, SnapshotRestoreRoundTrips) {
  DampingLadder ladder(/*deescalate_after=*/3);
  ladder.on_hour(true);
  ladder.on_hour(true);
  ladder.on_hour(false);
  const DampingLadder::State saved = ladder.snapshot();
  EXPECT_EQ(saved.rung, 2u);
  EXPECT_EQ(saved.clean_streak, 1u);

  DampingLadder fresh(/*deescalate_after=*/3);
  fresh.restore(saved);
  EXPECT_EQ(fresh.rung(), 2u);
  // The restored streak continues where the snapshot left off: two more
  // clean hours complete it and step the ladder down.
  fresh.on_hour(false);
  fresh.on_hour(false);
  EXPECT_EQ(fresh.rung(), 1u);
}

}  // namespace
}  // namespace billcap::market
