#include "market/rebate.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "lp/milp.hpp"
#include "lp/problem.hpp"

namespace billcap::market {
namespace {

PricingPolicy dc1_policy() {
  return PricingPolicy({0.0, 200.0, 237.3, 266.7, 300.0},
                       {10.00, 13.90, 15.00, 22.00, 24.00});
}

RebateProgram program() {
  return RebateProgram{.baseline_mw = 25.0, .rebate_per_mwh = 8.0};
}

TEST(RebateProgramTest, PeakWindow) {
  const RebateProgram p = program();
  EXPECT_FALSE(p.is_peak_hour(10));
  EXPECT_TRUE(p.is_peak_hour(14));
  EXPECT_TRUE(p.is_peak_hour(18));
  EXPECT_FALSE(p.is_peak_hour(19));
}

TEST(RebateProgramTest, Validation) {
  RebateProgram p = program();
  p.baseline_mw = -1.0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = program();
  p.rebate_per_mwh = -0.1;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = program();
  p.peak_start_hour = 20;
  p.peak_end_hour = 18;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = program();
  p.peak_end_hour = 25;
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(RebatedCostTest, OffPeakUnchanged) {
  const PricingPolicy policy = dc1_policy();
  EXPECT_DOUBLE_EQ(
      rebated_cost(policy, program(), /*peak_hour=*/false, 20.0, 150.0),
      policy.cost_for(20.0, 150.0));
}

TEST(RebatedCostTest, CurtailmentEarnsCredit) {
  const PricingPolicy policy = dc1_policy();
  // 20 MW draw, 5 MW under the 25 MW baseline: credit 5 * 8 = $40.
  EXPECT_DOUBLE_EQ(rebated_cost(policy, program(), true, 20.0, 150.0),
                   policy.cost_for(20.0, 150.0) - 40.0);
}

TEST(RebatedCostTest, NoCreditAboveBaseline) {
  const PricingPolicy policy = dc1_policy();
  EXPECT_DOUBLE_EQ(rebated_cost(policy, program(), true, 30.0, 150.0),
                   policy.cost_for(30.0, 150.0));
}

TEST(ApplyRebateTest, MatchesGroundTruthEverywhere) {
  const PricingPolicy policy = dc1_policy();
  const RebateProgram prog = program();
  const double d = 150.0;
  const lp::PiecewiseAffine base = policy.dc_cost_curve(d, 60.0);
  const lp::PiecewiseAffine rebated = apply_rebate(base, prog);
  for (double p = 0.5; p < 60.0; p += 0.5) {
    EXPECT_NEAR(rebated.value(p) - base.value(p),
                -prog.rebate_per_mwh *
                    std::max(0.0, prog.baseline_mw - p),
                1e-9)
        << "p " << p;
  }
}

TEST(ApplyRebateTest, SplitsStraddlingSegment) {
  const PricingPolicy policy = dc1_policy();
  const lp::PiecewiseAffine base = policy.dc_cost_curve(150.0, 60.0);
  const lp::PiecewiseAffine rebated = apply_rebate(base, program());
  EXPECT_EQ(rebated.num_segments(), base.num_segments() + 1);
  // 25.0 must now be a breakpoint.
  bool found = false;
  for (double b : rebated.breaks)
    if (std::abs(b - 25.0) < 1e-12) found = true;
  EXPECT_TRUE(found);
}

TEST(ApplyRebateTest, ZeroRebateIsIdentity) {
  const lp::PiecewiseAffine base = dc1_policy().dc_cost_curve(150.0, 60.0);
  RebateProgram prog = program();
  prog.rebate_per_mwh = 0.0;
  const lp::PiecewiseAffine same = apply_rebate(base, prog);
  EXPECT_EQ(same.breaks, base.breaks);
  EXPECT_EQ(same.slopes, base.slopes);
}

TEST(ApplyRebateTest, MilpSeesTheIncentive) {
  // Minimizing cost with a demand floor: without the rebate the optimum
  // sits at the floor; with a strong rebate whose credit beats the energy
  // price the optimizer still cannot go below the floor, but the *cost*
  // reflects the credit.
  const PricingPolicy policy = dc1_policy();
  const lp::PiecewiseAffine rebated =
      apply_rebate(policy.dc_cost_curve(150.0, 60.0), program());

  lp::Problem problem;
  const lp::PiecewiseVars vars =
      lp::add_piecewise_cost(problem, rebated, "cost");
  problem.add_constraint("floor", {{vars.x, 1.0}}, lp::Relation::kGreaterEqual,
                         20.0);
  const lp::Solution s = lp::solve_milp(problem);
  ASSERT_TRUE(s.ok());
  EXPECT_NEAR(s.x[static_cast<std::size_t>(vars.x)], 20.0, 1e-6);
  EXPECT_NEAR(s.objective, policy.cost_for(20.0, 150.0) - 40.0, 1e-6);
}

TEST(ApplyRebateTest, BaselineBeyondCapCreditsWholeRange) {
  const PricingPolicy policy = dc1_policy();
  RebateProgram prog = program();
  prog.baseline_mw = 100.0;  // beyond the 60 MW curve cap
  const lp::PiecewiseAffine base = policy.dc_cost_curve(150.0, 60.0);
  const lp::PiecewiseAffine rebated = apply_rebate(base, prog);
  EXPECT_EQ(rebated.num_segments(), base.num_segments());
  for (std::size_t k = 0; k < rebated.num_segments(); ++k)
    EXPECT_NEAR(rebated.slopes[k], base.slopes[k] + prog.rebate_per_mwh,
                1e-12);
}

}  // namespace
}  // namespace billcap::market
