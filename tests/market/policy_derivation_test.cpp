#include "market/policy_derivation.hpp"

#include <gtest/gtest.h>

#include "market/dcopf.hpp"
#include "market/pjm5.hpp"

namespace billcap::market {
namespace {

TEST(PolicyDerivationTest, OnePolicyPerLoadBus) {
  const Grid g = pjm5_grid();
  const auto policies =
      derive_policies_from_opf(g, pjm5_load_buses(), 900.0, 10.0);
  EXPECT_EQ(policies.size(), 3u);
}

TEST(PolicyDerivationTest, FirstLevelIsBrightonPrice) {
  const Grid g = pjm5_grid();
  const auto policies =
      derive_policies_from_opf(g, pjm5_load_buses(), 900.0, 10.0);
  for (const auto& p : policies)
    EXPECT_NEAR(p.prices_per_mwh().front(), 10.0, 1e-6);
}

TEST(PolicyDerivationTest, StepStructureEmerges) {
  // Sweeping to the base case must produce multiple price levels at every
  // consumer — the mechanism behind Figure 1.
  const Grid g = pjm5_grid();
  const auto policies =
      derive_policies_from_opf(g, pjm5_load_buses(), 900.0, 5.0);
  for (const auto& p : policies) {
    EXPECT_GE(p.num_levels(), 2u);
    EXPECT_LE(p.num_levels(), 8u);  // a handful, like real-world policies
  }
}

TEST(PolicyDerivationTest, DerivedPolicyMatchesPointwiseOpf) {
  // The collapsed step function must agree with a fresh OPF solve at
  // points between the sweep samples.
  const Grid g = pjm5_grid();
  const double step = 5.0;
  const auto policies =
      derive_policies_from_opf(g, pjm5_load_buses(), 900.0, step);
  for (double system_load : {150.0, 450.0, 750.0, 885.0}) {
    const auto opf = solve_dcopf(g, pjm5_loads(system_load));
    ASSERT_TRUE(opf.ok());
    const auto buses = pjm5_load_buses();
    for (std::size_t i = 0; i < buses.size(); ++i) {
      const double local = system_load / 3.0;
      // Within one sweep step of a threshold the collapsed function may
      // disagree; sample points are chosen away from derived thresholds.
      EXPECT_NEAR(policies[i].price_at(local),
                  opf.lmp[static_cast<std::size_t>(buses[i])], 0.5)
          << "load " << system_load << " bus " << i;
    }
  }
}

TEST(PolicyDerivationTest, ThresholdNearBrightonLimit) {
  // The first step change should appear near system load 600 MW
  // (local load 200 MW) where Brighton's capacity binds.
  const Grid g = pjm5_grid();
  const auto policies =
      derive_policies_from_opf(g, pjm5_load_buses(), 900.0, 2.0);
  for (const auto& p : policies) {
    ASSERT_GE(p.num_levels(), 2u);
    EXPECT_NEAR(p.thresholds_mw()[1], 200.0, 15.0);
  }
}

TEST(PolicyDerivationTest, InputValidation) {
  const Grid g = pjm5_grid();
  EXPECT_THROW(derive_policies_from_opf(g, {}, 900.0), std::invalid_argument);
  EXPECT_THROW(derive_policies_from_opf(g, pjm5_load_buses(), -10.0),
               std::invalid_argument);
  EXPECT_THROW(derive_policies_from_opf(g, pjm5_load_buses(), 900.0, 0.0),
               std::invalid_argument);
}

TEST(PolicyDerivationTest, InfeasibleSweepThrows) {
  const Grid g = pjm5_grid();
  EXPECT_THROW(derive_policies_from_opf(g, pjm5_load_buses(), 2000.0, 100.0),
               std::runtime_error);
}

}  // namespace
}  // namespace billcap::market
