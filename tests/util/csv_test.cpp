#include "util/csv.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

namespace billcap::util {
namespace {

TEST(CsvTest, RoundTripNumericRows) {
  Csv doc({"hour", "cost"});
  doc.add_numeric_row({0.0, 123.456});
  doc.add_numeric_row({1.0, 0.1});
  const Csv parsed = Csv::parse(doc.to_string());
  ASSERT_EQ(parsed.num_rows(), 2u);
  EXPECT_DOUBLE_EQ(parsed.cell_as_double(0, 1), 123.456);
  EXPECT_DOUBLE_EQ(parsed.cell_as_double(1, 1), 0.1);
}

TEST(CsvTest, HeaderAccessors) {
  Csv doc({"a", "b", "c"});
  EXPECT_EQ(doc.num_cols(), 3u);
  EXPECT_EQ(doc.column_index("b"), 1u);
  EXPECT_THROW(doc.column_index("zz"), std::out_of_range);
}

TEST(CsvTest, AddRowWidthMismatchThrows) {
  Csv doc({"a", "b"});
  EXPECT_THROW(doc.add_row({"only-one"}), std::invalid_argument);
}

TEST(CsvTest, QuotedCellsWithCommasAndQuotes) {
  Csv doc({"name", "note"});
  doc.add_row({"x,y", "he said \"hi\""});
  const std::string text = doc.to_string();
  const Csv parsed = Csv::parse(text);
  EXPECT_EQ(parsed.cell(0, 0), "x,y");
  EXPECT_EQ(parsed.cell(0, 1), "he said \"hi\"");
}

TEST(CsvTest, ParsesQuotedNewlines) {
  const Csv parsed = Csv::parse("a,b\n\"line1\nline2\",2\n");
  ASSERT_EQ(parsed.num_rows(), 1u);
  EXPECT_EQ(parsed.cell(0, 0), "line1\nline2");
}

TEST(CsvTest, ParsesCrLf) {
  const Csv parsed = Csv::parse("a,b\r\n1,2\r\n");
  ASSERT_EQ(parsed.num_rows(), 1u);
  EXPECT_EQ(parsed.cell(0, 1), "2");
}

TEST(CsvTest, EmptyDocumentThrows) {
  EXPECT_THROW(Csv::parse(""), std::runtime_error);
}

TEST(CsvTest, NonNumericCellThrowsOnNumericAccess) {
  const Csv parsed = Csv::parse("a\nhello\n");
  EXPECT_THROW(parsed.cell_as_double(0, 0), std::runtime_error);
}

TEST(CsvTest, ColumnAsDoubles) {
  const Csv parsed = Csv::parse("h,v\n0,1.5\n1,2.5\n2,3.5\n");
  const auto vs = parsed.column_as_doubles("v");
  ASSERT_EQ(vs.size(), 3u);
  EXPECT_DOUBLE_EQ(vs[0], 1.5);
  EXPECT_DOUBLE_EQ(vs[2], 3.5);
}

TEST(CsvTest, SaveAndLoad) {
  const auto path =
      (std::filesystem::temp_directory_path() / "billcap_csv_test.csv")
          .string();
  Csv doc({"x"});
  doc.add_numeric_row({42.0});
  doc.save(path);
  const Csv loaded = Csv::load(path);
  EXPECT_DOUBLE_EQ(loaded.cell_as_double(0, 0), 42.0);
  std::remove(path.c_str());
}

TEST(CsvTest, LoadMissingFileThrows) {
  EXPECT_THROW(Csv::load("/nonexistent/path/file.csv"), std::runtime_error);
}

TEST(CsvTest, FormatDoubleRoundTrips) {
  for (double x : {0.1, 1.0 / 3.0, 1e-300, 12345.6789}) {
    EXPECT_EQ(std::stod(format_double(x)), x);
  }
}

namespace {
std::string writer_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}
}  // namespace

TEST(CsvWriterTest, EveryRowIsOnDiskImmediately) {
  const std::string path = writer_path("billcap_csv_writer_flush.csv");
  CsvWriter writer(path, {"hour", "cost"});
  for (int h = 0; h < 3; ++h) {
    writer.add_row({std::to_string(h), "1.5"});
    // Flushed after every row: a reader (or a post-mortem after a kill)
    // sees all committed rows without waiting for the writer to close.
    const Csv seen = Csv::load(path);
    EXPECT_EQ(seen.num_rows(), static_cast<std::size_t>(h + 1));
  }
  EXPECT_EQ(writer.num_rows(), 3u);
  std::remove(path.c_str());
}

TEST(CsvWriterTest, RowWidthMismatchThrows) {
  const std::string path = writer_path("billcap_csv_writer_width.csv");
  CsvWriter writer(path, {"a", "b"});
  EXPECT_THROW(writer.add_row({"only-one"}), std::invalid_argument);
  std::remove(path.c_str());
}

TEST(CsvWriterTest, ResumeKeepsCommittedRowsAndDropsTail) {
  const std::string path = writer_path("billcap_csv_writer_resume.csv");
  {
    CsvWriter writer(path, {"hour", "cost"});
    for (int h = 0; h < 5; ++h) writer.add_row({std::to_string(h), "1"});
  }
  // Resume as if only the first 3 rows were checkpoint-committed: rows 3-4
  // are dropped, appends continue at row 3, nothing is duplicated.
  CsvWriter resumed(path, {"hour", "cost"}, 3);
  EXPECT_EQ(resumed.num_rows(), 3u);
  resumed.add_row({"3", "2"});
  const Csv seen = Csv::load(path);
  ASSERT_EQ(seen.num_rows(), 4u);
  EXPECT_EQ(seen.cell_as_double(2, 1), 1.0);
  EXPECT_EQ(seen.cell_as_double(3, 1), 2.0);
  std::remove(path.c_str());
}

TEST(CsvWriterTest, ResumeOfMissingFileStartsFresh) {
  const std::string path = writer_path("billcap_csv_writer_absent.csv");
  std::remove(path.c_str());
  CsvWriter writer(path, {"a"}, 10);
  EXPECT_EQ(writer.num_rows(), 0u);
  writer.add_row({"1"});
  EXPECT_EQ(Csv::load(path).num_rows(), 1u);
  std::remove(path.c_str());
}

TEST(CsvTest, ParseResilientDropsTornFinalRecordOnly) {
  // A SIGKILL mid-append leaves an unterminated final line...
  Csv doc = Csv::parse_resilient("hour,cost\n0,1.5\n1,2.5\n2,3.");
  ASSERT_EQ(doc.num_rows(), 2u);
  EXPECT_EQ(doc.cell(1, 1), "2.5");

  // ...or a terminated final row with too few cells. Both are dropped.
  doc = Csv::parse_resilient("hour,cost\n0,1.5\n1\n");
  ASSERT_EQ(doc.num_rows(), 1u);

  // An intact document parses identically to parse().
  doc = Csv::parse_resilient("hour,cost\n0,1.5\n1,2.5\n");
  EXPECT_EQ(doc.num_rows(), 2u);

  // A torn row anywhere but the tail is real corruption, not a crash
  // artifact: still an error.
  EXPECT_THROW(Csv::parse_resilient("hour,cost\n0\n1,2.5\n"),
               std::invalid_argument);
  // Strict parse() keeps rejecting the torn tail.
  EXPECT_THROW(Csv::parse("hour,cost\n0,1.5\n1\n"), std::invalid_argument);
}

TEST(CsvTest, ParseResilientTornQuotedCell) {
  // The kill landed inside a quoted cell: the unterminated quote swallows
  // the rest of the text, making the last record torn — dropped.
  const Csv doc = Csv::parse_resilient("hour,note\n0,\"ok\"\n1,\"half");
  ASSERT_EQ(doc.num_rows(), 1u);
  EXPECT_EQ(doc.cell(0, 1), "ok");
}

TEST(CsvWriterTest, ResumeAfterTornLastRowDropsItAndContinues) {
  const std::string path = writer_path("billcap_csv_writer_torn.csv");
  {
    CsvWriter writer(path, {"hour", "cost"});
    for (int h = 0; h < 3; ++h) writer.add_row({std::to_string(h), "1"});
  }
  // Simulate a kill mid-append: a torn, unterminated fourth row.
  {
    std::ofstream out(path, std::ios::binary | std::ios::app);
    out << "3,9";  // no newline — the flush never completed
  }
  // Resume keeping all 3 committed rows: the torn tail must not count as
  // a row, corrupt the parse, or survive on disk after the next append.
  CsvWriter resumed(path, {"hour", "cost"}, 3);
  EXPECT_EQ(resumed.num_rows(), 3u);
  resumed.add_row({"3", "2"});
  const Csv seen = Csv::load(path);
  ASSERT_EQ(seen.num_rows(), 4u);
  EXPECT_EQ(seen.cell(3, 0), "3");
  EXPECT_EQ(seen.cell_as_double(3, 1), 2.0);
  std::remove(path.c_str());
}

TEST(CsvWriterTest, ResumeAfterTornRowBelowKeepCountReplaysFromCheckpoint) {
  const std::string path = writer_path("billcap_csv_writer_torn_short.csv");
  {
    CsvWriter writer(path, {"hour", "cost"});
    writer.add_row({"0", "1"});
    writer.add_row({"1", "1"});
  }
  {
    std::ofstream out(path, std::ios::binary | std::ios::app);
    out << "2,1";  // torn: hour 2 never committed its checkpoint
  }
  // The checkpoint says 3 rows were committed, but only 2 survived whole:
  // the writer keeps what is actually intact and the caller re-appends
  // the replayed hours (fewer rows than asked for is not an error).
  CsvWriter resumed(path, {"hour", "cost"}, 3);
  EXPECT_EQ(resumed.num_rows(), 2u);
  std::remove(path.c_str());
}

TEST(CsvWriterTest, ResumeHeaderMismatchThrows) {
  const std::string path = writer_path("billcap_csv_writer_header.csv");
  { CsvWriter writer(path, {"a", "b"}); }
  EXPECT_THROW(CsvWriter(path, {"x", "y"}, 0), std::runtime_error);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace billcap::util
