#include "util/journal.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <string>

namespace billcap::util {
namespace {

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

TEST(JournalTest, RoundTripsAllValueTypes) {
  Journal j("journal-test", 3);
  j.set("name", "evaluation month");
  j.set_u64("big", 0xffffffffffffffffULL);
  j.set_size("count", 720);
  j.set_double_bits("pi", 3.14159265358979312);
  j.set_double_list("lanes", {0.0, -0.0, 1.5e-300, 2.75});

  const Journal back = Journal::parse(j.serialize(), "journal-test", 3);
  EXPECT_EQ(back.version(), 3);
  EXPECT_EQ(back.get("name"), "evaluation month");
  EXPECT_EQ(back.get_u64("big"), 0xffffffffffffffffULL);
  EXPECT_EQ(back.get_size("count"), 720u);
  EXPECT_EQ(back.get_double_bits("pi"), 3.14159265358979312);
  const auto lanes = back.get_double_list("lanes");
  ASSERT_EQ(lanes.size(), 4u);
  EXPECT_EQ(lanes[0], 0.0);
  EXPECT_TRUE(std::signbit(lanes[1]));  // -0.0 survives bitwise
  EXPECT_EQ(lanes[2], 1.5e-300);
  EXPECT_EQ(lanes[3], 2.75);
  EXPECT_TRUE(back.has("pi"));
  EXPECT_FALSE(back.has("absent"));
}

TEST(JournalTest, DoubleBitsAreExactForNonFiniteAndDenormal) {
  Journal j("journal-test", 1);
  j.set_double_bits("inf", std::numeric_limits<double>::infinity());
  j.set_double_bits("denorm", std::numeric_limits<double>::denorm_min());
  const Journal back = Journal::parse(j.serialize(), "journal-test", 1);
  EXPECT_EQ(back.get_double_bits("inf"),
            std::numeric_limits<double>::infinity());
  EXPECT_EQ(back.get_double_bits("denorm"),
            std::numeric_limits<double>::denorm_min());
}

TEST(JournalTest, RejectsDuplicateAndMalformedKeys) {
  Journal j("journal-test", 1);
  j.set("key", "v");
  EXPECT_THROW(j.set("key", "again"), std::invalid_argument);
  EXPECT_THROW(j.set("", "v"), std::invalid_argument);
  EXPECT_THROW(j.set("a=b", "v"), std::invalid_argument);
  EXPECT_THROW(j.set("nl", "line1\nline2"), std::invalid_argument);
}

TEST(JournalTest, MissingKeyAndWrongTypeThrow) {
  Journal j("journal-test", 1);
  j.set("word", "hello");
  const Journal back = Journal::parse(j.serialize(), "journal-test", 1);
  EXPECT_THROW(back.get("absent"), std::runtime_error);
  EXPECT_THROW(back.get_u64("word"), std::runtime_error);
  EXPECT_THROW(back.get_double_bits("word"), std::runtime_error);
}

TEST(JournalTest, RejectsWrongMagicAndNewerVersion) {
  Journal j("journal-test", 2);
  j.set("k", "v");
  const std::string text = j.serialize();
  EXPECT_THROW(Journal::parse(text, "other-magic", 2), std::runtime_error);
  // A reader that only understands version 1 must refuse version 2.
  EXPECT_THROW(Journal::parse(text, "journal-test", 1), std::runtime_error);
  // A reader that understands a newer format still reads the old one.
  EXPECT_NO_THROW(Journal::parse(text, "journal-test", 5));
}

TEST(JournalTest, DetectsTruncationAndCorruption) {
  Journal j("journal-test", 1);
  j.set("spent", "123456");
  j.set("hour", "77");
  const std::string text = j.serialize();

  // Truncation: drop the checksum line (a partial write / torn file).
  const std::string truncated = text.substr(0, text.rfind("checksum"));
  EXPECT_THROW(Journal::parse(truncated, "journal-test", 1),
               std::runtime_error);

  // Corruption: flip one payload byte; checksum no longer matches.
  std::string corrupted = text;
  corrupted[corrupted.find("123456")] = '9';
  EXPECT_THROW(Journal::parse(corrupted, "journal-test", 1),
               std::runtime_error);

  EXPECT_THROW(Journal::parse("", "journal-test", 1), std::runtime_error);
}

TEST(JournalTest, SaveAtomicLoadsBackAndLeavesNoTempFile) {
  const std::string path = temp_path("billcap_journal_test.j");
  Journal j("journal-test", 1);
  j.set_size("hour", 42);
  j.save_atomic(path);

  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
  const Journal back = Journal::load(path, "journal-test", 1);
  EXPECT_EQ(back.get_size("hour"), 42u);

  // Overwrite must replace, not append.
  Journal j2("journal-test", 1);
  j2.set_size("hour", 43);
  j2.save_atomic(path);
  EXPECT_EQ(Journal::load(path, "journal-test", 1).get_size("hour"), 43u);

  std::remove(path.c_str());
}

TEST(JournalTest, GenerationPathNaming) {
  EXPECT_EQ(Journal::generation_path("ck.j", 0), "ck.j");
  EXPECT_EQ(Journal::generation_path("ck.j", 1), "ck.j.1");
  EXPECT_EQ(Journal::generation_path("ck.j", 7), "ck.j.7");
}

TEST(JournalTest, RotateGenerationsShiftsAndDropsTheOldest) {
  const std::string path = temp_path("billcap_journal_rotate.j");
  for (std::size_t g = 0; g < 5; ++g)
    std::remove(Journal::generation_path(path, g).c_str());

  const auto save_marked = [&](std::size_t mark) {
    Journal j("journal-test", 1);
    j.set_size("mark", mark);
    j.save_atomic(path);
  };
  const auto mark_of = [&](std::size_t g) {
    return Journal::load(Journal::generation_path(path, g), "journal-test", 1)
        .get_size("mark");
  };

  // Four save+rotate cycles through a K=3 chain: only the three newest
  // marks survive, each shifted one slot per rotation.
  for (std::size_t mark = 0; mark < 4; ++mark) {
    Journal::rotate_generations(path, 3);
    save_marked(mark);
  }
  EXPECT_EQ(mark_of(0), 3u);
  EXPECT_EQ(mark_of(1), 2u);
  EXPECT_EQ(mark_of(2), 1u);
  EXPECT_FALSE(std::filesystem::exists(Journal::generation_path(path, 3)));

  // Missing middle generations are skipped, not fatal.
  std::remove(Journal::generation_path(path, 1).c_str());
  Journal::rotate_generations(path, 3);
  EXPECT_FALSE(std::filesystem::exists(path));  // newest moved down
  EXPECT_EQ(mark_of(1), 3u);
  EXPECT_EQ(mark_of(2), 1u);  // old gen 2 kept its slot (gen 1 was absent)

  // keep_generations <= 1 is a no-op (single-checkpoint legacy layout).
  save_marked(9);
  Journal::rotate_generations(path, 1);
  EXPECT_EQ(mark_of(0), 9u);

  for (std::size_t g = 0; g < 5; ++g)
    std::remove(Journal::generation_path(path, g).c_str());
}

TEST(JournalTest, LoadRejectsMissingAndTruncatedFiles) {
  EXPECT_THROW(Journal::load(temp_path("billcap_journal_absent.j"),
                             "journal-test", 1),
               std::runtime_error);

  const std::string path = temp_path("billcap_journal_trunc.j");
  Journal j("journal-test", 1);
  j.set("k", "a long enough value to truncate meaningfully");
  j.save_atomic(path);
  const std::string text = slurp(path);
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << text.substr(0, text.size() / 2);
  }
  EXPECT_THROW(Journal::load(path, "journal-test", 1), std::runtime_error);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace billcap::util
