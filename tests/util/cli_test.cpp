#include "util/cli.hpp"

#include <gtest/gtest.h>

namespace billcap::util {
namespace {

CliArgs parse(std::initializer_list<const char*> tokens) {
  std::vector<const char*> argv = {"prog"};
  argv.insert(argv.end(), tokens.begin(), tokens.end());
  return CliArgs(static_cast<int>(argv.size()), argv.data());
}

TEST(CliArgsTest, CommandAndPositionals) {
  const CliArgs args = parse({"simulate", "extra1", "extra2"});
  EXPECT_EQ(args.command(), "simulate");
  ASSERT_EQ(args.positionals().size(), 2u);
  EXPECT_EQ(args.positionals()[1], "extra2");
}

TEST(CliArgsTest, FlagWithSeparateValue) {
  const CliArgs args = parse({"run", "--budget", "1.5e6"});
  EXPECT_TRUE(args.has("budget"));
  EXPECT_DOUBLE_EQ(args.get_double("budget", 0.0), 1.5e6);
}

TEST(CliArgsTest, FlagWithEqualsValue) {
  const CliArgs args = parse({"run", "--policy=3"});
  EXPECT_EQ(args.get_long("policy", 0), 3);
}

TEST(CliArgsTest, BareSwitch) {
  const CliArgs args = parse({"run", "--verbose", "--budget", "5"});
  EXPECT_TRUE(args.get_bool("verbose"));
  EXPECT_FALSE(args.get_bool("quiet"));
  EXPECT_DOUBLE_EQ(args.get_double("budget", 0.0), 5.0);
}

TEST(CliArgsTest, DefaultsWhenAbsent) {
  const CliArgs args = parse({"run"});
  EXPECT_EQ(args.get("name", "fallback"), "fallback");
  EXPECT_DOUBLE_EQ(args.get_double("x", 2.5), 2.5);
  EXPECT_EQ(args.get_long("n", 7), 7);
}

TEST(CliArgsTest, TypeErrorsThrow) {
  const CliArgs args = parse({"run", "--x", "abc"});
  EXPECT_THROW(args.get_double("x", 0.0), std::runtime_error);
  EXPECT_THROW(args.get_long("x", 0), std::runtime_error);
  EXPECT_THROW(args.get_bool("x"), std::runtime_error);
}

TEST(CliArgsTest, DoubleList) {
  const CliArgs args = parse({"run", "--budgets", "0.5e6,1e6,2.5e6"});
  const auto list = args.get_double_list("budgets", {});
  ASSERT_EQ(list.size(), 3u);
  EXPECT_DOUBLE_EQ(list[0], 0.5e6);
  EXPECT_DOUBLE_EQ(list[2], 2.5e6);
}

TEST(CliArgsTest, DoubleListErrors) {
  EXPECT_THROW(parse({"run", "--xs", "1,zz"}).get_double_list("xs", {}),
               std::runtime_error);
  const auto fallback =
      parse({"run"}).get_double_list("xs", {1.0, 2.0});
  EXPECT_EQ(fallback.size(), 2u);
}

TEST(CliArgsTest, NegativeNumbersAreValuesNotFlags) {
  const CliArgs args = parse({"run", "--delta", "-3.5"});
  EXPECT_DOUBLE_EQ(args.get_double("delta", 0.0), -3.5);
}

TEST(CliArgsTest, EmptyArgv) {
  const CliArgs args = parse({});
  EXPECT_TRUE(args.command().empty());
  EXPECT_FALSE(args.has("anything"));
}

}  // namespace
}  // namespace billcap::util
