#include "util/cli.hpp"

#include <gtest/gtest.h>

namespace billcap::util {
namespace {

CliArgs parse(std::initializer_list<const char*> tokens) {
  std::vector<const char*> argv = {"prog"};
  argv.insert(argv.end(), tokens.begin(), tokens.end());
  return CliArgs(static_cast<int>(argv.size()), argv.data());
}

TEST(CliArgsTest, CommandAndPositionals) {
  const CliArgs args = parse({"simulate", "extra1", "extra2"});
  EXPECT_EQ(args.command(), "simulate");
  ASSERT_EQ(args.positionals().size(), 2u);
  EXPECT_EQ(args.positionals()[1], "extra2");
}

TEST(CliArgsTest, FlagWithSeparateValue) {
  const CliArgs args = parse({"run", "--budget", "1.5e6"});
  EXPECT_TRUE(args.has("budget"));
  EXPECT_DOUBLE_EQ(args.get_double("budget", 0.0), 1.5e6);
}

TEST(CliArgsTest, FlagWithEqualsValue) {
  const CliArgs args = parse({"run", "--policy=3"});
  EXPECT_EQ(args.get_long("policy", 0), 3);
}

TEST(CliArgsTest, BareSwitch) {
  const CliArgs args = parse({"run", "--verbose", "--budget", "5"});
  EXPECT_TRUE(args.get_bool("verbose"));
  EXPECT_FALSE(args.get_bool("quiet"));
  EXPECT_DOUBLE_EQ(args.get_double("budget", 0.0), 5.0);
}

TEST(CliArgsTest, DefaultsWhenAbsent) {
  const CliArgs args = parse({"run"});
  EXPECT_EQ(args.get("name", "fallback"), "fallback");
  EXPECT_DOUBLE_EQ(args.get_double("x", 2.5), 2.5);
  EXPECT_EQ(args.get_long("n", 7), 7);
}

TEST(CliArgsTest, TypeErrorsThrow) {
  const CliArgs args = parse({"run", "--x", "abc"});
  EXPECT_THROW(args.get_double("x", 0.0), std::runtime_error);
  EXPECT_THROW(args.get_long("x", 0), std::runtime_error);
  EXPECT_THROW(args.get_bool("x"), std::runtime_error);
}

TEST(CliArgsTest, DoubleList) {
  const CliArgs args = parse({"run", "--budgets", "0.5e6,1e6,2.5e6"});
  const auto list = args.get_double_list("budgets", {});
  ASSERT_EQ(list.size(), 3u);
  EXPECT_DOUBLE_EQ(list[0], 0.5e6);
  EXPECT_DOUBLE_EQ(list[2], 2.5e6);
}

TEST(CliArgsTest, DoubleListErrors) {
  EXPECT_THROW(parse({"run", "--xs", "1,zz"}).get_double_list("xs", {}),
               std::runtime_error);
  const auto fallback =
      parse({"run"}).get_double_list("xs", {1.0, 2.0});
  EXPECT_EQ(fallback.size(), 2u);
}

TEST(CliArgsTest, NegativeNumbersAreValuesNotFlags) {
  const CliArgs args = parse({"run", "--delta", "-3.5"});
  EXPECT_DOUBLE_EQ(args.get_double("delta", 0.0), -3.5);
}

TEST(CliArgsTest, EmptyArgv) {
  const CliArgs args = parse({});
  EXPECT_TRUE(args.command().empty());
  EXPECT_FALSE(args.has("anything"));
}

TEST(CliArgsTest, GetProbAcceptsRangeAndFallsBack) {
  const CliArgs args = parse({"run", "--p", "0.25"});
  EXPECT_DOUBLE_EQ(args.get_prob("p", 0.0), 0.25);
  EXPECT_DOUBLE_EQ(args.get_prob("absent", 0.5), 0.5);
  const CliArgs edges = parse({"run", "--lo", "0", "--hi", "1"});
  EXPECT_DOUBLE_EQ(edges.get_prob("lo", 0.5), 0.0);
  EXPECT_DOUBLE_EQ(edges.get_prob("hi", 0.5), 1.0);
}

TEST(CliArgsTest, GetProbRejectsOutOfRangeNanAndGarbage) {
  EXPECT_THROW(parse({"run", "--p", "-0.1"}).get_prob("p", 0.0), UsageError);
  EXPECT_THROW(parse({"run", "--p", "1.5"}).get_prob("p", 0.0), UsageError);
  EXPECT_THROW(parse({"run", "--p", "nan"}).get_prob("p", 0.0), UsageError);
  EXPECT_THROW(parse({"run", "--p", "abc"}).get_prob("p", 0.0), UsageError);
}

TEST(CliArgsTest, GetPositiveDoubleRejectsNonPositiveAndNonFinite) {
  const CliArgs ok = parse({"run", "--ms", "250.5"});
  EXPECT_DOUBLE_EQ(ok.get_positive_double("ms", 1.0), 250.5);
  EXPECT_THROW(parse({"run", "--ms", "0"}).get_positive_double("ms", 1.0),
               UsageError);
  EXPECT_THROW(parse({"run", "--ms", "-3"}).get_positive_double("ms", 1.0),
               UsageError);
  EXPECT_THROW(parse({"run", "--ms", "inf"}).get_positive_double("ms", 1.0),
               UsageError);
  EXPECT_THROW(parse({"run", "--ms", "nan"}).get_positive_double("ms", 1.0),
               UsageError);
}

TEST(CliArgsTest, GetPositiveLongRejectsZeroAndNegative) {
  const CliArgs ok = parse({"run", "--n", "4"});
  EXPECT_EQ(ok.get_positive_long("n", 1), 4);
  EXPECT_THROW(parse({"run", "--n", "0"}).get_positive_long("n", 1),
               UsageError);
  EXPECT_THROW(parse({"run", "--n", "-2"}).get_positive_long("n", 1),
               UsageError);
  EXPECT_THROW(parse({"run", "--n", "2.5"}).get_positive_long("n", 1),
               UsageError);
}

TEST(CliArgsTest, UsageErrorIsDistinguishableFromRuntimeError) {
  // main() maps UsageError to exit code 2 and other exceptions to 1, so
  // the validated getters must throw the distinct type.
  try {
    parse({"run", "--p", "2"}).get_prob("p", 0.0);
    FAIL() << "expected UsageError";
  } catch (const UsageError&) {
  } catch (const std::exception&) {
    FAIL() << "wrong exception type";
  }
}

}  // namespace
}  // namespace billcap::util
