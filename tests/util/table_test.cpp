#include "util/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace billcap::util {
namespace {

TEST(TableTest, AlignsColumns) {
  Table t({"id", "value"});
  t.add_row({"1", "short"});
  t.add_row({"200", "a-much-longer-cell"});
  const std::string out = t.to_string();
  // Every line should have the same position for the second column start.
  std::istringstream is(out);
  std::string header;
  std::string rule;
  std::string row1;
  std::string row2;
  std::getline(is, header);
  std::getline(is, rule);
  std::getline(is, row1);
  std::getline(is, row2);
  EXPECT_NE(header.find("id"), std::string::npos);
  EXPECT_NE(rule.find("---"), std::string::npos);
  EXPECT_EQ(row1.find("short"), row2.find("a-much-longer-cell"));
}

TEST(TableTest, WidthMismatchThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"x"}), std::invalid_argument);
}

TEST(TableTest, NumericRowPrecision) {
  Table t({"v"});
  t.add_numeric_row({3.14159}, 2);
  EXPECT_NE(t.to_string().find("3.14"), std::string::npos);
  EXPECT_EQ(t.to_string().find("3.142"), std::string::npos);
}

TEST(TableTest, FormatFixed) {
  EXPECT_EQ(format_fixed(1.5, 0), "2");  // round-half-even via printf
  EXPECT_EQ(format_fixed(1.25, 1), "1.2");
  EXPECT_EQ(format_fixed(-3.456, 2), "-3.46");
}

TEST(TableTest, PrintStreams) {
  Table t({"x"});
  t.add_row({"1"});
  std::ostringstream os;
  t.print(os);
  EXPECT_EQ(os.str(), t.to_string());
}

}  // namespace
}  // namespace billcap::util
