#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

namespace billcap::util {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (a() == b()) ++equal;
  EXPECT_LT(equal, 2);
}

TEST(RngTest, ZeroSeedIsValid) {
  Rng rng(0);
  // xoshiro would be stuck at zero without SplitMix seeding.
  EXPECT_NE(rng(), 0u);
  EXPECT_NE(rng(), rng());
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10'000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1'000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(RngTest, UniformMeanIsCentered) {
  Rng rng(11);
  double total = 0.0;
  constexpr int kN = 100'000;
  for (int i = 0; i < kN; ++i) total += rng.uniform();
  EXPECT_NEAR(total / kN, 0.5, 0.01);
}

TEST(RngTest, BelowStaysInRange) {
  Rng rng(13);
  for (int i = 0; i < 10'000; ++i) EXPECT_LT(rng.below(17), 17u);
}

TEST(RngTest, BelowCoversAllResidues) {
  Rng rng(13);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 10'000; ++i) ++counts[rng.below(10)];
  for (int c : counts) EXPECT_GT(c, 800);  // ~1000 each
}

TEST(RngTest, NormalMomentsMatch) {
  Rng rng(17);
  double total = 0.0;
  double total_sq = 0.0;
  constexpr int kN = 200'000;
  for (int i = 0; i < kN; ++i) {
    const double z = rng.normal();
    total += z;
    total_sq += z * z;
  }
  EXPECT_NEAR(total / kN, 0.0, 0.02);
  EXPECT_NEAR(total_sq / kN, 1.0, 0.03);
}

TEST(RngTest, NormalScaleAndShift) {
  Rng rng(19);
  double total = 0.0;
  constexpr int kN = 100'000;
  for (int i = 0; i < kN; ++i) total += rng.normal(10.0, 2.0);
  EXPECT_NEAR(total / kN, 10.0, 0.05);
}

TEST(RngTest, ExponentialMeanIsInverseRate) {
  Rng rng(23);
  double total = 0.0;
  constexpr int kN = 100'000;
  for (int i = 0; i < kN; ++i) {
    const double x = rng.exponential(4.0);
    EXPECT_GE(x, 0.0);
    total += x;
  }
  EXPECT_NEAR(total / kN, 0.25, 0.01);
}

TEST(RngTest, LognormalIsPositive) {
  Rng rng(29);
  for (int i = 0; i < 1'000; ++i) EXPECT_GT(rng.lognormal(0.0, 0.5), 0.0);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(31);
  int hits = 0;
  constexpr int kN = 100'000;
  for (int i = 0; i < kN; ++i)
    if (rng.bernoulli(0.3)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.3, 0.01);
}

TEST(RngTest, SplitProducesIndependentStream) {
  Rng parent(37);
  Rng child = parent.split();
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (parent() == child()) ++equal;
  EXPECT_LT(equal, 2);
}

TEST(RngTest, SatisfiesUniformRandomBitGenerator) {
  static_assert(Rng::min() == 0);
  static_assert(Rng::max() == UINT64_MAX);
  Rng rng(1);
  [[maybe_unused]] const std::uint64_t draw = rng();
}

}  // namespace
}  // namespace billcap::util
