#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/rng.hpp"

namespace billcap::util {
namespace {

TEST(RunningStatsTest, EmptyDefaults) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.sum(), 0.0);
}

TEST(RunningStatsTest, SingleValue) {
  RunningStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(RunningStatsTest, KnownSeries) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance of this classic series is 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStatsTest, StableUnderLargeOffset) {
  // Welford should not lose precision when all values share a huge offset.
  RunningStats s;
  const double offset = 1e12;
  for (double x : {1.0, 2.0, 3.0, 4.0}) s.add(offset + x);
  EXPECT_NEAR(s.variance(), 5.0 / 3.0, 1e-6);
}

TEST(StatsTest, SumAndMean) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(sum(xs), 10.0);
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
  EXPECT_DOUBLE_EQ(mean(std::vector<double>{}), 0.0);
}

TEST(StatsTest, QuantileEndpointsAndMedian) {
  const std::vector<double> xs = {3.0, 1.0, 4.0, 1.0, 5.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 3.0);
}

TEST(StatsTest, QuantileInterpolates) {
  const std::vector<double> xs = {0.0, 10.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.25), 2.5);
}

TEST(StatsTest, QuantileRejectsBadQ) {
  const std::vector<double> xs = {1.0};
  EXPECT_THROW(quantile(xs, -0.1), std::invalid_argument);
  EXPECT_THROW(quantile(xs, 1.1), std::invalid_argument);
}

TEST(StatsTest, SquaredCvOfConstantIsZero) {
  const std::vector<double> xs = {4.0, 4.0, 4.0, 4.0};
  EXPECT_DOUBLE_EQ(squared_cv(xs), 0.0);
}

TEST(StatsTest, SquaredCvOfExponentialIsNearOne) {
  // Exponential inter-arrival times have CV^2 = 1; this is exactly the
  // C_A^2 statistic the bill capper monitors (Section IV-B).
  Rng rng(99);
  std::vector<double> xs;
  xs.reserve(200'000);
  for (int i = 0; i < 200'000; ++i) xs.push_back(rng.exponential(2.0));
  EXPECT_NEAR(squared_cv(xs), 1.0, 0.03);
}

TEST(StatsTest, RelativeErrorBasics) {
  const std::vector<double> a = {1.1, 2.0};
  const std::vector<double> b = {1.0, 2.0};
  const auto err = relative_error(a, b);
  EXPECT_NEAR(err[0], 0.1, 1e-12);
  EXPECT_DOUBLE_EQ(err[1], 0.0);
}

TEST(StatsTest, RelativeErrorSizeMismatchThrows) {
  const std::vector<double> a = {1.0};
  const std::vector<double> b = {1.0, 2.0};
  EXPECT_THROW(relative_error(a, b), std::invalid_argument);
}

}  // namespace
}  // namespace billcap::util
