#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace billcap::util {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTask) {
  ThreadPool pool(2);
  auto fut = pool.submit([] { return 21 * 2; });
  EXPECT_EQ(fut.get(), 42);
}

TEST(ThreadPoolTest, SizeMatchesRequest) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
}

TEST(ThreadPoolTest, DefaultSizeIsPositive) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPoolTest, ManyTasksAllComplete) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 500; ++i)
    futures.push_back(pool.submit([&counter] { ++counter; }));
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 500);
}

TEST(ThreadPoolTest, ExceptionPropagatesThroughFuture) {
  ThreadPool pool(1);
  auto fut = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(fut.get(), std::runtime_error);
}

TEST(ThreadPoolTest, DestructorDrainsQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 50; ++i)
      (void)pool.submit([&counter] { ++counter; });
  }  // destructor must finish all 50
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolTest, ThrowingTaskDoesNotWedgeThePool) {
  // A worker that lets an exception escape must stay alive: the next
  // submitted task still runs on the same (single) worker thread.
  ThreadPool pool(1);
  auto bad = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(bad.get(), std::runtime_error);
  auto good = pool.submit([] { return 7; });
  EXPECT_EQ(good.get(), 7);
}

TEST(ThreadPoolTest, SubmitNoexceptReturnsTypedResult) {
  ThreadPool pool(2);
  auto ok = pool.submit_noexcept([] { return 41 + 1; });
  const TaskResult<int> good = ok.get();
  EXPECT_TRUE(good.ok);
  EXPECT_EQ(good.value, 42);
  EXPECT_TRUE(good.error.empty());

  auto fail = pool.submit_noexcept(
      []() -> int { throw std::runtime_error("chunk fell over"); });
  const TaskResult<int> bad = fail.get();
  EXPECT_FALSE(bad.ok);
  EXPECT_EQ(bad.error, "chunk fell over");
}

TEST(ThreadPoolTest, SubmitNoexceptVoidCapturesFailure) {
  ThreadPool pool(1);
  auto fut = pool.submit_noexcept([] { throw 17; });  // non-std exception
  const TaskResult<void> res = fut.get();
  EXPECT_FALSE(res.ok);
  EXPECT_FALSE(res.error.empty());
}

TEST(ParallelForTest, CoversAllIndicesExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(256);
  parallel_for(pool, hits.size(),
               [&hits](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForTest, ZeroIterationsIsNoop) {
  ThreadPool pool(2);
  parallel_for(pool, 0, [](std::size_t) { FAIL() << "must not be called"; });
}

TEST(ParallelForTest, PropagatesTaskException) {
  ThreadPool pool(2);
  EXPECT_THROW(parallel_for(pool, 8,
                            [](std::size_t i) {
                              if (i == 3) throw std::runtime_error("bad");
                            }),
               std::runtime_error);
}

TEST(ParallelForTest, AllTasksCompleteDespiteAThrow) {
  // parallel_for must wait for every task before rethrowing — returning
  // early would leave workers touching a destroyed closure.
  ThreadPool pool(4);
  std::atomic<int> completed{0};
  EXPECT_THROW(parallel_for(pool, 64,
                            [&completed](std::size_t i) {
                              if (i == 0) throw std::runtime_error("early");
                              ++completed;
                            }),
               std::runtime_error);
  EXPECT_EQ(completed.load(), 63);
}

TEST(ParallelForTest, SharedPoolOverloadWorks) {
  std::atomic<int> counter{0};
  parallel_for(16, [&counter](std::size_t) { ++counter; });
  EXPECT_EQ(counter.load(), 16);
}

TEST(ParallelForTest, ResultsMatchSerialComputation) {
  ThreadPool pool(4);
  std::vector<double> out(1000, 0.0);
  parallel_for(pool, out.size(), [&out](std::size_t i) {
    out[i] = static_cast<double>(i) * 0.5;
  });
  double total = std::accumulate(out.begin(), out.end(), 0.0);
  EXPECT_DOUBLE_EQ(total, 0.5 * (999.0 * 1000.0 / 2.0));
}

}  // namespace
}  // namespace billcap::util
