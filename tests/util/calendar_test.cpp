#include "util/calendar.hpp"

#include <gtest/gtest.h>

namespace billcap::util {
namespace {

TEST(CalendarTest, HourOfDayWraps) {
  EXPECT_EQ(hour_of_day(0), 0u);
  EXPECT_EQ(hour_of_day(23), 23u);
  EXPECT_EQ(hour_of_day(24), 0u);
  EXPECT_EQ(hour_of_day(49), 1u);
}

TEST(CalendarTest, DayIndexing) {
  EXPECT_EQ(day_index(0), 0u);
  EXPECT_EQ(day_index(23), 0u);
  EXPECT_EQ(day_index(24), 1u);
  EXPECT_EQ(day_of_week(0), 0u);   // Monday
  EXPECT_EQ(day_of_week(6 * 24), 6u);
  EXPECT_EQ(day_of_week(7 * 24), 0u);
}

TEST(CalendarTest, HourOfWeekWraps) {
  EXPECT_EQ(hour_of_week(0), 0u);
  EXPECT_EQ(hour_of_week(167), 167u);
  EXPECT_EQ(hour_of_week(168), 0u);
  EXPECT_EQ(week_index(167), 0u);
  EXPECT_EQ(week_index(168), 1u);
}

TEST(CalendarTest, WeekendDetection) {
  EXPECT_FALSE(is_weekend(0));            // Monday
  EXPECT_FALSE(is_weekend(4 * 24));       // Friday
  EXPECT_TRUE(is_weekend(5 * 24));        // Saturday
  EXPECT_TRUE(is_weekend(6 * 24 + 23));   // Sunday 23:00
  EXPECT_FALSE(is_weekend(7 * 24));       // next Monday
}

TEST(CalendarTest, HourLabelFormat) {
  EXPECT_EQ(hour_label(0), "d00 h00 (Mon)");
  EXPECT_EQ(hour_label(24 + 5), "d01 h05 (Tue)");
  EXPECT_EQ(hour_label(6 * 24), "d06 h00 (Sun)");
}

TEST(CalendarTest, ConstantsConsistent) {
  static_assert(kHoursPerWeek == 168);
  static_assert(kHoursPerDay == 24);
  SUCCEED();
}

}  // namespace
}  // namespace billcap::util
