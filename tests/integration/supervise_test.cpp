// Process-level supervision: `billcap supervise` forks the real CLI binary
// (path injected via BILLCAP_CLI_PATH), the injected faults SIGKILL the
// child at scripted hours, and the watchdog restarts it from the rotated
// checkpoint until the month completes. The completed month must be
// bit-identical to an uninterrupted run of the same seed — crash recovery
// may cost wall-clock time but never a different answer.
//
// These tests spawn real processes and each child pays the simulator's
// construction cost, so the crash scripts are kept short; the
// kill-at-EVERY-hour storm is covered in-process by crash_resume_test.

#include <gtest/gtest.h>

#if defined(__unix__) || defined(__APPLE__)

#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "core/checkpoint.hpp"
#include "core/supervisor.hpp"
#include "util/journal.hpp"

namespace billcap::core {
namespace {

// Suffixed with the pid: ctest runs each test in its own process, with
// several in flight at once, and two tests writing one fixed path (the
// shared reference checkpoint especially) corrupt each other's files.
std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() /
          (name + "." + std::to_string(::getpid())))
      .string();
}

std::string cli_path() { return BILLCAP_CLI_PATH; }

/// Runs the CLI with the given args and returns its plain exit code
/// (gtest-fails if the process was signalled instead of exiting).
int run_cli(std::vector<std::string> args) {
  const int status = run_child({cli_path(), std::move(args)});
  EXPECT_TRUE(WIFEXITED(status)) << "CLI killed by signal";
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

void remove_generations(const std::string& path, std::size_t gens) {
  for (std::size_t g = 0; g < gens; ++g)
    std::remove(util::Journal::generation_path(path, g).c_str());
}

/// The uninterrupted reference month, produced once by the real binary
/// with the same default flags the supervised children receive.
const CheckpointState& reference_state() {
  static const CheckpointState state = [] {
    const std::string path = temp_path("billcap_supervise_ref.j");
    std::remove(path.c_str());
    EXPECT_EQ(run_cli({"simulate", "--checkpoint", path}), kExitSuccess);
    CheckpointState st = load_checkpoint(path);
    std::remove(path.c_str());
    return st;
  }();
  return state;
}

/// Bitwise equality of two monthly results, except wall-clock measurements
/// (solve_ms, max_solve_ms) and the crash-recovery counter (which differs
/// by design between an interrupted and an uninterrupted run).
void expect_results_bitwise_equal(const MonthlyResult& a,
                                  const MonthlyResult& b) {
  EXPECT_EQ(a.strategy, b.strategy);
  EXPECT_EQ(a.monthly_budget, b.monthly_budget);
  EXPECT_EQ(a.total_cost, b.total_cost);
  EXPECT_EQ(a.total_premium_arrivals, b.total_premium_arrivals);
  EXPECT_EQ(a.total_ordinary_arrivals, b.total_ordinary_arrivals);
  EXPECT_EQ(a.total_served_premium, b.total_served_premium);
  EXPECT_EQ(a.total_served_ordinary, b.total_served_ordinary);
  EXPECT_EQ(a.degraded_hours, b.degraded_hours);
  EXPECT_EQ(a.incumbent_hours, b.incumbent_hours);
  EXPECT_EQ(a.heuristic_hours, b.heuristic_hours);
  EXPECT_EQ(a.outage_hours, b.outage_hours);
  EXPECT_EQ(a.stale_hours, b.stale_hours);
  EXPECT_EQ(a.failure_tally, b.failure_tally);
  EXPECT_EQ(a.feed_retry_attempts, b.feed_retry_attempts);
  EXPECT_EQ(a.feed_recovered_hours, b.feed_recovered_hours);
  ASSERT_EQ(a.hours.size(), b.hours.size());
  for (std::size_t h = 0; h < a.hours.size(); ++h) {
    const HourRecord& p = a.hours[h];
    const HourRecord& q = b.hours[h];
    EXPECT_EQ(p.hour, q.hour) << "hour " << h;
    EXPECT_EQ(p.arrivals, q.arrivals) << "hour " << h;
    EXPECT_EQ(p.served_premium, q.served_premium) << "hour " << h;
    EXPECT_EQ(p.served_ordinary, q.served_ordinary) << "hour " << h;
    EXPECT_EQ(p.hourly_budget, q.hourly_budget) << "hour " << h;
    EXPECT_EQ(p.cost, q.cost) << "hour " << h;
    EXPECT_EQ(p.predicted_cost, q.predicted_cost) << "hour " << h;
    EXPECT_EQ(p.mode, q.mode) << "hour " << h;
    EXPECT_EQ(p.site_lambda, q.site_lambda) << "hour " << h;
    EXPECT_EQ(p.site_power_mw, q.site_power_mw) << "hour " << h;
    EXPECT_EQ(p.degraded, q.degraded) << "hour " << h;
    EXPECT_EQ(p.failure, q.failure) << "hour " << h;
    EXPECT_EQ(p.sites_down, q.sites_down) << "hour " << h;
    EXPECT_EQ(p.stale_prices, q.stale_prices) << "hour " << h;
  }
}

TEST(SuperviseTest, KillStormCompletesBitIdenticalToUninterruptedRun) {
  const std::string path = temp_path("billcap_supervise_storm.j");
  remove_generations(path, 3);

  // The child SIGKILLs itself (via --die-on-crash, forced by supervise)
  // at hours spread across the month, including the first and last hour;
  // the watchdog must restart it through every death.
  const int code = run_cli({"supervise", "--checkpoint", path,
                            "--crash-at", "0,3,300,650,719",
                            "--backoff-ms", "1", "--backoff-max-ms", "5"});
  EXPECT_EQ(code, kExitSuccess);

  const CheckpointState final_state = load_checkpoint(path);
  EXPECT_EQ(final_state.next_hour, reference_state().next_hour);
  EXPECT_EQ(final_state.crashes_fired, 5u);
  EXPECT_EQ(final_state.partial.crash_recoveries, 5u);
  expect_results_bitwise_equal(reference_state().partial,
                               final_state.partial);
  remove_generations(path, 3);
}

TEST(SuperviseTest, CorruptedNewestGenerationIsFallenBackOver) {
  const std::string path = temp_path("billcap_supervise_corrupt.j");
  remove_generations(path, 3);

  // At hour 10 the child stomps its freshly written generation 0 and
  // dies. The restarted child must fall back to generation 1 (the
  // pre-corruption state carrying the advanced fault cursor), replay
  // exactly one hour, and still finish the month bit-identically.
  const int code = run_cli({"supervise", "--checkpoint", path,
                            "--corrupt-checkpoint-at", "10",
                            "--keep-generations", "3", "--backoff-ms", "1"});
  EXPECT_EQ(code, kExitSuccess);

  const CheckpointState final_state = load_checkpoint(path);
  EXPECT_EQ(final_state.next_hour, reference_state().next_hour);
  EXPECT_EQ(final_state.corruptions_fired, 1u);
  expect_results_bitwise_equal(reference_state().partial,
                               final_state.partial);
  remove_generations(path, 3);
}

TEST(SuperviseTest, ExitStormEscalatesToStandbyAndStillCompletes) {
  const std::string path = temp_path("billcap_supervise_escalate.j");
  remove_generations(path, 3);

  // Three no-progress deaths in a row at hour 5 trip the escalation
  // threshold of 2; the standby child commits a 2-hour premium-only chunk
  // past the poisoned hour, after which the primary finishes the month.
  const int code = run_cli({"supervise", "--checkpoint", path,
                            "--exit-storm", "5:3", "--escalate-after", "2",
                            "--standby-hours", "2", "--backoff-ms", "1"});
  EXPECT_EQ(code, kExitSuccess);

  const CheckpointState final_state = load_checkpoint(path);
  EXPECT_EQ(final_state.next_hour, reference_state().next_hour);
  EXPECT_GE(final_state.storms_fired, 3u);
  // The standby chunk decided hours 5..6 with the greedy premium-only
  // fallback, so exactly those hours differ from the reference month.
  std::size_t heuristic_hours = 0;
  for (const HourRecord& h : final_state.partial.hours)
    if (h.used_heuristic) ++heuristic_hours;
  EXPECT_EQ(heuristic_hours, 2u);
  EXPECT_TRUE(final_state.partial.hours.at(5).used_heuristic);
  EXPECT_TRUE(final_state.partial.hours.at(6).used_heuristic);
  remove_generations(path, 3);
}

TEST(SuperviseTest, RestartBudgetExhaustionExitsGaveUp) {
  const std::string path = temp_path("billcap_supervise_gaveup.j");
  remove_generations(path, 3);

  // An endless storm at hour 0 with a tiny budget and no escalation: the
  // supervisor must stop hammering the machine and exit kExitGaveUp, with
  // a consistent checkpoint left behind for a later manual resume.
  const int code = run_cli({"supervise", "--checkpoint", path,
                            "--exit-storm", "0:99", "--restart-budget", "2",
                            "--escalate-after", "1000", "--backoff-ms", "1",
                            "--backoff-max-ms", "5"});
  EXPECT_EQ(code, kExitGaveUp);
  EXPECT_EQ(load_checkpoint(path).next_hour, 0u);
  remove_generations(path, 3);
}

TEST(SuperviseTest, UsageErrorsAreNotRetried) {
  // A config the child rejects (the bad flag is forwarded verbatim) must
  // surface as kExitGaveUp after exactly one attempt, not loop through
  // the restart budget.
  const std::string path = temp_path("billcap_supervise_usage.j");
  remove_generations(path, 3);
  const int code = run_cli({"supervise", "--checkpoint", path,
                            "--crash-at", "nonsense"});
  EXPECT_EQ(code, kExitGaveUp);
  // A supervise invocation without a checkpoint is its own usage error.
  EXPECT_EQ(run_cli({"supervise"}), kExitUsage);
  remove_generations(path, 3);
}

}  // namespace
}  // namespace billcap::core

#endif  // POSIX-only: supervision requires fork/exec

#if !defined(__unix__) && !defined(__APPLE__)
TEST(SuperviseTest, SkippedOnNonPosixPlatforms) { GTEST_SKIP(); }
#endif
