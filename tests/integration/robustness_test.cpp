#include <gtest/gtest.h>

#include <vector>

#include "core/bill_capper.hpp"
#include "core/cost_model.hpp"
#include "core/simulator.hpp"
#include "datacenter/catalog.hpp"
#include "lp/lp_io.hpp"
#include "lp/milp.hpp"
#include "lp/presolve.hpp"
#include "market/pricing_policy.hpp"
#include "util/thread_pool.hpp"

namespace billcap::core {
namespace {

TEST(RobustnessTest, SingleSiteNetworkWorks) {
  const std::vector<datacenter::DataCenter> one_site = {
      datacenter::paper_datacenters()[0]};
  const std::vector<market::PricingPolicy> one_policy = {
      market::paper_policies(1)[0]};
  const BillCapper capper(one_site, one_policy);
  const std::vector<double> demand = {210.0};

  const CappingOutcome ample = capper.decide(2e11, 5e10, demand, 1e6);
  EXPECT_EQ(ample.mode, CappingOutcome::Mode::kUncapped);
  EXPECT_NEAR(ample.served_premium, 2e11, 1.0);

  const CappingOutcome tight = capper.decide(2e11, 5e10, demand, 300.0);
  EXPECT_NEAR(tight.served_premium, 2e11, 1.0);  // premium still guaranteed
}

TEST(RobustnessTest, SingleLevelPolicyDegeneratesGracefully) {
  // Flat policies: bill capping still works, there is just nothing to
  // dodge.
  const auto sites = datacenter::paper_datacenters();
  const std::vector<market::PricingPolicy> flat = {
      market::PricingPolicy::flat(15.0), market::PricingPolicy::flat(18.0),
      market::PricingPolicy::flat(12.0)};
  const BillCapper capper(sites, flat);
  const std::vector<double> demand = {0.0, 0.0, 0.0};
  const CappingOutcome out = capper.decide(6e11, 1.5e11, demand, 1e6);
  EXPECT_EQ(out.mode, CappingOutcome::Mode::kUncapped);
  // All load lands on the cheapest per-request site mix.
  const GroundTruth truth = evaluate_allocation(
      sites, flat, demand, out.allocation.lambda_vector());
  EXPECT_GT(truth.total_cost, 0.0);
}

TEST(RobustnessTest, ZeroBackgroundDemand) {
  const auto sites = datacenter::paper_datacenters();
  const auto policies = market::paper_policies(1);
  const BillCapper capper(sites, policies);
  const std::vector<double> demand = {0.0, 0.0, 0.0};
  const CappingOutcome out = capper.decide(8e11, 2e11, demand, 1e6);
  // Everything fits in the bottom price tier: cheap hour.
  const GroundTruth truth = evaluate_allocation(
      sites, policies, demand, out.allocation.lambda_vector());
  for (const auto& site : truth.sites)
    EXPECT_DOUBLE_EQ(site.price_per_mwh, 10.0);
}

TEST(RobustnessTest, AllPremiumAndAllOrdinaryMixes) {
  SimulationConfig all_premium;
  all_premium.premium_share = 1.0;
  all_premium.monthly_budget = 1.0e6;
  const MonthlyResult rp =
      Simulator(all_premium).run(Strategy::kCostCapping);
  // No ordinary traffic to shed: the budget must be violated instead.
  // (With 100 % premium the flash-crowd peak can brush physical capacity,
  // so allow a vanishing capacity shed — never a budget-driven one.)
  EXPECT_GT(rp.premium_throughput_ratio(), 0.9995);
  EXPECT_GT(rp.budget_utilization(), 1.0);

  SimulationConfig all_ordinary;
  all_ordinary.premium_share = 0.0;
  all_ordinary.monthly_budget = 1.0e6;
  const MonthlyResult ro =
      Simulator(all_ordinary).run(Strategy::kCostCapping);
  // Everything is sheddable: the budget must hold.
  EXPECT_LE(ro.budget_utilization(), 1.02);
}

TEST(RobustnessTest, InvariantsHoldAcrossSeeds) {
  // Monte-Carlo sweep: the core guarantees are seed-independent.
  util::ThreadPool pool(4);
  std::vector<MonthlyResult> results(4);
  util::parallel_for(pool, results.size(), [&results](std::size_t i) {
    SimulationConfig config;
    config.seed = 100 + i * 37;
    config.monthly_budget = 1.2e6;
    results[i] = Simulator(config).run(Strategy::kCostCapping);
  });
  for (const auto& r : results) {
    EXPECT_DOUBLE_EQ(r.premium_throughput_ratio(), 1.0);
    EXPECT_GT(r.ordinary_throughput_ratio(), 0.0);
    EXPECT_LT(r.budget_utilization(), 1.3);
    for (const auto& h : r.hours) {
      EXPECT_GE(h.served_ordinary, 0.0);
      EXPECT_LE(h.served_premium, h.premium_arrivals + 1.0);
    }
  }
}

TEST(RobustnessTest, PaperMilpSurvivesLpFormatRoundTrip) {
  // Cross-module: the actual step-1 formulation, serialized to CPLEX-LP
  // text, parsed back, and re-solved to the same optimum.
  const auto sites = datacenter::paper_datacenters();
  const auto policies = market::paper_policies(1);
  std::vector<SiteModel> models;
  const std::vector<double> demand = {228.0, 182.0, 172.0};
  for (std::size_t i = 0; i < sites.size(); ++i)
    models.push_back(make_site_model(sites[i], policies[i], demand[i], true));
  AllocationFormulation f = build_allocation_formulation(models);
  std::vector<lp::Term> demand_terms;
  for (const SiteVars& v : f.vars) demand_terms.push_back({v.lambda, 1.0});
  f.problem.add_constraint("demand", std::move(demand_terms),
                           lp::Relation::kEqual, 600.0);

  const lp::Solution direct = lp::solve_milp(f.problem);
  const lp::Problem parsed =
      lp::parse_lp_format(lp::write_lp_format(f.problem));
  const lp::Solution reparsed = lp::solve_milp(parsed);
  ASSERT_TRUE(direct.ok());
  ASSERT_TRUE(reparsed.ok());
  EXPECT_NEAR(direct.objective, reparsed.objective,
              1e-6 * std::max(1.0, direct.objective));
}

TEST(RobustnessTest, PaperMilpSurvivesPresolve) {
  // presolve + branch-and-bound equals direct branch-and-bound on the real
  // formulation.
  const auto sites = datacenter::paper_datacenters();
  const auto policies = market::paper_policies(2);
  std::vector<SiteModel> models;
  const std::vector<double> demand = {240.0, 200.0, 190.0};
  for (std::size_t i = 0; i < sites.size(); ++i)
    models.push_back(make_site_model(sites[i], policies[i], demand[i], true));
  AllocationFormulation f = build_allocation_formulation(models);
  std::vector<lp::Term> demand_terms;
  for (const SiteVars& v : f.vars) demand_terms.push_back({v.lambda, 1.0});
  f.problem.add_constraint("demand", std::move(demand_terms),
                           lp::Relation::kEqual, 900.0);

  const lp::Solution direct = lp::solve_milp(f.problem);
  const lp::PresolveResult pre = lp::presolve(f.problem);
  ASSERT_FALSE(pre.infeasible);
  const lp::Solution reduced = lp::solve_milp(pre.reduced);
  ASSERT_TRUE(direct.ok());
  ASSERT_TRUE(reduced.ok());
  EXPECT_NEAR(direct.objective, reduced.objective,
              1e-6 * std::max(1.0, direct.objective));
}

TEST(RobustnessTest, ExtremePolicyLevelsStayConsistent) {
  // Policy 3's steep steps must never produce a cheaper month than
  // Policy 1 for the same strategy.
  SimulationConfig config;
  config.enforce_budget = false;
  config.policy_level = 1;
  const double p1 = Simulator(config).run(Strategy::kCostCapping).total_cost;
  config.policy_level = 3;
  const double p3 = Simulator(config).run(Strategy::kCostCapping).total_cost;
  EXPECT_GT(p3, p1);
}

}  // namespace
}  // namespace billcap::core
