#include <gtest/gtest.h>

#include <vector>

#include "core/simulator.hpp"

namespace billcap::core {
namespace {

/// Reproduction of the *shapes* of the paper's evaluation (Section VII):
/// who wins, in which order, and where the regimes change. Absolute
/// dollar amounts differ from the paper (our substrate is synthetic), the
/// orderings must not.
class PaperShapesTest : public ::testing::Test {
 protected:
  static MonthlyResult run(Strategy strategy, int policy_level,
                           double budget, bool enforce_budget) {
    SimulationConfig config;
    config.policy_level = policy_level;
    config.monthly_budget = budget;
    config.enforce_budget = enforce_budget;
    return Simulator(config).run(strategy);
  }
};

TEST_F(PaperShapesTest, Fig3CostCappingBeatsBothBaselines) {
  const double cc =
      run(Strategy::kCostCapping, 1, 2.5e6, false).total_cost;
  const double avg = run(Strategy::kMinOnlyAvg, 1, 2.5e6, false).total_cost;
  const double low = run(Strategy::kMinOnlyLow, 1, 2.5e6, false).total_cost;
  EXPECT_LT(cc, avg);
  EXPECT_LT(cc, low);
  // The paper's savings ordering: the naive lowest-price belief costs more
  // than the averaged belief (33.5 % vs 17.9 % in the original).
  EXPECT_GT(low, avg);
  // The gaps are material, not noise.
  EXPECT_GT((avg - cc) / avg, 0.01);
  EXPECT_GT((low - cc) / low, 0.02);
}

TEST_F(PaperShapesTest, Fig4Policy0Equalizes) {
  // Under the flat price-taker policy, workload routing does not move
  // prices: all strategies coincide (Figure 4's Policy 0 bars).
  const double cc = run(Strategy::kCostCapping, 0, 2.5e6, false).total_cost;
  const double avg = run(Strategy::kMinOnlyAvg, 0, 2.5e6, false).total_cost;
  const double low = run(Strategy::kMinOnlyLow, 0, 2.5e6, false).total_cost;
  EXPECT_NEAR(avg / cc, 1.0, 0.002);
  EXPECT_NEAR(low / cc, 1.0, 0.002);
}

TEST_F(PaperShapesTest, Fig4SavingsGrowWithPolicySeverity) {
  double prev_gap = -1.0;
  for (int level : {1, 2, 3}) {
    const double cc =
        run(Strategy::kCostCapping, level, 2.5e6, false).total_cost;
    const double avg =
        run(Strategy::kMinOnlyAvg, level, 2.5e6, false).total_cost;
    const double gap = (avg - cc) / avg;
    EXPECT_GT(gap, prev_gap) << "level " << level;
    prev_gap = gap;
  }
}

TEST_F(PaperShapesTest, Fig4BillsGrowWithPolicySeverity) {
  double prev = 0.0;
  for (int level : {1, 2, 3}) {
    const double cc =
        run(Strategy::kCostCapping, level, 2.5e6, false).total_cost;
    EXPECT_GT(cc, prev) << "level " << level;
    prev = cc;
  }
}

TEST_F(PaperShapesTest, Fig5Fig6AmpleBudgetFullService) {
  // $2.5M: all customers served, hourly cost below the hourly budget
  // (Figures 5 and 6).
  const MonthlyResult r = run(Strategy::kCostCapping, 1, 2.5e6, true);
  EXPECT_DOUBLE_EQ(r.premium_throughput_ratio(), 1.0);
  EXPECT_GT(r.ordinary_throughput_ratio(), 0.99);
  EXPECT_LT(r.budget_utilization(), 1.0);
}

TEST_F(PaperShapesTest, Fig7Fig8TightBudgetShapes) {
  // $1.0M (our calibration's equivalent of the paper's stringent $1.5M):
  // premium fully served, ordinary visibly throttled with some
  // zero-ordinary hours, and occasional hourly violations forced by the
  // premium QoS guarantee (Figures 7 and 8).
  const MonthlyResult r = run(Strategy::kCostCapping, 1, 1.0e6, true);
  EXPECT_DOUBLE_EQ(r.premium_throughput_ratio(), 1.0);
  EXPECT_LT(r.ordinary_throughput_ratio(), 0.9);
  EXPECT_GT(r.ordinary_throughput_ratio(), 0.05);

  int zero_ordinary_hours = 0;
  int premium_only_hours = 0;
  for (const auto& h : r.hours) {
    if (h.served_ordinary < 1.0) ++zero_ordinary_hours;
    if (h.mode == CappingOutcome::Mode::kPremiumOnly) ++premium_only_hours;
  }
  EXPECT_GT(zero_ordinary_hours, 0);
  EXPECT_GT(premium_only_hours, 0);
  EXPECT_LT(premium_only_hours, 720);
}

TEST_F(PaperShapesTest, Fig9BudgetComplianceComparison) {
  // Under a stringent budget Cost Capping controls the bill while the
  // baselines overshoot it (Figure 9: 23.3 % and 39.5 % violations).
  const double budget = 1.0e6;
  const MonthlyResult cc = run(Strategy::kCostCapping, 1, budget, true);
  const MonthlyResult avg = run(Strategy::kMinOnlyAvg, 1, budget, true);
  const MonthlyResult low = run(Strategy::kMinOnlyLow, 1, budget, true);
  EXPECT_LT(cc.budget_utilization(), 1.1);
  EXPECT_GT(avg.budget_utilization(), 1.2);
  EXPECT_GT(low.budget_utilization(), avg.budget_utilization());
  // Baselines serve everything; Cost Capping trades ordinary throughput.
  EXPECT_GT(avg.ordinary_throughput_ratio(), 0.999);
  EXPECT_DOUBLE_EQ(cc.premium_throughput_ratio(), 1.0);
}

TEST_F(PaperShapesTest, Fig10ThroughputMonotoneInBudget) {
  // Ordinary throughput grows with the monthly budget and saturates;
  // premium is always 100 % (Figure 10).
  double prev = -1.0;
  for (double budget : {0.5e6, 1.0e6, 1.5e6, 2.0e6, 2.5e6}) {
    const MonthlyResult r = run(Strategy::kCostCapping, 1, budget, true);
    EXPECT_DOUBLE_EQ(r.premium_throughput_ratio(), 1.0)
        << "budget " << budget;
    EXPECT_GE(r.ordinary_throughput_ratio(), prev - 1e-9)
        << "budget " << budget;
    prev = r.ordinary_throughput_ratio();
  }
  EXPECT_GT(prev, 0.99);  // saturation at the ample end
}

TEST_F(PaperShapesTest, Fig10StarvationAtTheTightEnd) {
  const MonthlyResult r = run(Strategy::kCostCapping, 1, 0.5e6, true);
  EXPECT_LT(r.ordinary_throughput_ratio(), 0.05);
  EXPECT_DOUBLE_EQ(r.premium_throughput_ratio(), 1.0);
}

}  // namespace
}  // namespace billcap::core
