// Crash/resume integration: a month that is killed and restarted from the
// durable checkpoint — even at EVERY hour — must finish with a
// MonthlyResult bitwise identical to the same seed run uninterrupted.
//
// The fault mix uses outages + stale feeds + demand shocks only: those are
// the wall-clock-independent fault kinds (deadline squeezes depend on
// machine speed, see DESIGN.md), so bitwise comparison is meaningful.
// solve_ms / max_solve_ms are wall-clock measurements and excluded;
// crash_recoveries differs by design (that is the point of the run).

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "core/checkpoint.hpp"
#include "core/simulator.hpp"
#include "util/journal.hpp"

namespace billcap::core {
namespace {

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

SimulationConfig faulty_config() {
  SimulationConfig config;
  config.monthly_budget = 1.5e6;
  config.seed = 2012;
  config.fault_rates.outage_rate = 0.003;
  config.fault_rates.stale_rate = 0.02;
  config.fault_rates.shock_rate = 0.005;
  config.market_feed.retry_success_prob = 0.5;
  return config;
}

/// Bitwise equality of two monthly results, except wall-clock measurements
/// (solve_ms, max_solve_ms) and the crash-recovery counter.
void expect_results_bitwise_equal(const MonthlyResult& a,
                                  const MonthlyResult& b) {
  EXPECT_EQ(a.strategy, b.strategy);
  EXPECT_EQ(a.monthly_budget, b.monthly_budget);
  EXPECT_EQ(a.total_cost, b.total_cost);
  EXPECT_EQ(a.total_premium_arrivals, b.total_premium_arrivals);
  EXPECT_EQ(a.total_ordinary_arrivals, b.total_ordinary_arrivals);
  EXPECT_EQ(a.total_served_premium, b.total_served_premium);
  EXPECT_EQ(a.total_served_ordinary, b.total_served_ordinary);
  EXPECT_EQ(a.degraded_hours, b.degraded_hours);
  EXPECT_EQ(a.incumbent_hours, b.incumbent_hours);
  EXPECT_EQ(a.heuristic_hours, b.heuristic_hours);
  EXPECT_EQ(a.outage_hours, b.outage_hours);
  EXPECT_EQ(a.stale_hours, b.stale_hours);
  EXPECT_EQ(a.failure_tally, b.failure_tally);
  EXPECT_EQ(a.feed_retry_attempts, b.feed_retry_attempts);
  EXPECT_EQ(a.feed_recovered_hours, b.feed_recovered_hours);
  ASSERT_EQ(a.hours.size(), b.hours.size());
  for (std::size_t h = 0; h < a.hours.size(); ++h) {
    const HourRecord& p = a.hours[h];
    const HourRecord& q = b.hours[h];
    EXPECT_EQ(p.hour, q.hour) << "hour " << h;
    EXPECT_EQ(p.arrivals, q.arrivals) << "hour " << h;
    EXPECT_EQ(p.premium_arrivals, q.premium_arrivals) << "hour " << h;
    EXPECT_EQ(p.ordinary_arrivals, q.ordinary_arrivals) << "hour " << h;
    EXPECT_EQ(p.served_premium, q.served_premium) << "hour " << h;
    EXPECT_EQ(p.served_ordinary, q.served_ordinary) << "hour " << h;
    EXPECT_EQ(p.hourly_budget, q.hourly_budget) << "hour " << h;
    EXPECT_EQ(p.cost, q.cost) << "hour " << h;
    EXPECT_EQ(p.predicted_cost, q.predicted_cost) << "hour " << h;
    EXPECT_EQ(p.mode, q.mode) << "hour " << h;
    EXPECT_EQ(p.site_lambda, q.site_lambda) << "hour " << h;
    EXPECT_EQ(p.site_power_mw, q.site_power_mw) << "hour " << h;
    EXPECT_EQ(p.nodes, q.nodes) << "hour " << h;
    EXPECT_EQ(p.degraded, q.degraded) << "hour " << h;
    EXPECT_EQ(p.failure, q.failure) << "hour " << h;
    EXPECT_EQ(p.used_incumbent, q.used_incumbent) << "hour " << h;
    EXPECT_EQ(p.used_heuristic, q.used_heuristic) << "hour " << h;
    EXPECT_EQ(p.sites_down, q.sites_down) << "hour " << h;
    EXPECT_EQ(p.stale_prices, q.stale_prices) << "hour " << h;
    EXPECT_EQ(p.feed_attempts, q.feed_attempts) << "hour " << h;
    EXPECT_EQ(p.feed_recovered, q.feed_recovered) << "hour " << h;
  }
}

/// Runs the month through run_resumable, restarting after every crash,
/// and returns the completed result plus the number of restarts taken.
MonthlyResult run_to_completion(const Simulator& sim, Strategy strategy,
                                const std::string& path,
                                std::size_t* restarts = nullptr) {
  std::remove(path.c_str());
  Simulator::ResumableOutcome outcome =
      sim.run_resumable(strategy, path, /*resume=*/false);
  std::size_t n = 0;
  while (outcome.crashed) {
    ++n;
    outcome = sim.run_resumable(strategy, path, /*resume=*/true);
  }
  if (restarts) *restarts = n;
  std::remove(path.c_str());
  return outcome.result;
}

TEST(CrashResumeTest, NoCrashesMatchesPlainRun) {
  const SimulationConfig config = faulty_config();
  const Simulator sim(config);
  const MonthlyResult want = sim.run(Strategy::kCostCapping);
  std::size_t restarts = 999;
  const MonthlyResult got =
      run_to_completion(sim, Strategy::kCostCapping,
                        temp_path("billcap_resume_none.j"), &restarts);
  EXPECT_EQ(restarts, 0u);
  EXPECT_EQ(got.crash_recoveries, 0u);
  expect_results_bitwise_equal(want, got);
}

TEST(CrashResumeTest, KillAtEveryHourReproducesUninterruptedMonth) {
  // One crash planned at EVERY hour of the month, alternating between
  // dying just before the hour's checkpoint commits (the hour must be
  // recomputed on resume) and just after (resume continues at the next
  // hour). Every hour of the month therefore exercises a resume.
  SimulationConfig config = faulty_config();
  const Simulator reference(config);
  const MonthlyResult want = reference.run(Strategy::kCostCapping);
  const std::size_t month_hours = want.hours.size();

  for (std::size_t h = 0; h < month_hours; ++h)
    config.fault_plan.crashes.push_back({h, /*before_checkpoint=*/h % 2 == 0});
  const Simulator sim(config);

  std::size_t restarts = 0;
  const MonthlyResult got =
      run_to_completion(sim, Strategy::kCostCapping,
                        temp_path("billcap_resume_every_hour.j"), &restarts);
  EXPECT_EQ(restarts, month_hours);
  EXPECT_EQ(got.crash_recoveries, month_hours);
  expect_results_bitwise_equal(want, got);
}

TEST(CrashResumeTest, CrashReportsHourAndResumePoint) {
  SimulationConfig config = faulty_config();
  config.fault_plan.crashes.push_back({10, /*before_checkpoint=*/false});
  config.fault_plan.crashes.push_back({11, /*before_checkpoint=*/true});
  const Simulator sim(config);
  const std::string path = temp_path("billcap_resume_report.j");
  std::remove(path.c_str());

  // Crash after hour 10's checkpoint: hours [0, 10] are committed.
  Simulator::ResumableOutcome outcome =
      sim.run_resumable(Strategy::kCostCapping, path, false);
  ASSERT_TRUE(outcome.crashed);
  EXPECT_EQ(outcome.crash_hour, 10u);
  EXPECT_EQ(load_checkpoint(path).next_hour, 11u);

  // Crash before hour 11's checkpoint: hour 11 is NOT committed and will
  // be recomputed by the next resume.
  outcome = sim.run_resumable(Strategy::kCostCapping, path, true);
  ASSERT_TRUE(outcome.crashed);
  EXPECT_EQ(outcome.crash_hour, 11u);
  EXPECT_EQ(outcome.resumed_from, 11u);
  EXPECT_EQ(load_checkpoint(path).next_hour, 11u);

  outcome = sim.run_resumable(Strategy::kCostCapping, path, true);
  EXPECT_FALSE(outcome.crashed);
  EXPECT_EQ(outcome.result.crash_recoveries, 2u);
  expect_results_bitwise_equal(sim.run(Strategy::kCostCapping),
                               outcome.result);
  std::remove(path.c_str());
}

/// Like run_to_completion, but with explicit ResumeControls on every
/// attempt (rotated generations, standby chunking...).
MonthlyResult run_to_completion_controlled(
    const Simulator& sim, Strategy strategy, const std::string& path,
    const Simulator::ResumeControls& controls, std::size_t* restarts,
    bool fresh_start = true) {
  if (fresh_start) {
    for (std::size_t g = 0; g < controls.keep_generations; ++g)
      std::remove((path + (g ? "." + std::to_string(g) : "")).c_str());
  }
  Simulator::ResumableOutcome outcome =
      sim.run_resumable(strategy, path, !fresh_start, {}, controls);
  std::size_t n = 0;
  while (outcome.crashed) {
    ++n;
    outcome = sim.run_resumable(strategy, path, /*resume=*/true, {}, controls);
  }
  if (restarts) *restarts = n;
  EXPECT_FALSE(outcome.stopped);
  return outcome.result;
}

TEST(CrashResumeTest, ExitStormDiesRepeatedlyWithoutProgressThenDrains) {
  SimulationConfig config = faulty_config();
  const MonthlyResult want = Simulator(config).run(Strategy::kCostCapping);
  config.fault_plan.exit_storms.push_back({5, 3});
  const Simulator sim(config);
  const std::string path = temp_path("billcap_resume_storm.j");
  std::remove(path.c_str());

  // Every storm death strikes before hour 5's checkpoint commits: three
  // attempts in a row die at hour 5 with the checkpoint pinned there.
  Simulator::ResumableOutcome outcome =
      sim.run_resumable(Strategy::kCostCapping, path, false);
  for (std::size_t death = 1; death <= 3; ++death) {
    ASSERT_TRUE(outcome.crashed) << "death " << death;
    EXPECT_EQ(outcome.crash_hour, 5u);
    EXPECT_EQ(load_checkpoint(path).next_hour, 5u);
    EXPECT_EQ(load_checkpoint(path).storms_fired, death);
    outcome = sim.run_resumable(Strategy::kCostCapping, path, true);
  }
  // The storm is drained; the fourth attempt finishes the month and the
  // result is still bit-identical to the uninterrupted run.
  EXPECT_FALSE(outcome.crashed);
  EXPECT_EQ(outcome.result.crash_recoveries, 3u);
  expect_results_bitwise_equal(want, outcome.result);
  std::remove(path.c_str());
}

TEST(CrashResumeTest, CheckpointCorruptionFallsBackOneGeneration) {
  SimulationConfig config = faulty_config();
  const MonthlyResult want = Simulator(config).run(Strategy::kCostCapping);
  config.fault_plan.checkpoint_corruptions.push_back({10});
  const Simulator sim(config);
  const std::string path = temp_path("billcap_resume_bitrot.j");
  Simulator::ResumeControls controls;
  controls.keep_generations = 3;
  for (std::size_t g = 0; g < 3; ++g)
    std::remove((path + (g ? "." + std::to_string(g) : "")).c_str());

  // The first attempt commits hour 10, stomps the newest generation and
  // dies: generation 0 is unreadable, generation 1 holds the pre-hour-10
  // state with the corruption cursor already advanced.
  Simulator::ResumableOutcome outcome =
      sim.run_resumable(Strategy::kCostCapping, path, false, {}, controls);
  ASSERT_TRUE(outcome.crashed);
  EXPECT_EQ(outcome.crash_hour, 10u);
  EXPECT_THROW(load_checkpoint(path), std::runtime_error);

  // The resume falls back exactly one generation (one replayed hour) and
  // completes the month bit-identically; the fallback's cursor stops the
  // same corruption from re-firing forever.
  outcome = sim.run_resumable(Strategy::kCostCapping, path, true, {}, controls);
  EXPECT_FALSE(outcome.crashed);
  EXPECT_EQ(outcome.resumed_generation, 1u);
  ASSERT_EQ(outcome.resume_skipped.size(), 1u);
  EXPECT_EQ(outcome.resumed_from, 10u);
  expect_results_bitwise_equal(want, outcome.result);
  for (std::size_t g = 0; g < 3; ++g)
    std::remove((path + (g ? "." + std::to_string(g) : "")).c_str());
}

TEST(CrashResumeTest, DeathMidRotatedCheckpointWriteResumesNewestViable) {
  // A SIGTERM (or power cut) landing while the rotated checkpoint commit
  // is in flight leaves one of three artifact shapes on disk, depending
  // on where in the temp-write -> rename -> rotate sequence it struck:
  //
  //   torn tmp          the .tmp of the next write exists, never renamed;
  //   rotation-shifted  rotate_generations ran but the new generation 0
  //                     was never written (gen 0 missing, gen 1 newest);
  //   truncated newest  generation 0 exists but is cut short mid-write.
  //
  // The newest-first fallback scan must resume from the newest viable
  // generation in every shape, and the month must still complete
  // bit-identically to the uninterrupted run.
  SimulationConfig config = faulty_config();
  const MonthlyResult want = Simulator(config).run(Strategy::kCostCapping);
  config.fault_plan.crashes.push_back({12, /*before_checkpoint=*/true});
  config.fault_plan.crashes.push_back({18, /*before_checkpoint=*/true});
  config.fault_plan.crashes.push_back({24, /*before_checkpoint=*/true});
  const Simulator sim(config);
  const std::string path = temp_path("billcap_resume_torn.j");
  Simulator::ResumeControls controls;
  controls.keep_generations = 3;
  for (std::size_t g = 0; g < 3; ++g)
    std::remove(util::Journal::generation_path(path, g).c_str());

  // Crash 1 pins the chain at hour 12. Shape: torn tmp left beside it.
  Simulator::ResumableOutcome outcome =
      sim.run_resumable(Strategy::kCostCapping, path, false, {}, controls);
  ASSERT_TRUE(outcome.crashed);
  EXPECT_EQ(outcome.crash_hour, 12u);
  {
    std::ofstream torn(path + ".tmp", std::ios::binary);
    torn << "half-written journal with no checksum";
  }
  outcome = sim.run_resumable(Strategy::kCostCapping, path, true, {}, controls);
  ASSERT_TRUE(outcome.crashed);
  EXPECT_EQ(outcome.resumed_generation, 0u);  // tmp is invisible to the scan
  EXPECT_EQ(outcome.resumed_from, 12u);
  EXPECT_EQ(outcome.crash_hour, 18u);
  std::remove((path + ".tmp").c_str());

  // Shape 2: the death struck between rotate_generations and the new
  // generation-0 write — shift the chain up one slot by hand.
  std::rename(util::Journal::generation_path(path, 1).c_str(),
              util::Journal::generation_path(path, 2).c_str());
  std::rename(util::Journal::generation_path(path, 0).c_str(),
              util::Journal::generation_path(path, 1).c_str());
  outcome = sim.run_resumable(Strategy::kCostCapping, path, true, {}, controls);
  ASSERT_TRUE(outcome.crashed);
  EXPECT_EQ(outcome.resumed_generation, 1u);  // gen 0 missing, gen 1 newest
  EXPECT_EQ(outcome.resumed_from, 18u);       // no committed hour was lost
  EXPECT_EQ(outcome.crash_hour, 24u);

  // Shape 3: generation 0 truncated mid-write (checksum cannot hold).
  // Generation 1 is hour 23's ordinary commit — next_hour is already 24,
  // so no committed hour is lost — but the crash-cursor advance lived
  // only in the truncated crash-time save, so the hour-24 death FIRES
  // AGAIN: a planned death is consumed only once its cursor survives.
  {
    const std::uintmax_t size = std::filesystem::file_size(path);
    std::filesystem::resize_file(path, size / 2);
  }
  outcome = sim.run_resumable(Strategy::kCostCapping, path, true, {}, controls);
  ASSERT_TRUE(outcome.crashed);
  EXPECT_EQ(outcome.resumed_generation, 1u);
  ASSERT_EQ(outcome.resume_skipped.size(), 1u);
  EXPECT_EQ(outcome.resumed_from, 24u);  // no committed hour was lost
  EXPECT_EQ(outcome.crash_hour, 24u);    // the unconsumed death re-fires

  // The re-fired death re-persists its cursor; the final attempt finishes
  // the month bit-identically. crash_recoveries is cursor-derived, so the
  // replayed death does not double-count.
  outcome = sim.run_resumable(Strategy::kCostCapping, path, true, {}, controls);
  EXPECT_FALSE(outcome.crashed);
  EXPECT_EQ(outcome.result.crash_recoveries, 3u);
  expect_results_bitwise_equal(want, outcome.result);
  for (std::size_t g = 0; g < 3; ++g)
    std::remove(util::Journal::generation_path(path, g).c_str());
}

TEST(CrashResumeTest, KillStormWithRotationAndBitRotStillBitIdentical) {
  // The belt-and-braces month: a crash at EVERY hour, plus storage bit
  // rot at three of them, under a three-generation checkpoint chain. The
  // month must still complete bit-identically to the uninterrupted run.
  SimulationConfig config = faulty_config();
  const MonthlyResult want = Simulator(config).run(Strategy::kCostCapping);
  const std::size_t month_hours = want.hours.size();
  for (std::size_t h = 0; h < month_hours; ++h)
    config.fault_plan.crashes.push_back({h, /*before_checkpoint=*/h % 2 == 0});
  config.fault_plan.checkpoint_corruptions.push_back({50});
  config.fault_plan.checkpoint_corruptions.push_back({52});
  config.fault_plan.checkpoint_corruptions.push_back({300});
  const Simulator sim(config);

  Simulator::ResumeControls controls;
  controls.keep_generations = 3;
  std::size_t restarts = 0;
  const MonthlyResult got = run_to_completion_controlled(
      sim, Strategy::kCostCapping,
      temp_path("billcap_resume_storm_rot.j"), controls, &restarts);
  EXPECT_EQ(restarts, month_hours + 3);  // every crash + every corruption
  expect_results_bitwise_equal(want, got);
}

TEST(CrashResumeTest, StopFlagFinishesInFlightHourAndResumesCleanly) {
  SimulationConfig config = faulty_config();
  const MonthlyResult want = Simulator(config).run(Strategy::kCostCapping);
  const Simulator sim(config);
  const std::string path = temp_path("billcap_resume_stop.j");
  std::remove(path.c_str());

  // The flag flips while hour 5 is in flight (from the per-hour hook,
  // like the CLI's SIGTERM handler): the attempt must commit hour 5,
  // then stop at the loop top with a consistent checkpoint.
  static volatile std::sig_atomic_t stop = 0;
  stop = 0;
  Simulator::ResumeControls controls;
  controls.stop_flag = &stop;
  Simulator::ResumableOutcome outcome = sim.run_resumable(
      Strategy::kCostCapping, path, false,
      [&](const HourRecord& rec) {
        if (rec.hour == 5) stop = 1;
      },
      controls);
  EXPECT_TRUE(outcome.stopped);
  EXPECT_FALSE(outcome.crashed);
  EXPECT_EQ(outcome.result.hours.size(), 6u);
  EXPECT_EQ(load_checkpoint(path).next_hour, 6u);

  // Resuming without the flag finishes the month bit-identically.
  stop = 0;
  outcome = sim.run_resumable(Strategy::kCostCapping, path, true, {},
                              Simulator::ResumeControls{});
  EXPECT_FALSE(outcome.stopped);
  EXPECT_FALSE(outcome.crashed);
  expect_results_bitwise_equal(want, outcome.result);
  std::remove(path.c_str());
}

TEST(CrashResumeTest, StandbyChunkIsPremiumOnlyAndHandsBackToPrimary) {
  // The supervisor's escalation path, in-process: the primary jams on an
  // exit storm at hour 3, a standby attempt (same config + standby flag)
  // commits a 2-hour premium-only chunk past the poisoned hour, and the
  // primary then finishes the month from the standby's checkpoint.
  SimulationConfig config = faulty_config();
  config.fault_plan.exit_storms.push_back({3, 99});  // would never drain
  const Simulator primary(config);
  SimulationConfig standby_config = config;
  standby_config.standby = true;
  const Simulator standby(standby_config);
  const std::string path = temp_path("billcap_resume_standby.j");
  std::remove(path.c_str());

  Simulator::ResumableOutcome outcome =
      primary.run_resumable(Strategy::kCostCapping, path, false);
  ASSERT_TRUE(outcome.crashed);
  EXPECT_EQ(outcome.crash_hour, 3u);

  // The standby adopts the primary's checkpoint (standby mode is digest
  // neutral), walks hours 3-4 with the greedy fallback, and stops.
  Simulator::ResumeControls chunk;
  chunk.max_hours = 2;
  outcome =
      standby.run_resumable(Strategy::kCostCapping, path, true, {}, chunk);
  EXPECT_TRUE(outcome.stopped);
  ASSERT_EQ(outcome.result.hours.size(), 5u);
  for (std::size_t h = 3; h <= 4; ++h) {
    const HourRecord& rec = outcome.result.hours[h];
    EXPECT_TRUE(rec.used_heuristic) << "hour " << h;
    EXPECT_TRUE(rec.degraded) << "hour " << h;
    EXPECT_EQ(rec.served_ordinary, 0.0) << "hour " << h;
    EXPECT_GT(rec.served_premium, 0.0) << "hour " << h;
  }

  // The primary resumes past the snapped storm and completes; the whole
  // 99-death storm was charged to the recovery counter by the snap.
  outcome = primary.run_resumable(Strategy::kCostCapping, path, true);
  EXPECT_FALSE(outcome.crashed);
  EXPECT_EQ(outcome.result.hours.size(), primary.evaluation_trace().hours());
  EXPECT_EQ(outcome.result.crash_recoveries, 99u);
  std::remove(path.c_str());
}

TEST(CrashResumeTest, ResumeUnderDifferentConfigIsRefused) {
  SimulationConfig config = faulty_config();
  config.fault_plan.crashes.push_back({5, false});
  const Simulator sim(config);
  const std::string path = temp_path("billcap_resume_mismatch.j");
  std::remove(path.c_str());
  const Simulator::ResumableOutcome outcome =
      sim.run_resumable(Strategy::kCostCapping, path, false);
  ASSERT_TRUE(outcome.crashed);

  SimulationConfig other = faulty_config();
  other.seed = 999;  // different month entirely
  other.fault_plan.crashes.push_back({5, false});
  const Simulator wrong(other);
  EXPECT_THROW(wrong.run_resumable(Strategy::kCostCapping, path, true),
               std::runtime_error);
  // A different strategy under the same config is a mismatch too.
  EXPECT_THROW(sim.run_resumable(Strategy::kMinOnlyAvg, path, true),
               std::runtime_error);
  std::remove(path.c_str());
}

TEST(CrashResumeTest, CorruptedCheckpointIsRefusedOnResume) {
  SimulationConfig config = faulty_config();
  config.fault_plan.crashes.push_back({5, false});
  const Simulator sim(config);
  const std::string path = temp_path("billcap_resume_corrupt.j");
  std::remove(path.c_str());
  ASSERT_TRUE(sim.run_resumable(Strategy::kCostCapping, path, false).crashed);

  // Truncate the file to half: the resume must refuse, not half-load.
  std::string text;
  {
    std::ifstream in(path, std::ios::binary);
    text.assign(std::istreambuf_iterator<char>(in),
                std::istreambuf_iterator<char>());
  }
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << text.substr(0, text.size() / 2);
  }
  EXPECT_THROW(sim.run_resumable(Strategy::kCostCapping, path, true),
               std::runtime_error);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace billcap::core
