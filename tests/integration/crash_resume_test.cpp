// Crash/resume integration: a month that is killed and restarted from the
// durable checkpoint — even at EVERY hour — must finish with a
// MonthlyResult bitwise identical to the same seed run uninterrupted.
//
// The fault mix uses outages + stale feeds + demand shocks only: those are
// the wall-clock-independent fault kinds (deadline squeezes depend on
// machine speed, see DESIGN.md), so bitwise comparison is meaningful.
// solve_ms / max_solve_ms are wall-clock measurements and excluded;
// crash_recoveries differs by design (that is the point of the run).

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "core/checkpoint.hpp"
#include "core/simulator.hpp"

namespace billcap::core {
namespace {

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

SimulationConfig faulty_config() {
  SimulationConfig config;
  config.monthly_budget = 1.5e6;
  config.seed = 2012;
  config.fault_rates.outage_rate = 0.003;
  config.fault_rates.stale_rate = 0.02;
  config.fault_rates.shock_rate = 0.005;
  config.market_feed.retry_success_prob = 0.5;
  return config;
}

/// Bitwise equality of two monthly results, except wall-clock measurements
/// (solve_ms, max_solve_ms) and the crash-recovery counter.
void expect_results_bitwise_equal(const MonthlyResult& a,
                                  const MonthlyResult& b) {
  EXPECT_EQ(a.strategy, b.strategy);
  EXPECT_EQ(a.monthly_budget, b.monthly_budget);
  EXPECT_EQ(a.total_cost, b.total_cost);
  EXPECT_EQ(a.total_premium_arrivals, b.total_premium_arrivals);
  EXPECT_EQ(a.total_ordinary_arrivals, b.total_ordinary_arrivals);
  EXPECT_EQ(a.total_served_premium, b.total_served_premium);
  EXPECT_EQ(a.total_served_ordinary, b.total_served_ordinary);
  EXPECT_EQ(a.degraded_hours, b.degraded_hours);
  EXPECT_EQ(a.incumbent_hours, b.incumbent_hours);
  EXPECT_EQ(a.heuristic_hours, b.heuristic_hours);
  EXPECT_EQ(a.outage_hours, b.outage_hours);
  EXPECT_EQ(a.stale_hours, b.stale_hours);
  EXPECT_EQ(a.failure_tally, b.failure_tally);
  EXPECT_EQ(a.feed_retry_attempts, b.feed_retry_attempts);
  EXPECT_EQ(a.feed_recovered_hours, b.feed_recovered_hours);
  ASSERT_EQ(a.hours.size(), b.hours.size());
  for (std::size_t h = 0; h < a.hours.size(); ++h) {
    const HourRecord& p = a.hours[h];
    const HourRecord& q = b.hours[h];
    EXPECT_EQ(p.hour, q.hour) << "hour " << h;
    EXPECT_EQ(p.arrivals, q.arrivals) << "hour " << h;
    EXPECT_EQ(p.premium_arrivals, q.premium_arrivals) << "hour " << h;
    EXPECT_EQ(p.ordinary_arrivals, q.ordinary_arrivals) << "hour " << h;
    EXPECT_EQ(p.served_premium, q.served_premium) << "hour " << h;
    EXPECT_EQ(p.served_ordinary, q.served_ordinary) << "hour " << h;
    EXPECT_EQ(p.hourly_budget, q.hourly_budget) << "hour " << h;
    EXPECT_EQ(p.cost, q.cost) << "hour " << h;
    EXPECT_EQ(p.predicted_cost, q.predicted_cost) << "hour " << h;
    EXPECT_EQ(p.mode, q.mode) << "hour " << h;
    EXPECT_EQ(p.site_lambda, q.site_lambda) << "hour " << h;
    EXPECT_EQ(p.site_power_mw, q.site_power_mw) << "hour " << h;
    EXPECT_EQ(p.nodes, q.nodes) << "hour " << h;
    EXPECT_EQ(p.degraded, q.degraded) << "hour " << h;
    EXPECT_EQ(p.failure, q.failure) << "hour " << h;
    EXPECT_EQ(p.used_incumbent, q.used_incumbent) << "hour " << h;
    EXPECT_EQ(p.used_heuristic, q.used_heuristic) << "hour " << h;
    EXPECT_EQ(p.sites_down, q.sites_down) << "hour " << h;
    EXPECT_EQ(p.stale_prices, q.stale_prices) << "hour " << h;
    EXPECT_EQ(p.feed_attempts, q.feed_attempts) << "hour " << h;
    EXPECT_EQ(p.feed_recovered, q.feed_recovered) << "hour " << h;
  }
}

/// Runs the month through run_resumable, restarting after every crash,
/// and returns the completed result plus the number of restarts taken.
MonthlyResult run_to_completion(const Simulator& sim, Strategy strategy,
                                const std::string& path,
                                std::size_t* restarts = nullptr) {
  std::remove(path.c_str());
  Simulator::ResumableOutcome outcome =
      sim.run_resumable(strategy, path, /*resume=*/false);
  std::size_t n = 0;
  while (outcome.crashed) {
    ++n;
    outcome = sim.run_resumable(strategy, path, /*resume=*/true);
  }
  if (restarts) *restarts = n;
  std::remove(path.c_str());
  return outcome.result;
}

TEST(CrashResumeTest, NoCrashesMatchesPlainRun) {
  const SimulationConfig config = faulty_config();
  const Simulator sim(config);
  const MonthlyResult want = sim.run(Strategy::kCostCapping);
  std::size_t restarts = 999;
  const MonthlyResult got =
      run_to_completion(sim, Strategy::kCostCapping,
                        temp_path("billcap_resume_none.j"), &restarts);
  EXPECT_EQ(restarts, 0u);
  EXPECT_EQ(got.crash_recoveries, 0u);
  expect_results_bitwise_equal(want, got);
}

TEST(CrashResumeTest, KillAtEveryHourReproducesUninterruptedMonth) {
  // One crash planned at EVERY hour of the month, alternating between
  // dying just before the hour's checkpoint commits (the hour must be
  // recomputed on resume) and just after (resume continues at the next
  // hour). Every hour of the month therefore exercises a resume.
  SimulationConfig config = faulty_config();
  const Simulator reference(config);
  const MonthlyResult want = reference.run(Strategy::kCostCapping);
  const std::size_t month_hours = want.hours.size();

  for (std::size_t h = 0; h < month_hours; ++h)
    config.fault_plan.crashes.push_back({h, /*before_checkpoint=*/h % 2 == 0});
  const Simulator sim(config);

  std::size_t restarts = 0;
  const MonthlyResult got =
      run_to_completion(sim, Strategy::kCostCapping,
                        temp_path("billcap_resume_every_hour.j"), &restarts);
  EXPECT_EQ(restarts, month_hours);
  EXPECT_EQ(got.crash_recoveries, month_hours);
  expect_results_bitwise_equal(want, got);
}

TEST(CrashResumeTest, CrashReportsHourAndResumePoint) {
  SimulationConfig config = faulty_config();
  config.fault_plan.crashes.push_back({10, /*before_checkpoint=*/false});
  config.fault_plan.crashes.push_back({11, /*before_checkpoint=*/true});
  const Simulator sim(config);
  const std::string path = temp_path("billcap_resume_report.j");
  std::remove(path.c_str());

  // Crash after hour 10's checkpoint: hours [0, 10] are committed.
  Simulator::ResumableOutcome outcome =
      sim.run_resumable(Strategy::kCostCapping, path, false);
  ASSERT_TRUE(outcome.crashed);
  EXPECT_EQ(outcome.crash_hour, 10u);
  EXPECT_EQ(load_checkpoint(path).next_hour, 11u);

  // Crash before hour 11's checkpoint: hour 11 is NOT committed and will
  // be recomputed by the next resume.
  outcome = sim.run_resumable(Strategy::kCostCapping, path, true);
  ASSERT_TRUE(outcome.crashed);
  EXPECT_EQ(outcome.crash_hour, 11u);
  EXPECT_EQ(outcome.resumed_from, 11u);
  EXPECT_EQ(load_checkpoint(path).next_hour, 11u);

  outcome = sim.run_resumable(Strategy::kCostCapping, path, true);
  EXPECT_FALSE(outcome.crashed);
  EXPECT_EQ(outcome.result.crash_recoveries, 2u);
  expect_results_bitwise_equal(sim.run(Strategy::kCostCapping),
                               outcome.result);
  std::remove(path.c_str());
}

TEST(CrashResumeTest, ResumeUnderDifferentConfigIsRefused) {
  SimulationConfig config = faulty_config();
  config.fault_plan.crashes.push_back({5, false});
  const Simulator sim(config);
  const std::string path = temp_path("billcap_resume_mismatch.j");
  std::remove(path.c_str());
  const Simulator::ResumableOutcome outcome =
      sim.run_resumable(Strategy::kCostCapping, path, false);
  ASSERT_TRUE(outcome.crashed);

  SimulationConfig other = faulty_config();
  other.seed = 999;  // different month entirely
  other.fault_plan.crashes.push_back({5, false});
  const Simulator wrong(other);
  EXPECT_THROW(wrong.run_resumable(Strategy::kCostCapping, path, true),
               std::runtime_error);
  // A different strategy under the same config is a mismatch too.
  EXPECT_THROW(sim.run_resumable(Strategy::kMinOnlyAvg, path, true),
               std::runtime_error);
  std::remove(path.c_str());
}

TEST(CrashResumeTest, CorruptedCheckpointIsRefusedOnResume) {
  SimulationConfig config = faulty_config();
  config.fault_plan.crashes.push_back({5, false});
  const Simulator sim(config);
  const std::string path = temp_path("billcap_resume_corrupt.j");
  std::remove(path.c_str());
  ASSERT_TRUE(sim.run_resumable(Strategy::kCostCapping, path, false).crashed);

  // Truncate the file to half: the resume must refuse, not half-load.
  std::string text;
  {
    std::ifstream in(path, std::ios::binary);
    text.assign(std::istreambuf_iterator<char>(in),
                std::istreambuf_iterator<char>());
  }
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << text.substr(0, text.size() / 2);
  }
  EXPECT_THROW(sim.run_resumable(Strategy::kCostCapping, path, true),
               std::runtime_error);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace billcap::core
