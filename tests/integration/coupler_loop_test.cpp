// Closed-loop market coupler integration: the ISSUE-9 acceptance gates
// that need a whole simulated month rather than a unit.
//
//   - coupling off is format- and digest-neutral: a config that never
//     enables the coupler keeps the checkpoint digest it had before the
//     closed-loop machinery existed, so old resume files stay adoptable;
//   - the damped paper-gain loop is deterministic run-to-run, bitwise;
//   - a destabilized month (high gain, no damping) killed and resumed
//     every few hours reproduces the uninterrupted month bitwise — the
//     breaker clock, damping rung and oscillation tally all live in the
//     checkpoint, so recovery cannot fork the trajectory — while the
//     premium QoS guarantee survives the whole episode.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>

#include "core/checkpoint.hpp"
#include "core/simulator.hpp"

namespace billcap::core {
namespace {

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

/// Bitwise equality over everything deterministic, including the coupler
/// trajectory. Wall-clock fields (solve_ms, max_solve_ms) and the
/// crash-recovery counter are excluded, as in crash_resume_test.
void expect_months_bitwise_equal(const MonthlyResult& a,
                                 const MonthlyResult& b) {
  EXPECT_EQ(a.total_cost, b.total_cost);
  EXPECT_EQ(a.total_served_premium, b.total_served_premium);
  EXPECT_EQ(a.total_served_ordinary, b.total_served_ordinary);
  EXPECT_EQ(a.degraded_hours, b.degraded_hours);
  EXPECT_EQ(a.failure_tally, b.failure_tally);
  EXPECT_EQ(a.closed_loop_hours, b.closed_loop_hours);
  EXPECT_EQ(a.coupler_fallback_hours, b.coupler_fallback_hours);
  EXPECT_EQ(a.coupler_iterations, b.coupler_iterations);
  ASSERT_EQ(a.hours.size(), b.hours.size());
  for (std::size_t h = 0; h < a.hours.size(); ++h) {
    const HourRecord& p = a.hours[h];
    const HourRecord& q = b.hours[h];
    EXPECT_EQ(p.cost, q.cost) << "hour " << h;
    EXPECT_EQ(p.predicted_cost, q.predicted_cost) << "hour " << h;
    EXPECT_EQ(p.served_premium, q.served_premium) << "hour " << h;
    EXPECT_EQ(p.served_ordinary, q.served_ordinary) << "hour " << h;
    EXPECT_EQ(p.site_lambda, q.site_lambda) << "hour " << h;
    EXPECT_EQ(p.site_power_mw, q.site_power_mw) << "hour " << h;
    EXPECT_EQ(p.failure, q.failure) << "hour " << h;
    EXPECT_EQ(p.coupler_iterations, q.coupler_iterations) << "hour " << h;
    EXPECT_EQ(p.coupler_converged, q.coupler_converged) << "hour " << h;
    EXPECT_EQ(p.coupler_fallback, q.coupler_fallback) << "hour " << h;
    EXPECT_EQ(p.coupler_rung, q.coupler_rung) << "hour " << h;
  }
}

TEST(CouplerLoopTest, DisabledCouplerIsDigestNeutral) {
  // Turning coupler knobs while leaving the loop DISABLED must not move
  // the checkpoint digest: every open-loop month keeps the digest it had
  // before the closed-loop format existed, so pre-coupler resume files
  // remain adoptable. Enabling the loop (or changing a knob while
  // enabled) must separate digests like any other config change.
  SimulationConfig config;
  const std::uint64_t base = checkpoint_digest(config, Strategy::kCostCapping);

  SimulationConfig tuned = config;
  tuned.market_coupler.loop.feedback_gain = 4.0;
  tuned.market_coupler.damping = DampingMode::kOff;
  EXPECT_EQ(base, checkpoint_digest(tuned, Strategy::kCostCapping));

  SimulationConfig enabled = config;
  enabled.market_coupler.enabled = true;
  const std::uint64_t closed =
      checkpoint_digest(enabled, Strategy::kCostCapping);
  EXPECT_NE(base, closed);

  SimulationConfig retuned = enabled;
  retuned.market_coupler.loop.feedback_gain = 4.0;
  EXPECT_NE(closed, checkpoint_digest(retuned, Strategy::kCostCapping));
}

TEST(CouplerLoopTest, DampedClosedLoopMonthIsDeterministic) {
  SimulationConfig config;
  config.market_coupler.enabled = true;
  config.market_coupler.damping = DampingMode::kFull;

  const MonthlyResult first = Simulator(config).run(Strategy::kCostCapping);
  const MonthlyResult second = Simulator(config).run(Strategy::kCostCapping);
  expect_months_bitwise_equal(first, second);

  // The damped paper-gain loop closes every hour of the month.
  EXPECT_EQ(first.closed_loop_hours, first.hours.size());
  EXPECT_EQ(first.coupler_fallback_hours, 0u);
  EXPECT_EQ(first.failure_tally[static_cast<std::size_t>(
                FailureReason::kPriceOscillation)],
            0u);
  EXPECT_EQ(first.failure_tally[static_cast<std::size_t>(
                FailureReason::kCouplerDiverged)],
            0u);
  EXPECT_GE(first.premium_throughput_ratio(), 1.0 - 1e-9);
}

TEST(CouplerLoopTest, DestabilizedMonthKillResumeIsBitwise) {
  // High gain, no damping: the month oscillates, trips the divergence
  // breaker and spends stretches in open-loop fallback. A crash planned
  // every fourth hour — alternating before/after the checkpoint commit —
  // must still reproduce the uninterrupted month bitwise, because the
  // breaker clock and detector verdicts are part of the checkpoint.
  SimulationConfig config;
  config.market_coupler.enabled = true;
  config.market_coupler.loop.feedback_gain = 4.0;
  config.market_coupler.damping = DampingMode::kOff;

  const MonthlyResult want = Simulator(config).run(Strategy::kCostCapping);
  EXPECT_GT(want.failure_tally[static_cast<std::size_t>(
                FailureReason::kPriceOscillation)],
            0u)
      << "destabilizing config no longer oscillates; the resume test "
         "would not cover the breaker path";
  EXPECT_GT(want.coupler_fallback_hours, 0u);
  EXPECT_GE(want.premium_throughput_ratio(), 1.0 - 1e-9);

  for (std::size_t h = 0; h < want.hours.size(); h += 4)
    config.fault_plan.crashes.push_back({h, /*before_checkpoint=*/h % 8 == 0});
  const Simulator sim(config);
  const std::string path = temp_path("billcap_coupler_resume.j");
  std::remove(path.c_str());

  Simulator::ResumableOutcome outcome =
      sim.run_resumable(Strategy::kCostCapping, path, /*resume=*/false);
  std::size_t restarts = 0;
  while (outcome.crashed) {
    ++restarts;
    outcome = sim.run_resumable(Strategy::kCostCapping, path, /*resume=*/true);
  }
  std::remove(path.c_str());

  EXPECT_EQ(restarts, (want.hours.size() + 3) / 4);
  expect_months_bitwise_equal(want, outcome.result);
}

}  // namespace
}  // namespace billcap::core
