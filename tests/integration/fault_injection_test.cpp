// The acceptance scenario for the fault-injection framework: a month with a
// mid-month single-site outage, a stale-price interval and a hard per-solve
// wall-clock deadline must complete without throwing, every hour must carry
// a feasible allocation, and the degraded hours must be flagged and counted
// consistently. Fault-free runs must behave exactly as before the framework
// existed.

#include <gtest/gtest.h>

#include <vector>

#include "core/simulator.hpp"

namespace billcap::core {
namespace {

SimulationConfig acceptance_config() {
  SimulationConfig config;
  config.monthly_budget = 1.5e6;
  // Mid-month outage: site 1 dark for hours [300, 360).
  config.fault_plan.outages.push_back({1, 300, 60});
  // The market feed freezes for hours [400, 430).
  config.fault_plan.stale_intervals.push_back({400, 30});
  // Every solve of the month runs against a 5 ms wall-clock deadline.
  config.optimizer.milp.time_limit_ms = 5.0;
  return config;
}

TEST(FaultInjectionTest, AcceptanceScenarioCompletesAndStaysFeasible) {
  const SimulationConfig config = acceptance_config();
  const Simulator sim(config);
  MonthlyResult r;
  ASSERT_NO_THROW(r = sim.run(Strategy::kCostCapping));
  ASSERT_EQ(r.hours.size(), 720u);

  const auto& sites = sim.sites();
  for (const auto& h : r.hours) {
    // Every hour carries a real allocation: non-negative site rates that
    // never exceed what was served, and served never exceeds arrivals.
    EXPECT_LE(h.served_premium, h.premium_arrivals + 1.0) << h.hour;
    EXPECT_LE(h.served_ordinary, h.ordinary_arrivals + 1.0) << h.hour;
    ASSERT_EQ(h.site_lambda.size(), sites.size());
    for (std::size_t i = 0; i < sites.size(); ++i) {
      EXPECT_GE(h.site_lambda[i], 0.0) << h.hour;
      // Ground-truth site draw respects the power cap (small slack for the
      // integer server/switch rounding of the billing model).
      EXPECT_LE(h.site_power_mw[i], sites[i].spec().power_cap_mw * 1.05)
          << "site " << i << " hour " << h.hour;
    }
  }

  // The downed site takes no load during its outage window...
  for (std::size_t hour = 300; hour < 360; ++hour) {
    EXPECT_DOUBLE_EQ(r.hours[hour].site_lambda[1], 0.0) << hour;
    EXPECT_EQ(r.hours[hour].sites_down, 1u) << hour;
  }
  // ... and recovers afterwards (bookkeeping, not necessarily load).
  EXPECT_EQ(r.hours[360].sites_down, 0u);
  EXPECT_EQ(r.outage_hours, 60u);

  // The stale interval is flagged: hours [400, 430) plan on hour 399's feed.
  for (std::size_t hour = 400; hour < 430; ++hour)
    EXPECT_TRUE(r.hours[hour].stale_prices) << hour;
  EXPECT_FALSE(r.hours[399].stale_prices);
  EXPECT_FALSE(r.hours[430].stale_prices);
  EXPECT_EQ(r.stale_hours, 30u);

  // Premium QoS survives the faults apart from physical-capacity loss
  // while a third of the fleet is dark.
  EXPECT_GT(r.premium_throughput_ratio(), 0.95);
}

TEST(FaultInjectionTest, DegradedCountersMatchPerHourFlags) {
  const Simulator sim(acceptance_config());
  const MonthlyResult r = sim.run(Strategy::kCostCapping);
  std::size_t degraded = 0;
  std::size_t incumbent = 0;
  std::size_t heuristic = 0;
  std::size_t outage = 0;
  std::size_t stale = 0;
  for (const auto& h : r.hours) {
    degraded += h.degraded ? 1 : 0;
    incumbent += h.used_incumbent ? 1 : 0;
    heuristic += h.used_heuristic ? 1 : 0;
    outage += h.sites_down > 0 ? 1 : 0;
    stale += h.stale_prices ? 1 : 0;
    // A degraded hour names its failure; a clean hour names none.
    EXPECT_EQ(h.degraded, h.failure != FailureReason::kNone) << h.hour;
    // The ladder rungs are exclusive.
    EXPECT_FALSE(h.used_incumbent && h.used_heuristic) << h.hour;
  }
  EXPECT_EQ(r.degraded_hours, degraded);
  EXPECT_EQ(r.incumbent_hours, incumbent);
  EXPECT_EQ(r.heuristic_hours, heuristic);
  EXPECT_EQ(r.outage_hours, outage);
  EXPECT_EQ(r.stale_hours, stale);
}

TEST(FaultInjectionTest, FaultFreeRunIsCleanAndUndegraded) {
  // With no faults and default solver limits, nothing in the degradation
  // machinery fires: the month is bit-for-bit the pre-framework behaviour.
  SimulationConfig config;
  config.monthly_budget = 1.5e6;
  const MonthlyResult r = Simulator(config).run(Strategy::kCostCapping);
  EXPECT_EQ(r.degraded_hours, 0u);
  EXPECT_EQ(r.incumbent_hours, 0u);
  EXPECT_EQ(r.heuristic_hours, 0u);
  EXPECT_EQ(r.outage_hours, 0u);
  EXPECT_EQ(r.stale_hours, 0u);
  for (const auto& h : r.hours) {
    EXPECT_FALSE(h.degraded);
    EXPECT_EQ(h.failure, FailureReason::kNone);
  }
  EXPECT_DOUBLE_EQ(r.premium_throughput_ratio(), 1.0);
}

TEST(FaultInjectionTest, SameSeedSamePlanBitwiseIdentical) {
  // Determinism with the deterministic fault kinds (outages, stale feeds,
  // demand shocks — wall-clock squeezes are excluded by construction): two
  // independent simulators must agree to the last bit on everything except
  // measured solve times.
  SimulationConfig config;
  config.monthly_budget = 1.2e6;
  config.seed = 4242;
  config.fault_plan.outages.push_back({0, 100, 24});
  config.fault_plan.stale_intervals.push_back({250, 12});
  config.fault_plan.demand_shocks.push_back({2, 500, 48, 1.6});

  const MonthlyResult a = Simulator(config).run(Strategy::kCostCapping);
  const MonthlyResult b = Simulator(config).run(Strategy::kCostCapping);

  EXPECT_DOUBLE_EQ(a.total_cost, b.total_cost);
  EXPECT_DOUBLE_EQ(a.total_served_premium, b.total_served_premium);
  EXPECT_DOUBLE_EQ(a.total_served_ordinary, b.total_served_ordinary);
  EXPECT_EQ(a.degraded_hours, b.degraded_hours);
  EXPECT_EQ(a.incumbent_hours, b.incumbent_hours);
  EXPECT_EQ(a.heuristic_hours, b.heuristic_hours);
  EXPECT_EQ(a.outage_hours, b.outage_hours);
  EXPECT_EQ(a.stale_hours, b.stale_hours);
  ASSERT_EQ(a.hours.size(), b.hours.size());
  for (std::size_t h = 0; h < a.hours.size(); ++h) {
    EXPECT_DOUBLE_EQ(a.hours[h].cost, b.hours[h].cost) << h;
    EXPECT_DOUBLE_EQ(a.hours[h].served_ordinary, b.hours[h].served_ordinary)
        << h;
    EXPECT_EQ(a.hours[h].mode, b.hours[h].mode) << h;
    EXPECT_EQ(a.hours[h].degraded, b.hours[h].degraded) << h;
    ASSERT_EQ(a.hours[h].site_lambda.size(), b.hours[h].site_lambda.size());
    for (std::size_t i = 0; i < a.hours[h].site_lambda.size(); ++i)
      EXPECT_DOUBLE_EQ(a.hours[h].site_lambda[i], b.hours[h].site_lambda[i])
          << h;
  }
}

TEST(FaultInjectionTest, RateDrivenPlanDeterministicInSeed) {
  SimulationConfig config;
  config.fault_rates.outage_rate = 0.002;
  config.fault_rates.shock_rate = 0.002;
  const MonthlyResult a = Simulator(config).run(Strategy::kCostCapping);
  const MonthlyResult b = Simulator(config).run(Strategy::kCostCapping);
  EXPECT_DOUBLE_EQ(a.total_cost, b.total_cost);
  EXPECT_EQ(a.outage_hours, b.outage_hours);
}

TEST(FaultInjectionTest, MinOnlyBaselineSurvivesFaultsToo) {
  SimulationConfig config;
  config.fault_plan.outages.push_back({2, 200, 48});
  config.fault_plan.demand_shocks.push_back({0, 350, 24, 1.4});
  const Simulator sim(config);
  MonthlyResult r;
  ASSERT_NO_THROW(r = sim.run(Strategy::kMinOnlyAvg));
  ASSERT_EQ(r.hours.size(), 720u);
  for (std::size_t hour = 200; hour < 248; ++hour) {
    EXPECT_DOUBLE_EQ(r.hours[hour].site_lambda[2], 0.0) << hour;
    EXPECT_EQ(r.hours[hour].sites_down, 1u) << hour;
  }
  EXPECT_EQ(r.outage_hours, 48u);
  EXPECT_GT(r.premium_throughput_ratio(), 0.95);
}

}  // namespace
}  // namespace billcap::core
