#include <gtest/gtest.h>

#include "core/simulator.hpp"

namespace billcap::core {
namespace {

/// Full-month closed-loop runs of every strategy under the default
/// (paper) configuration. These are the system-level invariants every
/// figure rests on.
class EndToEndTest : public ::testing::Test {
 protected:
  static const MonthlyResult& cost_capping() {
    static const MonthlyResult r = [] {
      SimulationConfig config;
      config.monthly_budget = 1.5e6;
      return Simulator(config).run(Strategy::kCostCapping);
    }();
    return r;
  }
  static const MonthlyResult& min_only_avg() {
    static const MonthlyResult r = [] {
      SimulationConfig config;
      config.monthly_budget = 1.5e6;
      return Simulator(config).run(Strategy::kMinOnlyAvg);
    }();
    return r;
  }
};

TEST_F(EndToEndTest, PremiumCustomersAlwaysServed) {
  EXPECT_DOUBLE_EQ(cost_capping().premium_throughput_ratio(), 1.0);
  for (const auto& h : cost_capping().hours)
    EXPECT_DOUBLE_EQ(h.served_premium, h.premium_arrivals)
        << "hour " << h.hour;
}

TEST_F(EndToEndTest, ServedNeverExceedsArrivals) {
  for (const auto& h : cost_capping().hours) {
    EXPECT_LE(h.served_premium, h.premium_arrivals + 1.0);
    EXPECT_LE(h.served_ordinary, h.ordinary_arrivals + 1.0);
  }
}

TEST_F(EndToEndTest, HourlyCostsArePositiveAndBounded) {
  for (const auto& h : cost_capping().hours) {
    EXPECT_GT(h.cost, 0.0);
    EXPECT_LT(h.cost, 20'000.0);  // 3 sites x <=72 MW x <=52 $/MWh + margin
  }
}

TEST_F(EndToEndTest, SitePowersWithinCaps) {
  const Simulator sim{SimulationConfig{}};
  const auto& sites = sim.sites();
  for (const auto& h : cost_capping().hours) {
    for (std::size_t i = 0; i < sites.size(); ++i) {
      EXPECT_LE(h.site_power_mw[i],
                sites[i].spec().power_cap_mw * 1.001)
          << "hour " << h.hour << " site " << i;
    }
  }
}

TEST_F(EndToEndTest, DispatchedLambdaMatchesServed) {
  for (const auto& h : cost_capping().hours) {
    double dispatched = 0.0;
    for (double l : h.site_lambda) dispatched += l;
    EXPECT_NEAR(dispatched, h.served_premium + h.served_ordinary,
                1e-3 * std::max(1.0, dispatched))
        << "hour " << h.hour;
  }
}

TEST_F(EndToEndTest, BudgetViolationsOnlyInPremiumOnlyMode) {
  // When the capper reports kCapped or kUncapped, the believed cost fits
  // the hourly budget; ground truth may exceed only by the model gap.
  for (const auto& h : cost_capping().hours) {
    if (h.mode == CappingOutcome::Mode::kPremiumOnly) continue;
    EXPECT_LE(h.predicted_cost, h.hourly_budget * (1.0 + 1e-6))
        << "hour " << h.hour;
    EXPECT_LE(h.cost, h.hourly_budget * 1.05 + 5.0) << "hour " << h.hour;
  }
}

TEST_F(EndToEndTest, MonthlyCostControlledUnderTightBudget) {
  // $1.5M is insufficient for the full workload: Cost Capping lands within
  // a few percent of the cap while still guaranteeing premium QoS.
  EXPECT_LE(cost_capping().budget_utilization(), 1.02);
  EXPECT_GT(cost_capping().budget_utilization(), 0.70);
  EXPECT_LT(cost_capping().ordinary_throughput_ratio(), 1.0);
}

TEST_F(EndToEndTest, MinOnlyServesAllButIgnoresBudget) {
  EXPECT_DOUBLE_EQ(min_only_avg().premium_throughput_ratio(), 1.0);
  EXPECT_GT(min_only_avg().ordinary_throughput_ratio(), 0.999);
  // It spends more than Cost Capping under the same conditions.
  EXPECT_GT(min_only_avg().total_cost, cost_capping().total_cost);
}

TEST_F(EndToEndTest, SolverIsFastEnoughForOnlineUse) {
  // The paper reports ~2 ms per invocation with lp_solve; allow an order
  // of magnitude of slack for CI machines.
  EXPECT_LT(cost_capping().max_solve_ms, 100.0);
}

TEST_F(EndToEndTest, SpendFeedsBackIntoBudgeter) {
  // Re-running with a much smaller budget must change hourly budgets and
  // reduce the ordinary throughput.
  SimulationConfig tight;
  tight.monthly_budget = 0.5e6;
  const MonthlyResult starved = Simulator(tight).run(Strategy::kCostCapping);
  EXPECT_LT(starved.ordinary_throughput_ratio(),
            cost_capping().ordinary_throughput_ratio());
  EXPECT_DOUBLE_EQ(starved.premium_throughput_ratio(), 1.0);
}

}  // namespace
}  // namespace billcap::core
