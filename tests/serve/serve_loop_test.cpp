// ServeLoop integration: the serving daemon's tick loop must complete a
// short horizon in memory, survive injected kills with a bitwise-identical
// recovery through its durable checkpoint, stop gracefully, pin the ladder
// in standby, and publish a progress counter the supervisor's probe reads.
#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>

#include "core/simulator.hpp"
#include "core/supervisor.hpp"
#include "serve/serve_loop.hpp"
#include "util/journal.hpp"

namespace billcap::serve {
namespace {

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

core::SimulationConfig small_config() {
  core::SimulationConfig config;
  config.monthly_budget = 1.5e6;
  config.seed = 2012;
  return config;
}

ServeConfig short_serve_config() {
  ServeConfig config;
  config.ticks_per_hour = 4;
  config.horizon_hours = 3;  // 12 ticks: seconds, not minutes
  return config;
}

/// Bitwise equality of two doubles (not EXPECT_DOUBLE_EQ's 4-ULP slack):
/// the checkpoint contract is byte identity, nothing weaker.
void expect_same_bits(double a, double b, const char* what) {
  std::uint64_t ba = 0;
  std::uint64_t bb = 0;
  std::memcpy(&ba, &a, sizeof(a));
  std::memcpy(&bb, &b, sizeof(b));
  EXPECT_EQ(ba, bb) << what << ": " << a << " vs " << b;
}

void expect_reports_bitwise_equal(const ServeReport& a, const ServeReport& b) {
  EXPECT_EQ(a.ticks_committed, b.ticks_committed);
  expect_same_bits(a.total_cost, b.total_cost, "total_cost");
  expect_same_bits(a.total_premium_arrivals, b.total_premium_arrivals,
                   "total_premium_arrivals");
  expect_same_bits(a.total_ordinary_arrivals, b.total_ordinary_arrivals,
                   "total_ordinary_arrivals");
  expect_same_bits(a.total_served_premium, b.total_served_premium,
                   "total_served_premium");
  expect_same_bits(a.total_served_ordinary, b.total_served_ordinary,
                   "total_served_ordinary");
  expect_same_bits(a.dropped_premium, b.dropped_premium, "dropped_premium");
  expect_same_bits(a.dropped_ordinary, b.dropped_ordinary, "dropped_ordinary");
  expect_same_bits(a.final_premium_depth, b.final_premium_depth,
                   "final_premium_depth");
  expect_same_bits(a.final_ordinary_depth, b.final_ordinary_depth,
                   "final_ordinary_depth");
  EXPECT_EQ(a.feed_updates_seen, b.feed_updates_seen);
  EXPECT_EQ(a.replans, b.replans);
  EXPECT_EQ(a.degraded_replans, b.degraded_replans);
  EXPECT_EQ(a.breaker_trips, b.breaker_trips);
  EXPECT_EQ(a.shed_ticks, b.shed_ticks);
  EXPECT_EQ(a.health_transitions, b.health_transitions);
  EXPECT_EQ(a.final_health, b.final_health);
  ASSERT_EQ(a.health_history.size(), b.health_history.size());
  for (std::size_t i = 0; i < a.health_history.size(); ++i) {
    EXPECT_EQ(a.health_history[i].tick, b.health_history[i].tick);
    EXPECT_EQ(a.health_history[i].from, b.health_history[i].from);
    EXPECT_EQ(a.health_history[i].to, b.health_history[i].to);
  }
}

void remove_generations(const std::string& path, std::size_t gens) {
  for (std::size_t g = 0; g < gens; ++g)
    std::remove(util::Journal::generation_path(path, g).c_str());
}

TEST(ServeLoopTest, InMemoryRunCompletesTheHorizon) {
  const core::Simulator sim(small_config());
  const ServeConfig cfg = short_serve_config();
  const ServeLoop loop(sim, cfg);
  ASSERT_EQ(loop.total_ticks(), 12u);

  std::size_t on_tick_calls = 0;
  const ServeOutcome outcome =
      loop.run("", /*resume=*/false,
               [&](const TickRecord& rec) {
                 EXPECT_EQ(rec.tick, on_tick_calls);
                 ++on_tick_calls;
               });
  EXPECT_FALSE(outcome.crashed);
  EXPECT_FALSE(outcome.stopped);
  EXPECT_EQ(outcome.report.ticks_committed, 12u);
  EXPECT_EQ(on_tick_calls, 12u);
  EXPECT_EQ(outcome.report.ticks_this_attempt.size(), 12u);
  // A calm month never violates the premium contract.
  EXPECT_TRUE(outcome.report.premium_qos_ok());
  // Backlog always respects the hard capacity ceiling.
  EXPECT_LE(outcome.report.max_premium_depth, loop.premium_queue_capacity());
  EXPECT_LE(outcome.report.max_ordinary_depth, loop.ordinary_queue_capacity());
}

TEST(ServeLoopTest, InMemoryRunRejectsResumeAndInjectedKills) {
  const core::Simulator sim(small_config());
  EXPECT_THROW(ServeLoop(sim, short_serve_config()).run("", /*resume=*/true),
               std::invalid_argument);
  ServeConfig cfg = short_serve_config();
  cfg.kill_at_ticks = {3};
  EXPECT_THROW(ServeLoop(sim, cfg).run("", /*resume=*/false),
               std::invalid_argument);
}

TEST(ServeLoopTest, KillAndResumeReproducesTheCleanRunBitwise) {
  const core::Simulator sim(small_config());
  const ServeConfig clean_cfg = short_serve_config();
  const ServeLoop clean_loop(sim, clean_cfg);
  const std::string clean_path = temp_path("billcap_serve_clean.j");
  std::remove(clean_path.c_str());
  const ServeOutcome want = clean_loop.run(clean_path, false);
  ASSERT_FALSE(want.crashed);
  std::remove(clean_path.c_str());

  // Same daemon, three deaths — including two at the same tick (the second
  // restart must die again at tick 6 before finally passing it).
  ServeConfig cfg = short_serve_config();
  cfg.kill_at_ticks = {2, 6, 6};
  const ServeLoop loop(sim, cfg);
  const std::string path = temp_path("billcap_serve_kills.j");
  std::remove(path.c_str());

  ServeOutcome outcome = loop.run(path, /*resume=*/false);
  std::size_t deaths = 0;
  while (outcome.crashed) {
    ++deaths;
    ASSERT_LE(deaths, 3u);
    outcome = loop.run(path, /*resume=*/true);
  }
  EXPECT_EQ(deaths, 3u);
  EXPECT_EQ(outcome.report.ticks_committed, 12u);
  expect_reports_bitwise_equal(want.report, outcome.report);
  std::remove(path.c_str());
}

TEST(ServeLoopTest, GracefulStopLeavesAResumableCheckpoint) {
  const core::Simulator sim(small_config());
  const ServeConfig cfg = short_serve_config();
  const ServeLoop loop(sim, cfg);
  const std::string clean_path = temp_path("billcap_serve_stop_ref.j");
  std::remove(clean_path.c_str());
  const ServeOutcome want = loop.run(clean_path, false);
  std::remove(clean_path.c_str());

  const std::string path = temp_path("billcap_serve_stop.j");
  std::remove(path.c_str());
  ServeLoop::Controls controls;
  controls.max_ticks = 5;
  ServeOutcome outcome = loop.run(path, /*resume=*/false, {}, controls);
  EXPECT_TRUE(outcome.stopped);
  EXPECT_FALSE(outcome.crashed);
  EXPECT_EQ(outcome.report.ticks_committed, 5u);

  // Resuming without the limit finishes the horizon bit-identically.
  outcome = loop.run(path, /*resume=*/true);
  EXPECT_FALSE(outcome.stopped);
  EXPECT_EQ(outcome.resumed_from_tick, 5u);
  EXPECT_EQ(outcome.report.ticks_committed, 12u);
  expect_reports_bitwise_equal(want.report, outcome.report);
  std::remove(path.c_str());
}

TEST(ServeLoopTest, StandbyPinsPremiumOnlyAndBypassesKills) {
  const core::Simulator sim(small_config());
  ServeConfig cfg = short_serve_config();
  cfg.standby = true;
  cfg.kill_at_ticks = {1, 4};  // must NOT fire on a standby attempt
  const ServeLoop loop(sim, cfg);
  const std::string path = temp_path("billcap_serve_standby.j");
  std::remove(path.c_str());

  const ServeOutcome outcome = loop.run(path, /*resume=*/false);
  EXPECT_FALSE(outcome.crashed);
  EXPECT_EQ(outcome.report.ticks_committed, 12u);
  EXPECT_EQ(outcome.report.standby_ticks, 12u);
  for (const TickRecord& rec : outcome.report.ticks_this_attempt) {
    EXPECT_EQ(rec.admission, AdmissionLevel::kPremiumOnly);
    EXPECT_EQ(rec.health, ServeHealth::kStandby);
    EXPECT_FALSE(rec.replanned);  // no MILP on the standby rung
  }
  std::remove(path.c_str());
}

TEST(ServeLoopTest, StandbyResumesThePrimarysCheckpoint) {
  // The digest must not mix `standby` (or the kill plan): the escalated
  // standby attempt picks up exactly where the dying primary stopped.
  const core::Simulator sim(small_config());
  ServeConfig primary_cfg = short_serve_config();
  primary_cfg.kill_at_ticks = {7};
  const ServeLoop primary(sim, primary_cfg);
  const std::string path = temp_path("billcap_serve_handoff.j");
  std::remove(path.c_str());

  ServeOutcome outcome = primary.run(path, /*resume=*/false);
  ASSERT_TRUE(outcome.crashed);
  EXPECT_EQ(outcome.crash_tick, 7u);

  // Same config (kill_at_ticks IS digested; `standby` alone is not), so
  // the standby attempt loads the primary's checkpoint cleanly.
  ServeConfig standby_cfg = primary_cfg;
  standby_cfg.standby = true;
  const ServeLoop standby(sim, standby_cfg);
  ServeLoop::Controls controls;
  controls.max_ticks = 2;  // a bounded standby chunk, like the supervisor's
  outcome = standby.run(path, /*resume=*/true, {}, controls);
  EXPECT_TRUE(outcome.stopped);
  EXPECT_EQ(outcome.resumed_from_tick, 7u);
  EXPECT_EQ(outcome.report.ticks_committed, 9u);

  // Handing back to the primary: the kill at tick 7 was consumed by the
  // crash, the standby walked past it, and the primary finishes.
  outcome = primary.run(path, /*resume=*/true);
  EXPECT_FALSE(outcome.crashed);
  EXPECT_EQ(outcome.report.ticks_committed, 12u);
  std::remove(path.c_str());
}

TEST(ServeLoopTest, SupervisorProbeReadsServeCheckpointProgress) {
  const core::Simulator sim(small_config());
  const ServeLoop loop(sim, short_serve_config());
  const std::string path = temp_path("billcap_serve_probe.j");
  remove_generations(path, 2);

  // Stop after 5 committed ticks: generation 0 holds next_tick 5 and the
  // previous commit (next_tick 4) survives as generation 1.
  ServeLoop::Controls controls;
  controls.keep_generations = 2;
  controls.max_ticks = 5;
  const ServeOutcome outcome = loop.run(path, false, {}, controls);
  ASSERT_TRUE(outcome.stopped);

  // The probe reads next_tick from the serve journal — the supervisor's
  // restart policy only compares deltas, so any monotone counter works.
  EXPECT_EQ(core::probe_checkpoint_hour(path, 2), 5u);

  // A stomped newest generation: the probe falls back to the older one.
  {
    std::ofstream stomp(path, std::ios::binary | std::ios::trunc);
    stomp << "garbage";
  }
  EXPECT_EQ(core::probe_checkpoint_hour(path, 2), 4u);
  remove_generations(path, 2);
}

}  // namespace
}  // namespace billcap::serve
