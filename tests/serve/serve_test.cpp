// Unit tests for the serving daemon's deterministic parts: the bounded
// ingest plane (BoundedQueue, FeedUpdateQueue), the admission ladder's
// hysteresis, the re-plan circuit breaker's exponential half-open probing,
// and the HealthTracker's bounded, journal-round-trippable history.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "serve/admission.hpp"
#include "serve/health.hpp"
#include "serve/ingest.hpp"
#include "serve/replan.hpp"

namespace billcap::serve {
namespace {

TEST(BoundedQueueTest, OfferAcceptsWhatFitsAndCountsTheRest) {
  BoundedQueue q(10.0);
  EXPECT_DOUBLE_EQ(q.offer(4.0), 4.0);
  EXPECT_DOUBLE_EQ(q.depth(), 4.0);
  EXPECT_DOUBLE_EQ(q.fill(), 0.4);
  EXPECT_DOUBLE_EQ(q.dropped(), 0.0);

  // 8 offered, 6 fit: the overflow goes to the drop counter, never the heap.
  EXPECT_DOUBLE_EQ(q.offer(8.0), 6.0);
  EXPECT_DOUBLE_EQ(q.depth(), 10.0);
  EXPECT_DOUBLE_EQ(q.dropped(), 2.0);

  // A full queue drops everything at the door.
  EXPECT_DOUBLE_EQ(q.offer(3.0), 0.0);
  EXPECT_DOUBLE_EQ(q.dropped(), 5.0);
}

TEST(BoundedQueueTest, TakeDrainsUpToDepth) {
  BoundedQueue q(10.0);
  q.offer(6.0);
  EXPECT_DOUBLE_EQ(q.take(4.0), 4.0);
  EXPECT_DOUBLE_EQ(q.depth(), 2.0);
  EXPECT_DOUBLE_EQ(q.take(100.0), 2.0);
  EXPECT_DOUBLE_EQ(q.depth(), 0.0);
  EXPECT_DOUBLE_EQ(q.take(1.0), 0.0);
}

TEST(BoundedQueueTest, RestoreOverwritesMutableState) {
  BoundedQueue q(10.0);
  q.offer(3.0);
  q.restore(7.5, 12.25);
  EXPECT_DOUBLE_EQ(q.depth(), 7.5);
  EXPECT_DOUBLE_EQ(q.dropped(), 12.25);
  EXPECT_DOUBLE_EQ(q.capacity(), 10.0);
}

TEST(BoundedQueueTest, ZeroCapacityIsAConfigurationBug) {
  EXPECT_THROW(BoundedQueue(0.0), std::invalid_argument);
  EXPECT_THROW(BoundedQueue(-1.0), std::invalid_argument);
}

TEST(FeedUpdateQueueTest, OverflowIsDroppedAndCounted) {
  FeedUpdateQueue q(4);
  q.push(3);
  EXPECT_EQ(q.pending(), 3u);
  EXPECT_EQ(q.seen(), 3u);
  EXPECT_EQ(q.dropped(), 0u);

  // 5 more revisions, 1 slot left: 4 drop, all 5 count as seen.
  q.push(5);
  EXPECT_EQ(q.pending(), 4u);
  EXPECT_EQ(q.seen(), 8u);
  EXPECT_EQ(q.dropped(), 4u);

  EXPECT_EQ(q.drain(3), 3u);
  EXPECT_EQ(q.pending(), 1u);
  EXPECT_EQ(q.drain(10), 1u);
  EXPECT_EQ(q.pending(), 0u);
  EXPECT_EQ(q.drain(1), 0u);
}

TEST(FeedUpdateQueueTest, RestoreRoundTrips) {
  FeedUpdateQueue q(8);
  q.restore(/*pending=*/5, /*seen=*/20, /*dropped=*/7);
  EXPECT_EQ(q.pending(), 5u);
  EXPECT_EQ(q.seen(), 20u);
  EXPECT_EQ(q.dropped(), 7u);
}

AdmissionConfig ladder_config() {
  AdmissionConfig c;
  c.shed_enter_fill = 0.70;
  c.shed_exit_fill = 0.30;
  c.standby_enter_fill = 0.95;
  c.standby_exit_fill = 0.50;
  c.stale_ticks_tolerated = 4;
  return c;
}

TEST(AdmissionControllerTest, EscalatesImmediatelyOnPressure) {
  AdmissionController ladder(ladder_config());
  EXPECT_EQ(ladder.level(), AdmissionLevel::kAdmitAll);

  // Ordinary pressure past the enter threshold sheds in the same tick.
  EXPECT_EQ(ladder.update({0.1, 0.75, 0, false}),
            AdmissionLevel::kShedOrdinary);
  // Premium pressure forces the standby rung, skipping nothing.
  EXPECT_EQ(ladder.update({0.96, 0.75, 0, false}),
            AdmissionLevel::kPremiumOnly);
}

TEST(AdmissionControllerTest, DeEscalationIsHystereticAndOneRungPerTick) {
  AdmissionController ladder(ladder_config());
  ladder.update({0.96, 0.80, 0, false});
  ASSERT_EQ(ladder.level(), AdmissionLevel::kPremiumOnly);

  // Pressure between exit and enter thresholds holds the rung (hysteresis).
  EXPECT_EQ(ladder.update({0.60, 0.10, 0, false}),
            AdmissionLevel::kPremiumOnly);

  // Clearing the exit threshold steps down exactly one rung per tick,
  // even though the pressure alone would allow admit-all.
  EXPECT_EQ(ladder.update({0.10, 0.10, 0, false}),
            AdmissionLevel::kShedOrdinary);
  EXPECT_EQ(ladder.update({0.10, 0.10, 0, false}), AdmissionLevel::kAdmitAll);
}

TEST(AdmissionControllerTest, StalePlanAndOpenBreakerDemandShedding) {
  AdmissionController ladder(ladder_config());
  // Staleness within tolerance: no reaction.
  EXPECT_EQ(ladder.update({0.1, 0.1, 4, false}), AdmissionLevel::kAdmitAll);
  // One past tolerance: the plan is unreliable, shed the best-effort class.
  EXPECT_EQ(ladder.update({0.1, 0.1, 5, false}),
            AdmissionLevel::kShedOrdinary);

  AdmissionController ladder2(ladder_config());
  EXPECT_EQ(ladder2.update({0.1, 0.1, 0, true}),
            AdmissionLevel::kShedOrdinary);
  // Broken re-plan path AND heavy ordinary pressure: standby rung.
  EXPECT_EQ(ladder2.update({0.1, 0.96, 0, true}),
            AdmissionLevel::kPremiumOnly);
}

TEST(AdmissionControllerTest, PinnedControllerIgnoresPressure) {
  AdmissionController ladder(ladder_config(), /*pin_premium_only=*/true);
  EXPECT_EQ(ladder.level(), AdmissionLevel::kPremiumOnly);
  EXPECT_EQ(ladder.update({0.0, 0.0, 0, false}),
            AdmissionLevel::kPremiumOnly);
  ladder.restore(AdmissionLevel::kAdmitAll);  // restore cannot unpin either
  EXPECT_EQ(ladder.level(), AdmissionLevel::kPremiumOnly);
}

TEST(AdmissionControllerTest, InvertedHysteresisIsRejected) {
  AdmissionConfig bad = ladder_config();
  bad.shed_exit_fill = bad.shed_enter_fill;
  EXPECT_THROW(AdmissionController{bad}, std::invalid_argument);
}

BreakerConfig breaker_config() {
  BreakerConfig c;
  c.trip_after = 3;
  c.cooldown_ticks = 2;
  c.cooldown_multiplier = 2.0;
  c.cooldown_max_ticks = 5;
  return c;
}

TEST(CircuitBreakerTest, TripsAfterConsecutiveDegradedReplansOnly) {
  CircuitBreaker breaker(breaker_config());
  breaker.on_replan(true);
  breaker.on_replan(true);
  // A clean re-plan resets the consecutive counter.
  breaker.on_replan(false);
  breaker.on_replan(true);
  breaker.on_replan(true);
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  EXPECT_TRUE(breaker.allows_replan());

  EXPECT_TRUE(breaker.on_replan(true));  // third consecutive: trip
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  EXPECT_FALSE(breaker.allows_replan());
  EXPECT_EQ(breaker.trips(), 1u);
}

TEST(CircuitBreakerTest, ExponentialHalfOpenProbingThenCleanClose) {
  CircuitBreaker breaker(breaker_config());
  for (int i = 0; i < 3; ++i) breaker.on_replan(true);
  ASSERT_EQ(breaker.state(), BreakerState::kOpen);

  // First cooldown is 2 ticks, then exactly one probe is allowed.
  EXPECT_FALSE(breaker.on_tick());
  EXPECT_TRUE(breaker.on_tick());
  EXPECT_EQ(breaker.state(), BreakerState::kHalfOpen);
  EXPECT_TRUE(breaker.allows_replan());

  // Failed probe: re-open for 2 * 2 = 4 ticks.
  EXPECT_TRUE(breaker.on_replan(true));
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  EXPECT_EQ(breaker.trips(), 2u);
  for (int i = 0; i < 3; ++i) EXPECT_FALSE(breaker.on_tick());
  EXPECT_TRUE(breaker.on_tick());
  ASSERT_EQ(breaker.state(), BreakerState::kHalfOpen);

  // Another failed probe: 4 * 2 = 8 caps at cooldown_max_ticks = 5.
  breaker.on_replan(true);
  EXPECT_EQ(breaker.snapshot().current_cooldown_ticks, 5u);
  for (int i = 0; i < 4; ++i) EXPECT_FALSE(breaker.on_tick());
  EXPECT_TRUE(breaker.on_tick());

  // A clean probe closes the breaker and forgets the escalated cooldown.
  EXPECT_TRUE(breaker.on_replan(false));
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  EXPECT_EQ(breaker.snapshot().current_cooldown_ticks,
            breaker_config().cooldown_ticks);
  EXPECT_EQ(breaker.trips(), 3u);
}

TEST(CircuitBreakerTest, SnapshotRestoreRoundTripsMidCooldown) {
  CircuitBreaker breaker(breaker_config());
  for (int i = 0; i < 3; ++i) breaker.on_replan(true);
  breaker.on_tick();  // one tick into the first cooldown
  const CircuitBreaker::State snap = breaker.snapshot();

  CircuitBreaker resumed(breaker_config());
  resumed.restore(snap);
  EXPECT_EQ(resumed.state(), BreakerState::kOpen);
  EXPECT_EQ(resumed.trips(), 1u);
  // The restored breaker finishes the same cooldown on the same tick.
  EXPECT_TRUE(resumed.on_tick());
  EXPECT_EQ(resumed.state(), BreakerState::kHalfOpen);
}

TEST(CircuitBreakerTest, DegenerateConfigsAreRejected) {
  BreakerConfig bad = breaker_config();
  bad.trip_after = 0;
  EXPECT_THROW(CircuitBreaker{bad}, std::invalid_argument);
  bad = breaker_config();
  bad.cooldown_ticks = 0;
  EXPECT_THROW(CircuitBreaker{bad}, std::invalid_argument);
  bad = breaker_config();
  bad.cooldown_multiplier = 0.5;
  EXPECT_THROW(CircuitBreaker{bad}, std::invalid_argument);
}

TEST(HealthClassifyTest, WorstActiveConditionWins) {
  using A = AdmissionLevel;
  using B = BreakerState;
  EXPECT_EQ(classify_health(A::kAdmitAll, B::kClosed, false),
            ServeHealth::kOk);
  EXPECT_EQ(classify_health(A::kAdmitAll, B::kClosed, true),
            ServeHealth::kDegraded);
  EXPECT_EQ(classify_health(A::kShedOrdinary, B::kClosed, true),
            ServeHealth::kShedding);
  EXPECT_EQ(classify_health(A::kShedOrdinary, B::kOpen, false),
            ServeHealth::kBreakerOpen);
  EXPECT_EQ(classify_health(A::kShedOrdinary, B::kHalfOpen, false),
            ServeHealth::kBreakerOpen);
  EXPECT_EQ(classify_health(A::kPremiumOnly, B::kOpen, true),
            ServeHealth::kStandby);
}

TEST(HealthTrackerTest, RecordsTransitionsAndBoundsHistory) {
  HealthTracker tracker;
  EXPECT_FALSE(tracker.observe(ServeHealth::kOk, 0));  // no change, no entry
  EXPECT_TRUE(tracker.observe(ServeHealth::kShedding, 1));
  EXPECT_TRUE(tracker.observe(ServeHealth::kOk, 2));
  EXPECT_EQ(tracker.transitions_total(), 2u);
  ASSERT_EQ(tracker.history().size(), 2u);
  EXPECT_EQ(tracker.history()[0].from, ServeHealth::kOk);
  EXPECT_EQ(tracker.history()[0].to, ServeHealth::kShedding);

  // Flapping far past the bound: the newest kMaxHistory survive, evicted
  // ones stay counted (the journal must not grow with uptime).
  for (std::size_t t = 3; t < 3 + 2 * HealthTracker::kMaxHistory; ++t)
    tracker.observe(t % 2 ? ServeHealth::kDegraded : ServeHealth::kOk, t);
  EXPECT_EQ(tracker.history().size(), HealthTracker::kMaxHistory);
  EXPECT_EQ(tracker.transitions_total(), 2u + 2 * HealthTracker::kMaxHistory);
  EXPECT_EQ(tracker.history().back().tick,
            3 + 2 * HealthTracker::kMaxHistory - 1);
}

TEST(HealthTrackerTest, EncodeDecodeRoundTripsBitIdentically) {
  HealthTracker tracker;
  tracker.observe(ServeHealth::kShedding, 7);
  tracker.observe(ServeHealth::kBreakerOpen, 9);
  tracker.observe(ServeHealth::kOk, 40);

  const HealthTracker back = HealthTracker::decode(
      tracker.current(), tracker.transitions_total(),
      tracker.encode_history());
  EXPECT_EQ(back.current(), tracker.current());
  EXPECT_EQ(back.transitions_total(), tracker.transitions_total());
  ASSERT_EQ(back.history().size(), tracker.history().size());
  for (std::size_t i = 0; i < back.history().size(); ++i) {
    EXPECT_EQ(back.history()[i].tick, tracker.history()[i].tick);
    EXPECT_EQ(back.history()[i].from, tracker.history()[i].from);
    EXPECT_EQ(back.history()[i].to, tracker.history()[i].to);
  }
  // And the re-encoding is byte-identical (journal value stability).
  EXPECT_EQ(back.encode_history(), tracker.encode_history());
}

TEST(HealthTrackerTest, DecodeRefusesMalformedEncodings) {
  EXPECT_THROW(HealthTracker::decode(ServeHealth::kOk, 1, "not-a-token"),
               std::runtime_error);
  EXPECT_THROW(HealthTracker::decode(ServeHealth::kOk, 1, "5:0"),
               std::runtime_error);
  EXPECT_THROW(HealthTracker::decode(ServeHealth::kOk, 1, "5:0:9"),
               std::runtime_error);  // 9 is no ServeHealth value
  // An empty history is a valid (freshly started) tracker.
  EXPECT_EQ(HealthTracker::decode(ServeHealth::kOk, 0, "").history().size(),
            0u);
}

}  // namespace
}  // namespace billcap::serve
