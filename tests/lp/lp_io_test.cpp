#include "lp/lp_io.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "lp/milp.hpp"
#include "lp/simplex.hpp"
#include "util/rng.hpp"

namespace billcap::lp {
namespace {

Problem sample_problem() {
  Problem p;
  p.set_sense(Sense::kMaximize);
  const int x = p.add_variable("x", 0.0, 4.0, 3.0);
  const int y = p.add_variable("y", -2.0, kInfinity, 5.0);
  const int z = p.add_binary("z", -1.0);
  const int n = p.add_variable("n", 0.0, 7.0, 0.5, /*is_integer=*/true);
  p.add_constraint("c1", {{x, 1.0}, {y, 2.0}}, Relation::kLessEqual, 14.0);
  p.add_constraint("c2", {{y, -1.0}, {z, 4.0}}, Relation::kGreaterEqual, -3.0);
  p.add_constraint("c3", {{x, 1.0}, {n, 1.0}}, Relation::kEqual, 5.0);
  return p;
}

TEST(LpIoTest, WriterEmitsAllSections) {
  const std::string text = write_lp_format(sample_problem());
  EXPECT_NE(text.find("Maximize"), std::string::npos);
  EXPECT_NE(text.find("Subject To"), std::string::npos);
  EXPECT_NE(text.find("Bounds"), std::string::npos);
  EXPECT_NE(text.find("Generals"), std::string::npos);
  EXPECT_NE(text.find("Binaries"), std::string::npos);
  EXPECT_NE(text.find("End"), std::string::npos);
}

TEST(LpIoTest, RoundTripPreservesOptimum) {
  const Problem original = sample_problem();
  const Problem parsed = parse_lp_format(write_lp_format(original));
  const Solution a = solve_milp(original);
  const Solution b = solve_milp(parsed);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NEAR(a.objective, b.objective, 1e-7);
}

TEST(LpIoTest, RoundTripPreservesStructure) {
  const Problem original = sample_problem();
  const Problem parsed = parse_lp_format(write_lp_format(original));
  EXPECT_EQ(parsed.num_variables(), original.num_variables());
  EXPECT_EQ(parsed.num_constraints(), original.num_constraints());
  EXPECT_EQ(parsed.sense(), original.sense());
  int integers = 0;
  for (int j = 0; j < parsed.num_variables(); ++j)
    if (parsed.variable(j).is_integer) ++integers;
  EXPECT_EQ(integers, 2);
}

TEST(LpIoTest, ParsesHandWrittenModel) {
  const char* text = R"(
Minimize
 obj: 2 x + 3 y
Subject To
 demand: x + y >= 10
 xcap: x <= 6
Bounds
 0 <= x <= 6
 y free
End
)";
  const Problem p = parse_lp_format(text);
  const Solution s = solve_lp(p);
  ASSERT_TRUE(s.ok());
  // All mass on x (cheaper) up to 6, remainder on y: 2*6 + 3*4 = 24.
  EXPECT_NEAR(s.objective, 24.0, 1e-7);
}

TEST(LpIoTest, ParsesNegativeRhsAndCoefficients) {
  const char* text = R"(
Minimize
 obj: x - 2 y
Subject To
 c: -x + y <= -1
Bounds
 0 <= x <= 5
 0 <= y <= 5
End
)";
  const Problem p = parse_lp_format(text);
  EXPECT_EQ(p.num_constraints(), 1);
  EXPECT_DOUBLE_EQ(p.constraint(0).rhs, -1.0);
  const Solution s = solve_lp(p);
  ASSERT_TRUE(s.ok());
}

TEST(LpIoTest, SanitizesAwkwardNames) {
  Problem p;
  p.add_variable("site0.cost seg[2]", 0, 1, 1.0);
  p.add_variable("2bad", 0, 1, 1.0);
  const std::string text = write_lp_format(p);
  const Problem parsed = parse_lp_format(text);
  EXPECT_EQ(parsed.num_variables(), 2);
}

TEST(LpIoTest, CommentsAreIgnored)  {
  const char* text = R"(\* a comment *\
Minimize
 obj: x
Subject To
 c: x >= 2
End
)";
  const Problem p = parse_lp_format(text);
  const Solution s = solve_lp(p);
  ASSERT_TRUE(s.ok());
  EXPECT_NEAR(s.objective, 2.0, 1e-9);
}

TEST(LpIoTest, RejectsMalformedInput) {
  EXPECT_THROW(parse_lp_format("Garbage"), std::runtime_error);
  EXPECT_THROW(parse_lp_format("Minimize\n obj: x\nSubject To\n c: x ?? 3\nEnd\n"),
               std::runtime_error);
}

TEST(LpIoTest, RandomRoundTripProperty) {
  util::Rng rng(88);
  for (int trial = 0; trial < 30; ++trial) {
    Problem p;
    p.set_sense(rng.bernoulli(0.5) ? Sense::kMinimize : Sense::kMaximize);
    const int n = 2 + static_cast<int>(rng.below(4));
    for (int j = 0; j < n; ++j) {
      const double lo = rng.uniform(0.0, 1.0);
      p.add_variable("x" + std::to_string(j), lo, lo + rng.uniform(0.5, 4.0),
                     rng.uniform(-3.0, 3.0), rng.bernoulli(0.3));
    }
    const int m = 1 + static_cast<int>(rng.below(3));
    for (int i = 0; i < m; ++i) {
      std::vector<Term> terms;
      for (int j = 0; j < n; ++j)
        if (rng.bernoulli(0.8)) terms.push_back({j, rng.uniform(-2.0, 2.0)});
      if (terms.empty()) terms.push_back({0, 1.0});
      p.add_constraint("r" + std::to_string(i), std::move(terms),
                       rng.bernoulli(0.5) ? Relation::kLessEqual
                                          : Relation::kGreaterEqual,
                       rng.uniform(-5.0, 10.0));
    }
    const Problem parsed = parse_lp_format(write_lp_format(p));
    const Solution a = solve_milp(p);
    const Solution b = solve_milp(parsed);
    ASSERT_EQ(a.status, b.status) << "trial " << trial;
    if (a.ok()) {
      EXPECT_NEAR(a.objective, b.objective,
                  1e-6 * std::max(1.0, std::abs(a.objective)))
          << "trial " << trial;
    }
  }
}

}  // namespace
}  // namespace billcap::lp
