#include "lp/piecewise.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "lp/milp.hpp"
#include "util/rng.hpp"

namespace billcap::lp {
namespace {

/// A step-price curve shaped like the paper's Policy 1 for Data Center 1:
/// prices (10.00, 13.90, 15.00, 22.00, 24.00) $/MWh over load thresholds.
PiecewiseAffine paper_like_policy() {
  PiecewiseAffine pw;
  pw.breaks = {0.0, 200.0, 237.3, 266.7, 300.0, 400.0};
  pw.slopes = {10.0, 13.9, 15.0, 22.0, 24.0};
  pw.intercepts = {0.0, 0.0, 0.0, 0.0, 0.0};
  return pw;
}

TEST(PiecewiseAffineTest, ValidateAcceptsWellFormed) {
  EXPECT_NO_THROW(paper_like_policy().validate());
}

TEST(PiecewiseAffineTest, ValidateRejectsBadShapes) {
  PiecewiseAffine pw = paper_like_policy();
  pw.slopes.pop_back();
  EXPECT_THROW(pw.validate(), std::invalid_argument);

  pw = paper_like_policy();
  pw.breaks[0] = 1.0;
  EXPECT_THROW(pw.validate(), std::invalid_argument);

  pw = paper_like_policy();
  pw.breaks[2] = pw.breaks[1];
  EXPECT_THROW(pw.validate(), std::invalid_argument);

  pw = paper_like_policy();
  pw.intercepts.push_back(0.0);
  EXPECT_THROW(pw.validate(), std::invalid_argument);
}

TEST(PiecewiseAffineTest, SegmentLookupUsesRightContinuousConvention) {
  const PiecewiseAffine pw = paper_like_policy();
  EXPECT_EQ(pw.segment_of(0.0), 0u);
  EXPECT_EQ(pw.segment_of(199.99), 0u);
  EXPECT_EQ(pw.segment_of(200.0), 1u);  // price steps up AT the threshold
  EXPECT_EQ(pw.segment_of(237.3), 2u);
  EXPECT_EQ(pw.segment_of(399.0), 4u);
  EXPECT_EQ(pw.segment_of(400.0), 4u);  // top cap belongs to last segment
}

TEST(PiecewiseAffineTest, ValueMatchesStepPriceSemantics) {
  const PiecewiseAffine pw = paper_like_policy();
  EXPECT_DOUBLE_EQ(pw.value(100.0), 10.0 * 100.0);
  EXPECT_DOUBLE_EQ(pw.value(210.0), 13.9 * 210.0);
  EXPECT_DOUBLE_EQ(pw.value(350.0), 24.0 * 350.0);
}

TEST(PiecewiseAffineTest, ValueClampsOutOfRange) {
  const PiecewiseAffine pw = paper_like_policy();
  EXPECT_DOUBLE_EQ(pw.value(-5.0), 0.0);
  EXPECT_DOUBLE_EQ(pw.value(1e9), 24.0 * 400.0);
}

TEST(PiecewiseEncodingTest, FixedQuantityReproducesCost) {
  // Pin x at assorted values (away from the ambiguous breakpoints, covered
  // by ThresholdChoosesCheaperSide) and check the MILP objective equals
  // value(x).
  const PiecewiseAffine pw = paper_like_policy();
  for (double target : {0.0, 50.0, 199.0, 236.0, 250.0, 299.0, 399.0}) {
    Problem p;
    const PiecewiseVars vars = add_piecewise_cost(p, pw, "cost");
    p.add_constraint("pin", {{vars.x, 1.0}}, Relation::kEqual, target);
    const Solution s = solve_milp(p);
    ASSERT_TRUE(s.ok()) << "target " << target;
    EXPECT_NEAR(s.objective, pw.value(target), 1e-5) << "target " << target;
  }
}

TEST(PiecewiseEncodingTest, ThresholdChoosesCheaperSide) {
  // Exactly at a breakpoint the MILP may sit on either segment; the cheaper
  // one (the left, lower price) wins under minimization, which matches how
  // an optimizer would operate the data center at the threshold.
  const PiecewiseAffine pw = paper_like_policy();
  Problem p;
  const PiecewiseVars vars = add_piecewise_cost(p, pw, "cost");
  p.add_constraint("pin", {{vars.x, 1.0}}, Relation::kEqual, 200.0);
  const Solution s = solve_milp(p);
  ASSERT_TRUE(s.ok());
  EXPECT_NEAR(s.objective, 10.0 * 200.0, 1e-5);
}

TEST(PiecewiseEncodingTest, ExactlyOneSegmentSelected) {
  const PiecewiseAffine pw = paper_like_policy();
  Problem p;
  const PiecewiseVars vars = add_piecewise_cost(p, pw, "cost");
  p.add_constraint("pin", {{vars.x, 1.0}}, Relation::kEqual, 250.0);
  const Solution s = solve_milp(p);
  ASSERT_TRUE(s.ok());
  double selected = 0.0;
  for (int z : vars.selectors) selected += s.x[static_cast<std::size_t>(z)];
  EXPECT_NEAR(selected, 1.0, 1e-9);
}

TEST(PiecewiseEncodingTest, ScaleMultipliesObjective) {
  const PiecewiseAffine pw = paper_like_policy();
  Problem p;
  const PiecewiseVars vars = add_piecewise_cost(p, pw, "cost", 2.5);
  p.add_constraint("pin", {{vars.x, 1.0}}, Relation::kEqual, 100.0);
  const Solution s = solve_milp(p);
  ASSERT_TRUE(s.ok());
  EXPECT_NEAR(s.objective, 2.5 * pw.value(100.0), 1e-6);
}

TEST(PiecewiseEncodingTest, AffineSegmentsWithIntercepts) {
  PiecewiseAffine pw;
  pw.breaks = {0.0, 10.0, 20.0};
  pw.slopes = {1.0, 0.5};
  pw.intercepts = {0.0, 5.0};
  Problem p;
  const PiecewiseVars vars = add_piecewise_cost(p, pw, "aff");
  p.add_constraint("pin", {{vars.x, 1.0}}, Relation::kEqual, 15.0);
  const Solution s = solve_milp(p);
  ASSERT_TRUE(s.ok());
  EXPECT_NEAR(s.objective, 5.0 + 0.5 * 15.0, 1e-6);
}

TEST(PiecewiseEncodingTest, MinimizerExploitsPriceDropRegion) {
  // With a demand floor spanning a price step, the minimizer should stop
  // just below the step rather than pay the higher price: the classic
  // "stay under the threshold" behaviour of the bill capper.
  const PiecewiseAffine pw = paper_like_policy();
  Problem p;
  const PiecewiseVars vars = add_piecewise_cost(p, pw, "cost");
  // x must be at least 150 but is otherwise free; minimum is at 150.
  p.add_constraint("floor", {{vars.x, 1.0}}, Relation::kGreaterEqual, 150.0);
  const Solution s = solve_milp(p);
  ASSERT_TRUE(s.ok());
  EXPECT_NEAR(s.x[static_cast<std::size_t>(vars.x)], 150.0, 1e-6);
}

TEST(PiecewiseEncodingTest, RandomizedAgainstDirectEvaluation) {
  util::Rng rng(4242);
  for (int trial = 0; trial < 40; ++trial) {
    // Random increasing step curve with 2-6 segments.
    const std::size_t m = 2 + rng.below(5);
    PiecewiseAffine pw;
    pw.breaks.push_back(0.0);
    double level = 0.0;
    for (std::size_t k = 0; k < m; ++k) {
      level += rng.uniform(5.0, 50.0);
      pw.breaks.push_back(level);
      pw.slopes.push_back(rng.uniform(1.0, 30.0));
      pw.intercepts.push_back(0.0);
    }
    const double target = rng.uniform(0.0, pw.breaks.back());

    Problem p;
    const PiecewiseVars vars = add_piecewise_cost(p, pw, "c");
    p.add_constraint("pin", {{vars.x, 1.0}}, Relation::kEqual, target);
    const Solution s = solve_milp(p);
    ASSERT_TRUE(s.ok()) << "trial " << trial;
    // The MILP may do better than value(target) only when `target` sits at
    // a breakpoint between differently-priced segments; away from
    // breakpoints it must match exactly. Either way, never worse than the
    // cheapest applicable segment, never better than the cheapest slope.
    const double direct = pw.value(target);
    EXPECT_LE(s.objective, direct + 1e-6) << "trial " << trial;
    const std::size_t k = pw.segment_of(target);
    const double left_price = (k > 0 && target == pw.breaks[k])
                                  ? pw.slopes[k - 1]
                                  : pw.slopes[k];
    const double best_possible = std::min(pw.slopes[k], left_price) * target;
    EXPECT_NEAR(s.objective, best_possible, 1e-5) << "trial " << trial;
  }
}

}  // namespace
}  // namespace billcap::lp
