// Property tests for ArenaSolver's basis handling and arena limits: a
// stale or structurally mismatched resident basis must be repaired or
// dropped cold — never crash, never return a silently suboptimal
// "optimal" — and a configured byte cap must surface as the typed
// SolveStatus::kArenaExhausted with no incumbent.

#include "lp/arena_solver.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <string>
#include <vector>

#include "lp/milp.hpp"

namespace billcap::lp {
namespace {

/// min x + 2y  s.t. x + y >= rhs, both binary-scaled integers optional.
Problem two_var_problem(double rhs, bool integers = false) {
  Problem p;
  const int x = p.add_variable("x", 0.0, 10.0, 1.0, integers);
  const int y = p.add_variable("y", 0.0, 10.0, 2.0, integers);
  p.add_constraint("cover", {{x, 1.0}, {y, 1.0}}, Relation::kGreaterEqual,
                   rhs);
  return p;
}

/// A structurally different shape: three variables, two rows, a binary.
Problem three_var_problem(double rhs) {
  Problem p;
  const int x = p.add_variable("x", 0.0, 5.0, 1.0);
  const int y = p.add_variable("y", 0.0, 5.0, 3.0);
  const int z = p.add_binary("z", 2.0);
  p.add_constraint("cover", {{x, 1.0}, {y, 1.0}, {z, 4.0}},
                   Relation::kGreaterEqual, rhs);
  p.add_constraint("mix", {{x, 1.0}, {y, -1.0}}, Relation::kLessEqual, 2.0);
  return p;
}

TEST(ArenaSolverTest, WarmSequenceMatchesColdOnRhsDrift) {
  ArenaSolver warm(ArenaConfig{.warm_across_solves = true});
  for (int k = 0; k < 12; ++k) {
    const double rhs = 1.0 + 0.7 * k;
    const Problem p = two_var_problem(rhs, /*integers=*/true);
    const Solution got = warm.solve(p);
    const Solution want = solve_milp_reference(p);
    ASSERT_EQ(got.status, want.status) << k;
    EXPECT_NEAR(got.objective, want.objective, 1e-9) << k;
  }
  EXPECT_GT(warm.stats().warm_solves, 0);
  EXPECT_GT(warm.stats().cold_solves, 0);  // the first solve is always cold
}

TEST(ArenaSolverTest, StructureChangeFallsBackColdNotWrong) {
  // Alternating shapes invalidate the resident basis every solve: the
  // signature check must force a cold rebuild each time, and every answer
  // must still match the reference.
  ArenaSolver warm(ArenaConfig{.warm_across_solves = true});
  for (int k = 0; k < 10; ++k) {
    const bool odd = (k % 2) != 0;
    const Problem p =
        odd ? three_var_problem(3.0 + k) : two_var_problem(2.0 + k);
    const Solution got = warm.solve(p);
    const Solution want = solve_milp_reference(p);
    ASSERT_EQ(got.status, want.status) << k;
    EXPECT_NEAR(got.objective, want.objective, 1e-9) << k;
  }
  // No two consecutive problems share a structure, so the warm root can
  // never fire.
  EXPECT_EQ(warm.stats().warm_solves, 0);
}

TEST(ArenaSolverTest, InvalidateForcesColdResolve) {
  ArenaSolver warm(ArenaConfig{.warm_across_solves = true});
  const Problem p = two_var_problem(4.0);
  const Solution first = warm.solve(p);
  warm.invalidate();
  const Solution second = warm.solve(p);
  EXPECT_EQ(first.status, SolveStatus::kOptimal);
  EXPECT_EQ(second.status, SolveStatus::kOptimal);
  EXPECT_DOUBLE_EQ(first.objective, second.objective);
  // Both solves took the cold path; the warm root never fired.
  EXPECT_EQ(warm.stats().warm_solves, 0);
  EXPECT_EQ(warm.stats().cold_solves, 2);
}

TEST(ArenaSolverTest, ArenaExhaustionIsTypedAndRecoverable) {
  // A cap far below any real tableau: the solve must refuse to allocate,
  // return the typed status, and leave no bogus incumbent behind.
  ArenaSolver tiny(ArenaConfig{.max_arena_bytes = 64});
  const Problem p = three_var_problem(4.0);
  const Solution s = tiny.solve(p);
  EXPECT_EQ(s.status, SolveStatus::kArenaExhausted);
  EXPECT_FALSE(s.has_incumbent());
  EXPECT_STREQ(to_string(s.status), "arena_exhausted");

  // The same solver keeps answering (typed, not crashed) on later calls,
  // and an uncapped solver solves the identical problem fine.
  EXPECT_EQ(tiny.solve(p).status, SolveStatus::kArenaExhausted);
  ArenaSolver roomy;
  EXPECT_EQ(roomy.solve(p).status, SolveStatus::kOptimal);
}

TEST(ArenaSolverTest, GenerousCapStillSolves) {
  // A cap big enough for the tableau must not trip: the cap bounds the
  // footprint, it does not tax successful solves.
  ArenaSolver capped(ArenaConfig{.max_arena_bytes = 1 << 20});
  const Problem p = three_var_problem(4.0);
  const Solution s = capped.solve(p);
  EXPECT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_LE(capped.arena_bytes(), static_cast<std::size_t>(1) << 20);
}

TEST(ArenaSolverTest, StatsCountersAccountForNodeWarmStarts) {
  // A MILP with enough branching to exercise the node-warm path: children
  // re-solved by dual simplex must show up in node_warm_solves.
  Problem p;
  std::vector<Term> knap;
  std::mt19937 rng(99);
  std::uniform_real_distribution<double> w(1.0, 5.0);
  for (int j = 0; j < 10; ++j) {
    const double weight = w(rng);
    p.add_binary("b" + std::to_string(j), -weight * 0.9);
    knap.push_back({j, weight});
  }
  p.add_constraint("cap", std::move(knap), Relation::kLessEqual, 12.0);
  ArenaSolver solver;
  const Solution s = solver.solve(p);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_GT(solver.stats().nodes_explored, 1);
  EXPECT_GT(solver.stats().node_warm_solves, 0);
  EXPECT_GT(solver.stats().dual_iterations, 0);
  // And it agrees with the reference.
  const Solution want = solve_milp_reference(p);
  EXPECT_NEAR(s.objective, want.objective, 1e-9);
}

TEST(ArenaSolverTest, WarmNeverSilentlySuboptimalUnderRandomDrift) {
  // Property sweep: one warm solver, 60 solves whose rhs and costs drift
  // randomly (occasionally into infeasibility). Every claimed optimum is
  // re-verified against a fresh reference solve; every infeasibility claim
  // must match the reference too.
  std::mt19937 rng(2026);
  std::uniform_real_distribution<double> rhs_draw(-2.0, 14.0);
  std::uniform_real_distribution<double> cost_draw(0.5, 3.0);
  ArenaSolver warm(ArenaConfig{.warm_across_solves = true});
  for (int k = 0; k < 60; ++k) {
    Problem p;
    const int x = p.add_variable("x", 0.0, 4.0, cost_draw(rng), true);
    const int y = p.add_variable("y", 0.0, 4.0, cost_draw(rng), true);
    const int z = p.add_variable("z", 0.0, 4.0, cost_draw(rng));
    p.add_constraint("cover", {{x, 1.0}, {y, 1.0}, {z, 1.0}},
                     Relation::kGreaterEqual, rhs_draw(rng));
    p.add_constraint("cap", {{x, 1.0}, {y, 2.0}}, Relation::kLessEqual, 9.0);
    const Solution got = warm.solve(p);
    const Solution want = solve_milp_reference(p);
    ASSERT_EQ(got.status, want.status) << "k=" << k;
    if (want.status == SolveStatus::kOptimal) {
      EXPECT_NEAR(got.objective, want.objective, 1e-9) << "k=" << k;
    }
  }
}

TEST(ArenaSolverTest, PresolveConfigAgreesWithDirectSolve) {
  ArenaSolver with(ArenaConfig{.use_presolve = true});
  ArenaSolver without;
  for (int k = 0; k < 10; ++k) {
    const Problem p = three_var_problem(1.0 + k);
    const Solution a = with.solve(p);
    const Solution b = without.solve(p);
    ASSERT_EQ(a.status, b.status) << k;
    if (a.status == SolveStatus::kOptimal) {
      EXPECT_NEAR(a.objective, b.objective, 1e-9) << k;
    }
  }
}

}  // namespace
}  // namespace billcap::lp
