#include "lp/milp.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/rng.hpp"

namespace billcap::lp {
namespace {

TEST(MilpTest, PureLpPassesThrough) {
  Problem p;
  p.set_sense(Sense::kMaximize);
  p.add_variable("x", 0, 4.5, 1.0);
  const Solution s = solve_milp(p);
  ASSERT_TRUE(s.ok());
  EXPECT_NEAR(s.objective, 4.5, 1e-8);
}

TEST(MilpTest, SimpleIntegerRounding) {
  // max x, x integer, x <= 4.5  ->  x = 4.
  Problem p;
  p.set_sense(Sense::kMaximize);
  p.add_variable("x", 0, kInfinity, 1.0, /*is_integer=*/true);
  p.add_constraint("cap", {{0, 1.0}}, Relation::kLessEqual, 4.5);
  const Solution s = solve_milp(p);
  ASSERT_TRUE(s.ok());
  EXPECT_DOUBLE_EQ(s.x[0], 4.0);
  EXPECT_NEAR(s.objective, 4.0, 1e-9);
}

TEST(MilpTest, KnapsackAgainstDp) {
  // Classic 0/1 knapsack solved both ways.
  const std::vector<double> values = {60, 100, 120, 75, 90, 40};
  const std::vector<int> weights = {10, 20, 30, 15, 25, 5};
  const int capacity = 60;

  // DP ground truth.
  std::vector<double> dp(static_cast<std::size_t>(capacity) + 1, 0.0);
  for (std::size_t i = 0; i < values.size(); ++i) {
    for (int w = capacity; w >= weights[i]; --w)
      dp[static_cast<std::size_t>(w)] =
          std::max(dp[static_cast<std::size_t>(w)],
                   dp[static_cast<std::size_t>(w - weights[i])] + values[i]);
  }

  Problem p;
  p.set_sense(Sense::kMaximize);
  std::vector<Term> weight_terms;
  for (std::size_t i = 0; i < values.size(); ++i) {
    const int z = p.add_binary("z" + std::to_string(i), values[i]);
    weight_terms.push_back({z, static_cast<double>(weights[i])});
  }
  p.add_constraint("capacity", std::move(weight_terms), Relation::kLessEqual,
                   capacity);
  const Solution s = solve_milp(p);
  ASSERT_TRUE(s.ok());
  EXPECT_NEAR(s.objective, dp[static_cast<std::size_t>(capacity)], 1e-7);
}

TEST(MilpTest, InfeasibleIntegerProblem) {
  // 2x = 3 with x integer has no solution.
  Problem p;
  p.add_variable("x", 0, 10, 1.0, /*is_integer=*/true);
  p.add_constraint("eq", {{0, 2.0}}, Relation::kEqual, 3.0);
  EXPECT_EQ(solve_milp(p).status, SolveStatus::kInfeasible);
}

TEST(MilpTest, MixedIntegerContinuous) {
  // max 2n + x  s.t. n + x <= 5.3, n integer, x <= 0.8.
  // n = 5, x = 0.3 -> 10.3  beats n = 4, x = 0.8 -> 8.8.
  Problem p;
  p.set_sense(Sense::kMaximize);
  const int n = p.add_variable("n", 0, kInfinity, 2.0, true);
  const int x = p.add_variable("x", 0, 0.8, 1.0);
  p.add_constraint("cap", {{n, 1.0}, {x, 1.0}}, Relation::kLessEqual, 5.3);
  const Solution s = solve_milp(p);
  ASSERT_TRUE(s.ok());
  EXPECT_DOUBLE_EQ(s.x[static_cast<std::size_t>(n)], 5.0);
  EXPECT_NEAR(s.x[static_cast<std::size_t>(x)], 0.3, 1e-8);
  EXPECT_NEAR(s.objective, 10.3, 1e-8);
}

TEST(MilpTest, BinaryEnumerationGroundTruth) {
  // Random binary problems small enough for exhaustive enumeration.
  util::Rng rng(2024);
  for (int trial = 0; trial < 60; ++trial) {
    constexpr int kBits = 8;
    Problem p;
    p.set_sense(Sense::kMaximize);
    std::vector<double> costs(kBits);
    std::vector<double> weights(kBits);
    for (int j = 0; j < kBits; ++j) {
      costs[static_cast<std::size_t>(j)] = rng.uniform(-3.0, 8.0);
      weights[static_cast<std::size_t>(j)] = rng.uniform(0.5, 4.0);
      p.add_binary("z" + std::to_string(j), costs[static_cast<std::size_t>(j)]);
    }
    std::vector<Term> terms;
    for (int j = 0; j < kBits; ++j)
      terms.push_back({j, weights[static_cast<std::size_t>(j)]});
    const double cap = rng.uniform(3.0, 14.0);
    p.add_constraint("cap", std::move(terms), Relation::kLessEqual, cap);

    double best = 0.0;  // all-zeros is always feasible (weights > 0)
    for (unsigned mask = 0; mask < (1u << kBits); ++mask) {
      double value = 0.0;
      double weight = 0.0;
      for (int j = 0; j < kBits; ++j) {
        if (mask & (1u << j)) {
          value += costs[static_cast<std::size_t>(j)];
          weight += weights[static_cast<std::size_t>(j)];
        }
      }
      if (weight <= cap) best = std::max(best, value);
    }

    const Solution s = solve_milp(p);
    ASSERT_TRUE(s.ok()) << "trial " << trial;
    EXPECT_NEAR(s.objective, best, 1e-6) << "trial " << trial;
    EXPECT_TRUE(p.is_feasible(s.x, 1e-6)) << "trial " << trial;
  }
}

TEST(MilpTest, GeneralIntegerEnumerationGroundTruth) {
  // Random 3-variable integer programs vs exhaustive grid search.
  util::Rng rng(777);
  for (int trial = 0; trial < 40; ++trial) {
    Problem p;
    p.set_sense(Sense::kMinimize);
    const int ub = 6;
    std::vector<double> costs(3);
    for (int j = 0; j < 3; ++j) {
      costs[static_cast<std::size_t>(j)] = rng.uniform(-4.0, 4.0);
      p.add_variable("n" + std::to_string(j), 0, ub,
                     costs[static_cast<std::size_t>(j)], true);
    }
    // One coupling row keeps it interesting.
    const double a0 = rng.uniform(0.5, 2.0);
    const double a1 = rng.uniform(0.5, 2.0);
    const double a2 = rng.uniform(0.5, 2.0);
    const double rhs = rng.uniform(4.0, 16.0);
    p.add_constraint("row", {{0, a0}, {1, a1}, {2, a2}},
                     Relation::kGreaterEqual, rhs);

    double best = kInfinity;
    for (int i = 0; i <= ub; ++i)
      for (int j = 0; j <= ub; ++j)
        for (int k = 0; k <= ub; ++k) {
          if (a0 * i + a1 * j + a2 * k < rhs) continue;
          best = std::min(best, costs[0] * i + costs[1] * j + costs[2] * k);
        }

    const Solution s = solve_milp(p);
    if (best == kInfinity) {
      EXPECT_EQ(s.status, SolveStatus::kInfeasible) << "trial " << trial;
    } else {
      ASSERT_TRUE(s.ok()) << "trial " << trial;
      EXPECT_NEAR(s.objective, best, 1e-6) << "trial " << trial;
    }
  }
}

TEST(MilpTest, NodeLimitReported) {
  Problem p;
  p.set_sense(Sense::kMaximize);
  for (int j = 0; j < 10; ++j) p.add_binary("z" + std::to_string(j), 1.0);
  std::vector<Term> terms;
  for (int j = 0; j < 10; ++j) terms.push_back({j, 1.0});
  p.add_constraint("cap", std::move(terms), Relation::kLessEqual, 4.5);
  MilpOptions opts;
  opts.max_nodes = 1;
  const Solution s = solve_milp(p, opts);
  EXPECT_EQ(s.status, SolveStatus::kNodeLimit);
}

TEST(MilpTest, TimeLimitReported) {
  // A branching-heavy knapsack with an already-expired wall clock: the
  // search must stop with kTimeLimit, and whatever incumbent it managed to
  // find must be feasible.
  Problem p;
  p.set_sense(Sense::kMaximize);
  util::Rng rng(99);
  std::vector<Term> terms;
  for (int j = 0; j < 24; ++j) {
    p.add_binary("z" + std::to_string(j), rng.uniform(1.0, 9.0));
    terms.push_back({j, rng.uniform(0.5, 4.0)});
  }
  p.add_constraint("cap", std::move(terms), Relation::kLessEqual, 11.3);
  MilpOptions opts;
  opts.time_limit_ms = 1e-9;  // expires at the first deadline check
  const Solution s = solve_milp(p, opts);
  EXPECT_EQ(s.status, SolveStatus::kTimeLimit);
  if (!s.x.empty()) {
    EXPECT_TRUE(p.is_feasible(s.x, 1e-6));
  }
}

TEST(MilpTest, GenerousTimeLimitStillOptimal) {
  // Same structure, a deadline the search cannot plausibly hit: the answer
  // must be the proven optimum, identical to the unlimited solve.
  Problem p;
  p.set_sense(Sense::kMaximize);
  for (int j = 0; j < 10; ++j) p.add_binary("z" + std::to_string(j), 1.0);
  std::vector<Term> terms;
  for (int j = 0; j < 10; ++j) terms.push_back({j, 1.0});
  p.add_constraint("cap", std::move(terms), Relation::kLessEqual, 4.5);
  MilpOptions opts;
  opts.time_limit_ms = 60'000.0;
  const Solution limited = solve_milp(p, opts);
  const Solution free_run = solve_milp(p);
  ASSERT_TRUE(limited.ok());
  ASSERT_TRUE(free_run.ok());
  EXPECT_DOUBLE_EQ(limited.objective, free_run.objective);
}

TEST(MilpTest, TimeLimitZeroDisablesDeadline) {
  Problem p;
  p.set_sense(Sense::kMaximize);
  p.add_variable("x", 0, kInfinity, 1.0, /*is_integer=*/true);
  p.add_constraint("cap", {{0, 1.0}}, Relation::kLessEqual, 4.5);
  MilpOptions opts;
  opts.time_limit_ms = 0.0;
  const Solution s = solve_milp(p, opts);
  ASSERT_TRUE(s.ok());
  EXPECT_DOUBLE_EQ(s.x[0], 4.0);
}

TEST(MilpTest, SnapsIntegersExactly) {
  Problem p;
  p.set_sense(Sense::kMaximize);
  p.add_variable("n", 0, 100, 1.0, true);
  p.add_constraint("cap", {{0, 3.0}}, Relation::kLessEqual, 10.0);
  const Solution s = solve_milp(p);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s.x[0], std::round(s.x[0]));
  EXPECT_DOUBLE_EQ(s.x[0], 3.0);
}

TEST(MilpTest, BestBoundMatchesObjectiveOnCompletion) {
  Problem p;
  p.set_sense(Sense::kMaximize);
  p.add_binary("a", 3.0);
  p.add_binary("b", 5.0);
  p.add_constraint("cap", {{0, 2.0}, {1, 4.0}}, Relation::kLessEqual, 5.0);
  const Solution s = solve_milp(p);
  ASSERT_TRUE(s.ok());
  EXPECT_NEAR(s.best_bound, s.objective, 1e-9);
  EXPECT_NEAR(s.objective, 5.0, 1e-9);  // b alone beats a alone
}

TEST(MilpTest, ReportsSearchEffort) {
  Problem p;
  p.set_sense(Sense::kMaximize);
  for (int j = 0; j < 6; ++j)
    p.add_binary("z" + std::to_string(j), 1.0 + 0.1 * j);
  std::vector<Term> terms;
  for (int j = 0; j < 6; ++j) terms.push_back({j, 1.0});
  p.add_constraint("cap", std::move(terms), Relation::kLessEqual, 2.5);
  const Solution s = solve_milp(p);
  ASSERT_TRUE(s.ok());
  EXPECT_GE(s.nodes, 1);
  EXPECT_GE(s.iterations, 1);
}

TEST(MilpTest, EqualityWithBinariesSelectsExactlyOne) {
  // The segment-selection pattern used by the piecewise encoding.
  Problem p;
  p.set_sense(Sense::kMinimize);
  const int z0 = p.add_binary("z0", 5.0);
  const int z1 = p.add_binary("z1", 3.0);
  const int z2 = p.add_binary("z2", 7.0);
  p.add_constraint("one", {{z0, 1.0}, {z1, 1.0}, {z2, 1.0}}, Relation::kEqual,
                   1.0);
  const Solution s = solve_milp(p);
  ASSERT_TRUE(s.ok());
  EXPECT_DOUBLE_EQ(s.x[static_cast<std::size_t>(z1)], 1.0);
  EXPECT_NEAR(s.objective, 3.0, 1e-9);
}

}  // namespace
}  // namespace billcap::lp
