#include "lp/problem.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace billcap::lp {
namespace {

TEST(ProblemTest, AddVariableAssignsSequentialIndices) {
  Problem p;
  EXPECT_EQ(p.add_variable("a", 0, 1), 0);
  EXPECT_EQ(p.add_variable("b", 0, 1), 1);
  EXPECT_EQ(p.num_variables(), 2);
}

TEST(ProblemTest, AddVariableRejectsEmptyInterval) {
  Problem p;
  EXPECT_THROW(p.add_variable("bad", 2.0, 1.0), std::invalid_argument);
}

TEST(ProblemTest, BinaryIsIntegerWithUnitBounds) {
  Problem p;
  const int z = p.add_binary("z");
  EXPECT_TRUE(p.variable(z).is_integer);
  EXPECT_EQ(p.variable(z).lower, 0.0);
  EXPECT_EQ(p.variable(z).upper, 1.0);
  EXPECT_TRUE(p.has_integers());
}

TEST(ProblemTest, HasIntegersFalseForPureLp) {
  Problem p;
  p.add_variable("x", 0, 10);
  EXPECT_FALSE(p.has_integers());
}

TEST(ProblemTest, ConstraintRejectsBadVariableIndex) {
  Problem p;
  p.add_variable("x", 0, 1);
  EXPECT_THROW(p.add_constraint("c", {{5, 1.0}}, Relation::kLessEqual, 1.0),
               std::out_of_range);
}

TEST(ProblemTest, ObjectiveEvaluation) {
  Problem p;
  p.add_variable("x", 0, 10, 2.0);
  p.add_variable("y", 0, 10, -1.0);
  p.set_objective_constant(5.0);
  const std::vector<double> x = {3.0, 4.0};
  EXPECT_DOUBLE_EQ(p.objective_value(x), 2.0 * 3 - 4 + 5);
}

TEST(ProblemTest, AddObjectiveAccumulates) {
  Problem p;
  const int x = p.add_variable("x", 0, 1, 1.0);
  p.add_objective(x, 2.5);
  EXPECT_DOUBLE_EQ(p.variable(x).objective, 3.5);
}

TEST(ProblemTest, RowActivity) {
  Problem p;
  p.add_variable("x", 0, 10);
  p.add_variable("y", 0, 10);
  p.add_constraint("c", {{0, 1.0}, {1, 2.0}}, Relation::kLessEqual, 100.0);
  const std::vector<double> x = {3.0, 4.0};
  EXPECT_DOUBLE_EQ(p.row_activity(0, x), 11.0);
}

TEST(ProblemTest, FeasibilityChecksAllRelations) {
  Problem p;
  p.add_variable("x", 0, 10);
  p.add_constraint("le", {{0, 1.0}}, Relation::kLessEqual, 5.0);
  p.add_constraint("ge", {{0, 1.0}}, Relation::kGreaterEqual, 2.0);
  EXPECT_TRUE(p.is_feasible(std::vector<double>{3.0}));
  EXPECT_FALSE(p.is_feasible(std::vector<double>{6.0}));
  EXPECT_FALSE(p.is_feasible(std::vector<double>{1.0}));
}

TEST(ProblemTest, FeasibilityChecksEquality) {
  Problem p;
  p.add_variable("x", 0, 10);
  p.add_constraint("eq", {{0, 1.0}}, Relation::kEqual, 4.0);
  EXPECT_TRUE(p.is_feasible(std::vector<double>{4.0}));
  EXPECT_FALSE(p.is_feasible(std::vector<double>{4.5}));
}

TEST(ProblemTest, FeasibilityChecksIntegrality) {
  Problem p;
  p.add_variable("n", 0, 10, 0.0, /*is_integer=*/true);
  EXPECT_TRUE(p.is_feasible(std::vector<double>{3.0}));
  EXPECT_FALSE(p.is_feasible(std::vector<double>{3.4}));
}

TEST(ProblemTest, FeasibilityChecksBounds) {
  Problem p;
  p.add_variable("x", 1.0, 2.0);
  EXPECT_FALSE(p.is_feasible(std::vector<double>{0.5}));
  EXPECT_FALSE(p.is_feasible(std::vector<double>{2.5}));
  EXPECT_TRUE(p.is_feasible(std::vector<double>{1.5}));
}

TEST(ProblemTest, FeasibilityRejectsWrongSize) {
  Problem p;
  p.add_variable("x", 0, 1);
  EXPECT_FALSE(p.is_feasible(std::vector<double>{}));
}

TEST(ProblemTest, SetBoundsTightens) {
  Problem p;
  const int x = p.add_variable("x", 0, 10);
  p.set_bounds(x, 2.0, 3.0);
  EXPECT_EQ(p.variable(x).lower, 2.0);
  EXPECT_EQ(p.variable(x).upper, 3.0);
  EXPECT_THROW(p.set_bounds(x, 5.0, 4.0), std::invalid_argument);
}

TEST(ProblemTest, ToStringMentionsPieces) {
  Problem p;
  p.add_variable("alpha", 0, 4, 1.5);
  p.add_constraint("cap", {{0, 2.0}}, Relation::kLessEqual, 8.0);
  const std::string s = p.to_string();
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("cap"), std::string::npos);
  EXPECT_NE(s.find("minimize"), std::string::npos);
}

TEST(SolveStatusTest, Names) {
  EXPECT_STREQ(to_string(SolveStatus::kOptimal), "optimal");
  EXPECT_STREQ(to_string(SolveStatus::kInfeasible), "infeasible");
  EXPECT_STREQ(to_string(SolveStatus::kUnbounded), "unbounded");
}

}  // namespace
}  // namespace billcap::lp
