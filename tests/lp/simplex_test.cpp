#include "lp/simplex.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/rng.hpp"

namespace billcap::lp {
namespace {

TEST(SimplexTest, TextbookMaximization) {
  // max 3x + 5y  s.t. x <= 4, 2y <= 12, 3x + 2y <= 18  ->  (2, 6), obj 36.
  Problem p;
  p.set_sense(Sense::kMaximize);
  const int x = p.add_variable("x", 0, kInfinity, 3.0);
  const int y = p.add_variable("y", 0, kInfinity, 5.0);
  p.add_constraint("c1", {{x, 1.0}}, Relation::kLessEqual, 4.0);
  p.add_constraint("c2", {{y, 2.0}}, Relation::kLessEqual, 12.0);
  p.add_constraint("c3", {{x, 3.0}, {y, 2.0}}, Relation::kLessEqual, 18.0);
  const Solution s = solve_lp(p);
  ASSERT_TRUE(s.ok());
  EXPECT_NEAR(s.objective, 36.0, 1e-8);
  EXPECT_NEAR(s.x[0], 2.0, 1e-8);
  EXPECT_NEAR(s.x[1], 6.0, 1e-8);
}

TEST(SimplexTest, MinimizationWithGreaterEqual) {
  // min 2x + 3y  s.t. x + y >= 10, x >= 2  ->  x = 10 - y... optimal y = 8?
  // Coefficient of x (2) < y (3) so push x: x = 8, y = ... x + y >= 10 with
  // x cheap: x = 10, y = 0 but x >= 2 nonbinding. obj = 20.
  Problem p;
  const int x = p.add_variable("x", 0, kInfinity, 2.0);
  const int y = p.add_variable("y", 0, kInfinity, 3.0);
  p.add_constraint("demand", {{x, 1.0}, {y, 1.0}}, Relation::kGreaterEqual,
                   10.0);
  p.add_constraint("xmin", {{x, 1.0}}, Relation::kGreaterEqual, 2.0);
  const Solution s = solve_lp(p);
  ASSERT_TRUE(s.ok());
  EXPECT_NEAR(s.objective, 20.0, 1e-8);
  EXPECT_NEAR(s.x[0], 10.0, 1e-8);
  EXPECT_NEAR(s.x[1], 0.0, 1e-8);
}

TEST(SimplexTest, EqualityConstraint) {
  // min x + 2y  s.t. x + y = 5, y >= 1  ->  x = 4, y = 1, obj 6.
  Problem p;
  const int x = p.add_variable("x", 0, kInfinity, 1.0);
  const int y = p.add_variable("y", 1.0, kInfinity, 2.0);
  p.add_constraint("sum", {{x, 1.0}, {y, 1.0}}, Relation::kEqual, 5.0);
  const Solution s = solve_lp(p);
  ASSERT_TRUE(s.ok());
  EXPECT_NEAR(s.objective, 6.0, 1e-8);
  EXPECT_NEAR(s.x[0], 4.0, 1e-8);
  EXPECT_NEAR(s.x[1], 1.0, 1e-8);
}

TEST(SimplexTest, DetectsInfeasible) {
  Problem p;
  const int x = p.add_variable("x", 0, kInfinity, 1.0);
  p.add_constraint("lo", {{x, 1.0}}, Relation::kGreaterEqual, 5.0);
  p.add_constraint("hi", {{x, 1.0}}, Relation::kLessEqual, 3.0);
  EXPECT_EQ(solve_lp(p).status, SolveStatus::kInfeasible);
}

TEST(SimplexTest, DetectsUnbounded) {
  Problem p;
  p.set_sense(Sense::kMaximize);
  const int x = p.add_variable("x", 0, kInfinity, 1.0);
  p.add_constraint("lo", {{x, 1.0}}, Relation::kGreaterEqual, 1.0);
  EXPECT_EQ(solve_lp(p).status, SolveStatus::kUnbounded);
}

TEST(SimplexTest, RespectsUpperBounds) {
  Problem p;
  p.set_sense(Sense::kMaximize);
  p.add_variable("x", 0, 7.5, 1.0);
  const Solution s = solve_lp(p);
  ASSERT_TRUE(s.ok());
  EXPECT_NEAR(s.x[0], 7.5, 1e-8);
}

TEST(SimplexTest, FixedVariableStaysFixed) {
  Problem p;
  p.set_sense(Sense::kMaximize);
  const int x = p.add_variable("x", 3.0, 3.0, 10.0);
  const int y = p.add_variable("y", 0, kInfinity, 1.0);
  p.add_constraint("cap", {{x, 1.0}, {y, 1.0}}, Relation::kLessEqual, 10.0);
  const Solution s = solve_lp(p);
  ASSERT_TRUE(s.ok());
  EXPECT_NEAR(s.x[0], 3.0, 1e-8);
  EXPECT_NEAR(s.x[1], 7.0, 1e-8);
}

TEST(SimplexTest, NegativeLowerBounds) {
  // min x  with  x >= -5  ->  x = -5.
  Problem p;
  p.add_variable("x", -5.0, kInfinity, 1.0);
  const Solution s = solve_lp(p);
  ASSERT_TRUE(s.ok());
  EXPECT_NEAR(s.x[0], -5.0, 1e-8);
  EXPECT_NEAR(s.objective, -5.0, 1e-8);
}

TEST(SimplexTest, FreeVariable) {
  // min (x - 3)^1 ... linear: min x s.t. x >= -inf with x + y = 1, y in
  // [0, 4]: x = 1 - y, minimized at y = 4 -> x = -3.
  Problem p;
  const int x = p.add_variable("x", -kInfinity, kInfinity, 1.0);
  const int y = p.add_variable("y", 0.0, 4.0);
  p.add_constraint("link", {{x, 1.0}, {y, 1.0}}, Relation::kEqual, 1.0);
  const Solution s = solve_lp(p);
  ASSERT_TRUE(s.ok());
  EXPECT_NEAR(s.x[x], -3.0, 1e-8);
  EXPECT_NEAR(s.x[y], 4.0, 1e-8);
}

TEST(SimplexTest, MirroredVariableUpperBoundOnly) {
  // max x  with  x <= 9 and lower bound -inf.
  Problem p;
  p.set_sense(Sense::kMaximize);
  p.add_variable("x", -kInfinity, 9.0, 1.0);
  const Solution s = solve_lp(p);
  ASSERT_TRUE(s.ok());
  EXPECT_NEAR(s.x[0], 9.0, 1e-8);
}

TEST(SimplexTest, ObjectiveConstantIncluded) {
  Problem p;
  p.add_variable("x", 2.0, 10.0, 1.0);
  p.set_objective_constant(100.0);
  const Solution s = solve_lp(p);
  ASSERT_TRUE(s.ok());
  EXPECT_NEAR(s.objective, 102.0, 1e-8);
}

TEST(SimplexTest, DegenerateProblemTerminates) {
  // Classic Beale cycling example; the stall->Bland switch must terminate.
  Problem p;
  p.set_sense(Sense::kMinimize);
  const int x1 = p.add_variable("x1", 0, kInfinity, -0.75);
  const int x2 = p.add_variable("x2", 0, kInfinity, 150.0);
  const int x3 = p.add_variable("x3", 0, kInfinity, -0.02);
  const int x4 = p.add_variable("x4", 0, kInfinity, 6.0);
  p.add_constraint("r1", {{x1, 0.25}, {x2, -60.0}, {x3, -1.0 / 25.0}, {x4, 9.0}},
                   Relation::kLessEqual, 0.0);
  p.add_constraint("r2", {{x1, 0.5}, {x2, -90.0}, {x3, -1.0 / 50.0}, {x4, 3.0}},
                   Relation::kLessEqual, 0.0);
  p.add_constraint("r3", {{x3, 1.0}}, Relation::kLessEqual, 1.0);
  const Solution s = solve_lp(p);
  ASSERT_TRUE(s.ok());
  EXPECT_NEAR(s.objective, -0.05, 1e-8);
}

TEST(SimplexTest, DualsOfEqualityRow) {
  // min 2x + 3y  s.t. x + y = 10  ->  all mass on x, dual = 2 (cost of one
  // more unit of demand).
  Problem p;
  const int x = p.add_variable("x", 0, kInfinity, 2.0);
  const int y = p.add_variable("y", 0, kInfinity, 3.0);
  p.add_constraint("demand", {{x, 1.0}, {y, 1.0}}, Relation::kEqual, 10.0);
  const Solution s = solve_lp(p);
  ASSERT_TRUE(s.ok());
  ASSERT_EQ(s.duals.size(), 1u);
  EXPECT_NEAR(s.duals[0], 2.0, 1e-8);
}

TEST(SimplexTest, DualsMatchFiniteDifference) {
  // Perturb each rhs and compare the dual against the objective delta.
  Problem p;
  const int x = p.add_variable("x", 0, kInfinity, 1.0);
  const int y = p.add_variable("y", 0, kInfinity, 4.0);
  p.add_constraint("c1", {{x, 1.0}, {y, 1.0}}, Relation::kGreaterEqual, 8.0);
  p.add_constraint("c2", {{x, 1.0}}, Relation::kLessEqual, 5.0);
  const Solution base = solve_lp(p);
  ASSERT_TRUE(base.ok());
  const double eps = 1e-4;

  for (int row = 0; row < p.num_constraints(); ++row) {
    // Rebuild with perturbed rhs.
    Problem r;
    r.add_variable("x", 0, kInfinity, 1.0);
    r.add_variable("y", 0, kInfinity, 4.0);
    r.add_constraint("c1", {{0, 1.0}, {1, 1.0}}, Relation::kGreaterEqual,
                     8.0 + (row == 0 ? eps : 0.0));
    r.add_constraint("c2", {{0, 1.0}}, Relation::kLessEqual,
                     5.0 + (row == 1 ? eps : 0.0));
    const Solution pert = solve_lp(r);
    ASSERT_TRUE(pert.ok());
    EXPECT_NEAR((pert.objective - base.objective) / eps, base.duals[static_cast<std::size_t>(row)],
                1e-5)
        << "row " << row;
  }
}

TEST(SimplexTest, DualsForMaximizationSense) {
  // max 3x s.t. x <= 4: one more unit of capacity is worth 3.
  Problem p;
  p.set_sense(Sense::kMaximize);
  const int x = p.add_variable("x", 0, kInfinity, 3.0);
  p.add_constraint("cap", {{x, 1.0}}, Relation::kLessEqual, 4.0);
  const Solution s = solve_lp(p);
  ASSERT_TRUE(s.ok());
  EXPECT_NEAR(s.duals[0], 3.0, 1e-8);
}

TEST(SimplexTest, StrongDualityOnRandomProblems) {
  // For feasible bounded min problems with x >= 0 and only row constraints,
  // strong duality: c'x* == y*'b.
  util::Rng rng(1234);
  int solved = 0;
  for (int trial = 0; trial < 200; ++trial) {
    Problem p;
    const int n = 2 + static_cast<int>(rng.below(4));
    const int m = 1 + static_cast<int>(rng.below(4));
    for (int j = 0; j < n; ++j)
      p.add_variable("x" + std::to_string(j), 0.0, kInfinity,
                     rng.uniform(0.1, 5.0));  // positive costs => bounded
    for (int i = 0; i < m; ++i) {
      std::vector<Term> terms;
      for (int j = 0; j < n; ++j) {
        if (rng.bernoulli(0.7))
          terms.push_back({j, rng.uniform(0.1, 3.0)});  // nonneg coefs
      }
      if (terms.empty()) terms.push_back({0, 1.0});
      // >= rows keep the problem feasible (x can grow) and bounded (c > 0).
      p.add_constraint("r" + std::to_string(i), std::move(terms),
                       Relation::kGreaterEqual, rng.uniform(1.0, 20.0));
    }
    const Solution s = solve_lp(p);
    ASSERT_TRUE(s.ok()) << "trial " << trial;
    ++solved;
    double dual_obj = 0.0;
    for (int i = 0; i < m; ++i)
      dual_obj += s.duals[static_cast<std::size_t>(i)] * p.constraint(i).rhs;
    EXPECT_NEAR(dual_obj, s.objective, 1e-6 * std::max(1.0, std::abs(s.objective)))
        << "trial " << trial;
    EXPECT_TRUE(p.is_feasible(s.x, 1e-6)) << "trial " << trial;
  }
  EXPECT_EQ(solved, 200);
}

TEST(SimplexTest, RandomProblemsNoSampledPointBeatsOptimum) {
  // Feasible random sampling can never beat the reported optimum.
  util::Rng rng(999);
  for (int trial = 0; trial < 100; ++trial) {
    Problem p;
    const int n = 2 + static_cast<int>(rng.below(3));
    for (int j = 0; j < n; ++j)
      p.add_variable("x" + std::to_string(j), 0.0, rng.uniform(1.0, 10.0),
                     rng.uniform(-5.0, 5.0));
    const int m = 1 + static_cast<int>(rng.below(3));
    for (int i = 0; i < m; ++i) {
      std::vector<Term> terms;
      for (int j = 0; j < n; ++j) terms.push_back({j, rng.uniform(-2.0, 2.0)});
      p.add_constraint("r" + std::to_string(i), std::move(terms),
                       Relation::kLessEqual, rng.uniform(1.0, 15.0));
    }
    const Solution s = solve_lp(p);
    if (!s.ok()) continue;  // random box may be infeasible; fine
    ASSERT_TRUE(p.is_feasible(s.x, 1e-6));
    for (int k = 0; k < 200; ++k) {
      std::vector<double> cand(static_cast<std::size_t>(n));
      for (int j = 0; j < n; ++j)
        cand[static_cast<std::size_t>(j)] =
            rng.uniform(p.variable(j).lower, p.variable(j).upper);
      if (!p.is_feasible(cand, 1e-9)) continue;
      EXPECT_GE(p.objective_value(cand), s.objective - 1e-6)
          << "trial " << trial;
    }
  }
}

TEST(SimplexTest, IterationLimitReported) {
  Problem p;
  p.set_sense(Sense::kMaximize);
  const int x = p.add_variable("x", 0, kInfinity, 1.0);
  const int y = p.add_variable("y", 0, kInfinity, 1.0);
  p.add_constraint("c", {{x, 1.0}, {y, 1.0}}, Relation::kLessEqual, 1.0);
  SimplexOptions opts;
  opts.max_iterations = 0;
  EXPECT_EQ(solve_lp(p, opts).status, SolveStatus::kIterationLimit);
}

TEST(SimplexTest, RedundantEqualityRowsHandled) {
  // Duplicate equality rows leave a basic artificial on a redundant row.
  Problem p;
  const int x = p.add_variable("x", 0, kInfinity, 1.0);
  const int y = p.add_variable("y", 0, kInfinity, 1.0);
  p.add_constraint("e1", {{x, 1.0}, {y, 1.0}}, Relation::kEqual, 4.0);
  p.add_constraint("e2", {{x, 1.0}, {y, 1.0}}, Relation::kEqual, 4.0);
  const Solution s = solve_lp(p);
  ASSERT_TRUE(s.ok());
  EXPECT_NEAR(s.objective, 4.0, 1e-8);
}

TEST(SimplexTest, ZeroObjectiveFindsFeasiblePoint) {
  Problem p;
  const int x = p.add_variable("x", 0, kInfinity);
  p.add_constraint("c", {{x, 2.0}}, Relation::kEqual, 6.0);
  const Solution s = solve_lp(p);
  ASSERT_TRUE(s.ok());
  EXPECT_NEAR(s.x[0], 3.0, 1e-8);
}

// ---- regression tests for the anchored ratio-test tie-break ------------
// choose_leaving once compared each candidate against a drifting "best so
// far" window (ratio <= best + eps with best updated inside the scan), so
// a chain of near-ties could walk the window away from the true minimum
// ratio and pick a leaving row whose step was strictly negative. The rule
// is now two-pass: exact minimum first, then the smallest basis index
// within a fixed epsilon of it. These tests pin that behavior.

TEST(SimplexTest, ExactlyTiedRatiosPickAValidPivot) {
  // Four rows with the identical minimum ratio for the entering column:
  // any of them is a legal pivot; the tie-break must stay within the tied
  // set and reach the optimum. max x + y s.t. x <= 3 (four copies),
  // x + y <= 5  ->  (3, 2), obj 5... all four x-rows tie at ratio 3.
  Problem p;
  p.set_sense(Sense::kMaximize);
  const int x = p.add_variable("x", 0, kInfinity, 1.0);
  const int y = p.add_variable("y", 0, kInfinity, 1.0);
  for (int k = 0; k < 4; ++k)
    p.add_constraint("cap" + std::to_string(k), {{x, 1.0}},
                     Relation::kLessEqual, 3.0);
  p.add_constraint("sum", {{x, 1.0}, {y, 1.0}}, Relation::kLessEqual, 5.0);
  const Solution s = solve_lp(p);
  ASSERT_TRUE(s.ok());
  EXPECT_NEAR(s.objective, 5.0, 1e-8);
}

TEST(SimplexTest, NearTieChainCannotDriftPastTheMinimum) {
  // Ratios at r, r+eps, r+2*eps, ... with eps just inside the tie window:
  // under the drifting-window rule the accepted set could creep upward
  // row by row; the anchored rule only ever admits ratios within one
  // epsilon of the exact minimum. The solve must end at the true optimum
  // with a feasible x.
  Problem p;
  p.set_sense(Sense::kMaximize);
  const int x = p.add_variable("x", 0, kInfinity, 1.0);
  for (int k = 0; k < 6; ++k) {
    // x <= 2 + k * 4e-13: each successive row's ratio is one near-tie step
    // above the previous one.
    p.add_constraint("cap" + std::to_string(k), {{x, 1.0}},
                     Relation::kLessEqual, 2.0 + 4e-13 * k);
  }
  const Solution s = solve_lp(p);
  ASSERT_TRUE(s.ok());
  EXPECT_NEAR(s.objective, 2.0, 1e-8);
  EXPECT_LE(s.x[0], 2.0 + 1e-8);  // the binding row is the tightest one
}

TEST(SimplexTest, BealeCyclingExampleTerminates) {
  // Beale's classic cycling LP: Dantzig entering with a careless leaving
  // tie-break cycles forever among degenerate bases. The anchored
  // tie-break plus the Bland fallback must terminate at the optimum
  // (objective -1/20).
  Problem p;
  const int x1 = p.add_variable("x1", 0, kInfinity, -0.75);
  const int x2 = p.add_variable("x2", 0, kInfinity, 150.0);
  const int x3 = p.add_variable("x3", 0, kInfinity, -0.02);
  const int x4 = p.add_variable("x4", 0, kInfinity, 6.0);
  p.add_constraint("r1", {{x1, 0.25}, {x2, -60.0}, {x3, -1.0 / 25.0},
                          {x4, 9.0}},
                   Relation::kLessEqual, 0.0);
  p.add_constraint("r2", {{x1, 0.5}, {x2, -90.0}, {x3, -1.0 / 50.0},
                          {x4, 3.0}},
                   Relation::kLessEqual, 0.0);
  p.add_constraint("r3", {{x3, 1.0}}, Relation::kLessEqual, 1.0);
  const Solution s = solve_lp(p);
  ASSERT_TRUE(s.ok());
  EXPECT_NEAR(s.objective, -0.05, 1e-8);
}

TEST(SimplexTest, DegenerateVertexStillOptimal) {
  // Three constraints meeting at one degenerate vertex of a 2-D feasible
  // set: zero-step pivots must not stall or misreport.
  Problem p;
  p.set_sense(Sense::kMaximize);
  const int x = p.add_variable("x", 0, kInfinity, 2.0);
  const int y = p.add_variable("y", 0, kInfinity, 1.0);
  p.add_constraint("a", {{x, 1.0}}, Relation::kLessEqual, 1.0);
  p.add_constraint("b", {{x, 1.0}, {y, 1.0}}, Relation::kLessEqual, 1.0);
  p.add_constraint("c", {{x, 2.0}, {y, 1.0}}, Relation::kLessEqual, 2.0);
  const Solution s = solve_lp(p);
  ASSERT_TRUE(s.ok());
  EXPECT_NEAR(s.objective, 2.0, 1e-8);
  EXPECT_NEAR(s.x[0], 1.0, 1e-8);
  EXPECT_NEAR(s.x[1], 0.0, 1e-8);
}

}  // namespace
}  // namespace billcap::lp
