// Differential test harness for the arena solver: lp::ArenaSolver against
// the legacy engine (solve_milp_reference) over seeded random LPs/MILPs of
// every status class plus the paper's real hourly problems. Both the cold
// path (a fresh arena per problem) and the warm path (one arena carried
// across a structurally coherent sequence, warm_across_solves on) must
// agree with the reference on status and, when optimal, on the objective
// to 1e-9 relative. Well over 200 instances run per suite invocation.

#include "lp/arena_solver.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <vector>

#include "core/cost_minimizer.hpp"
#include "core/formulation.hpp"
#include "core/throughput_maximizer.hpp"
#include "datacenter/catalog.hpp"
#include "lp/milp.hpp"
#include "market/pricing_policy.hpp"

namespace billcap::lp {
namespace {

/// One differential comparison. `tag` names the instance in failures.
void expect_agrees(const Solution& ref, const Solution& arena,
                   const std::string& tag) {
  ASSERT_EQ(ref.status, arena.status)
      << tag << ": ref=" << to_string(ref.status)
      << " arena=" << to_string(arena.status);
  if (ref.status != SolveStatus::kOptimal) return;
  const double scale = std::max(1.0, std::abs(ref.objective));
  EXPECT_NEAR(ref.objective, arena.objective, 1e-9 * scale)
      << tag << ": objectives diverge";
}

/// Seeded random problem drawing from every variable kind the standard-form
/// builder distinguishes (finite lower, upper-only, free, bounded, binary)
/// and all three relations, both senses, with a sprinkle of integrality.
/// Infeasible and unbounded instances arise naturally from the draw.
Problem random_problem(std::mt19937& rng) {
  std::uniform_int_distribution<int> nv(1, 6), nc(1, 6), rel(0, 2);
  std::uniform_real_distribution<double> coef(-3.0, 3.0), rhs(-5.0, 5.0);
  std::uniform_int_distribution<int> quarter(0, 3), kind(0, 5);
  Problem p;
  const int n = nv(rng);
  for (int j = 0; j < n; ++j) {
    const int k = kind(rng);
    double lo = 0.0, hi = kInfinity;
    bool integer = quarter(rng) == 0;
    if (k == 0) {
      lo = 0.0; hi = 1.0;  // binary when the integer draw hits
    } else if (k == 1) {
      lo = -2.0; hi = 3.0;
    } else if (k == 2) {
      integer = false;  // plain nonnegative continuous
    } else if (k == 3) {
      lo = -kInfinity; hi = 2.0; integer = false;  // upper-only (mirrored)
    } else if (k == 4) {
      lo = -kInfinity; hi = kInfinity; integer = false;  // free (split)
    } else {
      lo = 1.0; hi = 4.0;
    }
    p.add_variable("x", lo, hi, coef(rng), integer);
  }
  const int m = nc(rng);
  for (int i = 0; i < m; ++i) {
    std::vector<Term> terms;
    for (int j = 0; j < n; ++j)
      if (quarter(rng) != 1) terms.push_back({j, coef(rng)});
    if (terms.empty()) terms.push_back({0, coef(rng)});
    p.add_constraint("c", terms, static_cast<Relation>(rel(rng)), rhs(rng));
  }
  if (quarter(rng) == 0) p.set_sense(Sense::kMaximize);
  return p;
}

TEST(SolverDifferentialTest, RandomInstancesAgreeCold) {
  std::mt19937 rng(12345);
  int optimal = 0, infeasible = 0, unbounded = 0;
  for (int iter = 0; iter < 400; ++iter) {
    const Problem p = random_problem(rng);
    const Solution ref = solve_milp_reference(p);
    ArenaSolver solver;  // fresh arena: pure cold path
    const Solution arena = solver.solve(p);
    expect_agrees(ref, arena, "cold iter " + std::to_string(iter));
    if (ref.status == SolveStatus::kOptimal) ++optimal;
    if (ref.status == SolveStatus::kInfeasible) ++infeasible;
    if (ref.status == SolveStatus::kUnbounded) ++unbounded;
  }
  // The draw must actually exercise every status class.
  EXPECT_GT(optimal, 100);
  EXPECT_GT(infeasible, 20);
  EXPECT_GT(unbounded, 20);
}

TEST(SolverDifferentialTest, RandomSequencesAgreeWarm) {
  // Sequences of structurally identical problems whose objective costs and
  // rhs drift step to step — exactly the shape warm_across_solves targets.
  // One warm arena per sequence; every step checked against the reference.
  std::mt19937 rng(777);
  std::uniform_real_distribution<double> dcost(-0.5, 0.5), drhs(-1.0, 1.0);
  long warm_roots = 0;
  for (int seq = 0; seq < 40; ++seq) {
    Problem p = random_problem(rng);
    ArenaSolver warm(ArenaConfig{.warm_across_solves = true});
    for (int step = 0; step < 8; ++step) {
      if (step > 0) {
        for (int j = 0; j < p.num_variables(); ++j)
          p.set_objective(j, p.variable(j).objective + dcost(rng));
        for (int i = 0; i < p.num_constraints(); ++i)
          p.set_rhs(i, p.constraint(i).rhs + drhs(rng));
      }
      const Solution ref = solve_milp_reference(p);
      const Solution arena = warm.solve(p);
      expect_agrees(ref, arena,
                    "warm seq " + std::to_string(seq) + " step " +
                        std::to_string(step));
    }
    warm_roots += warm.stats().warm_solves;
  }
  // The warm path must actually fire, not silently fall back cold forever.
  EXPECT_GT(warm_roots, 40);
}

TEST(SolverDifferentialTest, DegenerateLpsAgree) {
  // Degeneracy on purpose: duplicated rows, zero rhs, and ties that make
  // several bases optimal. The anchored tie-break rule (see
  // Simplex::choose_leaving) must keep both engines on agreeing optima.
  std::mt19937 rng(4242);
  std::uniform_real_distribution<double> coef(-2.0, 2.0);
  std::uniform_int_distribution<int> nv(2, 5), coin(0, 1);
  for (int iter = 0; iter < 120; ++iter) {
    Problem p;
    const int n = nv(rng);
    for (int j = 0; j < n; ++j)
      p.add_variable("x", 0.0, 4.0, coef(rng), coin(rng) == 0 && j < 2);
    std::vector<Term> row;
    for (int j = 0; j < n; ++j) row.push_back({j, coef(rng)});
    // The same row three times, as <=, >= and (sometimes) = with rhs 0:
    // every vertex touching it is degenerate.
    p.add_constraint("a", row, Relation::kLessEqual, 0.0);
    p.add_constraint("b", row, Relation::kGreaterEqual, 0.0);
    if (coin(rng) == 0) p.add_constraint("c", row, Relation::kEqual, 0.0);
    std::vector<Term> cover;
    for (int j = 0; j < n; ++j) cover.push_back({j, 1.0});
    p.add_constraint("cover", cover, Relation::kLessEqual, 6.0);
    if (coin(rng) == 0) p.set_sense(Sense::kMaximize);

    const Solution ref = solve_milp_reference(p);
    ArenaSolver solver;
    const Solution arena = solver.solve(p);
    expect_agrees(ref, arena, "degenerate iter " + std::to_string(iter));
  }
}

TEST(SolverDifferentialTest, InfeasibleAndUnboundedByConstruction) {
  for (int k = 0; k < 20; ++k) {
    // x >= 2 + k  and  x <= 1: infeasible for every k.
    Problem inf;
    const int x = inf.add_variable("x", 0.0, kInfinity, 1.0);
    inf.add_constraint("lo", {{x, 1.0}}, Relation::kGreaterEqual, 2.0 + k);
    inf.add_constraint("hi", {{x, 1.0}}, Relation::kLessEqual, 1.0);
    ArenaSolver s1;
    expect_agrees(solve_milp_reference(inf), s1.solve(inf),
                  "constructed infeasible " + std::to_string(k));

    // max x with only a lower bound: unbounded for every k.
    Problem unb;
    unb.set_sense(Sense::kMaximize);
    const int y = unb.add_variable("y", 0.0, kInfinity, 1.0 + k);
    unb.add_constraint("lo", {{y, 1.0}}, Relation::kGreaterEqual, 1.0);
    ArenaSolver s2;
    expect_agrees(solve_milp_reference(unb), s2.solve(unb),
                  "constructed unbounded " + std::to_string(k));
  }
}

class RealHourlyDifferentialTest : public ::testing::Test {
 protected:
  RealHourlyDifferentialTest() {
    const auto sites = datacenter::paper_datacenters();
    const auto policies = market::paper_policies(1);
    const std::vector<double> demand = {228.0, 182.0, 172.0};
    for (std::size_t i = 0; i < sites.size(); ++i)
      models_.push_back(
          core::make_site_model(sites[i], policies[i], demand[i]));
  }

  /// The hourly min-cost MILP at a given total arrival rate.
  Problem min_cost_problem(double lambda_total) const {
    core::AllocationFormulation f =
        core::build_allocation_formulation(models_);
    f.problem.set_sense(Sense::kMinimize);
    std::vector<Term> terms;
    for (const core::SiteVars& v : f.vars) terms.push_back({v.lambda, 1.0});
    f.problem.add_constraint("demand", std::move(terms), Relation::kEqual,
                             lambda_total / core::kLambdaScale);
    return f.problem;
  }

  std::vector<core::SiteModel> models_;
};

TEST_F(RealHourlyDifferentialTest, PaperMilpsAgreeColdAndWarm) {
  // A month-shaped sweep: 60 hourly arrival rates across the fleet's
  // operating range, solved cold (fresh arena each) and warm (one arena
  // across the sweep). 180 MILP solves checked against the reference.
  ArenaSolver warm(ArenaConfig{.warm_across_solves = true});
  for (int h = 0; h < 60; ++h) {
    const double lambda = 1e11 + 1.4e10 * h;  // 1e11 .. ~9.3e11
    const Problem p = min_cost_problem(lambda);
    const Solution ref = solve_milp_reference(p);
    ArenaSolver cold;
    expect_agrees(ref, cold.solve(p), "hour " + std::to_string(h) + " cold");
    expect_agrees(ref, warm.solve(p), "hour " + std::to_string(h) + " warm");
  }
  // Identical structure hour over hour: the warm root must fire.
  EXPECT_GT(warm.stats().warm_solves, 0);
}

TEST_F(RealHourlyDifferentialTest, OptimizerEntryPointsMatchReference) {
  // The production entry points (persistent-arena overloads included)
  // against a reference-engine recomputation of the same formulation.
  ArenaSolver solver(ArenaConfig{.warm_across_solves = true});
  core::OptimizerOptions options;
  for (const double lambda : {2e11, 4e11, 6e11, 8e11}) {
    const core::AllocationResult got = core::minimize_cost_over_models(
        models_, lambda, options, solver);
    ASSERT_TRUE(got.ok()) << lambda;
    const Solution ref =
        solve_milp_reference(min_cost_problem(lambda), options.milp);
    ASSERT_EQ(ref.status, SolveStatus::kOptimal) << lambda;
    EXPECT_NEAR(got.predicted_cost, ref.objective,
                1e-9 * std::max(1.0, std::abs(ref.objective)))
        << lambda;
  }
}

}  // namespace
}  // namespace billcap::lp
