#include "lp/presolve.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "lp/milp.hpp"
#include "lp/simplex.hpp"
#include "util/rng.hpp"

namespace billcap::lp {
namespace {

TEST(PresolveTest, SingletonRowBecomesBound) {
  Problem p;
  const int x = p.add_variable("x", 0, kInfinity, 1.0);
  p.add_constraint("cap", {{x, 2.0}}, Relation::kLessEqual, 10.0);
  const PresolveResult r = presolve(p);
  EXPECT_FALSE(r.infeasible);
  EXPECT_EQ(r.removed_constraints, 1);
  EXPECT_EQ(r.reduced.num_constraints(), 0);
  EXPECT_DOUBLE_EQ(r.reduced.variable(0).upper, 5.0);
}

TEST(PresolveTest, SingletonGreaterEqualTightensLower) {
  Problem p;
  const int x = p.add_variable("x", 0, 100);
  p.add_constraint("floor", {{x, 4.0}}, Relation::kGreaterEqual, 12.0);
  const PresolveResult r = presolve(p);
  EXPECT_DOUBLE_EQ(r.reduced.variable(0).lower, 3.0);
}

TEST(PresolveTest, NegativeCoefficientFlipsDirection) {
  Problem p;
  const int x = p.add_variable("x", -100, 100);
  p.add_constraint("c", {{x, -2.0}}, Relation::kLessEqual, 10.0);  // x >= -5
  const PresolveResult r = presolve(p);
  EXPECT_DOUBLE_EQ(r.reduced.variable(0).lower, -5.0);
}

TEST(PresolveTest, FixedVariableSubstitutedOut) {
  Problem p;
  const int x = p.add_variable("x", 3.0, 3.0, 2.0);
  const int y = p.add_variable("y", 0, 10, 1.0);
  p.add_constraint("c", {{x, 1.0}, {y, 1.0}}, Relation::kLessEqual, 8.0);
  const PresolveResult r = presolve(p);
  EXPECT_EQ(r.removed_variables, 1);
  EXPECT_EQ(r.reduced.num_variables(), 1);
  // Row becomes y <= 5; objective constant 6.
  EXPECT_DOUBLE_EQ(r.reduced.objective_constant(), 6.0);
  EXPECT_DOUBLE_EQ(r.reduced.constraint(0).rhs, 5.0);
}

TEST(PresolveTest, RestoreLiftsSolutions) {
  Problem p;
  p.add_variable("fixed", 2.0, 2.0);
  p.add_variable("free1", 0, 10);
  p.add_variable("free2", 0, 10);
  const PresolveResult r = presolve(p);
  const std::vector<double> reduced_x = {4.0, 7.0};
  const std::vector<double> x = r.restore(reduced_x);
  ASSERT_EQ(x.size(), 3u);
  EXPECT_DOUBLE_EQ(x[0], 2.0);
  EXPECT_DOUBLE_EQ(x[1], 4.0);
  EXPECT_DOUBLE_EQ(x[2], 7.0);
}

TEST(PresolveTest, DetectsCrossedBounds) {
  Problem p;
  const int x = p.add_variable("x", 0, 10);
  p.add_constraint("lo", {{x, 1.0}}, Relation::kGreaterEqual, 8.0);
  p.add_constraint("hi", {{x, 1.0}}, Relation::kLessEqual, 3.0);
  EXPECT_TRUE(presolve(p).infeasible);
}

TEST(PresolveTest, DetectsViolatedEmptyRow) {
  Problem p;
  p.add_variable("x", 0, 1);
  p.add_constraint("impossible", {}, Relation::kGreaterEqual, 5.0);
  EXPECT_TRUE(presolve(p).infeasible);
}

TEST(PresolveTest, DropsSatisfiedEmptyRow) {
  Problem p;
  p.add_variable("x", 0, 1);
  p.add_constraint("trivial", {}, Relation::kLessEqual, 5.0);
  const PresolveResult r = presolve(p);
  EXPECT_FALSE(r.infeasible);
  EXPECT_EQ(r.reduced.num_constraints(), 0);
}

TEST(PresolveTest, IntegerBoundsRoundInward) {
  Problem p;
  const int n = p.add_variable("n", 0, kInfinity, 0.0, true);
  p.add_constraint("lo", {{n, 1.0}}, Relation::kGreaterEqual, 2.3);
  p.add_constraint("hi", {{n, 1.0}}, Relation::kLessEqual, 7.8);
  const PresolveResult r = presolve(p);
  EXPECT_DOUBLE_EQ(r.reduced.variable(0).lower, 3.0);
  EXPECT_DOUBLE_EQ(r.reduced.variable(0).upper, 7.0);
}

TEST(PresolveTest, IntegerRoundingDetectsInfeasibility) {
  Problem p;
  const int n = p.add_variable("n", 0, 10, 0.0, true);
  p.add_constraint("lo", {{n, 1.0}}, Relation::kGreaterEqual, 4.2);
  p.add_constraint("hi", {{n, 1.0}}, Relation::kLessEqual, 4.8);
  EXPECT_TRUE(presolve(p).infeasible);  // no integer in [4.2, 4.8]
}

TEST(PresolveTest, ObjectiveValuePreservedOnRandomLps) {
  // presolve + solve == solve, across random problems with singleton rows
  // and fixed variables sprinkled in.
  util::Rng rng(515);
  for (int trial = 0; trial < 60; ++trial) {
    Problem p;
    const int n = 3 + static_cast<int>(rng.below(3));
    for (int j = 0; j < n; ++j) {
      const double lo = rng.uniform(0.0, 2.0);
      const bool fix = rng.bernoulli(0.25);
      p.add_variable("x" + std::to_string(j), lo,
                     fix ? lo : lo + rng.uniform(1.0, 5.0),
                     rng.uniform(-2.0, 2.0));
    }
    // A couple of singleton rows.
    for (int s = 0; s < 2; ++s) {
      const int j = static_cast<int>(rng.below(static_cast<std::uint64_t>(n)));
      p.add_constraint("s" + std::to_string(s), {{j, rng.uniform(0.5, 2.0)}},
                       Relation::kLessEqual, rng.uniform(2.0, 9.0));
    }
    // One coupling row.
    std::vector<Term> terms;
    for (int j = 0; j < n; ++j) terms.push_back({j, rng.uniform(0.1, 1.0)});
    p.add_constraint("couple", std::move(terms), Relation::kLessEqual,
                     rng.uniform(5.0, 25.0));

    const Solution direct = solve_lp(p);
    const PresolveResult pre = presolve(p);
    if (pre.infeasible) {
      EXPECT_NE(direct.status, SolveStatus::kOptimal) << "trial " << trial;
      continue;
    }
    const Solution reduced = solve_lp(pre.reduced);
    ASSERT_EQ(direct.status, reduced.status) << "trial " << trial;
    if (!direct.ok()) continue;
    EXPECT_NEAR(direct.objective, reduced.objective,
                1e-7 * std::max(1.0, std::abs(direct.objective)))
        << "trial " << trial;
    // Restored solution must be feasible for the original.
    const std::vector<double> x = pre.restore(reduced.x);
    EXPECT_TRUE(p.is_feasible(x, 1e-6)) << "trial " << trial;
  }
}

TEST(PresolveTest, MilpEquivalenceOnKnapsack) {
  Problem p;
  p.set_sense(Sense::kMaximize);
  std::vector<Term> weight;
  for (int j = 0; j < 6; ++j) {
    const int z = p.add_binary("z" + std::to_string(j), 1.0 + j);
    weight.push_back({z, 1.0 + (j % 3)});
  }
  // Fix one variable via a singleton equality.
  p.add_constraint("fix", {{2, 1.0}}, Relation::kEqual, 1.0);
  p.add_constraint("cap", std::move(weight), Relation::kLessEqual, 6.0);

  const Solution direct = solve_milp(p);
  const PresolveResult pre = presolve(p);
  ASSERT_FALSE(pre.infeasible);
  EXPECT_EQ(pre.removed_variables, 1);  // z2 fixed at 1
  const Solution reduced = solve_milp(pre.reduced);
  ASSERT_TRUE(direct.ok());
  ASSERT_TRUE(reduced.ok());
  EXPECT_NEAR(direct.objective, reduced.objective, 1e-9);
}

}  // namespace
}  // namespace billcap::lp
