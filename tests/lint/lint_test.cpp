// Golden-fixture tests for billcap-audit (tools/lint). Each flat fixture
// under tests/lint/fixtures/ is a minimal known-bad snippet that must
// trigger exactly its intended per-file rule; each fixture *tree*
// (<case>/src/<layer>/...) is a miniature project that must trigger
// exactly its intended cross-file rule; the annotated and idiomatic
// fixtures must scan clean; and the real repo must audit clean so the
// static-analysis stage of tools/ci.sh stays green by construction.
#include "lint.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <vector>

#include "audit.hpp"
#include "tokens.hpp"

namespace billcap::lint {
namespace {

std::string fixture_path(const std::string& name) {
  return std::string(BILLCAP_LINT_FIXTURE_DIR) + "/" + name;
}

/// All findings in `findings` are of `rule`, and there is at least one.
void expect_only(const std::vector<Finding>& findings, Rule rule,
                 const std::string& which) {
  EXPECT_FALSE(findings.empty())
      << which << ": fixture triggered no findings";
  for (const Finding& f : findings)
    EXPECT_EQ(info(f.rule).id, info(rule).id)
        << which << ": unexpected " << format_finding(f);
}

struct FixtureCase {
  const char* file;
  Rule rule;
};

TEST(LintFixtures, EachKnownBadFixtureTriggersExactlyItsRule) {
  const FixtureCase cases[] = {
      {"wall_clock.cpp", Rule::kWallClock},
      {"unordered_iter.cpp", Rule::kUnorderedIter},
      {"float_format.cpp", Rule::kFloatFormat},
      {"exit_code.cpp", Rule::kExitCode},
      {"journal_key.cpp", Rule::kJournalKey},
      {"raw_write.cpp", Rule::kRawWrite},
      {"catch_all.cpp", Rule::kCatchAll},
      {"todo_issue.cpp", Rule::kTodoIssue},
      {"unbounded_queue.cpp", Rule::kUnboundedQueue},
      {"solve_alloc.cpp", Rule::kSolveAlloc},
      {"parallel_reduce.cpp", Rule::kParallelReduce},
      {"fixed_point.cpp", Rule::kFixedPoint},
      {"bare_allow.cpp", Rule::kBareAllow},
  };
  for (const FixtureCase& c : cases)
    expect_only(scan_file(fixture_path(c.file)), c.rule, c.file);
}

TEST(LintFixtures, AnnotatedHazardsScanClean) {
  const std::vector<Finding> findings =
      scan_file(fixture_path("suppressed.cpp"));
  for (const Finding& f : findings) ADD_FAILURE() << format_finding(f);
}

TEST(LintFixtures, IdiomaticCodeScansClean) {
  const std::vector<Finding> findings = scan_file(fixture_path("clean.cpp"));
  for (const Finding& f : findings) ADD_FAILURE() << format_finding(f);
}

TEST(LintFixtures, IndexedSlotReductionScansClean) {
  // BL024's sanctioned shape: per-task indexed slots, serial fold.
  const std::vector<Finding> findings =
      scan_file(fixture_path("parallel_reduce_clean.cpp"));
  for (const Finding& f : findings) ADD_FAILURE() << format_finding(f);
}

TEST(LintFixtures, SolverLoopGrowthIsSanctionedByReserveOrAllow) {
  // BL023's two escape hatches: a reserve() sizing pass earlier in the
  // file sanctions in-loop growth, and an allow(solve-alloc) with a
  // rationale sanctions a deliberate cold-path allocation.
  for (const char* fixture :
       {"solve_alloc_clean.cpp", "solve_alloc_suppressed.cpp"}) {
    for (const Finding& f : scan_file(fixture_path(fixture)))
      ADD_FAILURE() << fixture << ": " << format_finding(f);
  }
}

TEST(LintFixtures, BoundedConvergenceLoopsAreSanctioned) {
  // BL025's escape hatches: a cap or epsilon comparison in the condition,
  // an iteration counter, a body escape, or an allow(fixed-point) with a
  // rationale.
  for (const char* fixture :
       {"fixed_point_clean.cpp", "fixed_point_suppressed.cpp"}) {
    for (const Finding& f : scan_file(fixture_path(fixture)))
      ADD_FAILURE() << fixture << ": " << format_finding(f);
  }
}

TEST(LintFixtures, BareAllowFlagsMissingRationaleAndUnknownRule) {
  const std::vector<Finding> findings =
      scan_file(fixture_path("bare_allow.cpp"));
  // Three distinct misuses: allow() without rationale, allow() naming no
  // rule, and a billcap-lint marker with no allow clause at all.
  EXPECT_EQ(findings.size(), 3u);
}

TEST(LintScanner, SuppressionCoversItsLineAndTheNext) {
  const char* text =
      "#include <chrono>\n"
      "// billcap-lint: allow(wall-clock): sanctioned in this test\n"
      "auto t = std::chrono::steady_clock::now();\n"
      "auto u = std::chrono::steady_clock::now();\n";
  const std::vector<Finding> findings = scan_source("buf.cpp", text);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].line, 4u);
  EXPECT_EQ(findings[0].rule, Rule::kWallClock);
}

TEST(LintScanner, StringAndCommentContentsAreInert) {
  const char* text =
      "#include <string>\n"
      "// system_clock in prose is fine; so is rand() in a comment\n"
      "const std::string doc = \"steady_clock::now() and fopen(path)\";\n";
  EXPECT_TRUE(scan_source("buf.cpp", text).empty());
}

TEST(LintScanner, RuleTableIsConsistent) {
  for (const RuleInfo& r : rule_table()) {
    EXPECT_EQ(find_rule(r.name), &r);
    EXPECT_EQ(info(r.rule).id, r.id);
    EXPECT_NE(std::string(r.rationale), "");
  }
  EXPECT_EQ(find_rule("no-such-rule"), nullptr);
}

AuditResult audit_tree(const std::string& name) {
  return audit_paths({fixture_path(name)});
}

TEST(AuditFixtures, EachKnownBadTreeTriggersExactlyItsRule) {
  const FixtureCase cases[] = {
      {"layering_bad", Rule::kLayering},
      {"layering_cycle", Rule::kLayering},
      {"journal_registry_bad", Rule::kJournalRegistry},
      {"exit_registry_bad", Rule::kExitRegistry},
      {"rng_bad", Rule::kUnseededRng},
  };
  for (const FixtureCase& c : cases)
    expect_only(audit_tree(c.file).findings, c.rule, c.file);
}

TEST(AuditFixtures, CleanAndSuppressedTreesAuditClean) {
  for (const char* tree :
       {"layering_clean", "layering_suppressed", "journal_registry_clean",
        "journal_registry_suppressed", "exit_registry_clean",
        "exit_registry_suppressed", "rng_clean", "rng_suppressed",
        "rng_test_exempt"}) {
    for (const Finding& f : audit_tree(tree).findings)
      ADD_FAILURE() << tree << ": " << format_finding(f);
  }
}

TEST(AuditFixtures, InvertedServeIncludeNamesTheEdge) {
  // The acceptance shape for BL040: a core file including serve/ fails,
  // and the finding names the offending edge so the reviewer sees the
  // direction without opening the file.
  const AuditResult result = audit_tree("layering_bad");
  ASSERT_EQ(result.findings.size(), 1u);
  const Finding& f = result.findings[0];
  EXPECT_EQ(f.rule, Rule::kLayering);
  EXPECT_EQ(f.edge, "core -> serve");
  EXPECT_NE(f.message.find("core -> serve"), std::string::npos);
  EXPECT_NE(f.file.find("planner.cpp"), std::string::npos);
}

TEST(AuditFixtures, LayerCycleIsReportedAsACycle) {
  const AuditResult result = audit_tree("layering_cycle");
  bool cycle_reported = false;
  for (const Finding& f : result.findings)
    cycle_reported = cycle_reported ||
                     f.message.find("include cycle") != std::string::npos;
  EXPECT_TRUE(cycle_reported);
}

TEST(AuditFixtures, MissingKeyDeadKeyAndGuardDriftAllSurface) {
  // The acceptance shape for BL041: a key used but absent from the
  // registry (what deleting a registered key leaves behind), a key
  // registered but never used, and a has()-guard applied in one reader
  // but not another.
  const AuditResult result = audit_tree("journal_registry_bad");
  ASSERT_EQ(result.findings.size(), 3u);
  bool missing = false, dead = false, drift = false;
  for (const Finding& f : result.findings) {
    missing = missing || f.message.find("\"beta\" is not declared") !=
                             std::string::npos;
    dead = dead ||
           f.message.find("kGamma") != std::string::npos;
    drift = drift ||
            f.message.find("has()-guarded elsewhere") != std::string::npos;
  }
  EXPECT_TRUE(missing);
  EXPECT_TRUE(dead);
  EXPECT_TRUE(drift);
}

TEST(AuditFixtures, ExitLiteralFindingsNameTheRegistry) {
  const AuditResult result = audit_tree("exit_registry_bad");
  ASSERT_EQ(result.findings.size(), 2u);
  bool named = false, unregistered = false;
  for (const Finding& f : result.findings) {
    named = named || f.message.find("core::ExitCode::kExitConfigError") !=
                         std::string::npos;
    unregistered =
        unregistered ||
        f.message.find("7 is not a registered") != std::string::npos;
  }
  EXPECT_TRUE(named);
  EXPECT_TRUE(unregistered);
}

TEST(Tokenizer, CodeInStringLiteralsIsInertForLoopRules) {
  // The token stream separates channels, so a quoted "while (true)" body
  // must never trip BL022/BL025 — the regression class the per-line
  // scanner had.
  const char* real =
      "#include <deque>\n"
      "void drain(std::deque<int>& q) {\n"
      "  while (true) {\n"
      "    q.push_back(1);\n"
      "  }\n"
      "}\n";
  expect_only(scan_source("buf.cpp", real), Rule::kUnboundedQueue, "real");

  const char* quoted =
      "#include <string>\n"
      "const char* doc = \"while (true) { q.push_back(1); }\";\n"
      "const char* raw = R\"(while (!converged) { q.push_back(1); })\";\n"
      "// while (true) { q.push_back(1); } in a comment is prose\n";
  EXPECT_TRUE(scan_source("buf.cpp", quoted).empty());
}

TEST(Tokenizer, CommentedOutIncludesAreNotEdges) {
  const SourceFile sf = tokenize(
      "// #include \"serve/serve_loop.hpp\"\n"
      "/* #include \"serve/old.hpp\" */\n"
      "#include \"core/simulator.hpp\"\n");
  ASSERT_EQ(sf.includes.size(), 1u);
  EXPECT_EQ(sf.includes[0].path, "core/simulator.hpp");
  EXPECT_FALSE(sf.includes[0].angled);
}

TEST(Tokenizer, LexerHandlesSeparatorsScopesAndRawStrings) {
  const SourceFile sf = tokenize(
      "int n = 1'000'000;\n"
      "auto v = std::chrono::seconds(1);\n"
      "const char* s = R\"x(not ::code here)x\";\n");
  bool number_whole = false, scope_fused = false, raw_captured = false;
  for (const Token& t : sf.tokens) {
    number_whole = number_whole ||
                   (t.kind == TokKind::kNumber && t.text == "1'000'000");
    scope_fused =
        scope_fused || (t.kind == TokKind::kPunct && t.text == "::");
    raw_captured = raw_captured || (t.kind == TokKind::kString &&
                                    t.text == "not ::code here");
  }
  EXPECT_TRUE(number_whole);
  EXPECT_TRUE(scope_fused);
  EXPECT_TRUE(raw_captured);
}

TEST(AuditReport, BaselineRoundTripGrandfathersEveryFinding) {
  const AuditResult result = audit_tree("rng_bad");
  ASSERT_FALSE(result.findings.empty());
  const std::set<std::string> baseline =
      parse_baseline(serialize_baseline(result));
  EXPECT_EQ(baseline.size(), result.findings.size());
  for (const Finding& f : result.findings)
    EXPECT_EQ(baseline.count(baseline_key(f)), 1u) << baseline_key(f);
  // And the JSON report marks them grandfathered.
  const std::string json = to_json(result, baseline);
  EXPECT_EQ(json.find("\"grandfathered\": false"), std::string::npos);
  EXPECT_NE(json.find("\"grandfathered\": true"), std::string::npos);
  EXPECT_NE(json.find("\"rule\": \"BL043\""), std::string::npos);
}

TEST(AuditTree, RepoAuditsCleanUnderTwoSeconds) {
  // The whole-project audit is the ci.sh stage-0 gate; it must stay clean
  // (every hazard fixed or explicitly sanctioned) and fast enough to run
  // on every commit.
  const auto start = std::chrono::steady_clock::now();
  const AuditResult result = audit_paths(
      {BILLCAP_REPO_ROOT "/src", BILLCAP_REPO_ROOT "/tools",
       BILLCAP_REPO_ROOT "/bench", BILLCAP_REPO_ROOT "/examples"});
  const double seconds = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - start)
                             .count();
  for (const Finding& f : result.findings) ADD_FAILURE() << format_finding(f);
  EXPECT_GT(result.files_scanned, 100u);
  EXPECT_LT(seconds, 2.0);
}

TEST(LintTree, RealSourcesScanCleanWithExplicitSuppressionsOnly) {
  std::size_t scanned = 0;
  for (const char* root : {BILLCAP_REPO_ROOT "/src", BILLCAP_REPO_ROOT
                           "/tools"}) {
    for (const std::string& file : collect_sources(root)) {
      for (const Finding& f : scan_file(file))
        ADD_FAILURE() << format_finding(f);
      ++scanned;
    }
  }
  // A path mix-up that scans zero files would vacuously pass otherwise.
  EXPECT_GT(scanned, 50u);
}

}  // namespace
}  // namespace billcap::lint
