// Golden-fixture tests for billcap-lint (tools/lint). Each fixture under
// tests/lint/fixtures/ is a minimal known-bad snippet that must trigger
// exactly its intended rule; the annotated and idiomatic fixtures must
// scan clean; and the real src/ + tools/ trees must scan clean so the
// static-analysis stage of tools/ci.sh stays green by construction.
#include "lint.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace billcap::lint {
namespace {

std::string fixture_path(const std::string& name) {
  return std::string(BILLCAP_LINT_FIXTURE_DIR) + "/" + name;
}

/// All findings in `findings` are of `rule`, and there is at least one.
void expect_only(const std::vector<Finding>& findings, Rule rule,
                 const std::string& which) {
  EXPECT_FALSE(findings.empty())
      << which << ": fixture triggered no findings";
  for (const Finding& f : findings)
    EXPECT_EQ(info(f.rule).id, info(rule).id)
        << which << ": unexpected " << format_finding(f);
}

struct FixtureCase {
  const char* file;
  Rule rule;
};

TEST(LintFixtures, EachKnownBadFixtureTriggersExactlyItsRule) {
  const FixtureCase cases[] = {
      {"wall_clock.cpp", Rule::kWallClock},
      {"unordered_iter.cpp", Rule::kUnorderedIter},
      {"float_format.cpp", Rule::kFloatFormat},
      {"exit_code.cpp", Rule::kExitCode},
      {"journal_key.cpp", Rule::kJournalKey},
      {"raw_write.cpp", Rule::kRawWrite},
      {"catch_all.cpp", Rule::kCatchAll},
      {"todo_issue.cpp", Rule::kTodoIssue},
      {"unbounded_queue.cpp", Rule::kUnboundedQueue},
      {"solve_alloc.cpp", Rule::kSolveAlloc},
      {"parallel_reduce.cpp", Rule::kParallelReduce},
      {"fixed_point.cpp", Rule::kFixedPoint},
      {"bare_allow.cpp", Rule::kBareAllow},
  };
  for (const FixtureCase& c : cases)
    expect_only(scan_file(fixture_path(c.file)), c.rule, c.file);
}

TEST(LintFixtures, AnnotatedHazardsScanClean) {
  const std::vector<Finding> findings =
      scan_file(fixture_path("suppressed.cpp"));
  for (const Finding& f : findings) ADD_FAILURE() << format_finding(f);
}

TEST(LintFixtures, IdiomaticCodeScansClean) {
  const std::vector<Finding> findings = scan_file(fixture_path("clean.cpp"));
  for (const Finding& f : findings) ADD_FAILURE() << format_finding(f);
}

TEST(LintFixtures, IndexedSlotReductionScansClean) {
  // BL024's sanctioned shape: per-task indexed slots, serial fold.
  const std::vector<Finding> findings =
      scan_file(fixture_path("parallel_reduce_clean.cpp"));
  for (const Finding& f : findings) ADD_FAILURE() << format_finding(f);
}

TEST(LintFixtures, SolverLoopGrowthIsSanctionedByReserveOrAllow) {
  // BL023's two escape hatches: a reserve() sizing pass earlier in the
  // file sanctions in-loop growth, and an allow(solve-alloc) with a
  // rationale sanctions a deliberate cold-path allocation.
  for (const char* fixture :
       {"solve_alloc_clean.cpp", "solve_alloc_suppressed.cpp"}) {
    for (const Finding& f : scan_file(fixture_path(fixture)))
      ADD_FAILURE() << fixture << ": " << format_finding(f);
  }
}

TEST(LintFixtures, BoundedConvergenceLoopsAreSanctioned) {
  // BL025's escape hatches: a cap or epsilon comparison in the condition,
  // an iteration counter, a body escape, or an allow(fixed-point) with a
  // rationale.
  for (const char* fixture :
       {"fixed_point_clean.cpp", "fixed_point_suppressed.cpp"}) {
    for (const Finding& f : scan_file(fixture_path(fixture)))
      ADD_FAILURE() << fixture << ": " << format_finding(f);
  }
}

TEST(LintFixtures, BareAllowFlagsMissingRationaleAndUnknownRule) {
  const std::vector<Finding> findings =
      scan_file(fixture_path("bare_allow.cpp"));
  // Three distinct misuses: allow() without rationale, allow() naming no
  // rule, and a billcap-lint marker with no allow clause at all.
  EXPECT_EQ(findings.size(), 3u);
}

TEST(LintScanner, SuppressionCoversItsLineAndTheNext) {
  const char* text =
      "#include <chrono>\n"
      "// billcap-lint: allow(wall-clock): sanctioned in this test\n"
      "auto t = std::chrono::steady_clock::now();\n"
      "auto u = std::chrono::steady_clock::now();\n";
  const std::vector<Finding> findings = scan_source("buf.cpp", text);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].line, 4u);
  EXPECT_EQ(findings[0].rule, Rule::kWallClock);
}

TEST(LintScanner, StringAndCommentContentsAreInert) {
  const char* text =
      "#include <string>\n"
      "// system_clock in prose is fine; so is rand() in a comment\n"
      "const std::string doc = \"steady_clock::now() and fopen(path)\";\n";
  EXPECT_TRUE(scan_source("buf.cpp", text).empty());
}

TEST(LintScanner, RuleTableIsConsistent) {
  for (const RuleInfo& r : rule_table()) {
    EXPECT_EQ(find_rule(r.name), &r);
    EXPECT_EQ(info(r.rule).id, r.id);
    EXPECT_NE(std::string(r.rationale), "");
  }
  EXPECT_EQ(find_rule("no-such-rule"), nullptr);
}

TEST(LintTree, RealSourcesScanCleanWithExplicitSuppressionsOnly) {
  std::size_t scanned = 0;
  for (const char* root : {BILLCAP_REPO_ROOT "/src", BILLCAP_REPO_ROOT
                           "/tools"}) {
    for (const std::string& file : collect_sources(root)) {
      for (const Finding& f : scan_file(file))
        ADD_FAILURE() << format_finding(f);
      ++scanned;
    }
  }
  // A path mix-up that scans zero files would vacuously pass otherwise.
  EXPECT_GT(scanned, 50u);
}

}  // namespace
}  // namespace billcap::lint
