// BL040 cycle fixture, half 1: util reaching up into lp. Together with
// lp/solver.cpp including util back, the observed layer graph has the
// cycle util -> lp -> util.
#include "lp/solver.hpp"

namespace billcap::util {

int retry_budget() { return 3; }

}  // namespace billcap::util
