// BL040 cycle fixture, half 2: lp depending on util is itself legal; the
// violation is the cycle this closes with util/retry.cpp.
#include "util/retry.hpp"

namespace billcap::lp {

double solve() { return 0.0; }

}  // namespace billcap::lp
