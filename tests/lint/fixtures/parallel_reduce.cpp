// Fixture: BL024 parallel-reduce. Never compiled — scanned by lint_test
// only. Fan-out work reduced in thread-scheduling order, three ways: a
// floating-point atomic accumulator, fetch_add, and the accumulate-under-
// mutex idiom. The mutex protects the *values* but the fold order still
// follows scheduling — float addition is not associative, so the total's
// bits differ run to run.
#include <atomic>
#include <mutex>

#include "util/thread_pool.hpp"

double total_cost_unordered(int n) {
  std::atomic<double> total{0.0};
  parallel_for(static_cast<unsigned long>(n),
               [&](unsigned long i) { total.fetch_add(cost_of(i)); });
  return total.load();
}

double total_cost_under_mutex(int n) {
  double total = 0.0;
  std::mutex mu;
  parallel_for(static_cast<unsigned long>(n), [&](unsigned long i) {
    const double cost = cost_of(i);
    std::lock_guard lock(mu);
    total += cost;
  });
  return total;
}
