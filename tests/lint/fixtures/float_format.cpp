// Fixture: BL003 float-format. Never compiled — scanned by lint_test only.
#include <cstdio>

void bad_report(double cost) { std::printf("cost %f\n", cost); }
