// BL041 clean fixture: every key is spelled through the registry, and the
// one read is has()-guarded the same way everywhere.
#include "core/checkpoint_keys.hpp"

namespace billcap::serve {

void persist(util::Journal& j, double bill) {
  j.set_double_bits(keys::kAlpha, bill);
}

double load(util::Journal& j) {
  return j.has(keys::kAlpha) ? j.get_double_bits(keys::kAlpha) : 0.0;
}

}  // namespace billcap::serve
