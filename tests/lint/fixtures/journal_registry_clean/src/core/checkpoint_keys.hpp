// BL041 clean fixture registry: one key, declared once, referenced below.
#pragma once

#include <string_view>

namespace billcap::core::keys {

constexpr std::string_view kAlpha = "alpha";

}  // namespace billcap::core::keys
