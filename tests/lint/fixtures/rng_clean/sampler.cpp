// BL043 clean fixture: the engine seed comes from config, so a rerun with
// the same config reproduces the month.
#include <random>

namespace billcap::workload {

int sample(unsigned config_seed) {
  std::mt19937 gen(config_seed);
  return static_cast<int>(gen() % 7);
}

}  // namespace billcap::workload
