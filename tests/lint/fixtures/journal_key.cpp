// Fixture: BL011 journal-key. Never compiled — scanned by lint_test only.
#include "util/journal.hpp"

void bad_checkpoint(billcap::util::Journal& journal) {
  journal.set_u64("next_hour", 17);
  journal.set("spent", "1.5e6");
}
