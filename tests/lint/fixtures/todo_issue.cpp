// Fixture: BL021. Never compiled — scanned by lint_test only.

// TODO handle the leap-hour edge case
int answer() { return 0; }
