// Fixture: BL023 clean shape. Never compiled — scanned by lint_test only.
// The same solver-shaped loop, but the file runs a reserve() sizing pass
// before iterating, which sanctions in-loop growth: the storage was sized
// up front, exactly the arena discipline the rule enforces.
#include <vector>

namespace billcap::lp {

void collect_candidates(std::vector<int>& out, int n) {
  out.reserve(static_cast<unsigned>(n));
  for (int j = 0; j < n; ++j) {
    out.push_back(j);
  }
}

}  // namespace billcap::lp
