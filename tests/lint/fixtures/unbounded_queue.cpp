// Fixture: BL022 unbounded-queue. Never compiled — scanned by lint_test
// only. A daemon-shaped receive loop that buffers forever: no capacity
// check, no drain, no escape — exactly the overload OOM the serving
// plane's BoundedQueue exists to prevent.
#include <vector>

void receive_loop(bool running, std::vector<int>& backlog) {
  while (running) {
    backlog.push_back(next_request());
  }
}

void spin_buffer(std::vector<int>& events) {
  while (true)
    events.emplace_back(poll_event());
}
