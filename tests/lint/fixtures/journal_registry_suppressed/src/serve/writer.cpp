// BL041 suppressed fixture: a deliberate scratch key, sanctioned with a
// rationale.
#include "core/checkpoint_keys.hpp"

namespace billcap::serve {

void persist(util::Journal& j, double bill) {
  j.set_double_bits(keys::kAlpha, bill);
  // billcap-lint: allow(journal-key-registry): debug scratch slot, wiped by the next checkpoint rotation
  j.set_double_bits("scratch", bill);
}

}  // namespace billcap::serve
