// BL041 suppressed fixture registry: kOld is intentionally kept for one
// release so downgraded controllers can still read it.
#pragma once

#include <string_view>

namespace billcap::core::keys {

constexpr std::string_view kAlpha = "alpha";
// billcap-lint: allow(journal-key-registry): kOld is read by the previous release until the rollback window closes
constexpr std::string_view kOld = "old";

}  // namespace billcap::core::keys
