// BL040 suppressed fixture: the inverted edge is sanctioned with a
// rationale, the way a deliberate transition period would be.
// billcap-lint: allow(layering): transitional — serve's pressure probe moves into core next PR
#include "serve/serve_loop.hpp"

namespace billcap::core {

double plan_with_serve_feedback() { return serve::loop_pressure(); }

}  // namespace billcap::core
