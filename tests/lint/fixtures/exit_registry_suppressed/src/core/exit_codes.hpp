// BL042 suppressed fixture registry.
#pragma once

namespace billcap::core {

enum ExitCode : int {
  kExitOk = 0,
  kExitFailure = 1,
};

}  // namespace billcap::core
