// BL042 suppressed fixture: a helper (not an exit surface for the
// per-file rule) whose literal exit is sanctioned with a rationale.

namespace billcap::core {

void die_hard() {
  // billcap-lint: allow(exit-code-registry): wait-status convention — 77 is the harness skip code, not an ExitCode
  std::exit(77);
}

}  // namespace billcap::core
