// Fixture: BL002 unordered-iter. Never compiled — scanned by lint_test only.
#include <string>
#include <unordered_map>

std::string bad_serialize(const std::unordered_map<std::string, double>& m) {
  std::string out;
  for (const auto& [key, value] : m) out += key + "\n";
  return out;
}
