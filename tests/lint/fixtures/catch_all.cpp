// Fixture: BL020 catch-all. Never compiled — scanned by lint_test only.
void risky();

void bad_swallow() {
  try {
    risky();
  } catch (...) {
    // nothing tagged, nothing rethrown: the degradation is invisible
  }
}
