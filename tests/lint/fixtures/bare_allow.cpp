// Fixture: BL030 bare-allow. Never compiled — scanned by lint_test only.
#include <chrono>

double bare() {
  // billcap-lint: allow(wall-clock)
  const auto now = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(now.time_since_epoch()).count();
}

// billcap-lint: allow(flux-capacitor): not a rule anyone registered
int unknown_rule() { return 0; }

// billcap-lint: see the style guide
int no_allow_clause() { return 0; }
