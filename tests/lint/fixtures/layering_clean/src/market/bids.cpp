// BL040 clean fixture: market may depend on lp and util, nothing higher.
#include "lp/solver.hpp"
#include "util/math.hpp"

namespace billcap::market {

double clearing_bid() { return 1.0; }

}  // namespace billcap::market
