// BL040 clean fixture: serve depending downward on core is the sanctioned
// direction.
#include "core/simulator.hpp"
#include "util/rng.hpp"

namespace billcap::serve {

double loop_pressure() { return 0.0; }

}  // namespace billcap::serve
