// Fixture: BL023 suppressed. Never compiled — scanned by lint_test only.
// A sanctioned allocation inside a solver loop, carrying its rationale:
// the annotation covers both the growth call and the raw new on its line.
#include <vector>

namespace billcap::lp {

void rebuild_rows(std::vector<double*>& rows, int m) {
  while (m > 0) {
    // billcap-lint: allow(solve-alloc): cold-path rebuild, once per structure change
    rows.push_back(new double[4]);
    --m;
  }
}

}  // namespace billcap::lp
