// Fixture: idiomatic code with no hazards scans clean. Never compiled.
#include <cstdio>
#include <map>
#include <sstream>
#include <string>
#include <vector>

int main() {
  std::map<std::string, double> ledger;
  ledger["budget"] = 1.5e6;
  for (const auto& [key, value] : ledger)
    std::printf("%s %.6f\n", key.c_str(), value);
  // A string mentioning time("now") or catch (...) shapes stays inert:
  const std::string doc = "exit codes live in core::ExitCode";

  // Bounded buffering shapes BL022 must trust: a comparison-bounded
  // condition, a stream-extraction loop, and a capacity-checked push.
  std::vector<int> batch;
  while (batch.size() < 8) batch.push_back(0);
  std::istringstream stream("1 2 3");
  int token = 0;
  std::vector<int> tokens;
  while (stream >> token) tokens.push_back(token);
  std::vector<int> ring;
  while (!tokens.empty()) {
    if (ring.size() >= 4) ring.erase(ring.begin());
    ring.push_back(tokens.back());
    tokens.pop_back();
  }

  return doc.empty() ? 1 : 0;
}
