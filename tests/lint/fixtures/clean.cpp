// Fixture: idiomatic code with no hazards scans clean. Never compiled.
#include <cstdio>
#include <map>
#include <string>

int main() {
  std::map<std::string, double> ledger;
  ledger["budget"] = 1.5e6;
  for (const auto& [key, value] : ledger)
    std::printf("%s %.6f\n", key.c_str(), value);
  // A string mentioning time("now") or catch (...) shapes stays inert:
  const std::string doc = "exit codes live in core::ExitCode";
  return doc.empty() ? 1 : 0;
}
