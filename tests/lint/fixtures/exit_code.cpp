// Fixture: BL010 exit-code. Never compiled — scanned by lint_test only.
int main(int argc, char**) {
  if (argc < 2) return 2;
  return 3;
}
