// Fixture: BL025 fixed-point. Never compiled — scanned by lint_test only.
// Convergence-driven while loops with no visible iteration cap or epsilon
// exit: reaching the fixed point is a hope, not a bound, and a period-2
// price orbit spins both of these forever.

double relax_step(double x);
bool oscillating(double x);
double damp(double x);

double relax_until_settled(double state) {
  bool converged = false;
  while (!converged) {
    const double next = relax_step(state);
    converged = next == state;
    state = next;
  }
  return state;
}

double settle_price(double price) {
  while (oscillating(price))
    price = damp(price);
  return price;
}
