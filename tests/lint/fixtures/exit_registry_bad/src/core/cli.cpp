// BL042 fixture: two integer-literal exits. return 7 is unregistered (the
// supervisor cannot interpret it); exit(2) has a registered name it should
// be using.
#include "core/exit_codes.hpp"

int main() {
  const bool broken = false;
  if (broken) std::exit(2);
  return 7;
}
