// BL042 fixture registry: the mini exit-code protocol this tree's CLI must
// speak through.
#pragma once

namespace billcap::core {

enum ExitCode : int {
  kExitOk = 0,
  kExitFailure = 1,
  kExitConfigError = 2,
};

}  // namespace billcap::core
