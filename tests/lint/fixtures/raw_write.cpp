// Fixture: BL012 raw-write. Never compiled — scanned by lint_test only.
#include <cstdio>
#include <fstream>

void bad_save(const char* path) {
  std::ofstream out(path);
  out << "not atomic";
}

void bad_save_c(const char* path) {
  FILE* f = fopen(path, "w");
  if (f) fclose(f);
}
