// BL043 exemption fixture: *_test.* files may use ad-hoc entropy (shuffle
// orders, fuzz seeds) without an annotation.
#include <random>

namespace billcap::workload {

int shuffled(unsigned entropy) {
  std::mt19937 gen(entropy);
  return static_cast<int>(gen() % 7);
}

}  // namespace billcap::workload
