// Fixture: BL025's sanctioned shapes scan clean. Never compiled.
// Each loop is convergence-driven yet visibly bounded: an iteration cap
// alongside the flag, an epsilon comparison in the condition, or an
// escape hatch in the body.

double relax_step(double x);
double residual_of(double x);

double capped_iteration(double state, int max_iters) {
  bool converged = false;
  for (int iter = 0; iter < max_iters && !converged; ++iter) {
    const double next = relax_step(state);
    converged = next == state;
    state = next;
  }
  return state;
}

double flag_and_counter(double state, int max_iters) {
  bool converged = false;
  int iter = 0;
  while (!converged && iter < max_iters) {
    state = relax_step(state);
    converged = residual_of(state) == 0.0;
    ++iter;
  }
  return state;
}

double epsilon_exit(double state, double eps) {
  while (residual_of(state) > eps) state = relax_step(state);
  return state;
}

double body_escape(double state) {
  bool converged = false;
  int rounds = 0;
  while (!converged) {
    if (++rounds == 64) break;
    const double next = relax_step(state);
    converged = next == state;
    state = next;
  }
  return state;
}
