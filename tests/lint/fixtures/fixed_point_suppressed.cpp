// Fixture: an annotated BL025 hazard scans clean. Never compiled.

bool advance(double& x);

double sanctioned_fixed_point(double state) {
  bool converged = false;
  // billcap-lint: allow(fixed-point): map is contractive, gain < 1 proven
  while (!converged) converged = advance(state);
  return state;
}
