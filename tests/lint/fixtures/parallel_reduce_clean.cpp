// Fixture: BL024 clean shape. Never compiled — scanned by lint_test only.
// The sanctioned reduction: every task writes its result to its own
// indexed slot (no shared accumulator, nothing to lock), and the fold
// happens serially in index order after the barrier. Bitwise-identical
// for any thread count.
#include <vector>

#include "util/thread_pool.hpp"

double total_cost_ordered(int n) {
  std::vector<double> slot(static_cast<unsigned>(n), 0.0);
  parallel_for(static_cast<unsigned long>(n),
               [&](unsigned long i) { slot[i] = cost_of(i); });
  double total = 0.0;
  for (double v : slot) total += v;
  return total;
}
