// BL043 fixture: three ambient-entropy shapes — the device itself, an
// engine seeded from it, and the process-global C PRNG.
#include <random>

namespace billcap::workload {

int sample() {
  std::random_device rd;
  std::mt19937 gen(rd());
  const int jitter = rand() % 3;
  return static_cast<int>(gen() % 7) + jitter;
}

}  // namespace billcap::workload
