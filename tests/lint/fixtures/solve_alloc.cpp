// Fixture: BL023 solve-alloc. Never compiled — scanned by lint_test only.
// A solver-shaped translation unit (it opens namespace billcap::lp) whose
// pivot loop grows a container with no reserve() sizing pass anywhere in
// the file and heap-allocates scratch rows per iteration.
#include <cstdlib>
#include <vector>

namespace billcap::lp {

void pivot_until_optimal(std::vector<int>& basis, int entering) {
  for (;;) {
    basis.push_back(entering);
    double* row = new double[8];
    double* copy = static_cast<double*>(std::malloc(8 * sizeof(double)));
    if (row[0] > copy[0]) break;
  }
}

}  // namespace billcap::lp
