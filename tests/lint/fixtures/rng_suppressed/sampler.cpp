// BL043 suppressed fixture: ambient seeding sanctioned with a rationale.
#include <random>

namespace billcap::workload {

int warmup_jitter(unsigned entropy) {
  // billcap-lint: allow(unseeded-rng): warmup-only jitter, the value never reaches serialized state
  std::mt19937 gen(entropy);
  return static_cast<int>(gen() % 7);
}

}  // namespace billcap::workload
