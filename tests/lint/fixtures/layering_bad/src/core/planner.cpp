// BL040 fixture: core reaching *up* into serve inverts the layer DAG —
// the planning layer must not know about the serving surface built on it.
#include "serve/serve_loop.hpp"

namespace billcap::core {

double plan_with_serve_feedback() { return serve::loop_pressure(); }

}  // namespace billcap::core
