// BL042 clean fixture: every exit path speaks the registry; 0 and 1 are
// the universal POSIX pair and stay legal as bare returns.
#include "core/exit_codes.hpp"

int main() {
  const bool broken = false;
  if (broken) return billcap::core::kExitConfigError;
  return 0;
}
