// BL042 clean fixture registry.
#pragma once

namespace billcap::core {

enum ExitCode : int {
  kExitOk = 0,
  kExitFailure = 1,
  kExitConfigError = 2,
};

}  // namespace billcap::core
