// Fixture: BL001 wall-clock. Never compiled — scanned by lint_test only.
#include <chrono>
#include <cstdlib>

double bad_now_s() {
  const auto now = std::chrono::system_clock::now();
  return std::chrono::duration<double>(now.time_since_epoch()).count();
}

int bad_jitter() { return rand() % 100; }
