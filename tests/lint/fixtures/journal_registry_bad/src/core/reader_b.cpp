// BL041 fixture: the bare reader. reader_a has()-guards kAlpha, so a
// checkpoint written before kAlpha existed resumes cleanly there and
// throws here.
#include "core/checkpoint_keys.hpp"

namespace billcap::core {

double load_bare(util::Journal& j) {
  return j.get_double_bits(keys::kAlpha);
}

}  // namespace billcap::core
