// BL041 fixture registry. kGamma is declared but referenced by no scanned
// source — exactly what a key looks like after its writer was deleted.
#pragma once

#include <string_view>

namespace billcap::core::keys {

constexpr std::string_view kAlpha = "alpha";
constexpr std::string_view kGamma = "gamma";

}  // namespace billcap::core::keys
