// BL041 fixture: "beta" is written to the journal but declared nowhere in
// the registry — the state it persists silently vanishes for every reader
// that spells the key through the registry. This is also what the tree
// looks like the day after someone deletes a registered key that a call
// site still spells as a literal.
#include "core/checkpoint_keys.hpp"

namespace billcap::serve {

void persist(util::Journal& j, double bill) {
  j.set_double_bits("beta", bill);
}

}  // namespace billcap::serve
