// BL041 fixture: the absence-tolerant reader. Guarding kAlpha with has()
// here is what makes the bare read in core/reader_b.cpp inconsistent.
#include "core/checkpoint_keys.hpp"

namespace billcap::serve {

double load(util::Journal& j) {
  return j.has(keys::kAlpha) ? j.get_double_bits(keys::kAlpha) : 0.0;
}

}  // namespace billcap::serve
