// Fixture: a correctly annotated hazard scans clean. Never compiled.
#include <chrono>
#include <fstream>

double sanctioned_now_s() {
  // billcap-lint: allow(wall-clock): telemetry only, never checkpointed
  const auto now = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(now.time_since_epoch()).count();
}

void sanctioned_write(const char* tmp) {
  // billcap-lint: allow(raw-write): temp half of a temp+rename commit
  std::ofstream out(tmp);
  out << "committed by rename";
}
