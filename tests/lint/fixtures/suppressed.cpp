// Fixture: a correctly annotated hazard scans clean. Never compiled.
#include <chrono>
#include <fstream>
#include <vector>

double sanctioned_now_s() {
  // billcap-lint: allow(wall-clock): telemetry only, never checkpointed
  const auto now = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(now.time_since_epoch()).count();
}

void sanctioned_write(const char* tmp) {
  // billcap-lint: allow(raw-write): temp half of a temp+rename commit
  std::ofstream out(tmp);
  out << "committed by rename";
}

void sanctioned_buffer(bool running, std::vector<int>& backlog) {
  while (running) {
    // billcap-lint: allow(unbounded-queue): caller admission-bounds backlog
    backlog.push_back(0);
  }
}
