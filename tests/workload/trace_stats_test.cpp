#include "workload/trace_stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/calendar.hpp"
#include "workload/wiki_synth.hpp"

namespace billcap::workload {
namespace {

TEST(TraceStatsTest, RejectsEmptyOrBadOptions) {
  EXPECT_THROW(analyze_trace(Trace{}), std::invalid_argument);
  Trace t({1.0, 2.0});
  TraceStatsOptions options;
  options.spike_threshold = 1.0;
  EXPECT_THROW(analyze_trace(t, options), std::invalid_argument);
}

TEST(TraceStatsTest, BasicMoments) {
  const Trace t({10.0, 20.0, 30.0, 20.0});
  const TraceStats s = analyze_trace(t);
  EXPECT_DOUBLE_EQ(s.mean, 20.0);
  EXPECT_DOUBLE_EQ(s.peak, 30.0);
  EXPECT_DOUBLE_EQ(s.trough, 10.0);
  EXPECT_DOUBLE_EQ(s.peak_to_mean, 1.5);
}

TEST(TraceStatsTest, ConstantTraceHasNoVariation) {
  const Trace t(std::vector<double>(400, 7.0));
  const TraceStats s = analyze_trace(t);
  EXPECT_DOUBLE_EQ(s.hourly_cv2, 0.0);
  EXPECT_EQ(s.spike_hours, 0u);
}

TEST(TraceStatsTest, PerfectWeeklyPatternScoresOne) {
  std::vector<double> arrivals;
  for (std::size_t h = 0; h < 4 * util::kHoursPerWeek; ++h)
    arrivals.push_back(100.0 + static_cast<double>(util::hour_of_week(h)));
  const TraceStats s = analyze_trace(Trace(std::move(arrivals)));
  EXPECT_NEAR(s.weekly_pattern_strength, 1.0, 1e-9);
}

TEST(TraceStatsTest, WhiteNoiseScoresNearZero) {
  // Uncorrelated noise: the weekly profile explains almost nothing.
  std::vector<double> arrivals;
  std::uint64_t state = 12345;
  for (std::size_t h = 0; h < 8 * util::kHoursPerWeek; ++h) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    arrivals.push_back(100.0 + static_cast<double>(state >> 52));
  }
  const TraceStats s = analyze_trace(Trace(std::move(arrivals)));
  EXPECT_LT(s.weekly_pattern_strength, 0.25);
}

TEST(TraceStatsTest, ShortTraceSkipsWeeklyDecomposition) {
  const Trace t(std::vector<double>(100, 5.0));
  EXPECT_DOUBLE_EQ(analyze_trace(t).weekly_pattern_strength, 0.0);
}

TEST(TraceStatsTest, SpikesDetectedAgainstSlotMean) {
  std::vector<double> arrivals(3 * util::kHoursPerWeek, 100.0);
  arrivals[200] = 300.0;  // 3x the slot mean(ish)
  arrivals[400] = 290.0;
  const TraceStats s = analyze_trace(Trace(std::move(arrivals)));
  EXPECT_EQ(s.spike_hours, 2u);
}

TEST(TraceStatsTest, PhaseOffsetAlignsProfile) {
  // Weekly pattern starting mid-week: with the right offset the pattern is
  // fully explained, with the wrong one it is not.
  std::vector<double> arrivals;
  const std::size_t offset = 72;
  for (std::size_t h = 0; h < 4 * util::kHoursPerWeek; ++h)
    arrivals.push_back(util::hour_of_week(offset + h) < 24 ? 500.0 : 100.0);
  const Trace t(std::move(arrivals));
  TraceStatsOptions aligned;
  aligned.phase_offset_hours = offset;
  EXPECT_NEAR(analyze_trace(t, aligned).weekly_pattern_strength, 1.0, 1e-9);
  // Any constant offset relabels slots bijectively, so the fit quality is
  // offset-invariant; the offset matters for *which* slot a value lands in.
  const auto shifted = weekly_profile(t, offset);
  EXPECT_DOUBLE_EQ(shifted[0], 500.0);   // true Monday-00:00 slot is hot
  const auto unshifted = weekly_profile(t, 0);
  EXPECT_DOUBLE_EQ(unshifted[0], 100.0);  // mislabeled slot is cold
}

TEST(TraceStatsTest, SyntheticWikiTraceHasPaperProperties) {
  // The generator must reproduce the documented trace structure: strong
  // weekly pattern, pronounced peak-to-mean, near-Poisson-or-burstier
  // hourly variation, and a few flash crowds.
  const TwoMonthTrace both = paper_two_month_trace(2012);
  TraceStatsOptions options;
  options.phase_offset_hours = 0;
  // The calibrated flash crowds add ~20 % at the spike peak, so detect
  // against a 12 % excursion threshold.
  options.spike_threshold = 1.12;
  const TraceStats s = analyze_trace(both.history, options);
  EXPECT_GT(s.weekly_pattern_strength, 0.75);
  EXPECT_GT(s.peak_to_mean, 1.15);
  EXPECT_GT(s.spike_hours, 0u);
  EXPECT_LT(s.spike_hours, both.history.hours() / 20);
}

TEST(WeeklyProfileTest, RecoversSlotMeans) {
  std::vector<double> arrivals;
  for (std::size_t h = 0; h < 2 * util::kHoursPerWeek; ++h)
    arrivals.push_back(util::hour_of_week(h) == 42 ? 999.0 : 1.0);
  const auto profile = weekly_profile(Trace(std::move(arrivals)));
  EXPECT_DOUBLE_EQ(profile[42], 999.0);
  EXPECT_DOUBLE_EQ(profile[43], 1.0);
}

TEST(WeeklyProfileTest, UnobservedSlotsCarryOverallMean) {
  const Trace t(std::vector<double>(24, 10.0));  // one day only
  const auto profile = weekly_profile(t);
  EXPECT_DOUBLE_EQ(profile[0], 10.0);    // observed
  EXPECT_DOUBLE_EQ(profile[100], 10.0);  // unobserved -> overall mean
}

}  // namespace
}  // namespace billcap::workload
