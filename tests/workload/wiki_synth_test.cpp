#include "workload/wiki_synth.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "util/calendar.hpp"

namespace billcap::workload {
namespace {

TEST(WikiSynthTest, DeterministicInSeed) {
  const WikiSynthParams params;
  const Trace a = generate_wiki_trace(params, 200, 11);
  const Trace b = generate_wiki_trace(params, 200, 11);
  const Trace c = generate_wiki_trace(params, 200, 12);
  for (std::size_t h = 0; h < 200; ++h)
    EXPECT_DOUBLE_EQ(a.at(h), b.at(h));
  bool any_diff = false;
  for (std::size_t h = 0; h < 200; ++h)
    if (a.at(h) != c.at(h)) any_diff = true;
  EXPECT_TRUE(any_diff);
}

TEST(WikiSynthTest, MeanNearConfigured) {
  WikiSynthParams params;
  params.flash_crowd_per_hour = 0.0;  // isolate the regular pattern
  const Trace t = generate_wiki_trace(params, 8 * util::kHoursPerWeek, 3);
  EXPECT_NEAR(t.mean() / params.mean_rate, 1.0, 0.15);
}

TEST(WikiSynthTest, StrongWeeklyPattern) {
  // The paper: "users behavior in the trace shows a very clear weekly
  // pattern". Same hour-of-week across weeks must correlate strongly.
  WikiSynthParams params;
  params.flash_crowd_per_hour = 0.0;
  params.noise_sigma = 0.0;
  const Trace t = generate_wiki_trace(params, 2 * util::kHoursPerWeek, 3);
  for (std::size_t h = 0; h < util::kHoursPerWeek; ++h)
    EXPECT_NEAR(t.at(h), t.at(h + util::kHoursPerWeek), 1e-6);
}

TEST(WikiSynthTest, DiurnalSwingVisible) {
  WikiSynthParams params;
  params.flash_crowd_per_hour = 0.0;
  params.noise_sigma = 0.0;
  const Trace t = generate_wiki_trace(params, 24, 3);
  double peak = 0.0;
  double trough = 1e300;
  for (std::size_t h = 0; h < 24; ++h) {
    peak = std::max(peak, t.at(h));
    trough = std::min(trough, t.at(h));
  }
  EXPECT_GT(peak / trough, 1.2);  // a pronounced day/night swing
}

TEST(WikiSynthTest, WeekendsLighter) {
  WikiSynthParams params;
  params.flash_crowd_per_hour = 0.0;
  params.noise_sigma = 0.0;
  const Trace t = generate_wiki_trace(params, util::kHoursPerWeek, 3);
  const double wed_noon = t.at(2 * 24 + 12);
  const double sat_noon = t.at(5 * 24 + 12);
  EXPECT_NEAR(sat_noon / wed_noon, 1.0 - params.weekend_drop, 1e-9);
}

TEST(WikiSynthTest, FlashCrowdsCreateSpikes) {
  WikiSynthParams calm;
  calm.flash_crowd_per_hour = 0.0;
  WikiSynthParams stormy = calm;
  stormy.flash_crowd_per_hour = 0.05;
  stormy.flash_crowd_magnitude = 1.0;
  const std::size_t hours = 4 * util::kHoursPerWeek;
  const Trace base = generate_wiki_trace(calm, hours, 9);
  const Trace spiky = generate_wiki_trace(stormy, hours, 9);
  EXPECT_GT(spiky.peak(), 1.5 * base.peak());
}

TEST(WikiSynthTest, FlashCrowdsDecayOverHours) {
  WikiSynthParams params;
  params.noise_sigma = 0.0;
  params.flash_crowd_per_hour = 1.0;  // guaranteed start at hour 0
  params.flash_crowd_decay = 0.5;
  params.diurnal_amplitude = 0.0;
  params.weekend_drop = 0.0;
  // With an event every hour the level approaches the geometric-series
  // steady state rather than growing without bound.
  const Trace t = generate_wiki_trace(params, 100, 1);
  const double bound =
      params.mean_rate *
      (1.0 + params.flash_crowd_magnitude / (1.0 - params.flash_crowd_decay));
  for (std::size_t h = 0; h < 100; ++h) EXPECT_LE(t.at(h), bound * 1.01);
}

TEST(WikiSynthTest, Validation) {
  WikiSynthParams params;
  params.mean_rate = 0.0;
  EXPECT_THROW(generate_wiki_trace(params, 10, 1), std::invalid_argument);
  params = {};
  params.diurnal_amplitude = 1.5;
  EXPECT_THROW(generate_wiki_trace(params, 10, 1), std::invalid_argument);
  params = {};
  params.flash_crowd_decay = 1.0;
  EXPECT_THROW(generate_wiki_trace(params, 10, 1), std::invalid_argument);
}

TEST(TwoMonthTraceTest, PaperShapedMonths) {
  const TwoMonthTrace both = paper_two_month_trace(2012);
  EXPECT_EQ(both.history.hours(), 744u);     // 31-day October
  EXPECT_EQ(both.evaluation.hours(), 720u);  // 30-day November
}

TEST(TwoMonthTraceTest, MonthsAreContinuous) {
  // The evaluation month continues the same series (weekly phase intact).
  const TwoMonthTrace both = paper_two_month_trace(7);
  const Trace full = generate_wiki_trace({}, 744 + 720, 7);
  EXPECT_DOUBLE_EQ(both.history.at(0), full.at(0));
  EXPECT_DOUBLE_EQ(both.evaluation.at(0), full.at(744));
  EXPECT_DOUBLE_EQ(both.evaluation.at(719), full.at(1463));
}

}  // namespace
}  // namespace billcap::workload
