#include "workload/trace.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

namespace billcap::workload {
namespace {

TEST(TraceTest, BasicAccessors) {
  const Trace t({10.0, 20.0, 30.0});
  EXPECT_EQ(t.hours(), 3u);
  EXPECT_FALSE(t.empty());
  EXPECT_DOUBLE_EQ(t.at(1), 20.0);
  EXPECT_DOUBLE_EQ(t.peak(), 30.0);
  EXPECT_DOUBLE_EQ(t.total(), 60.0);
  EXPECT_DOUBLE_EQ(t.mean(), 20.0);
}

TEST(TraceTest, EmptyTrace) {
  const Trace t;
  EXPECT_TRUE(t.empty());
  EXPECT_DOUBLE_EQ(t.peak(), 0.0);
  EXPECT_DOUBLE_EQ(t.mean(), 0.0);
}

TEST(TraceTest, RejectsNegativeArrivals) {
  EXPECT_THROW(Trace({1.0, -2.0}), std::invalid_argument);
}

TEST(TraceTest, OutOfRangeAccessThrows) {
  const Trace t({1.0});
  EXPECT_THROW(t.at(1), std::out_of_range);
}

TEST(TraceTest, SliceExtractsWindow) {
  const Trace t({0.0, 1.0, 2.0, 3.0, 4.0});
  const Trace s = t.slice(1, 3);
  EXPECT_EQ(s.hours(), 3u);
  EXPECT_DOUBLE_EQ(s.at(0), 1.0);
  EXPECT_DOUBLE_EQ(s.at(2), 3.0);
  EXPECT_THROW(t.slice(3, 5), std::out_of_range);
}

TEST(TraceTest, ScaledMultiplies) {
  const Trace t({1.0, 2.0});
  const Trace s = t.scaled(10.0);  // the paper's 10 % sample x 10
  EXPECT_DOUBLE_EQ(s.at(0), 10.0);
  EXPECT_DOUBLE_EQ(s.at(1), 20.0);
  EXPECT_THROW(t.scaled(-1.0), std::invalid_argument);
}

TEST(TraceTest, CsvRoundTrip) {
  const auto path =
      (std::filesystem::temp_directory_path() / "billcap_trace_test.csv")
          .string();
  const Trace t({1.5, 2.5, 3.5});
  t.save_csv(path);
  const Trace loaded = Trace::load_csv(path);
  ASSERT_EQ(loaded.hours(), 3u);
  EXPECT_DOUBLE_EQ(loaded.at(2), 3.5);
  std::remove(path.c_str());
}

TEST(PremiumSplitTest, PaperDefaultEightyTwenty) {
  const PremiumSplit split;
  EXPECT_DOUBLE_EQ(split.premium_share(), 0.8);
  EXPECT_DOUBLE_EQ(split.premium(100.0), 80.0);
  EXPECT_DOUBLE_EQ(split.ordinary(100.0), 20.0);
}

TEST(PremiumSplitTest, SharesSumToWhole) {
  const PremiumSplit split(0.65);
  EXPECT_DOUBLE_EQ(split.premium(42.0) + split.ordinary(42.0), 42.0);
}

TEST(PremiumSplitTest, Validation) {
  EXPECT_THROW(PremiumSplit(-0.1), std::invalid_argument);
  EXPECT_THROW(PremiumSplit(1.1), std::invalid_argument);
  EXPECT_NO_THROW(PremiumSplit(0.0));
  EXPECT_NO_THROW(PremiumSplit(1.0));
}

}  // namespace
}  // namespace billcap::workload
