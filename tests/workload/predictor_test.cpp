#include "workload/predictor.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "util/calendar.hpp"
#include "workload/wiki_synth.hpp"

namespace billcap::workload {
namespace {

TEST(HourOfWeekWeightsTest, UniformWithoutFullWeek) {
  const std::vector<double> short_history(100, 5.0);
  const auto w = hour_of_week_weights(short_history);
  ASSERT_EQ(w.size(), util::kHoursPerWeek);
  for (double x : w) EXPECT_DOUBLE_EQ(x, 1.0 / 168.0);
}

TEST(HourOfWeekWeightsTest, WeightsSumToOne) {
  std::vector<double> history;
  for (std::size_t h = 0; h < 3 * util::kHoursPerWeek; ++h)
    history.push_back(1.0 + static_cast<double>(h % 24));
  const auto w = hour_of_week_weights(history, 2);
  EXPECT_NEAR(std::accumulate(w.begin(), w.end(), 0.0), 1.0, 1e-12);
}

TEST(HourOfWeekWeightsTest, RecoversPeriodicPattern) {
  // History exactly periodic: weight proportional to the slot's level.
  std::vector<double> history;
  for (std::size_t h = 0; h < 2 * util::kHoursPerWeek; ++h)
    history.push_back(util::hour_of_week(h) == 10 ? 500.0 : 1.0);
  const auto w = hour_of_week_weights(history, 2);
  EXPECT_GT(w[10], 100 * w[11]);
}

TEST(HourOfWeekWeightsTest, UsesOnlyRecentWeeks) {
  // Older history beyond the window must not influence the weights.
  std::vector<double> history(util::kHoursPerWeek, 1000.0);  // old week
  for (std::size_t h = 0; h < 2 * util::kHoursPerWeek; ++h)
    history.push_back(1.0);  // two recent flat weeks
  const auto w = hour_of_week_weights(history, 2);
  for (double x : w) EXPECT_NEAR(x, 1.0 / 168.0, 1e-9);
}

TEST(HourOfWeekWeightsTest, ZeroWeeksThrows) {
  EXPECT_THROW(hour_of_week_weights(std::vector<double>{}, 0),
               std::invalid_argument);
}

TEST(HourOfWeekWeightsTest, AllZeroHistoryFallsBackToUniform) {
  const std::vector<double> zeros(2 * util::kHoursPerWeek, 0.0);
  const auto w = hour_of_week_weights(zeros, 2);
  for (double x : w) EXPECT_DOUBLE_EQ(x, 1.0 / 168.0);
}

TEST(HistoryPredictorTest, ObserveAndQuery) {
  HistoryPredictor predictor(2);
  EXPECT_FALSE(predictor.has_full_week());
  for (std::size_t h = 0; h < 2 * util::kHoursPerWeek; ++h)
    predictor.observe(util::hour_of_week(h) < 24 ? 100.0 : 50.0);
  EXPECT_TRUE(predictor.has_full_week());
  EXPECT_GT(predictor.weight(5), predictor.weight(30));
}

TEST(HistoryPredictorTest, PredictRateRecoversSlotMean) {
  HistoryPredictor predictor(2);
  std::vector<double> week(util::kHoursPerWeek, 10.0);
  week[42] = 178.0;
  for (int rep = 0; rep < 2; ++rep)
    predictor.observe_all(week);
  EXPECT_NEAR(predictor.predict_rate(42), 178.0, 1e-9);
  EXPECT_NEAR(predictor.predict_rate(43), 10.0, 1e-9);
}

TEST(HistoryPredictorTest, Validation) {
  EXPECT_THROW(HistoryPredictor(0), std::invalid_argument);
  HistoryPredictor predictor(1);
  EXPECT_THROW(predictor.observe(-1.0), std::invalid_argument);
  EXPECT_THROW(predictor.weight(util::kHoursPerWeek), std::out_of_range);
  EXPECT_THROW(predictor.predict_rate(200), std::out_of_range);
}

TEST(HistoryPredictorTest, EmptyPredictsZero) {
  const HistoryPredictor predictor(2);
  EXPECT_DOUBLE_EQ(predictor.predict_rate(0), 0.0);
}

TEST(HistoryPredictorTest, OctoberPredictsNovemberShape) {
  // The end-to-end property the budgeter relies on (Section VI-B): weights
  // learned on the history month rank November's hours correctly.
  const TwoMonthTrace both = paper_two_month_trace(2012);
  HistoryPredictor predictor(2);
  predictor.observe_all(both.history.series());
  // Predicted weights must correlate with the realized hour-of-week means
  // of the evaluation month: check peak vs trough ordering.
  std::vector<double> november_mean(util::kHoursPerWeek, 0.0);
  std::vector<int> counts(util::kHoursPerWeek, 0);
  for (std::size_t h = 0; h < both.evaluation.hours(); ++h) {
    // Evaluation month starts 744 h into the series; preserve phase.
    const std::size_t how = util::hour_of_week(744 + h);
    november_mean[how] += both.evaluation.at(h);
    ++counts[how];
  }
  for (std::size_t s = 0; s < util::kHoursPerWeek; ++s)
    november_mean[s] /= std::max(counts[s], 1);

  const auto peak_slot = static_cast<std::size_t>(
      std::max_element(november_mean.begin(), november_mean.end()) -
      november_mean.begin());
  const auto trough_slot = static_cast<std::size_t>(
      std::min_element(november_mean.begin(), november_mean.end()) -
      november_mean.begin());
  EXPECT_GT(predictor.weight(peak_slot), predictor.weight(trough_slot));
}

}  // namespace
}  // namespace billcap::workload
