#include "queueing/mmm.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace billcap::queueing {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(ErlangCTest, SingleServerEqualsRho) {
  // C(1, a) = rho for M/M/1.
  EXPECT_NEAR(erlang_c(1, 0.3, 1.0), 0.3, 1e-12);
  EXPECT_NEAR(erlang_c(1, 0.9, 1.0), 0.9, 1e-12);
}

TEST(ErlangCTest, ZeroLoadNeverWaits) {
  EXPECT_DOUBLE_EQ(erlang_c(4, 0.0, 1.0), 0.0);
}

TEST(ErlangCTest, SaturationAlwaysWaits) {
  EXPECT_DOUBLE_EQ(erlang_c(4, 4.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(erlang_c(4, 9.0, 1.0), 1.0);
}

TEST(ErlangCTest, KnownTextbookValue) {
  // m = 2, a = 1 (rho = 0.5): C = 1/3.
  EXPECT_NEAR(erlang_c(2, 1.0, 1.0), 1.0 / 3.0, 1e-12);
}

TEST(ErlangCTest, DecreasesWithMoreServers) {
  double prev = 1.0;
  for (std::uint64_t m = 3; m <= 48; m += 3) {
    const double c = erlang_c(m, 2.5, 1.0);
    EXPECT_LT(c, prev);
    prev = c;
  }
}

TEST(ErlangCTest, StableForHugeServerCounts) {
  // The recurrence must not overflow where factorial formulas would.
  const double c = erlang_c(300'000, 250'000.0, 1.0);
  EXPECT_GE(c, 0.0);
  EXPECT_LE(c, 1.0);
}

TEST(Mm1Test, KnownFormula) {
  EXPECT_DOUBLE_EQ(mm1_response_time(0.5, 1.0), 2.0);
  EXPECT_DOUBLE_EQ(mm1_response_time(0.0, 2.0), 0.5);
  EXPECT_EQ(mm1_response_time(1.0, 1.0), kInf);
}

TEST(MmmTest, ReducesToMm1) {
  for (double lambda : {0.1, 0.5, 0.9}) {
    EXPECT_NEAR(mmm_response_time(1, lambda, 1.0),
                mm1_response_time(lambda, 1.0), 1e-12);
  }
}

TEST(MmmTest, UnstableIsInfinite) {
  EXPECT_EQ(mmm_response_time(2, 2.0, 1.0), kInf);
}

TEST(MmmTest, ApproachesServiceTimeAtLightLoad) {
  EXPECT_NEAR(mmm_response_time(50, 0.01, 1.0), 1.0, 1e-6);
}

TEST(MmmMinServersTest, MeetsTargetMinimally) {
  const double lambda = 20.0;
  const double mu = 1.0;
  const double target = 1.2;
  const std::uint64_t m = mmm_min_servers(lambda, mu, target);
  EXPECT_LE(mmm_response_time(m, lambda, mu), target);
  EXPECT_GT(mmm_response_time(m - 1, lambda, mu), target);
}

TEST(MmmMinServersTest, ZeroLoadZeroServers) {
  EXPECT_EQ(mmm_min_servers(0.0, 1.0, 2.0), 0u);
}

TEST(MmmMinServersTest, ImpossibleTargetThrows) {
  EXPECT_THROW(mmm_min_servers(1.0, 1.0, 0.9), std::invalid_argument);
}

}  // namespace
}  // namespace billcap::queueing
