#include "queueing/des.hpp"

#include <gtest/gtest.h>

#include "queueing/ggm.hpp"
#include "queueing/mmm.hpp"

namespace billcap::queueing {
namespace {

TEST(DesTest, DistributionSelection) {
  EXPECT_EQ(distribution_for_cv2(0.0), Distribution::kDeterministic);
  EXPECT_EQ(distribution_for_cv2(1.0), Distribution::kExponential);
  EXPECT_EQ(distribution_for_cv2(0.5), Distribution::kErlang);
  EXPECT_EQ(distribution_for_cv2(4.0), Distribution::kHyperexponential);
}

TEST(DesTest, Validation) {
  DesConfig config;
  config.servers = 0;
  EXPECT_THROW(simulate_ggm(config), std::invalid_argument);
  config = {};
  config.arrival_rate = 2.0;  // >= 1 server x rate 1.0
  EXPECT_THROW(simulate_ggm(config), std::invalid_argument);
  config = {};
  config.service_rate = -1.0;
  EXPECT_THROW(simulate_ggm(config), std::invalid_argument);
}

TEST(DesTest, DeterministicLightLoadHasNoWaiting) {
  DesConfig config;
  config.arrival_rate = 0.5;
  config.service_rate = 1.0;
  config.arrival_cv2 = 0.0;
  config.service_cv2 = 0.0;
  config.warmup = 100;
  config.measured = 10'000;
  const DesResult r = simulate_ggm(config);
  // D/D/1 at rho = 0.5: never any queueing.
  EXPECT_NEAR(r.mean_wait, 0.0, 1e-9);
  EXPECT_NEAR(r.mean_response, 1.0, 1e-9);
}

TEST(DesTest, Mm1MatchesExactFormula) {
  DesConfig config;
  config.arrival_rate = 0.7;
  config.service_rate = 1.0;
  config.seed = 42;
  const DesResult r = simulate_ggm(config);
  const double exact = mm1_response_time(0.7, 1.0);  // 1/(1-0.7) = 3.333
  EXPECT_NEAR(r.mean_response / exact, 1.0, 0.05);
  EXPECT_NEAR(r.utilization, 0.7, 0.02);
}

TEST(DesTest, MmmMatchesErlangC) {
  DesConfig config;
  config.servers = 8;
  config.arrival_rate = 6.4;  // rho = 0.8
  config.service_rate = 1.0;
  config.seed = 7;
  const DesResult r = simulate_ggm(config);
  const double exact = mmm_response_time(8, 6.4, 1.0);
  EXPECT_NEAR(r.mean_response / exact, 1.0, 0.05);
}

TEST(DesTest, MdmBeatsMmmOnWaiting) {
  // Deterministic service halves the waiting time vs exponential
  // (Pollaczek-Khinchine: factor (1 + cv2)/2).
  DesConfig exponential;
  exponential.servers = 4;
  exponential.arrival_rate = 3.4;
  exponential.service_rate = 1.0;
  exponential.seed = 9;
  DesConfig deterministic = exponential;
  deterministic.service_cv2 = 0.0;
  const DesResult rm = simulate_ggm(exponential);
  const DesResult rd = simulate_ggm(deterministic);
  EXPECT_LT(rd.mean_wait, rm.mean_wait);
  EXPECT_NEAR(rd.mean_wait / rm.mean_wait, 0.5, 0.12);
}

TEST(DesTest, BurstyArrivalsWaitLonger) {
  DesConfig smooth;
  smooth.servers = 4;
  smooth.arrival_rate = 3.2;
  smooth.service_rate = 1.0;
  smooth.seed = 11;
  DesConfig bursty = smooth;
  bursty.arrival_cv2 = 4.0;
  EXPECT_GT(simulate_ggm(bursty).mean_wait, simulate_ggm(smooth).mean_wait);
}

TEST(DesTest, AllenCunneenTracksSimulationInHeavyTraffic) {
  // The paper's eq. 3 regime: rho -> 1 (the local optimizer keeps the
  // minimum number of servers busy, so P_wait -> 1 and the simplified
  // formula's "replace P_wait by 1" step is justified). At rho = 0.99 the
  // approximation should land within ~25 % of the empirical response time
  // across traffic mixes; at lower rho it is *conservative* (over-
  // estimates), which is the safe direction for server provisioning.
  for (double cv2 : {0.5, 1.0, 2.0}) {
    DesConfig config;
    config.servers = 16;
    config.service_rate = 1.0;
    config.arrival_rate = 0.99 * 16.0;
    config.arrival_cv2 = cv2;
    config.service_cv2 = cv2;
    config.seed = 1234;
    config.warmup = 100'000;
    config.measured = 900'000;
    const DesResult sim = simulate_ggm(config);
    const GgmParams params{1.0, cv2, cv2};
    const double approx = allen_cunneen_response_time(
        params, 16.0, config.arrival_rate);
    EXPECT_NEAR(approx / sim.mean_response, 1.0, 0.25) << "cv2 " << cv2;
    // Conservative at moderate load: never *under*-provisions.
    const DesConfig moderate = [&] {
      DesConfig c = config;
      c.arrival_rate = 0.9 * 16.0;
      c.warmup = 20'000;
      c.measured = 200'000;
      return c;
    }();
    const DesResult msim = simulate_ggm(moderate);
    EXPECT_GT(allen_cunneen_response_time(params, 16.0, moderate.arrival_rate),
              0.9 * msim.mean_response)
        << "cv2 " << cv2;
  }
}

TEST(DesTest, FullAllenCunneenTracksModerateTraffic) {
  DesConfig config;
  config.servers = 8;
  config.service_rate = 1.0;
  config.arrival_rate = 0.7 * 8.0;
  config.seed = 5;
  const DesResult sim = simulate_ggm(config);
  const double approx =
      allen_cunneen_full_response_time({1.0, 1.0, 1.0}, 8, config.arrival_rate);
  EXPECT_NEAR(approx / sim.mean_response, 1.0, 0.15);
}

TEST(DesTest, DeterministicSeedsReproduce) {
  DesConfig config;
  config.arrival_rate = 0.6;
  config.seed = 77;
  config.measured = 50'000;
  const DesResult a = simulate_ggm(config);
  const DesResult b = simulate_ggm(config);
  EXPECT_DOUBLE_EQ(a.mean_response, b.mean_response);
  config.seed = 78;
  const DesResult c = simulate_ggm(config);
  EXPECT_NE(a.mean_response, c.mean_response);
}

TEST(DesTest, ErlangServicesReduceVariance) {
  DesConfig config;
  config.servers = 2;
  config.arrival_rate = 1.6;
  config.service_rate = 1.0;
  config.service_cv2 = 0.25;  // Erlang-4
  config.seed = 3;
  const DesResult erlang = simulate_ggm(config);
  config.service_cv2 = 1.0;
  const DesResult expo = simulate_ggm(config);
  EXPECT_LT(erlang.mean_wait, expo.mean_wait);
}

}  // namespace
}  // namespace billcap::queueing
