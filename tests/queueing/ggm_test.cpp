#include "queueing/ggm.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <tuple>

#include "queueing/mmm.hpp"

namespace billcap::queueing {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

GgmParams markovian(double mu) { return GgmParams{mu, 1.0, 1.0}; }

TEST(AllenCunneenTest, ReducesToServiceTimeAtZeroLoad) {
  EXPECT_DOUBLE_EQ(allen_cunneen_response_time(markovian(4.0), 10.0, 0.0),
                   0.25);
}

TEST(AllenCunneenTest, UnstableReturnsInfinity) {
  EXPECT_EQ(allen_cunneen_response_time(markovian(1.0), 5.0, 5.0), kInf);
  EXPECT_EQ(allen_cunneen_response_time(markovian(1.0), 5.0, 6.0), kInf);
  EXPECT_EQ(allen_cunneen_response_time(markovian(1.0), 5.0, -1.0), kInf);
}

TEST(AllenCunneenTest, SimplifiedFormulaMatchesPaperEq3) {
  // R = 1/mu + K / (n mu - lambda), K = (CA2 + CB2)/2.
  const GgmParams params{2.0, 0.8, 1.4};
  const double r = allen_cunneen_response_time(params, 8.0, 10.0);
  EXPECT_DOUBLE_EQ(r, 0.5 + (0.5 * (0.8 + 1.4)) / (16.0 - 10.0));
}

TEST(AllenCunneenTest, MonotoneIncreasingInLoad) {
  const GgmParams params = markovian(3.0);
  double prev = 0.0;
  for (double lambda = 0.0; lambda < 29.0; lambda += 1.0) {
    const double r = allen_cunneen_response_time(params, 10.0, lambda);
    EXPECT_GT(r, prev);
    prev = r;
  }
}

TEST(AllenCunneenTest, MonotoneDecreasingInServers) {
  const GgmParams params = markovian(3.0);
  double prev = kInf;
  for (double n = 4.0; n <= 64.0; n *= 2.0) {
    const double r = allen_cunneen_response_time(params, n, 10.0);
    EXPECT_LT(r, prev);
    prev = r;
  }
}

TEST(AllenCunneenTest, SimplifiedIsExactForMm1HeavyTraffic) {
  // For m = 1 and Markovian traffic the simplified formula gives
  // 1/mu + 1/(mu - lambda), vs exact M/M/1 R = 1/(mu - lambda); the two
  // converge as rho -> 1 (relative error -> the vanishing 1/mu share).
  const double mu = 1.0;
  for (double rho : {0.9, 0.99, 0.999}) {
    const double lambda = rho * mu;
    const double approx =
        allen_cunneen_response_time(markovian(mu), 1.0, lambda);
    const double exact = mm1_response_time(lambda, mu);
    EXPECT_NEAR(approx / exact, 1.0, 1.5 * (1.0 - rho));
  }
}

TEST(AllenCunneenTest, FullFormulaTracksErlangCForMarkovian) {
  // With CA2 = CB2 = 1 the full Allen-Cunneen approximation should stay
  // within ~15% of the exact M/M/m response time in heavy traffic.
  const double mu = 2.0;
  for (std::uint64_t m : {2ull, 8ull, 32ull}) {
    for (double rho : {0.8, 0.9, 0.95}) {
      const double lambda = rho * static_cast<double>(m) * mu;
      const double approx =
          allen_cunneen_full_response_time(markovian(mu), m, lambda);
      const double exact = mmm_response_time(m, lambda, mu);
      EXPECT_NEAR(approx / exact, 1.0, 0.15)
          << "m=" << m << " rho=" << rho;
    }
  }
}

TEST(ServerSizingTest, ZeroArrivalsNeedZeroServers) {
  EXPECT_EQ(min_servers_for_response_time(markovian(2.0), 0.0, 1.0), 0u);
}

TEST(ServerSizingTest, MeetsTargetAndIsMinimal) {
  const GgmParams params{2.0, 1.0, 1.2};
  const double target = 0.75;
  for (double lambda : {1.0, 5.0, 42.0, 1000.0, 123456.0}) {
    const std::uint64_t n =
        min_servers_for_response_time(params, lambda, target);
    EXPECT_LE(allen_cunneen_response_time(params, static_cast<double>(n),
                                          lambda),
              target + 1e-9)
        << "lambda " << lambda;
    if (n > 0) {
      EXPECT_GT(allen_cunneen_response_time(params, static_cast<double>(n - 1),
                                            lambda),
                target - 1e-9)
          << "lambda " << lambda;
    }
  }
}

TEST(ServerSizingTest, TighterTargetNeedsMoreServers) {
  const GgmParams params = markovian(2.0);
  const std::uint64_t loose =
      min_servers_for_response_time(params, 100.0, 2.0);
  const std::uint64_t tight =
      min_servers_for_response_time(params, 100.0, 0.51);
  EXPECT_GT(tight, loose);
}

TEST(ServerSizingTest, ImpossibleTargetThrows) {
  // Response time can never beat the bare service time 1/mu.
  EXPECT_THROW(
      min_servers_for_response_time(markovian(2.0), 10.0, 0.5),
      std::invalid_argument);
  EXPECT_THROW(
      min_servers_for_response_time(markovian(2.0), 10.0, 0.4),
      std::invalid_argument);
}

TEST(ServerSizingTest, FractionalFormIsAffine) {
  const GgmParams params{2.0, 1.0, 1.0};
  const double target = 1.0;
  const auto c = server_requirement_coefficients(params, target);
  for (double lambda : {1.0, 10.0, 500.0}) {
    EXPECT_NEAR(
        fractional_servers_for_response_time(params, lambda, target),
        c.slope * lambda + c.intercept, 1e-12);
  }
}

TEST(ServerSizingTest, CoefficientsMatchAlgebra) {
  // slope = 1/mu;  intercept = K / (mu (Rs - 1/mu)).
  const GgmParams params{4.0, 0.5, 1.5};
  const auto c = server_requirement_coefficients(params, 2.0);
  EXPECT_DOUBLE_EQ(c.slope, 0.25);
  EXPECT_DOUBLE_EQ(c.intercept, 1.0 / (4.0 * (2.0 - 0.25)));
}

TEST(ServerSizingTest, CeilingNeverUndershoots) {
  const GgmParams params{3.0, 1.1, 0.9};
  const double target = 0.8;
  for (double lambda = 0.5; lambda < 200.0; lambda += 7.3) {
    const double frac =
        fractional_servers_for_response_time(params, lambda, target);
    const std::uint64_t n =
        min_servers_for_response_time(params, lambda, target);
    EXPECT_GE(static_cast<double>(n) + 1e-9, frac);
    EXPECT_LT(static_cast<double>(n), frac + 1.0);
  }
}

TEST(GgmParamsTest, InvalidParamsThrow) {
  EXPECT_THROW(fractional_servers_for_response_time({0.0, 1.0, 1.0}, 1.0, 1.0),
               std::invalid_argument);
  EXPECT_THROW(fractional_servers_for_response_time({1.0, -0.1, 1.0}, 1.0, 2.0),
               std::invalid_argument);
  EXPECT_THROW(fractional_servers_for_response_time({1.0, 1.0, 1.0}, -1.0, 2.0),
               std::invalid_argument);
}

/// Property sweep: sizing is monotone non-decreasing in lambda across a
/// range of service rates and variability mixes.
class SizingMonotoneTest
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(SizingMonotoneTest, MonotoneInArrivalRate) {
  const auto [mu, cv2] = GetParam();
  const GgmParams params{mu, cv2, cv2};
  const double target = 2.0 / mu;  // always feasible (> 1/mu)
  std::uint64_t prev = 0;
  for (double lambda = 0.0; lambda < 50.0 * mu; lambda += mu) {
    const std::uint64_t n =
        min_servers_for_response_time(params, lambda, target);
    EXPECT_GE(n, prev) << "mu=" << mu << " cv2=" << cv2;
    prev = n;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SizingMonotoneTest,
    ::testing::Combine(::testing::Values(0.5, 1.0, 2.0, 8.0),
                       ::testing::Values(0.25, 1.0, 4.0)));

}  // namespace
}  // namespace billcap::queueing
