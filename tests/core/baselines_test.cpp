#include "core/baselines.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "core/cost_minimizer.hpp"
#include "core/cost_model.hpp"
#include "datacenter/catalog.hpp"
#include "market/pricing_policy.hpp"

namespace billcap::core {
namespace {

class BaselinesTest : public ::testing::Test {
 protected:
  const std::vector<datacenter::DataCenter> sites_ =
      datacenter::paper_datacenters();
  const std::vector<market::PricingPolicy> policies_ =
      market::paper_policies(1);
  const std::vector<double> demand_ = {228.0, 182.0, 172.0};
};

TEST_F(BaselinesTest, BelievedModelsAreFlatPriced) {
  const auto models =
      min_only_site_models(sites_, policies_, MinOnlyPriceModel::kAverage);
  ASSERT_EQ(models.size(), 3u);
  for (std::size_t i = 0; i < models.size(); ++i) {
    // One price level only: the price-taker assumption.
    EXPECT_EQ(models[i].cost_curve.num_segments(), 1u);
    EXPECT_NEAR(models[i].cost_curve.slopes[0], policies_[i].average_price(),
                1e-9);
  }
}

TEST_F(BaselinesTest, LowBelievesTheLowestStep) {
  const auto models =
      min_only_site_models(sites_, policies_, MinOnlyPriceModel::kLow);
  for (std::size_t i = 0; i < models.size(); ++i)
    EXPECT_NEAR(models[i].cost_curve.slopes[0], policies_[i].min_price(),
                1e-9);
}

TEST_F(BaselinesTest, BelievesServerOnlyPower) {
  const auto models =
      min_only_site_models(sites_, policies_, MinOnlyPriceModel::kAverage);
  for (std::size_t i = 0; i < models.size(); ++i) {
    const auto full = sites_[i].affine_power();
    const auto servers = sites_[i].affine_server_power_only();
    EXPECT_NEAR(models[i].power_slope, servers.slope_mw_per_request_hour,
                1e-15);
    EXPECT_LT(models[i].power_slope, full.slope_mw_per_request_hour);
  }
}

TEST_F(BaselinesTest, EnforcesTruePowerCap) {
  // Despite the blind cost model, per-site power capping is measured:
  // the believed lambda_max keeps the *true* power within the cap.
  const auto models =
      min_only_site_models(sites_, policies_, MinOnlyPriceModel::kLow);
  for (std::size_t i = 0; i < models.size(); ++i) {
    const double true_power = sites_[i].power_mw(models[i].lambda_max);
    EXPECT_LE(true_power, sites_[i].spec().power_cap_mw * 1.001);
  }
}

TEST_F(BaselinesTest, ServesTheFullWorkload) {
  const double lambda = 8e11;
  for (auto model : {MinOnlyPriceModel::kAverage, MinOnlyPriceModel::kLow}) {
    const AllocationResult r =
        min_only_allocate(sites_, policies_, lambda, model);
    ASSERT_TRUE(r.ok());
    EXPECT_NEAR(r.total_lambda / lambda, 1.0, 1e-6);
  }
}

TEST_F(BaselinesTest, UnderestimatesItsOwnBill) {
  // Both limitations bite: the belief is far below the ground truth.
  const double lambda = 8e11;
  const AllocationResult r = min_only_allocate(
      sites_, policies_, lambda, MinOnlyPriceModel::kLow);
  ASSERT_TRUE(r.ok());
  const GroundTruth truth =
      evaluate_allocation(sites_, policies_, demand_, r.lambda_vector());
  EXPECT_LT(r.predicted_cost, 0.8 * truth.total_cost);
}

TEST_F(BaselinesTest, NeverBeatsCostCappingAtGroundTruth) {
  // The paper's headline: the price-taker baseline pays more under the
  // real locational prices (Figure 3).
  for (double lambda : {4e11, 8e11, 1.2e12}) {
    const AllocationResult cc =
        minimize_cost(sites_, policies_, demand_, lambda);
    ASSERT_TRUE(cc.ok());
    const double cc_truth =
        evaluate_allocation(sites_, policies_, demand_, cc.lambda_vector())
            .total_cost;
    for (auto model : {MinOnlyPriceModel::kAverage, MinOnlyPriceModel::kLow}) {
      const AllocationResult mo =
          min_only_allocate(sites_, policies_, lambda, model);
      ASSERT_TRUE(mo.ok());
      const double mo_truth =
          evaluate_allocation(sites_, policies_, demand_, mo.lambda_vector())
              .total_cost;
      EXPECT_LE(cc_truth, mo_truth * 1.002)
          << "lambda " << lambda << " model " << static_cast<int>(model);
    }
  }
}

TEST_F(BaselinesTest, SizeMismatchThrows) {
  const std::vector<market::PricingPolicy> two = {policies_[0], policies_[1]};
  EXPECT_THROW(
      min_only_site_models(sites_, two, MinOnlyPriceModel::kAverage),
      std::invalid_argument);
}

}  // namespace
}  // namespace billcap::core
