#include "core/cost_model.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "datacenter/catalog.hpp"
#include "market/pricing_policy.hpp"

namespace billcap::core {
namespace {

class CostModelTest : public ::testing::Test {
 protected:
  const std::vector<datacenter::DataCenter> sites_ =
      datacenter::paper_datacenters();
  const std::vector<market::PricingPolicy> policies_ =
      market::paper_policies(1);
  const std::vector<double> demand_ = {190.0, 180.0, 170.0};
};

TEST_F(CostModelTest, ZeroAllocationZeroCost) {
  const GroundTruth truth = evaluate_allocation(
      sites_, policies_, demand_, std::vector<double>{0.0, 0.0, 0.0});
  EXPECT_DOUBLE_EQ(truth.total_cost, 0.0);
  EXPECT_DOUBLE_EQ(truth.total_power_mw, 0.0);
  for (const auto& site : truth.sites) {
    EXPECT_EQ(site.servers, 0u);
    EXPECT_DOUBLE_EQ(site.cost, 0.0);
  }
}

TEST_F(CostModelTest, SizeMismatchThrows) {
  EXPECT_THROW(evaluate_allocation(sites_, policies_, demand_,
                                   std::vector<double>{1.0, 2.0}),
               std::invalid_argument);
  EXPECT_THROW(evaluate_allocation(sites_, policies_,
                                   std::vector<double>{1.0},
                                   std::vector<double>{0.0, 0.0, 0.0}),
               std::invalid_argument);
}

TEST_F(CostModelTest, BillingUsesLocationalPrice) {
  const std::vector<double> lambda = {2e11, 0.0, 0.0};
  const GroundTruth truth =
      evaluate_allocation(sites_, policies_, demand_, lambda);
  const auto& dc1 = truth.sites[0];
  const double expected_price =
      policies_[0].price_at(dc1.power.total_mw() + demand_[0]);
  EXPECT_DOUBLE_EQ(dc1.price_per_mwh, expected_price);
  EXPECT_NEAR(dc1.cost, expected_price * dc1.power.total_mw() + dc1.penalty,
              1e-9);
}

TEST_F(CostModelTest, PriceMakerEffectVisibleInBilling) {
  // Enough data-center load pushes the location across a step: average
  // $/MWh rises with the site's own draw.
  const GroundTruth small = evaluate_allocation(
      sites_, policies_, demand_, std::vector<double>{5e10, 0.0, 0.0});
  const GroundTruth large = evaluate_allocation(
      sites_, policies_, demand_, std::vector<double>{4.5e11, 0.0, 0.0});
  EXPECT_GT(large.sites[0].price_per_mwh, small.sites[0].price_per_mwh);
}

TEST_F(CostModelTest, TotalsAreSums) {
  const std::vector<double> lambda = {1e11, 8e10, 2e11};
  const GroundTruth truth =
      evaluate_allocation(sites_, policies_, demand_, lambda);
  double cost = 0.0;
  double power = 0.0;
  for (const auto& site : truth.sites) {
    cost += site.cost;
    power += site.power.total_mw();
  }
  EXPECT_NEAR(truth.total_cost, cost, 1e-9);
  EXPECT_NEAR(truth.total_power_mw, power, 1e-9);
}

TEST_F(CostModelTest, NoPenaltyWithinCap) {
  const GroundTruth truth = evaluate_allocation(
      sites_, policies_, demand_, std::vector<double>{1e11, 1e11, 1e11});
  for (const auto& site : truth.sites) {
    EXPECT_DOUBLE_EQ(site.overage_mw, 0.0);
    EXPECT_DOUBLE_EQ(site.penalty, 0.0);
  }
  EXPECT_DOUBLE_EQ(truth.total_penalty, 0.0);
}

TEST_F(CostModelTest, OverageTriggersPenalty) {
  // Load the first site up to full server capacity: its exact draw exceeds
  // the supplier cap, and the overage is billed at the penalty multiple.
  const double lambda_max = sites_[0].max_requests_per_hour();
  const GroundTruth truth = evaluate_allocation(
      sites_, policies_, demand_, std::vector<double>{lambda_max, 0.0, 0.0});
  const auto& dc1 = truth.sites[0];
  ASSERT_GT(dc1.power.total_mw(), sites_[0].spec().power_cap_mw);
  EXPECT_GT(dc1.overage_mw, 0.0);
  EXPECT_NEAR(dc1.penalty,
              kPowerCapPenaltyMultiplier * dc1.price_per_mwh * dc1.overage_mw,
              1e-9);
  EXPECT_GT(truth.total_penalty, 0.0);
}

TEST_F(CostModelTest, ServersMatchLocalOptimizer) {
  const std::vector<double> lambda = {1e11, 5e10, 2e11};
  const GroundTruth truth =
      evaluate_allocation(sites_, policies_, demand_, lambda);
  for (std::size_t i = 0; i < sites_.size(); ++i)
    EXPECT_EQ(truth.sites[i].servers, sites_[i].servers_for(lambda[i]));
}

TEST_F(CostModelTest, FlatPolicyBillsUniformPrice) {
  const std::vector<market::PricingPolicy> flat = {
      market::PricingPolicy::flat(20.0), market::PricingPolicy::flat(20.0),
      market::PricingPolicy::flat(20.0)};
  const GroundTruth truth = evaluate_allocation(
      sites_, flat, demand_, std::vector<double>{1e11, 1e11, 1e11});
  for (const auto& site : truth.sites)
    EXPECT_DOUBLE_EQ(site.price_per_mwh, 20.0);
}

}  // namespace
}  // namespace billcap::core
