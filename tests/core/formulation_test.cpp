#include "core/formulation.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "datacenter/catalog.hpp"
#include "lp/simplex.hpp"
#include "market/pricing_policy.hpp"

namespace billcap::core {
namespace {

class FormulationTest : public ::testing::Test {
 protected:
  const std::vector<datacenter::DataCenter> sites_ =
      datacenter::paper_datacenters();
  const std::vector<market::PricingPolicy> policies_ =
      market::paper_policies(1);
};

TEST_F(FormulationTest, SiteModelBasics) {
  const SiteModel m = make_site_model(sites_[0], policies_[0], 200.0, true);
  EXPECT_GT(m.lambda_max, 0.0);
  EXPECT_GT(m.power_slope, 0.0);
  EXPECT_GT(m.power_intercept_mw, 0.0);
  // Safety margin keeps the believed cap strictly below the supplier cap.
  EXPECT_LT(m.power_cap_mw, sites_[0].spec().power_cap_mw);
  EXPECT_GE(m.cost_curve.num_segments(), 1u);
  EXPECT_TRUE(m.power_segments.empty());  // homogeneous site
}

TEST_F(FormulationTest, LambdaMaxRespectsBothLimits) {
  const SiteModel m = make_site_model(sites_[0], policies_[0], 200.0, true);
  // At lambda_max, believed power is within the (margined) cap...
  const double p = m.power_slope * m.lambda_max + m.power_intercept_mw;
  EXPECT_LE(p, m.power_cap_mw + 1e-9);
  // ...and the server capacity is respected.
  EXPECT_LE(m.lambda_max, sites_[0].max_requests_per_hour() + 1.0);
}

TEST_F(FormulationTest, ServerOnlyBeliefShrinksSlope) {
  const SiteModel full = make_site_model(sites_[1], policies_[1], 180.0, true);
  const SiteModel blind =
      make_site_model(sites_[1], policies_[1], 180.0, false);
  EXPECT_LT(blind.power_slope, full.power_slope);
  EXPECT_LT(blind.power_intercept_mw, full.power_intercept_mw);
}

TEST_F(FormulationTest, CostCurveCapTracksBackgroundDemand) {
  // With d = 0 the whole <=42 MW site stays in tier 1: a single cheap
  // segment. Near the thresholds the site's own draw spans several tiers;
  // beyond the last threshold only the top price remains.
  const SiteModel tier1 = make_site_model(sites_[0], policies_[0], 0.0, true);
  EXPECT_EQ(tier1.cost_curve.num_segments(), 1u);
  EXPECT_DOUBLE_EQ(tier1.cost_curve.slopes.front(),
                   policies_[0].prices_per_mwh().front());
  const SiteModel straddling =
      make_site_model(sites_[0], policies_[0], 190.0, true);
  EXPECT_GE(straddling.cost_curve.num_segments(), 2u);
  const SiteModel heavy =
      make_site_model(sites_[0], policies_[0], 310.0, true);
  EXPECT_EQ(heavy.cost_curve.num_segments(), 1u);
  EXPECT_DOUBLE_EQ(heavy.cost_curve.slopes.front(),
                   policies_[0].prices_per_mwh().back());
}

TEST_F(FormulationTest, BuildCreatesPerSiteBlocks) {
  std::vector<SiteModel> models;
  for (std::size_t i = 0; i < sites_.size(); ++i)
    models.push_back(make_site_model(sites_[i], policies_[i], 180.0, true));
  const AllocationFormulation f = build_allocation_formulation(models);
  ASSERT_EQ(f.vars.size(), 3u);
  for (const SiteVars& v : f.vars) {
    EXPECT_GE(v.lambda, 0);
    EXPECT_GE(v.active, 0);
    EXPECT_GE(v.power, 0);
    EXPECT_FALSE(v.cost.selectors.empty());
  }
  EXPECT_TRUE(f.problem.has_integers());
}

TEST_F(FormulationTest, DecodeRoundTripsLambdaScaling) {
  std::vector<SiteModel> models = {
      make_site_model(sites_[0], policies_[0], 180.0, true)};
  AllocationFormulation f = build_allocation_formulation(models);
  f.problem.add_constraint("demand", {{f.vars[0].lambda, 1.0}},
                           lp::Relation::kEqual, 120.0);  // 120 Greq/h
  const lp::Solution solution = lp::solve_milp(f.problem);
  ASSERT_TRUE(solution.ok());
  const AllocationResult r = decode_solution(f, models, solution);
  EXPECT_NEAR(r.sites[0].lambda, 120.0 * kLambdaScale, 1e3);
  EXPECT_TRUE(r.sites[0].active);
  EXPECT_NEAR(r.predicted_cost, r.sites[0].cost, 1e-9);
}

TEST_F(FormulationTest, DecodeFailedSolveCarriesStatus) {
  std::vector<SiteModel> models = {
      make_site_model(sites_[0], policies_[0], 180.0, true)};
  const AllocationFormulation f = build_allocation_formulation(models);
  lp::Solution failed;
  failed.status = lp::SolveStatus::kInfeasible;
  const AllocationResult r = decode_solution(f, models, failed);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.sites.empty());
}

TEST_F(FormulationTest, SystemCapacityIsSumOfLambdaMax) {
  std::vector<SiteModel> models;
  double expected = 0.0;
  for (std::size_t i = 0; i < sites_.size(); ++i) {
    models.push_back(make_site_model(sites_[i], policies_[i], 180.0, true));
    expected += models.back().lambda_max;
  }
  EXPECT_DOUBLE_EQ(system_capacity(models), expected);
}

TEST_F(FormulationTest, LambdaVectorMatchesSites) {
  AllocationResult r;
  r.sites = {SiteOutcome{1e10, 2.0, 30.0, true},
             SiteOutcome{0.0, 0.0, 0.0, false}};
  const std::vector<double> v = r.lambda_vector();
  ASSERT_EQ(v.size(), 2u);
  EXPECT_DOUBLE_EQ(v[0], 1e10);
  EXPECT_DOUBLE_EQ(v[1], 0.0);
}

TEST_F(FormulationTest, InactiveSiteDrawsNoPower) {
  // Force lambda = 0 at one site while requiring the other to serve load:
  // the inactive site's activation binary can stay 0 and its power 0.
  std::vector<SiteModel> models;
  for (int i = 0; i < 2; ++i)
    models.push_back(make_site_model(sites_[static_cast<std::size_t>(i)],
                                     policies_[static_cast<std::size_t>(i)],
                                     180.0, true));
  AllocationFormulation f = build_allocation_formulation(models);
  f.problem.add_constraint("demand", {{f.vars[0].lambda, 1.0}},
                           lp::Relation::kEqual, 100.0);
  f.problem.add_constraint("idle", {{f.vars[1].lambda, 1.0}},
                           lp::Relation::kEqual, 0.0);
  const lp::Solution solution = lp::solve_milp(f.problem);
  ASSERT_TRUE(solution.ok());
  const AllocationResult r = decode_solution(f, models, solution);
  EXPECT_DOUBLE_EQ(r.sites[1].lambda, 0.0);
  EXPECT_NEAR(r.sites[1].power_mw, 0.0, 1e-6);
  EXPECT_NEAR(r.sites[1].cost, 0.0, 1e-6);
}

}  // namespace
}  // namespace billcap::core
