#include "core/hierarchical.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "core/cost_model.hpp"
#include "datacenter/catalog.hpp"
#include "market/pricing_policy.hpp"

namespace billcap::core {
namespace {

class HierarchicalTest : public ::testing::Test {
 protected:
  // A six-site network: the paper catalog replicated across two regions.
  HierarchicalTest() {
    const auto base_sites = datacenter::paper_datacenters();
    const auto base_policies = market::paper_policies(1);
    for (int rep = 0; rep < 2; ++rep) {
      for (std::size_t i = 0; i < base_sites.size(); ++i) {
        sites_.push_back(base_sites[i]);
        policies_.push_back(base_policies[i]);
        demand_.push_back(170.0 + 25.0 * rep + 10.0 * static_cast<double>(i));
      }
    }
  }

  std::vector<datacenter::DataCenter> sites_;
  std::vector<market::PricingPolicy> policies_;
  std::vector<double> demand_;
};

TEST(ContiguousRegionsTest, PartitionsEvenly) {
  const auto regions = contiguous_regions(6, 3);
  ASSERT_EQ(regions.size(), 2u);
  EXPECT_EQ(regions[0].site_indices, (std::vector<std::size_t>{0, 1, 2}));
  EXPECT_EQ(regions[1].site_indices, (std::vector<std::size_t>{3, 4, 5}));
}

TEST(ContiguousRegionsTest, HandlesRemainder) {
  const auto regions = contiguous_regions(7, 3);
  ASSERT_EQ(regions.size(), 3u);
  EXPECT_EQ(regions[2].site_indices.size(), 1u);
  EXPECT_THROW(contiguous_regions(5, 0), std::invalid_argument);
}

TEST_F(HierarchicalTest, ConstructorValidation) {
  EXPECT_NO_THROW(
      HierarchicalCapper(sites_, policies_, contiguous_regions(6, 3)));
  // Uncovered site.
  std::vector<Region> missing = {{"r0", {0, 1, 2}}, {"r1", {3, 4}}};
  EXPECT_THROW(HierarchicalCapper(sites_, policies_, missing),
               std::invalid_argument);
  // Duplicate site.
  std::vector<Region> duplicate = {{"r0", {0, 1, 2, 3}}, {"r1", {3, 4, 5}}};
  EXPECT_THROW(HierarchicalCapper(sites_, policies_, duplicate),
               std::invalid_argument);
  // Empty region.
  std::vector<Region> empty = {{"r0", {0, 1, 2, 3, 4, 5}}, {"r1", {}}};
  EXPECT_THROW(HierarchicalCapper(sites_, policies_, empty),
               std::invalid_argument);
}

TEST_F(HierarchicalTest, ServesEverythingWithAmpleBudget) {
  const HierarchicalCapper capper(sites_, policies_,
                                  contiguous_regions(6, 3));
  const HierarchicalOutcome out =
      capper.decide(8e11, 2e11, demand_, /*hourly_budget=*/1e7);
  EXPECT_EQ(out.mode, CappingOutcome::Mode::kUncapped);
  EXPECT_NEAR(out.served_premium, 8e11, 1e3);
  EXPECT_NEAR(out.served_ordinary, 2e11, 1e3);
  EXPECT_EQ(out.region_outcomes.size(), 2u);
}

TEST_F(HierarchicalTest, SiteLambdaCoversGlobalOrder) {
  const HierarchicalCapper capper(sites_, policies_,
                                  contiguous_regions(6, 3));
  const HierarchicalOutcome out = capper.decide(8e11, 2e11, demand_, 1e7);
  ASSERT_EQ(out.site_lambda.size(), 6u);
  double total = 0.0;
  for (double l : out.site_lambda) total += l;
  EXPECT_NEAR(total, out.served_premium + out.served_ordinary,
              1e-3 * total);
  // The allocation must bill consistently at global ground truth.
  const GroundTruth truth =
      evaluate_allocation(sites_, policies_, demand_, out.site_lambda);
  EXPECT_NEAR(truth.total_cost / out.predicted_cost, 1.0, 0.02);
}

TEST_F(HierarchicalTest, PremiumGuaranteeSurvivesDecentralization) {
  const HierarchicalCapper capper(sites_, policies_,
                                  contiguous_regions(6, 3));
  for (double budget : {200.0, 1000.0, 4000.0}) {
    const HierarchicalOutcome out =
        capper.decide(8e11, 2e11, demand_, budget);
    EXPECT_NEAR(out.served_premium, 8e11, 1e3) << "budget " << budget;
  }
}

TEST_F(HierarchicalTest, TightBudgetThrottlesOrdinary) {
  const HierarchicalCapper capper(sites_, policies_,
                                  contiguous_regions(6, 3));
  const HierarchicalOutcome free_run = capper.decide(8e11, 2e11, demand_, 1e7);
  const HierarchicalOutcome capped = capper.decide(
      8e11, 2e11, demand_, free_run.predicted_cost * 0.9);
  EXPECT_LT(capped.served_ordinary, 2e11);
  EXPECT_NE(capped.mode, CappingOutcome::Mode::kUncapped);
}

TEST_F(HierarchicalTest, NearOptimalVsFlatCapper) {
  // Decentralization loses some coordination; the gap against the flat
  // capper must stay small for a balanced network.
  const BillCapper flat(sites_, policies_);
  const HierarchicalCapper hier(sites_, policies_, contiguous_regions(6, 3));
  const double premium = 9e11;
  const double ordinary = 2.2e11;
  const CappingOutcome flat_out =
      flat.decide(premium, ordinary, demand_, 1e7);
  const HierarchicalOutcome hier_out =
      hier.decide(premium, ordinary, demand_, 1e7);
  const double flat_cost =
      evaluate_allocation(sites_, policies_, demand_,
                          flat_out.allocation.lambda_vector())
          .total_cost;
  const double hier_cost =
      evaluate_allocation(sites_, policies_, demand_, hier_out.site_lambda)
          .total_cost;
  EXPECT_GE(hier_cost, flat_cost * 0.999);  // flat is the lower bound
  EXPECT_LE(hier_cost, flat_cost * 1.25);   // but the gap stays bounded
}

TEST_F(HierarchicalTest, SingleRegionMatchesFlat) {
  const BillCapper flat(sites_, policies_);
  const HierarchicalCapper hier(sites_, policies_, contiguous_regions(6, 6));
  const CappingOutcome a = flat.decide(6e11, 1.5e11, demand_, 1e7);
  const HierarchicalOutcome b = hier.decide(6e11, 1.5e11, demand_, 1e7);
  EXPECT_NEAR(a.allocation.predicted_cost, b.predicted_cost, 1e-6);
}

TEST_F(HierarchicalTest, CleanSolveSurfacesNoRegionFailures) {
  const HierarchicalCapper capper(sites_, policies_,
                                  contiguous_regions(6, 3));
  const HierarchicalOutcome out = capper.decide(8e11, 2e11, demand_, 1e7);
  EXPECT_FALSE(out.degraded);
  EXPECT_EQ(out.failure, FailureReason::kNone);
  EXPECT_TRUE(out.degraded_regions.empty());
  for (std::size_t count : out.failure_tally) EXPECT_EQ(count, 0u);
}

TEST_F(HierarchicalTest, PerRegionFailuresSurviveTheMerge) {
  // A crushing node budget degrades every region's solve; the merge must
  // say which regions degraded and why, not just the worst Mode.
  OptimizerOptions options;
  options.milp.max_nodes = 1;
  const HierarchicalCapper capper(sites_, policies_,
                                  contiguous_regions(6, 3), options);
  const HierarchicalOutcome out = capper.decide(8e11, 2e11, demand_, 1e7);
  EXPECT_TRUE(out.degraded);
  EXPECT_NE(out.failure, FailureReason::kNone);
  ASSERT_EQ(out.degraded_regions.size(), 2u);
  EXPECT_EQ(out.degraded_regions[0], 0u);
  EXPECT_EQ(out.degraded_regions[1], 1u);
  std::size_t tallied = 0;
  for (std::size_t count : out.failure_tally) tallied += count;
  EXPECT_EQ(tallied, 2u);
  // The per-region outcomes agree with the surfaced summary.
  for (std::size_t r : out.degraded_regions)
    EXPECT_TRUE(out.region_outcomes[r].degraded);
}

TEST_F(HierarchicalTest, DemandSizeValidation) {
  const HierarchicalCapper capper(sites_, policies_,
                                  contiguous_regions(6, 3));
  EXPECT_THROW(capper.decide(1e11, 1e10, std::vector<double>{1.0}, 100.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace billcap::core
