#include "core/bill_capper.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "core/cost_model.hpp"
#include "datacenter/catalog.hpp"
#include "market/pricing_policy.hpp"

namespace billcap::core {
namespace {

class BillCapperTest : public ::testing::Test {
 protected:
  const std::vector<datacenter::DataCenter> sites_ =
      datacenter::paper_datacenters();
  const std::vector<market::PricingPolicy> policies_ =
      market::paper_policies(1);
  const std::vector<double> demand_ = {228.0, 182.0, 172.0};
  const BillCapper capper_{sites_, policies_};
};

TEST_F(BillCapperTest, AmpleBudgetUncapped) {
  const CappingOutcome outcome =
      capper_.decide(4.8e11, 1.2e11, demand_, 1e7);
  EXPECT_EQ(outcome.mode, CappingOutcome::Mode::kUncapped);
  EXPECT_DOUBLE_EQ(outcome.served_premium, 4.8e11);
  EXPECT_DOUBLE_EQ(outcome.served_ordinary, 1.2e11);
  EXPECT_DOUBLE_EQ(outcome.dropped_capacity, 0.0);
}

TEST_F(BillCapperTest, TightBudgetThrottlesOrdinaryOnly) {
  // Find the uncapped cost, then offer ~80 % of it.
  const CappingOutcome free_run =
      capper_.decide(8e11, 2e11, demand_, 1e7);
  const double budget = free_run.allocation.predicted_cost * 0.8;
  const CappingOutcome capped = capper_.decide(8e11, 2e11, demand_, budget);
  EXPECT_EQ(capped.mode, CappingOutcome::Mode::kCapped);
  EXPECT_DOUBLE_EQ(capped.served_premium, 8e11);  // premium untouched
  EXPECT_LT(capped.served_ordinary, 2e11);        // ordinary throttled
  EXPECT_LE(capped.allocation.predicted_cost, budget * (1.0 + 1e-6));
}

TEST_F(BillCapperTest, PunishingBudgetPremiumOnly) {
  const CappingOutcome outcome =
      capper_.decide(8e11, 2e11, demand_, 100.0);
  EXPECT_EQ(outcome.mode, CappingOutcome::Mode::kPremiumOnly);
  EXPECT_DOUBLE_EQ(outcome.served_premium, 8e11);
  EXPECT_DOUBLE_EQ(outcome.served_ordinary, 0.0);
  // The budget is deliberately violated for the QoS guarantee.
  EXPECT_GT(outcome.allocation.predicted_cost, 100.0);
}

TEST_F(BillCapperTest, PremiumQosNeverSacrificedToBudget) {
  for (double budget : {50.0, 300.0, 800.0, 2000.0, 1e7}) {
    const CappingOutcome outcome =
        capper_.decide(6e11, 1.5e11, demand_, budget);
    EXPECT_DOUBLE_EQ(outcome.served_premium, 6e11) << "budget " << budget;
  }
}

TEST_F(BillCapperTest, OrdinaryThroughputMonotoneInBudget) {
  double prev = -1.0;
  for (double budget : {100.0, 500.0, 1000.0, 2000.0, 5000.0}) {
    const CappingOutcome outcome =
        capper_.decide(8e11, 2e11, demand_, budget);
    EXPECT_GE(outcome.served_ordinary, prev - 1e6) << "budget " << budget;
    prev = outcome.served_ordinary;
  }
}

TEST_F(BillCapperTest, CapacityOverflowShedsOrdinaryFirst) {
  // Arrivals way beyond physical capacity: premium is served up to
  // capacity, ordinary takes the drop.
  const CappingOutcome outcome =
      capper_.decide(1.5e12, 5e11, demand_, 1e9);
  EXPECT_GT(outcome.dropped_capacity, 0.0);
  EXPECT_GT(outcome.served_premium, 1.49e12);
  EXPECT_LT(outcome.served_ordinary, 5e11);
  EXPECT_NEAR(outcome.served_premium + outcome.served_ordinary +
                  outcome.dropped_capacity,
              2e12, 1e6);
}

TEST_F(BillCapperTest, PremiumBeyondCapacityIsBounded) {
  const CappingOutcome outcome =
      capper_.decide(5e12, 0.0, demand_, 1e9);
  EXPECT_GT(outcome.dropped_capacity, 0.0);
  EXPECT_LT(outcome.served_premium, 2e12);
}

TEST_F(BillCapperTest, GroundTruthCostNearBudgetWhenCapped) {
  // 88 % of the uncapped cost: enough for the 80 % premium share, not for
  // everything -> the capper must land in kCapped.
  const CappingOutcome free_run = capper_.decide(8e11, 2e11, demand_, 1e7);
  const double budget = free_run.allocation.predicted_cost * 0.88;
  const CappingOutcome capped = capper_.decide(8e11, 2e11, demand_, budget);
  ASSERT_EQ(capped.mode, CappingOutcome::Mode::kCapped);
  const GroundTruth truth = evaluate_allocation(
      sites_, policies_, demand_, capped.allocation.lambda_vector());
  EXPECT_LE(truth.total_cost, budget * 1.01);
}

TEST_F(BillCapperTest, Validation) {
  EXPECT_THROW(capper_.decide(-1.0, 0.0, demand_, 100.0),
               std::invalid_argument);
  EXPECT_THROW(capper_.decide(0.0, -1.0, demand_, 100.0),
               std::invalid_argument);
  EXPECT_THROW(
      capper_.decide(1e11, 1e10, std::vector<double>{1.0}, 100.0),
      std::invalid_argument);
}

TEST_F(BillCapperTest, ConstructorValidation) {
  const std::vector<market::PricingPolicy> two = {policies_[0], policies_[1]};
  EXPECT_THROW(BillCapper(sites_, two), std::invalid_argument);
}

TEST_F(BillCapperTest, ModeNames) {
  EXPECT_STREQ(to_string(CappingOutcome::Mode::kUncapped), "uncapped");
  EXPECT_STREQ(to_string(CappingOutcome::Mode::kCapped), "capped");
  EXPECT_STREQ(to_string(CappingOutcome::Mode::kPremiumOnly), "premium_only");
}

TEST_F(BillCapperTest, ZeroArrivalsZeroCost) {
  const CappingOutcome outcome = capper_.decide(0.0, 0.0, demand_, 100.0);
  EXPECT_EQ(outcome.mode, CappingOutcome::Mode::kUncapped);
  EXPECT_NEAR(outcome.allocation.predicted_cost, 0.0, 1e-9);
}

}  // namespace
}  // namespace billcap::core
