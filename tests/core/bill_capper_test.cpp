#include "core/bill_capper.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/cost_model.hpp"
#include "datacenter/catalog.hpp"
#include "market/pricing_policy.hpp"

namespace billcap::core {
namespace {

class BillCapperTest : public ::testing::Test {
 protected:
  const std::vector<datacenter::DataCenter> sites_ =
      datacenter::paper_datacenters();
  const std::vector<market::PricingPolicy> policies_ =
      market::paper_policies(1);
  const std::vector<double> demand_ = {228.0, 182.0, 172.0};
  const BillCapper capper_{sites_, policies_};
};

TEST_F(BillCapperTest, AmpleBudgetUncapped) {
  const CappingOutcome outcome =
      capper_.decide(4.8e11, 1.2e11, demand_, 1e7);
  EXPECT_EQ(outcome.mode, CappingOutcome::Mode::kUncapped);
  EXPECT_DOUBLE_EQ(outcome.served_premium, 4.8e11);
  EXPECT_DOUBLE_EQ(outcome.served_ordinary, 1.2e11);
  EXPECT_DOUBLE_EQ(outcome.dropped_capacity, 0.0);
}

TEST_F(BillCapperTest, TightBudgetThrottlesOrdinaryOnly) {
  // Find the uncapped cost, then offer ~80 % of it.
  const CappingOutcome free_run =
      capper_.decide(8e11, 2e11, demand_, 1e7);
  const double budget = free_run.allocation.predicted_cost * 0.8;
  const CappingOutcome capped = capper_.decide(8e11, 2e11, demand_, budget);
  EXPECT_EQ(capped.mode, CappingOutcome::Mode::kCapped);
  EXPECT_DOUBLE_EQ(capped.served_premium, 8e11);  // premium untouched
  EXPECT_LT(capped.served_ordinary, 2e11);        // ordinary throttled
  EXPECT_LE(capped.allocation.predicted_cost, budget * (1.0 + 1e-6));
}

TEST_F(BillCapperTest, PunishingBudgetPremiumOnly) {
  const CappingOutcome outcome =
      capper_.decide(8e11, 2e11, demand_, 100.0);
  EXPECT_EQ(outcome.mode, CappingOutcome::Mode::kPremiumOnly);
  EXPECT_DOUBLE_EQ(outcome.served_premium, 8e11);
  EXPECT_DOUBLE_EQ(outcome.served_ordinary, 0.0);
  // The budget is deliberately violated for the QoS guarantee.
  EXPECT_GT(outcome.allocation.predicted_cost, 100.0);
}

TEST_F(BillCapperTest, PremiumQosNeverSacrificedToBudget) {
  for (double budget : {50.0, 300.0, 800.0, 2000.0, 1e7}) {
    const CappingOutcome outcome =
        capper_.decide(6e11, 1.5e11, demand_, budget);
    EXPECT_DOUBLE_EQ(outcome.served_premium, 6e11) << "budget " << budget;
  }
}

TEST_F(BillCapperTest, OrdinaryThroughputMonotoneInBudget) {
  double prev = -1.0;
  for (double budget : {100.0, 500.0, 1000.0, 2000.0, 5000.0}) {
    const CappingOutcome outcome =
        capper_.decide(8e11, 2e11, demand_, budget);
    EXPECT_GE(outcome.served_ordinary, prev - 1e6) << "budget " << budget;
    prev = outcome.served_ordinary;
  }
}

TEST_F(BillCapperTest, CapacityOverflowShedsOrdinaryFirst) {
  // Arrivals way beyond physical capacity: premium is served up to
  // capacity, ordinary takes the drop.
  const CappingOutcome outcome =
      capper_.decide(1.5e12, 5e11, demand_, 1e9);
  EXPECT_GT(outcome.dropped_capacity, 0.0);
  EXPECT_GT(outcome.served_premium, 1.49e12);
  EXPECT_LT(outcome.served_ordinary, 5e11);
  EXPECT_NEAR(outcome.served_premium + outcome.served_ordinary +
                  outcome.dropped_capacity,
              2e12, 1e6);
}

TEST_F(BillCapperTest, PremiumBeyondCapacityIsBounded) {
  const CappingOutcome outcome =
      capper_.decide(5e12, 0.0, demand_, 1e9);
  EXPECT_GT(outcome.dropped_capacity, 0.0);
  EXPECT_LT(outcome.served_premium, 2e12);
}

TEST_F(BillCapperTest, GroundTruthCostNearBudgetWhenCapped) {
  // 88 % of the uncapped cost: enough for the 80 % premium share, not for
  // everything -> the capper must land in kCapped.
  const CappingOutcome free_run = capper_.decide(8e11, 2e11, demand_, 1e7);
  const double budget = free_run.allocation.predicted_cost * 0.88;
  const CappingOutcome capped = capper_.decide(8e11, 2e11, demand_, budget);
  ASSERT_EQ(capped.mode, CappingOutcome::Mode::kCapped);
  const GroundTruth truth = evaluate_allocation(
      sites_, policies_, demand_, capped.allocation.lambda_vector());
  EXPECT_LE(truth.total_cost, budget * 1.01);
}

TEST_F(BillCapperTest, Validation) {
  EXPECT_THROW(capper_.decide(-1.0, 0.0, demand_, 100.0),
               std::invalid_argument);
  EXPECT_THROW(capper_.decide(0.0, -1.0, demand_, 100.0),
               std::invalid_argument);
  EXPECT_THROW(
      capper_.decide(1e11, 1e10, std::vector<double>{1.0}, 100.0),
      std::invalid_argument);
}

TEST_F(BillCapperTest, ConstructorValidation) {
  const std::vector<market::PricingPolicy> two = {policies_[0], policies_[1]};
  EXPECT_THROW(BillCapper(sites_, two), std::invalid_argument);
}

TEST_F(BillCapperTest, ModeNames) {
  EXPECT_STREQ(to_string(CappingOutcome::Mode::kUncapped), "uncapped");
  EXPECT_STREQ(to_string(CappingOutcome::Mode::kCapped), "capped");
  EXPECT_STREQ(to_string(CappingOutcome::Mode::kPremiumOnly), "premium_only");
}

TEST_F(BillCapperTest, ZeroArrivalsZeroCost) {
  const CappingOutcome outcome = capper_.decide(0.0, 0.0, demand_, 100.0);
  EXPECT_EQ(outcome.mode, CappingOutcome::Mode::kUncapped);
  EXPECT_NEAR(outcome.allocation.predicted_cost, 0.0, 1e-9);
}

// Checks the degraded allocation against the believed per-site limits: SLA
// capacity and power cap must hold no matter which ladder rung produced it.
void expect_within_site_limits(
    const CappingOutcome& outcome,
    const std::vector<datacenter::DataCenter>& sites,
    const std::vector<market::PricingPolicy>& policies,
    const std::vector<double>& demand) {
  for (std::size_t i = 0; i < sites.size(); ++i) {
    const SiteModel model = make_site_model(sites[i], policies[i], demand[i]);
    EXPECT_LE(outcome.allocation.sites[i].lambda,
              model.lambda_max * (1.0 + 1e-9))
        << i;
    EXPECT_LE(outcome.allocation.sites[i].power_mw,
              model.power_cap_mw * (1.0 + 1e-9))
        << i;
  }
}

TEST_F(BillCapperTest, NodeStarvedSolverDegradesGracefully) {
  // max_nodes = 1: branch-and-bound cannot finish a single branching, so
  // every solve dies. decide() must not throw and must still return a
  // feasible, capacity- and cap-respecting allocation, tagged degraded.
  OptimizerOptions opts;
  opts.milp.max_nodes = 1;
  const BillCapper starved(sites_, policies_, opts);
  const CappingOutcome outcome = starved.decide(4.8e11, 1.2e11, demand_, 1e7);
  EXPECT_TRUE(outcome.degraded);
  EXPECT_NE(outcome.failure, FailureReason::kNone);
  EXPECT_TRUE(outcome.used_incumbent || outcome.used_heuristic);
  EXPECT_TRUE(outcome.allocation.usable());
  EXPECT_GT(outcome.served_premium, 0.0);
  EXPECT_LE(outcome.served_premium, 4.8e11 * (1.0 + 1e-9));
  expect_within_site_limits(outcome, sites_, policies_, demand_);
}

TEST_F(BillCapperTest, ExpiredDeadlineDegradesGracefully) {
  DecideOptions overrides;
  overrides.time_limit_ms = 1e-9;  // expires before the first node
  const CappingOutcome outcome =
      capper_.decide(4.8e11, 1.2e11, demand_, 1e7, overrides);
  EXPECT_TRUE(outcome.degraded);
  EXPECT_EQ(outcome.failure, FailureReason::kTimeLimit);
  EXPECT_TRUE(outcome.allocation.usable());
  EXPECT_GT(outcome.served_premium, 0.0);
  expect_within_site_limits(outcome, sites_, policies_, demand_);
}

TEST_F(BillCapperTest, NodeStarvedTightBudgetStillGuaranteesPremium) {
  OptimizerOptions opts;
  opts.milp.max_nodes = 1;
  const BillCapper starved(sites_, policies_, opts);
  // A budget that forces step 2 (and its fallback) to engage.
  const CappingOutcome outcome =
      starved.decide(4.8e11, 1.2e11, demand_, 1500.0);
  EXPECT_TRUE(outcome.degraded);
  EXPECT_NEAR(outcome.served_premium, 4.8e11, 4.8e11 * 1e-6);
  expect_within_site_limits(outcome, sites_, policies_, demand_);
}

TEST_F(BillCapperTest, DownedSiteTakesNoLoad) {
  const std::vector<std::uint8_t> available = {1, 0, 1};
  DecideOptions overrides;
  overrides.site_available = available;
  const CappingOutcome outcome =
      capper_.decide(4.8e11, 1.2e11, demand_, 1e7, overrides);
  EXPECT_DOUBLE_EQ(outcome.allocation.sites[1].lambda, 0.0);
  EXPECT_GT(outcome.allocation.sites[0].lambda +
                outcome.allocation.sites[2].lambda,
            0.0);
  // The clean solve over the surviving sites is not itself degraded.
  EXPECT_FALSE(outcome.degraded);
}

TEST_F(BillCapperTest, AllSitesDownShedsEverything) {
  const std::vector<std::uint8_t> available = {0, 0, 0};
  DecideOptions overrides;
  overrides.site_available = available;
  CappingOutcome outcome;
  ASSERT_NO_THROW(
      outcome = capper_.decide(4.8e11, 1.2e11, demand_, 1e7, overrides));
  EXPECT_DOUBLE_EQ(outcome.served_premium, 0.0);
  EXPECT_DOUBLE_EQ(outcome.served_ordinary, 0.0);
  EXPECT_NEAR(outcome.dropped_capacity, 6e11, 1.0);
}

TEST_F(BillCapperTest, BelievedDemandOverrideChangesThePlan) {
  // A stale feed showing much higher background demand pushes the plan
  // away from the (believed) expensive sites; the decision stays valid.
  const std::vector<double> stale_demand = {500.0, 182.0, 172.0};
  DecideOptions overrides;
  overrides.believed_demand_mw = stale_demand;
  const CappingOutcome outcome =
      capper_.decide(4.8e11, 1.2e11, demand_, 1e7, overrides);
  EXPECT_FALSE(outcome.degraded);
  EXPECT_DOUBLE_EQ(outcome.served_premium, 4.8e11);
  // Planned against the stale belief, site 0 looks nearly saturated by
  // background draw and should carry less than in the fresh-feed plan.
  const CappingOutcome fresh = capper_.decide(4.8e11, 1.2e11, demand_, 1e7);
  EXPECT_LE(outcome.allocation.sites[0].lambda,
            fresh.allocation.sites[0].lambda + 1e-3);
}

TEST_F(BillCapperTest, FailureReasonNames) {
  EXPECT_STREQ(to_string(FailureReason::kNone), "none");
  EXPECT_STREQ(to_string(FailureReason::kNodeLimit), "node_limit");
  EXPECT_STREQ(to_string(FailureReason::kIterationLimit), "iteration_limit");
  EXPECT_STREQ(to_string(FailureReason::kTimeLimit), "time_limit");
  EXPECT_STREQ(to_string(FailureReason::kInfeasible), "infeasible");
  EXPECT_STREQ(to_string(FailureReason::kUnbounded), "unbounded");
  EXPECT_EQ(failure_reason_from(lp::SolveStatus::kNodeLimit),
            FailureReason::kNodeLimit);
  EXPECT_EQ(failure_reason_from(lp::SolveStatus::kTimeLimit),
            FailureReason::kTimeLimit);
  EXPECT_EQ(failure_reason_from(lp::SolveStatus::kOptimal),
            FailureReason::kNone);
}

}  // namespace
}  // namespace billcap::core
