#include "core/fallback_allocator.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "core/cost_minimizer.hpp"
#include "core/formulation.hpp"
#include "datacenter/catalog.hpp"
#include "market/pricing_policy.hpp"

namespace billcap::core {
namespace {

class FallbackAllocatorTest : public ::testing::Test {
 protected:
  FallbackAllocatorTest() {
    const auto sites = datacenter::paper_datacenters();
    const auto policies = market::paper_policies(1);
    const std::vector<double> demand = {228.0, 182.0, 172.0};
    for (std::size_t i = 0; i < sites.size(); ++i)
      models_.push_back(make_site_model(sites[i], policies[i], demand[i]));
  }

  std::vector<SiteModel> models_;
};

TEST_F(FallbackAllocatorTest, PlacesEverythingWithinCapacity) {
  const double lambda = 6e11;
  const AllocationResult r = fallback_allocate(models_, {lambda, 0.0});
  EXPECT_TRUE(r.feasible);
  EXPECT_TRUE(r.heuristic);
  EXPECT_TRUE(r.usable());
  EXPECT_NEAR(r.total_lambda, lambda, 1e-3);
  EXPECT_GT(r.predicted_cost, 0.0);
}

TEST_F(FallbackAllocatorTest, RespectsPerSiteCapacityAndPowerCap) {
  // Far beyond what the fleet can absorb: the heuristic places what fits
  // and never violates a site's SLA capacity or power cap.
  const AllocationResult r = fallback_allocate(models_, {5e12, 0.0});
  EXPECT_LT(r.total_lambda, 5e12);
  EXPECT_LE(r.total_lambda, system_capacity(models_) * (1.0 + 1e-9));
  for (std::size_t i = 0; i < models_.size(); ++i) {
    EXPECT_LE(r.sites[i].lambda, models_[i].lambda_max * (1.0 + 1e-9)) << i;
    EXPECT_LE(r.sites[i].power_mw, models_[i].power_cap_mw * (1.0 + 1e-9))
        << i;
  }
}

TEST_F(FallbackAllocatorTest, RequiredLoadIgnoresBudget) {
  // Premium is sacrificed only to physics, never to money: a zero budget
  // still places the whole required load.
  const double lambda = 4e11;
  const AllocationResult r = fallback_allocate(models_, {lambda, 0.0, 0.0});
  EXPECT_NEAR(r.total_lambda, lambda, 1e-3);
}

TEST_F(FallbackAllocatorTest, OptionalLoadStopsAtBudget) {
  const double required = 3e11;
  const double optional = 3e11;
  const AllocationResult base = fallback_allocate(models_, {required, 0.0});
  const AllocationResult full =
      fallback_allocate(models_, {required, optional});
  ASSERT_GT(full.predicted_cost, base.predicted_cost);
  const double budget = 0.5 * (base.predicted_cost + full.predicted_cost);
  const AllocationResult capped =
      fallback_allocate(models_, {required, optional, budget});
  EXPECT_LE(capped.predicted_cost, budget * (1.0 + 1e-9));
  EXPECT_GE(capped.total_lambda, required - 1e-3);
  EXPECT_LT(capped.total_lambda, required + optional - 1e-3);
}

TEST_F(FallbackAllocatorTest, CostNoBetterThanMilpOptimum) {
  // The greedy answer is feasible by construction; the MILP's is optimal.
  for (const double lambda : {2e11, 4e11, 6e11, 8e11}) {
    const AllocationResult greedy = fallback_allocate(models_, {lambda, 0.0});
    const AllocationResult optimal =
        minimize_cost_over_models(models_, lambda);
    ASSERT_TRUE(optimal.ok()) << lambda;
    EXPECT_GE(greedy.predicted_cost, optimal.predicted_cost * (1.0 - 1e-9))
        << lambda;
    // It should still be in the right ballpark, not pathological.
    EXPECT_LE(greedy.predicted_cost, optimal.predicted_cost * 1.5) << lambda;
  }
}

TEST_F(FallbackAllocatorTest, Deterministic) {
  const FallbackRequest request{4e11, 1e11, 5e4};
  const AllocationResult a = fallback_allocate(models_, request);
  const AllocationResult b = fallback_allocate(models_, request);
  EXPECT_DOUBLE_EQ(a.total_lambda, b.total_lambda);
  EXPECT_DOUBLE_EQ(a.predicted_cost, b.predicted_cost);
  for (std::size_t i = 0; i < a.sites.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.sites[i].lambda, b.sites[i].lambda) << i;
    EXPECT_DOUBLE_EQ(a.sites[i].cost, b.sites[i].cost) << i;
  }
}

TEST_F(FallbackAllocatorTest, ZeroRequestZeroAllocation) {
  const AllocationResult r = fallback_allocate(models_, {0.0, 0.0});
  EXPECT_DOUBLE_EQ(r.total_lambda, 0.0);
  EXPECT_DOUBLE_EQ(r.predicted_cost, 0.0);
  for (const auto& site : r.sites) EXPECT_FALSE(site.active);
}

TEST_F(FallbackAllocatorTest, DownedSiteTakesNoLoad) {
  std::vector<SiteModel> models = models_;
  models[1].lambda_max = 0.0;
  const AllocationResult r = fallback_allocate(models, {6e11, 0.0});
  EXPECT_DOUBLE_EQ(r.sites[1].lambda, 0.0);
  EXPECT_FALSE(r.sites[1].active);
  EXPECT_GT(r.total_lambda, 0.0);
}

}  // namespace
}  // namespace billcap::core
