#include <gtest/gtest.h>

#include <vector>

#include "core/cost_minimizer.hpp"
#include "core/throughput_maximizer.hpp"
#include "datacenter/heterogeneous.hpp"
#include "market/pricing_policy.hpp"

namespace billcap::core {
namespace {

datacenter::ServerPool make_pool(std::string name, double req_per_sec,
                                 double watts, std::uint64_t count) {
  const double mu = req_per_sec * 3600.0;
  return datacenter::ServerPool{
      .name = std::move(name),
      .queue = {.service_rate = mu, .ca2 = 1.0, .cb2 = 1.0},
      .server = datacenter::ServerModel::from_active_power(watts, 0.8),
      .operating_utilization = 0.8,
      .count = count,
  };
}

datacenter::HeterogeneousSite mixed_site(const std::string& name,
                                         double cap_mw) {
  return datacenter::HeterogeneousSite::from_pools(
      name,
      {make_pool("old", 300.0, 134.0, 60'000),
       make_pool("new", 500.0, 88.88, 60'000)},
      2.0 / (300.0 * 3600.0), cap_mw);
}

class HeterogeneousAllocationTest : public ::testing::Test {
 protected:
  const std::vector<datacenter::HeterogeneousSite> sites_ = {
      mixed_site("hetero-1", 35.0), mixed_site("hetero-2", 35.0)};
  const std::vector<market::PricingPolicy> policies_ =
      market::paper_policies(1);

  std::vector<SiteModel> models(double d1, double d2) const {
    return {make_heterogeneous_site_model(sites_[0], policies_[0], d1),
            make_heterogeneous_site_model(sites_[1], policies_[1], d2)};
  }
};

TEST_F(HeterogeneousAllocationTest, ModelCarriesSegments) {
  const auto ms = models(200.0, 180.0);
  ASSERT_EQ(ms[0].power_segments.size(), 2u);
  EXPECT_LT(ms[0].power_segments[0].slope, ms[0].power_segments[1].slope);
  EXPECT_GT(ms[0].lambda_max, 0.0);
}

TEST_F(HeterogeneousAllocationTest, PowerCapClipsSegments) {
  const datacenter::HeterogeneousSite tight = mixed_site("tight", 8.0);
  const SiteModel m =
      make_heterogeneous_site_model(tight, policies_[0], 100.0);
  // The cap (8 MW) binds before the installed capacity does.
  double power = m.power_intercept_mw;
  for (const auto& seg : m.power_segments) power += seg.lambda_cap * seg.slope;
  EXPECT_LE(power, 8.0 * 1.01);
  EXPECT_LT(m.lambda_max, tight.max_requests_per_hour());
}

TEST_F(HeterogeneousAllocationTest, MinimizeCostServesDemand) {
  const auto ms = models(200.0, 180.0);
  const double lambda = 0.8 * system_capacity(ms);
  const AllocationResult r = minimize_cost_over_models(ms, lambda);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r.total_lambda / lambda, 1.0, 1e-6);
}

TEST_F(HeterogeneousAllocationTest, BelievedPowerMatchesGreedyDispatch) {
  // The MILP's believed power must match the site's own greedy dispatch:
  // cheap class first.
  const auto ms = models(150.0, 150.0);
  const double lambda = 0.6 * system_capacity(ms);
  const AllocationResult r = minimize_cost_over_models(ms, lambda);
  ASSERT_TRUE(r.ok());
  for (std::size_t i = 0; i < sites_.size(); ++i) {
    if (r.sites[i].lambda <= 0.0) continue;
    const double exact = sites_[i].power_mw(r.sites[i].lambda);
    EXPECT_NEAR(r.sites[i].power_mw / exact, 1.0, 0.02) << "site " << i;
  }
}

TEST_F(HeterogeneousAllocationTest, CheaperThanForcedExpensiveClass) {
  // A model with the classes' order swapped (expensive first) must never
  // beat the true model: sanity that the LP exploits the cheap segments.
  // Half capacity: even an all-expensive-class dispatch stays within the
  // power caps, so both models are feasible.
  const auto ms = models(150.0, 150.0);
  const double lambda = 0.5 * system_capacity(ms);
  const AllocationResult good = minimize_cost_over_models(ms, lambda);
  auto swapped = ms;
  for (auto& m : swapped) {
    std::swap(m.power_segments[0], m.power_segments[1]);
    // Swapping breaks the sorted-order invariant: LP may now "fill" the
    // listed-first expensive class only when forced; emulate a bad
    // dispatcher by replacing both slopes with the expensive one.
    m.power_segments[0].slope = std::max(m.power_segments[0].slope,
                                         m.power_segments[1].slope);
    m.power_segments[1].slope = m.power_segments[0].slope;
  }
  const AllocationResult bad = minimize_cost_over_models(swapped, lambda);
  ASSERT_TRUE(good.ok());
  ASSERT_TRUE(bad.ok());
  EXPECT_LE(good.predicted_cost, bad.predicted_cost + 1e-6);
}

TEST_F(HeterogeneousAllocationTest, ThroughputMaximizationWorksOnSegments) {
  const auto ms = models(200.0, 180.0);
  const double lambda = 0.9 * system_capacity(ms);
  const AllocationResult unconstrained =
      maximize_throughput_over_models(ms, lambda, 1e9);
  ASSERT_TRUE(unconstrained.ok());
  EXPECT_NEAR(unconstrained.total_lambda / lambda, 1.0, 1e-6);

  const AllocationResult tight =
      maximize_throughput_over_models(ms, lambda, 300.0);
  ASSERT_TRUE(tight.ok());
  EXPECT_LT(tight.total_lambda, lambda);
  EXPECT_LE(tight.predicted_cost, 300.0 * (1 + 1e-6));
}

TEST_F(HeterogeneousAllocationTest, StepPricesStillRespected) {
  // With background demand just below a threshold, the optimizer should
  // stop the cheap site short of the step when that is cheaper overall.
  const auto ms = models(236.0, 150.0);  // site 0 is 1.3 MW below a step
  const AllocationResult r =
      minimize_cost_over_models(ms, 0.85 * system_capacity(ms));
  ASSERT_TRUE(r.ok());
  const double total0 = r.sites[0].power_mw + 236.0;
  EXPECT_TRUE(total0 <= 237.31 || total0 >= 238.0)
      << "grazing the step at " << total0;
}

}  // namespace
}  // namespace billcap::core
