#include "core/cost_minimizer.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "core/cost_model.hpp"
#include "datacenter/catalog.hpp"
#include "market/pricing_policy.hpp"
#include "util/rng.hpp"

namespace billcap::core {
namespace {

class CostMinimizerTest : public ::testing::Test {
 protected:
  const std::vector<datacenter::DataCenter> sites_ =
      datacenter::paper_datacenters();
  const std::vector<market::PricingPolicy> policies_ =
      market::paper_policies(1);
  const std::vector<double> demand_ = {210.0, 190.0, 175.0};
};

TEST_F(CostMinimizerTest, ZeroDemandCostsNothing) {
  const AllocationResult r =
      minimize_cost(sites_, policies_, demand_, 0.0);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r.predicted_cost, 0.0, 1e-6);
  EXPECT_NEAR(r.total_lambda, 0.0, 1e-3);
}

TEST_F(CostMinimizerTest, ServesExactlyTheDemand) {
  const double lambda = 6e11;
  const AllocationResult r =
      minimize_cost(sites_, policies_, demand_, lambda);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r.total_lambda / lambda, 1.0, 1e-6);
}

TEST_F(CostMinimizerTest, InfeasibleBeyondCapacity) {
  const AllocationResult r =
      minimize_cost(sites_, policies_, demand_, 1e13);
  EXPECT_EQ(r.status, lp::SolveStatus::kInfeasible);
}

TEST_F(CostMinimizerTest, NegativeDemandThrows) {
  EXPECT_THROW(minimize_cost(sites_, policies_, demand_, -1.0),
               std::invalid_argument);
}

TEST_F(CostMinimizerTest, SizeMismatchThrows) {
  EXPECT_THROW(minimize_cost(sites_, policies_,
                             std::vector<double>{1.0, 2.0}, 1e10),
               std::invalid_argument);
}

TEST_F(CostMinimizerTest, RespectsPowerCaps) {
  // Heavy demand: each site's believed power stays within its cap.
  const double lambda = 1.4e12;
  const AllocationResult r =
      minimize_cost(sites_, policies_, demand_, lambda);
  ASSERT_TRUE(r.ok());
  for (std::size_t i = 0; i < sites_.size(); ++i)
    EXPECT_LE(r.sites[i].power_mw,
              sites_[i].spec().power_cap_mw + 1e-6);
}

TEST_F(CostMinimizerTest, GroundTruthRespectsCapsToo) {
  const double lambda = 1.4e12;
  const AllocationResult r =
      minimize_cost(sites_, policies_, demand_, lambda);
  ASSERT_TRUE(r.ok());
  const GroundTruth truth =
      evaluate_allocation(sites_, policies_, demand_, r.lambda_vector());
  EXPECT_DOUBLE_EQ(truth.total_penalty, 0.0);  // safety margin worked
}

TEST_F(CostMinimizerTest, PredictionTracksGroundTruth) {
  for (double lambda : {1e11, 4e11, 9e11, 1.3e12}) {
    const AllocationResult r =
        minimize_cost(sites_, policies_, demand_, lambda);
    ASSERT_TRUE(r.ok()) << "lambda " << lambda;
    const GroundTruth truth =
        evaluate_allocation(sites_, policies_, demand_, r.lambda_vector());
    EXPECT_NEAR(truth.total_cost / r.predicted_cost, 1.0, 0.01)
        << "lambda " << lambda;
  }
}

TEST_F(CostMinimizerTest, BeatsNaiveAllocationsAtGroundTruth) {
  // The optimizer's allocation must cost no more (at ground truth) than a
  // bouquet of heuristics: uniform split, single-site dumps, random splits.
  util::Rng rng(99);
  for (double lambda : {3e11, 6e11, 9e11}) {
    const AllocationResult r =
        minimize_cost(sites_, policies_, demand_, lambda);
    ASSERT_TRUE(r.ok());
    const double opt_cost =
        evaluate_allocation(sites_, policies_, demand_, r.lambda_vector())
            .total_cost;

    std::vector<std::vector<double>> rivals;
    rivals.push_back({lambda / 3, lambda / 3, lambda / 3});
    for (int trial = 0; trial < 20; ++trial) {
      const double a = rng.uniform();
      const double b = rng.uniform() * (1.0 - a);
      rivals.push_back({lambda * a, lambda * b, lambda * (1.0 - a - b)});
    }
    for (const auto& rival : rivals) {
      // Skip rivals that violate server capacity.
      bool feasible = true;
      for (std::size_t i = 0; i < sites_.size(); ++i)
        if (rival[i] > sites_[i].max_requests_per_hour()) feasible = false;
      if (!feasible) continue;
      const double rival_cost =
          evaluate_allocation(sites_, policies_, demand_, rival).total_cost;
      EXPECT_LE(opt_cost, rival_cost * 1.002)
          << "lambda " << lambda;  // 0.2 % slack for model/threshold effects
    }
  }
}

TEST_F(CostMinimizerTest, PrefersCheaperTiersWhenLoadIsLight) {
  // With light load, everything should land where the believed marginal
  // $/request is smallest rather than being spread around.
  const AllocationResult r =
      minimize_cost(sites_, policies_, demand_, 1e11);
  ASSERT_TRUE(r.ok());
  int active_sites = 0;
  for (const auto& site : r.sites)
    if (site.lambda > 0.0) ++active_sites;
  EXPECT_EQ(active_sites, 1);
}

TEST_F(CostMinimizerTest, StepDodging) {
  // Construct a demand level where one site sits just below a price step:
  // the optimizer should cap that site below the step and spill the rest,
  // exactly the behaviour Min-Only cannot express.
  const std::vector<double> demand = {199.0, 300.1, 300.1};  // B cheap tier
  // DC1 can absorb ~1 MW at price 10 before stepping to 13.90.
  const AllocationResult r =
      minimize_cost(sites_, policies_, demand, 4e11);
  ASSERT_TRUE(r.ok());
  const double p1 = r.sites[0].power_mw;
  // Either stays under the 200 MW threshold (1 - margin MW available) or
  // jumps well past it; grazing just over is never optimal.
  const double total_b = p1 + demand[0];
  EXPECT_TRUE(total_b <= 200.0 || total_b >= 210.0)
      << "p1 = " << p1;
}

TEST_F(CostMinimizerTest, ServerOnlyAblationUnderestimatesPower) {
  OptimizerOptions ablated;
  ablated.model_cooling_network = false;
  const double lambda = 6e11;
  const AllocationResult full =
      minimize_cost(sites_, policies_, demand_, lambda);
  const AllocationResult blind =
      minimize_cost(sites_, policies_, demand_, lambda, ablated);
  ASSERT_TRUE(full.ok());
  ASSERT_TRUE(blind.ok());
  const double truth_full =
      evaluate_allocation(sites_, policies_, demand_, full.lambda_vector())
          .total_cost;
  const double truth_blind =
      evaluate_allocation(sites_, policies_, demand_, blind.lambda_vector())
          .total_cost;
  // The blind optimizer believes less power than reality...
  EXPECT_LT(blind.predicted_cost, truth_blind);
  // ...and can never beat the full model at ground truth.
  EXPECT_LE(truth_full, truth_blind * 1.002);
}

TEST_F(CostMinimizerTest, ReportsSearchStatistics) {
  const AllocationResult r =
      minimize_cost(sites_, policies_, demand_, 6e11);
  ASSERT_TRUE(r.ok());
  EXPECT_GE(r.nodes, 1);
  EXPECT_GE(r.iterations, 1);
}

}  // namespace
}  // namespace billcap::core
