// FleetController: per-chunk fault envelopes, quarantine ladder, and
// bitwise thread-count invariance. The 6-site fixture mirrors
// hierarchical_test; the invariance test scales to 100 sites / 20 regions.
#include "core/fleet.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/checkpoint.hpp"
#include "datacenter/catalog.hpp"
#include "market/pricing_policy.hpp"
#include "util/thread_pool.hpp"

namespace billcap::core {
namespace {

class FleetTest : public ::testing::Test {
 protected:
  FleetTest() {
    const auto base_sites = datacenter::paper_datacenters();
    const auto base_policies = market::paper_policies(1);
    for (int rep = 0; rep < 2; ++rep) {
      for (std::size_t i = 0; i < base_sites.size(); ++i) {
        sites_.push_back(base_sites[i]);
        policies_.push_back(base_policies[i]);
        demand_.push_back(170.0 + 25.0 * rep + 10.0 * static_cast<double>(i));
      }
    }
  }

  FleetController make_controller(FleetOptions options = {},
                                  util::ThreadPool* pool = nullptr) {
    return FleetController(sites_, policies_, contiguous_regions(6, 3),
                           options, pool);
  }

  std::vector<datacenter::DataCenter> sites_;
  std::vector<market::PricingPolicy> policies_;
  std::vector<double> demand_;
};

TEST_F(FleetTest, ServesEverythingWithAmpleBudget) {
  FleetController fleet = make_controller();
  const FleetHourOutcome out = fleet.decide_hour(0, 8e11, 2e11, demand_, 1e7);
  EXPECT_EQ(out.mode, CappingOutcome::Mode::kUncapped);
  EXPECT_NEAR(out.served_premium, 8e11, 1e3);
  EXPECT_NEAR(out.served_ordinary, 2e11, 1e3);
  ASSERT_EQ(out.chunks.size(), 2u);
  for (const ChunkOutcome& chunk : out.chunks)
    EXPECT_EQ(chunk.status, ChunkStatus::kOk);
  EXPECT_EQ(out.degraded_chunks, 0u);
  EXPECT_EQ(out.quarantined_chunks, 0u);
  EXPECT_EQ(out.region_down_chunks, 0u);
}

TEST_F(FleetTest, PooledAndSerialHoursAreBitwiseIdentical) {
  util::ThreadPool pool(4);
  FleetController serial = make_controller();
  FleetController threaded = make_controller({}, &pool);
  const FleetHourOutcome a = serial.decide_hour(0, 8e11, 2e11, demand_, 1e7);
  const FleetHourOutcome b = threaded.decide_hour(0, 8e11, 2e11, demand_, 1e7);
  EXPECT_EQ(a.served_premium, b.served_premium);    // bitwise, not NEAR
  EXPECT_EQ(a.served_ordinary, b.served_ordinary);
  EXPECT_EQ(a.predicted_cost, b.predicted_cost);
  ASSERT_EQ(a.site_lambda.size(), b.site_lambda.size());
  for (std::size_t i = 0; i < a.site_lambda.size(); ++i)
    EXPECT_EQ(a.site_lambda[i], b.site_lambda[i]) << i;
}

TEST_F(FleetTest, RegionOutageShedsLocallyAndRecovers) {
  FaultPlan plan;
  plan.region_outages.push_back({/*region=*/1, /*start=*/0, /*duration=*/2});
  const FaultInjector injector(plan, sites_.size(), /*num_regions=*/2,
                               /*horizon=*/24);
  FleetController fleet = make_controller();
  const FleetHourOutcome down =
      fleet.decide_hour(0, 8e11, 2e11, demand_, 1e7, &injector);
  EXPECT_EQ(down.chunks[0].status, ChunkStatus::kOk);
  EXPECT_EQ(down.chunks[1].status, ChunkStatus::kRegionDown);
  EXPECT_EQ(down.region_down_chunks, 1u);
  // The surviving region still serves its (redistributed) share; the dead
  // region's sites carry zero load.
  EXPECT_GT(down.served_premium, 0.0);
  for (std::size_t i = 3; i < 6; ++i) EXPECT_EQ(down.site_lambda[i], 0.0);
  // A lost region is an outage, not a ladder failure: no quarantine.
  EXPECT_FALSE(fleet.region_quarantined(1, 1));
  const FleetHourOutcome after =
      fleet.decide_hour(2, 8e11, 2e11, demand_, 1e7, &injector);
  EXPECT_EQ(after.chunks[1].status, ChunkStatus::kOk);
  EXPECT_EQ(after.region_down_chunks, 0u);
}

TEST_F(FleetTest, ChunkSolverStallDegradesThatChunkOnly) {
  FaultPlan plan;
  plan.chunk_stalls.push_back(
      {/*region=*/0, /*start=*/0, /*duration=*/1, /*node_budget=*/1});
  const FaultInjector injector(plan, sites_.size(), 2, 24);
  FleetController fleet = make_controller();
  const FleetHourOutcome out =
      fleet.decide_hour(0, 8e11, 2e11, demand_, 1e7, &injector);
  EXPECT_EQ(out.chunks[0].status, ChunkStatus::kDegraded);
  EXPECT_NE(out.chunks[0].failure, FailureReason::kNone);
  EXPECT_EQ(out.chunks[1].status, ChunkStatus::kOk);
  EXPECT_EQ(out.degraded_chunks, 1u);
  // Degraded is not dead: the chunk still serves via the ladder.
  EXPECT_GT(out.chunks[0].outcome.served_premium, 0.0);
}

TEST_F(FleetTest, ChunkArenaSqueezeClassifiesArenaExhausted) {
  FaultPlan plan;
  plan.chunk_squeezes.push_back(
      {/*region=*/0, /*start=*/0, /*duration=*/1, /*arena_bytes=*/64});
  const FaultInjector injector(plan, sites_.size(), 2, 24);
  FleetController fleet = make_controller();
  const FleetHourOutcome out =
      fleet.decide_hour(0, 8e11, 2e11, demand_, 1e7, &injector);
  EXPECT_EQ(out.chunks[0].status, ChunkStatus::kDegraded);
  EXPECT_EQ(out.chunks[0].failure, FailureReason::kArenaExhausted);
  EXPECT_EQ(out.chunks[1].status, ChunkStatus::kOk);
  EXPECT_GT(out.chunks[0].outcome.served_premium, 0.0);  // greedy fallback
}

TEST_F(FleetTest, ThrownChunkIsCaughtAndServesStandby) {
  FleetController fleet = make_controller();
  fleet.chunk_fault_hook = [](std::size_t region, std::size_t) {
    if (region == 1) throw std::runtime_error("chunk node fell over");
  };
  const FleetHourOutcome out = fleet.decide_hour(0, 8e11, 2e11, demand_, 1e7);
  EXPECT_EQ(out.chunks[0].status, ChunkStatus::kOk);
  EXPECT_EQ(out.chunks[1].status, ChunkStatus::kDegraded);
  EXPECT_EQ(out.chunks[1].failure, FailureReason::kThrown);
  // The standby fallback still serves the region's premium share.
  EXPECT_GT(out.chunks[1].outcome.served_premium, 0.0);
  EXPECT_EQ(out.chunks[1].outcome.mode, CappingOutcome::Mode::kPremiumOnly);
}

TEST_F(FleetTest, QuarantineTripsAfterRepeatedFailuresAndRecovers) {
  FleetOptions options;
  options.quarantine.window_hours = 8;
  options.quarantine.trip_failures = 3;
  options.quarantine.quarantine_hours = 2;
  FleetController fleet = make_controller(options);
  bool hook_on = true;
  fleet.chunk_fault_hook = [&hook_on](std::size_t region, std::size_t) {
    if (hook_on && region == 0) throw std::runtime_error("flaky chunk");
  };
  for (std::size_t h = 0; h < 3; ++h) {
    const FleetHourOutcome out =
        fleet.decide_hour(h, 8e11, 2e11, demand_, 1e7);
    EXPECT_EQ(out.chunks[0].status, ChunkStatus::kDegraded) << h;
  }
  // Three failures in the window: hours 3 and 4 are quarantined.
  EXPECT_TRUE(fleet.region_quarantined(0, 3));
  hook_on = false;  // the region has recovered, but quarantine holds
  const FleetHourOutcome gated = fleet.decide_hour(3, 8e11, 2e11, demand_, 1e7);
  EXPECT_EQ(gated.chunks[0].status, ChunkStatus::kQuarantined);
  EXPECT_EQ(gated.quarantined_chunks, 1u);
  // Quarantined standby still guarantees the premium share.
  EXPECT_GT(gated.chunks[0].outcome.served_premium, 0.0);
  EXPECT_EQ(fleet.decide_hour(4, 8e11, 2e11, demand_, 1e7).quarantined_chunks,
            1u);
  // Probation: the ladder window was cleared, the region solves cleanly.
  const FleetHourOutcome healed = fleet.decide_hour(5, 8e11, 2e11, demand_, 1e7);
  EXPECT_EQ(healed.chunks[0].status, ChunkStatus::kOk);
  EXPECT_FALSE(fleet.region_quarantined(0, 5));
}

TEST_F(FleetTest, RunMonthAggregatesChunkCountersIntoMonthlyResult) {
  FleetMonthConfig config;
  config.hours = 12;
  config.seed = 7;
  config.base_premium = 6e11;
  config.base_ordinary = 1.5e11;
  config.base_demand_mw = 180.0;
  config.hourly_budget = 1e7;
  config.faults.region_outages.push_back({1, 2, 2});
  config.faults.chunk_stalls.push_back({0, 5, 2, 1});
  FleetController fleet = make_controller();
  const MonthlyResult result = fleet.run_month(config);
  ASSERT_EQ(result.hours.size(), 12u);
  EXPECT_EQ(result.region_down_chunks, 2u);
  EXPECT_GE(result.degraded_chunks, 2u);
  std::size_t tallied = 0;
  for (std::size_t count : result.chunk_failure_tally) tallied += count;
  EXPECT_EQ(tallied, result.degraded_chunks);
  EXPECT_GT(result.total_served_premium, 0.0);
}

TEST_F(FleetTest, ChunkTalliesSurviveTheCheckpointJournal) {
  FleetMonthConfig config;
  config.hours = 6;
  config.seed = 11;
  config.base_premium = 6e11;
  config.base_ordinary = 1.5e11;
  config.base_demand_mw = 180.0;
  config.hourly_budget = 1e7;
  config.faults.chunk_stalls.push_back({0, 1, 3, 1});
  FleetController fleet = make_controller();
  const MonthlyResult result = fleet.run_month(config);
  ASSERT_GT(result.degraded_chunks, 0u);

  CheckpointState state;
  state.config_digest = 0xfee7;
  state.strategy = result.strategy;
  state.next_hour = result.hours.size();
  state.partial = result;
  const std::string path =
      ::testing::TempDir() + "fleet_chunk_tally.journal";
  save_checkpoint(path, state);
  const CheckpointState loaded = load_checkpoint(path);
  EXPECT_EQ(loaded.partial.degraded_chunks, result.degraded_chunks);
  EXPECT_EQ(loaded.partial.quarantined_chunks, result.quarantined_chunks);
  EXPECT_EQ(loaded.partial.region_down_chunks, result.region_down_chunks);
  EXPECT_EQ(loaded.partial.chunk_failure_tally, result.chunk_failure_tally);
  std::remove(path.c_str());
}

// The ISSUE's acceptance bar: the same 100-site month at 1, 4 and 16
// threads (and with no pool at all) must produce bitwise-identical CSV
// output — per-task determinism plus ordered reduction, no exceptions.
TEST(FleetInvarianceTest, HundredSiteMonthIsThreadCountInvariant) {
  const auto base_sites = datacenter::paper_datacenters();
  const auto base_policies = market::paper_policies(1);
  std::vector<datacenter::DataCenter> sites;
  std::vector<market::PricingPolicy> policies;
  while (sites.size() < 100) {
    const std::size_t i = sites.size() % base_sites.size();
    sites.push_back(base_sites[i]);
    policies.push_back(base_policies[i]);
  }
  const std::vector<Region> regions = contiguous_regions(100, 5);

  FleetMonthConfig config;
  config.hours = 24;
  config.seed = 2024;
  config.base_premium = 1.2e13;
  config.base_ordinary = 3e12;
  config.base_demand_mw = 180.0;
  config.hourly_budget = 2e8;
  // A fault ladder touching every envelope: a dead region, a stalled
  // chunk, a squeezed arena and a site outage, all mid-month.
  config.faults.region_outages.push_back({3, 6, 3});
  config.faults.chunk_stalls.push_back({7, 4, 6, 1});
  config.faults.chunk_squeezes.push_back({11, 10, 4, 64});
  config.faults.outages.push_back({42, 2, 5});

  std::string reference;
  for (const std::size_t threads : {std::size_t{0}, std::size_t{1},
                                    std::size_t{4}, std::size_t{16}}) {
    std::unique_ptr<util::ThreadPool> pool;
    if (threads > 0) pool = std::make_unique<util::ThreadPool>(threads);
    FleetController fleet(sites, policies, regions, {}, pool.get());
    const MonthlyResult result = fleet.run_month(config);
    const std::string csv = fleet_month_csv(result);
    if (reference.empty()) {
      reference = csv;
      EXPECT_GT(result.degraded_chunks, 0u);
      EXPECT_GT(result.region_down_chunks, 0u);
      // Premium QoS held through the whole ladder.
      EXPECT_GT(result.premium_throughput_ratio(), 0.9);
    } else {
      EXPECT_EQ(csv, reference) << "threads=" << threads;
    }
  }
}

}  // namespace
}  // namespace billcap::core
