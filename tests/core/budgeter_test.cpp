#include "core/budgeter.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/calendar.hpp"

namespace billcap::core {
namespace {

std::vector<double> uniform_weights() {
  return std::vector<double>(util::kHoursPerWeek, 1.0 / 168.0);
}

TEST(BudgeterTest, Validation) {
  EXPECT_THROW(Budgeter(0.0, uniform_weights(), 720), std::invalid_argument);
  EXPECT_THROW(Budgeter(1e6, std::vector<double>(10, 0.1), 720),
               std::invalid_argument);
  EXPECT_THROW(Budgeter(1e6, uniform_weights(), 0), std::invalid_argument);
  std::vector<double> negative = uniform_weights();
  negative[5] = -0.1;
  EXPECT_THROW(Budgeter(1e6, negative, 720), std::invalid_argument);
  std::vector<double> zeros(util::kHoursPerWeek, 0.0);
  EXPECT_THROW(Budgeter(1e6, zeros, 720), std::invalid_argument);
}

TEST(BudgeterTest, UniformWeightsSplitEvenly) {
  const Budgeter b(720.0, uniform_weights(), 720);
  EXPECT_NEAR(b.hourly_budget(0, 0.0), 1.0, 1e-9);
}

TEST(BudgeterTest, FullConsumptionConservesBudget) {
  // Spending exactly each hour's budget walks through the whole month and
  // exhausts (exactly) the monthly total.
  const Budgeter b(2.5e6, uniform_weights(), 720);
  double spent = 0.0;
  for (std::size_t h = 0; h < 720; ++h)
    spent += b.hourly_budget(h, spent);
  EXPECT_NEAR(spent, 2.5e6, 1.0);
}

TEST(BudgeterTest, UnusedBudgetCarriesOver) {
  // Spend nothing for a while: later hourly budgets must grow (Figure 6's
  // within-week growth).
  const Budgeter b(720.0, uniform_weights(), 720);
  const double early = b.hourly_budget(0, 0.0);
  const double later = b.hourly_budget(100, 0.0);  // still nothing spent
  EXPECT_GT(later, early);
}

TEST(BudgeterTest, OverrunShrinksLaterBudgets) {
  const Budgeter b(720.0, uniform_weights(), 720);
  const double nominal = b.hourly_budget(100, 100.0);
  const double after_overrun = b.hourly_budget(100, 400.0);
  EXPECT_LT(after_overrun, nominal);
}

TEST(BudgeterTest, ExhaustedBudgetYieldsZero) {
  const Budgeter b(1000.0, uniform_weights(), 720);
  EXPECT_DOUBLE_EQ(b.hourly_budget(10, 1000.0), 0.0);
  EXPECT_DOUBLE_EQ(b.hourly_budget(10, 2000.0), 0.0);
}

TEST(BudgeterTest, WeightedHoursGetProportionalBudget) {
  std::vector<double> weights(util::kHoursPerWeek, 1.0);
  weights[12] = 5.0;  // one hot hour-of-week slot
  const Budgeter b(1e6, weights, 720);
  const double hot = b.hourly_budget(12, 0.0);
  const double cold = b.hourly_budget(13, 0.0);
  EXPECT_NEAR(hot / cold, 5.0, 0.05);
}

TEST(BudgeterTest, HourBeyondHorizonThrows) {
  const Budgeter b(1e6, uniform_weights(), 720);
  EXPECT_THROW(b.hourly_budget(720, 0.0), std::out_of_range);
  EXPECT_THROW(b.weight_of_hour(720), std::out_of_range);
}

TEST(BudgeterTest, WeightsOfHoursSumToOne) {
  std::vector<double> weights(util::kHoursPerWeek, 1.0);
  weights[0] = 7.0;
  const Budgeter b(1e6, weights, 720);
  double total = 0.0;
  for (std::size_t h = 0; h < 720; ++h) total += b.weight_of_hour(h);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(BudgeterTest, LastHourGetsEverythingRemaining) {
  const Budgeter b(1000.0, uniform_weights(), 720);
  EXPECT_NEAR(b.hourly_budget(719, 400.0), 600.0, 1e-9);
}

TEST(BudgeterTest, PhaseOffsetShiftsSlots) {
  // A month that starts on Thursday 00:00 (offset 72): the hot Monday-noon
  // slot (index 36) must be applied 96 hours into the month, not 36.
  std::vector<double> weights(util::kHoursPerWeek, 1.0);
  weights[36] = 9.0;
  const Budgeter aligned(1e6, weights, 720, /*phase_offset_hours=*/0);
  const Budgeter thursday(1e6, weights, 720, /*phase_offset_hours=*/72);
  EXPECT_GT(aligned.hourly_budget(36, 0.0),
            5.0 * aligned.hourly_budget(35, 0.0));
  // Off-slot hours differ only through the shrinking suffix (<1 %).
  EXPECT_NEAR(thursday.hourly_budget(36, 0.0) / thursday.hourly_budget(35, 0.0),
              1.0, 0.01);
  EXPECT_GT(thursday.hourly_budget(36 + 96, 0.0),
            5.0 * thursday.hourly_budget(35 + 96, 0.0));
}

TEST(BudgeterTest, PhaseOffsetConservesBudget) {
  const Budgeter b(1e6, uniform_weights(), 720, 72);
  double spent = 0.0;
  for (std::size_t h = 0; h < 720; ++h) spent += b.hourly_budget(h, spent);
  EXPECT_NEAR(spent, 1e6, 1.0);
}

TEST(BudgeterTest, HourOfWeekPeriodicity) {
  // With nothing spent, two hours sharing an hour-of-week slot but in
  // different weeks differ only through the shrinking tail.
  std::vector<double> weights(util::kHoursPerWeek, 1.0);
  weights[30] = 3.0;
  const Budgeter b(1e6, weights, 720);
  EXPECT_GT(b.hourly_budget(30, 0.0), b.hourly_budget(29, 0.0));
  EXPECT_GT(b.hourly_budget(30 + 168, 0.0), b.hourly_budget(29 + 168, 0.0));
}

}  // namespace
}  // namespace billcap::core
