#include "core/supervisor.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "core/checkpoint.hpp"
#include "util/journal.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/wait.h>
#endif

namespace billcap::core {
namespace {

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

/// Synthesizes a waitpid-style status word for a normal exit with `code`.
int exited_status(int code) {
#if defined(__unix__) || defined(__APPLE__)
  return code << 8;  // WIFEXITED layout on every POSIX libc we build on
#else
  return code;
#endif
}

// ---- classify_wait_status -------------------------------------------------

#if defined(__unix__) || defined(__APPLE__)
TEST(SupervisorTest, ClassifiesRealChildExits) {
  const auto run_sh = [](const char* script) {
    return classify_wait_status(
        run_child({"/bin/sh", {"-c", std::string(script)}}));
  };
  EXPECT_EQ(run_sh("exit 0"), ChildExit::kSuccess);
  EXPECT_EQ(run_sh("exit 1"), ChildExit::kFailure);
  EXPECT_EQ(run_sh("exit 2"), ChildExit::kUsage);
  EXPECT_EQ(run_sh("exit 4"), ChildExit::kStopped);
  EXPECT_EQ(run_sh("exit 3"), ChildExit::kFailure);  // QoS breach = failure
  // A SIGKILL'd child is a crash, not an exit code.
  EXPECT_EQ(run_sh("kill -9 $$"), ChildExit::kSignalled);
}

TEST(SupervisorTest, ExecFailureIsAPlainFailure) {
  // A nonexistent program exits 127 from the forked child, which the
  // policy treats as a restartable failure (not a usage error).
  const int status = run_child({"/nonexistent/billcap-no-such-binary", {}});
  EXPECT_EQ(classify_wait_status(status), ChildExit::kFailure);
}
#endif

TEST(SupervisorTest, ClassifiesSyntheticStatusWords) {
  EXPECT_EQ(classify_wait_status(exited_status(kExitSuccess)),
            ChildExit::kSuccess);
  EXPECT_EQ(classify_wait_status(exited_status(kExitUsage)),
            ChildExit::kUsage);
  EXPECT_EQ(classify_wait_status(exited_status(kExitStopped)),
            ChildExit::kStopped);
  EXPECT_EQ(classify_wait_status(exited_status(1)), ChildExit::kFailure);
  EXPECT_EQ(classify_wait_status(exited_status(127)), ChildExit::kFailure);
}

// ---- SupervisorPolicy -----------------------------------------------------

using Action = SupervisorDecision::Action;

SupervisorOptions fast_options() {
  SupervisorOptions o;
  o.restart_budget = 100;
  o.restart_window_s = 3600.0;
  o.backoff_base_ms = 50.0;
  o.backoff_multiplier = 2.0;
  o.backoff_max_ms = 5000.0;
  o.backoff_jitter_frac = 0.0;  // exact delays unless a test wants jitter
  o.escalate_after = 3;
  return o;
}

TEST(SupervisorPolicyTest, ValidatesOptions) {
  SupervisorOptions bad = fast_options();
  bad.backoff_multiplier = 0.5;
  EXPECT_THROW(SupervisorPolicy{bad}, std::invalid_argument);
  bad = fast_options();
  bad.backoff_jitter_frac = 1.5;
  EXPECT_THROW(SupervisorPolicy{bad}, std::invalid_argument);
}

TEST(SupervisorPolicyTest, TerminalExitsMapDirectly) {
  SupervisorPolicy policy(fast_options());
  EXPECT_EQ(policy.on_child_exit(ChildExit::kSuccess, false, 720, 0.0).action,
            Action::kStop);
  EXPECT_EQ(policy.on_child_exit(ChildExit::kUsage, false, 0, 0.0).action,
            Action::kGiveUp);
  EXPECT_EQ(policy.on_child_exit(ChildExit::kStopped, false, 10, 0.0).action,
            Action::kStop);
}

TEST(SupervisorPolicyTest, StandbyChunkHandsBackToPrimary) {
  SupervisorPolicy policy(fast_options());
  const SupervisorDecision d =
      policy.on_child_exit(ChildExit::kStopped, /*was_standby=*/true,
                           /*hours_advanced=*/4, 0.0);
  EXPECT_EQ(d.action, Action::kRestartPrimary);
  EXPECT_NE(d.reason.find("standby chunk committed (4h)"), std::string::npos);
}

TEST(SupervisorPolicyTest, BackoffDoublesWhileStuckAndResetsOnProgress) {
  SupervisorPolicy policy(fast_options());  // jitter 0: delays are exact
  // Three zero-progress crashes: 50ms, 100ms, then escalation (still
  // backing off at 200ms for the standby spawn).
  EXPECT_EQ(policy.on_child_exit(ChildExit::kSignalled, false, 0, 0.0).delay_ms,
            50.0);
  EXPECT_EQ(policy.on_child_exit(ChildExit::kSignalled, false, 0, 1.0).delay_ms,
            100.0);
  const SupervisorDecision escalated =
      policy.on_child_exit(ChildExit::kSignalled, false, 0, 2.0);
  EXPECT_EQ(escalated.action, Action::kRunStandby);
  EXPECT_EQ(escalated.delay_ms, 200.0);

  // A later primary attempt that advanced the checkpoint de-escalates and
  // returns to the base delay.
  const SupervisorDecision recovered =
      policy.on_child_exit(ChildExit::kSignalled, false, 12, 3.0);
  EXPECT_EQ(recovered.action, Action::kRestartPrimary);
  EXPECT_EQ(recovered.delay_ms, 50.0);
  EXPECT_FALSE(policy.escalated());
}

TEST(SupervisorPolicyTest, BackoffIsCappedAtMax) {
  SupervisorOptions o = fast_options();
  o.escalate_after = 100;  // keep restarting the primary throughout
  SupervisorPolicy policy(o);
  double last = 0.0;
  for (int i = 0; i < 12; ++i)
    last = policy.on_child_exit(ChildExit::kFailure, false, 0,
                                static_cast<double>(i))
               .delay_ms;
  EXPECT_EQ(last, o.backoff_max_ms);
}

TEST(SupervisorPolicyTest, JitterIsDeterministicInSeedAndBounded) {
  SupervisorOptions o = fast_options();
  o.backoff_jitter_frac = 0.2;
  o.escalate_after = 100;
  SupervisorPolicy a(o);
  SupervisorPolicy b(o);
  o.seed ^= 1;
  SupervisorPolicy c(o);
  bool any_differs = false;
  for (int i = 0; i < 8; ++i) {
    const double t = static_cast<double>(i);
    const double da =
        a.on_child_exit(ChildExit::kSignalled, false, 0, t).delay_ms;
    const double db =
        b.on_child_exit(ChildExit::kSignalled, false, 0, t).delay_ms;
    const double dc =
        c.on_child_exit(ChildExit::kSignalled, false, 0, t).delay_ms;
    EXPECT_EQ(da, db) << "same seed must give the same schedule";
    any_differs |= (da != dc);
    const double nominal =
        std::min(50.0 * std::pow(2.0, static_cast<double>(i)), 5000.0);
    EXPECT_GE(da, nominal * 0.8);
    EXPECT_LE(da, nominal * 1.2);
  }
  EXPECT_TRUE(any_differs) << "different seeds should de-synchronize";
}

TEST(SupervisorPolicyTest, EscalatesAfterConsecutiveZeroProgress) {
  SupervisorPolicy policy(fast_options());  // escalate_after = 3
  // Progress interleaved with failures keeps resetting the streak.
  policy.on_child_exit(ChildExit::kSignalled, false, 0, 0.0);
  policy.on_child_exit(ChildExit::kSignalled, false, 0, 1.0);
  policy.on_child_exit(ChildExit::kSignalled, false, 5, 2.0);  // progress
  EXPECT_EQ(policy.consecutive_no_progress(), 0u);
  EXPECT_FALSE(policy.escalated());

  policy.on_child_exit(ChildExit::kSignalled, false, 0, 3.0);
  policy.on_child_exit(ChildExit::kSignalled, false, 0, 4.0);
  const SupervisorDecision d =
      policy.on_child_exit(ChildExit::kSignalled, false, 0, 5.0);
  EXPECT_EQ(d.action, Action::kRunStandby);
  EXPECT_TRUE(policy.escalated());
  EXPECT_NE(d.reason.find("escalating to degraded standby"),
            std::string::npos);

  // Standby progress does NOT de-escalate (only a healthy primary does):
  // a crashing standby attempt keeps the escalation latched too.
  EXPECT_EQ(policy.on_child_exit(ChildExit::kSignalled, true, 2, 6.0).action,
            Action::kRunStandby);
  EXPECT_TRUE(policy.escalated());
  // A primary attempt with progress clears it.
  policy.on_child_exit(ChildExit::kSignalled, false, 2, 7.0);
  EXPECT_FALSE(policy.escalated());
}

TEST(SupervisorPolicyTest, SlidingWindowBudgetGivesUp) {
  SupervisorOptions o = fast_options();
  o.restart_budget = 3;
  o.restart_window_s = 100.0;
  o.escalate_after = 1000;
  SupervisorPolicy policy(o);
  // Three failures inside the window are tolerated; the fourth trips it.
  for (int i = 0; i < 3; ++i)
    EXPECT_EQ(policy
                  .on_child_exit(ChildExit::kFailure, false, 1,
                                 static_cast<double>(i))
                  .action,
              Action::kRestartPrimary);
  const SupervisorDecision d =
      policy.on_child_exit(ChildExit::kFailure, false, 1, 3.0);
  EXPECT_EQ(d.action, Action::kGiveUp);
  EXPECT_NE(d.reason.find("restart budget exhausted"), std::string::npos);
}

TEST(SupervisorPolicyTest, OldFailuresAgeOutOfTheWindow) {
  SupervisorOptions o = fast_options();
  o.restart_budget = 2;
  o.restart_window_s = 10.0;
  o.escalate_after = 1000;
  SupervisorPolicy policy(o);
  // Failures spaced wider than the window never accumulate.
  for (int i = 0; i < 8; ++i)
    EXPECT_EQ(policy
                  .on_child_exit(ChildExit::kFailure, false, 1,
                                 static_cast<double>(i) * 20.0)
                  .action,
              Action::kRestartPrimary);
}

// ---- Supervisor with scripted hooks ---------------------------------------

/// Drives the Supervisor loop with a scripted sequence of (exit status,
/// checkpoint hour after the run) pairs and no real processes or sleeps.
struct ScriptedRun {
  int status;              ///< waitpid-style status the fake child returns
  std::size_t hour_after;  ///< checkpoint probe after this run
  bool expect_standby = false;  ///< which child the supervisor must pick
};

SuperviseReport run_scripted(const SupervisorOptions& options,
                             std::vector<ScriptedRun> script,
                             std::vector<double>* delays = nullptr) {
  std::size_t step = 0;
  std::size_t hour = 0;
  double clock_s = 0.0;
  SuperviseHooks hooks;
  hooks.run = [&](const ChildSpec& spec, bool standby) {
    EXPECT_LT(step, script.size()) << "supervisor ran more children than "
                                      "scripted";
    const ScriptedRun& r = script[std::min(step, script.size() - 1)];
    EXPECT_EQ(standby, r.expect_standby) << "step " << step;
    EXPECT_EQ(spec.program,
              r.expect_standby ? "standby-prog" : "primary-prog")
        << "step " << step;
    hour = r.hour_after;
    ++step;
    return r.status;
  };
  hooks.now_s = [&] { return clock_s += 1.0; };
  hooks.sleep_ms = [&](double ms) {
    if (delays) delays->push_back(ms);
  };
  hooks.checkpoint_hour = [&] { return hour; };
  hooks.log = [](const std::string&) {};

  Supervisor supervisor(options, {"primary-prog", {"simulate"}},
                        {"standby-prog", {"simulate", "--standby"}},
                        temp_path("billcap_supervisor_unused.j"), 3, hooks);
  SuperviseReport report = supervisor.run();
  EXPECT_EQ(step, script.size()) << "supervisor stopped early";
  return report;
}

TEST(SupervisorTest, CleanMonthIsOneRunNoRestarts) {
  const SuperviseReport report = run_scripted(
      fast_options(), {{exited_status(kExitSuccess), 720, false}});
  EXPECT_EQ(report.exit_code, kExitSuccess);
  EXPECT_EQ(report.primary_runs, 1u);
  EXPECT_EQ(report.standby_runs, 0u);
  EXPECT_EQ(report.restarts, 0u);
  EXPECT_FALSE(report.escalated);
  EXPECT_FALSE(report.gave_up);
}

TEST(SupervisorTest, CrashesAreRestartedUntilTheMonthCompletes) {
  std::vector<double> delays;
  const SuperviseReport report = run_scripted(
      fast_options(),
      {
          {9 /*SIGKILL*/, 100, false},  // progress, then crash
          {9, 250, false},
          {exited_status(kExitSuccess), 720, false},
      },
      &delays);
  EXPECT_EQ(report.exit_code, kExitSuccess);
  EXPECT_EQ(report.primary_runs, 3u);
  EXPECT_EQ(report.restarts, 2u);
  EXPECT_FALSE(report.escalated);
  // Both restarts made progress, so both waited the base delay.
  ASSERT_EQ(delays.size(), 2u);
  EXPECT_EQ(delays[0], 50.0);
  EXPECT_EQ(delays[1], 50.0);
}

TEST(SupervisorTest, EscalatesToStandbyThenRecoversThePrimary) {
  SupervisorOptions o = fast_options();
  o.escalate_after = 2;
  const SuperviseReport report = run_scripted(
      o, {
             {9, 0, false},                          // no progress
             {9, 0, false},                          // no progress: escalate
             {exited_status(kExitStopped), 4, true},  // standby chunk
             {exited_status(kExitSuccess), 720, false},  // primary resumes
         });
  EXPECT_EQ(report.exit_code, kExitSuccess);
  EXPECT_EQ(report.primary_runs, 3u);
  EXPECT_EQ(report.standby_runs, 1u);
  EXPECT_TRUE(report.escalated);
  EXPECT_FALSE(report.gave_up);
  // The standby chunk handing back to the primary is not a restart.
  EXPECT_EQ(report.restarts, 2u);
}

TEST(SupervisorTest, GracefulChildStopStopsTheSupervisor) {
  const SuperviseReport report = run_scripted(
      fast_options(), {{exited_status(kExitStopped), 42, false}});
  EXPECT_EQ(report.exit_code, kExitStopped);
  EXPECT_EQ(report.restarts, 0u);
}

TEST(SupervisorTest, UsageErrorGivesUpImmediately) {
  const SuperviseReport report = run_scripted(
      fast_options(), {{exited_status(kExitUsage), 0, false}});
  EXPECT_EQ(report.exit_code, kExitGaveUp);
  EXPECT_TRUE(report.gave_up);
  EXPECT_EQ(report.primary_runs, 1u);
}

TEST(SupervisorTest, BudgetExhaustionGivesUp) {
  SupervisorOptions o = fast_options();
  o.restart_budget = 2;
  o.escalate_after = 1000;
  const SuperviseReport report =
      run_scripted(o, {
                          {exited_status(1), 0, false},
                          {exited_status(1), 0, false},
                          {exited_status(1), 0, false},
                      });
  EXPECT_EQ(report.exit_code, kExitGaveUp);
  EXPECT_TRUE(report.gave_up);
  EXPECT_EQ(report.restarts, 2u);
  EXPECT_FALSE(report.events.empty());
}

// ---- probe_checkpoint_hour ------------------------------------------------

TEST(SupervisorTest, ProbeFallsBackPastCorruptedGenerations) {
  const std::string path = temp_path("billcap_supervisor_probe.j");
  for (std::size_t g = 0; g < 3; ++g)
    std::remove(util::Journal::generation_path(path, g).c_str());
  EXPECT_EQ(probe_checkpoint_hour(path, 3), 0u);

  CheckpointState st;
  st.next_hour = 2;
  for (std::size_t h = 0; h < st.next_hour; ++h) {
    HourRecord rec;
    rec.hour = h;
    st.partial.hours.push_back(rec);
  }
  save_checkpoint_rotated(path, st, 3);
  st.partial.hours.push_back(HourRecord{});
  st.partial.hours.back().hour = st.next_hour++;
  save_checkpoint_rotated(path, st, 3);
  EXPECT_EQ(probe_checkpoint_hour(path, 3), 3u);

  // Stomp the newest generation: the probe reads generation 1 instead.
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("garbage", f);
    std::fclose(f);
  }
  EXPECT_EQ(probe_checkpoint_hour(path, 3), 2u);
  for (std::size_t g = 0; g < 3; ++g)
    std::remove(util::Journal::generation_path(path, g).c_str());
}

// ---- wall-clock independence (billcap-lint BL001 audit) -------------------

// The supervisor's only wall-clock input is the injected now_s hook (see
// the allow(wall-clock) annotation in supervisor.cpp). This pins the
// audit's claim: the same failure sequence observed under two very
// different real-time schedules — a tight crash loop vs. failures spread
// over most of an hour, both inside the restart window — produces
// identical decisions: same actions, same jittered backoff delays, same
// escalation points. Real time therefore cannot change which children run,
// and the checkpointed state they produce stays byte-identical (the
// end-to-end half of that claim is pinned by the crash_resume bitwise
// tests).
TEST(SupervisorPolicyTest, DecisionsAreIndependentOfTheWallClockSchedule) {
  SupervisorOptions o = fast_options();
  o.backoff_jitter_frac = 0.2;  // jitter on: the rng draw order matters
  o.escalate_after = 2;
  o.seed = 7;

  const auto run_schedule = [&](double start_s, double step_s) {
    SupervisorPolicy policy(o);
    const ChildExit exits[] = {ChildExit::kSignalled, ChildExit::kFailure,
                               ChildExit::kSignalled, ChildExit::kFailure};
    const std::size_t advanced[] = {0, 0, 4, 0};
    const bool standby[] = {false, false, true, false};
    std::vector<SupervisorDecision> decisions;
    double now = start_s;
    for (std::size_t i = 0; i < 4; ++i) {
      decisions.push_back(
          policy.on_child_exit(exits[i], standby[i], advanced[i], now));
      now += step_s;
    }
    return decisions;
  };

  const auto fast = run_schedule(0.0, 0.001);  // tight crash loop
  const auto slow = run_schedule(1e6, 800.0);  // spread over ~40 minutes
  ASSERT_EQ(fast.size(), slow.size());
  for (std::size_t i = 0; i < fast.size(); ++i) {
    EXPECT_EQ(fast[i].action, slow[i].action) << "step " << i;
    EXPECT_EQ(fast[i].delay_ms, slow[i].delay_ms) << "step " << i;
  }
  // The schedule did exercise both escalation and jittered delays.
  EXPECT_EQ(fast[1].action, Action::kRunStandby);
  EXPECT_GT(fast[1].delay_ms, 0.0);
}

}  // namespace
}  // namespace billcap::core
