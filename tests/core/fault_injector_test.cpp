#include "core/fault_injector.hpp"

#include <gtest/gtest.h>

namespace billcap::core {
namespace {

TEST(FaultInjectorTest, DefaultConstructedReportsNoFaults) {
  const FaultInjector injector;
  EXPECT_FALSE(injector.enabled());
  EXPECT_TRUE(injector.site_available(0, 0));
  EXPECT_EQ(injector.sites_down(5), 0u);
  EXPECT_FALSE(injector.prices_stale(7));
  EXPECT_EQ(injector.observed_market_hour(7), 7u);
  EXPECT_DOUBLE_EQ(injector.demand_multiplier(1, 3), 1.0);
  EXPECT_DOUBLE_EQ(injector.solver_deadline_ms(3), 0.0);
}

TEST(FaultInjectorTest, OutageWindowExactBounds) {
  FaultPlan plan;
  plan.outages.push_back({1, 10, 5});  // hours [10, 15)
  const FaultInjector injector(plan, 3, 100);
  EXPECT_TRUE(injector.enabled());
  EXPECT_TRUE(injector.site_available(1, 9));
  EXPECT_FALSE(injector.site_available(1, 10));
  EXPECT_FALSE(injector.site_available(1, 14));
  EXPECT_TRUE(injector.site_available(1, 15));
  // Other sites untouched.
  EXPECT_TRUE(injector.site_available(0, 12));
  EXPECT_TRUE(injector.site_available(2, 12));
  EXPECT_EQ(injector.sites_down(12), 1u);
  EXPECT_EQ(injector.sites_down(15), 0u);
}

TEST(FaultInjectorTest, StaleIntervalFreezesAtLastSeenHour) {
  FaultPlan plan;
  plan.stale_intervals.push_back({20, 4});  // hours [20, 24)
  const FaultInjector injector(plan, 3, 100);
  EXPECT_FALSE(injector.prices_stale(19));
  EXPECT_TRUE(injector.prices_stale(20));
  EXPECT_TRUE(injector.prices_stale(23));
  EXPECT_FALSE(injector.prices_stale(24));
  for (std::size_t h = 20; h < 24; ++h)
    EXPECT_EQ(injector.observed_market_hour(h), 19u) << h;
  EXPECT_EQ(injector.observed_market_hour(24), 24u);
}

TEST(FaultInjectorTest, StaleIntervalStartingAtZeroPinsHourZero) {
  FaultPlan plan;
  plan.stale_intervals.push_back({0, 3});
  const FaultInjector injector(plan, 2, 50);
  EXPECT_EQ(injector.observed_market_hour(0), 0u);
  EXPECT_EQ(injector.observed_market_hour(2), 0u);
  // Hour 0 observes its own (hour-0) data, so it is not reported stale.
  EXPECT_FALSE(injector.prices_stale(0));
  EXPECT_TRUE(injector.prices_stale(1));
}

TEST(FaultInjectorTest, ShocksMultiplyAndCompose) {
  FaultPlan plan;
  plan.demand_shocks.push_back({0, 5, 10, 1.5});
  plan.demand_shocks.push_back({0, 8, 2, 2.0});  // overlaps hours 8-9
  const FaultInjector injector(plan, 2, 50);
  EXPECT_DOUBLE_EQ(injector.demand_multiplier(0, 4), 1.0);
  EXPECT_DOUBLE_EQ(injector.demand_multiplier(0, 5), 1.5);
  EXPECT_DOUBLE_EQ(injector.demand_multiplier(0, 8), 3.0);
  EXPECT_DOUBLE_EQ(injector.demand_multiplier(0, 10), 1.5);
  EXPECT_DOUBLE_EQ(injector.demand_multiplier(1, 8), 1.0);
}

TEST(FaultInjectorTest, TightestDeadlineWinsOnOverlap) {
  FaultPlan plan;
  plan.deadline_squeezes.push_back({10, 10, 8.0});
  plan.deadline_squeezes.push_back({15, 2, 2.0});
  const FaultInjector injector(plan, 1, 50);
  EXPECT_DOUBLE_EQ(injector.solver_deadline_ms(9), 0.0);
  EXPECT_DOUBLE_EQ(injector.solver_deadline_ms(12), 8.0);
  EXPECT_DOUBLE_EQ(injector.solver_deadline_ms(15), 2.0);
  EXPECT_DOUBLE_EQ(injector.solver_deadline_ms(17), 8.0);
  EXPECT_DOUBLE_EQ(injector.solver_deadline_ms(20), 0.0);
}

TEST(FaultInjectorTest, IntervalsClipToHorizonAndBadSitesIgnored) {
  FaultPlan plan;
  plan.outages.push_back({0, 45, 100});  // runs past the horizon
  plan.outages.push_back({9, 0, 10});    // site index out of range
  const FaultInjector injector(plan, 2, 50);
  EXPECT_FALSE(injector.site_available(0, 49));
  // Beyond the horizon everything reports "no fault".
  EXPECT_TRUE(injector.site_available(0, 50));
  EXPECT_EQ(injector.sites_down(120), 0u);
  EXPECT_EQ(injector.observed_market_hour(120), 120u);
}

TEST(FaultInjectorTest, GeneratedPlanDeterministicInSeed) {
  FaultRates rates;
  rates.outage_rate = 0.01;
  rates.stale_rate = 0.01;
  rates.shock_rate = 0.01;
  rates.squeeze_rate = 0.01;
  const FaultPlan a = generate_fault_plan(rates, 720, 3, 42);
  const FaultPlan b = generate_fault_plan(rates, 720, 3, 42);
  const FaultPlan c = generate_fault_plan(rates, 720, 3, 43);
  ASSERT_EQ(a.outages.size(), b.outages.size());
  for (std::size_t i = 0; i < a.outages.size(); ++i) {
    EXPECT_EQ(a.outages[i].site, b.outages[i].site);
    EXPECT_EQ(a.outages[i].start_hour, b.outages[i].start_hour);
    EXPECT_EQ(a.outages[i].duration_hours, b.outages[i].duration_hours);
  }
  ASSERT_EQ(a.stale_intervals.size(), b.stale_intervals.size());
  ASSERT_EQ(a.demand_shocks.size(), b.demand_shocks.size());
  ASSERT_EQ(a.deadline_squeezes.size(), b.deadline_squeezes.size());
  // A different seed draws a different world.
  const auto same_outages = [](const FaultPlan& x, const FaultPlan& y) {
    if (x.outages.size() != y.outages.size()) return false;
    for (std::size_t i = 0; i < x.outages.size(); ++i) {
      if (x.outages[i].site != y.outages[i].site ||
          x.outages[i].start_hour != y.outages[i].start_hour)
        return false;
    }
    return true;
  };
  EXPECT_FALSE(same_outages(a, c));
}

TEST(FaultInjectorTest, IndependentStreamsPerFaultKind) {
  // Turning a second fault kind on must not change the draws of the first.
  FaultRates outages_only;
  outages_only.outage_rate = 0.02;
  FaultRates both = outages_only;
  both.stale_rate = 0.05;
  const FaultPlan a = generate_fault_plan(outages_only, 720, 3, 7);
  const FaultPlan b = generate_fault_plan(both, 720, 3, 7);
  ASSERT_EQ(a.outages.size(), b.outages.size());
  for (std::size_t i = 0; i < a.outages.size(); ++i) {
    EXPECT_EQ(a.outages[i].site, b.outages[i].site);
    EXPECT_EQ(a.outages[i].start_hour, b.outages[i].start_hour);
    EXPECT_EQ(a.outages[i].duration_hours, b.outages[i].duration_hours);
  }
  EXPECT_TRUE(a.stale_intervals.empty());
  EXPECT_FALSE(b.stale_intervals.empty());
}

TEST(FaultInjectorTest, ZeroRatesYieldEmptyPlan) {
  const FaultPlan plan = generate_fault_plan(FaultRates{}, 720, 3, 42);
  EXPECT_TRUE(plan.empty());
  EXPECT_FALSE(FaultRates{}.any());
}

}  // namespace
}  // namespace billcap::core
