#include "core/market_feed.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "core/fault_injector.hpp"

namespace billcap::core {
namespace {

constexpr std::size_t kHorizon = 100;

FaultInjector stale_injector() {
  FaultPlan plan;
  plan.stale_intervals.push_back({20, 10});  // hours [20, 30)
  return FaultInjector(plan, 3, kHorizon);
}

TEST(MarketFeedTest, FreshFeedPassesThrough) {
  MarketFeed feed(nullptr, {}, 42);
  for (std::size_t h = 0; h < 5; ++h) {
    const FeedObservation obs = feed.poll(h);
    EXPECT_EQ(obs.observed_hour, h);
    EXPECT_FALSE(obs.stale);
    EXPECT_EQ(obs.attempts, 0);
    EXPECT_FALSE(obs.recovered);
  }
}

TEST(MarketFeedTest, DisabledRetryingMatchesFrozenInjectorFeed) {
  // retry_success_prob == 0 is the legacy frozen feed: the observation must
  // reproduce FaultInjector::observed_market_hour exactly, with no retries.
  const FaultInjector injector = stale_injector();
  MarketFeed feed(&injector, {}, 42);
  for (std::size_t h = 0; h < kHorizon; ++h) {
    const FeedObservation obs = feed.poll(h);
    EXPECT_EQ(obs.stale, injector.prices_stale(h)) << "hour " << h;
    EXPECT_EQ(obs.observed_hour, injector.observed_market_hour(h))
        << "hour " << h;
    EXPECT_EQ(obs.attempts, 0);
    EXPECT_FALSE(obs.recovered);
  }
}

TEST(MarketFeedTest, CertainRetrySuccessRecoversWholeInterval) {
  const FaultInjector injector = stale_injector();
  MarketFeedOptions opts;
  opts.retry_success_prob = 1.0;
  MarketFeed feed(&injector, opts, 42);
  for (std::size_t h = 0; h < kHorizon; ++h) {
    const FeedObservation obs = feed.poll(h);
    EXPECT_EQ(obs.observed_hour, h) << "hour " << h;
    if (h == 20) {
      // First stale hour: one retry reconnects, fresh data mid-interval...
      EXPECT_TRUE(obs.recovered);
      EXPECT_EQ(obs.attempts, 1);
      EXPECT_GT(obs.backoff_ms, 0.0);
    } else {
      // ...and the reconnect persists for the rest of the interval.
      EXPECT_FALSE(obs.stale);
      EXPECT_EQ(obs.attempts, 0);
    }
  }
}

TEST(MarketFeedTest, ImpossibleRetrySuccessStaysFrozen) {
  const FaultInjector injector = stale_injector();
  MarketFeedOptions opts;
  opts.retry_success_prob = 1e-18;  // enabled, but will never land in 5 tries
  opts.max_attempts_per_hour = 1;
  MarketFeed feed(&injector, opts, 42);
  bool any_recovered = false;
  for (std::size_t h = 0; h < kHorizon; ++h)
    any_recovered |= feed.poll(h).recovered;
  EXPECT_FALSE(any_recovered);
}

TEST(MarketFeedTest, DeterministicInSeed) {
  const FaultInjector injector = stale_injector();
  MarketFeedOptions opts;
  opts.retry_success_prob = 0.3;
  std::vector<FeedObservation> a, b;
  MarketFeed feed_a(&injector, opts, 7);
  MarketFeed feed_b(&injector, opts, 7);
  for (std::size_t h = 0; h < kHorizon; ++h) {
    a.push_back(feed_a.poll(h));
    b.push_back(feed_b.poll(h));
  }
  for (std::size_t h = 0; h < kHorizon; ++h) {
    EXPECT_EQ(a[h].observed_hour, b[h].observed_hour) << "hour " << h;
    EXPECT_EQ(a[h].stale, b[h].stale) << "hour " << h;
    EXPECT_EQ(a[h].attempts, b[h].attempts) << "hour " << h;
    EXPECT_EQ(a[h].recovered, b[h].recovered) << "hour " << h;
    EXPECT_EQ(a[h].backoff_ms, b[h].backoff_ms) << "hour " << h;
  }
}

TEST(MarketFeedTest, BackoffGrowsExponentiallyAndCaps) {
  const FaultInjector injector = stale_injector();
  MarketFeedOptions opts;
  opts.retry_success_prob = 1e-18;  // force all attempts to run
  opts.max_attempts_per_hour = 6;
  opts.base_backoff_ms = 100.0;
  opts.backoff_multiplier = 2.0;
  opts.max_backoff_ms = 400.0;
  opts.jitter_frac = 0.0;  // exact schedule
  MarketFeed feed(&injector, opts, 42);
  const FeedObservation obs = feed.poll(20);
  EXPECT_EQ(obs.attempts, 6);
  // 100 + 200 + 400 + 400 + 400 + 400 (clamped at max_backoff_ms).
  EXPECT_DOUBLE_EQ(obs.backoff_ms, 1900.0);
}

TEST(MarketFeedTest, StateRoundTripResumesStreamBitExactly) {
  const FaultInjector injector = stale_injector();
  MarketFeedOptions opts;
  opts.retry_success_prob = 0.3;

  // Reference: poll straight through.
  MarketFeed reference(&injector, opts, 99);
  std::vector<FeedObservation> want;
  for (std::size_t h = 0; h < kHorizon; ++h) want.push_back(reference.poll(h));

  // Interrupted: snapshot at hour 25 (mid-interval), restore into a fresh
  // client, continue. The tail must match the reference bitwise.
  MarketFeed first(&injector, opts, 99);
  for (std::size_t h = 0; h < 25; ++h) first.poll(h);
  const MarketFeed::State snap = first.state();

  MarketFeed second(&injector, opts, 1234);  // different seed on purpose
  second.restore(snap);
  for (std::size_t h = 25; h < kHorizon; ++h) {
    const FeedObservation obs = second.poll(h);
    EXPECT_EQ(obs.observed_hour, want[h].observed_hour) << "hour " << h;
    EXPECT_EQ(obs.stale, want[h].stale) << "hour " << h;
    EXPECT_EQ(obs.attempts, want[h].attempts) << "hour " << h;
    EXPECT_EQ(obs.backoff_ms, want[h].backoff_ms) << "hour " << h;
  }
}

TEST(MarketFeedTest, RejectsInvalidOptions) {
  MarketFeedOptions bad;
  bad.retry_success_prob = 1.5;
  EXPECT_THROW(MarketFeed(nullptr, bad, 1), std::invalid_argument);
  bad = {};
  bad.retry_success_prob = 0.5;
  bad.max_attempts_per_hour = 0;
  EXPECT_THROW(MarketFeed(nullptr, bad, 1), std::invalid_argument);
  bad = {};
  bad.retry_success_prob = 0.5;
  bad.base_backoff_ms = -1.0;
  EXPECT_THROW(MarketFeed(nullptr, bad, 1), std::invalid_argument);
  // A disabled feed never consults the backoff policy, so a degenerate
  // policy with retrying off is fine (the legacy default construction).
  MarketFeedOptions off;
  off.base_backoff_ms = -1.0;
  EXPECT_NO_THROW(MarketFeed(nullptr, off, 1));
}

}  // namespace
}  // namespace billcap::core
