#include "core/simulator.hpp"

#include <gtest/gtest.h>

namespace billcap::core {
namespace {

/// A shortened, cheap configuration for unit-level checks (full-month runs
/// live in the integration suite).
SimulationConfig quick_config() {
  SimulationConfig config;
  config.seed = 7;
  return config;
}

TEST(SimulatorTest, ConstructionWiresEverything) {
  const Simulator sim(quick_config());
  EXPECT_EQ(sim.sites().size(), 3u);
  EXPECT_EQ(sim.policies().size(), 3u);
  EXPECT_EQ(sim.history_trace().hours(), 744u);
  EXPECT_EQ(sim.evaluation_trace().hours(), 720u);
  EXPECT_EQ(sim.background_demand().size(), 3u);
  EXPECT_EQ(sim.background_demand()[0].size(), 720u);
  EXPECT_EQ(sim.budgeter().horizon_hours(), 720u);
}

TEST(SimulatorTest, DeterministicInSeed) {
  SimulationConfig config = quick_config();
  const Simulator a(config);
  const Simulator b(config);
  EXPECT_DOUBLE_EQ(a.evaluation_trace().at(100), b.evaluation_trace().at(100));
  config.seed = 8;
  const Simulator c(config);
  EXPECT_NE(a.evaluation_trace().at(100), c.evaluation_trace().at(100));
}

TEST(SimulatorTest, ConfigValidation) {
  SimulationConfig config = quick_config();
  config.premium_share = 1.5;
  EXPECT_THROW(Simulator{config}, std::invalid_argument);
  config = quick_config();
  config.policy_level = 9;
  EXPECT_THROW(Simulator{config}, std::invalid_argument);
  config = quick_config();
  config.monthly_budget = -1.0;
  EXPECT_THROW(Simulator{config}, std::invalid_argument);
}

TEST(SimulatorTest, StrategyNames) {
  EXPECT_STREQ(to_string(Strategy::kCostCapping), "CostCapping");
  EXPECT_STREQ(to_string(Strategy::kMinOnlyAvg), "MinOnly(Avg)");
  EXPECT_STREQ(to_string(Strategy::kMinOnlyLow), "MinOnly(Low)");
}

TEST(SimulatorTest, MonthlyResultRatios) {
  MonthlyResult r;
  r.monthly_budget = 1000.0;
  r.total_cost = 900.0;
  r.total_premium_arrivals = 100.0;
  r.total_served_premium = 100.0;
  r.total_ordinary_arrivals = 50.0;
  r.total_served_ordinary = 25.0;
  EXPECT_DOUBLE_EQ(r.premium_throughput_ratio(), 1.0);
  EXPECT_DOUBLE_EQ(r.ordinary_throughput_ratio(), 0.5);
  EXPECT_DOUBLE_EQ(r.budget_utilization(), 0.9);
}

TEST(SimulatorTest, EmptyAggregatesAreSafe) {
  MonthlyResult r;
  EXPECT_DOUBLE_EQ(r.premium_throughput_ratio(), 1.0);
  EXPECT_DOUBLE_EQ(r.ordinary_throughput_ratio(), 1.0);
  EXPECT_DOUBLE_EQ(r.budget_utilization(), 0.0);
}

TEST(SimulatorTest, RunProducesConsistentRecords) {
  SimulationConfig config = quick_config();
  config.enforce_budget = false;
  const Simulator sim(config);
  const MonthlyResult r = sim.run(Strategy::kCostCapping);
  ASSERT_EQ(r.hours.size(), 720u);
  double cost = 0.0;
  for (const auto& h : r.hours) {
    cost += h.cost;
    EXPECT_NEAR(h.premium_arrivals + h.ordinary_arrivals, h.arrivals, 1.0);
    EXPECT_EQ(h.site_lambda.size(), 3u);
    EXPECT_EQ(h.site_power_mw.size(), 3u);
    EXPECT_GE(h.cost, 0.0);
  }
  EXPECT_NEAR(r.total_cost, cost, 1e-6);
}

TEST(SimulatorTest, RunMonthsFirstMonthMatchesRun) {
  SimulationConfig config = quick_config();
  config.monthly_budget = 1.2e6;
  const Simulator sim(config);
  const MonthlyResult single = sim.run(Strategy::kCostCapping);
  const std::vector<MonthlyResult> multi = sim.run_months(2);
  ASSERT_EQ(multi.size(), 2u);
  EXPECT_NEAR(multi[0].total_cost, single.total_cost, 1e-6);
  EXPECT_NEAR(multi[0].total_served_ordinary, single.total_served_ordinary,
              1.0);
}

TEST(SimulatorTest, RunMonthsEachMonthGetsFreshBudget) {
  SimulationConfig config = quick_config();
  config.monthly_budget = 1.2e6;
  const Simulator sim(config);
  const auto months = sim.run_months(3);
  for (const auto& month : months) {
    EXPECT_EQ(month.hours.size(), 720u);
    EXPECT_DOUBLE_EQ(month.premium_throughput_ratio(), 1.0);
    // With a fresh budget every month, no month runs away.
    EXPECT_LT(month.budget_utilization(), 1.3);
    EXPECT_GT(month.total_cost, 0.0);
  }
}

TEST(SimulatorTest, RunMonthsValidation) {
  const Simulator sim(quick_config());
  EXPECT_THROW(sim.run_months(0), std::invalid_argument);
}

TEST(SimulatorTest, RunsAreReproducible) {
  SimulationConfig config = quick_config();
  config.enforce_budget = false;
  const Simulator sim(config);
  const MonthlyResult a = sim.run(Strategy::kCostCapping);
  const MonthlyResult b = sim.run(Strategy::kCostCapping);
  EXPECT_DOUBLE_EQ(a.total_cost, b.total_cost);
  EXPECT_DOUBLE_EQ(a.total_served_ordinary, b.total_served_ordinary);
}

}  // namespace
}  // namespace billcap::core
