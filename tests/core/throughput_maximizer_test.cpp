#include "core/throughput_maximizer.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "core/cost_minimizer.hpp"
#include "core/cost_model.hpp"
#include "datacenter/catalog.hpp"
#include "market/pricing_policy.hpp"

namespace billcap::core {
namespace {

class ThroughputMaximizerTest : public ::testing::Test {
 protected:
  const std::vector<datacenter::DataCenter> sites_ =
      datacenter::paper_datacenters();
  const std::vector<market::PricingPolicy> policies_ =
      market::paper_policies(1);
  const std::vector<double> demand_ = {210.0, 190.0, 175.0};
};

TEST_F(ThroughputMaximizerTest, AmpleBudgetServesEverything) {
  const double lambda = 6e11;
  const AllocationResult r = maximize_throughput(
      sites_, policies_, demand_, lambda, /*cost_budget=*/1e9);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r.total_lambda / lambda, 1.0, 1e-6);
}

TEST_F(ThroughputMaximizerTest, ZeroBudgetServesNothing) {
  const AllocationResult r =
      maximize_throughput(sites_, policies_, demand_, 6e11, 0.0);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r.total_lambda, 0.0, 1e-3);
  EXPECT_NEAR(r.predicted_cost, 0.0, 1e-9);
}

TEST_F(ThroughputMaximizerTest, BudgetCapsBelievedCost) {
  for (double budget : {500.0, 1000.0, 2000.0}) {
    const AllocationResult r =
        maximize_throughput(sites_, policies_, demand_, 1.2e12, budget);
    ASSERT_TRUE(r.ok()) << "budget " << budget;
    EXPECT_LE(r.predicted_cost, budget * (1.0 + 1e-6)) << budget;
  }
}

TEST_F(ThroughputMaximizerTest, GroundTruthStaysNearBudget) {
  const double budget = 1000.0;
  const AllocationResult r =
      maximize_throughput(sites_, policies_, demand_, 1.2e12, budget);
  ASSERT_TRUE(r.ok());
  const GroundTruth truth =
      evaluate_allocation(sites_, policies_, demand_, r.lambda_vector());
  EXPECT_LE(truth.total_cost, budget * 1.01);
}

TEST_F(ThroughputMaximizerTest, ThroughputMonotoneInBudget) {
  double prev = -1.0;
  for (double budget : {200.0, 500.0, 900.0, 1500.0, 3000.0}) {
    const AllocationResult r =
        maximize_throughput(sites_, policies_, demand_, 1.2e12, budget);
    ASSERT_TRUE(r.ok()) << "budget " << budget;
    EXPECT_GE(r.total_lambda, prev - 1e-3) << "budget " << budget;
    prev = r.total_lambda;
  }
}

TEST_F(ThroughputMaximizerTest, ConsistentWithCostMinimizer) {
  // If min-cost(lambda) <= budget then the maximizer must serve all of
  // lambda; conversely the maximizer's cost at its chosen throughput can
  // never beat the minimizer's cost for that same throughput.
  const double lambda = 8e11;
  const AllocationResult min_cost =
      minimize_cost(sites_, policies_, demand_, lambda);
  ASSERT_TRUE(min_cost.ok());

  const AllocationResult ample = maximize_throughput(
      sites_, policies_, demand_, lambda, min_cost.predicted_cost * 1.0001);
  ASSERT_TRUE(ample.ok());
  EXPECT_NEAR(ample.total_lambda / lambda, 1.0, 1e-6);

  const AllocationResult tight = maximize_throughput(
      sites_, policies_, demand_, lambda, min_cost.predicted_cost * 0.6);
  ASSERT_TRUE(tight.ok());
  EXPECT_LT(tight.total_lambda, lambda);
  const AllocationResult re_min =
      minimize_cost(sites_, policies_, demand_, tight.total_lambda);
  ASSERT_TRUE(re_min.ok());
  EXPECT_LE(re_min.predicted_cost, tight.predicted_cost * 1.001);
}

TEST_F(ThroughputMaximizerTest, TieBreakPicksCheapAllocation) {
  // With a light workload and a huge budget the served amount is fixed;
  // the secondary objective should still pick (nearly) the cheapest way.
  const double lambda = 3e11;
  const AllocationResult maxed =
      maximize_throughput(sites_, policies_, demand_, lambda, 1e9);
  const AllocationResult cheapest =
      minimize_cost(sites_, policies_, demand_, lambda);
  ASSERT_TRUE(maxed.ok());
  ASSERT_TRUE(cheapest.ok());
  EXPECT_NEAR(maxed.predicted_cost, cheapest.predicted_cost,
              cheapest.predicted_cost * 0.01);
}

TEST_F(ThroughputMaximizerTest, Validation) {
  EXPECT_THROW(
      maximize_throughput(sites_, policies_, demand_, -1.0, 100.0),
      std::invalid_argument);
  EXPECT_THROW(
      maximize_throughput(sites_, policies_, demand_, 1e11, -5.0),
      std::invalid_argument);
  EXPECT_THROW(maximize_throughput(sites_, policies_,
                                   std::vector<double>{1.0}, 1e11, 100.0),
               std::invalid_argument);
}

TEST_F(ThroughputMaximizerTest, PowerCapsHoldUnderPressure) {
  const AllocationResult r =
      maximize_throughput(sites_, policies_, demand_, 2e12, 1e9);
  ASSERT_TRUE(r.ok());
  for (std::size_t i = 0; i < sites_.size(); ++i)
    EXPECT_LE(r.sites[i].power_mw, sites_[i].spec().power_cap_mw + 1e-6);
}

}  // namespace
}  // namespace billcap::core
