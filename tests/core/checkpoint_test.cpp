#include "core/checkpoint.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "core/simulator.hpp"

namespace billcap::core {
namespace {

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

/// A synthetic mid-month state with every field off its default, including
/// awkward doubles, so a save/load round trip exercises the whole format.
CheckpointState sample_state() {
  CheckpointState st;
  st.config_digest = 0xdeadbeefcafef00dULL;
  st.strategy = Strategy::kCostCapping;
  st.next_hour = 2;
  st.spent = 123456.78912345;
  st.crashes_fired = 3;
  st.feed.rng = {1, 0xffffffffffffffffULL, 42, 7};
  st.feed.recovered_until = 29;

  MonthlyResult& r = st.partial;
  r.strategy = st.strategy;
  r.monthly_budget = 1.5e6;
  r.total_cost = st.spent;
  r.total_premium_arrivals = 1000.25;
  r.total_ordinary_arrivals = 9000.125;
  r.total_served_premium = 1000.25;
  r.total_served_ordinary = 8000.0625;
  r.max_solve_ms = 3.14159;
  r.degraded_hours = 1;
  r.incumbent_hours = 1;
  r.outage_hours = 1;
  r.stale_hours = 2;
  r.failure_tally[1] = 1;
  r.feed_retry_attempts = 9;
  r.feed_recovered_hours = 2;
  r.crash_recoveries = 3;
  for (std::size_t h = 0; h < st.next_hour; ++h) {
    HourRecord rec;
    rec.hour = h;
    rec.arrivals = 5000.5 + static_cast<double>(h);
    rec.premium_arrivals = 500.125;
    rec.ordinary_arrivals = rec.arrivals - rec.premium_arrivals;
    rec.served_premium = 500.125;
    rec.served_ordinary = 4000.0 / 3.0;  // non-terminating binary fraction
    rec.hourly_budget = 2083.333333333333;
    rec.cost = 1999.99;
    rec.predicted_cost = 1998.5;
    rec.mode = CappingOutcome::Mode::kCapped;
    rec.site_lambda = {1000.1, 2000.2, 3000.3};
    rec.site_power_mw = {10.5, 20.25, 30.125};
    rec.solve_ms = 2.5;
    rec.nodes = 17;
    rec.degraded = (h == 1);
    rec.failure = (h == 1) ? FailureReason::kInfeasible : FailureReason::kNone;
    rec.used_incumbent = (h == 1);
    rec.sites_down = h;
    rec.stale_prices = true;
    rec.feed_attempts = 4;
    rec.feed_recovered = (h == 0);
    r.hours.push_back(rec);
  }
  return st;
}

void expect_states_bitwise_equal(const CheckpointState& a,
                                 const CheckpointState& b) {
  EXPECT_EQ(a.config_digest, b.config_digest);
  EXPECT_EQ(a.strategy, b.strategy);
  EXPECT_EQ(a.next_hour, b.next_hour);
  EXPECT_EQ(a.spent, b.spent);
  EXPECT_EQ(a.crashes_fired, b.crashes_fired);
  EXPECT_EQ(a.feed.rng, b.feed.rng);
  EXPECT_EQ(a.feed.recovered_until, b.feed.recovered_until);

  const MonthlyResult& x = a.partial;
  const MonthlyResult& y = b.partial;
  EXPECT_EQ(x.monthly_budget, y.monthly_budget);
  EXPECT_EQ(x.total_cost, y.total_cost);
  EXPECT_EQ(x.total_premium_arrivals, y.total_premium_arrivals);
  EXPECT_EQ(x.total_ordinary_arrivals, y.total_ordinary_arrivals);
  EXPECT_EQ(x.total_served_premium, y.total_served_premium);
  EXPECT_EQ(x.total_served_ordinary, y.total_served_ordinary);
  EXPECT_EQ(x.max_solve_ms, y.max_solve_ms);
  EXPECT_EQ(x.degraded_hours, y.degraded_hours);
  EXPECT_EQ(x.incumbent_hours, y.incumbent_hours);
  EXPECT_EQ(x.heuristic_hours, y.heuristic_hours);
  EXPECT_EQ(x.outage_hours, y.outage_hours);
  EXPECT_EQ(x.stale_hours, y.stale_hours);
  EXPECT_EQ(x.failure_tally, y.failure_tally);
  EXPECT_EQ(x.feed_retry_attempts, y.feed_retry_attempts);
  EXPECT_EQ(x.feed_recovered_hours, y.feed_recovered_hours);
  EXPECT_EQ(x.crash_recoveries, y.crash_recoveries);
  ASSERT_EQ(x.hours.size(), y.hours.size());
  for (std::size_t h = 0; h < x.hours.size(); ++h) {
    const HourRecord& p = x.hours[h];
    const HourRecord& q = y.hours[h];
    EXPECT_EQ(p.hour, q.hour);
    EXPECT_EQ(p.arrivals, q.arrivals);
    EXPECT_EQ(p.premium_arrivals, q.premium_arrivals);
    EXPECT_EQ(p.ordinary_arrivals, q.ordinary_arrivals);
    EXPECT_EQ(p.served_premium, q.served_premium);
    EXPECT_EQ(p.served_ordinary, q.served_ordinary);
    EXPECT_EQ(p.hourly_budget, q.hourly_budget);
    EXPECT_EQ(p.cost, q.cost);
    EXPECT_EQ(p.predicted_cost, q.predicted_cost);
    EXPECT_EQ(p.mode, q.mode);
    EXPECT_EQ(p.site_lambda, q.site_lambda);
    EXPECT_EQ(p.site_power_mw, q.site_power_mw);
    EXPECT_EQ(p.solve_ms, q.solve_ms);
    EXPECT_EQ(p.nodes, q.nodes);
    EXPECT_EQ(p.degraded, q.degraded);
    EXPECT_EQ(p.failure, q.failure);
    EXPECT_EQ(p.used_incumbent, q.used_incumbent);
    EXPECT_EQ(p.used_heuristic, q.used_heuristic);
    EXPECT_EQ(p.sites_down, q.sites_down);
    EXPECT_EQ(p.stale_prices, q.stale_prices);
    EXPECT_EQ(p.feed_attempts, q.feed_attempts);
    EXPECT_EQ(p.feed_recovered, q.feed_recovered);
  }
}

TEST(CheckpointTest, SaveLoadRoundTripIsBitwise) {
  const std::string path = temp_path("billcap_checkpoint_test.j");
  const CheckpointState st = sample_state();
  save_checkpoint(path, st);
  EXPECT_TRUE(checkpoint_exists(path));
  const CheckpointState back = load_checkpoint(path);
  expect_states_bitwise_equal(st, back);
  std::remove(path.c_str());
  EXPECT_FALSE(checkpoint_exists(path));
}

TEST(CheckpointTest, RepeatedSavesOverwriteAtomically) {
  const std::string path = temp_path("billcap_checkpoint_overwrite.j");
  CheckpointState st = sample_state();
  for (std::size_t extra = 0; extra < 3; ++extra) {
    save_checkpoint(path, st);
    HourRecord rec;
    rec.hour = st.next_hour++;
    rec.cost = 1000.0 + static_cast<double>(extra);
    st.partial.hours.push_back(rec);
    st.spent += rec.cost;
  }
  save_checkpoint(path, st);
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
  const CheckpointState back = load_checkpoint(path);
  expect_states_bitwise_equal(st, back);
  std::remove(path.c_str());
}

TEST(CheckpointTest, RejectsTruncatedAndCorruptedFiles) {
  const std::string path = temp_path("billcap_checkpoint_damage.j");
  save_checkpoint(path, sample_state());
  std::string text;
  {
    std::ifstream in(path, std::ios::binary);
    text.assign(std::istreambuf_iterator<char>(in),
                std::istreambuf_iterator<char>());
  }

  // Truncation at any prefix length must be detected, never half-loaded.
  for (const double frac : {0.1, 0.5, 0.9, 0.99}) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << text.substr(0, static_cast<std::size_t>(
                              static_cast<double>(text.size()) * frac));
    out.close();
    EXPECT_THROW(load_checkpoint(path), std::runtime_error)
        << "truncated at " << frac;
  }

  // Single-byte corruption in the payload must be detected.
  {
    std::string corrupted = text;
    const std::size_t pos = corrupted.find("next_hour=");
    ASSERT_NE(pos, std::string::npos);
    corrupted[pos + 10] = corrupted[pos + 10] == '9' ? '8' : '9';
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << corrupted;
    out.close();
    EXPECT_THROW(load_checkpoint(path), std::runtime_error);
  }

  std::remove(path.c_str());
  EXPECT_THROW(load_checkpoint(path), std::runtime_error);  // missing file
}

TEST(CheckpointTest, DigestSeparatesConfigsAndStrategies) {
  SimulationConfig config;
  const std::uint64_t base =
      checkpoint_digest(config, Strategy::kCostCapping);

  EXPECT_EQ(base, checkpoint_digest(config, Strategy::kCostCapping))
      << "digest must be deterministic";
  EXPECT_NE(base, checkpoint_digest(config, Strategy::kMinOnlyAvg));

  SimulationConfig other = config;
  other.seed ^= 1;
  EXPECT_NE(base, checkpoint_digest(other, Strategy::kCostCapping));

  other = config;
  other.monthly_budget += 1.0;
  EXPECT_NE(base, checkpoint_digest(other, Strategy::kCostCapping));

  other = config;
  other.fault_rates.stale_rate = 0.01;
  EXPECT_NE(base, checkpoint_digest(other, Strategy::kCostCapping));

  other = config;
  other.fault_plan.crashes.push_back({10, false});
  EXPECT_NE(base, checkpoint_digest(other, Strategy::kCostCapping));

  other = config;
  other.market_feed.retry_success_prob = 0.5;
  EXPECT_NE(base, checkpoint_digest(other, Strategy::kCostCapping));
}

TEST(CheckpointTest, HourCountInconsistencyIsRejected) {
  const std::string path = temp_path("billcap_checkpoint_inconsistent.j");
  CheckpointState st = sample_state();
  st.next_hour = st.partial.hours.size() + 5;  // claims more than it holds
  EXPECT_THROW(
      {
        save_checkpoint(path, st);
        load_checkpoint(path);
      },
      std::runtime_error);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace billcap::core
