#include "core/checkpoint.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "core/checkpoint_keys.hpp"
#include "core/simulator.hpp"
#include "util/journal.hpp"

namespace billcap::core {
namespace {

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

/// A synthetic mid-month state with every field off its default, including
/// awkward doubles, so a save/load round trip exercises the whole format.
CheckpointState sample_state() {
  CheckpointState st;
  st.config_digest = 0xdeadbeefcafef00dULL;
  st.strategy = Strategy::kCostCapping;
  st.next_hour = 2;
  st.spent = 123456.78912345;
  st.crashes_fired = 3;
  st.feed.rng = {1, 0xffffffffffffffffULL, 42, 7};
  st.feed.recovered_until = 29;

  MonthlyResult& r = st.partial;
  r.strategy = st.strategy;
  r.monthly_budget = 1.5e6;
  r.total_cost = st.spent;
  r.total_premium_arrivals = 1000.25;
  r.total_ordinary_arrivals = 9000.125;
  r.total_served_premium = 1000.25;
  r.total_served_ordinary = 8000.0625;
  r.max_solve_ms = 3.14159;
  r.degraded_hours = 1;
  r.incumbent_hours = 1;
  r.outage_hours = 1;
  r.stale_hours = 2;
  r.failure_tally[1] = 1;
  r.feed_retry_attempts = 9;
  r.feed_recovered_hours = 2;
  r.crash_recoveries = 3;
  for (std::size_t h = 0; h < st.next_hour; ++h) {
    HourRecord rec;
    rec.hour = h;
    rec.arrivals = 5000.5 + static_cast<double>(h);
    rec.premium_arrivals = 500.125;
    rec.ordinary_arrivals = rec.arrivals - rec.premium_arrivals;
    rec.served_premium = 500.125;
    rec.served_ordinary = 4000.0 / 3.0;  // non-terminating binary fraction
    rec.hourly_budget = 2083.333333333333;
    rec.cost = 1999.99;
    rec.predicted_cost = 1998.5;
    rec.mode = CappingOutcome::Mode::kCapped;
    rec.site_lambda = {1000.1, 2000.2, 3000.3};
    rec.site_power_mw = {10.5, 20.25, 30.125};
    rec.solve_ms = 2.5;
    rec.nodes = 17;
    rec.degraded = (h == 1);
    rec.failure = (h == 1) ? FailureReason::kInfeasible : FailureReason::kNone;
    rec.used_incumbent = (h == 1);
    rec.sites_down = h;
    rec.stale_prices = true;
    rec.feed_attempts = 4;
    rec.feed_recovered = (h == 0);
    r.hours.push_back(rec);
  }
  return st;
}

void expect_states_bitwise_equal(const CheckpointState& a,
                                 const CheckpointState& b) {
  EXPECT_EQ(a.config_digest, b.config_digest);
  EXPECT_EQ(a.strategy, b.strategy);
  EXPECT_EQ(a.next_hour, b.next_hour);
  EXPECT_EQ(a.spent, b.spent);
  EXPECT_EQ(a.crashes_fired, b.crashes_fired);
  EXPECT_EQ(a.feed.rng, b.feed.rng);
  EXPECT_EQ(a.feed.recovered_until, b.feed.recovered_until);

  const MonthlyResult& x = a.partial;
  const MonthlyResult& y = b.partial;
  EXPECT_EQ(x.monthly_budget, y.monthly_budget);
  EXPECT_EQ(x.total_cost, y.total_cost);
  EXPECT_EQ(x.total_premium_arrivals, y.total_premium_arrivals);
  EXPECT_EQ(x.total_ordinary_arrivals, y.total_ordinary_arrivals);
  EXPECT_EQ(x.total_served_premium, y.total_served_premium);
  EXPECT_EQ(x.total_served_ordinary, y.total_served_ordinary);
  EXPECT_EQ(x.max_solve_ms, y.max_solve_ms);
  EXPECT_EQ(x.degraded_hours, y.degraded_hours);
  EXPECT_EQ(x.incumbent_hours, y.incumbent_hours);
  EXPECT_EQ(x.heuristic_hours, y.heuristic_hours);
  EXPECT_EQ(x.outage_hours, y.outage_hours);
  EXPECT_EQ(x.stale_hours, y.stale_hours);
  EXPECT_EQ(x.failure_tally, y.failure_tally);
  EXPECT_EQ(x.feed_retry_attempts, y.feed_retry_attempts);
  EXPECT_EQ(x.feed_recovered_hours, y.feed_recovered_hours);
  EXPECT_EQ(x.crash_recoveries, y.crash_recoveries);
  ASSERT_EQ(x.hours.size(), y.hours.size());
  for (std::size_t h = 0; h < x.hours.size(); ++h) {
    const HourRecord& p = x.hours[h];
    const HourRecord& q = y.hours[h];
    EXPECT_EQ(p.hour, q.hour);
    EXPECT_EQ(p.arrivals, q.arrivals);
    EXPECT_EQ(p.premium_arrivals, q.premium_arrivals);
    EXPECT_EQ(p.ordinary_arrivals, q.ordinary_arrivals);
    EXPECT_EQ(p.served_premium, q.served_premium);
    EXPECT_EQ(p.served_ordinary, q.served_ordinary);
    EXPECT_EQ(p.hourly_budget, q.hourly_budget);
    EXPECT_EQ(p.cost, q.cost);
    EXPECT_EQ(p.predicted_cost, q.predicted_cost);
    EXPECT_EQ(p.mode, q.mode);
    EXPECT_EQ(p.site_lambda, q.site_lambda);
    EXPECT_EQ(p.site_power_mw, q.site_power_mw);
    EXPECT_EQ(p.solve_ms, q.solve_ms);
    EXPECT_EQ(p.nodes, q.nodes);
    EXPECT_EQ(p.degraded, q.degraded);
    EXPECT_EQ(p.failure, q.failure);
    EXPECT_EQ(p.used_incumbent, q.used_incumbent);
    EXPECT_EQ(p.used_heuristic, q.used_heuristic);
    EXPECT_EQ(p.sites_down, q.sites_down);
    EXPECT_EQ(p.stale_prices, q.stale_prices);
    EXPECT_EQ(p.feed_attempts, q.feed_attempts);
    EXPECT_EQ(p.feed_recovered, q.feed_recovered);
    EXPECT_EQ(p.coupler_iterations, q.coupler_iterations);
    EXPECT_EQ(p.coupler_converged, q.coupler_converged);
    EXPECT_EQ(p.coupler_fallback, q.coupler_fallback);
    EXPECT_EQ(p.coupler_rung, q.coupler_rung);
  }

  EXPECT_EQ(x.closed_loop_hours, y.closed_loop_hours);
  EXPECT_EQ(x.coupler_fallback_hours, y.coupler_fallback_hours);
  EXPECT_EQ(x.coupler_iterations, y.coupler_iterations);
  EXPECT_EQ(a.coupler.breaker_state, b.coupler.breaker_state);
  EXPECT_EQ(a.coupler.consecutive_troubled, b.coupler.consecutive_troubled);
  EXPECT_EQ(a.coupler.cooldown_remaining, b.coupler.cooldown_remaining);
  EXPECT_EQ(a.coupler.current_cooldown_hours, b.coupler.current_cooldown_hours);
  EXPECT_EQ(a.coupler.trips, b.coupler.trips);
  EXPECT_EQ(a.coupler.rung, b.coupler.rung);
  EXPECT_EQ(a.coupler.clean_streak, b.coupler.clean_streak);
  EXPECT_EQ(a.coupler.last_valid, b.coupler.last_valid);
  EXPECT_EQ(a.coupler.last_power_mw, b.coupler.last_power_mw);
  EXPECT_EQ(a.coupler.last_active, b.coupler.last_active);
}

TEST(CheckpointTest, SaveLoadRoundTripIsBitwise) {
  const std::string path = temp_path("billcap_checkpoint_test.j");
  const CheckpointState st = sample_state();
  save_checkpoint(path, st);
  EXPECT_TRUE(checkpoint_exists(path));
  const CheckpointState back = load_checkpoint(path);
  expect_states_bitwise_equal(st, back);
  std::remove(path.c_str());
  EXPECT_FALSE(checkpoint_exists(path));
}

TEST(CheckpointTest, RepeatedSavesOverwriteAtomically) {
  const std::string path = temp_path("billcap_checkpoint_overwrite.j");
  CheckpointState st = sample_state();
  for (std::size_t extra = 0; extra < 3; ++extra) {
    save_checkpoint(path, st);
    HourRecord rec;
    rec.hour = st.next_hour++;
    rec.cost = 1000.0 + static_cast<double>(extra);
    st.partial.hours.push_back(rec);
    st.spent += rec.cost;
  }
  save_checkpoint(path, st);
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
  const CheckpointState back = load_checkpoint(path);
  expect_states_bitwise_equal(st, back);
  std::remove(path.c_str());
}

TEST(CheckpointTest, RejectsTruncatedAndCorruptedFiles) {
  const std::string path = temp_path("billcap_checkpoint_damage.j");
  save_checkpoint(path, sample_state());
  std::string text;
  {
    std::ifstream in(path, std::ios::binary);
    text.assign(std::istreambuf_iterator<char>(in),
                std::istreambuf_iterator<char>());
  }

  // Truncation at any prefix length must be detected, never half-loaded.
  for (const double frac : {0.1, 0.5, 0.9, 0.99}) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << text.substr(0, static_cast<std::size_t>(
                              static_cast<double>(text.size()) * frac));
    out.close();
    EXPECT_THROW(load_checkpoint(path), std::runtime_error)
        << "truncated at " << frac;
  }

  // Single-byte corruption in the payload must be detected.
  {
    std::string corrupted = text;
    const std::size_t pos = corrupted.find("next_hour=");
    ASSERT_NE(pos, std::string::npos);
    corrupted[pos + 10] = corrupted[pos + 10] == '9' ? '8' : '9';
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << corrupted;
    out.close();
    EXPECT_THROW(load_checkpoint(path), std::runtime_error);
  }

  std::remove(path.c_str());
  EXPECT_THROW(load_checkpoint(path), std::runtime_error);  // missing file
}

TEST(CheckpointTest, DigestSeparatesConfigsAndStrategies) {
  SimulationConfig config;
  const std::uint64_t base =
      checkpoint_digest(config, Strategy::kCostCapping);

  EXPECT_EQ(base, checkpoint_digest(config, Strategy::kCostCapping))
      << "digest must be deterministic";
  EXPECT_NE(base, checkpoint_digest(config, Strategy::kMinOnlyAvg));

  SimulationConfig other = config;
  other.seed ^= 1;
  EXPECT_NE(base, checkpoint_digest(other, Strategy::kCostCapping));

  other = config;
  other.monthly_budget += 1.0;
  EXPECT_NE(base, checkpoint_digest(other, Strategy::kCostCapping));

  other = config;
  other.fault_rates.stale_rate = 0.01;
  EXPECT_NE(base, checkpoint_digest(other, Strategy::kCostCapping));

  other = config;
  other.fault_plan.crashes.push_back({10, false});
  EXPECT_NE(base, checkpoint_digest(other, Strategy::kCostCapping));

  other = config;
  other.market_feed.retry_success_prob = 0.5;
  EXPECT_NE(base, checkpoint_digest(other, Strategy::kCostCapping));
}

/// Appends one committed hour to `st`, mimicking the simulator's per-hour
/// commit, so successive rotated saves hold distinguishable states.
void commit_one_hour(CheckpointState& st) {
  HourRecord rec;
  rec.hour = st.next_hour++;
  rec.cost = 100.0 + static_cast<double>(rec.hour);
  st.spent += rec.cost;
  st.partial.hours.push_back(rec);
}

void remove_generations(const std::string& path, std::size_t gens) {
  for (std::size_t g = 0; g < gens; ++g)
    std::remove(util::Journal::generation_path(path, g).c_str());
}

TEST(CheckpointTest, RotatedSaveKeepsExactlyKGenerations) {
  const std::string path = temp_path("billcap_checkpoint_rotate.j");
  remove_generations(path, 6);
  CheckpointState st = sample_state();
  for (int saves = 0; saves < 5; ++saves) {
    save_checkpoint_rotated(path, st, 3);
    commit_one_hour(st);
  }
  // Five saves through a K=3 chain: generations 0..2 hold the three
  // newest states, nothing older survives.
  EXPECT_TRUE(any_checkpoint_generation_exists(path, 3));
  const std::size_t newest = st.next_hour - 1;  // last saved next_hour
  for (std::size_t g = 0; g < 3; ++g) {
    const CheckpointState back =
        load_checkpoint(util::Journal::generation_path(path, g));
    EXPECT_EQ(back.next_hour, newest - g) << "generation " << g;
  }
  EXPECT_FALSE(
      std::filesystem::exists(util::Journal::generation_path(path, 3)));
  remove_generations(path, 6);
}

TEST(CheckpointTest, FallbackSkipsCorruptedNewestGeneration) {
  const std::string path = temp_path("billcap_checkpoint_fallback.j");
  remove_generations(path, 3);
  CheckpointState st = sample_state();
  save_checkpoint_rotated(path, st, 3);
  commit_one_hour(st);
  save_checkpoint_rotated(path, st, 3);

  // Pristine chain: the newest generation wins, nothing is skipped.
  CheckpointLoadReport report =
      load_checkpoint_fallback(path, 3, st.config_digest);
  EXPECT_EQ(report.generation, 0u);
  EXPECT_TRUE(report.skipped.empty());
  expect_states_bitwise_equal(st, report.state);

  // Bit rot in the newest file: the scan falls back one generation and
  // reports what it stepped over.
  {
    std::ofstream out(path, std::ios::binary | std::ios::app);
    out << "<<bit-rot>>";
  }
  report = load_checkpoint_fallback(path, 3, st.config_digest);
  EXPECT_EQ(report.generation, 1u);
  ASSERT_EQ(report.skipped.size(), 1u);
  EXPECT_NE(report.skipped[0].find(path), std::string::npos);
  EXPECT_EQ(report.state.next_hour, st.next_hour - 1);
  remove_generations(path, 3);
}

TEST(CheckpointTest, FallbackSkipsDigestMismatchedGeneration) {
  const std::string path = temp_path("billcap_checkpoint_digestfb.j");
  remove_generations(path, 2);
  CheckpointState st = sample_state();
  save_checkpoint_rotated(path, st, 2);
  CheckpointState foreign = st;
  commit_one_hour(foreign);
  foreign.config_digest ^= 1;  // someone else's month landed on top
  save_checkpoint_rotated(path, foreign, 2);

  const CheckpointLoadReport report =
      load_checkpoint_fallback(path, 2, st.config_digest);
  EXPECT_EQ(report.generation, 1u);
  ASSERT_EQ(report.skipped.size(), 1u);
  EXPECT_NE(report.skipped[0].find("digest"), std::string::npos);
  expect_states_bitwise_equal(st, report.state);
  remove_generations(path, 2);
}

TEST(CheckpointTest, FallbackThrowsWhenNoGenerationIsViable) {
  const std::string path = temp_path("billcap_checkpoint_allbad.j");
  remove_generations(path, 3);
  EXPECT_FALSE(any_checkpoint_generation_exists(path, 3));
  EXPECT_THROW(load_checkpoint_fallback(path, 3, 0), std::runtime_error);

  // Present but all corrupted is just as dead — and the error must name
  // every generation it tried.
  const CheckpointState st = sample_state();
  save_checkpoint_rotated(path, st, 2);
  save_checkpoint_rotated(path, st, 2);
  for (std::size_t g = 0; g < 2; ++g) {
    std::ofstream out(util::Journal::generation_path(path, g),
                      std::ios::binary | std::ios::trunc);
    out << "garbage";
  }
  try {
    load_checkpoint_fallback(path, 2, st.config_digest);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find(path), std::string::npos);
  }
  remove_generations(path, 3);
}

TEST(CheckpointTest, FaultCursorsSurviveTheRoundTrip) {
  const std::string path = temp_path("billcap_checkpoint_cursors.j");
  CheckpointState st = sample_state();
  st.storms_fired = 4;
  st.corruptions_fired = 2;
  save_checkpoint(path, st);
  const CheckpointState back = load_checkpoint(path);
  EXPECT_EQ(back.storms_fired, 4u);
  EXPECT_EQ(back.corruptions_fired, 2u);
  std::remove(path.c_str());
}

TEST(CheckpointTest, DigestSeparatesStormAndCorruptionPlans) {
  SimulationConfig config;
  const std::uint64_t base = checkpoint_digest(config, Strategy::kCostCapping);

  SimulationConfig other = config;
  other.fault_plan.exit_storms.push_back({5, 3});
  EXPECT_NE(base, checkpoint_digest(other, Strategy::kCostCapping));

  other = config;
  other.fault_plan.checkpoint_corruptions.push_back({9});
  EXPECT_NE(base, checkpoint_digest(other, Strategy::kCostCapping));

  // Standby mode is deliberately digest-neutral: the degraded standby
  // must be able to adopt the primary's checkpoint and hand it back.
  other = config;
  other.standby = true;
  EXPECT_EQ(base, checkpoint_digest(other, Strategy::kCostCapping));
}

/// sample_state() with every coupler-era field off its default: a month
/// that iterated, oscillated once, tripped the breaker and is mid-cooldown.
CheckpointState coupler_sample_state() {
  CheckpointState st = sample_state();
  st.coupler.breaker_state = 1;
  st.coupler.consecutive_troubled = 2;
  st.coupler.cooldown_remaining = 5;
  st.coupler.current_cooldown_hours = 8;
  st.coupler.trips = 3;
  st.coupler.rung = 2;
  st.coupler.clean_streak = 1;
  st.coupler.last_valid = true;
  st.coupler.last_power_mw = {12.5, 0.0, 30.0625};
  st.coupler.last_active = {1, 0, 1};
  st.partial.closed_loop_hours = 1;
  st.partial.coupler_fallback_hours = 1;
  st.partial.coupler_iterations = 11;
  for (std::size_t h = 0; h < st.partial.hours.size(); ++h) {
    HourRecord& rec = st.partial.hours[h];
    rec.coupler_iterations = 3 + h;
    rec.coupler_converged = (h == 0);
    rec.coupler_fallback = (h == 1);
    rec.coupler_rung = h;
    if (h == 1) rec.failure = FailureReason::kPriceOscillation;
  }
  return st;
}

TEST(CheckpointTest, PreCouplerJournalLoadsWithFreshCouplerState) {
  // Regression gate for the ISSUE-9 format extension: a journal written
  // BEFORE the closed-loop coupler existed — no coupler_* keys, hour
  // records ending at the v1 field set — must load cleanly, with the
  // coupler state reading as a fresh (default) coupler. The legacy file
  // is rebuilt from the v1 key registry, which is byte-for-byte what the
  // pre-coupler writer produced.
  const std::string modern_path = temp_path("billcap_checkpoint_modern.j");
  const std::string legacy_path = temp_path("billcap_checkpoint_legacy.j");
  const CheckpointState st = sample_state();  // coupler fields at defaults
  save_checkpoint(modern_path, st);

  const util::Journal modern = util::Journal::load(
      modern_path, keys::kCheckpointMagic, keys::kCheckpointVersion);
  util::Journal legacy(keys::kCheckpointMagic, keys::kCheckpointVersion);
  const char* v1_keys[] = {
      keys::kConfigDigest,        keys::kStrategy,
      keys::kNextHour,            keys::kSpent,
      keys::kCrashesFired,        keys::kStormsFired,
      keys::kCorruptionsFired,    keys::kFeedRecoveredUntil,
      keys::kMonthlyBudget,       keys::kTotalCost,
      keys::kTotalPremiumArrivals, keys::kTotalOrdinaryArrivals,
      keys::kTotalServedPremium,  keys::kTotalServedOrdinary,
      keys::kMaxSolveMs,          keys::kDegradedHours,
      keys::kIncumbentHours,      keys::kHeuristicHours,
      keys::kOutageHours,         keys::kStaleHours,
      keys::kFeedRetryAttempts,   keys::kFeedRecoveredHours,
      keys::kCrashRecoveries,     keys::kFailureTally,
      keys::kDegradedChunks,      keys::kQuarantinedChunks,
      keys::kRegionDownChunks,    keys::kChunkFailureTally,
      keys::kHours,
  };
  for (const char* key : v1_keys) legacy.set(key, modern.get(key));
  for (std::size_t i = 0; i < 4; ++i)
    legacy.set(keys::feed_rng(i), modern.get(keys::feed_rng(i)));
  for (std::size_t h = 0; h < st.partial.hours.size(); ++h) {
    // A v1 hour record is the modern blob minus the appended coupler tail
    // (four zero tokens for a default record).
    std::string blob = modern.get(keys::hour(h));
    ASSERT_TRUE(blob.size() >= 8 && blob.substr(blob.size() - 8) == "0 0 0 0 ")
        << "hour " << h << " blob does not end in the default coupler tail";
    legacy.set(keys::hour(h), blob.substr(0, blob.size() - 8));
  }
  legacy.save_atomic(legacy_path);

  const CheckpointState back = load_checkpoint(legacy_path);
  expect_states_bitwise_equal(st, back);
  EXPECT_EQ(back.coupler.breaker_state, 0u);
  EXPECT_EQ(back.partial.closed_loop_hours, 0u);
  EXPECT_TRUE(back.coupler.last_power_mw.empty());

  std::remove(modern_path.c_str());
  std::remove(legacy_path.c_str());
}

TEST(CheckpointTest, CouplerEraJournalRoundTripsBitwise) {
  // The other direction of the compat contract: a checkpoint carrying a
  // live coupler trajectory (breaker mid-cooldown, per-hour iteration
  // records, an oscillation failure) round-trips with every field intact,
  // and re-saving the loaded state reproduces the file byte-for-byte.
  const std::string path = temp_path("billcap_checkpoint_coupler.j");
  const std::string resaved = temp_path("billcap_checkpoint_coupler2.j");
  const CheckpointState st = coupler_sample_state();
  save_checkpoint(path, st);
  const CheckpointState back = load_checkpoint(path);
  expect_states_bitwise_equal(st, back);
  EXPECT_EQ(back.partial.hours[1].failure, FailureReason::kPriceOscillation);

  save_checkpoint(resaved, back);
  std::ifstream a(path, std::ios::binary), b(resaved, std::ios::binary);
  const std::string text_a(std::istreambuf_iterator<char>(a),
                           std::istreambuf_iterator<char>{});
  const std::string text_b(std::istreambuf_iterator<char>(b),
                           std::istreambuf_iterator<char>{});
  EXPECT_EQ(text_a, text_b) << "re-saved coupler-era journal differs";
  std::remove(path.c_str());
  std::remove(resaved.c_str());
}

TEST(CheckpointTest, HourCountInconsistencyIsRejected) {
  const std::string path = temp_path("billcap_checkpoint_inconsistent.j");
  CheckpointState st = sample_state();
  st.next_hour = st.partial.hours.size() + 5;  // claims more than it holds
  EXPECT_THROW(
      {
        save_checkpoint(path, st);
        load_checkpoint(path);
      },
      std::runtime_error);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace billcap::core
