#pragma once

#include <cstdint>

#include "workload/trace.hpp"

namespace billcap::workload {

/// Parameters of the synthetic Wikipedia-like request trace. The original
/// evaluation uses the Oct-Nov 2007 Wikipedia trace (10 % sample x 10);
/// this generator reproduces its documented structure: a strong weekly
/// pattern, a double-humped diurnal shape (midday and evening peaks),
/// lower weekend volume, multiplicative noise, and occasional flash crowds
/// (the "breaking news" events that motivate bill capping).
struct WikiSynthParams {
  double mean_rate = 1.10e12;       ///< requests/hour weekday average
  double diurnal_amplitude = 0.45;  ///< relative swing of the daily shape
  double weekend_drop = 0.16;       ///< fractional volume drop on Sat/Sun
  double noise_sigma = 0.02;        ///< lognormal sigma of hourly jitter
  double flash_crowd_per_hour = 0.004;  ///< probability a flash crowd starts
  double flash_crowd_magnitude = 0.20;  ///< extra load at the spike peak
                                        ///< (fraction of mean_rate)
  double flash_crowd_decay = 0.55;      ///< per-hour geometric decay
};

/// Generates `hours` of synthetic trace, deterministic in `seed`.
Trace generate_wiki_trace(const WikiSynthParams& params, std::size_t hours,
                          std::uint64_t seed);

/// The two-month evaluation setup (Section VI-B): `history` plays the role
/// of the October trace that trains the budgeter, `evaluation` the November
/// trace that is simulated. Sized so the three paper data centers run at a
/// realistic 30-70 % utilization band.
struct TwoMonthTrace {
  Trace history;     ///< 744 h (31 days, "October")
  Trace evaluation;  ///< 720 h (30 days, "November")
};
TwoMonthTrace paper_two_month_trace(std::uint64_t seed,
                                    const WikiSynthParams& params = {});

}  // namespace billcap::workload
