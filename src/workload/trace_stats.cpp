#include "workload/trace_stats.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/calendar.hpp"
#include "util/stats.hpp"

namespace billcap::workload {

std::vector<double> weekly_profile(const Trace& trace,
                                   std::size_t phase_offset_hours) {
  std::vector<double> sums(util::kHoursPerWeek, 0.0);
  std::vector<std::size_t> counts(util::kHoursPerWeek, 0);
  for (std::size_t h = 0; h < trace.hours(); ++h) {
    const std::size_t slot = util::hour_of_week(phase_offset_hours + h);
    sums[slot] += trace.at(h);
    ++counts[slot];
  }
  const double overall = trace.mean();
  std::vector<double> profile(util::kHoursPerWeek, overall);
  for (std::size_t s = 0; s < util::kHoursPerWeek; ++s)
    if (counts[s] > 0) profile[s] = sums[s] / static_cast<double>(counts[s]);
  return profile;
}

TraceStats analyze_trace(const Trace& trace,
                         const TraceStatsOptions& options) {
  if (trace.empty())
    throw std::invalid_argument("analyze_trace: empty trace");
  if (options.spike_threshold <= 1.0)
    throw std::invalid_argument("analyze_trace: spike_threshold must exceed 1");

  TraceStats stats;
  util::RunningStats overall;
  for (double x : trace.series()) overall.add(x);
  stats.mean = overall.mean();
  stats.peak = overall.max();
  stats.trough = overall.min();
  stats.peak_to_mean = stats.mean > 0.0 ? stats.peak / stats.mean : 0.0;
  stats.hourly_cv2 = util::squared_cv(trace.series());

  const std::vector<double> profile =
      weekly_profile(trace, options.phase_offset_hours);

  // Variance decomposition: share explained by the weekly profile.
  if (trace.hours() >= util::kHoursPerWeek && overall.variance() > 0.0) {
    double residual_ss = 0.0;
    for (std::size_t h = 0; h < trace.hours(); ++h) {
      const double expected =
          profile[util::hour_of_week(options.phase_offset_hours + h)];
      const double r = trace.at(h) - expected;
      residual_ss += r * r;
    }
    const double total_ss =
        overall.variance() * static_cast<double>(trace.hours() - 1);
    stats.weekly_pattern_strength =
        std::clamp(1.0 - residual_ss / total_ss, 0.0, 1.0);
  }

  for (std::size_t h = 0; h < trace.hours(); ++h) {
    const double expected =
        profile[util::hour_of_week(options.phase_offset_hours + h)];
    if (expected > 0.0 && trace.at(h) > options.spike_threshold * expected)
      ++stats.spike_hours;
  }
  return stats;
}

}  // namespace billcap::workload
