#include "workload/trace.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/csv.hpp"

namespace billcap::workload {

Trace::Trace(std::vector<double> arrivals_per_hour)
    : arrivals_(std::move(arrivals_per_hour)) {
  for (double a : arrivals_) {
    if (a < 0.0)
      throw std::invalid_argument("Trace: negative arrival rate");
  }
}

Trace Trace::slice(std::size_t start, std::size_t length) const {
  if (start + length > arrivals_.size())
    throw std::out_of_range("Trace::slice: range exceeds series");
  return Trace(std::vector<double>(arrivals_.begin() + static_cast<std::ptrdiff_t>(start),
                                   arrivals_.begin() + static_cast<std::ptrdiff_t>(start + length)));
}

double Trace::peak() const noexcept {
  if (arrivals_.empty()) return 0.0;
  return *std::max_element(arrivals_.begin(), arrivals_.end());
}

double Trace::total() const noexcept {
  double t = 0.0;
  for (double a : arrivals_) t += a;
  return t;
}

double Trace::mean() const noexcept {
  return arrivals_.empty() ? 0.0 : total() / static_cast<double>(hours());
}

Trace Trace::scaled(double factor) const {
  if (factor < 0.0) throw std::invalid_argument("Trace::scaled: negative factor");
  std::vector<double> out(arrivals_);
  for (double& a : out) a *= factor;
  return Trace(std::move(out));
}

void Trace::save_csv(const std::string& path) const {
  util::Csv doc({"hour", "requests_per_hour"});
  for (std::size_t h = 0; h < arrivals_.size(); ++h)
    doc.add_numeric_row({static_cast<double>(h), arrivals_[h]});
  doc.save(path);
}

Trace Trace::load_csv(const std::string& path) {
  const util::Csv doc = util::Csv::load(path);
  return Trace(doc.column_as_doubles("requests_per_hour"));
}

PremiumSplit::PremiumSplit(double premium_share) : share_(premium_share) {
  if (share_ < 0.0 || share_ > 1.0)
    throw std::invalid_argument("PremiumSplit: share must be in [0, 1]");
}

}  // namespace billcap::workload
