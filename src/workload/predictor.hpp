#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "util/calendar.hpp"

namespace billcap::workload {

/// Hour-of-week workload weights from trailing history (Section VI-B): the
/// average arrival rate seen in each of the 168 hours of the week over the
/// last `weeks` full weeks, normalized to sum to 1 across the week. The
/// budgeter splits the monthly budget along these weights.
///
/// Uses the most recent `weeks` complete weeks of `history`; if fewer than
/// one full week is available, returns uniform weights (1/168 each).
std::vector<double> hour_of_week_weights(std::span<const double> history,
                                         std::size_t weeks = 2);

/// Streaming wrapper around hour_of_week_weights: observe hourly arrivals
/// as they happen, query the weight (or a rate prediction) for any future
/// hour index. This is the predictor the budgeter consults each hour.
class HistoryPredictor {
 public:
  /// `weeks` of trailing history to average over (the paper found 2 weeks
  /// sufficient for the Wikipedia trace).
  explicit HistoryPredictor(std::size_t weeks = 2);

  /// Appends one observed hour of arrivals.
  void observe(double arrivals_per_hour);

  /// Bulk-appends a history series (e.g. the whole October trace).
  void observe_all(std::span<const double> series);

  /// Number of hours observed so far.
  std::size_t observed_hours() const noexcept { return history_.size(); }

  /// True once at least one full week has been observed.
  bool has_full_week() const noexcept {
    return history_.size() >= util::kHoursPerWeek;
  }

  /// Weight of a given hour-of-week [0, 168) under the current history;
  /// weights sum to 1 over a week.
  double weight(std::size_t hour_of_week) const;

  /// All 168 weights.
  std::vector<double> weights() const;

  /// Predicted arrival rate for an hour with the given hour-of-week: the
  /// trailing mean for that slot (uniform slots fall back to the overall
  /// mean of the observed history).
  double predict_rate(std::size_t hour_of_week) const;

 private:
  std::size_t weeks_;
  std::vector<double> history_;
};

}  // namespace billcap::workload
