#include "workload/wiki_synth.hpp"

#include <cmath>
#include <stdexcept>
#include <vector>

#include "util/calendar.hpp"
#include "util/rng.hpp"

namespace billcap::workload {

namespace {

/// Double-humped diurnal profile, normalized to mean ~1 over the day:
/// a broad midday hump (~14:00) plus a narrower evening hump (~20:30),
/// matching the documented Wikipedia access shape.
double diurnal_shape(double hour, double amplitude) {
  auto bump = [](double h, double center, double width) {
    // Circular distance in hours.
    double d = std::fmod(std::abs(h - center), 24.0);
    d = std::min(d, 24.0 - d);
    return std::exp(-0.5 * (d / width) * (d / width));
  };
  const double humps = 0.65 * bump(hour, 14.0, 4.5) + 0.45 * bump(hour, 20.5, 2.5);
  // Normalize humps' daily mean (~0.25) so `amplitude` is a clean knob.
  return 1.0 + amplitude * (humps / 0.25 - 1.0) * 0.5;
}

}  // namespace

Trace generate_wiki_trace(const WikiSynthParams& params, std::size_t hours,
                          std::uint64_t seed) {
  if (params.mean_rate <= 0.0)
    throw std::invalid_argument("generate_wiki_trace: mean_rate must be > 0");
  if (params.diurnal_amplitude < 0.0 || params.diurnal_amplitude > 1.0)
    throw std::invalid_argument(
        "generate_wiki_trace: diurnal_amplitude in [0, 1] required");
  if (params.flash_crowd_decay <= 0.0 || params.flash_crowd_decay >= 1.0)
    throw std::invalid_argument(
        "generate_wiki_trace: flash_crowd_decay in (0, 1) required");

  util::Rng rng(seed);
  std::vector<double> arrivals;
  arrivals.reserve(hours);
  double flash_level = 0.0;  // decaying extra load from an active flash crowd
  for (std::size_t h = 0; h < hours; ++h) {
    const double hour = static_cast<double>(util::hour_of_day(h));
    double level =
        params.mean_rate * diurnal_shape(hour, params.diurnal_amplitude);
    if (util::is_weekend(h)) level *= 1.0 - params.weekend_drop;
    level *= rng.lognormal(0.0, params.noise_sigma);

    // Flash crowds: a spike that decays geometrically over several hours.
    flash_level *= params.flash_crowd_decay;
    if (rng.bernoulli(params.flash_crowd_per_hour))
      flash_level += params.flash_crowd_magnitude * params.mean_rate;
    level += flash_level;

    arrivals.push_back(level);
  }
  return Trace(std::move(arrivals));
}

TwoMonthTrace paper_two_month_trace(std::uint64_t seed,
                                    const WikiSynthParams& params) {
  // One continuous series keeps the weekly phase aligned between the
  // history month and the evaluation month.
  constexpr std::size_t kHistoryHours = 31 * 24;
  constexpr std::size_t kEvaluationHours = 30 * 24;
  const Trace both = generate_wiki_trace(
      params, kHistoryHours + kEvaluationHours, seed);
  return TwoMonthTrace{
      .history = both.slice(0, kHistoryHours),
      .evaluation = both.slice(kHistoryHours, kEvaluationHours),
  };
}

}  // namespace billcap::workload
