#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace billcap::workload {

/// An hourly request-arrival series (requests/hour). Hour 0 is Monday 00:00
/// by repository convention (util/calendar.hpp).
class Trace {
 public:
  Trace() = default;
  explicit Trace(std::vector<double> arrivals_per_hour);

  std::size_t hours() const noexcept { return arrivals_.size(); }
  bool empty() const noexcept { return arrivals_.empty(); }

  /// Arrivals in hour h; throws std::out_of_range beyond the series.
  double at(std::size_t hour) const { return arrivals_.at(hour); }

  std::span<const double> series() const noexcept { return arrivals_; }

  /// Sub-trace of `length` hours starting at `start`; throws on overrun.
  Trace slice(std::size_t start, std::size_t length) const;

  double peak() const noexcept;
  double total() const noexcept;
  double mean() const noexcept;

  /// Element-wise scaling (the paper multiplies the 10 % Wikipedia sample
  /// by 10 to recover full volume).
  Trace scaled(double factor) const;

  /// CSV round-trip ("hour,requests_per_hour").
  void save_csv(const std::string& path) const;
  static Trace load_csv(const std::string& path);

 private:
  std::vector<double> arrivals_;
};

/// Premium/ordinary customer mix (Section VII-C: 80 % premium, 20 %
/// ordinary). The split is a fixed proportion of each hour's arrivals.
class PremiumSplit {
 public:
  /// `premium_share` in [0, 1].
  explicit PremiumSplit(double premium_share = 0.8);

  double premium_share() const noexcept { return share_; }
  double premium(double arrivals) const noexcept { return share_ * arrivals; }
  double ordinary(double arrivals) const noexcept {
    return (1.0 - share_) * arrivals;
  }

 private:
  double share_;
};

}  // namespace billcap::workload
