#pragma once

#include <cstddef>
#include <vector>

#include "workload/trace.hpp"

namespace billcap::workload {

/// Descriptive statistics of an hourly trace, the quantities the bill
/// capper's components consume: the weekly pattern strength that justifies
/// hour-of-week budgeting (Section VI-B), the burstiness statistic C_A^2
/// that enters the Allen-Cunneen formula, and flash-crowd counts that
/// motivate bill capping in the first place.
struct TraceStats {
  double mean = 0.0;
  double peak = 0.0;
  double trough = 0.0;
  double peak_to_mean = 0.0;
  /// Squared coefficient of variation of the hourly arrival counts.
  double hourly_cv2 = 0.0;
  /// Share of total variance explained by the mean weekly profile
  /// (1 = perfectly periodic, 0 = no weekly structure). The paper observes
  /// "a very clear weekly pattern" in the Wikipedia trace.
  double weekly_pattern_strength = 0.0;
  /// Hours whose load exceeds `spike_threshold` x the hour-of-week mean.
  std::size_t spike_hours = 0;
};

/// Options for analyze_trace.
struct TraceStatsOptions {
  double spike_threshold = 1.5;  ///< multiple of the slot mean counted as a spike
  /// Hour-of-week of the trace's first hour on the global calendar.
  std::size_t phase_offset_hours = 0;
};

/// Computes TraceStats. Requires at least one full week of data for the
/// weekly decomposition (weekly_pattern_strength is 0 otherwise).
TraceStats analyze_trace(const Trace& trace,
                         const TraceStatsOptions& options = {});

/// Mean load per hour-of-week slot (168 values, phase-corrected). Slots
/// never observed carry the overall mean.
std::vector<double> weekly_profile(const Trace& trace,
                                   std::size_t phase_offset_hours = 0);

}  // namespace billcap::workload
