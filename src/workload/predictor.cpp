#include "workload/predictor.hpp"

#include <numeric>
#include <stdexcept>

namespace billcap::workload {

std::vector<double> hour_of_week_weights(std::span<const double> history,
                                         std::size_t weeks) {
  if (weeks == 0)
    throw std::invalid_argument("hour_of_week_weights: weeks must be >= 1");
  const std::size_t full_weeks =
      std::min(weeks, history.size() / util::kHoursPerWeek);
  if (full_weeks == 0) {
    return std::vector<double>(util::kHoursPerWeek,
                               1.0 / static_cast<double>(util::kHoursPerWeek));
  }

  // Use the most recent `full_weeks` complete weeks, aligned so that the
  // hour-of-week phase is preserved.
  std::vector<double> sums(util::kHoursPerWeek, 0.0);
  const std::size_t used_hours = full_weeks * util::kHoursPerWeek;
  const std::size_t start = history.size() - used_hours;
  for (std::size_t i = 0; i < used_hours; ++i) {
    const std::size_t absolute_hour = start + i;
    sums[util::hour_of_week(absolute_hour)] += history[absolute_hour];
  }

  const double total = std::accumulate(sums.begin(), sums.end(), 0.0);
  if (total <= 0.0) {
    return std::vector<double>(util::kHoursPerWeek,
                               1.0 / static_cast<double>(util::kHoursPerWeek));
  }
  for (double& s : sums) s /= total;
  return sums;
}

HistoryPredictor::HistoryPredictor(std::size_t weeks) : weeks_(weeks) {
  if (weeks == 0)
    throw std::invalid_argument("HistoryPredictor: weeks must be >= 1");
}

void HistoryPredictor::observe(double arrivals_per_hour) {
  if (arrivals_per_hour < 0.0)
    throw std::invalid_argument("HistoryPredictor: negative arrivals");
  history_.push_back(arrivals_per_hour);
}

void HistoryPredictor::observe_all(std::span<const double> series) {
  for (double a : series) observe(a);
}

double HistoryPredictor::weight(std::size_t hour_of_week) const {
  if (hour_of_week >= util::kHoursPerWeek)
    throw std::out_of_range("HistoryPredictor::weight: hour_of_week >= 168");
  return hour_of_week_weights(history_, weeks_)[hour_of_week];
}

std::vector<double> HistoryPredictor::weights() const {
  return hour_of_week_weights(history_, weeks_);
}

double HistoryPredictor::predict_rate(std::size_t hour_of_week) const {
  if (hour_of_week >= util::kHoursPerWeek)
    throw std::out_of_range("HistoryPredictor::predict_rate: bad hour");
  if (history_.empty()) return 0.0;
  const double mean_rate =
      std::accumulate(history_.begin(), history_.end(), 0.0) /
      static_cast<double>(history_.size());
  if (!has_full_week()) return mean_rate;
  // weight * 168 is the slot's rate relative to the weekly mean.
  return weight(hour_of_week) * static_cast<double>(util::kHoursPerWeek) *
         mean_rate;
}

}  // namespace billcap::workload
