#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "datacenter/cooling.hpp"
#include "datacenter/fat_tree.hpp"
#include "datacenter/server.hpp"
#include "queueing/ggm.hpp"

namespace billcap::datacenter {

/// One homogeneous server class inside a heterogeneous site (Section IX:
/// "multiple service rates exist due to the heterogeneity in hardware").
struct ServerPool {
  std::string name;
  queueing::GgmParams queue;     ///< per-server service rate (requests/hour)
  ServerModel server;            ///< power model of this class
  double operating_utilization = 0.8;
  std::uint64_t count = 0;       ///< installed servers of this class
};

/// A data-center site hosting several server generations behind one
/// dispatcher. The intra-site local optimizer splits the site's arrivals
/// across classes to minimize power while every class meets the site-wide
/// response-time set point — the paper's future-work extension, solved
/// greedily (provably optimal here: per-class power is affine in assigned
/// load, so cheapest watts-per-request first wins).
class HeterogeneousSite {
 public:
  HeterogeneousSite(std::string name, std::vector<ServerPool> pools,
                    double response_target_hours, FatTree topology,
                    SwitchPowers switch_powers, CoolingModel cooling,
                    double power_cap_mw);

  const std::string& name() const noexcept { return name_; }
  const std::vector<ServerPool>& pools() const noexcept { return pools_; }
  double response_target_hours() const noexcept { return response_target_; }
  double power_cap_mw() const noexcept { return power_cap_mw_; }
  const CoolingModel& cooling() const noexcept { return cooling_; }

  /// Total requests/hour the site can absorb within the installed servers.
  double max_requests_per_hour() const noexcept;

  /// The local optimizer's split of `lambda_per_hour` across classes.
  struct Dispatch {
    std::vector<double> pool_lambda;          ///< per class, requests/hour
    std::vector<std::uint64_t> pool_servers;  ///< active servers per class
    double server_mw = 0.0;
    double network_mw = 0.0;
    double cooling_mw = 0.0;
    double total_mw() const noexcept {
      return server_mw + network_mw + cooling_mw;
    }
  };
  /// Throws std::invalid_argument beyond max_requests_per_hour().
  Dispatch dispatch(double lambda_per_hour) const;

  /// Site power (MW) under the optimal split.
  double power_mw(double lambda_per_hour) const;

  /// The site's continuous power-vs-load curve: a convex piecewise-affine
  /// function made of one segment per class, ordered cheapest first. The
  /// MILP embeds these segments directly (a cost-minimizing LP fills them
  /// in order without needing extra binaries).
  struct PowerSegment {
    double lambda_cap = 0.0;           ///< requests/hour this class absorbs
    double slope_mw_per_request = 0.0; ///< marginal MW per request/hour
  };
  std::vector<PowerSegment> power_segments() const;

  /// Fixed activation power (MW): the queueing intercepts of every class
  /// are conservatively attributed to site activation, matching the
  /// homogeneous model's treatment.
  double activation_mw() const noexcept;

  /// Builds a heterogeneous site from a homogeneous spec plus extra pools
  /// — convenient for upgrading catalog sites in examples/benches.
  static HeterogeneousSite from_pools(std::string name,
                                      std::vector<ServerPool> pools,
                                      double response_target_hours,
                                      double power_cap_mw);

 private:
  /// Watts per (request/hour) of one pool, all overheads included.
  double pool_slope_mw(const ServerPool& pool) const noexcept;

  std::string name_;
  std::vector<ServerPool> pools_;   // sorted cheapest-per-request first
  double response_target_;
  FatTree topology_;
  SwitchPowers switch_powers_;
  CoolingModel cooling_;
  double power_cap_mw_;
};

}  // namespace billcap::datacenter
