#include "datacenter/fat_tree.hpp"

#include <cmath>
#include <stdexcept>

namespace billcap::datacenter {

FatTree::FatTree(unsigned k) : k_(k) {
  if (k < 2 || k % 2 != 0)
    throw std::invalid_argument("FatTree: k must be even and >= 2");
}

std::uint64_t FatTree::total_hosts() const noexcept {
  const std::uint64_t k = k_;
  return k * k * k / 4;
}

std::uint64_t FatTree::hosts_per_pod() const noexcept {
  const std::uint64_t half = k_ / 2;
  return half * half;
}

std::uint64_t FatTree::edge_switches_total() const noexcept {
  return static_cast<std::uint64_t>(k_) * (k_ / 2);
}

std::uint64_t FatTree::aggregation_switches_total() const noexcept {
  return edge_switches_total();
}

std::uint64_t FatTree::core_switches_total() const noexcept {
  const std::uint64_t half = k_ / 2;
  return half * half;
}

FatTree::ActiveSwitches FatTree::active_switches(
    std::uint64_t active_servers) const {
  if (active_servers > total_hosts())
    throw std::invalid_argument("FatTree: more active servers than hosts");
  ActiveSwitches out;
  if (active_servers == 0) return out;

  const std::uint64_t per_edge = hosts_per_edge_switch();
  out.edge = (active_servers + per_edge - 1) / per_edge;

  // Packed pods: every active pod keeps its k/2 aggregation switches on so
  // intra-pod bandwidth is preserved.
  const std::uint64_t per_pod = hosts_per_pod();
  const std::uint64_t active_pods = (active_servers + per_pod - 1) / per_pod;
  out.aggregation = active_pods * (k_ / 2);

  // Core layer scales with the active fraction of the fabric.
  const double fraction = static_cast<double>(active_servers) /
                          static_cast<double>(total_hosts());
  out.core = static_cast<std::uint64_t>(
      std::ceil(fraction * static_cast<double>(core_switches_total())));
  if (out.core == 0) out.core = 1;  // at least one core path
  return out;
}

FatTree::SwitchRatios FatTree::switch_ratios() const noexcept {
  SwitchRatios r;
  r.edge_per_server = 1.0 / static_cast<double>(hosts_per_edge_switch());
  r.aggregation_per_server = 1.0 / static_cast<double>(hosts_per_edge_switch());
  r.core_per_server = static_cast<double>(core_switches_total()) /
                      static_cast<double>(total_hosts());
  return r;
}

double network_power_watts(const FatTree& topology, const SwitchPowers& power,
                           std::uint64_t active_servers) {
  const auto active = topology.active_switches(active_servers);
  if (active_servers == 0) return 0.0;
  return static_cast<double>(active.edge) * power.edge_watts +
         static_cast<double>(active.aggregation) * power.aggregation_watts +
         static_cast<double>(active.core) * power.core_watts;
}

double network_watts_per_server(const FatTree& topology,
                                const SwitchPowers& power) noexcept {
  const auto r = topology.switch_ratios();
  return r.edge_per_server * power.edge_watts +
         r.aggregation_per_server * power.aggregation_watts +
         r.core_per_server * power.core_watts;
}

}  // namespace billcap::datacenter
