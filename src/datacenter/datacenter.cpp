#include "datacenter/datacenter.hpp"

#include <algorithm>
#include <stdexcept>

namespace billcap::datacenter {

namespace {
constexpr double kWattsPerMw = 1e6;
}

DataCenter::DataCenter(DataCenterSpec spec)
    : spec_(std::move(spec)),
      server_coefs_(queueing::server_requirement_coefficients(
          spec_.queue, spec_.response_target_hours)) {
  if (spec_.max_servers == 0)
    throw std::invalid_argument("DataCenter: max_servers must be > 0");
  if (spec_.max_servers > spec_.topology.total_hosts())
    throw std::invalid_argument(
        "DataCenter: fat-tree cannot host max_servers (" + spec_.name + ")");
  if (!(spec_.power_cap_mw > 0.0))
    throw std::invalid_argument("DataCenter: power cap must be > 0");
  if (spec_.operating_utilization <= 0.0 || spec_.operating_utilization > 1.0)
    throw std::invalid_argument(
        "DataCenter: operating_utilization must be in (0, 1]");
}

double DataCenter::active_server_watts() const noexcept {
  return spec_.server.power_watts(spec_.operating_utilization);
}

std::uint64_t DataCenter::servers_for(double lambda_per_hour) const {
  const std::uint64_t n = queueing::min_servers_for_response_time(
      spec_.queue, lambda_per_hour, spec_.response_target_hours);
  if (n > spec_.max_servers)
    throw std::invalid_argument("DataCenter " + spec_.name +
                                ": load exceeds server capacity");
  return n;
}

double DataCenter::max_requests_per_hour() const noexcept {
  // n_frac(lambda) = slope * lambda + intercept <= max_servers.
  const double head =
      static_cast<double>(spec_.max_servers) - server_coefs_.intercept;
  return std::max(0.0, head / server_coefs_.slope);
}

double DataCenter::max_requests_within_power_cap() const noexcept {
  const AffinePower p = affine_power();
  const double by_power =
      p.slope_mw_per_request_hour > 0.0
          ? std::max(0.0, (spec_.power_cap_mw - p.intercept_mw) /
                              p.slope_mw_per_request_hour)
          : max_requests_per_hour();
  return std::min(max_requests_per_hour(), by_power);
}

DataCenter::PowerBreakdown DataCenter::power_breakdown(
    double lambda_per_hour) const {
  PowerBreakdown out;
  const std::uint64_t n = servers_for(lambda_per_hour);
  if (n == 0) return out;
  out.server_mw =
      static_cast<double>(n) * active_server_watts() / kWattsPerMw;
  out.network_mw =
      network_power_watts(spec_.topology, spec_.switch_powers, n) / kWattsPerMw;
  out.cooling_mw = spec_.cooling.power_watts(
                       (out.server_mw + out.network_mw) * kWattsPerMw) /
                   kWattsPerMw;
  return out;
}

double DataCenter::power_mw(double lambda_per_hour) const {
  return power_breakdown(lambda_per_hour).total_mw();
}

double DataCenter::response_time_hours(double lambda_per_hour) const {
  const std::uint64_t n = servers_for(lambda_per_hour);
  return queueing::allen_cunneen_response_time(
      spec_.queue, static_cast<double>(n), lambda_per_hour);
}

DataCenter::AffinePower DataCenter::affine_power() const noexcept {
  // Watts per active server: server itself + its continuous network share,
  // grossed up by the cooling overhead (eq. 4-7 combined).
  const double per_server_watts =
      (active_server_watts() +
       network_watts_per_server(spec_.topology, spec_.switch_powers)) *
      spec_.cooling.overhead_factor();
  AffinePower out;
  out.slope_mw_per_request_hour =
      server_coefs_.slope * per_server_watts / kWattsPerMw;
  out.intercept_mw = server_coefs_.intercept * per_server_watts / kWattsPerMw;
  return out;
}

DataCenter::AffinePower DataCenter::affine_server_power_only() const noexcept {
  AffinePower out;
  out.slope_mw_per_request_hour =
      server_coefs_.slope * active_server_watts() / kWattsPerMw;
  out.intercept_mw =
      server_coefs_.intercept * active_server_watts() / kWattsPerMw;
  return out;
}

}  // namespace billcap::datacenter
