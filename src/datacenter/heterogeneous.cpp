#include "datacenter/heterogeneous.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace billcap::datacenter {

namespace {
constexpr double kWattsPerMw = 1e6;
}

HeterogeneousSite::HeterogeneousSite(std::string name,
                                     std::vector<ServerPool> pools,
                                     double response_target_hours,
                                     FatTree topology,
                                     SwitchPowers switch_powers,
                                     CoolingModel cooling, double power_cap_mw)
    : name_(std::move(name)),
      pools_(std::move(pools)),
      response_target_(response_target_hours),
      topology_(topology),
      switch_powers_(switch_powers),
      cooling_(cooling),
      power_cap_mw_(power_cap_mw) {
  if (pools_.empty())
    throw std::invalid_argument("HeterogeneousSite: need at least one pool");
  std::uint64_t total_servers = 0;
  for (const ServerPool& pool : pools_) {
    if (pool.count == 0)
      throw std::invalid_argument("HeterogeneousSite: empty pool " + pool.name);
    // Validate each class can meet the response target at all.
    queueing::server_requirement_coefficients(pool.queue, response_target_);
    total_servers += pool.count;
  }
  if (total_servers > topology_.total_hosts())
    throw std::invalid_argument(
        "HeterogeneousSite: fat-tree cannot host all pools");
  if (!(power_cap_mw_ > 0.0))
    throw std::invalid_argument("HeterogeneousSite: power cap must be > 0");

  // Cheapest watts-per-request first: the greedy (and optimal) fill order.
  std::sort(pools_.begin(), pools_.end(),
            [this](const ServerPool& a, const ServerPool& b) {
              return pool_slope_mw(a) < pool_slope_mw(b);
            });
}

double HeterogeneousSite::pool_slope_mw(const ServerPool& pool) const noexcept {
  const double per_server_watts =
      (pool.server.power_watts(pool.operating_utilization) +
       network_watts_per_server(topology_, switch_powers_)) *
      cooling_.overhead_factor();
  return per_server_watts / (pool.queue.service_rate * kWattsPerMw);
}

double HeterogeneousSite::max_requests_per_hour() const noexcept {
  double total = 0.0;
  for (const ServerPool& pool : pools_) {
    const auto coefs = queueing::server_requirement_coefficients(
        pool.queue, response_target_);
    const double head = static_cast<double>(pool.count) - coefs.intercept;
    total += std::max(0.0, head / coefs.slope);
  }
  return total;
}

std::vector<HeterogeneousSite::PowerSegment>
HeterogeneousSite::power_segments() const {
  std::vector<PowerSegment> segments;
  segments.reserve(pools_.size());
  for (const ServerPool& pool : pools_) {
    const auto coefs = queueing::server_requirement_coefficients(
        pool.queue, response_target_);
    const double cap = std::max(
        0.0, (static_cast<double>(pool.count) - coefs.intercept) / coefs.slope);
    segments.push_back({cap, pool_slope_mw(pool)});
  }
  return segments;
}

double HeterogeneousSite::activation_mw() const noexcept {
  double total = 0.0;
  for (const ServerPool& pool : pools_) {
    const auto coefs = queueing::server_requirement_coefficients(
        pool.queue, response_target_);
    const double per_server_watts =
        (pool.server.power_watts(pool.operating_utilization) +
         network_watts_per_server(topology_, switch_powers_)) *
        cooling_.overhead_factor();
    total += coefs.intercept * per_server_watts / kWattsPerMw;
  }
  return total;
}

HeterogeneousSite::Dispatch HeterogeneousSite::dispatch(
    double lambda_per_hour) const {
  if (lambda_per_hour < 0.0)
    throw std::invalid_argument("HeterogeneousSite: negative load");
  if (lambda_per_hour > max_requests_per_hour() * (1.0 + 1e-12))
    throw std::invalid_argument("HeterogeneousSite " + name_ +
                                ": load exceeds capacity");
  Dispatch out;
  out.pool_lambda.assign(pools_.size(), 0.0);
  out.pool_servers.assign(pools_.size(), 0);
  if (lambda_per_hour == 0.0) return out;

  double remaining = lambda_per_hour;
  std::uint64_t active_servers = 0;
  double server_watts = 0.0;
  for (std::size_t k = 0; k < pools_.size() && remaining > 0.0; ++k) {
    const ServerPool& pool = pools_[k];
    const auto coefs = queueing::server_requirement_coefficients(
        pool.queue, response_target_);
    const double cap = std::max(
        0.0, (static_cast<double>(pool.count) - coefs.intercept) / coefs.slope);
    const double take = std::min(remaining, cap);
    if (take <= 0.0) continue;
    remaining -= take;
    out.pool_lambda[k] = take;
    out.pool_servers[k] = queueing::min_servers_for_response_time(
        pool.queue, take, response_target_);
    active_servers += out.pool_servers[k];
    server_watts += static_cast<double>(out.pool_servers[k]) *
                    pool.server.power_watts(pool.operating_utilization);
  }
  if (remaining > 1e-6 * lambda_per_hour)
    throw std::logic_error("HeterogeneousSite: dispatch left load unassigned");

  out.server_mw = server_watts / kWattsPerMw;
  out.network_mw =
      network_power_watts(topology_, switch_powers_, active_servers) /
      kWattsPerMw;
  out.cooling_mw =
      cooling_.power_watts((out.server_mw + out.network_mw) * kWattsPerMw) /
      kWattsPerMw;
  return out;
}

double HeterogeneousSite::power_mw(double lambda_per_hour) const {
  return dispatch(lambda_per_hour).total_mw();
}

HeterogeneousSite HeterogeneousSite::from_pools(std::string name,
                                                std::vector<ServerPool> pools,
                                                double response_target_hours,
                                                double power_cap_mw) {
  std::uint64_t total = 0;
  for (const auto& pool : pools) total += pool.count;
  // Smallest even-k fat-tree that hosts every pool.
  unsigned k = 4;
  while (static_cast<std::uint64_t>(k) * k * k / 4 < total) k += 2;
  return HeterogeneousSite(std::move(name), std::move(pools),
                           response_target_hours, FatTree(k),
                           SwitchPowers{80.0, 80.0, 250.0}, CoolingModel(1.7),
                           power_cap_mw);
}

}  // namespace billcap::datacenter
