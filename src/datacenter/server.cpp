#include "datacenter/server.hpp"

#include <algorithm>
#include <stdexcept>

namespace billcap::datacenter {

ServerModel::ServerModel(double idle_watts, double peak_watts)
    : idle_watts_(idle_watts), peak_watts_(peak_watts) {
  if (idle_watts < 0.0 || peak_watts < idle_watts)
    throw std::invalid_argument("ServerModel: need 0 <= idle <= peak");
}

double ServerModel::power_watts(double utilization) const noexcept {
  const double u = std::clamp(utilization, 0.0, 1.0);
  return idle_watts_ + (peak_watts_ - idle_watts_) * u;
}

ServerModel ServerModel::from_active_power(double active_watts,
                                           double operating_utilization,
                                           double idle_fraction) {
  if (active_watts <= 0.0)
    throw std::invalid_argument("from_active_power: active_watts must be > 0");
  if (operating_utilization <= 0.0 || operating_utilization > 1.0)
    throw std::invalid_argument(
        "from_active_power: operating_utilization must be in (0, 1]");
  if (idle_fraction < 0.0 || idle_fraction >= 1.0)
    throw std::invalid_argument(
        "from_active_power: idle_fraction must be in [0, 1)");
  // active = peak * (f + (1 - f) * u)  =>  peak = active / (f + (1 - f) u).
  const double peak =
      active_watts / (idle_fraction + (1.0 - idle_fraction) * operating_utilization);
  return ServerModel(idle_fraction * peak, peak);
}

}  // namespace billcap::datacenter
