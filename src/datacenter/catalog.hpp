#pragma once

#include <vector>

#include "datacenter/datacenter.hpp"

namespace billcap::datacenter {

/// The three simulated sites of Section VI-A. Restored parameter values
/// (see DESIGN.md section 5 for the OCR notes):
///
/// | site | CPU                     | W/server | req/s | switches (e,a,c) | coe  |
/// |------|-------------------------|----------|-------|------------------|------|
/// | DC1  | 2.0 GHz AMD Athlon      |  88.88   |  500  | 84,  84, 240     | 1.94 |
/// | DC2  | 3.2 GHz Pentium 4 630   | 134.0    |  300  | 70,  70, 260     | 1.39 |
/// | DC3  | 2.9 GHz Pentium D 950   | 149.9    |  725  | 75,  75, 240     | 1.74 |
///
/// Each site hosts up to 300,000 servers on a k = 108 fat-tree (314,928
/// ports) and targets a response time of twice the bare service time; the
/// supplier power caps Ps are 40 / 60 / 65 MW.
std::vector<DataCenterSpec> paper_datacenter_specs();

/// Convenience: the specs wrapped in DataCenter instances.
std::vector<DataCenter> paper_datacenters();

}  // namespace billcap::datacenter
