#include "datacenter/catalog.hpp"

namespace billcap::datacenter {

namespace {

constexpr double kSecondsPerHour = 3600.0;
constexpr unsigned kFatTreeK = 108;
constexpr std::uint64_t kMaxServers = 300'000;
constexpr double kOperatingUtilization = 0.8;

DataCenterSpec make_site(std::string name, double requests_per_second,
                         double active_watts, SwitchPowers switches,
                         double coe, double power_cap_mw) {
  const double mu = requests_per_second * kSecondsPerHour;
  DataCenterSpec spec{
      .name = std::move(name),
      .queue = {.service_rate = mu, .ca2 = 1.0, .cb2 = 1.0},
      // Rs = 2 / mu: the waiting-time allowance equals the service time.
      .response_target_hours = 2.0 / mu,
      .server = ServerModel::from_active_power(active_watts,
                                               kOperatingUtilization),
      .operating_utilization = kOperatingUtilization,
      .max_servers = kMaxServers,
      .topology = FatTree(kFatTreeK),
      .switch_powers = switches,
      .cooling = CoolingModel(coe),
      .power_cap_mw = power_cap_mw,
  };
  return spec;
}

}  // namespace

std::vector<DataCenterSpec> paper_datacenter_specs() {
  std::vector<DataCenterSpec> specs;
  specs.push_back(make_site("dc1-athlon", 500.0, 88.88,
                            {.edge_watts = 84, .aggregation_watts = 84, .core_watts = 240},
                            1.94, 42.0));
  specs.push_back(make_site("dc2-pentium4", 300.0, 134.0,
                            {.edge_watts = 70, .aggregation_watts = 70, .core_watts = 260},
                            1.39, 68.0));
  specs.push_back(make_site("dc3-pentiumd", 725.0, 149.9,
                            {.edge_watts = 75, .aggregation_watts = 75, .core_watts = 240},
                            1.74, 72.0));
  return specs;
}

std::vector<DataCenter> paper_datacenters() {
  std::vector<DataCenter> sites;
  for (auto& spec : paper_datacenter_specs()) sites.emplace_back(std::move(spec));
  return sites;
}

}  // namespace billcap::datacenter
