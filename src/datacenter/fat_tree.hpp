#pragma once

#include <cstdint>

namespace billcap::datacenter {

/// A k-ary fat-tree data-center network (Al-Fares et al. [18], the topology
/// the paper assumes for its networking power model, eq. 6). For even k:
///   * k pods, each with k/2 edge and k/2 aggregation switches;
///   * each edge switch connects k/2 hosts, so a pod hosts (k/2)^2 servers
///     and the fabric supports k^3/4 hosts total;
///   * (k/2)^2 core switches.
///
/// Active switch counts scale with the number of active servers, servers
/// being packed pod-by-pod (ElasticTree-style consolidation [4]): an edge
/// switch is on when any of its hosts is active, aggregation and core
/// switches in proportion to the active fraction of the fabric they serve.
class FatTree {
 public:
  /// Builds a k-ary fat-tree. Requires k even and >= 2.
  explicit FatTree(unsigned k);

  unsigned k() const noexcept { return k_; }
  std::uint64_t total_hosts() const noexcept;
  std::uint64_t hosts_per_edge_switch() const noexcept { return k_ / 2; }
  std::uint64_t hosts_per_pod() const noexcept;
  std::uint64_t edge_switches_total() const noexcept;
  std::uint64_t aggregation_switches_total() const noexcept;
  std::uint64_t core_switches_total() const noexcept;

  /// Counts of switches that must be powered with `active_servers` servers
  /// on (packed). Throws std::invalid_argument beyond total_hosts().
  struct ActiveSwitches {
    std::uint64_t edge = 0;
    std::uint64_t aggregation = 0;
    std::uint64_t core = 0;
  };
  ActiveSwitches active_switches(std::uint64_t active_servers) const;

  /// Continuous (un-ceiled) switches-per-server ratios; these are the
  /// proportionality constants A_i, B_i, C_i of eq. 6 that the MILP's affine
  /// power model uses.
  struct SwitchRatios {
    double edge_per_server = 0.0;
    double aggregation_per_server = 0.0;
    double core_per_server = 0.0;
  };
  SwitchRatios switch_ratios() const noexcept;

 private:
  unsigned k_;
};

/// Per-class average switch powers (watts), constant regardless of traffic:
/// today's network elements are not energy proportional (a switch from zero
/// to full traffic gains < 8 % [4]).
struct SwitchPowers {
  double edge_watts = 0.0;
  double aggregation_watts = 0.0;
  double core_watts = 0.0;
};

/// Total network power (watts) for a packed set of active servers.
double network_power_watts(const FatTree& topology, const SwitchPowers& power,
                           std::uint64_t active_servers);

/// Continuous network watts per active server (the affine-model slope).
double network_watts_per_server(const FatTree& topology,
                                const SwitchPowers& power) noexcept;

}  // namespace billcap::datacenter
