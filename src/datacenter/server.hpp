#pragma once

namespace billcap::datacenter {

/// Linear server power model (Section IV-B): sp = I + D * u, where I is the
/// idle power, I + D the power at 100 % utilization, and u the utilization.
/// The paper's local optimizer keeps the minimum number of servers active,
/// so active servers run close to a fixed operating utilization and the
/// per-server draw the MILP sees is effectively constant.
class ServerModel {
 public:
  /// `idle_watts` at u = 0 and `peak_watts` at u = 1. Requires
  /// 0 <= idle <= peak.
  ServerModel(double idle_watts, double peak_watts);

  /// Power draw (watts) at utilization u in [0, 1] (clamped).
  double power_watts(double utilization) const noexcept;

  double idle_watts() const noexcept { return idle_watts_; }
  double peak_watts() const noexcept { return peak_watts_; }

  /// Convenience factory for catalog entries quoted as a single
  /// "active server" wattage (the paper's 88.88 / 134.0 / 149.9 W figures):
  /// builds a model whose power at `operating_utilization` equals
  /// `active_watts`, with idle power a fixed fraction of peak (default 60 %,
  /// a typical non-energy-proportional server of the era).
  static ServerModel from_active_power(double active_watts,
                                       double operating_utilization = 0.8,
                                       double idle_fraction = 0.6);

 private:
  double idle_watts_;
  double peak_watts_;
};

}  // namespace billcap::datacenter
