#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "datacenter/cooling.hpp"
#include "datacenter/fat_tree.hpp"
#include "datacenter/server.hpp"
#include "queueing/ggm.hpp"

namespace billcap::datacenter {

/// Static description of one data-center site (Section VI-A). All rates are
/// per hour (the paper's invocation period), all power figures in watts at
/// device level; aggregate power is reported in MW to match the $/MWh
/// electricity prices.
struct DataCenterSpec {
  std::string name;
  queueing::GgmParams queue;     ///< service_rate = requests/hour per server
  double response_target_hours;  ///< Rs_i, the per-site QoS set point
  ServerModel server;            ///< per-server power model
  double operating_utilization;  ///< utilization the local optimizer runs at
  std::uint64_t max_servers;     ///< hosted servers (up to 300,000)
  FatTree topology;              ///< k-ary fat-tree network
  SwitchPowers switch_powers;    ///< esp/asp/csp averages (eq. 6)
  CoolingModel cooling;          ///< coe_i (eq. 7)
  double power_cap_mw;           ///< Ps_i, supplier-imposed draw cap
};

/// One data-center site: combines the queueing-based local optimizer
/// (minimum active servers for the response-time set point) with the
/// three-part power model p = p_server + p_networking + p_cooling
/// (eq. 4-7). This is both the ground-truth cost model's physics and, via
/// affine_power(), the linear coefficients the MILP formulations embed.
class DataCenter {
 public:
  explicit DataCenter(DataCenterSpec spec);

  const DataCenterSpec& spec() const noexcept { return spec_; }
  const std::string& name() const noexcept { return spec_.name; }

  /// Minimum active servers meeting Rs for the given arrival rate — the
  /// paper's per-site local optimizer. Throws if the site cannot serve
  /// `lambda_per_hour` within max_servers.
  std::uint64_t servers_for(double lambda_per_hour) const;

  /// Largest arrival rate the site can serve within max_servers and Rs.
  double max_requests_per_hour() const noexcept;

  /// Largest arrival rate that also respects the power cap Ps (the tighter
  /// of the capacity and power limits); this is the lambda upper bound the
  /// optimizers use.
  double max_requests_within_power_cap() const noexcept;

  /// Exact power breakdown at a given load, using integer server and switch
  /// counts (ground truth for billing).
  struct PowerBreakdown {
    double server_mw = 0.0;
    double network_mw = 0.0;
    double cooling_mw = 0.0;
    double total_mw() const noexcept {
      return server_mw + network_mw + cooling_mw;
    }
  };
  PowerBreakdown power_breakdown(double lambda_per_hour) const;

  /// Total site power (MW) at a given load.
  double power_mw(double lambda_per_hour) const;

  /// Achieved response time with the local optimizer's server count.
  double response_time_hours(double lambda_per_hour) const;

  /// Continuous affine approximation  power_mw ~= slope * lambda + intercept
  /// valid for lambda > 0 (at lambda = 0 the site powers off entirely).
  /// This is what the MILP embeds; it differs from the exact model only by
  /// the server/switch count ceilings (sub-0.1 % at cloud scale).
  struct AffinePower {
    double slope_mw_per_request_hour = 0.0;
    double intercept_mw = 0.0;
  };
  AffinePower affine_power() const noexcept;

  /// Affine model with servers only — what the Min-Only baseline believes
  /// the site consumes (its first limitation: no cooling, no networking).
  AffinePower affine_server_power_only() const noexcept;

  /// Watts drawn by one active server at the operating utilization.
  double active_server_watts() const noexcept;

 private:
  DataCenterSpec spec_;
  queueing::ServerRequirementCoefficients server_coefs_;
};

}  // namespace billcap::datacenter
