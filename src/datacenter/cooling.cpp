#include "datacenter/cooling.hpp"

#include <algorithm>
#include <stdexcept>

namespace billcap::datacenter {

CoolingModel::CoolingModel(double coe) : coe_(coe) {
  if (!(coe > 0.0))
    throw std::invalid_argument("CoolingModel: coe must be > 0");
}

double CoolingModel::power_watts(double it_power_watts) const {
  if (it_power_watts < 0.0)
    throw std::invalid_argument("CoolingModel: negative IT power");
  return it_power_watts / coe_;
}

CoolingModel CoolingModel::from_outside_air(double coe_at_15c,
                                            double temp_celsius,
                                            double derate_per_deg) {
  const double derated =
      coe_at_15c - derate_per_deg * (temp_celsius - 15.0);
  return CoolingModel(std::max(derated, 0.2));
}

}  // namespace billcap::datacenter
