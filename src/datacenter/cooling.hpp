#pragma once

namespace billcap::datacenter {

/// Cooling power model (eq. 7, after Ahmad et al. [3]): the cooling system
/// removes the heat produced by the IT equipment at a given efficiency
///   coe = heat removed / power consumed by the cooling system,
/// so  p_cooling = (p_server + p_networking) / coe.
/// A lower external air temperature yields a higher coe (more efficient
/// outside-air cooling).
class CoolingModel {
 public:
  /// Requires coe > 0. The paper's per-site values are 1.94, 1.39, 1.74.
  explicit CoolingModel(double coe);

  double coe() const noexcept { return coe_; }

  /// Cooling power (watts) needed to remove `it_power_watts` of heat.
  double power_watts(double it_power_watts) const;

  /// Total multiplier applied to IT power: total = IT * overhead_factor().
  double overhead_factor() const noexcept { return 1.0 + 1.0 / coe_; }

  /// Efficiency as a function of outside-air temperature (Celsius): a simple
  /// linear derating anchored at `coe_at_15c` for 15 degC losing
  /// `derate_per_deg` per additional degree, floored at 0.2. Supports the
  /// weather-sensitivity extension discussed in Section IX.
  static CoolingModel from_outside_air(double coe_at_15c, double temp_celsius,
                                       double derate_per_deg = 0.03);

 private:
  double coe_;
};

}  // namespace billcap::datacenter
