#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "core/fault_injector.hpp"
#include "core/hierarchical.hpp"
#include "core/simulator.hpp"
#include "util/thread_pool.hpp"

namespace billcap::core {

/// How a region's chunk solve ended this fleet hour.
enum class ChunkStatus {
  kOk,           ///< clean solve on the top rung
  kDegraded,     ///< deadline / arena / throw — fell down the ladder locally
  kQuarantined,  ///< region pinned to premium-only standby by the ladder
  kRegionDown,   ///< RegionOutage: the whole region served nothing
};

const char* to_string(ChunkStatus status) noexcept;

/// Per-chunk solve deadline. The node budget is the primary limit — it is
/// deterministic (the same solve always burns the same nodes), so results
/// stay bitwise-identical across hosts and thread counts. The wall-clock
/// assist mirrors serve's re-plan engine: off by default, opt-in for
/// latency-sensitive deployments that accept losing determinism.
struct ChunkDeadline {
  long max_nodes = 20'000;     ///< per-solve branch-and-bound budget
  double wall_clock_ms = 0.0;  ///< > 0 adds a wall-clock ceiling per solve
};

/// Sliding-window quarantine, mirroring SupervisorPolicy's restart budget:
/// `trip_failures` degraded chunks within the last `window_hours` pin the
/// region to premium-only standby for `quarantine_hours`, after which it
/// gets a clean probation window.
struct QuarantineOptions {
  std::size_t window_hours = 8;
  std::size_t trip_failures = 3;
  std::size_t quarantine_hours = 4;
};

struct FleetOptions {
  OptimizerOptions optimizer;
  ChunkDeadline deadline;
  QuarantineOptions quarantine;
};

/// One region's contribution to a fleet hour.
struct ChunkOutcome {
  std::size_t region = 0;
  ChunkStatus status = ChunkStatus::kOk;
  FailureReason failure = FailureReason::kNone;
  CappingOutcome outcome;
};

/// The merged fleet hour: the same global view HierarchicalOutcome carries,
/// plus the per-chunk fault accounting.
struct FleetHourOutcome {
  CappingOutcome::Mode mode = CappingOutcome::Mode::kUncapped;
  double served_premium = 0.0;
  double served_ordinary = 0.0;
  double predicted_cost = 0.0;
  double dropped_capacity = 0.0;
  std::vector<double> site_lambda;  ///< global site order
  std::vector<ChunkOutcome> chunks;
  std::size_t degraded_chunks = 0;
  std::size_t quarantined_chunks = 0;
  std::size_t region_down_chunks = 0;
};

/// A synthetic scenario-month for the fleet: deterministic in `seed`, with
/// sinusoidal-plus-noise arrivals and per-site background demand. All
/// random draws happen serially in hour order before any chunk dispatch,
/// so the month is a pure function of this config regardless of threads.
struct FleetMonthConfig {
  std::size_t hours = 24;
  std::uint64_t seed = 0;
  double base_premium = 0.0;     ///< mean premium arrivals/hour
  double base_ordinary = 0.0;    ///< mean ordinary arrivals/hour
  double base_demand_mw = 5.0;   ///< mean per-site background demand
  double hourly_budget = 0.0;    ///< flat per-hour budget
  FaultPlan faults;              ///< region-scoped kinds welcome
};

/// Fault-isolated parallel fleet controller: the 100-site scale-out layer
/// on top of HierarchicalCapper. Each hour the coordinator splits workload
/// and budget across regions exactly like the hierarchical capper, then
/// shards one chunk solve per region across a util::ThreadPool (or runs
/// them inline with no pool). Every chunk solve runs inside a fault
/// envelope:
///
///   - a per-chunk deadline (node budget primary, wall-clock assist),
///   - typed failure classification (timeout / infeasible / arena-exhausted
///     / thrown),
///   - automatic degradation to the greedy fallback (BillCapper's ladder)
///     or, when the chunk's own envelope trips, premium-only standby —
///     a failed region sheds locally and never poisons the fleet hour,
///   - a sliding-window quarantine that pins repeatedly-failing regions to
///     premium-only standby until they recover.
///
/// Determinism: chunk results are reduced in region-index order, each
/// region's solver arena is touched by exactly one task per hour, and no
/// accumulation happens under locks — decide_hour is bitwise-identical for
/// any thread count, including none.
class FleetController {
 public:
  /// `pool` may be null (chunks solve inline, serially). The caller keeps
  /// sites/policies/pool alive for the controller's lifetime.
  FleetController(const std::vector<datacenter::DataCenter>& sites,
                  const std::vector<market::PricingPolicy>& policies,
                  std::vector<Region> regions, FleetOptions options = {},
                  util::ThreadPool* pool = nullptr);

  std::size_t num_regions() const noexcept { return hier_.num_regions(); }
  std::size_t num_sites() const noexcept { return num_sites_; }

  /// True when the region is quarantined for the *next* decide_hour call.
  bool region_quarantined(std::size_t region, std::size_t hour) const;

  /// Decides one fleet hour. `injector` may be null (no faults); pass one
  /// built with the region-aware constructor to exercise RegionOutage /
  /// ChunkSolverStall / ChunkArenaSqueeze. Never throws on chunk trouble —
  /// only on caller bugs (size mismatches).
  FleetHourOutcome decide_hour(std::size_t hour, double lambda_premium,
                               double lambda_ordinary,
                               std::span<const double> other_demand_mw,
                               double hourly_budget,
                               const FaultInjector* injector = nullptr);

  /// Runs a synthetic scenario-month through decide_hour and aggregates a
  /// MonthlyResult (chunk counters filled in; `cost` is the coordinator's
  /// predicted cost — the fleet bench compares months, not billing).
  MonthlyResult run_month(const FleetMonthConfig& config);

  /// Test seam: called inside each chunk's fault envelope, before the
  /// solve; may throw to exercise the kThrown classification
  /// deterministically. Null in production.
  std::function<void(std::size_t region, std::size_t hour)> chunk_fault_hook;

 private:
  struct ChunkInput;
  struct QuarantineState {
    std::vector<std::size_t> recent_failures;  ///< hour stamps, pruned
    std::size_t quarantined_until = 0;         ///< hour < this => standby
  };

  ChunkOutcome run_chunk(const ChunkInput& input) const;

  const std::vector<datacenter::DataCenter>& sites_;
  const std::vector<market::PricingPolicy>& policies_;
  FleetOptions options_;
  util::ThreadPool* pool_ = nullptr;
  std::size_t num_sites_ = 0;
  HierarchicalCapper hier_;
  std::vector<QuarantineState> quarantine_;
};

/// Bitwise-stable CSV rendering of a fleet month: one row per hour with
/// shortest-round-trip doubles and an FNV-1a hash of the hour's site_lambda
/// double bits. Two runs are bitwise-identical iff their CSVs are equal —
/// the thread-count invariance test and the bench digest both key on this.
std::string fleet_month_csv(const MonthlyResult& result);

}  // namespace billcap::core
