#include "core/cost_minimizer.hpp"

#include <stdexcept>

namespace billcap::core {

AllocationResult minimize_cost_over_models(std::span<const SiteModel> models,
                                           double lambda_total,
                                           const OptimizerOptions& options) {
  // Solve-local arena: within-call warm starts only, cross-call state none.
  lp::ArenaSolver solver;
  return minimize_cost_over_models(models, lambda_total, options, solver);
}

AllocationResult minimize_cost_over_models(std::span<const SiteModel> models,
                                           double lambda_total,
                                           const OptimizerOptions& options,
                                           lp::ArenaSolver& solver) {
  if (lambda_total < 0.0)
    throw std::invalid_argument("minimize_cost: negative demand");

  AllocationFormulation f = build_allocation_formulation(models);
  f.problem.set_sense(lp::Sense::kMinimize);

  std::vector<lp::Term> demand_terms;
  demand_terms.reserve(models.size());
  for (const SiteVars& v : f.vars) demand_terms.push_back({v.lambda, 1.0});
  f.problem.add_constraint("demand", std::move(demand_terms),
                           lp::Relation::kEqual, lambda_total / kLambdaScale);

  const lp::Solution solution = solver.solve(f.problem, options.milp);
  return decode_solution(f, models, solution);
}

AllocationResult minimize_cost(
    const std::vector<datacenter::DataCenter>& sites,
    const std::vector<market::PricingPolicy>& policies,
    std::span<const double> other_demand_mw, double lambda_total,
    const OptimizerOptions& options) {
  if (sites.size() != policies.size() ||
      sites.size() != other_demand_mw.size())
    throw std::invalid_argument("minimize_cost: input size mismatch");
  std::vector<SiteModel> models;
  models.reserve(sites.size());
  for (std::size_t i = 0; i < sites.size(); ++i)
    models.push_back(make_site_model(sites[i], policies[i],
                                     other_demand_mw[i],
                                     options.model_cooling_network));
  return minimize_cost_over_models(models, lambda_total, options);
}

}  // namespace billcap::core
