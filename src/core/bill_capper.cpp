#include "core/bill_capper.hpp"

#include <algorithm>
#include <stdexcept>

namespace billcap::core {

const char* to_string(CappingOutcome::Mode mode) noexcept {
  switch (mode) {
    case CappingOutcome::Mode::kUncapped: return "uncapped";
    case CappingOutcome::Mode::kCapped: return "capped";
    case CappingOutcome::Mode::kPremiumOnly: return "premium_only";
  }
  return "unknown";
}

BillCapper::BillCapper(const std::vector<datacenter::DataCenter>& sites,
                       const std::vector<market::PricingPolicy>& policies,
                       OptimizerOptions options)
    : sites_(sites), policies_(policies), options_(options) {
  if (sites_.size() != policies_.size())
    throw std::invalid_argument("BillCapper: one policy per site required");
  if (sites_.empty())
    throw std::invalid_argument("BillCapper: need at least one site");
}

CappingOutcome BillCapper::decide(double lambda_premium,
                                  double lambda_ordinary,
                                  std::span<const double> other_demand_mw,
                                  double hourly_budget) const {
  if (lambda_premium < 0.0 || lambda_ordinary < 0.0)
    throw std::invalid_argument("BillCapper::decide: negative arrivals");
  if (other_demand_mw.size() != sites_.size())
    throw std::invalid_argument("BillCapper::decide: demand size mismatch");

  std::vector<SiteModel> models;
  models.reserve(sites_.size());
  for (std::size_t i = 0; i < sites_.size(); ++i)
    models.push_back(make_site_model(sites_[i], policies_[i],
                                     other_demand_mw[i],
                                     options_.model_cooling_network));

  CappingOutcome out;
  out.hourly_budget = hourly_budget;

  // The optimizer's affine power model under-counts the exact (integer
  // servers/switches) draw by a hair; solving against a slightly reduced
  // budget keeps the *billed* cost under the real budget instead of
  // grazing past it.
  const double solver_budget =
      std::max(0.0, hourly_budget - std::max(1.0, 0.002 * hourly_budget));

  // Physical admission: shed what no allocation could serve (ordinary
  // first, then premium — premium is sacrificed only to physics, never to
  // the budget).
  const double capacity = system_capacity(models);
  double premium = std::min(lambda_premium, capacity);
  double ordinary = std::min(lambda_ordinary, capacity - premium);
  out.dropped_capacity =
      (lambda_premium - premium) + (lambda_ordinary - ordinary);
  const double lambda_total = premium + ordinary;

  // Step 1: cost minimization for the full (admitted) workload.
  AllocationResult min_cost =
      minimize_cost_over_models(models, lambda_total, options_);
  if (!min_cost.ok())
    throw std::runtime_error("BillCapper: cost minimization failed: " +
                             std::string(lp::to_string(min_cost.status)));

  if (min_cost.predicted_cost <= solver_budget) {
    out.mode = CappingOutcome::Mode::kUncapped;
    out.allocation = std::move(min_cost);
    out.served_premium = premium;
    out.served_ordinary = ordinary;
    return out;
  }

  // Step 2: throughput maximization within the budget.
  AllocationResult capped = maximize_throughput_over_models(
      models, lambda_total, solver_budget, options_);
  if (capped.ok() && capped.total_lambda >= premium - 1e-6) {
    out.mode = CappingOutcome::Mode::kCapped;
    out.served_premium = premium;
    out.served_ordinary =
        std::min(ordinary, std::max(0.0, capped.total_lambda - premium));
    out.allocation = std::move(capped);
    return out;
  }

  // Budget cannot even cover premium: guarantee premium QoS at minimum
  // cost and accept the violation (Section V-B).
  AllocationResult premium_only =
      minimize_cost_over_models(models, premium, options_);
  if (!premium_only.ok())
    throw std::runtime_error(
        "BillCapper: premium-only cost minimization failed");
  out.mode = CappingOutcome::Mode::kPremiumOnly;
  out.served_premium = premium;
  out.served_ordinary = 0.0;
  out.allocation = std::move(premium_only);
  return out;
}

}  // namespace billcap::core
