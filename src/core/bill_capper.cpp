#include "core/bill_capper.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "core/fallback_allocator.hpp"

namespace billcap::core {

const char* to_string(CappingOutcome::Mode mode) noexcept {
  switch (mode) {
    case CappingOutcome::Mode::kUncapped: return "uncapped";
    case CappingOutcome::Mode::kCapped: return "capped";
    case CappingOutcome::Mode::kPremiumOnly: return "premium_only";
  }
  return "unknown";
}

const char* to_string(FailureReason reason) noexcept {
  switch (reason) {
    case FailureReason::kNone: return "none";
    case FailureReason::kNodeLimit: return "node_limit";
    case FailureReason::kIterationLimit: return "iteration_limit";
    case FailureReason::kTimeLimit: return "time_limit";
    case FailureReason::kInfeasible: return "infeasible";
    case FailureReason::kUnbounded: return "unbounded";
    case FailureReason::kArenaExhausted: return "arena_exhausted";
    case FailureReason::kThrown: return "thrown";
    case FailureReason::kPriceOscillation: return "price_oscillation";
    case FailureReason::kCouplerDiverged: return "coupler_diverged";
  }
  return "unknown";
}

FailureReason failure_reason_from(lp::SolveStatus status) noexcept {
  switch (status) {
    case lp::SolveStatus::kOptimal: return FailureReason::kNone;
    case lp::SolveStatus::kNodeLimit: return FailureReason::kNodeLimit;
    case lp::SolveStatus::kIterationLimit:
      return FailureReason::kIterationLimit;
    case lp::SolveStatus::kTimeLimit: return FailureReason::kTimeLimit;
    case lp::SolveStatus::kInfeasible: return FailureReason::kInfeasible;
    case lp::SolveStatus::kUnbounded: return FailureReason::kUnbounded;
    case lp::SolveStatus::kArenaExhausted:
      return FailureReason::kArenaExhausted;
  }
  return FailureReason::kInfeasible;
}

namespace {

/// A believed model for a site that is down this hour: zero capacity, zero
/// draw, a trivial cost curve. The MILP keeps the site's variables but they
/// are pinned to zero; the greedy fallback skips it outright.
SiteModel down_site_model() {
  SiteModel model;
  model.lambda_max = 0.0;
  model.power_slope = 0.0;
  model.power_intercept_mw = 0.0;
  model.power_cap_mw = 0.0;
  model.cost_curve.breaks = {0.0, 1e-6};
  model.cost_curve.slopes = {0.0};
  model.cost_curve.intercepts = {0.0};
  return model;
}

}  // namespace

BillCapper::BillCapper(const std::vector<datacenter::DataCenter>& sites,
                       const std::vector<market::PricingPolicy>& policies,
                       OptimizerOptions options)
    : sites_(sites), policies_(policies), options_(options),
      min_cost_solver_(
          lp::ArenaConfig{.warm_across_solves = options.warm_hourly_solver}),
      throughput_solver_(
          lp::ArenaConfig{.warm_across_solves = options.warm_hourly_solver}),
      premium_solver_(
          lp::ArenaConfig{.warm_across_solves = options.warm_hourly_solver}) {
  if (sites_.size() != policies_.size())
    throw std::invalid_argument("BillCapper: one policy per site required");
  if (sites_.empty())
    throw std::invalid_argument("BillCapper: need at least one site");
}

CappingOutcome BillCapper::decide(double lambda_premium,
                                  double lambda_ordinary,
                                  std::span<const double> other_demand_mw,
                                  double hourly_budget) const {
  return decide(lambda_premium, lambda_ordinary, other_demand_mw,
                hourly_budget, DecideOptions{});
}

CappingOutcome BillCapper::decide(double lambda_premium,
                                  double lambda_ordinary,
                                  std::span<const double> other_demand_mw,
                                  double hourly_budget,
                                  const DecideOptions& overrides) const {
  if (lambda_premium < 0.0 || lambda_ordinary < 0.0)
    throw std::invalid_argument("BillCapper::decide: negative arrivals");
  if (other_demand_mw.size() != sites_.size())
    throw std::invalid_argument("BillCapper::decide: demand size mismatch");
  if (!overrides.site_available.empty() &&
      overrides.site_available.size() != sites_.size())
    throw std::invalid_argument(
        "BillCapper::decide: availability size mismatch");
  if (!overrides.believed_demand_mw.empty() &&
      overrides.believed_demand_mw.size() != sites_.size())
    throw std::invalid_argument(
        "BillCapper::decide: believed demand size mismatch");

  OptimizerOptions opts = options_;
  if (overrides.time_limit_ms >= 0.0)
    opts.milp.time_limit_ms = overrides.time_limit_ms;
  if (overrides.max_nodes >= 0) opts.milp.max_nodes = overrides.max_nodes;
  if (overrides.max_arena_bytes != 0)
    opts.milp.max_arena_bytes = overrides.max_arena_bytes;

  std::vector<SiteModel> models;
  models.reserve(sites_.size());
  for (std::size_t i = 0; i < sites_.size(); ++i) {
    const bool up = overrides.site_available.empty() ||
                    overrides.site_available[i] != 0;
    if (!up) {
      models.push_back(down_site_model());
      continue;
    }
    const double believed = overrides.believed_demand_mw.empty()
                                ? other_demand_mw[i]
                                : overrides.believed_demand_mw[i];
    models.push_back(make_site_model(sites_[i], policies_[i], believed,
                                     opts.model_cooling_network));
  }

  CappingOutcome out;
  out.hourly_budget = hourly_budget;

  // Records a degradation; the first failure reason sticks (later steps may
  // degrade too, but the hour's root cause is what broke first).
  const auto mark_degraded = [&out](lp::SolveStatus status) {
    out.degraded = true;
    if (out.failure == FailureReason::kNone)
      out.failure = failure_reason_from(status);
  };

  // The optimizer's affine power model under-counts the exact (integer
  // servers/switches) draw by a hair; solving against a slightly reduced
  // budget keeps the *billed* cost under the real budget instead of
  // grazing past it.
  const double solver_budget =
      std::max(0.0, hourly_budget - std::max(1.0, 0.002 * hourly_budget));

  // Physical admission: shed what no allocation could serve (ordinary
  // first, then premium — premium is sacrificed only to physics, never to
  // the budget).
  const double capacity = system_capacity(models);
  double premium = std::min(lambda_premium, capacity);
  double ordinary = std::min(lambda_ordinary, capacity - premium);
  out.dropped_capacity =
      (lambda_premium - premium) + (lambda_ordinary - ordinary);
  const double lambda_total = premium + ordinary;

  // Serves everything the allocation actually placed, premium first. Keeps
  // the outcome consistent when a heuristic placed marginally less than
  // asked.
  const auto serve_from = [&](const AllocationResult& allocation) {
    out.served_premium = std::min(premium, allocation.total_lambda);
    out.served_ordinary = std::min(
        ordinary, std::max(0.0, allocation.total_lambda - out.served_premium));
  };

  // Degraded standby: when the primary controller keeps dying, the
  // supervisor runs this path instead — no MILP at all (the defect may
  // live anywhere in the solve path), premium only, greedy placement.
  // The QoS guarantee survives; ordinary revenue is the price of uptime.
  if (overrides.standby) {
    out.degraded = true;
    out.used_heuristic = true;
    out.mode = CappingOutcome::Mode::kPremiumOnly;
    AllocationResult greedy = fallback_allocate(
        models, FallbackRequest{premium, 0.0, lp::kInfinity});
    out.served_premium = std::min(premium, greedy.total_lambda);
    out.served_ordinary = 0.0;
    out.allocation = std::move(greedy);
    return out;
  }

  // Step 1: cost minimization for the full (admitted) workload.
  // Degradation ladder: optimal -> limit-solve incumbent -> greedy.
  AllocationResult min_cost =
      minimize_cost_over_models(models, lambda_total, opts, min_cost_solver_);
  if (!min_cost.ok()) {
    mark_degraded(min_cost.status);
    if (min_cost.feasible) {
      out.used_incumbent = true;
    } else {
      min_cost = fallback_allocate(
          models, FallbackRequest{lambda_total, 0.0, lp::kInfinity});
      out.used_heuristic = true;
    }
  }

  if (min_cost.predicted_cost <= solver_budget) {
    out.mode = CappingOutcome::Mode::kUncapped;
    if (out.used_heuristic) {
      serve_from(min_cost);
    } else {
      out.served_premium = premium;
      out.served_ordinary = ordinary;
    }
    out.allocation = std::move(min_cost);
    return out;
  }

  // Step 2: throughput maximization within the budget. An incumbent is
  // acceptable if it still covers the premium guarantee.
  AllocationResult capped = maximize_throughput_over_models(
      models, lambda_total, solver_budget, opts, throughput_solver_);
  if (capped.usable() && capped.total_lambda >= premium - 1e-6) {
    if (!capped.ok()) {
      mark_degraded(capped.status);
      // The rung flags describe the allocation actually served; a step-1
      // fallback that was then discarded must not leave its flag behind
      // (the rungs are exclusive per hour).
      out.used_incumbent = true;
      out.used_heuristic = false;
    }
    out.mode = CappingOutcome::Mode::kCapped;
    out.served_premium = premium;
    out.served_ordinary =
        std::min(ordinary, std::max(0.0, capped.total_lambda - premium));
    out.allocation = std::move(capped);
    return out;
  }
  if (!capped.usable()) {
    // The solver died outright: greedy water-filling serves premium
    // unconditionally and ordinary only while the budget lasts.
    mark_degraded(capped.status);
    out.used_heuristic = true;
    out.used_incumbent = false;
    AllocationResult greedy = fallback_allocate(
        models, FallbackRequest{premium, ordinary, solver_budget});
    out.mode = greedy.total_lambda > premium + 1e-6
                   ? CappingOutcome::Mode::kCapped
                   : CappingOutcome::Mode::kPremiumOnly;
    serve_from(greedy);
    out.allocation = std::move(greedy);
    return out;
  }

  // Budget cannot even cover premium: guarantee premium QoS at minimum
  // cost and accept the violation (Section V-B).
  AllocationResult premium_only =
      minimize_cost_over_models(models, premium, opts, premium_solver_);
  if (!premium_only.ok()) {
    mark_degraded(premium_only.status);
    if (premium_only.feasible) {
      out.used_incumbent = true;
      out.used_heuristic = false;
    } else {
      premium_only = fallback_allocate(
          models, FallbackRequest{premium, 0.0, lp::kInfinity});
      out.used_heuristic = true;
      out.used_incumbent = false;
    }
  }
  out.mode = CappingOutcome::Mode::kPremiumOnly;
  out.served_premium =
      out.used_heuristic ? std::min(premium, premium_only.total_lambda)
                         : premium;
  out.served_ordinary = 0.0;
  out.allocation = std::move(premium_only);
  return out;
}

}  // namespace billcap::core
