#include "core/supervisor.hpp"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <stdexcept>
#include <thread>

#include "core/checkpoint.hpp"
#include "core/checkpoint_keys.hpp"
#include "util/journal.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>
#endif

namespace billcap::core {

const char* to_string(ChildExit exit) noexcept {
  switch (exit) {
    case ChildExit::kSuccess: return "success";
    case ChildExit::kStopped: return "stopped";
    case ChildExit::kUsage: return "usage-error";
    case ChildExit::kFailure: return "failure";
    case ChildExit::kSignalled: return "signalled";
  }
  return "unknown";
}

ChildExit classify_wait_status(int wait_status) noexcept {
#if defined(__unix__) || defined(__APPLE__)
  if (WIFSIGNALED(wait_status)) return ChildExit::kSignalled;
  const int code = WIFEXITED(wait_status) ? WEXITSTATUS(wait_status) : 1;
#else
  const int code = wait_status;
#endif
  switch (code) {
    case kExitSuccess: return ChildExit::kSuccess;
    case kExitStopped: return ChildExit::kStopped;
    case kExitUsage: return ChildExit::kUsage;
    default: return ChildExit::kFailure;
  }
}

// ---- policy ---------------------------------------------------------------

SupervisorPolicy::SupervisorPolicy(SupervisorOptions options)
    : options_(options), rng_(options.seed ^ 0x5375708856497350ULL) {
  if (options_.backoff_multiplier < 1.0)
    throw std::invalid_argument("SupervisorPolicy: backoff_multiplier >= 1");
  if (options_.backoff_jitter_frac < 0.0 || options_.backoff_jitter_frac > 1.0)
    throw std::invalid_argument("SupervisorPolicy: jitter_frac in [0,1]");
}

double SupervisorPolicy::next_backoff_ms() {
  // Exponent = failures since the last progress, so a recovering child
  // returns to the base delay immediately.
  const std::size_t exponent =
      consecutive_no_progress_ > 0 ? consecutive_no_progress_ - 1 : 0;
  double delay = options_.backoff_base_ms;
  for (std::size_t i = 0; i < exponent && delay < options_.backoff_max_ms; ++i)
    delay *= options_.backoff_multiplier;
  delay = std::min(delay, options_.backoff_max_ms);
  // Deterministic jitter in [1 - f, 1 + f): same seed, same schedule.
  const double jitter =
      1.0 + options_.backoff_jitter_frac * (2.0 * rng_.uniform() - 1.0);
  return delay * jitter;
}

SupervisorDecision SupervisorPolicy::on_child_exit(ChildExit exit,
                                                   bool was_standby,
                                                   std::size_t hours_advanced,
                                                   double now_s) {
  SupervisorDecision d;
  switch (exit) {
    case ChildExit::kSuccess:
      d.action = SupervisorDecision::Action::kStop;
      d.reason = "child completed the month";
      return d;
    case ChildExit::kUsage:
      d.action = SupervisorDecision::Action::kGiveUp;
      d.reason = "child rejected its configuration; a restart cannot help";
      return d;
    case ChildExit::kStopped:
      if (!was_standby) {
        d.action = SupervisorDecision::Action::kStop;
        d.reason = "child stopped gracefully (operator signal)";
        return d;
      }
      // A standby attempt committed its hour chunk; hand control back to
      // the primary for another try. Escalation state is untouched — only
      // primary progress clears it.
      d.action = SupervisorDecision::Action::kRestartPrimary;
      d.reason = "standby chunk committed (" +
                 std::to_string(hours_advanced) + "h); retrying primary";
      return d;
    case ChildExit::kFailure:
    case ChildExit::kSignalled:
      break;
  }

  // A failure-triggered restart. Sliding-window budget first.
  restart_times_s_.push_back(now_s);
  const double horizon = now_s - options_.restart_window_s;
  restart_times_s_.erase(
      std::remove_if(restart_times_s_.begin(), restart_times_s_.end(),
                     [horizon](double t) { return t < horizon; }),
      restart_times_s_.end());
  if (restart_times_s_.size() > options_.restart_budget) {
    d.action = SupervisorDecision::Action::kGiveUp;
    d.reason = "restart budget exhausted (" +
               std::to_string(restart_times_s_.size()) + " restarts in " +
               std::to_string(options_.restart_window_s) + "s window)";
    return d;
  }

  if (hours_advanced > 0) {
    consecutive_no_progress_ = 0;
    if (!was_standby) escalated_ = false;  // the primary is healthy again
  } else {
    ++consecutive_no_progress_;
  }

  if (!escalated_ && consecutive_no_progress_ >= options_.escalate_after) {
    escalated_ = true;
    d.reason = std::to_string(consecutive_no_progress_) +
               " consecutive restarts with zero checkpoint progress; "
               "escalating to degraded standby";
  }
  if (escalated_) {
    d.action = SupervisorDecision::Action::kRunStandby;
    d.delay_ms = next_backoff_ms();
    if (d.reason.empty())
      d.reason = "still escalated; running another standby chunk";
    return d;
  }

  d.action = SupervisorDecision::Action::kRestartPrimary;
  d.delay_ms = next_backoff_ms();
  d.reason = std::string("child ") + to_string(exit) + ", " +
             (hours_advanced > 0
                  ? "advanced " + std::to_string(hours_advanced) + "h"
                  : "no progress") +
             "; restarting";
  return d;
}

// ---- process plumbing -----------------------------------------------------

#if defined(__unix__) || defined(__APPLE__)
namespace {

/// The live child's pid, published for the forwarding signal handler.
volatile sig_atomic_t g_child_pid = 0;
/// Set by the handler when SIGTERM/SIGINT reached the supervisor.
volatile sig_atomic_t g_stop_signal = 0;

void forward_signal(int signo) {
  g_stop_signal = signo;
  const sig_atomic_t pid = g_child_pid;
  // The child honours SIGTERM as "finish the hour, checkpoint, exit 4";
  // forward even a SIGINT as SIGTERM so ^C gives the same clean shutdown.
  if (pid > 0) kill(static_cast<pid_t>(pid), SIGTERM);
}

/// Installs the forwarding handler for the supervisor's lifetime and
/// restores the previous disposition on destruction.
class SignalForwarding {
 public:
  SignalForwarding() {
    struct sigaction sa = {};
    sa.sa_handler = forward_signal;
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = SA_RESTART;
    sigaction(SIGTERM, &sa, &old_term_);
    sigaction(SIGINT, &sa, &old_int_);
  }
  ~SignalForwarding() {
    sigaction(SIGTERM, &old_term_, nullptr);
    sigaction(SIGINT, &old_int_, nullptr);
  }
  SignalForwarding(const SignalForwarding&) = delete;
  SignalForwarding& operator=(const SignalForwarding&) = delete;

 private:
  struct sigaction old_term_ = {};
  struct sigaction old_int_ = {};
};

}  // namespace

int run_child(const ChildSpec& spec) {
  std::vector<std::string> argv_storage;
  argv_storage.reserve(spec.args.size() + 1);
  argv_storage.push_back(spec.program);
  for (const std::string& a : spec.args) argv_storage.push_back(a);
  std::vector<char*> argv;
  argv.reserve(argv_storage.size() + 1);
  for (std::string& a : argv_storage) argv.push_back(a.data());
  argv.push_back(nullptr);

  const pid_t pid = ::fork();
  if (pid < 0) throw std::runtime_error("run_child: fork failed");
  if (pid == 0) {
    ::execv(spec.program.c_str(), argv.data());
    // Exec failed: report as a plain failure exit, not a crash.
    std::fprintf(stderr, "run_child: exec %s failed\n", spec.program.c_str());
    ::_exit(kExitExecFailed);
  }

  g_child_pid = pid;
  int status = 0;
  for (;;) {
    const pid_t r = ::waitpid(pid, &status, 0);
    if (r == pid) break;
    if (r < 0 && errno == EINTR) continue;  // a forwarded signal landed
    g_child_pid = 0;
    throw std::runtime_error("run_child: waitpid failed");
  }
  g_child_pid = 0;
  return status;
}

#else

int run_child(const ChildSpec&) {
  throw std::runtime_error("run_child: process supervision requires POSIX");
}

#endif

std::size_t probe_checkpoint_hour(const std::string& checkpoint_path,
                                  std::size_t keep_generations) noexcept {
  const std::size_t gens = keep_generations == 0 ? 1 : keep_generations;
  for (std::size_t g = 0; g < gens; ++g) {
    const std::string path =
        util::Journal::generation_path(checkpoint_path, g);
    try {
      return load_checkpoint(path).next_hour;
      // A noexcept probe by contract: the child that wrote a bad file
      // already tagged its own FailureReason, so swallowing here is safe.
      // billcap-lint: allow(catch-all): fall back to the serve probe
    } catch (...) {
      // Not a batch checkpoint — it may be a serve-daemon one.
    }
    try {
      // The serving daemon checkpoints per tick under its own magic. The
      // restart policy only compares probe deltas, so tick progress is as
      // good a monotone counter as hour progress.
      const util::Journal j = util::Journal::load(
          path, keys::kServeCheckpointMagic, keys::kServeCheckpointVersion);
      return j.get_size(keys::kServeNextTick);
      // billcap-lint: allow(catch-all): fall back to the older generation
    } catch (...) {
      // Missing or corrupted generation: fall back to the next one.
    }
  }
  return 0;
}

// ---- supervisor -----------------------------------------------------------

Supervisor::Supervisor(SupervisorOptions options, ChildSpec primary,
                       ChildSpec standby, std::string checkpoint_path,
                       std::size_t keep_generations, SuperviseHooks hooks)
    : policy_(options),
      primary_(std::move(primary)),
      standby_(std::move(standby)),
      checkpoint_path_(std::move(checkpoint_path)),
      keep_generations_(keep_generations == 0 ? 1 : keep_generations),
      hooks_(std::move(hooks)) {
  if (!hooks_.run)
    hooks_.run = [](const ChildSpec& spec, bool) { return run_child(spec); };
  if (!hooks_.now_s)
    hooks_.now_s = [] {
      // Real-time-only supervision input: now_s feeds the restart window
      // and backoff pacing, never the child's checkpointed state;
      // supervisor_test pins that checkpointed output is byte-identical
      // under different now_s schedules.
      return std::chrono::duration<double>(
                 // billcap-lint: allow(wall-clock): real-time-only input
                 std::chrono::steady_clock::now().time_since_epoch())
          .count();
    };
  if (!hooks_.sleep_ms)
    hooks_.sleep_ms = [](double ms) {
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(ms));
    };
  if (!hooks_.checkpoint_hour)
    hooks_.checkpoint_hour = [this] {
      return probe_checkpoint_hour(checkpoint_path_, keep_generations_);
    };
  if (!hooks_.log)
    hooks_.log = [](const std::string& line) {
      std::fprintf(stderr, "[supervise] %s\n", line.c_str());
    };
}

SuperviseReport Supervisor::run() {
  SuperviseReport report;
  const auto note = [&](std::string line) {
    hooks_.log(line);
    report.events.push_back(std::move(line));
  };

#if defined(__unix__) || defined(__APPLE__)
  SignalForwarding forwarding;
  g_stop_signal = 0;
#endif

  bool run_standby = false;
  for (;;) {
    const std::size_t before = hooks_.checkpoint_hour();
    if (run_standby)
      ++report.standby_runs;
    else
      ++report.primary_runs;
    const int status = hooks_.run(run_standby ? standby_ : primary_,
                                  run_standby);
    const std::size_t after = hooks_.checkpoint_hour();
    const std::size_t advanced = after > before ? after - before : 0;
    const ChildExit exit = classify_wait_status(status);

#if defined(__unix__) || defined(__APPLE__)
    if (g_stop_signal != 0) {
      // The operator asked the *supervisor* to stop; the forwarded SIGTERM
      // let the child finish its hour and checkpoint. Do not restart,
      // whatever the policy would say.
      note("stop signal received; child exited " +
           std::string(to_string(exit)) + " at hour " + std::to_string(after));
      report.exit_code = kExitStopped;
      return report;
    }
#endif

    const SupervisorDecision decision =
        policy_.on_child_exit(exit, run_standby, advanced, hooks_.now_s());
    note((run_standby ? "standby" : "primary") + std::string(" exited ") +
         to_string(exit) + " at hour " + std::to_string(after) + ": " +
         decision.reason);

    switch (decision.action) {
      case SupervisorDecision::Action::kStop:
        report.exit_code =
            exit == ChildExit::kSuccess ? kExitSuccess : kExitStopped;
        return report;
      case SupervisorDecision::Action::kGiveUp:
        report.gave_up = true;
        report.exit_code = kExitGaveUp;
        return report;
      case SupervisorDecision::Action::kRunStandby:
        report.escalated = true;
        ++report.restarts;
        run_standby = true;
        break;
      case SupervisorDecision::Action::kRestartPrimary:
        if (exit != ChildExit::kStopped) ++report.restarts;
        run_standby = false;
        break;
    }
    if (decision.delay_ms > 0.0) hooks_.sleep_ms(decision.delay_ms);
  }
}

}  // namespace billcap::core
