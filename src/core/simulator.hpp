#pragma once

#include <array>
#include <csignal>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/baselines.hpp"
#include "core/bill_capper.hpp"
#include "core/budgeter.hpp"
#include "core/cost_model.hpp"
#include "core/fault_injector.hpp"
#include "core/market_coupler.hpp"
#include "core/market_feed.hpp"
#include "datacenter/datacenter.hpp"
#include "market/pricing_policy.hpp"
#include "workload/trace.hpp"
#include "workload/wiki_synth.hpp"

namespace billcap::core {

/// Everything needed to reproduce one evaluation month (Section VI): the
/// three paper data centers, a pricing-policy level, a synthetic two-month
/// Wikipedia-like trace (first month trains the budgeter), per-site
/// background demand, the premium/ordinary mix and the monthly budget.
/// How the budgeter derives its hour-of-week weights.
enum class BudgetWeighting {
  kHistory,  ///< trailing-weeks average of the history month (the paper)
  kUniform,  ///< flat 1/168 — the naive strawman
  kOracle,   ///< weights from the *evaluation* month itself (perfect
             ///< prediction upper bound)
};
const char* to_string(BudgetWeighting weighting) noexcept;

struct SimulationConfig {
  std::uint64_t seed = 2012;           ///< master seed (trace + demand)
  double monthly_budget = 2.5e6;       ///< $ per budgeting period
  double premium_share = 0.8;          ///< Section VII-C: 80 % premium
  int policy_level = 1;                ///< paper_policies level 0..3
  bool enforce_budget = true;          ///< false = step 1 only (Fig. 3/4)
  std::size_t history_weeks = 2;       ///< budgeter lookback
  BudgetWeighting budget_weighting = BudgetWeighting::kHistory;
  /// Seed offset for the budgeter's history trace: nonzero simulates a
  /// *mispredicted* workload (the history month belongs to a different
  /// random world than the month actually simulated) — the robustness
  /// concern of Section IX.
  std::uint64_t history_seed_offset = 0;
  workload::WikiSynthParams workload;  ///< trace shape
  OptimizerOptions optimizer;          ///< MILP knobs / power-model ablation

  /// Operational hazards injected into the evaluation month. An explicit
  /// plan wins; otherwise nonzero `fault_rates` draw a plan from the
  /// simulation seed (deterministically). Both empty = fault-free run,
  /// bit-identical to the pre-fault-framework behaviour.
  FaultPlan fault_plan;
  FaultRates fault_rates;

  /// Retry policy of the market-data client: with a nonzero
  /// retry_success_prob a stale feed is re-polled with exponential backoff
  /// each hour and can recover mid-interval. Default = frozen feed.
  MarketFeedOptions market_feed;

  /// Closed-loop market coupling (Cost Capping only): the hour's allocation
  /// feeds back into the DC-OPF as nodal demand and the curves re-derive
  /// inside a bounded fixed point, with oscillation detection, a damping
  /// ladder and a divergence breaker. Disabled = the legacy static-curve
  /// world, byte-for-byte.
  MarketCouplerOptions market_coupler;

  /// Degraded standby mode (the supervisor's escalation target): every
  /// hour is decided by the greedy premium-only fallback instead of the
  /// MILP, and injected controller crashes / exit storms do not fire (they
  /// model defects in the primary decide path this mode bypasses).
  /// Deliberately EXCLUDED from the checkpoint digest so a standby attempt
  /// can pick up the primary's checkpoint and vice versa.
  bool standby = false;
};

/// The strategies compared in the evaluation.
enum class Strategy {
  kCostCapping,  ///< this paper's two-step algorithm
  kMinOnlyAvg,   ///< Min-Only with the average-price belief
  kMinOnlyLow,   ///< Min-Only with the lowest-price belief
};
const char* to_string(Strategy strategy) noexcept;

/// Everything recorded about one invocation period.
struct HourRecord {
  std::size_t hour = 0;
  double arrivals = 0.0;
  double premium_arrivals = 0.0;
  double ordinary_arrivals = 0.0;
  double served_premium = 0.0;
  double served_ordinary = 0.0;
  double hourly_budget = 0.0;   ///< 0 for the budget-less baselines
  double cost = 0.0;            ///< ground-truth $ billed this hour
  double predicted_cost = 0.0;  ///< the optimizer's own belief
  CappingOutcome::Mode mode = CappingOutcome::Mode::kUncapped;
  std::vector<double> site_lambda;    ///< requests/hour per site
  std::vector<double> site_power_mw;  ///< ground-truth draw per site
  double solve_ms = 0.0;              ///< optimizer wall time
  long nodes = 0;                     ///< branch-and-bound nodes

  /// Degraded-mode bookkeeping: true when a fallback (incumbent reuse or
  /// greedy heuristic) produced the hour, with the root-cause reason.
  bool degraded = false;
  FailureReason failure = FailureReason::kNone;
  bool used_incumbent = false;
  bool used_heuristic = false;
  std::size_t sites_down = 0;   ///< injected outages active this hour
  bool stale_prices = false;    ///< optimizer planned on a stale feed

  /// Market-feed client bookkeeping: re-polls issued this hour and whether
  /// one of them landed (fresh data recovered mid-interval).
  int feed_attempts = 0;
  bool feed_recovered = false;

  /// Closed-loop coupler bookkeeping (all zero when the coupler is off).
  std::size_t coupler_iterations = 0;  ///< fixed-point iterations spent
  bool coupler_converged = false;  ///< a converged coupled plan ran the hour
  bool coupler_fallback = false;   ///< planned open-loop (breaker / trouble)
  std::size_t coupler_rung = 0;    ///< damping rung in force
};

/// A full month of records plus the aggregates the figures report.
struct MonthlyResult {
  Strategy strategy = Strategy::kCostCapping;
  double monthly_budget = 0.0;
  std::vector<HourRecord> hours;

  double total_cost = 0.0;
  double total_premium_arrivals = 0.0;
  double total_ordinary_arrivals = 0.0;
  double total_served_premium = 0.0;
  double total_served_ordinary = 0.0;
  double max_solve_ms = 0.0;

  /// Aggregate degradation counters (graceful-degradation observability).
  std::size_t degraded_hours = 0;   ///< hours produced by any fallback
  std::size_t incumbent_hours = 0;  ///< hours reusing a limit-solve's best
  std::size_t heuristic_hours = 0;  ///< hours from greedy water-filling
  std::size_t outage_hours = 0;     ///< hours with >= 1 injected site down
  std::size_t stale_hours = 0;      ///< hours planned on a stale feed

  /// Root-cause tally of degraded hours, indexed by FailureReason.
  std::array<std::size_t, kFailureReasonCount> failure_tally{};

  /// Fleet-mode chunk counters (FleetController months; zero for the
  /// classic single-capper loop). A "chunk" is one region-hour solve.
  std::size_t degraded_chunks = 0;     ///< chunk solves that fell off optimal
  std::size_t quarantined_chunks = 0;  ///< chunk-hours pinned to standby
  std::size_t region_down_chunks = 0;  ///< chunk-hours lost to RegionOutage
  /// Root-cause tally of degraded chunk solves, indexed by FailureReason.
  std::array<std::size_t, kFailureReasonCount> chunk_failure_tally{};

  /// Market-feed client counters: total re-polls issued and hours where a
  /// retry landed mid-interval (fresh data instead of a frozen feed).
  std::size_t feed_retry_attempts = 0;
  std::size_t feed_recovered_hours = 0;

  /// Closed-loop coupler counters (zero for open-loop months). Oscillation
  /// and divergence hour counts live in failure_tally under
  /// kPriceOscillation / kCouplerDiverged.
  std::size_t closed_loop_hours = 0;      ///< hours run on a converged plan
  std::size_t coupler_fallback_hours = 0; ///< hours planned open-loop
  std::size_t coupler_iterations = 0;     ///< total fixed-point iterations

  /// Controller crashes survived via checkpoint/resume (run_resumable).
  std::size_t crash_recoveries = 0;

  /// Served premium / arriving premium (1.0 = full QoS coverage).
  double premium_throughput_ratio() const noexcept;
  /// Served ordinary / arriving ordinary.
  double ordinary_throughput_ratio() const noexcept;
  /// Total cost / monthly budget (> 1 means the cap was violated).
  double budget_utilization() const noexcept;
};

/// Hour-by-hour closed-loop simulation of the evaluation month: each hour
/// the strategy allocates the arriving workload, the allocation is billed
/// at ground truth (integer servers/switches, real step prices), the spend
/// feeds back into the budgeter, and the records accumulate. Deterministic
/// in the config seed.
class Simulator {
 public:
  explicit Simulator(SimulationConfig config);

  const SimulationConfig& config() const noexcept { return config_; }
  const std::vector<datacenter::DataCenter>& sites() const noexcept {
    return sites_;
  }
  const std::vector<market::PricingPolicy>& policies() const noexcept {
    return policies_;
  }
  const workload::Trace& history_trace() const noexcept { return history_; }
  const workload::Trace& evaluation_trace() const noexcept {
    return evaluation_;
  }
  /// Background demand [site][hour] for the evaluation month.
  const std::vector<std::vector<double>>& background_demand() const noexcept {
    return demand_;
  }
  const Budgeter& budgeter() const noexcept { return budgeter_; }
  const FaultInjector& fault_injector() const noexcept { return injector_; }
  /// The effective fault schedule: the explicit plan, or the plan drawn
  /// from `fault_rates` (controller crashes live here too).
  const FaultPlan& fault_plan() const noexcept { return plan_; }
  /// The hour's grid-side hazards (line outages, demand shocks, congestion
  /// derates), resolved from the fault injector. Nominal when no grid
  /// fault covers the hour. Public so the serving daemon can derive the
  /// same coupled curves the batch loop plans against.
  market::CoupledHourFaults grid_faults_at(std::size_t fault_hour) const;

  /// Runs the whole month under one strategy.
  MonthlyResult run(Strategy strategy) const;

  /// One attempt at a crash-tolerant month. The state needed to continue
  /// mid-month (budget ledger, aggregates, per-hour records, the market
  /// feed's RNG stream, the crash cursor) is persisted to `checkpoint_path`
  /// after every simulated hour via an atomic write-temp-then-rename, so a
  /// kill at any instant leaves a consistent checkpoint. With `resume`
  /// true an existing checkpoint is loaded (it must match this config and
  /// strategy — a digest guards against resuming someone else's month) and
  /// the month continues from its next hour; a missing file starts fresh.
  struct ResumableOutcome {
    MonthlyResult result;           ///< partial when crashed, else complete
    bool crashed = false;           ///< a crash or exit-storm death fired
    std::size_t crash_hour = 0;     ///< the hour the crash struck
    std::size_t resumed_from = 0;   ///< first hour computed this attempt
    std::size_t recoveries = 0;     ///< crash entries survived so far
    /// Graceful stop: a stop flag / max_hours limit ended the attempt with
    /// the month unfinished but the checkpoint consistent. Never combined
    /// with `crashed`.
    bool stopped = false;
    /// Which checkpoint generation the resume actually loaded (0 = the
    /// newest), and one line per newer generation it had to skip
    /// (corrupted / missing / digest mismatch). Empty skip list and
    /// generation 0 for a clean resume or a fresh start.
    std::size_t resumed_generation = 0;
    std::vector<std::string> resume_skipped;
  };

  /// Knobs for one resumable attempt (all defaults preserve the previous
  /// single-generation, run-to-completion behaviour).
  struct ResumeControls {
    /// Checkpoint generations kept on disk (>= 1). With K > 1 every
    /// per-hour save rotates the chain and a resume falls back
    /// generation-by-generation past corrupted or mismatched files.
    std::size_t keep_generations = 1;
    /// Stop gracefully after committing this many hours this attempt
    /// (0 = no limit). The supervisor uses this to bound standby attempts.
    std::size_t max_hours = 0;
    /// Checked between hours: when it goes true the attempt finishes the
    /// in-flight hour, commits its checkpoint and returns stopped=true.
    /// The CLI points this at its SIGTERM/SIGINT flag.
    const volatile std::sig_atomic_t* stop_flag = nullptr;
  };

  /// `on_hour` (optional) fires after each hour's checkpoint commits —
  /// the hook for streaming per-hour CSV output that stays hour-aligned
  /// with the checkpoint.
  ResumableOutcome run_resumable(
      Strategy strategy, const std::string& checkpoint_path, bool resume,
      const std::function<void(const HourRecord&)>& on_hour = {}) const;
  ResumableOutcome run_resumable(
      Strategy strategy, const std::string& checkpoint_path, bool resume,
      const std::function<void(const HourRecord&)>& on_hour,
      const ResumeControls& controls) const;

  /// Runs `months` consecutive budgeting periods (Section IX's "ongoing
  /// operation" view): every month receives a fresh monthly budget, and
  /// the budgeter's hour-of-week weights are re-learned from the months
  /// that actually happened before it (the configured history month first,
  /// then realized traffic). The synthetic series is extended seamlessly —
  /// month 0 equals run()'s month. Cost Capping only.
  std::vector<MonthlyResult> run_months(std::size_t months) const;

 private:
  HourRecord run_hour_cost_capping(const BillCapper& capper, MarketFeed& feed,
                                   MarketCoupler* coupler, std::size_t hour,
                                   double spent_so_far) const;
  /// Shared core of run()'s and run_months()'s cost-capping hour:
  /// `fault_hour` indexes the fault injector (month-scoped plans do not
  /// repeat in later months), `raw_demand` is the unshocked background
  /// demand for the hour. `coupler` may be null (static-curve world).
  HourRecord run_capping_hour(const BillCapper& capper, MarketFeed& feed,
                              MarketCoupler* coupler, std::size_t hour,
                              std::size_t fault_hour, double arrivals,
                              std::vector<double> raw_demand,
                              double budget) const;
  HourRecord run_hour_min_only(std::size_t hour,
                               MinOnlyPriceModel price_model) const;
  HourRecord run_one_hour(Strategy strategy, const BillCapper& capper,
                          MarketFeed& feed, MarketCoupler* coupler,
                          std::size_t hour, double spent_so_far) const;
  MarketFeed make_feed() const;
  /// A fresh per-run coupler, or null when coupling is off / the strategy
  /// is not Cost Capping (the baselines know no step curves to re-derive).
  std::unique_ptr<MarketCoupler> make_coupler(Strategy strategy) const;
  std::vector<double> demand_at(std::size_t hour) const;

  SimulationConfig config_;
  std::vector<datacenter::DataCenter> sites_;
  std::vector<market::PricingPolicy> policies_;
  workload::Trace history_;
  workload::Trace evaluation_;
  std::vector<std::vector<double>> demand_;  // [site][hour of eval month]
  Budgeter budgeter_;
  FaultPlan plan_;  ///< effective schedule (explicit or rate-drawn)
  FaultInjector injector_;
};

}  // namespace billcap::core
