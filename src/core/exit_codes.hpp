#pragma once

namespace billcap::core {

/// The one process exit-code table for the whole system: the CLI, the
/// supervised controller child and the watchdog all speak this protocol
/// (documented in README.md). billcap-lint rule BL010 (exit-code) rejects
/// raw integer literals at exit surfaces so the table cannot drift.
enum class ExitCode : int {
  kOk = 0,            ///< month completed / command succeeded
  kRuntimeError = 1,  ///< I/O failure, no viable checkpoint, internal error
  kUsage = 2,         ///< bad command or flag — a restart cannot help
  kQosBroken = 3,     ///< premium QoS guarantee broken (--min-premium)
  kStopped = 4,       ///< graceful stop (SIGTERM/SIGINT honoured, or a
                      ///< standby attempt that committed its hour chunk) —
                      ///< checkpoint consistent, do not treat as a failure
  kGaveUp = 5,        ///< the supervisor exhausted its restart budget
  kExecFailed = 127,  ///< fork succeeded but exec of the child binary failed
};

constexpr int to_int(ExitCode code) noexcept { return static_cast<int>(code); }

constexpr const char* to_string(ExitCode code) noexcept {
  switch (code) {
    case ExitCode::kOk: return "ok";
    case ExitCode::kRuntimeError: return "runtime-error";
    case ExitCode::kUsage: return "usage-error";
    case ExitCode::kQosBroken: return "qos-broken";
    case ExitCode::kStopped: return "stopped";
    case ExitCode::kGaveUp: return "gave-up";
    case ExitCode::kExecFailed: return "exec-failed";
  }
  return "unknown";
}

/// Integer spellings of the protocol, kept for call sites that hand the
/// value straight to wait-status plumbing or test assertions.
inline constexpr int kExitSuccess = to_int(ExitCode::kOk);
inline constexpr int kExitRuntimeError = to_int(ExitCode::kRuntimeError);
inline constexpr int kExitUsage = to_int(ExitCode::kUsage);
inline constexpr int kExitQosBroken = to_int(ExitCode::kQosBroken);
inline constexpr int kExitStopped = to_int(ExitCode::kStopped);
inline constexpr int kExitGaveUp = to_int(ExitCode::kGaveUp);
inline constexpr int kExitExecFailed = to_int(ExitCode::kExecFailed);

}  // namespace billcap::core
