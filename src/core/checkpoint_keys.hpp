#pragma once

#include <cstddef>
#include <string>

namespace billcap::core::keys {

/// The one registry of every key the checkpoint journal reads or writes.
/// save_checkpoint and load_checkpoint (and the generation-fallback scan
/// built on it) must both go through these constants so a typo cannot make
/// a field silently vanish on resume — billcap-lint rule BL011
/// (journal-key) rejects raw string keys at Journal call sites.

/// On-disk format identity of the checkpoint journal.
inline constexpr const char* kCheckpointMagic = "billcap-checkpoint";
inline constexpr int kCheckpointVersion = 1;

// ---- run identity and crash cursor ----------------------------------------
inline constexpr const char* kConfigDigest = "config_digest";
inline constexpr const char* kStrategy = "strategy";
inline constexpr const char* kNextHour = "next_hour";
inline constexpr const char* kSpent = "spent";
inline constexpr const char* kCrashesFired = "crashes_fired";
inline constexpr const char* kStormsFired = "storms_fired";
inline constexpr const char* kCorruptionsFired = "corruptions_fired";

// ---- market-feed retry state ----------------------------------------------
inline constexpr const char* kFeedRecoveredUntil = "feed_recovered_until";

// ---- closed-loop market coupler state -------------------------------------
// Written unconditionally (like the chunk counters); absent keys load as a
// fresh coupler, so pre-coupler checkpoints stay readable.
inline constexpr const char* kCouplerBreakerState = "coupler_breaker_state";
inline constexpr const char* kCouplerConsecTroubled =
    "coupler_consec_troubled";
inline constexpr const char* kCouplerCooldown = "coupler_cooldown";
inline constexpr const char* kCouplerCurrentCooldown =
    "coupler_current_cooldown";
inline constexpr const char* kCouplerTrips = "coupler_trips";
inline constexpr const char* kCouplerRung = "coupler_rung";
inline constexpr const char* kCouplerCleanStreak = "coupler_clean_streak";
inline constexpr const char* kCouplerLastValid = "coupler_last_valid";
inline constexpr const char* kCouplerLastActive = "coupler_last_active";
inline constexpr const char* kCouplerLastPower = "coupler_last_power";

// ---- partial MonthlyResult aggregates -------------------------------------
inline constexpr const char* kMonthlyBudget = "monthly_budget";
inline constexpr const char* kTotalCost = "total_cost";
inline constexpr const char* kTotalPremiumArrivals = "total_premium_arrivals";
inline constexpr const char* kTotalOrdinaryArrivals = "total_ordinary_arrivals";
inline constexpr const char* kTotalServedPremium = "total_served_premium";
inline constexpr const char* kTotalServedOrdinary = "total_served_ordinary";
inline constexpr const char* kMaxSolveMs = "max_solve_ms";
inline constexpr const char* kDegradedHours = "degraded_hours";
inline constexpr const char* kIncumbentHours = "incumbent_hours";
inline constexpr const char* kHeuristicHours = "heuristic_hours";
inline constexpr const char* kOutageHours = "outage_hours";
inline constexpr const char* kStaleHours = "stale_hours";
inline constexpr const char* kFeedRetryAttempts = "feed_retry_attempts";
inline constexpr const char* kFeedRecoveredHours = "feed_recovered_hours";
inline constexpr const char* kCrashRecoveries = "crash_recoveries";
// Closed-loop coupler aggregates (zero and absent-tolerant like the chunk
// counters below).
inline constexpr const char* kClosedLoopHours = "closed_loop_hours";
inline constexpr const char* kCouplerFallbackHours = "coupler_fallback_hours";
inline constexpr const char* kCouplerIterations = "coupler_iterations";
inline constexpr const char* kFailureTally = "failure_tally";
// Fleet-mode chunk counters (zero and harmless for classic months).
inline constexpr const char* kDegradedChunks = "degraded_chunks";
inline constexpr const char* kQuarantinedChunks = "quarantined_chunks";
inline constexpr const char* kRegionDownChunks = "region_down_chunks";
inline constexpr const char* kChunkFailureTally = "chunk_failure_tally";
inline constexpr const char* kHours = "hours";

// ---- serve-mode checkpoint -------------------------------------------------
// The serving daemon journals tick-granular state under its own magic so a
// batch checkpoint can never be mistaken for a serve checkpoint (or vice
// versa); key constants still live in this one registry so BL011 covers
// both writers. kConfigDigest, kSpent, the kTotal* aggregates and the
// feed_rng family are shared with the batch checkpoint above.
inline constexpr const char* kServeCheckpointMagic = "billcap-serve-checkpoint";
inline constexpr int kServeCheckpointVersion = 1;
inline constexpr const char* kServeNextTick = "next_tick";
inline constexpr const char* kServeHour = "serve_hour";
inline constexpr const char* kServeHourBudget = "serve_hour_budget";
inline constexpr const char* kServeHourStale = "serve_hour_stale";
inline constexpr const char* kServeObservedHour = "serve_observed_hour";
inline constexpr const char* kServePremiumDepth = "serve_premium_depth";
inline constexpr const char* kServeOrdinaryDepth = "serve_ordinary_depth";
inline constexpr const char* kServeDroppedPremium = "serve_dropped_premium";
inline constexpr const char* kServeDroppedOrdinary = "serve_dropped_ordinary";
inline constexpr const char* kServeFeedPending = "serve_feed_pending";
inline constexpr const char* kServeFeedSeen = "serve_feed_seen";
inline constexpr const char* kServeFeedDropped = "serve_feed_dropped";
inline constexpr const char* kServeBreakerState = "serve_breaker_state";
inline constexpr const char* kServeBreakerDegraded = "serve_breaker_degraded";
inline constexpr const char* kServeBreakerCooldown = "serve_breaker_cooldown";
inline constexpr const char* kServeBreakerWindow = "serve_breaker_window";
inline constexpr const char* kServeBreakerTrips = "serve_breaker_trips";
inline constexpr const char* kServeAdmissionLevel = "serve_admission_level";
inline constexpr const char* kServePlanValid = "serve_plan_valid";
inline constexpr const char* kServePlanDegraded = "serve_plan_degraded";
inline constexpr const char* kServePlanLambda = "serve_plan_lambda";
inline constexpr const char* kServePlanPremiumRate = "serve_plan_premium_rate";
inline constexpr const char* kServePlanOrdinaryRate =
    "serve_plan_ordinary_rate";
inline constexpr const char* kServePlanPredictedCost =
    "serve_plan_predicted_cost";
inline constexpr const char* kServePlanTick = "serve_plan_tick";
// Closed-loop coupling anchor (absent on pre-coupler serve checkpoints).
inline constexpr const char* kServeCoupledAnchorValid =
    "serve_coupled_anchor_valid";
inline constexpr const char* kServeCoupledAnchorLambda =
    "serve_coupled_anchor_lambda";
inline constexpr const char* kServeCoupledRefreshes =
    "serve_coupled_refreshes";
inline constexpr const char* kServeHealth = "serve_health";
inline constexpr const char* kServeHealthHistory = "serve_health_history";
inline constexpr const char* kServeHealthTransitions =
    "serve_health_transitions";
inline constexpr const char* kServeKillsFired = "serve_kills_fired";
inline constexpr const char* kServeMaxPremiumDepth = "serve_max_premium_depth";
inline constexpr const char* kServeMaxOrdinaryDepth =
    "serve_max_ordinary_depth";
inline constexpr const char* kServeReplans = "serve_replans";
inline constexpr const char* kServeDegradedReplans = "serve_degraded_replans";
inline constexpr const char* kServeShedTicks = "serve_shed_ticks";
inline constexpr const char* kServeStandbyTicks = "serve_standby_ticks";
inline constexpr const char* kServeDegradedTicks = "serve_degraded_ticks";

// ---- indexed key families --------------------------------------------------

/// Key of word `i` of the market-feed RNG state.
inline std::string feed_rng(std::size_t i) {
  return "feed_rng" + std::to_string(i);
}

/// Key of the encoded HourRecord for committed hour `i`.
inline std::string hour(std::size_t i) { return "h" + std::to_string(i); }

}  // namespace billcap::core::keys
