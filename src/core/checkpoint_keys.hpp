#pragma once

#include <cstddef>
#include <string>

namespace billcap::core::keys {

/// The one registry of every key the checkpoint journal reads or writes.
/// save_checkpoint and load_checkpoint (and the generation-fallback scan
/// built on it) must both go through these constants so a typo cannot make
/// a field silently vanish on resume — billcap-lint rule BL011
/// (journal-key) rejects raw string keys at Journal call sites.

/// On-disk format identity of the checkpoint journal.
inline constexpr const char* kCheckpointMagic = "billcap-checkpoint";
inline constexpr int kCheckpointVersion = 1;

// ---- run identity and crash cursor ----------------------------------------
inline constexpr const char* kConfigDigest = "config_digest";
inline constexpr const char* kStrategy = "strategy";
inline constexpr const char* kNextHour = "next_hour";
inline constexpr const char* kSpent = "spent";
inline constexpr const char* kCrashesFired = "crashes_fired";
inline constexpr const char* kStormsFired = "storms_fired";
inline constexpr const char* kCorruptionsFired = "corruptions_fired";

// ---- market-feed retry state ----------------------------------------------
inline constexpr const char* kFeedRecoveredUntil = "feed_recovered_until";

// ---- partial MonthlyResult aggregates -------------------------------------
inline constexpr const char* kMonthlyBudget = "monthly_budget";
inline constexpr const char* kTotalCost = "total_cost";
inline constexpr const char* kTotalPremiumArrivals = "total_premium_arrivals";
inline constexpr const char* kTotalOrdinaryArrivals = "total_ordinary_arrivals";
inline constexpr const char* kTotalServedPremium = "total_served_premium";
inline constexpr const char* kTotalServedOrdinary = "total_served_ordinary";
inline constexpr const char* kMaxSolveMs = "max_solve_ms";
inline constexpr const char* kDegradedHours = "degraded_hours";
inline constexpr const char* kIncumbentHours = "incumbent_hours";
inline constexpr const char* kHeuristicHours = "heuristic_hours";
inline constexpr const char* kOutageHours = "outage_hours";
inline constexpr const char* kStaleHours = "stale_hours";
inline constexpr const char* kFeedRetryAttempts = "feed_retry_attempts";
inline constexpr const char* kFeedRecoveredHours = "feed_recovered_hours";
inline constexpr const char* kCrashRecoveries = "crash_recoveries";
inline constexpr const char* kFailureTally = "failure_tally";
inline constexpr const char* kHours = "hours";

// ---- indexed key families --------------------------------------------------

/// Key of word `i` of the market-feed RNG state.
inline std::string feed_rng(std::size_t i) {
  return "feed_rng" + std::to_string(i);
}

/// Key of the encoded HourRecord for committed hour `i`.
inline std::string hour(std::size_t i) { return "h" + std::to_string(i); }

}  // namespace billcap::core::keys
