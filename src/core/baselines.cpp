#include "core/baselines.hpp"

#include <stdexcept>

#include "core/cost_minimizer.hpp"

namespace billcap::core {

std::vector<SiteModel> min_only_site_models(
    const std::vector<datacenter::DataCenter>& sites,
    const std::vector<market::PricingPolicy>& policies,
    MinOnlyPriceModel price_model) {
  if (sites.size() != policies.size())
    throw std::invalid_argument("min_only_site_models: size mismatch");
  std::vector<SiteModel> models;
  models.reserve(sites.size());
  for (std::size_t i = 0; i < sites.size(); ++i) {
    const double believed_price = price_model == MinOnlyPriceModel::kAverage
                                      ? policies[i].average_price()
                                      : policies[i].min_price();
    // Flat price => the background demand is irrelevant to the belief.
    SiteModel model = make_site_model(
        sites[i], market::PricingPolicy::flat(believed_price),
        /*other_demand_mw=*/0.0, /*model_cooling_network=*/false);
    // Per-site power capping is feedback-based (measured draw, Fan et al.
    // [12]) and is enforced by prior work too — only the *cost* model is
    // blind to cooling/networking. Respect the true cap, with the same
    // safety margin the capper uses.
    model.lambda_max = std::min(
        model.lambda_max, sites[i].max_requests_within_power_cap() * 0.999);
    models.push_back(std::move(model));
  }
  return models;
}

AllocationResult min_only_allocate(
    const std::vector<datacenter::DataCenter>& sites,
    const std::vector<market::PricingPolicy>& policies, double lambda_total,
    MinOnlyPriceModel price_model, const OptimizerOptions& options) {
  const std::vector<SiteModel> models =
      min_only_site_models(sites, policies, price_model);
  return minimize_cost_over_models(models, lambda_total, options);
}

}  // namespace billcap::core
