#include "core/checkpoint.hpp"

#include <bit>
#include <charconv>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "core/checkpoint_keys.hpp"
#include "util/journal.hpp"

namespace billcap::core {

namespace {

// ---- digest ---------------------------------------------------------------

struct Digest {
  std::uint64_t hash = 0xcbf29ce484222325ULL;

  void mix_u64(std::uint64_t value) noexcept {
    for (int i = 0; i < 8; ++i) {
      hash ^= (value >> (8 * i)) & 0xffu;
      hash *= 0x100000001b3ULL;
    }
  }
  void mix_size(std::size_t value) noexcept {
    mix_u64(static_cast<std::uint64_t>(value));
  }
  void mix_double(double value) noexcept {
    mix_u64(std::bit_cast<std::uint64_t>(value));
  }
  void mix_bool(bool value) noexcept { mix_u64(value ? 1 : 0); }
};

// ---- token stream for HourRecord ------------------------------------------

void put_u(std::ostringstream& os, std::uint64_t v) { os << v << ' '; }
void put_d(std::ostringstream& os, double v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(std::bit_cast<std::uint64_t>(v)));
  os << buf << ' ';
}

std::uint64_t take_u(std::istringstream& is) {
  std::uint64_t v = 0;
  if (!(is >> v)) throw std::runtime_error("checkpoint: truncated hour record");
  return v;
}
double take_d(std::istringstream& is) {
  std::string token;
  if (!(is >> token) || token.size() != 16)
    throw std::runtime_error("checkpoint: malformed hour record");
  std::uint64_t bits = 0;
  const auto res =
      std::from_chars(token.data(), token.data() + token.size(), bits, 16);
  if (res.ec != std::errc{} || res.ptr != token.data() + token.size())
    throw std::runtime_error("checkpoint: malformed hour record");
  return std::bit_cast<double>(bits);
}

std::string encode_hour(const HourRecord& rec) {
  std::ostringstream os;
  put_u(os, rec.hour);
  put_u(os, static_cast<std::uint64_t>(rec.mode));
  put_u(os, static_cast<std::uint64_t>(rec.failure));
  put_u(os, rec.degraded ? 1 : 0);
  put_u(os, rec.used_incumbent ? 1 : 0);
  put_u(os, rec.used_heuristic ? 1 : 0);
  put_u(os, rec.stale_prices ? 1 : 0);
  put_u(os, static_cast<std::uint64_t>(rec.feed_attempts));
  put_u(os, rec.feed_recovered ? 1 : 0);
  put_u(os, rec.sites_down);
  put_u(os, static_cast<std::uint64_t>(rec.nodes));
  put_d(os, rec.arrivals);
  put_d(os, rec.premium_arrivals);
  put_d(os, rec.ordinary_arrivals);
  put_d(os, rec.served_premium);
  put_d(os, rec.served_ordinary);
  put_d(os, rec.hourly_budget);
  put_d(os, rec.cost);
  put_d(os, rec.predicted_cost);
  put_d(os, rec.solve_ms);
  put_u(os, rec.site_lambda.size());
  for (double v : rec.site_lambda) put_d(os, v);
  put_u(os, rec.site_power_mw.size());
  for (double v : rec.site_power_mw) put_d(os, v);
  return os.str();
}

HourRecord decode_hour(const std::string& text) {
  std::istringstream is(text);
  HourRecord rec;
  rec.hour = static_cast<std::size_t>(take_u(is));
  rec.mode = static_cast<CappingOutcome::Mode>(take_u(is));
  rec.failure = static_cast<FailureReason>(take_u(is));
  rec.degraded = take_u(is) != 0;
  rec.used_incumbent = take_u(is) != 0;
  rec.used_heuristic = take_u(is) != 0;
  rec.stale_prices = take_u(is) != 0;
  rec.feed_attempts = static_cast<int>(take_u(is));
  rec.feed_recovered = take_u(is) != 0;
  rec.sites_down = static_cast<std::size_t>(take_u(is));
  rec.nodes = static_cast<long>(take_u(is));
  rec.arrivals = take_d(is);
  rec.premium_arrivals = take_d(is);
  rec.ordinary_arrivals = take_d(is);
  rec.served_premium = take_d(is);
  rec.served_ordinary = take_d(is);
  rec.hourly_budget = take_d(is);
  rec.cost = take_d(is);
  rec.predicted_cost = take_d(is);
  rec.solve_ms = take_d(is);
  const std::size_t n_lambda = static_cast<std::size_t>(take_u(is));
  rec.site_lambda.reserve(n_lambda);
  for (std::size_t i = 0; i < n_lambda; ++i)
    rec.site_lambda.push_back(take_d(is));
  const std::size_t n_power = static_cast<std::size_t>(take_u(is));
  rec.site_power_mw.reserve(n_power);
  for (std::size_t i = 0; i < n_power; ++i)
    rec.site_power_mw.push_back(take_d(is));
  return rec;
}

}  // namespace

std::uint64_t checkpoint_digest(const SimulationConfig& config,
                                Strategy strategy) {
  Digest d;
  d.mix_u64(static_cast<std::uint64_t>(strategy));
  d.mix_u64(config.seed);
  d.mix_double(config.monthly_budget);
  d.mix_double(config.premium_share);
  d.mix_u64(static_cast<std::uint64_t>(config.policy_level));
  d.mix_bool(config.enforce_budget);
  d.mix_size(config.history_weeks);
  d.mix_u64(static_cast<std::uint64_t>(config.budget_weighting));
  d.mix_u64(config.history_seed_offset);

  d.mix_double(config.workload.mean_rate);
  d.mix_double(config.workload.diurnal_amplitude);
  d.mix_double(config.workload.weekend_drop);
  d.mix_double(config.workload.noise_sigma);
  d.mix_double(config.workload.flash_crowd_per_hour);
  d.mix_double(config.workload.flash_crowd_magnitude);
  d.mix_double(config.workload.flash_crowd_decay);

  d.mix_bool(config.optimizer.model_cooling_network);
  d.mix_bool(config.optimizer.warm_hourly_solver);
  d.mix_u64(static_cast<std::uint64_t>(config.optimizer.milp.max_nodes));
  d.mix_double(config.optimizer.milp.integrality_tol);
  d.mix_double(config.optimizer.milp.relative_gap);
  d.mix_double(config.optimizer.milp.absolute_gap);
  d.mix_double(config.optimizer.milp.time_limit_ms);

  const FaultPlan& plan = config.fault_plan;
  d.mix_size(plan.outages.size());
  for (const auto& o : plan.outages) {
    d.mix_size(o.site);
    d.mix_size(o.start_hour);
    d.mix_size(o.duration_hours);
  }
  d.mix_size(plan.stale_intervals.size());
  for (const auto& s : plan.stale_intervals) {
    d.mix_size(s.start_hour);
    d.mix_size(s.duration_hours);
  }
  d.mix_size(plan.demand_shocks.size());
  for (const auto& s : plan.demand_shocks) {
    d.mix_size(s.site);
    d.mix_size(s.start_hour);
    d.mix_size(s.duration_hours);
    d.mix_double(s.multiplier);
  }
  d.mix_size(plan.deadline_squeezes.size());
  for (const auto& s : plan.deadline_squeezes) {
    d.mix_size(s.start_hour);
    d.mix_size(s.duration_hours);
    d.mix_double(s.time_limit_ms);
  }
  d.mix_size(plan.crashes.size());
  for (const auto& c : plan.crashes) {
    d.mix_size(c.hour);
    d.mix_bool(c.before_checkpoint);
  }
  d.mix_size(plan.exit_storms.size());
  for (const auto& s : plan.exit_storms) {
    d.mix_size(s.hour);
    d.mix_size(s.count);
  }
  d.mix_size(plan.checkpoint_corruptions.size());
  for (const auto& c : plan.checkpoint_corruptions) d.mix_size(c.hour);
  d.mix_size(plan.flash_crowds.size());
  for (const auto& f : plan.flash_crowds) {
    d.mix_size(f.start_hour);
    d.mix_size(f.duration_hours);
    d.mix_double(f.multiplier);
  }
  d.mix_size(plan.feed_bursts.size());
  for (const auto& b : plan.feed_bursts) {
    d.mix_size(b.start_hour);
    d.mix_size(b.duration_hours);
    d.mix_size(b.updates_per_tick);
  }

  d.mix_double(config.fault_rates.outage_rate);
  d.mix_size(config.fault_rates.outage_mean_hours);
  d.mix_double(config.fault_rates.stale_rate);
  d.mix_size(config.fault_rates.stale_mean_hours);
  d.mix_double(config.fault_rates.shock_rate);
  d.mix_size(config.fault_rates.shock_mean_hours);
  d.mix_double(config.fault_rates.shock_multiplier);
  d.mix_double(config.fault_rates.squeeze_rate);
  d.mix_size(config.fault_rates.squeeze_mean_hours);
  d.mix_double(config.fault_rates.squeeze_ms);
  d.mix_double(config.fault_rates.crash_rate);

  d.mix_double(config.market_feed.retry_success_prob);
  d.mix_u64(static_cast<std::uint64_t>(config.market_feed.max_attempts_per_hour));
  d.mix_double(config.market_feed.base_backoff_ms);
  d.mix_double(config.market_feed.backoff_multiplier);
  d.mix_double(config.market_feed.max_backoff_ms);
  d.mix_double(config.market_feed.jitter_frac);

  return d.hash;
}

bool checkpoint_exists(const std::string& path) noexcept {
  const std::ifstream probe(path);
  return probe.good();
}

void save_checkpoint(const std::string& path, const CheckpointState& state) {
  util::Journal journal(keys::kCheckpointMagic, keys::kCheckpointVersion);
  journal.set_u64(keys::kConfigDigest, state.config_digest);
  journal.set_u64(keys::kStrategy, static_cast<std::uint64_t>(state.strategy));
  journal.set_size(keys::kNextHour, state.next_hour);
  journal.set_double_bits(keys::kSpent, state.spent);
  journal.set_size(keys::kCrashesFired, state.crashes_fired);
  journal.set_size(keys::kStormsFired, state.storms_fired);
  journal.set_size(keys::kCorruptionsFired, state.corruptions_fired);
  for (std::size_t i = 0; i < state.feed.rng.size(); ++i)
    journal.set_u64(keys::feed_rng(i), state.feed.rng[i]);
  journal.set_size(keys::kFeedRecoveredUntil, state.feed.recovered_until);

  const MonthlyResult& r = state.partial;
  journal.set_double_bits(keys::kMonthlyBudget, r.monthly_budget);
  journal.set_double_bits(keys::kTotalCost, r.total_cost);
  journal.set_double_bits(keys::kTotalPremiumArrivals, r.total_premium_arrivals);
  journal.set_double_bits(keys::kTotalOrdinaryArrivals,
                          r.total_ordinary_arrivals);
  journal.set_double_bits(keys::kTotalServedPremium, r.total_served_premium);
  journal.set_double_bits(keys::kTotalServedOrdinary, r.total_served_ordinary);
  journal.set_double_bits(keys::kMaxSolveMs, r.max_solve_ms);
  journal.set_size(keys::kDegradedHours, r.degraded_hours);
  journal.set_size(keys::kIncumbentHours, r.incumbent_hours);
  journal.set_size(keys::kHeuristicHours, r.heuristic_hours);
  journal.set_size(keys::kOutageHours, r.outage_hours);
  journal.set_size(keys::kStaleHours, r.stale_hours);
  journal.set_size(keys::kFeedRetryAttempts, r.feed_retry_attempts);
  journal.set_size(keys::kFeedRecoveredHours, r.feed_recovered_hours);
  journal.set_size(keys::kCrashRecoveries, r.crash_recoveries);
  {
    std::ostringstream tally;
    for (std::size_t i = 0; i < r.failure_tally.size(); ++i) {
      if (i) tally << ' ';
      tally << r.failure_tally[i];
    }
    journal.set(keys::kFailureTally, tally.str());
  }
  journal.set_size(keys::kDegradedChunks, r.degraded_chunks);
  journal.set_size(keys::kQuarantinedChunks, r.quarantined_chunks);
  journal.set_size(keys::kRegionDownChunks, r.region_down_chunks);
  {
    std::ostringstream tally;
    for (std::size_t i = 0; i < r.chunk_failure_tally.size(); ++i) {
      if (i) tally << ' ';
      tally << r.chunk_failure_tally[i];
    }
    journal.set(keys::kChunkFailureTally, tally.str());
  }

  journal.set_size(keys::kHours, r.hours.size());
  for (std::size_t i = 0; i < r.hours.size(); ++i)
    journal.set(keys::hour(i), encode_hour(r.hours[i]));

  journal.save_atomic(path);
}

CheckpointState load_checkpoint(const std::string& path) {
  const util::Journal journal = util::Journal::load(
      path, keys::kCheckpointMagic, keys::kCheckpointVersion);

  CheckpointState state;
  state.config_digest = journal.get_u64(keys::kConfigDigest);
  state.strategy = static_cast<Strategy>(journal.get_u64(keys::kStrategy));
  state.next_hour = journal.get_size(keys::kNextHour);
  state.spent = journal.get_double_bits(keys::kSpent);
  state.crashes_fired = journal.get_size(keys::kCrashesFired);
  // Written since the rotated-generations format; absent in checkpoints
  // from before that, which simply had no storms/corruptions to count.
  state.storms_fired =
      journal.has(keys::kStormsFired) ? journal.get_size(keys::kStormsFired) : 0;
  state.corruptions_fired = journal.has(keys::kCorruptionsFired)
                                ? journal.get_size(keys::kCorruptionsFired)
                                : 0;
  for (std::size_t i = 0; i < state.feed.rng.size(); ++i)
    state.feed.rng[i] = journal.get_u64(keys::feed_rng(i));
  state.feed.recovered_until = journal.get_size(keys::kFeedRecoveredUntil);

  MonthlyResult& r = state.partial;
  r.strategy = state.strategy;
  r.monthly_budget = journal.get_double_bits(keys::kMonthlyBudget);
  r.total_cost = journal.get_double_bits(keys::kTotalCost);
  r.total_premium_arrivals = journal.get_double_bits(keys::kTotalPremiumArrivals);
  r.total_ordinary_arrivals =
      journal.get_double_bits(keys::kTotalOrdinaryArrivals);
  r.total_served_premium = journal.get_double_bits(keys::kTotalServedPremium);
  r.total_served_ordinary = journal.get_double_bits(keys::kTotalServedOrdinary);
  r.max_solve_ms = journal.get_double_bits(keys::kMaxSolveMs);
  r.degraded_hours = journal.get_size(keys::kDegradedHours);
  r.incumbent_hours = journal.get_size(keys::kIncumbentHours);
  r.heuristic_hours = journal.get_size(keys::kHeuristicHours);
  r.outage_hours = journal.get_size(keys::kOutageHours);
  r.stale_hours = journal.get_size(keys::kStaleHours);
  r.feed_retry_attempts = journal.get_size(keys::kFeedRetryAttempts);
  r.feed_recovered_hours = journal.get_size(keys::kFeedRecoveredHours);
  r.crash_recoveries = journal.get_size(keys::kCrashRecoveries);
  {
    std::istringstream tally(journal.get(keys::kFailureTally));
    for (std::size_t i = 0; i < r.failure_tally.size(); ++i)
      if (!(tally >> r.failure_tally[i]))
        throw std::runtime_error("checkpoint: malformed failure_tally");
  }
  // Written since the fleet-controller format; absent means a pre-fleet
  // checkpoint whose month had no chunk solves to count.
  r.degraded_chunks = journal.has(keys::kDegradedChunks)
                          ? journal.get_size(keys::kDegradedChunks)
                          : 0;
  r.quarantined_chunks = journal.has(keys::kQuarantinedChunks)
                             ? journal.get_size(keys::kQuarantinedChunks)
                             : 0;
  r.region_down_chunks = journal.has(keys::kRegionDownChunks)
                             ? journal.get_size(keys::kRegionDownChunks)
                             : 0;
  if (journal.has(keys::kChunkFailureTally)) {
    std::istringstream tally(journal.get(keys::kChunkFailureTally));
    for (std::size_t i = 0; i < r.chunk_failure_tally.size(); ++i)
      if (!(tally >> r.chunk_failure_tally[i]))
        throw std::runtime_error("checkpoint: malformed chunk_failure_tally");
  }

  const std::size_t hours = journal.get_size(keys::kHours);
  if (hours != state.next_hour)
    throw std::runtime_error(
        "checkpoint: hour count does not match next_hour (inconsistent "
        "file)");
  r.hours.reserve(hours);
  for (std::size_t i = 0; i < hours; ++i)
    r.hours.push_back(decode_hour(journal.get(keys::hour(i))));
  return state;
}

void save_checkpoint_rotated(const std::string& path,
                             const CheckpointState& state,
                             std::size_t keep_generations) {
  util::Journal::rotate_generations(path, keep_generations);
  save_checkpoint(path, state);
}

bool any_checkpoint_generation_exists(const std::string& path,
                                      std::size_t keep_generations) noexcept {
  const std::size_t gens = keep_generations == 0 ? 1 : keep_generations;
  for (std::size_t g = 0; g < gens; ++g)
    if (checkpoint_exists(util::Journal::generation_path(path, g))) return true;
  return false;
}

CheckpointLoadReport load_checkpoint_fallback(const std::string& path,
                                              std::size_t keep_generations,
                                              std::uint64_t expected_digest) {
  CheckpointLoadReport report;
  const std::size_t gens = keep_generations == 0 ? 1 : keep_generations;
  for (std::size_t g = 0; g < gens; ++g) {
    const std::string gen_path = util::Journal::generation_path(path, g);
    if (!checkpoint_exists(gen_path)) {
      report.skipped.push_back(gen_path + ": missing");
      continue;
    }
    try {
      CheckpointState state = load_checkpoint(gen_path);
      if (state.config_digest != expected_digest) {
        report.skipped.push_back(gen_path +
                                 ": config digest mismatch (checkpoint from a "
                                 "different configuration)");
        continue;
      }
      report.state = std::move(state);
      report.generation = g;
      return report;
    } catch (const std::exception& e) {
      report.skipped.push_back(gen_path + ": " + e.what());
    }
  }
  std::string detail;
  for (const std::string& s : report.skipped) detail += "\n  " + s;
  throw std::runtime_error(
      "checkpoint: no viable generation among the newest " +
      std::to_string(gens) + detail);
}

}  // namespace billcap::core
