#include "core/checkpoint.hpp"

#include <bit>
#include <charconv>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "core/checkpoint_keys.hpp"
#include "util/journal.hpp"

namespace billcap::core {

namespace {

// ---- digest ---------------------------------------------------------------

struct Digest {
  std::uint64_t hash = 0xcbf29ce484222325ULL;

  void mix_u64(std::uint64_t value) noexcept {
    for (int i = 0; i < 8; ++i) {
      hash ^= (value >> (8 * i)) & 0xffu;
      hash *= 0x100000001b3ULL;
    }
  }
  void mix_size(std::size_t value) noexcept {
    mix_u64(static_cast<std::uint64_t>(value));
  }
  void mix_double(double value) noexcept {
    mix_u64(std::bit_cast<std::uint64_t>(value));
  }
  void mix_bool(bool value) noexcept { mix_u64(value ? 1 : 0); }
};

// ---- token stream for HourRecord ------------------------------------------

void put_u(std::ostringstream& os, std::uint64_t v) { os << v << ' '; }
void put_d(std::ostringstream& os, double v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(std::bit_cast<std::uint64_t>(v)));
  os << buf << ' ';
}

std::uint64_t take_u(std::istringstream& is) {
  std::uint64_t v = 0;
  if (!(is >> v)) throw std::runtime_error("checkpoint: truncated hour record");
  return v;
}
/// EOF-tolerant read for fields appended after the v1 layout: a record from
/// an older writer simply runs out of tokens, which must read as the field's
/// default — only a *malformed* token still throws.
bool take_u_opt(std::istringstream& is, std::uint64_t& out) {
  std::string token;
  if (!(is >> token)) return false;  // clean EOF: pre-extension record
  std::uint64_t v = 0;
  const auto res =
      std::from_chars(token.data(), token.data() + token.size(), v, 10);
  if (res.ec != std::errc{} || res.ptr != token.data() + token.size())
    throw std::runtime_error("checkpoint: malformed hour record");
  out = v;
  return true;
}
double take_d(std::istringstream& is) {
  std::string token;
  if (!(is >> token) || token.size() != 16)
    throw std::runtime_error("checkpoint: malformed hour record");
  std::uint64_t bits = 0;
  const auto res =
      std::from_chars(token.data(), token.data() + token.size(), bits, 16);
  if (res.ec != std::errc{} || res.ptr != token.data() + token.size())
    throw std::runtime_error("checkpoint: malformed hour record");
  return std::bit_cast<double>(bits);
}

std::string encode_hour(const HourRecord& rec) {
  std::ostringstream os;
  put_u(os, rec.hour);
  put_u(os, static_cast<std::uint64_t>(rec.mode));
  put_u(os, static_cast<std::uint64_t>(rec.failure));
  put_u(os, rec.degraded ? 1 : 0);
  put_u(os, rec.used_incumbent ? 1 : 0);
  put_u(os, rec.used_heuristic ? 1 : 0);
  put_u(os, rec.stale_prices ? 1 : 0);
  put_u(os, static_cast<std::uint64_t>(rec.feed_attempts));
  put_u(os, rec.feed_recovered ? 1 : 0);
  put_u(os, rec.sites_down);
  put_u(os, static_cast<std::uint64_t>(rec.nodes));
  put_d(os, rec.arrivals);
  put_d(os, rec.premium_arrivals);
  put_d(os, rec.ordinary_arrivals);
  put_d(os, rec.served_premium);
  put_d(os, rec.served_ordinary);
  put_d(os, rec.hourly_budget);
  put_d(os, rec.cost);
  put_d(os, rec.predicted_cost);
  put_d(os, rec.solve_ms);
  put_u(os, rec.site_lambda.size());
  for (double v : rec.site_lambda) put_d(os, v);
  put_u(os, rec.site_power_mw.size());
  for (double v : rec.site_power_mw) put_d(os, v);
  // Coupler fields: appended AFTER every v1 field so pre-coupler records
  // decode with the (zero) defaults — extend only at the end.
  put_u(os, rec.coupler_iterations);
  put_u(os, rec.coupler_converged ? 1 : 0);
  put_u(os, rec.coupler_fallback ? 1 : 0);
  put_u(os, rec.coupler_rung);
  return os.str();
}

HourRecord decode_hour(const std::string& text) {
  std::istringstream is(text);
  HourRecord rec;
  rec.hour = static_cast<std::size_t>(take_u(is));
  rec.mode = static_cast<CappingOutcome::Mode>(take_u(is));
  rec.failure = static_cast<FailureReason>(take_u(is));
  rec.degraded = take_u(is) != 0;
  rec.used_incumbent = take_u(is) != 0;
  rec.used_heuristic = take_u(is) != 0;
  rec.stale_prices = take_u(is) != 0;
  rec.feed_attempts = static_cast<int>(take_u(is));
  rec.feed_recovered = take_u(is) != 0;
  rec.sites_down = static_cast<std::size_t>(take_u(is));
  rec.nodes = static_cast<long>(take_u(is));
  rec.arrivals = take_d(is);
  rec.premium_arrivals = take_d(is);
  rec.ordinary_arrivals = take_d(is);
  rec.served_premium = take_d(is);
  rec.served_ordinary = take_d(is);
  rec.hourly_budget = take_d(is);
  rec.cost = take_d(is);
  rec.predicted_cost = take_d(is);
  rec.solve_ms = take_d(is);
  const std::size_t n_lambda = static_cast<std::size_t>(take_u(is));
  rec.site_lambda.reserve(n_lambda);
  for (std::size_t i = 0; i < n_lambda; ++i)
    rec.site_lambda.push_back(take_d(is));
  const std::size_t n_power = static_cast<std::size_t>(take_u(is));
  rec.site_power_mw.reserve(n_power);
  for (std::size_t i = 0; i < n_power; ++i)
    rec.site_power_mw.push_back(take_d(is));
  std::uint64_t v = 0;
  if (take_u_opt(is, v)) {
    rec.coupler_iterations = static_cast<std::size_t>(v);
    rec.coupler_converged = take_u(is) != 0;
    rec.coupler_fallback = take_u(is) != 0;
    rec.coupler_rung = static_cast<std::size_t>(take_u(is));
  }
  return rec;
}

}  // namespace

std::uint64_t checkpoint_digest(const SimulationConfig& config,
                                Strategy strategy) {
  Digest d;
  d.mix_u64(static_cast<std::uint64_t>(strategy));
  d.mix_u64(config.seed);
  d.mix_double(config.monthly_budget);
  d.mix_double(config.premium_share);
  d.mix_u64(static_cast<std::uint64_t>(config.policy_level));
  d.mix_bool(config.enforce_budget);
  d.mix_size(config.history_weeks);
  d.mix_u64(static_cast<std::uint64_t>(config.budget_weighting));
  d.mix_u64(config.history_seed_offset);

  d.mix_double(config.workload.mean_rate);
  d.mix_double(config.workload.diurnal_amplitude);
  d.mix_double(config.workload.weekend_drop);
  d.mix_double(config.workload.noise_sigma);
  d.mix_double(config.workload.flash_crowd_per_hour);
  d.mix_double(config.workload.flash_crowd_magnitude);
  d.mix_double(config.workload.flash_crowd_decay);

  d.mix_bool(config.optimizer.model_cooling_network);
  d.mix_bool(config.optimizer.warm_hourly_solver);
  d.mix_u64(static_cast<std::uint64_t>(config.optimizer.milp.max_nodes));
  d.mix_double(config.optimizer.milp.integrality_tol);
  d.mix_double(config.optimizer.milp.relative_gap);
  d.mix_double(config.optimizer.milp.absolute_gap);
  d.mix_double(config.optimizer.milp.time_limit_ms);

  const FaultPlan& plan = config.fault_plan;
  d.mix_size(plan.outages.size());
  for (const auto& o : plan.outages) {
    d.mix_size(o.site);
    d.mix_size(o.start_hour);
    d.mix_size(o.duration_hours);
  }
  d.mix_size(plan.stale_intervals.size());
  for (const auto& s : plan.stale_intervals) {
    d.mix_size(s.start_hour);
    d.mix_size(s.duration_hours);
  }
  d.mix_size(plan.demand_shocks.size());
  for (const auto& s : plan.demand_shocks) {
    d.mix_size(s.site);
    d.mix_size(s.start_hour);
    d.mix_size(s.duration_hours);
    d.mix_double(s.multiplier);
  }
  d.mix_size(plan.deadline_squeezes.size());
  for (const auto& s : plan.deadline_squeezes) {
    d.mix_size(s.start_hour);
    d.mix_size(s.duration_hours);
    d.mix_double(s.time_limit_ms);
  }
  d.mix_size(plan.crashes.size());
  for (const auto& c : plan.crashes) {
    d.mix_size(c.hour);
    d.mix_bool(c.before_checkpoint);
  }
  d.mix_size(plan.exit_storms.size());
  for (const auto& s : plan.exit_storms) {
    d.mix_size(s.hour);
    d.mix_size(s.count);
  }
  d.mix_size(plan.checkpoint_corruptions.size());
  for (const auto& c : plan.checkpoint_corruptions) d.mix_size(c.hour);
  d.mix_size(plan.flash_crowds.size());
  for (const auto& f : plan.flash_crowds) {
    d.mix_size(f.start_hour);
    d.mix_size(f.duration_hours);
    d.mix_double(f.multiplier);
  }
  d.mix_size(plan.feed_bursts.size());
  for (const auto& b : plan.feed_bursts) {
    d.mix_size(b.start_hour);
    d.mix_size(b.duration_hours);
    d.mix_size(b.updates_per_tick);
  }
  // Grid-side fault kinds: mixed only when present so a plan without them
  // keeps its pre-coupler digest (resumability across the format change).
  if (!plan.line_outages.empty()) {
    d.mix_size(plan.line_outages.size());
    for (const auto& o : plan.line_outages) {
      d.mix_size(o.line);
      d.mix_size(o.start_hour);
      d.mix_size(o.duration_hours);
    }
  }
  if (!plan.grid_demand_shocks.empty()) {
    d.mix_size(plan.grid_demand_shocks.size());
    for (const auto& s : plan.grid_demand_shocks) {
      d.mix_size(s.bus);
      d.mix_size(s.start_hour);
      d.mix_size(s.duration_hours);
      d.mix_double(s.multiplier);
    }
  }
  if (!plan.congestion_spikes.empty()) {
    d.mix_size(plan.congestion_spikes.size());
    for (const auto& s : plan.congestion_spikes) {
      d.mix_size(s.line);
      d.mix_size(s.start_hour);
      d.mix_size(s.duration_hours);
      d.mix_double(s.limit_factor);
    }
  }

  d.mix_double(config.fault_rates.outage_rate);
  d.mix_size(config.fault_rates.outage_mean_hours);
  d.mix_double(config.fault_rates.stale_rate);
  d.mix_size(config.fault_rates.stale_mean_hours);
  d.mix_double(config.fault_rates.shock_rate);
  d.mix_size(config.fault_rates.shock_mean_hours);
  d.mix_double(config.fault_rates.shock_multiplier);
  d.mix_double(config.fault_rates.squeeze_rate);
  d.mix_size(config.fault_rates.squeeze_mean_hours);
  d.mix_double(config.fault_rates.squeeze_ms);
  d.mix_double(config.fault_rates.crash_rate);

  d.mix_double(config.market_feed.retry_success_prob);
  d.mix_u64(static_cast<std::uint64_t>(config.market_feed.max_attempts_per_hour));
  d.mix_double(config.market_feed.base_backoff_ms);
  d.mix_double(config.market_feed.backoff_multiplier);
  d.mix_double(config.market_feed.max_backoff_ms);
  d.mix_double(config.market_feed.jitter_frac);

  // Coupler configuration: mixed only when enabled, so every open-loop
  // config keeps the digest it had before the closed-loop format existed.
  if (config.market_coupler.enabled) {
    const MarketCouplerOptions& mc = config.market_coupler;
    d.mix_bool(mc.enabled);
    d.mix_bool(mc.plan_closed_loop);
    d.mix_double(mc.loop.feedback_gain);
    d.mix_size(mc.loop.max_iters);
    d.mix_double(mc.loop.epsilon_mw);
    d.mix_double(mc.loop.price_tol);
    d.mix_double(mc.loop.sweep_step_mw);
    d.mix_double(mc.loop.smoothing_alpha);
    d.mix_double(mc.loop.trust_region_mw);
    d.mix_double(mc.loop.hysteresis_frac);
    d.mix_u64(static_cast<std::uint64_t>(mc.damping));
    d.mix_size(mc.deescalate_after);
    d.mix_size(mc.breaker_trip_after);
    d.mix_size(mc.breaker_cooldown_hours);
    d.mix_double(mc.breaker_cooldown_multiplier);
    d.mix_size(mc.breaker_cooldown_max_hours);
  }

  return d.hash;
}

bool checkpoint_exists(const std::string& path) noexcept {
  const std::ifstream probe(path);
  return probe.good();
}

void save_checkpoint(const std::string& path, const CheckpointState& state) {
  util::Journal journal(keys::kCheckpointMagic, keys::kCheckpointVersion);
  journal.set_u64(keys::kConfigDigest, state.config_digest);
  journal.set_u64(keys::kStrategy, static_cast<std::uint64_t>(state.strategy));
  journal.set_size(keys::kNextHour, state.next_hour);
  journal.set_double_bits(keys::kSpent, state.spent);
  journal.set_size(keys::kCrashesFired, state.crashes_fired);
  journal.set_size(keys::kStormsFired, state.storms_fired);
  journal.set_size(keys::kCorruptionsFired, state.corruptions_fired);
  for (std::size_t i = 0; i < state.feed.rng.size(); ++i)
    journal.set_u64(keys::feed_rng(i), state.feed.rng[i]);
  journal.set_size(keys::kFeedRecoveredUntil, state.feed.recovered_until);

  const MarketCoupler::State& cp = state.coupler;
  journal.set_u64(keys::kCouplerBreakerState, cp.breaker_state);
  journal.set_size(keys::kCouplerConsecTroubled, cp.consecutive_troubled);
  journal.set_size(keys::kCouplerCooldown, cp.cooldown_remaining);
  journal.set_size(keys::kCouplerCurrentCooldown, cp.current_cooldown_hours);
  journal.set_size(keys::kCouplerTrips, cp.trips);
  journal.set_size(keys::kCouplerRung, cp.rung);
  journal.set_size(keys::kCouplerCleanStreak, cp.clean_streak);
  journal.set_u64(keys::kCouplerLastValid, cp.last_valid ? 1 : 0);
  {
    std::ostringstream active;
    for (std::size_t i = 0; i < cp.last_active.size(); ++i) {
      if (i) active << ' ';
      active << static_cast<unsigned>(cp.last_active[i]);
    }
    journal.set(keys::kCouplerLastActive, active.str());
  }
  {
    std::ostringstream power;
    for (double v : cp.last_power_mw) put_d(power, v);
    journal.set(keys::kCouplerLastPower, power.str());
  }

  const MonthlyResult& r = state.partial;
  journal.set_double_bits(keys::kMonthlyBudget, r.monthly_budget);
  journal.set_double_bits(keys::kTotalCost, r.total_cost);
  journal.set_double_bits(keys::kTotalPremiumArrivals, r.total_premium_arrivals);
  journal.set_double_bits(keys::kTotalOrdinaryArrivals,
                          r.total_ordinary_arrivals);
  journal.set_double_bits(keys::kTotalServedPremium, r.total_served_premium);
  journal.set_double_bits(keys::kTotalServedOrdinary, r.total_served_ordinary);
  journal.set_double_bits(keys::kMaxSolveMs, r.max_solve_ms);
  journal.set_size(keys::kDegradedHours, r.degraded_hours);
  journal.set_size(keys::kIncumbentHours, r.incumbent_hours);
  journal.set_size(keys::kHeuristicHours, r.heuristic_hours);
  journal.set_size(keys::kOutageHours, r.outage_hours);
  journal.set_size(keys::kStaleHours, r.stale_hours);
  journal.set_size(keys::kFeedRetryAttempts, r.feed_retry_attempts);
  journal.set_size(keys::kFeedRecoveredHours, r.feed_recovered_hours);
  journal.set_size(keys::kCrashRecoveries, r.crash_recoveries);
  journal.set_size(keys::kClosedLoopHours, r.closed_loop_hours);
  journal.set_size(keys::kCouplerFallbackHours, r.coupler_fallback_hours);
  journal.set_size(keys::kCouplerIterations, r.coupler_iterations);
  {
    std::ostringstream tally;
    for (std::size_t i = 0; i < r.failure_tally.size(); ++i) {
      if (i) tally << ' ';
      tally << r.failure_tally[i];
    }
    journal.set(keys::kFailureTally, tally.str());
  }
  journal.set_size(keys::kDegradedChunks, r.degraded_chunks);
  journal.set_size(keys::kQuarantinedChunks, r.quarantined_chunks);
  journal.set_size(keys::kRegionDownChunks, r.region_down_chunks);
  {
    std::ostringstream tally;
    for (std::size_t i = 0; i < r.chunk_failure_tally.size(); ++i) {
      if (i) tally << ' ';
      tally << r.chunk_failure_tally[i];
    }
    journal.set(keys::kChunkFailureTally, tally.str());
  }

  journal.set_size(keys::kHours, r.hours.size());
  for (std::size_t i = 0; i < r.hours.size(); ++i)
    journal.set(keys::hour(i), encode_hour(r.hours[i]));

  journal.save_atomic(path);
}

CheckpointState load_checkpoint(const std::string& path) {
  const util::Journal journal = util::Journal::load(
      path, keys::kCheckpointMagic, keys::kCheckpointVersion);

  CheckpointState state;
  state.config_digest = journal.get_u64(keys::kConfigDigest);
  state.strategy = static_cast<Strategy>(journal.get_u64(keys::kStrategy));
  state.next_hour = journal.get_size(keys::kNextHour);
  state.spent = journal.get_double_bits(keys::kSpent);
  state.crashes_fired = journal.get_size(keys::kCrashesFired);
  // Written since the rotated-generations format; absent in checkpoints
  // from before that, which simply had no storms/corruptions to count.
  state.storms_fired =
      journal.has(keys::kStormsFired) ? journal.get_size(keys::kStormsFired) : 0;
  state.corruptions_fired = journal.has(keys::kCorruptionsFired)
                                ? journal.get_size(keys::kCorruptionsFired)
                                : 0;
  for (std::size_t i = 0; i < state.feed.rng.size(); ++i)
    state.feed.rng[i] = journal.get_u64(keys::feed_rng(i));
  state.feed.recovered_until = journal.get_size(keys::kFeedRecoveredUntil);

  // Coupler trajectory: absent in pre-coupler checkpoints, which simply
  // had no coupler state to carry — a fresh (default) coupler is correct.
  if (journal.has(keys::kCouplerBreakerState)) {
    MarketCoupler::State& cp = state.coupler;
    cp.breaker_state = journal.get_u64(keys::kCouplerBreakerState);
    cp.consecutive_troubled = journal.get_size(keys::kCouplerConsecTroubled);
    cp.cooldown_remaining = journal.get_size(keys::kCouplerCooldown);
    cp.current_cooldown_hours =
        journal.get_size(keys::kCouplerCurrentCooldown);
    cp.trips = journal.get_size(keys::kCouplerTrips);
    cp.rung = journal.get_size(keys::kCouplerRung);
    cp.clean_streak = journal.get_size(keys::kCouplerCleanStreak);
    cp.last_valid = journal.get_u64(keys::kCouplerLastValid) != 0;
    {
      std::istringstream active(journal.get(keys::kCouplerLastActive));
      unsigned v = 0;
      while (active >> v) cp.last_active.push_back(v != 0 ? 1 : 0);
    }
    {
      std::istringstream power(journal.get(keys::kCouplerLastPower));
      while (power >> std::ws, power.peek() != std::istringstream::traits_type::eof()) {
        cp.last_power_mw.push_back(take_d(power));
      }
    }
  }

  MonthlyResult& r = state.partial;
  r.strategy = state.strategy;
  r.monthly_budget = journal.get_double_bits(keys::kMonthlyBudget);
  r.total_cost = journal.get_double_bits(keys::kTotalCost);
  r.total_premium_arrivals = journal.get_double_bits(keys::kTotalPremiumArrivals);
  r.total_ordinary_arrivals =
      journal.get_double_bits(keys::kTotalOrdinaryArrivals);
  r.total_served_premium = journal.get_double_bits(keys::kTotalServedPremium);
  r.total_served_ordinary = journal.get_double_bits(keys::kTotalServedOrdinary);
  r.max_solve_ms = journal.get_double_bits(keys::kMaxSolveMs);
  r.degraded_hours = journal.get_size(keys::kDegradedHours);
  r.incumbent_hours = journal.get_size(keys::kIncumbentHours);
  r.heuristic_hours = journal.get_size(keys::kHeuristicHours);
  r.outage_hours = journal.get_size(keys::kOutageHours);
  r.stale_hours = journal.get_size(keys::kStaleHours);
  r.feed_retry_attempts = journal.get_size(keys::kFeedRetryAttempts);
  r.feed_recovered_hours = journal.get_size(keys::kFeedRecoveredHours);
  r.crash_recoveries = journal.get_size(keys::kCrashRecoveries);
  // Coupler aggregates: absent before the closed-loop format, zero then.
  r.closed_loop_hours = journal.has(keys::kClosedLoopHours)
                            ? journal.get_size(keys::kClosedLoopHours)
                            : 0;
  r.coupler_fallback_hours =
      journal.has(keys::kCouplerFallbackHours)
          ? journal.get_size(keys::kCouplerFallbackHours)
          : 0;
  r.coupler_iterations = journal.has(keys::kCouplerIterations)
                             ? journal.get_size(keys::kCouplerIterations)
                             : 0;
  {
    // Tolerant of shorter tallies: a checkpoint written before a
    // FailureReason was added carries fewer entries, and the reasons it
    // predates necessarily tallied zero (the array is zero-initialized).
    std::istringstream tally(journal.get(keys::kFailureTally));
    for (std::size_t i = 0; i < r.failure_tally.size(); ++i)
      if (!(tally >> r.failure_tally[i])) break;
  }
  // Written since the fleet-controller format; absent means a pre-fleet
  // checkpoint whose month had no chunk solves to count.
  r.degraded_chunks = journal.has(keys::kDegradedChunks)
                          ? journal.get_size(keys::kDegradedChunks)
                          : 0;
  r.quarantined_chunks = journal.has(keys::kQuarantinedChunks)
                             ? journal.get_size(keys::kQuarantinedChunks)
                             : 0;
  r.region_down_chunks = journal.has(keys::kRegionDownChunks)
                             ? journal.get_size(keys::kRegionDownChunks)
                             : 0;
  if (journal.has(keys::kChunkFailureTally)) {
    // Same shorter-tally tolerance as failure_tally above.
    std::istringstream tally(journal.get(keys::kChunkFailureTally));
    for (std::size_t i = 0; i < r.chunk_failure_tally.size(); ++i)
      if (!(tally >> r.chunk_failure_tally[i])) break;
  }

  const std::size_t hours = journal.get_size(keys::kHours);
  if (hours != state.next_hour)
    throw std::runtime_error(
        "checkpoint: hour count does not match next_hour (inconsistent "
        "file)");
  r.hours.reserve(hours);
  for (std::size_t i = 0; i < hours; ++i)
    r.hours.push_back(decode_hour(journal.get(keys::hour(i))));
  return state;
}

void save_checkpoint_rotated(const std::string& path,
                             const CheckpointState& state,
                             std::size_t keep_generations) {
  util::Journal::rotate_generations(path, keep_generations);
  save_checkpoint(path, state);
}

bool any_checkpoint_generation_exists(const std::string& path,
                                      std::size_t keep_generations) noexcept {
  const std::size_t gens = keep_generations == 0 ? 1 : keep_generations;
  for (std::size_t g = 0; g < gens; ++g)
    if (checkpoint_exists(util::Journal::generation_path(path, g))) return true;
  return false;
}

CheckpointLoadReport load_checkpoint_fallback(const std::string& path,
                                              std::size_t keep_generations,
                                              std::uint64_t expected_digest) {
  CheckpointLoadReport report;
  const std::size_t gens = keep_generations == 0 ? 1 : keep_generations;
  for (std::size_t g = 0; g < gens; ++g) {
    const std::string gen_path = util::Journal::generation_path(path, g);
    if (!checkpoint_exists(gen_path)) {
      report.skipped.push_back(gen_path + ": missing");
      continue;
    }
    try {
      CheckpointState state = load_checkpoint(gen_path);
      if (state.config_digest != expected_digest) {
        report.skipped.push_back(gen_path +
                                 ": config digest mismatch (checkpoint from a "
                                 "different configuration)");
        continue;
      }
      report.state = std::move(state);
      report.generation = g;
      return report;
    } catch (const std::exception& e) {
      report.skipped.push_back(gen_path + ": " + e.what());
    }
  }
  std::string detail;
  for (const std::string& s : report.skipped) detail += "\n  " + s;
  throw std::runtime_error(
      "checkpoint: no viable generation among the newest " +
      std::to_string(gens) + detail);
}

}  // namespace billcap::core
