#pragma once

#include <span>

#include "core/formulation.hpp"

namespace billcap::core {

/// What the degraded control loop asks of the greedy fallback when a MILP
/// solve dies (node/time limit without incumbent, numerical infeasibility):
/// `lambda_required` is served unconditionally (the premium guarantee),
/// `lambda_optional` on top of it only while the predicted cost stays within
/// `cost_budget` (set it to lp::kInfinity for pure cost minimization).
struct FallbackRequest {
  double lambda_required = 0.0;
  double lambda_optional = 0.0;
  double cost_budget = lp::kInfinity;
};

/// Greedy water-filling over the per-site marginal step prices: every site's
/// believed cost curve is cut into chunks of constant marginal $/request
/// (price-level boundaries, heterogeneous server-class boundaries, the
/// activation jump amortized into the first chunk), and chunks are consumed
/// cheapest-first, site-contiguously, respecting each site's power cap and
/// SLA capacity (`lambda_max` already encodes both).
///
/// Never throws and always returns a feasible allocation: load beyond the
/// believed system capacity is simply not placed (the caller sheds it), and
/// optional load stops at the budget. The result carries `feasible = true`
/// and `heuristic = true`; `total_lambda` tells the caller how much of the
/// request was actually placed. `status` is kOptimal so that legacy ok()
/// consumers treat the allocation as valid — it is feasible, just not
/// proven optimal.
AllocationResult fallback_allocate(std::span<const SiteModel> models,
                                   const FallbackRequest& request);

}  // namespace billcap::core
