#include "core/market_coupler.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace billcap::core {

namespace {

constexpr double kActiveLambdaTol = 1e-6;

}  // namespace

const char* to_string(DampingMode mode) noexcept {
  switch (mode) {
    case DampingMode::kOff: return "off";
    case DampingMode::kLadder: return "ladder";
    case DampingMode::kFull: return "full";
  }
  return "unknown";
}

MarketCoupler::MarketCoupler(
    const std::vector<datacenter::DataCenter>& sites,
    const std::vector<market::PricingPolicy>& static_policies,
    OptimizerOptions optimizer, MarketCouplerOptions options)
    : sites_(sites),
      static_policies_(static_policies),
      options_(std::move(options)),
      market_(market::CoupledMarket::paper()),
      coupled_policies_(static_policies),
      coupled_capper_(sites_, coupled_policies_, optimizer),
      detector_(8, std::max(options_.loop.epsilon_mw, 0.5)),
      ladder_(options_.deescalate_after) {
  if (market_.num_sites() != sites_.size())
    throw std::invalid_argument(
        "MarketCoupler: site count does not match the coupled grid's load "
        "buses");
  sweep_cap_mw_.reserve(sites_.size());
  for (const auto& site : sites_)
    sweep_cap_mw_.push_back(site.power_mw(site.max_requests_per_hour()));
}

std::vector<double> MarketCoupler::physical_power(
    const CappingOutcome& outcome) const {
  const std::vector<double> lambda = outcome.allocation.lambda_vector();
  std::vector<double> power(sites_.size(), 0.0);
  for (std::size_t i = 0; i < sites_.size() && i < lambda.size(); ++i)
    power[i] = lambda[i] > 0.0 ? sites_[i].power_mw(lambda[i]) : 0.0;
  return power;
}

void MarketCoupler::breaker_on_hour_start() noexcept {
  if (breaker_state_ != BreakerState::kOpen) return;
  if (cooldown_remaining_ > 0) --cooldown_remaining_;
  if (cooldown_remaining_ == 0) breaker_state_ = BreakerState::kHalfOpen;
}

void MarketCoupler::breaker_on_attempt(bool troubled) noexcept {
  if (!troubled) {
    consecutive_troubled_ = 0;
    if (breaker_state_ == BreakerState::kHalfOpen) {
      // One clean probe closes the breaker and resets the cooldown ladder.
      breaker_state_ = BreakerState::kClosed;
      current_cooldown_hours_ = 0;
    }
    return;
  }
  ++consecutive_troubled_;
  if (breaker_state_ == BreakerState::kHalfOpen) {
    // Failed probe: re-open for an exponentially longer cooldown (capped).
    const double next = static_cast<double>(std::max<std::size_t>(
                            1, current_cooldown_hours_)) *
                        options_.breaker_cooldown_multiplier;
    current_cooldown_hours_ =
        std::min(options_.breaker_cooldown_max_hours,
                 static_cast<std::size_t>(next));
    cooldown_remaining_ = current_cooldown_hours_;
    breaker_state_ = BreakerState::kOpen;
    ++trips_;
    return;
  }
  if (breaker_state_ == BreakerState::kClosed &&
      consecutive_troubled_ >= options_.breaker_trip_after) {
    current_cooldown_hours_ = options_.breaker_cooldown_hours;
    cooldown_remaining_ = current_cooldown_hours_;
    breaker_state_ = BreakerState::kOpen;
    ++trips_;
  }
}

MarketCoupler::IterationResult MarketCoupler::iterate(
    const HourInputs& in, std::span<const double> planning_demand_mw,
    std::size_t rung) {
  static const DecideOptions kNoOverrides;
  const DecideOptions& ov = in.overrides ? *in.overrides : kNoOverrides;
  const std::size_t n = sites_.size();
  const market::ClosedLoopOptions& loop = options_.loop;

  detector_.reset();
  IterationResult res;

  // Seed the iteration at the last executed operating point (warm start);
  // a fresh month starts from a dark fleet.
  std::vector<double> p = (last_valid_ && last_power_mw_.size() == n)
                              ? last_power_mw_
                              : std::vector<double>(n, 0.0);
  std::vector<market::PricingPolicy> prev_curves;
  double trust = loop.trust_region_mw;

  for (std::size_t j = 0; j < loop.max_iters; ++j) {
    std::vector<market::PricingPolicy> curves = market_.derive_local_policies(
        p, planning_demand_mw, planning_demand_mw, sweep_cap_mw_, loop,
        &in.faults);
    if (rung >= 1 && !prev_curves.empty()) {
      for (std::size_t i = 0; i < n; ++i)
        curves[i] =
            market::smooth_policy(curves[i], prev_curves[i],
                                  loop.smoothing_alpha);
    }
    // Swap the curve *contents* under the capper: it references
    // coupled_policies_, so no solver rebuild happens between iterations.
    coupled_policies_ = curves;
    CappingOutcome outcome = coupled_capper_.decide(
        in.premium, in.ordinary, in.true_demand_mw, in.budget, ov);
    std::vector<double> p_new = physical_power(outcome);
    ++res.iterations;

    // Rung >= 2: trust-region clamp on the fed-back draw, halved every
    // iteration — the damped feedback signal is *forced* to settle within
    // ~log2(trust/epsilon) iterates even if the raw response keeps flipping.
    std::vector<double> p_next = p_new;
    if (rung >= 2) {
      for (std::size_t i = 0; i < n; ++i)
        p_next[i] = std::clamp(p_next[i], p[i] - trust, p[i] + trust);
      trust = std::max(trust * 0.5, loop.epsilon_mw * 0.5);
    }

    double delta = 0.0;
    for (std::size_t i = 0; i < n; ++i)
      delta = std::max(delta, std::abs(p_next[i] - p[i]));
    // The detector watches the fed-back (damped) signal, and only below
    // rung 2: once the trust clamp is on, consecutive moves are bounded by
    // a geometrically shrinking trust radius, so the sequence is contractive
    // by construction and any apparent cycle is a transient of the clamp —
    // the hour either converges or exhausts the cap (kCouplerDiverged).
    const bool cycling = rung < 2 && detector_.push(p_next);

    if (delta <= loop.epsilon_mw) {
      if (rung >= 3 && last_valid_) outcome = apply_hysteresis(in, ov, outcome);
      res.outcome = std::move(outcome);
      res.converged = true;
      return res;
    }
    if (cycling) {
      res.oscillation = true;
      return res;
    }
    p = std::move(p_next);
    prev_curves = std::move(curves);
  }
  res.diverged = true;
  return res;
}

CappingOutcome MarketCoupler::apply_hysteresis(const HourInputs& in,
                                               const DecideOptions& ov,
                                               CappingOutcome outcome) {
  const std::size_t n = sites_.size();
  const std::vector<double> lambda = outcome.allocation.lambda_vector();
  if (last_active_.size() != n || lambda.size() != n) return outcome;

  bool powers_up_idle_site = false;
  for (std::size_t i = 0; i < n; ++i)
    if (lambda[i] > kActiveLambdaTol && !last_active_[i])
      powers_up_idle_site = true;
  if (!powers_up_idle_site) return outcome;

  // Stay-put candidate: the same decision restricted to last hour's active
  // sites (composed with any injected outage mask). Site switching must buy
  // a real predicted saving, or the fleet keeps its footprint — the flap
  // suppression of the ladder's top rung.
  std::vector<std::uint8_t> mask(n, 0);
  std::size_t active = 0;
  for (std::size_t i = 0; i < n; ++i) {
    mask[i] = last_active_[i] &&
              (ov.site_available.empty() || ov.site_available[i] != 0);
    active += mask[i];
  }
  if (active == 0) return outcome;

  DecideOptions held = ov;
  held.site_available = mask;
  CappingOutcome stay = coupled_capper_.decide(
      in.premium, in.ordinary, in.true_demand_mw, in.budget, held);
  const bool serves_as_much =
      stay.served_premium + 1e-6 >= outcome.served_premium &&
      stay.served_ordinary + 1e-6 >= outcome.served_ordinary;
  const bool switch_not_worth_it =
      stay.allocation.predicted_cost <=
      outcome.allocation.predicted_cost * (1.0 + options_.loop.hysteresis_frac);
  if (!stay.degraded && serves_as_much && switch_not_worth_it) return stay;
  return outcome;
}

MarketCoupler::HourPlan MarketCoupler::plan_hour(
    const HourInputs& in, const BillCapper& static_capper) {
  static const DecideOptions kNoOverrides;
  const DecideOptions& ov = in.overrides ? *in.overrides : kNoOverrides;
  const std::size_t n = sites_.size();
  const std::span<const double> planning_d = ov.believed_demand_mw.empty()
                                                 ? in.true_demand_mw
                                                 : ov.believed_demand_mw;

  const auto open_loop_decide = [&] {
    return static_capper.decide(in.premium, in.ordinary, in.true_demand_mw,
                                in.budget, ov);
  };
  const auto commit_executed = [&](const CappingOutcome& outcome) {
    last_power_mw_ = physical_power(outcome);
    const std::vector<double> lambda = outcome.allocation.lambda_vector();
    last_active_.assign(n, 0);
    for (std::size_t i = 0; i < n && i < lambda.size(); ++i)
      last_active_[i] = lambda[i] > kActiveLambdaTol ? 1 : 0;
    last_valid_ = true;
  };

  HourPlan plan;
  if (!options_.plan_closed_loop) {
    // Open-loop arm: static curves plan, coupled billing still applies.
    plan.outcome = open_loop_decide();
    plan.fallback = false;
    commit_executed(plan.outcome);
    return plan;
  }

  breaker_on_hour_start();
  plan.rung = ladder_.rung();
  if (breaker_state_ == BreakerState::kOpen) {
    // Divergence breaker open: the hour plans open-loop on the static
    // curves, no coupled attempt is made, and the cooldown keeps counting.
    plan.fallback = true;
    plan.outcome = open_loop_decide();
    commit_executed(plan.outcome);
    return plan;
  }

  std::size_t rung = 0;
  switch (options_.damping) {
    case DampingMode::kOff: rung = 0; break;
    case DampingMode::kLadder: rung = ladder_.rung(); break;
    case DampingMode::kFull: rung = market::DampingLadder::kMaxRung; break;
  }
  plan.rung = rung;

  IterationResult res;
  try {
    res = iterate(in, planning_d, rung);
  } catch (const std::exception&) {
    // A coupled solve blew up (OPF infeasible in a sweep, allocation beyond
    // a site's physics): the hour is troubled, the fallback serves it.
    res = IterationResult{};
    res.diverged = true;
  }
  const bool troubled = !res.converged;
  breaker_on_attempt(troubled);
  if (options_.damping == DampingMode::kLadder) ladder_.on_hour(troubled);

  plan.iterations = res.iterations;
  plan.oscillation = res.oscillation;
  plan.diverged = res.diverged;
  if (troubled) {
    plan.fallback = true;
    plan.outcome = open_loop_decide();
  } else {
    plan.closed_loop = true;
    plan.outcome = std::move(res.outcome);
  }
  commit_executed(plan.outcome);
  return plan;
}

GroundTruth MarketCoupler::bill(std::span<const double> lambda,
                                std::span<const double> true_demand_mw,
                                const market::CoupledHourFaults& faults) const {
  const std::size_t n = sites_.size();
  std::vector<double> power(n, 0.0);
  for (std::size_t i = 0; i < n && i < lambda.size(); ++i)
    power[i] = lambda[i] > 0.0 ? sites_[i].power_mw(lambda[i]) : 0.0;
  const market::DcOpfResult opf = market_.solve_at(
      power, true_demand_mw, options_.loop.feedback_gain, &faults);
  if (!opf.ok())
    return evaluate_allocation(sites_, static_policies_, true_demand_mw,
                               lambda);
  std::vector<market::PricingPolicy> realized;
  realized.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    realized.push_back(market::PricingPolicy::flat(
        opf.lmp[static_cast<std::size_t>(market_.site_buses()[i])]));
  return evaluate_allocation(sites_, realized, true_demand_mw, lambda);
}

MarketCoupler::State MarketCoupler::state() const {
  State st;
  st.breaker_state = static_cast<std::uint64_t>(breaker_state_);
  st.consecutive_troubled = consecutive_troubled_;
  st.cooldown_remaining = cooldown_remaining_;
  st.current_cooldown_hours = current_cooldown_hours_;
  st.trips = trips_;
  const market::DampingLadder::State ladder = ladder_.snapshot();
  st.rung = ladder.rung;
  st.clean_streak = ladder.clean_streak;
  st.last_valid = last_valid_;
  st.last_power_mw = last_power_mw_;
  st.last_active = last_active_;
  return st;
}

void MarketCoupler::restore(const State& st) {
  breaker_state_ = static_cast<BreakerState>(st.breaker_state);
  consecutive_troubled_ = st.consecutive_troubled;
  cooldown_remaining_ = st.cooldown_remaining;
  current_cooldown_hours_ = st.current_cooldown_hours;
  trips_ = st.trips;
  ladder_.restore({st.rung, st.clean_streak});
  last_valid_ = st.last_valid;
  last_power_mw_ = st.last_power_mw;
  last_active_ = st.last_active;
  detector_.reset();
}

}  // namespace billcap::core
