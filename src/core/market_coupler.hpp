#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "core/bill_capper.hpp"
#include "core/cost_model.hpp"
#include "market/closed_loop.hpp"

namespace billcap::core {

/// How hard the coupler damps the price-load feedback.
enum class DampingMode {
  kOff,     ///< undamped fixed point (the destabilizing baseline)
  kLadder,  ///< adaptive: escalate one rung per troubled hour (default)
  kFull,    ///< every rung active from the first iteration of every hour
};
const char* to_string(DampingMode mode) noexcept;

/// Configuration of the closed-loop market coupler.
struct MarketCouplerOptions {
  /// Master switch. Off = the legacy static-curve world, byte-for-byte.
  bool enabled = false;
  /// With `enabled`, false keeps *planning* on the static curves while
  /// billing still happens at the realized coupled LMPs — the open-loop
  /// arm of the resilience comparison (same billing model, no feedback).
  bool plan_closed_loop = true;
  market::ClosedLoopOptions loop;
  DampingMode damping = DampingMode::kLadder;
  /// Clean hours required before the damping ladder steps down a rung.
  std::size_t deescalate_after = 3;

  /// Divergence circuit breaker (hours, not wall time — trajectories stay
  /// bitwise-reproducible across kill/resume): consecutive troubled hours
  /// trip it, it cools down exponentially, one clean half-open probe
  /// closes it. While open, every hour plans open-loop on static curves.
  std::size_t breaker_trip_after = 3;
  std::size_t breaker_cooldown_hours = 4;
  double breaker_cooldown_multiplier = 2.0;
  std::size_t breaker_cooldown_max_hours = 24;
};

/// Drives the closed market loop for the hourly control loop: each hour the
/// capper's allocation is fed back into the DC-OPF as nodal demand, LMPs
/// re-derive the local step curves, and the capper re-decides, inside a
/// bounded fixed-point iteration wrapped in the full fault envelope
/// (oscillation detector, damping ladder, divergence breaker with open-loop
/// fallback). Deterministic: no randomness, no wall clock; all mutable
/// state is exposed for checkpointing.
class MarketCoupler {
 public:
  /// `sites` and `static_policies` must outlive the coupler (the Simulator
  /// owns both).
  MarketCoupler(const std::vector<datacenter::DataCenter>& sites,
                const std::vector<market::PricingPolicy>& static_policies,
                OptimizerOptions optimizer, MarketCouplerOptions options);

  const MarketCouplerOptions& options() const noexcept { return options_; }

  /// Inputs of one hour's planning decision, mirroring what
  /// Simulator::run_capping_hour hands the capper.
  struct HourInputs {
    double premium = 0.0;
    double ordinary = 0.0;
    /// Ground-truth background demand (billing base). When the overrides
    /// carry a believed demand (stale feed) planning uses that instead.
    std::span<const double> true_demand_mw;
    double budget = 0.0;
    const DecideOptions* overrides = nullptr;  ///< may be null
    market::CoupledHourFaults faults;  ///< resolved grid-side hazards
  };

  /// What the hour's planning produced.
  struct HourPlan {
    CappingOutcome outcome;
    bool closed_loop = false;  ///< adopted a converged coupled decision
    bool fallback = false;     ///< planned open-loop (breaker or trouble)
    bool oscillation = false;  ///< detector fired this hour
    bool diverged = false;     ///< iteration cap hit (or coupled solve threw)
    std::size_t iterations = 0;  ///< fixed-point iterations spent
    std::size_t rung = 0;        ///< damping rung in force this hour
  };

  /// Plans one hour. `static_capper` is the simulator's capper over the
  /// static curves — the open-loop fallback path (and the whole plan when
  /// plan_closed_loop is off). Advances the breaker clock and the damping
  /// ladder; call exactly once per simulated hour, in order.
  HourPlan plan_hour(const HourInputs& in, const BillCapper& static_capper);

  /// Coupled ground-truth billing: one OPF at the realized allocation's
  /// physical draw gives the hour's LMPs; each site is billed through the
  /// exact physics (integer servers, overage penalty) at a flat policy
  /// pinned to its realized LMP. Falls back to the static curves if the
  /// realized OPF is infeasible (a faulted grid that cannot carry the
  /// hour's load at all).
  GroundTruth bill(std::span<const double> lambda,
                   std::span<const double> true_demand_mw,
                   const market::CoupledHourFaults& faults) const;

  /// Breaker observability.
  enum class BreakerState { kClosed, kOpen, kHalfOpen };
  BreakerState breaker_state() const noexcept { return breaker_state_; }
  std::size_t breaker_trips() const noexcept { return trips_; }
  std::size_t rung() const noexcept { return ladder_.rung(); }

  /// Checkpoint support: everything that varies hour over hour.
  struct State {
    std::uint64_t breaker_state = 0;  ///< BreakerState as integer
    std::size_t consecutive_troubled = 0;
    std::size_t cooldown_remaining = 0;
    std::size_t current_cooldown_hours = 0;
    std::size_t trips = 0;
    std::size_t rung = 0;
    std::size_t clean_streak = 0;
    bool last_valid = false;           ///< last fixed point below is real
    std::vector<double> last_power_mw;  ///< last hour's executed draw
    std::vector<std::uint8_t> last_active;  ///< sites with nonzero dispatch
  };
  State state() const;
  void restore(const State& state);

 private:
  struct IterationResult {
    CappingOutcome outcome;
    bool converged = false;
    bool oscillation = false;
    bool diverged = false;
    std::size_t iterations = 0;
  };
  /// The bounded fixed-point iteration at one damping rung.
  IterationResult iterate(const HourInputs& in,
                          std::span<const double> planning_demand_mw,
                          std::size_t rung);
  /// Rung-3 flap suppression: keeps a converged plan that powers up a
  /// previously idle site only when it beats the stay-put plan by the
  /// configured cost fraction.
  CappingOutcome apply_hysteresis(const HourInputs& in,
                                  const DecideOptions& ov,
                                  CappingOutcome outcome);
  std::vector<double> physical_power(const CappingOutcome& outcome) const;
  void breaker_on_hour_start() noexcept;   ///< cooldown clock tick
  void breaker_on_attempt(bool troubled) noexcept;

  const std::vector<datacenter::DataCenter>& sites_;
  const std::vector<market::PricingPolicy>& static_policies_;
  MarketCouplerOptions options_;
  market::CoupledMarket market_;
  /// The coupled curves the capper below references; the iteration mutates
  /// the *contents* each pass, so the capper (and its warm-start arenas)
  /// never needs rebuilding.
  std::vector<market::PricingPolicy> coupled_policies_;
  BillCapper coupled_capper_;
  std::vector<double> sweep_cap_mw_;  ///< per-site own-draw sweep range

  market::OscillationDetector detector_;
  market::DampingLadder ladder_;
  BreakerState breaker_state_ = BreakerState::kClosed;
  std::size_t consecutive_troubled_ = 0;
  std::size_t cooldown_remaining_ = 0;
  std::size_t current_cooldown_hours_ = 0;
  std::size_t trips_ = 0;
  bool last_valid_ = false;
  std::vector<double> last_power_mw_;
  std::vector<std::uint8_t> last_active_;
};

}  // namespace billcap::core
