#include "core/market_feed.hpp"

#include <algorithm>
#include <stdexcept>

namespace billcap::core {

MarketFeed::MarketFeed(const FaultInjector* injector,
                       const MarketFeedOptions& options, std::uint64_t seed)
    : injector_(injector), options_(options), rng_(seed ^ 0x6665656479ULL) {
  if (options_.retry_success_prob < 0.0 || options_.retry_success_prob > 1.0)
    throw std::invalid_argument(
        "MarketFeed: retry_success_prob in [0, 1] required");
  if (options_.enabled()) {
    if (options_.max_attempts_per_hour < 1)
      throw std::invalid_argument("MarketFeed: max_attempts_per_hour >= 1");
    if (options_.base_backoff_ms <= 0.0 || options_.backoff_multiplier < 1.0 ||
        options_.max_backoff_ms < options_.base_backoff_ms)
      throw std::invalid_argument("MarketFeed: bad backoff policy");
    if (options_.jitter_frac < 0.0 || options_.jitter_frac > 1.0)
      throw std::invalid_argument("MarketFeed: jitter_frac in [0, 1]");
  }
}

FeedObservation MarketFeed::poll(std::size_t hour) {
  FeedObservation obs;
  obs.observed_hour =
      injector_ ? injector_->observed_market_hour(hour) : hour;
  if (obs.observed_hour == hour) return obs;  // raw feed is fresh

  // An earlier retry already re-established the connection for this
  // interval: the data is fresh even though the injector says frozen.
  if (hour < recovered_until_) {
    obs.observed_hour = hour;
    return obs;
  }

  if (!options_.enabled()) {
    obs.stale = true;  // legacy frozen feed: stale for the whole interval
    return obs;
  }

  // Re-poll with exponential backoff. Each attempt consumes exactly two
  // draws (jitter, then success), so the stream position after the hour
  // depends only on how many attempts ran — deterministic given the plan.
  double wait = options_.base_backoff_ms;
  for (int attempt = 0; attempt < options_.max_attempts_per_hour; ++attempt) {
    ++obs.attempts;
    const double jitter =
        1.0 + options_.jitter_frac * (2.0 * rng_.uniform() - 1.0);
    obs.backoff_ms += std::min(wait, options_.max_backoff_ms) * jitter;
    wait *= options_.backoff_multiplier;
    if (rng_.bernoulli(options_.retry_success_prob)) {
      obs.recovered = true;
      break;
    }
  }

  if (!obs.recovered) {
    obs.stale = true;
    return obs;
  }

  // The reconnect landed: this hour plans on fresh data, and so does the
  // rest of the injected interval (the new connection persists until the
  // next distinct fault).
  obs.observed_hour = hour;
  std::size_t end = hour + 1;
  while (injector_ && injector_->prices_stale(end)) ++end;
  recovered_until_ = end;
  return obs;
}

MarketFeed::State MarketFeed::state() const noexcept {
  return {rng_.state(), recovered_until_};
}

void MarketFeed::restore(const State& state) noexcept {
  rng_.set_state(state.rng);
  recovered_until_ = state.recovered_until;
}

}  // namespace billcap::core
