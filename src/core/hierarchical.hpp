#pragma once

#include <array>
#include <span>
#include <vector>

#include "core/bill_capper.hpp"

namespace billcap::core {

/// A group of sites managed by one regional capper.
struct Region {
  std::string name;
  std::vector<std::size_t> site_indices;  ///< into the global site catalog
};

/// Outcome of one hierarchical invocation: the merged global view plus the
/// per-region decisions.
struct HierarchicalOutcome {
  CappingOutcome::Mode mode = CappingOutcome::Mode::kUncapped;  ///< worst mode
  double served_premium = 0.0;
  double served_ordinary = 0.0;
  double predicted_cost = 0.0;
  double dropped_capacity = 0.0;
  std::vector<double> site_lambda;           ///< global site order
  std::vector<CappingOutcome> region_outcomes;

  /// Per-region failure surfacing: which regions degraded and why, so the
  /// merge does not reduce a region-local solver failure to just the worst
  /// Mode. `failure` is the first degraded region's root cause (region
  /// order — deterministic), `failure_tally` counts every degraded region
  /// by reason, `degraded_regions` lists their indices.
  bool degraded = false;
  FailureReason failure = FailureReason::kNone;
  std::vector<std::size_t> degraded_regions;
  std::array<std::size_t, kFailureReasonCount> failure_tally{};
};

/// The two-level bill capping architecture sketched in Section IX: a thin
/// coordinator splits each hour's workload and budget across regions in
/// proportion to regional believed capacity, and every region runs the
/// full two-step algorithm on its own (small) site set. Complexity per
/// region stays exponential only in that region's sites x price levels, so
/// the network scales by adding regions.
///
/// The price of decentralization is coordination loss: a region cannot
/// shift load or budget to another region mid-hour. The hierarchical_scale
/// bench quantifies both the speedup and the optimality gap against the
/// flat capper.
class HierarchicalCapper {
 public:
  /// Every site must belong to exactly one region; throws otherwise.
  HierarchicalCapper(const std::vector<datacenter::DataCenter>& sites,
                     const std::vector<market::PricingPolicy>& policies,
                     std::vector<Region> regions,
                     OptimizerOptions options = {});

  std::size_t num_regions() const noexcept { return regions_.size(); }

  const Region& region(std::size_t r) const { return regions_.at(r); }

  /// The persistent per-region capper (its solver arenas carry warm state
  /// hour over hour). Not thread-safe: at most one thread may drive a given
  /// region's capper at a time — the FleetController shards exactly one
  /// task per region per hour for this reason.
  const BillCapper& region_capper(std::size_t r) const {
    return region_cappers_.at(r);
  }

  /// Splits and decides. Arguments mirror BillCapper::decide.
  HierarchicalOutcome decide(double lambda_premium, double lambda_ordinary,
                             std::span<const double> other_demand_mw,
                             double hourly_budget) const;

 private:
  const std::vector<datacenter::DataCenter>& sites_;
  const std::vector<market::PricingPolicy>& policies_;
  std::vector<Region> regions_;
  OptimizerOptions options_;
  // Per-region materialized catalogs (BillCapper holds references), then
  // one persistent capper per region so each region's solver arenas carry
  // hour-over-hour warm state (OptimizerOptions::warm_hourly_solver).
  // Built strictly after the catalogs are fully populated: the cappers
  // reference catalog elements, which must not move again.
  std::vector<std::vector<datacenter::DataCenter>> region_sites_;
  std::vector<std::vector<market::PricingPolicy>> region_policies_;
  std::vector<BillCapper> region_cappers_;
};

/// Convenience: partitions sites into contiguous regions of at most
/// `max_sites_per_region` sites.
std::vector<Region> contiguous_regions(std::size_t num_sites,
                                       std::size_t max_sites_per_region);

}  // namespace billcap::core
