#include "core/fleet.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>
#include <future>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "util/csv.hpp"
#include "util/rng.hpp"

namespace billcap::core {

const char* to_string(ChunkStatus status) noexcept {
  switch (status) {
    case ChunkStatus::kOk: return "ok";
    case ChunkStatus::kDegraded: return "degraded";
    case ChunkStatus::kQuarantined: return "quarantined";
    case ChunkStatus::kRegionDown: return "region_down";
  }
  return "unknown";
}

/// Everything one chunk task needs, materialized before dispatch so the
/// task only reads its own slot (no shared mutable state, no dangling
/// spans: the inputs vector outlives every future).
struct FleetController::ChunkInput {
  std::size_t region = 0;
  std::size_t hour = 0;
  bool down = false;
  bool quarantined = false;
  double premium = 0.0;
  double ordinary = 0.0;
  double budget = 0.0;
  std::vector<double> demand;           ///< region-local site order
  std::vector<std::uint8_t> available;  ///< region-local site order
  long max_nodes = -1;
  double time_limit_ms = -1.0;
  std::size_t arena_bytes = 0;
};

FleetController::FleetController(
    const std::vector<datacenter::DataCenter>& sites,
    const std::vector<market::PricingPolicy>& policies,
    std::vector<Region> regions, FleetOptions options, util::ThreadPool* pool)
    : sites_(sites),
      policies_(policies),
      options_(options),
      pool_(pool),
      num_sites_(sites.size()),
      hier_(sites, policies, std::move(regions), options.optimizer),
      quarantine_(hier_.num_regions()) {}

bool FleetController::region_quarantined(std::size_t region,
                                         std::size_t hour) const {
  return hour < quarantine_.at(region).quarantined_until;
}

ChunkOutcome FleetController::run_chunk(const ChunkInput& in) const {
  ChunkOutcome chunk;
  chunk.region = in.region;
  if (in.down) {
    // RegionOutage: nothing to solve. The region sheds its whole share —
    // locally; the coordinator already redistributed by giving it zero
    // believed capacity, so in.premium/in.ordinary are the residual share.
    chunk.status = ChunkStatus::kRegionDown;
    chunk.outcome.mode = CappingOutcome::Mode::kPremiumOnly;
    chunk.outcome.hourly_budget = in.budget;
    chunk.outcome.degraded = true;
    chunk.outcome.dropped_capacity = in.premium + in.ordinary;
    return chunk;
  }

  const BillCapper& capper = hier_.region_capper(in.region);
  DecideOptions opts;
  opts.site_available = in.available;
  opts.time_limit_ms = in.time_limit_ms;
  opts.max_nodes = in.max_nodes;
  opts.max_arena_bytes = in.arena_bytes;
  opts.standby = in.quarantined;
  try {
    if (chunk_fault_hook) chunk_fault_hook(in.region, in.hour);
    chunk.outcome =
        capper.decide(in.premium, in.ordinary, in.demand, in.budget, opts);
    if (in.quarantined) {
      // Quarantine is a policy state, not a fresh failure: the standby
      // solve is degraded by construction but must not feed the ladder.
      chunk.status = ChunkStatus::kQuarantined;
    } else if (chunk.outcome.degraded) {
      chunk.status = ChunkStatus::kDegraded;
      chunk.failure = chunk.outcome.failure;
    }
  } catch (const std::exception&) {
    // The chunk envelope: a thrown solve degrades this region to
    // premium-only standby via the greedy fallback. The fleet hour
    // continues; FailureReason::kThrown is the chunk's root cause.
    chunk.status = ChunkStatus::kDegraded;
    chunk.failure = FailureReason::kThrown;
    DecideOptions standby;
    standby.site_available = in.available;
    standby.standby = true;
    try {
      chunk.outcome = capper.decide(in.premium, in.ordinary, in.demand,
                                    in.budget, standby);
    } catch (...) {  // billcap-lint: allow(catch-all): FailureReason::kThrown
      // is already tagged above; the chunk serves zero this hour.
      chunk.outcome = CappingOutcome{};
      chunk.outcome.mode = CappingOutcome::Mode::kPremiumOnly;
      chunk.outcome.hourly_budget = in.budget;
    }
    chunk.outcome.degraded = true;
    chunk.outcome.failure = FailureReason::kThrown;
  }
  return chunk;
}

FleetHourOutcome FleetController::decide_hour(
    std::size_t hour, double lambda_premium, double lambda_ordinary,
    std::span<const double> other_demand_mw, double hourly_budget,
    const FaultInjector* injector) {
  if (other_demand_mw.size() != num_sites_)
    throw std::invalid_argument("FleetController: demand size mismatch");
  const std::size_t num_regions = hier_.num_regions();

  // ---- coordinator (serial): availability, shares, chunk inputs --------
  std::vector<std::uint8_t> site_up(num_sites_, 1);
  if (injector)
    for (std::size_t i = 0; i < num_sites_; ++i)
      site_up[i] = injector->site_available(i, hour) ? 1 : 0;

  std::vector<ChunkInput> inputs(num_regions);
  std::vector<double> capacity(num_regions, 0.0);
  double total_capacity = 0.0;
  for (std::size_t r = 0; r < num_regions; ++r) {
    ChunkInput& in = inputs[r];
    in.region = r;
    in.hour = hour;
    in.down = injector != nullptr && injector->region_down(r, hour);
    in.quarantined =
        !in.down && hour < quarantine_[r].quarantined_until;
    const Region& region = hier_.region(r);
    in.demand.reserve(region.site_indices.size());
    in.available.reserve(region.site_indices.size());
    for (std::size_t i : region.site_indices) {
      const std::uint8_t up = in.down ? 0 : site_up[i];
      in.demand.push_back(other_demand_mw[i]);
      in.available.push_back(up);
      if (up != 0)
        capacity[r] += make_site_model(sites_[i], policies_[i],
                                       other_demand_mw[i],
                                       options_.optimizer.model_cooling_network)
                           .lambda_max;
    }
    total_capacity += capacity[r];
    in.max_nodes = options_.deadline.max_nodes > 0
                       ? options_.deadline.max_nodes
                       : -1;
    if (injector != nullptr) {
      const long stall = injector->chunk_node_budget(r, hour);
      if (stall > 0)
        in.max_nodes = in.max_nodes > 0 ? std::min(in.max_nodes, stall)
                                        : stall;
      in.arena_bytes = injector->chunk_arena_bytes(r, hour);
    }
    if (options_.deadline.wall_clock_ms > 0.0)
      in.time_limit_ms = options_.deadline.wall_clock_ms;
  }

  FleetHourOutcome out;
  out.site_lambda.assign(num_sites_, 0.0);
  out.chunks.resize(num_regions);

  if (total_capacity > 0.0) {
    for (std::size_t r = 0; r < num_regions; ++r) {
      const double share = capacity[r] / total_capacity;
      inputs[r].premium = lambda_premium * share;
      inputs[r].ordinary = lambda_ordinary * share;
      inputs[r].budget = hourly_budget * share;
    }

    // ---- sharded chunk solves ------------------------------------------
    // One task per region; each region's warm solver arena is touched by
    // exactly one task, results land in indexed slots, and the reduction
    // below walks them in region order — bitwise-identical for any thread
    // count (and for no pool at all).
    if (pool_ != nullptr && num_regions > 1) {
      std::vector<std::future<util::TaskResult<ChunkOutcome>>> futures;
      futures.reserve(num_regions);
      for (std::size_t r = 0; r < num_regions; ++r)
        futures.push_back(pool_->submit_noexcept(
            [this, &in = inputs[r]] { return run_chunk(in); }));
      for (std::size_t r = 0; r < num_regions; ++r) {
        util::TaskResult<ChunkOutcome> result = futures[r].get();
        if (result.ok) {
          out.chunks[r] = std::move(result.value);
        } else {
          // The envelope itself failed (run_chunk catches solve trouble,
          // so this is a harness-level fault). Same contract: the chunk
          // sheds locally with FailureReason::kThrown.
          out.chunks[r].region = r;
          out.chunks[r].status = ChunkStatus::kDegraded;
          out.chunks[r].failure = FailureReason::kThrown;
          out.chunks[r].outcome.mode = CappingOutcome::Mode::kPremiumOnly;
          out.chunks[r].outcome.hourly_budget = inputs[r].budget;
          out.chunks[r].outcome.degraded = true;
          out.chunks[r].outcome.failure = FailureReason::kThrown;
        }
      }
    } else {
      for (std::size_t r = 0; r < num_regions; ++r)
        out.chunks[r] = run_chunk(inputs[r]);
    }
  } else {
    // Nothing can serve anywhere (every region down): the hour completes
    // with zero service rather than aborting.
    for (std::size_t r = 0; r < num_regions; ++r) {
      out.chunks[r] = run_chunk(inputs[r]);
      if (!inputs[r].down) {
        out.chunks[r].status = ChunkStatus::kDegraded;
        out.chunks[r].failure = FailureReason::kInfeasible;
      }
    }
  }

  // ---- ordered reduction ------------------------------------------------
  for (std::size_t r = 0; r < num_regions; ++r) {
    const ChunkOutcome& chunk = out.chunks[r];
    out.served_premium += chunk.outcome.served_premium;
    out.served_ordinary += chunk.outcome.served_ordinary;
    out.predicted_cost += chunk.outcome.allocation.predicted_cost;
    out.dropped_capacity += chunk.outcome.dropped_capacity;
    out.mode = std::max(out.mode, chunk.outcome.mode);
    const Region& region = hier_.region(r);
    const auto lambdas = chunk.outcome.allocation.lambda_vector();
    if (lambdas.size() == region.site_indices.size())
      for (std::size_t k = 0; k < region.site_indices.size(); ++k)
        out.site_lambda[region.site_indices[k]] = lambdas[k];
    switch (chunk.status) {
      case ChunkStatus::kOk: break;
      case ChunkStatus::kDegraded: ++out.degraded_chunks; break;
      case ChunkStatus::kQuarantined: ++out.quarantined_chunks; break;
      case ChunkStatus::kRegionDown: ++out.region_down_chunks; break;
    }
  }

  // ---- quarantine ladder (serial, region order) -------------------------
  const std::size_t trip = std::max<std::size_t>(
      1, options_.quarantine.trip_failures);
  for (std::size_t r = 0; r < num_regions; ++r) {
    if (out.chunks[r].status != ChunkStatus::kDegraded) continue;
    QuarantineState& q = quarantine_[r];
    q.recent_failures.push_back(hour);
    const std::size_t window = options_.quarantine.window_hours;
    std::erase_if(q.recent_failures, [hour, window](std::size_t stamp) {
      return stamp + window <= hour;
    });
    if (q.recent_failures.size() >= trip) {
      q.quarantined_until = hour + 1 + options_.quarantine.quarantine_hours;
      q.recent_failures.clear();
    }
  }
  return out;
}

MonthlyResult FleetController::run_month(const FleetMonthConfig& config) {
  MonthlyResult result;
  result.strategy = Strategy::kCostCapping;
  result.monthly_budget = config.hourly_budget *
                          static_cast<double>(config.hours);
  const FaultInjector injector(config.faults, num_sites_, num_regions(),
                               config.hours);
  // All draws happen here, serially, in hour order: the scenario is a pure
  // function of the seed, and chunk dispatch only ever consumes it.
  util::Rng rng(config.seed ^ 0xf1ee7c0117ULL);
  std::vector<double> demand(num_sites_, 0.0);
  constexpr double kTwoPi = 6.283185307179586;
  for (std::size_t h = 0; h < config.hours; ++h) {
    const double diurnal =
        1.0 + 0.35 * std::sin(kTwoPi * static_cast<double>(h % 24) / 24.0);
    const double premium =
        config.base_premium * diurnal * rng.uniform(0.9, 1.1);
    const double ordinary =
        config.base_ordinary * diurnal * rng.uniform(0.8, 1.2);
    for (double& d : demand)
      d = config.base_demand_mw * rng.uniform(0.7, 1.3);

    const FleetHourOutcome hour_out = decide_hour(
        h, premium, ordinary, demand, config.hourly_budget, &injector);

    HourRecord rec;
    rec.hour = h;
    rec.arrivals = premium + ordinary;
    rec.premium_arrivals = premium;
    rec.ordinary_arrivals = ordinary;
    rec.served_premium = hour_out.served_premium;
    rec.served_ordinary = hour_out.served_ordinary;
    rec.hourly_budget = config.hourly_budget;
    rec.cost = hour_out.predicted_cost;
    rec.predicted_cost = hour_out.predicted_cost;
    rec.mode = hour_out.mode;
    rec.site_lambda = hour_out.site_lambda;
    rec.sites_down = injector.sites_down(h);
    rec.degraded =
        hour_out.degraded_chunks + hour_out.region_down_chunks > 0;
    for (const ChunkOutcome& chunk : hour_out.chunks) {
      if (chunk.status == ChunkStatus::kDegraded) {
        if (rec.failure == FailureReason::kNone) rec.failure = chunk.failure;
        result.chunk_failure_tally[static_cast<std::size_t>(chunk.failure)] +=
            1;
      }
      rec.used_incumbent = rec.used_incumbent || chunk.outcome.used_incumbent;
      rec.used_heuristic = rec.used_heuristic || chunk.outcome.used_heuristic;
    }

    result.total_cost += rec.cost;
    result.total_premium_arrivals += rec.premium_arrivals;
    result.total_ordinary_arrivals += rec.ordinary_arrivals;
    result.total_served_premium += rec.served_premium;
    result.total_served_ordinary += rec.served_ordinary;
    if (rec.degraded) {
      ++result.degraded_hours;
      result.failure_tally[static_cast<std::size_t>(rec.failure)] += 1;
    }
    if (rec.used_incumbent) ++result.incumbent_hours;
    if (rec.used_heuristic) ++result.heuristic_hours;
    if (rec.sites_down > 0 || hour_out.region_down_chunks > 0)
      ++result.outage_hours;
    result.degraded_chunks += hour_out.degraded_chunks;
    result.quarantined_chunks += hour_out.quarantined_chunks;
    result.region_down_chunks += hour_out.region_down_chunks;
    result.hours.push_back(std::move(rec));
  }
  return result;
}

namespace {

std::uint64_t fnv1a_mix(std::uint64_t hash, std::uint64_t value) noexcept {
  for (int i = 0; i < 8; ++i) {
    hash ^= (value >> (8 * i)) & 0xffu;
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

std::string hex64(std::uint64_t value) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(value));
  return buf;
}

}  // namespace

std::string fleet_month_csv(const MonthlyResult& result) {
  std::ostringstream os;
  os << "hour,mode,degraded,failure,premium_arrivals,ordinary_arrivals,"
        "served_premium,served_ordinary,budget,predicted_cost,lambda_hash\n";
  for (const HourRecord& rec : result.hours) {
    std::uint64_t hash = 0xcbf29ce484222325ULL;
    for (double v : rec.site_lambda)
      hash = fnv1a_mix(hash, std::bit_cast<std::uint64_t>(v));
    os << rec.hour << ',' << to_string(rec.mode) << ','
       << (rec.degraded ? 1 : 0) << ',' << to_string(rec.failure) << ','
       << util::format_double(rec.premium_arrivals) << ','
       << util::format_double(rec.ordinary_arrivals) << ','
       << util::format_double(rec.served_premium) << ','
       << util::format_double(rec.served_ordinary) << ','
       << util::format_double(rec.hourly_budget) << ','
       << util::format_double(rec.predicted_cost) << ','
       << hex64(hash) << '\n';
  }
  os << "total,," << result.degraded_chunks << ','
     << result.quarantined_chunks << ',' << result.region_down_chunks << ','
     << util::format_double(result.total_cost) << ','
     << util::format_double(result.total_served_premium) << ','
     << util::format_double(result.total_served_ordinary) << ",,,\n";
  return os.str();
}

}  // namespace billcap::core
