#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace billcap::core {

/// The budgeter (Section III / VI-B): breaks a monthly electricity budget
/// into hourly budgets. At the start of every invocation period it takes
/// what is left of the monthly budget (so unused budget from earlier hours
/// carries over, and overruns shrink later budgets) and assigns this hour
/// the share given by the workload's historical hour-of-week weight
/// relative to all remaining hours of the month:
///
///   budget_h = remaining * w(h) / sum_{h' = h..H-1} w(h')
///
/// where w(.) is the hour-of-week weight learned from the previous weeks'
/// trace (workload::hour_of_week_weights). Within a week this reproduces
/// the paper's carry-over behaviour (Figure 6's growing hourly budget).
class Budgeter {
 public:
  /// `monthly_budget` in $; `hour_of_week_weights` must have 168 entries
  /// summing to ~1; `horizon_hours` is the number of invocation periods in
  /// the budgeting period (720 for the November evaluation).
  /// `phase_offset_hours` is the hour-of-week of the budgeting period's
  /// first hour (the weight table is slotted on the global calendar, while
  /// hour indices here are month-local): November starting on a Thursday
  /// has offset 72.
  Budgeter(double monthly_budget, std::vector<double> hour_of_week_weights,
           std::size_t horizon_hours, std::size_t phase_offset_hours = 0);

  double monthly_budget() const noexcept { return monthly_budget_; }
  std::size_t horizon_hours() const noexcept { return horizon_; }

  /// Budget for hour `hour_index` (0-based within the month) given the
  /// electricity cost already spent in hours [0, hour_index). Never
  /// negative; returns 0 once the month is overspent.
  double hourly_budget(std::size_t hour_index, double spent_so_far) const;

  /// The static weight share of an hour (before carry-over), useful for
  /// reporting.
  double weight_of_hour(std::size_t hour_index) const;

 private:
  double monthly_budget_;
  std::vector<double> weights_;       // 168 hour-of-week weights
  std::vector<double> suffix_weight_; // sum of weights for hours >= h
  std::size_t horizon_;
  std::size_t phase_offset_;
};

}  // namespace billcap::core
