#pragma once

#include <span>
#include <vector>

#include "datacenter/datacenter.hpp"
#include "datacenter/heterogeneous.hpp"
#include "lp/milp.hpp"
#include "lp/piecewise.hpp"
#include "lp/problem.hpp"
#include "market/pricing_policy.hpp"

namespace billcap::core {

/// Request rates inside the MILPs are expressed in giga-requests/hour so
/// the tableau mixes magnitudes of at most ~1e4 (requests ~1e11-1e12/h
/// against power in tens of MW would otherwise span 14 orders of
/// magnitude).
inline constexpr double kLambdaScale = 1e9;

/// What an optimizer believes about one site: the affine power model, the
/// site's limits, and the piecewise-affine hourly cost as a function of the
/// site's own power draw. Cost Capping builds this with the full
/// server+network+cooling model and the real locational step prices; the
/// Min-Only baselines build it with server-only power and a flat price.
struct SiteModel {
  double lambda_max = 0.0;          ///< requests/hour the site can absorb
  double power_slope = 0.0;         ///< MW per (request/hour)
  double power_intercept_mw = 0.0;  ///< fixed MW while the site is active
  double power_cap_mw = 0.0;        ///< Ps_i
  lp::PiecewiseAffine cost_curve;   ///< $(p) over p in [0, effective cap]

  /// Optional heterogeneous power curve: one (capacity, marginal-slope)
  /// segment per server class, cheapest first (Section IX extension).
  /// Empty = homogeneous site described by power_slope alone. Because site
  /// cost is increasing in power, a cost-minimizing solve fills cheaper
  /// segments first without extra binaries.
  struct PowerSegment {
    double lambda_cap = 0.0;  ///< requests/hour the segment can absorb
    double slope = 0.0;       ///< MW per (request/hour)
  };
  std::vector<PowerSegment> power_segments;
};

/// Knobs shared by the optimizers.
struct OptimizerOptions {
  /// Model cooling and networking power (true for Cost Capping; false
  /// reproduces the baselines' first limitation and the power-model
  /// ablation).
  bool model_cooling_network = true;
  /// Carry each solver's final basis from one hour to the next: BillCapper
  /// keeps one lp::ArenaSolver per solve role with warm-across-solves
  /// enabled, so consecutive hours that share the MILP's row structure
  /// (same sites up, same background demand) re-solve by dual simplex from
  /// the previous optimum instead of two-phase from scratch. Structure
  /// changes are detected and fall back to a cold solve automatically.
  ///
  /// OFF by default: like --replan-deadline-ms, enabling this trades
  /// bitwise kill/resume reproducibility for speed (a resumed month starts
  /// with empty arenas). Within one process, results stay deterministic
  /// and agree with the cold path to the solver's gap tolerances.
  bool warm_hourly_solver = false;
  lp::MilpOptions milp;
};

/// Builds the believed model of one site under a given pricing policy and
/// background demand. The cost curve is capped at the smaller of the power
/// cap and the power at full server capacity.
SiteModel make_site_model(const datacenter::DataCenter& site,
                          const market::PricingPolicy& policy,
                          double other_demand_mw,
                          bool model_cooling_network = true);

/// Believed model of a heterogeneous site (Section IX extension): the
/// power curve carries one segment per server class; the cost curve uses
/// the same locational step prices.
SiteModel make_heterogeneous_site_model(
    const datacenter::HeterogeneousSite& site,
    const market::PricingPolicy& policy, double other_demand_mw);

/// Variable handles for one site inside an allocation MILP.
struct SiteVars {
  int lambda = -1;  ///< dispatched rate, giga-requests/hour
  int active = -1;  ///< binary: site powered on
  int power = -1;   ///< site draw, MW
  lp::PiecewiseVars cost;  ///< piecewise cost encoding; cost.x == power
  std::vector<int> lambda_segments;  ///< per-class rates (heterogeneous)
};

/// The per-site skeleton shared by cost minimization (Section IV) and
/// throughput maximization (Section V):
///   lambda_i <= lambda_max_i * y_i           (activation)
///   p_i = slope_i * lambda_i + intercept_i * y_i
///   p_i <= Ps_i                               (power capping, constraint b)
///   cost_i = piecewise(p_i)                   (locational pricing)
/// The response-time constraint (c) is embedded in the power model: the
/// affine server requirement already sizes the site for R_i <= Rs_i.
/// The caller adds the demand coupling and the objective.
struct AllocationFormulation {
  lp::Problem problem;
  std::vector<SiteVars> vars;
};
AllocationFormulation build_allocation_formulation(
    std::span<const SiteModel> sites);

/// Per-site outcome decoded from a MILP solution.
struct SiteOutcome {
  double lambda = 0.0;    ///< requests/hour (unscaled)
  double power_mw = 0.0;  ///< believed power draw
  double cost = 0.0;      ///< believed hourly cost ($)
  bool active = false;
};

/// Result of one optimizer invocation. `predicted_cost` is the optimizer's
/// own belief; ground truth comes from core::evaluate_allocation.
struct AllocationResult {
  lp::SolveStatus status = lp::SolveStatus::kInfeasible;
  std::vector<SiteOutcome> sites;
  double total_lambda = 0.0;
  double predicted_cost = 0.0;
  long nodes = 0;
  long iterations = 0;
  /// True when `sites` holds a feasible allocation: a proven optimum, the
  /// best incumbent of a limit-terminated branch-and-bound, or the greedy
  /// fallback heuristic. Degraded-mode consumers check this, not ok().
  bool feasible = false;
  /// True when the allocation came from the greedy fallback heuristic
  /// rather than a MILP solve.
  bool heuristic = false;

  bool ok() const noexcept { return status == lp::SolveStatus::kOptimal; }
  /// Feasible-but-not-proven-optimal: usable by the degraded control loop.
  bool usable() const noexcept { return ok() || feasible; }
  /// The per-site request rates as a plain vector (simulator interface).
  std::vector<double> lambda_vector() const;
};

/// Decodes a solved formulation into per-site outcomes.
AllocationResult decode_solution(const AllocationFormulation& formulation,
                                 std::span<const SiteModel> sites,
                                 const lp::Solution& solution);

/// Total request rate the believed models can absorb (sum of lambda_max
/// additionally limited by each site's power cap).
double system_capacity(std::span<const SiteModel> sites);

}  // namespace billcap::core
