#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/exit_codes.hpp"
#include "util/rng.hpp"

namespace billcap::core {

/// How a supervised child ended, from the supervisor's point of view.
enum class ChildExit {
  kSuccess,    ///< exit 0: the month is complete
  kStopped,    ///< exit kExitStopped: graceful stop / standby chunk done
  kUsage,      ///< exit kExitUsage: restarting cannot fix a bad config
  kFailure,    ///< any other nonzero exit (runtime error, QoS breach...)
  kSignalled,  ///< killed by a signal: crash, OOM-kill, sanitizer abort
};
const char* to_string(ChildExit exit) noexcept;

/// Maps a waitpid()-style status word onto the ChildExit taxonomy.
ChildExit classify_wait_status(int wait_status) noexcept;

/// Restart policy knobs. Defaults suit an hourly controller whose child
/// normally lives for many simulated hours per process.
struct SupervisorOptions {
  /// Give up after this many failure-triggered restarts within any
  /// sliding `restart_window_s` span (a crash-looping controller must not
  /// hammer the machine forever).
  std::size_t restart_budget = 100;
  double restart_window_s = 3600.0;

  /// Exponential backoff between restarts, with deterministic jitter drawn
  /// from `seed` (so two supervisors on one host do not restart in
  /// lockstep, yet a test can predict the exact delays).
  double backoff_base_ms = 50.0;
  double backoff_multiplier = 2.0;
  double backoff_max_ms = 5000.0;
  double backoff_jitter_frac = 0.2;
  std::uint64_t seed = 2012;

  /// After this many *consecutive* restarts that made zero checkpoint
  /// progress, escalate to the degraded standby (premium-only, no MILP).
  std::size_t escalate_after = 3;
  /// Simulated hours each standby attempt commits before handing control
  /// back to the primary for another try.
  std::size_t standby_hours = 4;
};

/// What the supervisor should do after a child exit.
struct SupervisorDecision {
  enum class Action {
    kRestartPrimary,  ///< spawn the primary again after `delay_ms`
    kRunStandby,      ///< escalated: spawn the degraded standby child
    kStop,            ///< clean end (month complete or operator stop)
    kGiveUp,          ///< restart budget exhausted / unfixable failure
  };
  Action action = Action::kStop;
  double delay_ms = 0.0;
  std::string reason;
};

/// The restart state machine, separated from process plumbing so it can be
/// driven with an injected clock: sliding-window restart budget,
/// exponential backoff with deterministic jitter, and escalation to
/// standby after repeated zero-progress failures. De-escalates as soon as
/// a *primary* attempt advances the checkpoint again.
class SupervisorPolicy {
 public:
  explicit SupervisorPolicy(SupervisorOptions options);

  /// Feeds one child exit into the machine. `was_standby` says which child
  /// ran, `hours_advanced` how many simulated hours its attempt committed
  /// (from checkpoint probes), `now_s` the monotonic time of the exit.
  SupervisorDecision on_child_exit(ChildExit exit, bool was_standby,
                                   std::size_t hours_advanced, double now_s);

  bool escalated() const noexcept { return escalated_; }
  std::size_t consecutive_no_progress() const noexcept {
    return consecutive_no_progress_;
  }

 private:
  double next_backoff_ms();

  SupervisorOptions options_;
  util::Rng rng_;
  std::vector<double> restart_times_s_;  ///< failure times inside the window
  std::size_t consecutive_no_progress_ = 0;
  bool escalated_ = false;
};

/// A child process to spawn: program path plus argv[1..].
struct ChildSpec {
  std::string program;
  std::vector<std::string> args;
};

/// Spawns the child (fork/execv), waits for it, and returns the raw
/// waitpid status word. The child's pid is published so the supervisor's
/// SIGTERM/SIGINT handler can forward the signal. Throws
/// std::runtime_error when the platform cannot spawn processes.
int run_child(const ChildSpec& spec);

/// Best-effort progress probe: next_hour of the newest checkpoint
/// generation that loads cleanly, or 0 when none does. Serve-daemon
/// checkpoints are probed too (next_tick); the restart policy only
/// compares deltas, so any monotone progress counter serves.
std::size_t probe_checkpoint_hour(const std::string& checkpoint_path,
                                  std::size_t keep_generations) noexcept;

/// Seams for tests: every interaction with the outside world goes through
/// one of these. Unset members get the real implementation (fork/exec,
/// steady_clock, nanosleep, checkpoint probe, stderr logging).
struct SuperviseHooks {
  std::function<int(const ChildSpec&, bool standby)> run;
  std::function<double()> now_s;
  std::function<void(double)> sleep_ms;
  std::function<std::size_t()> checkpoint_hour;
  std::function<void(const std::string&)> log;
};

/// What a supervise run did, for reporting and assertions.
struct SuperviseReport {
  int exit_code = kExitSuccess;  ///< what the supervisor should exit with
  std::size_t primary_runs = 0;
  std::size_t standby_runs = 0;
  std::size_t restarts = 0;  ///< failure-triggered respawns
  bool escalated = false;    ///< standby mode was entered at least once
  bool gave_up = false;
  std::vector<std::string> events;  ///< human-readable decision log
};

/// The watchdog: runs the primary child in a loop, classifies each exit,
/// consults the policy, and either restarts (with backoff), escalates to
/// the standby child, stops, or gives up. SIGTERM/SIGINT received by the
/// supervisor are forwarded to the live child; the ensuing graceful child
/// exit ends the loop with kExitStopped.
class Supervisor {
 public:
  Supervisor(SupervisorOptions options, ChildSpec primary, ChildSpec standby,
             std::string checkpoint_path, std::size_t keep_generations,
             SuperviseHooks hooks = {});

  SuperviseReport run();

 private:
  SupervisorPolicy policy_;
  ChildSpec primary_;
  ChildSpec standby_;
  std::string checkpoint_path_;
  std::size_t keep_generations_ = 1;
  SuperviseHooks hooks_;
};

}  // namespace billcap::core
