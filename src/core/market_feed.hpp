#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

#include "core/fault_injector.hpp"
#include "util/rng.hpp"

namespace billcap::core {

/// Retry policy of the market-data client. The legacy behaviour (PR 1's
/// frozen feed: stale for the whole injected interval) is the default —
/// `retry_success_prob == 0` disables retrying entirely and consumes no
/// randomness, keeping fault-free and frozen-feed runs bit-identical to
/// the pre-feed-client code.
struct MarketFeedOptions {
  /// Probability that one re-poll of the broken feed succeeds. Applied per
  /// attempt, so the per-hour recovery probability is
  /// 1 - (1 - p)^max_attempts_per_hour.
  double retry_success_prob = 0.0;
  int max_attempts_per_hour = 5;
  /// Exponential backoff between attempts: attempt k waits
  /// min(base * multiplier^(k-1), max) ms, +/- deterministic jitter drawn
  /// from the feed's own RNG stream (decorrelates reconnect storms).
  double base_backoff_ms = 100.0;
  double backoff_multiplier = 2.0;
  double max_backoff_ms = 2000.0;
  double jitter_frac = 0.1;

  bool enabled() const noexcept { return retry_success_prob > 0.0; }
};

/// What one hour's poll of the market feed produced.
struct FeedObservation {
  std::size_t observed_hour = 0;  ///< whose data the optimizer plans on
  bool stale = false;             ///< planning data is from an earlier hour
  int attempts = 0;               ///< re-polls issued this hour
  bool recovered = false;         ///< a retry landed: fresh data mid-interval
  double backoff_ms = 0.0;        ///< simulated wait spent backing off
};

/// The market-data client between the fault injector's raw feed and the
/// optimizer. A fresh feed passes straight through. When the injector says
/// the feed froze (StaleInterval), the client re-polls with exponential
/// backoff + jitter; a successful retry advances `observed_hour` to the
/// current hour, so the optimizer re-plans on fresh data instead of
/// staying frozen for the whole interval, and the feed stays healthy for
/// the remainder of that interval (the reconnect persists). Deterministic
/// in (seed, sequence of polled hours): randomness is consumed only on
/// hours whose raw feed is stale.
///
/// The client is the one stateful component of the hourly loop, so it
/// exposes its state (RNG lanes + recovery cursor) for durable
/// checkpointing; restoring the state resumes the stream mid-month
/// bit-exactly.
class MarketFeed {
 public:
  /// `injector` may be null (no faults — every poll is fresh); it must
  /// outlive the feed.
  MarketFeed(const FaultInjector* injector, const MarketFeedOptions& options,
             std::uint64_t seed);

  const MarketFeedOptions& options() const noexcept { return options_; }

  /// Polls the feed for `hour` (month-local). Hours must be polled in
  /// nondecreasing order for the recovery cursor to make sense.
  FeedObservation poll(std::size_t hour);

  /// Durable-checkpoint support.
  struct State {
    std::array<std::uint64_t, 4> rng{};
    std::size_t recovered_until = 0;  ///< feed healthy for hours < this
  };
  State state() const noexcept;
  void restore(const State& state) noexcept;

 private:
  const FaultInjector* injector_;
  MarketFeedOptions options_;
  util::Rng rng_;
  std::size_t recovered_until_ = 0;
};

}  // namespace billcap::core
