#include "core/fault_injector.hpp"

#include <algorithm>

#include "util/rng.hpp"

namespace billcap::core {

namespace {

/// Uniform integer duration in [1, 2*mean - 1] (mean preserved, never 0).
std::size_t draw_duration(util::Rng& rng, std::size_t mean_hours) {
  const std::size_t mean = std::max<std::size_t>(1, mean_hours);
  return 1 + static_cast<std::size_t>(rng.below(2 * mean - 1));
}

}  // namespace

FaultPlan generate_fault_plan(const FaultRates& rates,
                              std::size_t horizon_hours,
                              std::size_t num_sites, std::uint64_t seed) {
  FaultPlan plan;
  // One independent stream per fault kind, so enabling one kind never
  // shifts the draws of another (rate sweeps stay comparable).
  util::Rng outage_rng(seed ^ 0x6f75746167655ULL);
  util::Rng stale_rng(seed ^ 0x7374616c65ULL);
  util::Rng shock_rng(seed ^ 0x73686f636bULL);
  util::Rng squeeze_rng(seed ^ 0x73717565657aULL);
  util::Rng crash_rng(seed ^ 0x6372617368ULL);

  for (std::size_t h = 0; h < horizon_hours; ++h) {
    for (std::size_t s = 0; s < num_sites; ++s) {
      if (rates.outage_rate > 0.0 && outage_rng.bernoulli(rates.outage_rate))
        plan.outages.push_back(
            {s, h, draw_duration(outage_rng, rates.outage_mean_hours)});
      if (rates.shock_rate > 0.0 && shock_rng.bernoulli(rates.shock_rate))
        plan.demand_shocks.push_back(
            {s, h, draw_duration(shock_rng, rates.shock_mean_hours),
             rates.shock_multiplier});
    }
    if (rates.stale_rate > 0.0 && stale_rng.bernoulli(rates.stale_rate))
      plan.stale_intervals.push_back(
          {h, draw_duration(stale_rng, rates.stale_mean_hours)});
    if (rates.squeeze_rate > 0.0 && squeeze_rng.bernoulli(rates.squeeze_rate))
      plan.deadline_squeezes.push_back(
          {h, draw_duration(squeeze_rng, rates.squeeze_mean_hours),
           rates.squeeze_ms});
    // Half the crashes strike before the hour's checkpoint commits (the
    // resume recomputes the hour), half after — exercising both recovery
    // paths in rate-driven sweeps.
    if (rates.crash_rate > 0.0 && crash_rng.bernoulli(rates.crash_rate))
      plan.crashes.push_back({h, crash_rng.bernoulli(0.5)});
  }
  return plan;
}

FaultInjector::FaultInjector(const FaultPlan& plan, std::size_t num_sites,
                             std::size_t horizon_hours)
    : FaultInjector(plan, num_sites, 0, horizon_hours) {}

FaultInjector::FaultInjector(const FaultPlan& plan, std::size_t num_sites,
                             std::size_t num_regions,
                             std::size_t horizon_hours)
    : enabled_(!plan.empty()),
      num_sites_(num_sites),
      num_regions_(num_regions),
      horizon_(horizon_hours) {
  if (!enabled_) return;
  down_.assign(num_sites_ * horizon_, 0);
  multiplier_.assign(num_sites_ * horizon_, 1.0);
  deadline_ms_.assign(horizon_, 0.0);
  arrival_mult_.assign(horizon_, 1.0);
  burst_updates_.assign(horizon_, 0);
  observed_hour_.resize(horizon_);
  for (std::size_t h = 0; h < horizon_; ++h) observed_hour_[h] = h;

  const auto clip_end = [this](std::size_t start, std::size_t duration) {
    return std::min(horizon_, start + duration);
  };

  for (const auto& outage : plan.outages) {
    if (outage.site >= num_sites_) continue;
    for (std::size_t h = outage.start_hour;
         h < clip_end(outage.start_hour, outage.duration_hours); ++h)
      down_[outage.site * horizon_ + h] = 1;
  }
  for (const auto& shock : plan.demand_shocks) {
    if (shock.site >= num_sites_) continue;
    for (std::size_t h = shock.start_hour;
         h < clip_end(shock.start_hour, shock.duration_hours); ++h)
      multiplier_[shock.site * horizon_ + h] *= shock.multiplier;
  }
  for (const auto& stale : plan.stale_intervals) {
    // The feed shows the last hour seen before the interval began; an
    // interval starting at hour 0 pins the whole stretch to hour 0's data.
    const std::size_t seen =
        stale.start_hour == 0 ? 0 : stale.start_hour - 1;
    for (std::size_t h = stale.start_hour;
         h < clip_end(stale.start_hour, stale.duration_hours); ++h)
      observed_hour_[h] = std::min(observed_hour_[h], seen);
  }
  for (const auto& crowd : plan.flash_crowds) {
    if (crowd.multiplier <= 0.0) continue;
    for (std::size_t h = crowd.start_hour;
         h < clip_end(crowd.start_hour, crowd.duration_hours); ++h)
      arrival_mult_[h] *= crowd.multiplier;
  }
  for (const auto& burst : plan.feed_bursts) {
    for (std::size_t h = burst.start_hour;
         h < clip_end(burst.start_hour, burst.duration_hours); ++h)
      burst_updates_[h] += burst.updates_per_tick;
  }
  for (const auto& squeeze : plan.deadline_squeezes) {
    if (squeeze.time_limit_ms <= 0.0) continue;
    for (std::size_t h = squeeze.start_hour;
         h < clip_end(squeeze.start_hour, squeeze.duration_hours); ++h)
      deadline_ms_[h] = deadline_ms_[h] <= 0.0
                            ? squeeze.time_limit_ms
                            : std::min(deadline_ms_[h], squeeze.time_limit_ms);
  }

  // Grid-side kinds: arrays sized by the largest index the plan names, so
  // plans for any grid shape fit without the injector knowing the grid.
  for (const auto& outage : plan.line_outages)
    num_lines_ = std::max(num_lines_, outage.line + 1);
  for (const auto& spike : plan.congestion_spikes)
    num_lines_ = std::max(num_lines_, spike.line + 1);
  for (const auto& shock : plan.grid_demand_shocks)
    num_buses_ = std::max(num_buses_, shock.bus + 1);
  if (num_lines_ > 0 || num_buses_ > 0) {
    grid_faulted_.assign(horizon_, 0);
    line_out_.assign(num_lines_ * horizon_, 0);
    line_factor_.assign(num_lines_ * horizon_, 1.0);
    bus_mult_.assign(num_buses_ * horizon_, 1.0);
    for (const auto& outage : plan.line_outages) {
      for (std::size_t h = outage.start_hour;
           h < clip_end(outage.start_hour, outage.duration_hours); ++h) {
        line_out_[outage.line * horizon_ + h] = 1;
        grid_faulted_[h] = 1;
      }
    }
    for (const auto& spike : plan.congestion_spikes) {
      if (spike.limit_factor < 0.0) continue;
      for (std::size_t h = spike.start_hour;
           h < clip_end(spike.start_hour, spike.duration_hours); ++h) {
        double& slot = line_factor_[spike.line * horizon_ + h];
        slot = std::min(slot, spike.limit_factor);
        grid_faulted_[h] = 1;
      }
    }
    for (const auto& shock : plan.grid_demand_shocks) {
      if (shock.multiplier <= 0.0) continue;
      for (std::size_t h = shock.start_hour;
           h < clip_end(shock.start_hour, shock.duration_hours); ++h) {
        bus_mult_[shock.bus * horizon_ + h] *= shock.multiplier;
        grid_faulted_[h] = 1;
      }
    }
  }

  if (num_regions_ == 0) return;
  region_down_.assign(num_regions_ * horizon_, 0);
  stall_nodes_.assign(num_regions_ * horizon_, 0);
  squeeze_bytes_.assign(num_regions_ * horizon_, 0);
  for (const auto& outage : plan.region_outages) {
    if (outage.region >= num_regions_) continue;
    for (std::size_t h = outage.start_hour;
         h < clip_end(outage.start_hour, outage.duration_hours); ++h)
      region_down_[outage.region * horizon_ + h] = 1;
  }
  for (const auto& stall : plan.chunk_stalls) {
    if (stall.region >= num_regions_ || stall.node_budget <= 0) continue;
    for (std::size_t h = stall.start_hour;
         h < clip_end(stall.start_hour, stall.duration_hours); ++h) {
      long& slot = stall_nodes_[stall.region * horizon_ + h];
      slot = slot == 0 ? stall.node_budget : std::min(slot, stall.node_budget);
    }
  }
  for (const auto& squeeze : plan.chunk_squeezes) {
    if (squeeze.region >= num_regions_ || squeeze.arena_bytes == 0) continue;
    for (std::size_t h = squeeze.start_hour;
         h < clip_end(squeeze.start_hour, squeeze.duration_hours); ++h) {
      std::size_t& slot = squeeze_bytes_[squeeze.region * horizon_ + h];
      slot = slot == 0 ? squeeze.arena_bytes
                       : std::min(slot, squeeze.arena_bytes);
    }
  }
}

bool FaultInjector::site_available(std::size_t site,
                                   std::size_t hour) const noexcept {
  if (!enabled_ || site >= num_sites_ || hour >= horizon_) return true;
  return down_[site * horizon_ + hour] == 0;
}

std::size_t FaultInjector::sites_down(std::size_t hour) const noexcept {
  if (!enabled_ || hour >= horizon_) return 0;
  std::size_t count = 0;
  for (std::size_t s = 0; s < num_sites_; ++s)
    count += down_[s * horizon_ + hour];
  return count;
}

bool FaultInjector::prices_stale(std::size_t hour) const noexcept {
  return observed_market_hour(hour) != hour;
}

std::size_t FaultInjector::observed_market_hour(
    std::size_t hour) const noexcept {
  if (!enabled_ || hour >= horizon_) return hour;
  return observed_hour_[hour];
}

double FaultInjector::demand_multiplier(std::size_t site,
                                        std::size_t hour) const noexcept {
  if (!enabled_ || site >= num_sites_ || hour >= horizon_) return 1.0;
  return multiplier_[site * horizon_ + hour];
}

double FaultInjector::solver_deadline_ms(std::size_t hour) const noexcept {
  if (!enabled_ || hour >= horizon_) return 0.0;
  return deadline_ms_[hour];
}

double FaultInjector::arrival_multiplier(std::size_t hour) const noexcept {
  if (!enabled_ || hour >= horizon_) return 1.0;
  return arrival_mult_[hour];
}

std::size_t FaultInjector::feed_burst_updates(std::size_t hour) const noexcept {
  if (!enabled_ || hour >= horizon_) return 0;
  return burst_updates_[hour];
}

bool FaultInjector::region_down(std::size_t region,
                                std::size_t hour) const noexcept {
  if (region_down_.empty() || region >= num_regions_ || hour >= horizon_)
    return false;
  return region_down_[region * horizon_ + hour] != 0;
}

long FaultInjector::chunk_node_budget(std::size_t region,
                                      std::size_t hour) const noexcept {
  if (stall_nodes_.empty() || region >= num_regions_ || hour >= horizon_)
    return 0;
  return stall_nodes_[region * horizon_ + hour];
}

std::size_t FaultInjector::chunk_arena_bytes(std::size_t region,
                                             std::size_t hour) const noexcept {
  if (squeeze_bytes_.empty() || region >= num_regions_ || hour >= horizon_)
    return 0;
  return squeeze_bytes_[region * horizon_ + hour];
}

bool FaultInjector::line_out(std::size_t line, std::size_t hour) const noexcept {
  if (line_out_.empty() || line >= num_lines_ || hour >= horizon_) return false;
  return line_out_[line * horizon_ + hour] != 0;
}

double FaultInjector::line_limit_factor(std::size_t line,
                                        std::size_t hour) const noexcept {
  if (line_factor_.empty() || line >= num_lines_ || hour >= horizon_)
    return 1.0;
  return line_factor_[line * horizon_ + hour];
}

double FaultInjector::bus_demand_multiplier(std::size_t bus,
                                            std::size_t hour) const noexcept {
  if (bus_mult_.empty() || bus >= num_buses_ || hour >= horizon_) return 1.0;
  return bus_mult_[bus * horizon_ + hour];
}

bool FaultInjector::grid_faulted(std::size_t hour) const noexcept {
  if (grid_faulted_.empty() || hour >= horizon_) return false;
  return grid_faulted_[hour] != 0;
}

}  // namespace billcap::core
