#include "core/simulator.hpp"

#include <algorithm>
#include <chrono>
#include <fstream>
#include <stdexcept>

#include "core/baselines.hpp"
#include "core/checkpoint.hpp"
#include "core/fallback_allocator.hpp"
#include "datacenter/catalog.hpp"
#include "market/background_demand.hpp"
#include "util/calendar.hpp"
#include "workload/predictor.hpp"

namespace billcap::core {

namespace {

// solve_ms is timing telemetry only — it is excluded from bitwise-resume
// comparisons (see crash_resume_test).
// billcap-lint: allow(wall-clock): telemetry-only, never checkpointed
double elapsed_ms(std::chrono::steady_clock::time_point start) {
  // billcap-lint: allow(wall-clock): same sanctioned telemetry site
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(end - start).count();
}

/// Folds one finished hour into the month's aggregates.
void accumulate(MonthlyResult& result, HourRecord&& rec) {
  result.total_cost += rec.cost;
  result.total_premium_arrivals += rec.premium_arrivals;
  result.total_ordinary_arrivals += rec.ordinary_arrivals;
  result.total_served_premium += rec.served_premium;
  result.total_served_ordinary += rec.served_ordinary;
  result.max_solve_ms = std::max(result.max_solve_ms, rec.solve_ms);
  result.degraded_hours += rec.degraded ? 1 : 0;
  result.incumbent_hours += rec.used_incumbent ? 1 : 0;
  result.heuristic_hours += rec.used_heuristic ? 1 : 0;
  result.outage_hours += rec.sites_down > 0 ? 1 : 0;
  result.stale_hours += rec.stale_prices ? 1 : 0;
  if (rec.degraded)
    ++result.failure_tally[static_cast<std::size_t>(rec.failure)];
  result.feed_retry_attempts += static_cast<std::size_t>(rec.feed_attempts);
  result.feed_recovered_hours += rec.feed_recovered ? 1 : 0;
  result.closed_loop_hours += rec.coupler_converged ? 1 : 0;
  result.coupler_fallback_hours += rec.coupler_fallback ? 1 : 0;
  result.coupler_iterations += rec.coupler_iterations;
  result.hours.push_back(std::move(rec));
}

}  // namespace

const char* to_string(BudgetWeighting weighting) noexcept {
  switch (weighting) {
    case BudgetWeighting::kHistory: return "history";
    case BudgetWeighting::kUniform: return "uniform";
    case BudgetWeighting::kOracle: return "oracle";
  }
  return "unknown";
}

const char* to_string(Strategy strategy) noexcept {
  switch (strategy) {
    case Strategy::kCostCapping: return "CostCapping";
    case Strategy::kMinOnlyAvg: return "MinOnly(Avg)";
    case Strategy::kMinOnlyLow: return "MinOnly(Low)";
  }
  return "unknown";
}

double MonthlyResult::premium_throughput_ratio() const noexcept {
  return total_premium_arrivals > 0.0
             ? total_served_premium / total_premium_arrivals
             : 1.0;
}

double MonthlyResult::ordinary_throughput_ratio() const noexcept {
  return total_ordinary_arrivals > 0.0
             ? total_served_ordinary / total_ordinary_arrivals
             : 1.0;
}

double MonthlyResult::budget_utilization() const noexcept {
  return monthly_budget > 0.0 ? total_cost / monthly_budget : 0.0;
}

Simulator::Simulator(SimulationConfig config)
    : config_(std::move(config)),
      sites_(datacenter::paper_datacenters()),
      policies_(market::paper_policies(config_.policy_level)),
      budgeter_(1.0, std::vector<double>(168, 1.0 / 168.0), 1) /* replaced */ {
  if (config_.premium_share < 0.0 || config_.premium_share > 1.0)
    throw std::invalid_argument("Simulator: premium_share in [0,1] required");

  const workload::TwoMonthTrace traces =
      workload::paper_two_month_trace(config_.seed, config_.workload);
  history_ = traces.history;
  evaluation_ = traces.evaluation;
  if (config_.history_seed_offset != 0) {
    // Misprediction injection: the budgeter learns from a history month of
    // a different random world (same shape family, different realization).
    history_ = workload::paper_two_month_trace(
                   config_.seed + config_.history_seed_offset,
                   config_.workload)
                   .history;
  }

  // Background demand, phase-aligned with the trace: generate both months
  // and keep the evaluation slice.
  const std::size_t total_hours = history_.hours() + evaluation_.hours();
  const auto full_demand =
      market::paper_background_demand(total_hours, config_.seed ^ 0x9e3779b9);
  demand_.resize(full_demand.size());
  for (std::size_t s = 0; s < full_demand.size(); ++s) {
    demand_[s].assign(full_demand[s].begin() +
                          static_cast<std::ptrdiff_t>(history_.hours()),
                      full_demand[s].end());
  }
  if (demand_.size() != sites_.size())
    throw std::logic_error("Simulator: demand/site count mismatch");

  std::vector<double> weights;
  switch (config_.budget_weighting) {
    case BudgetWeighting::kHistory:
      weights = workload::hour_of_week_weights(history_.series(),
                                               config_.history_weeks);
      break;
    case BudgetWeighting::kUniform:
      weights.assign(util::kHoursPerWeek,
                     1.0 / static_cast<double>(util::kHoursPerWeek));
      break;
    case BudgetWeighting::kOracle: {
      // Perfect foresight: weights from the evaluation month itself. Its
      // phase starts where the history month ended, so prepend a history-
      // length zero pad is unnecessary — hour_of_week_weights assumes the
      // span starts at global hour 0, so rebuild with explicit slotting.
      std::vector<double> sums(util::kHoursPerWeek, 0.0);
      for (std::size_t h = 0; h < evaluation_.hours(); ++h)
        sums[util::hour_of_week(history_.hours() + h)] += evaluation_.at(h);
      double total = 0.0;
      for (double s : sums) total += s;
      for (double& s : sums) s /= total;
      weights = std::move(sums);
      break;
    }
  }
  budgeter_ = Budgeter(config_.monthly_budget, std::move(weights),
                       evaluation_.hours(),
                       util::hour_of_week(history_.hours()));

  // Fault schedule for the evaluation month: per fault kind, explicit plan
  // entries win over rate-driven generation (so `--crash-at` composes with
  // `--fault-stale-rate` instead of silencing it); both derive only from
  // the config, so a run is deterministic in (seed, plan/rates).
  if (config_.fault_rates.any())
    plan_ = generate_fault_plan(config_.fault_rates, evaluation_.hours(),
                                sites_.size(),
                                config_.seed ^ 0xfa0171737c0deULL);
  const FaultPlan& explicit_plan = config_.fault_plan;
  if (!explicit_plan.outages.empty()) plan_.outages = explicit_plan.outages;
  if (!explicit_plan.stale_intervals.empty())
    plan_.stale_intervals = explicit_plan.stale_intervals;
  if (!explicit_plan.demand_shocks.empty())
    plan_.demand_shocks = explicit_plan.demand_shocks;
  if (!explicit_plan.deadline_squeezes.empty())
    plan_.deadline_squeezes = explicit_plan.deadline_squeezes;
  if (!explicit_plan.crashes.empty()) plan_.crashes = explicit_plan.crashes;
  if (!explicit_plan.exit_storms.empty())
    plan_.exit_storms = explicit_plan.exit_storms;
  if (!explicit_plan.checkpoint_corruptions.empty())
    plan_.checkpoint_corruptions = explicit_plan.checkpoint_corruptions;
  if (!explicit_plan.flash_crowds.empty())
    plan_.flash_crowds = explicit_plan.flash_crowds;
  if (!explicit_plan.feed_bursts.empty())
    plan_.feed_bursts = explicit_plan.feed_bursts;
  if (!explicit_plan.region_outages.empty())
    plan_.region_outages = explicit_plan.region_outages;
  if (!explicit_plan.chunk_stalls.empty())
    plan_.chunk_stalls = explicit_plan.chunk_stalls;
  if (!explicit_plan.chunk_squeezes.empty())
    plan_.chunk_squeezes = explicit_plan.chunk_squeezes;
  if (!explicit_plan.line_outages.empty())
    plan_.line_outages = explicit_plan.line_outages;
  if (!explicit_plan.grid_demand_shocks.empty())
    plan_.grid_demand_shocks = explicit_plan.grid_demand_shocks;
  if (!explicit_plan.congestion_spikes.empty())
    plan_.congestion_spikes = explicit_plan.congestion_spikes;
  if (!plan_.empty())
    injector_ = FaultInjector(plan_, sites_.size(), evaluation_.hours());
}

MarketFeed Simulator::make_feed() const {
  return MarketFeed(&injector_, config_.market_feed,
                    config_.seed ^ 0x6d6172666565ULL);
}

std::unique_ptr<MarketCoupler> Simulator::make_coupler(
    Strategy strategy) const {
  if (!config_.market_coupler.enabled || strategy != Strategy::kCostCapping)
    return nullptr;
  return std::make_unique<MarketCoupler>(sites_, policies_, config_.optimizer,
                                         config_.market_coupler);
}

market::CoupledHourFaults Simulator::grid_faults_at(
    std::size_t fault_hour) const {
  market::CoupledHourFaults faults;
  if (!injector_.enabled() || !injector_.grid_faulted(fault_hour))
    return faults;
  faults.line_out.resize(injector_.grid_lines(), 0);
  faults.line_limit_factor.resize(injector_.grid_lines(), 1.0);
  for (std::size_t l = 0; l < injector_.grid_lines(); ++l) {
    faults.line_out[l] = injector_.line_out(l, fault_hour) ? 1 : 0;
    faults.line_limit_factor[l] = injector_.line_limit_factor(l, fault_hour);
  }
  faults.bus_demand_multiplier.resize(injector_.grid_buses(), 1.0);
  for (std::size_t b = 0; b < injector_.grid_buses(); ++b)
    faults.bus_demand_multiplier[b] =
        injector_.bus_demand_multiplier(b, fault_hour);
  return faults;
}

std::vector<double> Simulator::demand_at(std::size_t hour) const {
  std::vector<double> d;
  d.reserve(demand_.size());
  for (const auto& series : demand_) d.push_back(series.at(hour));
  return d;
}

HourRecord Simulator::run_hour_cost_capping(const BillCapper& capper,
                                            MarketFeed& feed,
                                            MarketCoupler* coupler,
                                            std::size_t hour,
                                            double spent_so_far) const {
  // Without budget enforcement the capper still runs, but against an
  // unlimited budget: exactly step 1 (used for Figures 3 and 4).
  const double budget = config_.enforce_budget
                            ? budgeter_.hourly_budget(hour, spent_so_far)
                            : 1e18;
  return run_capping_hour(capper, feed, coupler, hour, hour,
                          evaluation_.at(hour), demand_at(hour), budget);
}

HourRecord Simulator::run_capping_hour(const BillCapper& capper,
                                       MarketFeed& feed,
                                       MarketCoupler* coupler,
                                       std::size_t hour,
                                       std::size_t fault_hour,
                                       double arrivals,
                                       std::vector<double> raw_demand,
                                       double budget) const {
  const workload::PremiumSplit split(config_.premium_share);
  const double premium = split.premium(arrivals);
  const double ordinary = split.ordinary(arrivals);
  const std::size_t n = sites_.size();

  // Ground-truth demand carries the hour's injected shocks; the believed
  // demand is what the (possibly stale) market feed shows the optimizer.
  std::vector<double> d = std::move(raw_demand);
  for (std::size_t i = 0; i < n; ++i)
    d[i] *= injector_.demand_multiplier(i, fault_hour);

  DecideOptions overrides;
  overrides.standby = config_.standby;
  std::vector<std::uint8_t> available;
  std::vector<double> believed;
  std::size_t sites_down = 0;
  FeedObservation feed_obs;
  feed_obs.observed_hour = fault_hour;
  if (injector_.enabled()) {
    available.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      available[i] = injector_.site_available(i, fault_hour) ? 1 : 0;
      sites_down += available[i] ? 0 : 1;
    }
    overrides.site_available = available;

    // The market-data client: passes a fresh feed through, re-polls a
    // frozen one with backoff. Only when it stays stale does the optimizer
    // plan against the frozen hour's demand while billing uses today's.
    feed_obs = feed.poll(fault_hour);
    if (feed_obs.stale) {
      const std::size_t observed = feed_obs.observed_hour;
      believed = demand_at(std::min(observed, evaluation_.hours() - 1));
      for (std::size_t i = 0; i < n; ++i)
        believed[i] *= injector_.demand_multiplier(i, observed);
      overrides.believed_demand_mw = believed;
    }

    const double squeeze = injector_.solver_deadline_ms(fault_hour);
    if (squeeze > 0.0) overrides.time_limit_ms = squeeze;
  }

  // billcap-lint: allow(wall-clock): telemetry-only, never checkpointed
  const auto start = std::chrono::steady_clock::now();
  CappingOutcome outcome;
  MarketCoupler::HourPlan plan;
  GroundTruth truth;
  if (coupler) {
    // Closed market loop: plan against re-derived coupled curves (inside
    // the fault envelope), then bill at the LMPs the realized draw itself
    // produces — the fleet is a price maker on both sides.
    MarketCoupler::HourInputs in;
    in.premium = premium;
    in.ordinary = ordinary;
    in.true_demand_mw = d;
    in.budget = budget;
    in.overrides = &overrides;
    in.faults = grid_faults_at(fault_hour);
    plan = coupler->plan_hour(in, capper);
    outcome = std::move(plan.outcome);
    truth = coupler->bill(outcome.allocation.lambda_vector(), d, in.faults);
  } else {
    outcome = capper.decide(premium, ordinary, d, budget, overrides);
    truth = evaluate_allocation(sites_, policies_, d,
                                outcome.allocation.lambda_vector());
  }
  const double ms = elapsed_ms(start);

  HourRecord rec;
  rec.hour = hour;
  rec.arrivals = arrivals;
  rec.premium_arrivals = premium;
  rec.ordinary_arrivals = ordinary;
  rec.served_premium = outcome.served_premium;
  rec.served_ordinary = outcome.served_ordinary;
  rec.hourly_budget = config_.enforce_budget ? outcome.hourly_budget : 0.0;
  rec.cost = truth.total_cost;
  rec.predicted_cost = outcome.allocation.predicted_cost;
  rec.mode = outcome.mode;
  rec.site_lambda = outcome.allocation.lambda_vector();
  rec.site_power_mw.reserve(truth.sites.size());
  for (const auto& site : truth.sites)
    rec.site_power_mw.push_back(site.power.total_mw());
  rec.solve_ms = ms;
  rec.nodes = outcome.allocation.nodes;
  rec.degraded = outcome.degraded;
  rec.failure = outcome.failure;
  rec.used_incumbent = outcome.used_incumbent;
  rec.used_heuristic = outcome.used_heuristic;
  rec.sites_down = sites_down;
  rec.stale_prices = feed_obs.stale;
  rec.feed_attempts = feed_obs.attempts;
  rec.feed_recovered = feed_obs.recovered;
  if (coupler) {
    // An oscillating/diverging coupled plan is a degraded hour even though
    // the open-loop fallback that actually served it solved cleanly; the
    // coupler's trouble is the root cause the tally should carry.
    if (plan.oscillation) {
      rec.degraded = true;
      rec.failure = FailureReason::kPriceOscillation;
    } else if (plan.diverged) {
      rec.degraded = true;
      rec.failure = FailureReason::kCouplerDiverged;
    }
    rec.coupler_iterations = plan.iterations;
    rec.coupler_converged = plan.closed_loop;
    rec.coupler_fallback = plan.fallback;
    rec.coupler_rung = plan.rung;
  }
  return rec;
}

HourRecord Simulator::run_hour_min_only(std::size_t hour,
                                        MinOnlyPriceModel price_model) const {
  const workload::PremiumSplit split(config_.premium_share);
  const double arrivals = evaluation_.at(hour);
  const std::size_t n = sites_.size();

  // Ground-truth demand carries the hour's injected shocks. (Min-Only
  // believes a flat price, so a stale market feed cannot mislead it — only
  // outages and the solver deadline bite.)
  std::vector<double> d = demand_at(hour);
  for (std::size_t i = 0; i < n; ++i)
    d[i] *= injector_.demand_multiplier(i, hour);

  // Min-Only admits everything it physically can (it knows no budget);
  // arrivals beyond its believed capacity are shed like any dispatcher
  // would. A site down this hour has no capacity to offer.
  std::vector<SiteModel> believed = min_only_site_models(
      sites_, policies_, price_model);
  std::size_t sites_down = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (!injector_.site_available(i, hour)) {
      believed[i].lambda_max = 0.0;
      ++sites_down;
    }
  }
  const double admitted = std::min(arrivals, system_capacity(believed));

  OptimizerOptions opts = config_.optimizer;
  const double squeeze = injector_.solver_deadline_ms(hour);
  if (squeeze > 0.0) opts.milp.time_limit_ms = squeeze;

  // billcap-lint: allow(wall-clock): telemetry-only, never checkpointed
  const auto start = std::chrono::steady_clock::now();
  AllocationResult allocation =
      minimize_cost_over_models(believed, admitted, opts);
  const double ms = elapsed_ms(start);

  // Degradation ladder, same as the capper's: incumbent, then greedy
  // water-filling. The baseline must not abort the month either.
  bool degraded = false;
  bool used_incumbent = false;
  bool used_heuristic = false;
  FailureReason failure = FailureReason::kNone;
  if (!allocation.ok()) {
    degraded = true;
    failure = failure_reason_from(allocation.status);
    if (allocation.feasible) {
      used_incumbent = true;
    } else {
      allocation = fallback_allocate(
          believed, FallbackRequest{admitted, 0.0, lp::kInfinity});
      used_heuristic = true;
    }
  }
  const double placed =
      used_heuristic ? std::min(admitted, allocation.total_lambda) : admitted;

  const GroundTruth truth =
      evaluate_allocation(sites_, policies_, d, allocation.lambda_vector());

  HourRecord rec;
  rec.hour = hour;
  rec.arrivals = arrivals;
  rec.premium_arrivals = split.premium(arrivals);
  rec.ordinary_arrivals = split.ordinary(arrivals);
  // Min-Only serves everything admitted regardless of cost (Section VII-C);
  // capacity shedding drops ordinary traffic first.
  rec.served_premium = std::min(rec.premium_arrivals, placed);
  rec.served_ordinary =
      std::min(rec.ordinary_arrivals, placed - rec.served_premium);
  rec.cost = truth.total_cost;
  rec.predicted_cost = allocation.predicted_cost;
  rec.site_lambda = allocation.lambda_vector();
  rec.site_power_mw.reserve(truth.sites.size());
  for (const auto& site : truth.sites)
    rec.site_power_mw.push_back(site.power.total_mw());
  rec.solve_ms = ms;
  rec.nodes = allocation.nodes;
  rec.degraded = degraded;
  rec.failure = failure;
  rec.used_incumbent = used_incumbent;
  rec.used_heuristic = used_heuristic;
  rec.sites_down = sites_down;
  return rec;
}

std::vector<MonthlyResult> Simulator::run_months(std::size_t months) const {
  if (months == 0)
    throw std::invalid_argument("run_months: need at least one month");
  constexpr std::size_t kMonthHours = 30 * 24;
  const std::size_t lead = history_.hours();
  const std::size_t total = lead + months * kMonthHours;

  // Extending the generation window preserves the prefix (same RNG
  // stream), so month 0 reproduces run()'s evaluation month exactly.
  const workload::Trace full =
      workload::generate_wiki_trace(config_.workload, total, config_.seed);
  const auto full_demand =
      market::paper_background_demand(total, config_.seed ^ 0x9e3779b9);
  const BillCapper capper(sites_, policies_, config_.optimizer);
  MarketFeed feed = make_feed();
  const std::unique_ptr<MarketCoupler> coupler =
      make_coupler(Strategy::kCostCapping);

  std::vector<MonthlyResult> results;
  results.reserve(months);
  for (std::size_t m = 0; m < months; ++m) {
    const std::size_t start = lead + m * kMonthHours;
    const std::span<const double> trailing(full.series().data(), start);
    const Budgeter budgeter(
        config_.monthly_budget,
        workload::hour_of_week_weights(trailing, config_.history_weeks),
        kMonthHours, util::hour_of_week(start));

    MonthlyResult result;
    result.strategy = Strategy::kCostCapping;
    result.monthly_budget = config_.monthly_budget;
    result.hours.reserve(kMonthHours);
    double spent = 0.0;
    for (std::size_t h = 0; h < kMonthHours; ++h) {
      const std::size_t g = start + h;
      std::vector<double> d;
      d.reserve(full_demand.size());
      for (const auto& series : full_demand) d.push_back(series[g]);
      const double budget = config_.enforce_budget
                                ? budgeter.hourly_budget(h, spent)
                                : 1e18;

      // Fault hours continue across months; the month-scoped plan only
      // covers month 0, later hours report fault-free.
      HourRecord rec =
          run_capping_hour(capper, feed, coupler.get(), h,
                           m * kMonthHours + h, full.at(g), std::move(d),
                           budget);
      spent += rec.cost;
      accumulate(result, std::move(rec));
    }
    results.push_back(std::move(result));
  }
  return results;
}

HourRecord Simulator::run_one_hour(Strategy strategy, const BillCapper& capper,
                                   MarketFeed& feed, MarketCoupler* coupler,
                                   std::size_t hour,
                                   double spent_so_far) const {
  switch (strategy) {
    case Strategy::kCostCapping:
      return run_hour_cost_capping(capper, feed, coupler, hour, spent_so_far);
    case Strategy::kMinOnlyAvg:
      return run_hour_min_only(hour, MinOnlyPriceModel::kAverage);
    case Strategy::kMinOnlyLow:
      return run_hour_min_only(hour, MinOnlyPriceModel::kLow);
  }
  throw std::logic_error("run_one_hour: unknown strategy");
}

MonthlyResult Simulator::run(Strategy strategy) const {
  MonthlyResult result;
  result.strategy = strategy;
  result.monthly_budget = config_.monthly_budget;
  result.hours.reserve(evaluation_.hours());

  const BillCapper capper(sites_, policies_, config_.optimizer);
  MarketFeed feed = make_feed();
  const std::unique_ptr<MarketCoupler> coupler = make_coupler(strategy);
  double spent = 0.0;
  for (std::size_t hour = 0; hour < evaluation_.hours(); ++hour) {
    HourRecord rec =
        run_one_hour(strategy, capper, feed, coupler.get(), hour, spent);
    spent += rec.cost;
    accumulate(result, std::move(rec));
  }
  return result;
}

namespace {

/// Simulates bit rot in a checkpoint file (FaultPlan::CheckpointCorruption):
/// stomps a span in the middle so the journal checksum fails on the next
/// load and the resume must fall back a generation.
void corrupt_file(const std::string& path) {
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  if (!f) return;
  f.seekg(0, std::ios::end);
  const std::streamoff size = f.tellg();
  f.seekp(size / 2);
  f << "<<bit-rot>>";
}

}  // namespace

Simulator::ResumableOutcome Simulator::run_resumable(
    Strategy strategy, const std::string& checkpoint_path, bool resume,
    const std::function<void(const HourRecord&)>& on_hour) const {
  return run_resumable(strategy, checkpoint_path, resume, on_hour,
                       ResumeControls{});
}

Simulator::ResumableOutcome Simulator::run_resumable(
    Strategy strategy, const std::string& checkpoint_path, bool resume,
    const std::function<void(const HourRecord&)>& on_hour,
    const ResumeControls& controls) const {
  if (checkpoint_path.empty())
    throw std::invalid_argument("run_resumable: checkpoint path required");
  const std::size_t gens = std::max<std::size_t>(1, controls.keep_generations);

  const std::uint64_t digest = checkpoint_digest(config_, strategy);
  ResumableOutcome out;
  CheckpointState st;
  bool loaded = false;
  if (resume && any_checkpoint_generation_exists(checkpoint_path, gens)) {
    // Newest-first generation scan: a corrupted or mismatched generation
    // is skipped (at the cost of replaying the hours between two saves),
    // and only a set with no viable generation at all throws.
    CheckpointLoadReport report =
        load_checkpoint_fallback(checkpoint_path, gens, digest);
    st = std::move(report.state);
    out.resumed_generation = report.generation;
    out.resume_skipped = std::move(report.skipped);
    loaded = true;
  } else {
    st.config_digest = digest;
    st.strategy = strategy;
    st.partial.strategy = strategy;
    st.partial.monthly_budget = config_.monthly_budget;
  }

  const BillCapper capper(sites_, policies_, config_.optimizer);
  MarketFeed feed = make_feed();
  const std::unique_ptr<MarketCoupler> coupler = make_coupler(strategy);
  if (loaded) {
    feed.restore(st.feed);
    // Coupler trajectories (warm-start point, breaker clock, ladder rung)
    // must survive the kill for the resumed month to stay bit-identical.
    if (coupler) coupler->restore(st.coupler);
  } else {
    st.feed = feed.state();  // so a crash before the first commit persists
                             // the seeded stream, not a default-zero one
    if (coupler) st.coupler = coupler->state();
  }

  // Fault schedules, sorted by hour; the checkpointed counters are cursors
  // into them (entries consumed by earlier attempts never re-fire).
  std::vector<FaultPlan::ControllerCrash> crashes = plan_.crashes;
  std::sort(crashes.begin(), crashes.end(),
            [](const auto& a, const auto& b) { return a.hour < b.hour; });
  std::vector<FaultPlan::ExitStorm> storms = plan_.exit_storms;
  std::sort(storms.begin(), storms.end(),
            [](const auto& a, const auto& b) { return a.hour < b.hour; });
  std::vector<FaultPlan::CheckpointCorruption> corruptions =
      plan_.checkpoint_corruptions;
  std::sort(corruptions.begin(), corruptions.end(),
            [](const auto& a, const auto& b) { return a.hour < b.hour; });

  // st.storms_fired counts *deaths* consumed across all storm entries;
  // this maps it onto the entry the next death would belong to.
  struct StormPos {
    std::size_t index = 0;   ///< storms.size() = all storms drained
    std::size_t within = 0;  ///< deaths already consumed from that entry
  };
  const auto storm_at = [&storms](std::size_t deaths) {
    StormPos pos;
    for (pos.index = 0; pos.index < storms.size(); ++pos.index) {
      if (deaths < storms[pos.index].count) {
        pos.within = deaths;
        return pos;
      }
      deaths -= storms[pos.index].count;
    }
    return pos;
  };

  // Injected crashes and exit storms model defects in the primary decide
  // path; the degraded standby bypasses that path, so they do not fire.
  const bool standby = config_.standby;
  const auto save = [&](const CheckpointState& s) {
    save_checkpoint_rotated(checkpoint_path, s, gens);
  };

  out.resumed_from = st.next_hour;
  out.recoveries = st.crashes_fired;

  std::size_t committed_this_attempt = 0;
  st.partial.hours.reserve(evaluation_.hours());
  for (std::size_t hour = st.next_hour; hour < evaluation_.hours(); ++hour) {
    if ((controls.stop_flag && *controls.stop_flag) ||
        (controls.max_hours > 0 &&
         committed_this_attempt >= controls.max_hours)) {
      // Graceful stop between hours: the checkpoint already holds every
      // committed hour, nothing to flush.
      out.stopped = true;
      out.result = std::move(st.partial);
      return out;
    }

    const bool crash_now = !standby && st.crashes_fired < crashes.size() &&
                           crashes[st.crashes_fired].hour == hour;
    const bool crash_before_checkpoint =
        crash_now && crashes[st.crashes_fired].before_checkpoint;
    const bool storm_now = !standby &&
                           storm_at(st.storms_fired).index < storms.size() &&
                           storms[storm_at(st.storms_fired).index].hour == hour;
    const bool corrupt_now =
        st.corruptions_fired < corruptions.size() &&
        corruptions[st.corruptions_fired].hour == hour;

    HourRecord rec =
        run_one_hour(strategy, capper, feed, coupler.get(), hour, st.spent);

    if (storm_now) {
      // One exit-storm death: the process dies before this hour's
      // checkpoint commits, so the attempt made zero forward progress.
      // Only the consumed-death counter is re-persisted (on top of the
      // previous consistent state) so the storm eventually drains.
      ++st.storms_fired;
      save(st);
      out.crashed = true;
      out.crash_hour = hour;
      out.result = std::move(st.partial);
      return out;
    }

    if (crash_before_checkpoint) {
      // The process dies after computing the hour but before the hour's
      // checkpoint commits: the work is lost (the resume recomputes it).
      // Only the crash cursor is advanced — re-persisted on top of the
      // previous consistent state so the same entry cannot fire again.
      ++st.crashes_fired;
      save(st);
      out.crashed = true;
      out.crash_hour = hour;
      out.result = std::move(st.partial);
      return out;
    }

    if (corrupt_now) {
      // Storage fault at this hour's commit: the newest generation will
      // be stomped right after it is written. First re-persist the
      // *previous* committed state carrying the advanced corruption
      // cursor — it becomes the fallback generation, and without the
      // cursor the resume would replay this hour and re-corrupt itself
      // forever.
      ++st.corruptions_fired;
      save(st);
    }

    st.spent += rec.cost;
    st.next_hour = hour + 1;
    st.feed = feed.state();
    if (coupler) st.coupler = coupler->state();
    if (crash_now) ++st.crashes_fired;
    // Cursor snapping: a standby attempt walks past crash/storm hours
    // without consuming them; advance the cursors past everything at or
    // before the committed hour so a later primary attempt does not jam
    // on (or replay) entries for hours that already happened.
    while (st.crashes_fired < crashes.size() &&
           crashes[st.crashes_fired].hour < st.next_hour)
      ++st.crashes_fired;
    for (StormPos pos = storm_at(st.storms_fired);
         pos.index < storms.size() && storms[pos.index].hour < st.next_hour;
         pos = storm_at(st.storms_fired))
      st.storms_fired += storms[pos.index].count - pos.within;
    while (st.corruptions_fired < corruptions.size() &&
           corruptions[st.corruptions_fired].hour < st.next_hour)
      ++st.corruptions_fired;
    // Kept current on every commit so the persisted checkpoint (what the
    // supervisor and post-mortems read) carries the recovery count too.
    st.partial.crash_recoveries = st.crashes_fired + st.storms_fired;

    accumulate(st.partial, std::move(rec));
    // The observer (the CLI's streamed CSV row) runs BEFORE the hour's
    // checkpoint commits: an asynchronous kill between the two leaves an
    // extra row for an uncommitted hour, which the resume's
    // truncate-to-checkpoint pass recomputes and rewrites identically.
    // The opposite order would strand the CSV one committed row short.
    if (on_hour) on_hour(st.partial.hours.back());
    save(st);
    ++committed_this_attempt;

    if (corrupt_now) {
      corrupt_file(checkpoint_path);
      out.crashed = true;
      out.crash_hour = hour;
      out.result = std::move(st.partial);
      return out;
    }

    if (crash_now) {
      // Dies right after the commit: the hour survives, the resume picks
      // up at the next one.
      out.crashed = true;
      out.crash_hour = hour;
      out.result = std::move(st.partial);
      return out;
    }
  }

  st.partial.crash_recoveries = st.crashes_fired + st.storms_fired;
  out.recoveries = st.crashes_fired;
  out.result = std::move(st.partial);
  return out;
}

}  // namespace billcap::core
