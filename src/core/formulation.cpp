#include "core/formulation.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace billcap::core {

SiteModel make_site_model(const datacenter::DataCenter& site,
                          const market::PricingPolicy& policy,
                          double other_demand_mw,
                          bool model_cooling_network) {
  const datacenter::DataCenter::AffinePower affine =
      model_cooling_network ? site.affine_power()
                            : site.affine_server_power_only();

  SiteModel model;
  model.power_slope = affine.slope_mw_per_request_hour;
  model.power_intercept_mw = affine.intercept_mw;
  // A 0.1 % safety margin keeps the exact (integer-ceiling) power of the
  // chosen allocation from grazing past the supplier cap and triggering the
  // overage penalty.
  model.power_cap_mw = site.spec().power_cap_mw * 0.999;

  // The site can absorb requests up to server capacity, further limited by
  // the believed power cap.
  const double by_capacity = site.max_requests_per_hour();
  const double by_power =
      model.power_slope > 0.0
          ? std::max(0.0, (model.power_cap_mw - model.power_intercept_mw) /
                              model.power_slope)
          : by_capacity;
  model.lambda_max = std::min(by_capacity, by_power);

  const double max_power = std::min(
      model.power_cap_mw,
      model.power_slope * model.lambda_max + model.power_intercept_mw);
  model.cost_curve =
      policy.dc_cost_curve(other_demand_mw, std::max(max_power, 1e-6));
  return model;
}

AllocationFormulation build_allocation_formulation(
    std::span<const SiteModel> sites) {
  AllocationFormulation f;
  f.vars.reserve(sites.size());
  for (std::size_t i = 0; i < sites.size(); ++i) {
    const SiteModel& site = sites[i];
    const std::string tag = "site" + std::to_string(i);
    SiteVars v;
    v.lambda = f.problem.add_variable(tag + ".lambda", 0.0,
                                      site.lambda_max / kLambdaScale);
    v.active = f.problem.add_binary(tag + ".active");
    v.power =
        f.problem.add_variable(tag + ".power", 0.0, site.power_cap_mw);
    v.cost = lp::add_piecewise_cost(f.problem, site.cost_curve, tag + ".cost");

    // lambda_i <= lambda_max * y_i.
    f.problem.add_constraint(
        tag + ".activation",
        {{v.lambda, 1.0}, {v.active, -site.lambda_max / kLambdaScale}},
        lp::Relation::kLessEqual, 0.0);

    if (site.power_segments.empty()) {
      // Homogeneous: p_i - slope*lambda_i - intercept*y_i = 0
      // (slope rescaled to giga-requests).
      f.problem.add_constraint(
          tag + ".power_link",
          {{v.power, 1.0},
           {v.lambda, -site.power_slope * kLambdaScale},
           {v.active, -site.power_intercept_mw}},
          lp::Relation::kEqual, 0.0);
    } else {
      // Heterogeneous: lambda_i = sum_k lambda_ik and
      // p_i = sum_k slope_k * lambda_ik + intercept*y_i. Cost increases
      // with power, so the solver fills cheap classes first on its own.
      std::vector<lp::Term> split = {{v.lambda, -1.0}};
      std::vector<lp::Term> power_link = {{v.power, 1.0},
                                          {v.active, -site.power_intercept_mw}};
      for (std::size_t k = 0; k < site.power_segments.size(); ++k) {
        const auto& seg = site.power_segments[k];
        const int lk = f.problem.add_variable(
            tag + ".class" + std::to_string(k), 0.0,
            seg.lambda_cap / kLambdaScale);
        v.lambda_segments.push_back(lk);
        split.push_back({lk, 1.0});
        power_link.push_back({lk, -seg.slope * kLambdaScale});
      }
      f.problem.add_constraint(tag + ".class_split", std::move(split),
                               lp::Relation::kEqual, 0.0);
      f.problem.add_constraint(tag + ".power_link", std::move(power_link),
                               lp::Relation::kEqual, 0.0);
    }

    // Tie the piecewise aggregate to the site power.
    f.problem.add_constraint(tag + ".cost_link",
                             {{v.cost.x, 1.0}, {v.power, -1.0}},
                             lp::Relation::kEqual, 0.0);
    f.vars.push_back(std::move(v));
  }
  return f;
}

SiteModel make_heterogeneous_site_model(
    const datacenter::HeterogeneousSite& site,
    const market::PricingPolicy& policy, double other_demand_mw) {
  SiteModel model;
  model.power_intercept_mw = site.activation_mw();
  model.power_cap_mw = site.power_cap_mw() * 0.999;

  const auto segments = site.power_segments();
  model.power_slope = segments.front().slope_mw_per_request;
  double lambda_total = 0.0;
  double power_total = model.power_intercept_mw;
  for (const auto& seg : segments) {
    // Clip segment capacity once the cumulative power hits the cap.
    double cap = seg.lambda_cap;
    if (seg.slope_mw_per_request > 0.0) {
      const double head =
          (model.power_cap_mw - power_total) / seg.slope_mw_per_request;
      cap = std::min(cap, std::max(0.0, head));
    }
    if (cap <= 0.0) break;
    model.power_segments.push_back({cap, seg.slope_mw_per_request});
    lambda_total += cap;
    power_total += cap * seg.slope_mw_per_request;
  }
  model.lambda_max = lambda_total;
  model.cost_curve =
      policy.dc_cost_curve(other_demand_mw, std::max(power_total, 1e-6));
  return model;
}

std::vector<double> AllocationResult::lambda_vector() const {
  std::vector<double> out;
  out.reserve(sites.size());
  for (const SiteOutcome& s : sites) out.push_back(s.lambda);
  return out;
}

AllocationResult decode_solution(const AllocationFormulation& formulation,
                                 std::span<const SiteModel> sites,
                                 const lp::Solution& solution) {
  AllocationResult out;
  out.status = solution.status;
  out.nodes = solution.nodes;
  out.iterations = solution.iterations;
  // Decode a limit-terminated solve's best incumbent too: a feasible
  // integral allocation the degraded control loop can act on even though
  // optimality was never proven.
  if (!solution.has_incumbent()) return out;
  out.feasible = true;

  out.sites.resize(sites.size());
  for (std::size_t i = 0; i < sites.size(); ++i) {
    const SiteVars& v = formulation.vars[i];
    SiteOutcome& site = out.sites[i];
    site.lambda =
        solution.x[static_cast<std::size_t>(v.lambda)] * kLambdaScale;
    // Clean up round-off: tiny negative or epsilon loads become zero.
    if (site.lambda < 1e-3) site.lambda = 0.0;
    site.active = solution.x[static_cast<std::size_t>(v.active)] > 0.5;
    site.power_mw = solution.x[static_cast<std::size_t>(v.power)];
    double cost = 0.0;
    for (std::size_t k = 0; k < v.cost.amounts.size(); ++k) {
      cost += sites[i].cost_curve.slopes[k] *
                  solution.x[static_cast<std::size_t>(v.cost.amounts[k])] +
              sites[i].cost_curve.intercepts[k] *
                  solution.x[static_cast<std::size_t>(v.cost.selectors[k])];
    }
    site.cost = cost;
    out.total_lambda += site.lambda;
    out.predicted_cost += cost;
  }
  return out;
}

double system_capacity(std::span<const SiteModel> sites) {
  double total = 0.0;
  for (const SiteModel& site : sites) total += site.lambda_max;
  return total;
}

}  // namespace billcap::core
