#pragma once

#include <span>
#include <vector>

#include "core/formulation.hpp"
#include "lp/arena_solver.hpp"

namespace billcap::core {

/// Step 2 of the bill capping algorithm (Section V): when the minimized
/// cost would bust the hourly budget, maximize the served request rate
/// within it:
///   max  sum_i lambda_i
///   s.t. sum_i C_i <= Cs,  sum_i lambda_i <= lambda_available,
///        p_i <= Ps_i,  R_i <= Rs_i.
/// A vanishing secondary cost penalty breaks ties toward the cheaper of
/// equally-high-throughput allocations, making results deterministic
/// without affecting the throughput optimum.
AllocationResult maximize_throughput(
    const std::vector<datacenter::DataCenter>& sites,
    const std::vector<market::PricingPolicy>& policies,
    std::span<const double> other_demand_mw, double lambda_available,
    double cost_budget, const OptimizerOptions& options = {});

/// Same over prebuilt believed models.
AllocationResult maximize_throughput_over_models(
    std::span<const SiteModel> models, double lambda_available,
    double cost_budget, const OptimizerOptions& options = {});

/// Same, solving on a caller-owned lp::ArenaSolver (see
/// OptimizerOptions::warm_hourly_solver for the hour-over-hour warm-start
/// protocol; the four-argument overload uses a solve-local arena).
AllocationResult maximize_throughput_over_models(
    std::span<const SiteModel> models, double lambda_available,
    double cost_budget, const OptimizerOptions& options,
    lp::ArenaSolver& solver);

}  // namespace billcap::core
