#include "core/throughput_maximizer.hpp"

#include <stdexcept>

namespace billcap::core {

namespace {
/// Secondary objective weight: one dollar of believed cost is worth
/// kCostTieBreak giga-requests (100 requests). Serving one giga-request
/// costs on the order of $1-10, so the penalty (~1e-6 Greq per Greq
/// served) can never flip a genuine throughput decision, yet a $1 cost
/// difference (1e-7 units) still clears the branch-and-bound gap
/// tolerances and makes ties deterministic and cheap.
constexpr double kCostTieBreak = 1e-7;
}  // namespace

AllocationResult maximize_throughput_over_models(
    std::span<const SiteModel> models, double lambda_available,
    double cost_budget, const OptimizerOptions& options) {
  // Solve-local arena: within-call warm starts only, cross-call state none.
  lp::ArenaSolver solver;
  return maximize_throughput_over_models(models, lambda_available, cost_budget,
                                         options, solver);
}

AllocationResult maximize_throughput_over_models(
    std::span<const SiteModel> models, double lambda_available,
    double cost_budget, const OptimizerOptions& options,
    lp::ArenaSolver& solver) {
  if (lambda_available < 0.0)
    throw std::invalid_argument("maximize_throughput: negative demand");
  if (cost_budget < 0.0)
    throw std::invalid_argument("maximize_throughput: negative budget");

  AllocationFormulation f = build_allocation_formulation(models);
  f.problem.set_sense(lp::Sense::kMaximize);

  std::vector<lp::Term> demand_terms;
  std::vector<lp::Term> budget_terms;
  for (std::size_t i = 0; i < models.size(); ++i) {
    const SiteVars& v = f.vars[i];
    f.problem.set_objective(v.lambda, 1.0);
    demand_terms.push_back({v.lambda, 1.0});
    for (std::size_t k = 0; k < v.cost.amounts.size(); ++k) {
      const double slope = models[i].cost_curve.slopes[k];
      const double intercept = models[i].cost_curve.intercepts[k];
      // The shared formulation pre-loads minimize-cost coefficients on the
      // piecewise variables; REPLACE them (set, not add) with the tiny
      // tie-break — under kMaximize the inherited +cost coefficients would
      // otherwise make the solver maximize spending up to the budget.
      f.problem.set_objective(v.cost.amounts[k], -kCostTieBreak * slope);
      f.problem.set_objective(v.cost.selectors[k], -kCostTieBreak * intercept);
      if (slope != 0.0) budget_terms.push_back({v.cost.amounts[k], slope});
      if (intercept != 0.0)
        budget_terms.push_back({v.cost.selectors[k], intercept});
    }
  }
  f.problem.add_constraint("demand", std::move(demand_terms),
                           lp::Relation::kLessEqual,
                           lambda_available / kLambdaScale);
  f.problem.add_constraint("budget", std::move(budget_terms),
                           lp::Relation::kLessEqual, cost_budget);

  const lp::Solution solution = solver.solve(f.problem, options.milp);
  return decode_solution(f, models, solution);
}

AllocationResult maximize_throughput(
    const std::vector<datacenter::DataCenter>& sites,
    const std::vector<market::PricingPolicy>& policies,
    std::span<const double> other_demand_mw, double lambda_available,
    double cost_budget, const OptimizerOptions& options) {
  if (sites.size() != policies.size() ||
      sites.size() != other_demand_mw.size())
    throw std::invalid_argument("maximize_throughput: input size mismatch");
  std::vector<SiteModel> models;
  models.reserve(sites.size());
  for (std::size_t i = 0; i < sites.size(); ++i)
    models.push_back(make_site_model(sites[i], policies[i],
                                     other_demand_mw[i],
                                     options.model_cooling_network));
  return maximize_throughput_over_models(models, lambda_available, cost_budget,
                                         options);
}

}  // namespace billcap::core
