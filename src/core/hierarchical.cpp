#include "core/hierarchical.hpp"

#include <algorithm>
#include <stdexcept>

namespace billcap::core {

std::vector<Region> contiguous_regions(std::size_t num_sites,
                                       std::size_t max_sites_per_region) {
  if (max_sites_per_region == 0)
    throw std::invalid_argument("contiguous_regions: empty region size");
  std::vector<Region> regions;
  for (std::size_t start = 0; start < num_sites;
       start += max_sites_per_region) {
    Region region;
    region.name = "region" + std::to_string(regions.size());
    for (std::size_t i = start;
         i < std::min(num_sites, start + max_sites_per_region); ++i)
      region.site_indices.push_back(i);
    regions.push_back(std::move(region));
  }
  return regions;
}

HierarchicalCapper::HierarchicalCapper(
    const std::vector<datacenter::DataCenter>& sites,
    const std::vector<market::PricingPolicy>& policies,
    std::vector<Region> regions, OptimizerOptions options)
    : sites_(sites), policies_(policies), regions_(std::move(regions)),
      options_(options) {
  if (sites_.size() != policies_.size())
    throw std::invalid_argument("HierarchicalCapper: one policy per site");
  std::vector<bool> covered(sites_.size(), false);
  for (const Region& region : regions_) {
    if (region.site_indices.empty())
      throw std::invalid_argument("HierarchicalCapper: empty region " +
                                  region.name);
    for (std::size_t i : region.site_indices) {
      if (i >= sites_.size() || covered[i])
        throw std::invalid_argument(
            "HierarchicalCapper: bad or duplicate site in " + region.name);
      covered[i] = true;
    }
  }
  for (bool c : covered)
    if (!c)
      throw std::invalid_argument("HierarchicalCapper: uncovered site");

  region_sites_.reserve(regions_.size());
  region_policies_.reserve(regions_.size());
  for (const Region& region : regions_) {
    std::vector<datacenter::DataCenter> rs;
    std::vector<market::PricingPolicy> rp;
    for (std::size_t i : region.site_indices) {
      rs.push_back(sites_[i]);
      rp.push_back(policies_[i]);
    }
    region_sites_.push_back(std::move(rs));
    region_policies_.push_back(std::move(rp));
  }
  // Second pass only once region_sites_/region_policies_ have stopped
  // reallocating: each capper keeps references into its region's catalogs.
  region_cappers_.reserve(regions_.size());
  for (std::size_t r = 0; r < regions_.size(); ++r)
    region_cappers_.emplace_back(region_sites_[r], region_policies_[r],
                                 options_);
}

HierarchicalOutcome HierarchicalCapper::decide(
    double lambda_premium, double lambda_ordinary,
    std::span<const double> other_demand_mw, double hourly_budget) const {
  if (other_demand_mw.size() != sites_.size())
    throw std::invalid_argument("HierarchicalCapper: demand size mismatch");

  // Coordinator: believed capacity per region sets the workload and budget
  // shares (proportional split — the simple policy Section IX envisions;
  // anything smarter lives above this interface).
  std::vector<double> capacity(regions_.size(), 0.0);
  double total_capacity = 0.0;
  for (std::size_t r = 0; r < regions_.size(); ++r) {
    for (std::size_t k = 0; k < regions_[r].site_indices.size(); ++k) {
      const std::size_t i = regions_[r].site_indices[k];
      const SiteModel model = make_site_model(
          sites_[i], policies_[i], other_demand_mw[i],
          options_.model_cooling_network);
      capacity[r] += model.lambda_max;
    }
    total_capacity += capacity[r];
  }
  if (total_capacity <= 0.0)
    throw std::runtime_error("HierarchicalCapper: no capacity anywhere");

  HierarchicalOutcome out;
  out.site_lambda.assign(sites_.size(), 0.0);
  for (std::size_t r = 0; r < regions_.size(); ++r) {
    const double share = capacity[r] / total_capacity;
    const BillCapper& capper = region_cappers_[r];
    std::vector<double> region_demand;
    for (std::size_t i : regions_[r].site_indices)
      region_demand.push_back(other_demand_mw[i]);

    const CappingOutcome regional = capper.decide(
        lambda_premium * share, lambda_ordinary * share, region_demand,
        hourly_budget * share);

    out.served_premium += regional.served_premium;
    out.served_ordinary += regional.served_ordinary;
    out.predicted_cost += regional.allocation.predicted_cost;
    out.dropped_capacity += regional.dropped_capacity;
    out.mode = std::max(out.mode, regional.mode);
    if (regional.degraded) {
      out.degraded = true;
      if (out.failure == FailureReason::kNone) out.failure = regional.failure;
      out.degraded_regions.push_back(r);
      out.failure_tally[static_cast<std::size_t>(regional.failure)] += 1;
    }
    const auto lambdas = regional.allocation.lambda_vector();
    for (std::size_t k = 0; k < regions_[r].site_indices.size(); ++k)
      out.site_lambda[regions_[r].site_indices[k]] = lambdas[k];
    out.region_outcomes.push_back(regional);
  }
  return out;
}

}  // namespace billcap::core
