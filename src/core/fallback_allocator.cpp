#include "core/fallback_allocator.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

namespace billcap::core {

namespace {

/// One maximal stretch of requests at a site over which the believed cost
/// is affine in lambda: fixed power slope (server class) and fixed price
/// segment. `cost_at(lambda)` is the site's total believed cost when filled
/// to `lambda`, valid for lambda in (lambda_lo, lambda_hi].
struct Chunk {
  double lambda_lo = 0.0;
  double lambda_hi = 0.0;
  double power_lo = 0.0;          ///< site draw at lambda_lo (MW)
  double power_slope = 0.0;       ///< MW per request/hour inside the chunk
  double price_slope = 0.0;       ///< $ per MW inside the chunk
  double price_intercept = 0.0;   ///< $ offset of the price segment
  double avg_price = 0.0;         ///< $ per request over the whole chunk

  double power_at(double lambda) const noexcept {
    return power_lo + power_slope * (lambda - lambda_lo);
  }
  double cost_at(double lambda) const noexcept {
    return price_intercept + price_slope * power_at(lambda);
  }
};

/// Cuts one site's believed model into chunks of constant marginal price,
/// in fill order. Returns nothing for a site that cannot take load (down or
/// capacity zero).
std::vector<Chunk> make_chunks(const SiteModel& site) {
  std::vector<Chunk> chunks;
  if (site.lambda_max <= 0.0 || site.cost_curve.num_segments() == 0)
    return chunks;

  // The lambda -> power-slope map: heterogeneous class segments, or the
  // single affine slope. Widths are clipped to lambda_max.
  struct PowerSeg {
    double width = 0.0;
    double slope = 0.0;
  };
  std::vector<PowerSeg> power_segs;
  if (site.power_segments.empty()) {
    power_segs.push_back({site.lambda_max, site.power_slope});
  } else {
    double used = 0.0;
    for (const auto& seg : site.power_segments) {
      const double width = std::min(seg.lambda_cap, site.lambda_max - used);
      if (width <= 0.0) break;
      power_segs.push_back({width, seg.slope});
      used += width;
    }
    if (power_segs.empty())
      power_segs.push_back({site.lambda_max, site.power_slope});
  }

  const lp::PiecewiseAffine& curve = site.cost_curve;
  double lambda = 0.0;
  double power = site.power_intercept_mw;  // activation draw at lambda -> 0+
  const double power_max = curve.breaks.back();
  for (const PowerSeg& seg : power_segs) {
    double remaining = seg.width;
    while (remaining > 1e-12) {
      if (power >= power_max - 1e-12) return chunks;  // cost curve exhausted
      const std::size_t k = curve.segment_of(std::min(power, power_max));
      // Lambda until either the power segment or the price segment ends.
      double width = remaining;
      if (seg.slope > 0.0) {
        const double to_break = (curve.breaks[k + 1] - power) / seg.slope;
        width = std::min(width, to_break);
      }
      if (width <= 1e-12) break;
      Chunk chunk;
      chunk.lambda_lo = lambda;
      chunk.lambda_hi = lambda + width;
      chunk.power_lo = power;
      chunk.power_slope = seg.slope;
      chunk.price_slope = curve.slopes[k];
      chunk.price_intercept = curve.intercepts[k];
      const double prev_cost =
          chunks.empty() ? 0.0 : chunks.back().cost_at(chunks.back().lambda_hi);
      chunk.avg_price =
          (chunk.cost_at(chunk.lambda_hi) - prev_cost) / width;
      chunks.push_back(chunk);
      lambda += width;
      power += seg.slope * width;
      remaining -= width;
    }
  }
  return chunks;
}

/// Mutable fill state of one site during the greedy merge.
struct SiteFill {
  std::vector<Chunk> chunks;
  std::size_t next = 0;      ///< first not-fully-consumed chunk
  double lambda = 0.0;       ///< requests placed so far
  double cost = 0.0;         ///< believed $ at the current fill
  double power = 0.0;        ///< believed MW at the current fill

  bool exhausted() const noexcept { return next >= chunks.size(); }
  /// Price of the next marginal request (head-of-line chunk average for an
  /// untouched chunk, pure marginal price inside a started one).
  double head_price() const noexcept {
    const Chunk& c = chunks[next];
    if (lambda <= c.lambda_lo + 1e-12) return c.avg_price;
    return c.price_slope * c.power_slope;
  }
};

}  // namespace

AllocationResult fallback_allocate(std::span<const SiteModel> models,
                                   const FallbackRequest& request) {
  AllocationResult out;
  out.status = lp::SolveStatus::kOptimal;
  out.feasible = true;
  out.heuristic = true;
  out.sites.resize(models.size());

  std::vector<SiteFill> fills(models.size());
  for (std::size_t i = 0; i < models.size(); ++i)
    fills[i].chunks = make_chunks(models[i]);

  const double required = std::max(0.0, request.lambda_required);
  const double optional = std::max(0.0, request.lambda_optional);
  double total_cost = 0.0;
  double placed = 0.0;

  // Two passes over the same merge: the required load ignores the budget
  // (premium is sacrificed only to physics, never to money), the optional
  // load stops once the predicted bill would cross the budget.
  for (const bool budgeted : {false, true}) {
    double want = budgeted ? optional : required;
    while (want > 1e-9) {
      // Cheapest next marginal request across all sites, contiguously.
      std::size_t best = models.size();
      for (std::size_t i = 0; i < models.size(); ++i) {
        if (fills[i].exhausted()) continue;
        if (best == models.size() ||
            fills[i].head_price() < fills[best].head_price())
          best = i;
      }
      if (best == models.size()) break;  // capacity exhausted

      SiteFill& fill = fills[best];
      const Chunk& chunk = fill.chunks[fill.next];
      double target = std::min(chunk.lambda_hi, fill.lambda + want);
      if (budgeted) {
        // Largest lambda inside this chunk whose cost delta still fits.
        const double headroom = request.cost_budget - total_cost;
        const double delta = chunk.cost_at(target) - fill.cost;
        if (delta > headroom) {
          const double marginal = chunk.price_slope * chunk.power_slope;
          if (marginal <= 1e-15) {
            target = fill.lambda;  // jump alone busts the budget
          } else {
            const double jump = chunk.cost_at(std::max(fill.lambda,
                                                       chunk.lambda_lo)) -
                                fill.cost;
            const double room = headroom - std::max(jump, 0.0);
            target = room <= 0.0
                         ? fill.lambda
                         : std::min(target,
                                    std::max(fill.lambda, chunk.lambda_lo) +
                                        room / marginal);
          }
          if (target <= fill.lambda + 1e-12) break;  // budget exhausted
        }
      }
      const double taken = target - fill.lambda;
      if (taken <= 1e-12) break;
      const double new_cost = chunk.cost_at(target);
      total_cost += new_cost - fill.cost;
      fill.cost = new_cost;
      fill.power = chunk.power_at(target);
      fill.lambda = target;
      if (target >= chunk.lambda_hi - 1e-12) ++fill.next;
      placed += taken;
      want -= taken;
    }
  }

  for (std::size_t i = 0; i < models.size(); ++i) {
    SiteOutcome& site = out.sites[i];
    site.lambda = fills[i].lambda < 1e-3 ? 0.0 : fills[i].lambda;
    site.active = site.lambda > 0.0;
    site.power_mw = site.active ? fills[i].power : 0.0;
    site.cost = site.active ? fills[i].cost : 0.0;
    out.total_lambda += site.lambda;
    out.predicted_cost += site.cost;
  }
  return out;
}

}  // namespace billcap::core
