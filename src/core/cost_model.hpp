#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "datacenter/datacenter.hpp"
#include "market/pricing_policy.hpp"

namespace billcap::core {

/// Suppliers penalize price makers heavily when the agreed power cap is
/// exceeded (Section I / II): overage MWh are billed at this multiple of
/// the locational price on top of the regular energy charge.
inline constexpr double kPowerCapPenaltyMultiplier = 5.0;

/// Ground-truth billing of one site for one invocation period (1 h).
struct GroundTruthSite {
  double lambda = 0.0;        ///< requests/hour dispatched to the site
  std::uint64_t servers = 0;  ///< active servers (local optimizer)
  datacenter::DataCenter::PowerBreakdown power;  ///< exact breakdown
  double price_per_mwh = 0.0;  ///< locational price at (p + d)
  double overage_mw = 0.0;     ///< draw beyond the supplier cap Ps
  double penalty = 0.0;        ///< $ charged for the overage
  double cost = 0.0;           ///< $ for the hour (incl. penalty)
};

/// Ground-truth billing of the whole network for one hour.
struct GroundTruth {
  std::vector<GroundTruthSite> sites;
  double total_cost = 0.0;
  double total_penalty = 0.0;
  double total_power_mw = 0.0;
};

/// Bills an allocation under the *real* physics and the *real* locational
/// pricing: integer server/switch counts, full server+network+cooling power,
/// and the step price set by the site's total locational consumption
/// p_i + d_i. Every strategy — Cost Capping and the Min-Only baselines
/// alike — is charged through this function, so a baseline that optimized
/// a simplified model pays for its modeling error here.
///
/// Requires equal-sized spans (one entry per site). Throws if a site cannot
/// serve its assigned load within its server capacity.
GroundTruth evaluate_allocation(
    const std::vector<datacenter::DataCenter>& sites,
    const std::vector<market::PricingPolicy>& policies,
    std::span<const double> other_demand_mw, std::span<const double> lambda);

}  // namespace billcap::core
