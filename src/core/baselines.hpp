#pragma once

#include <span>
#include <vector>

#include "core/formulation.hpp"

namespace billcap::core {

/// How the Min-Only baseline flattens the real step prices into the
/// constant price it believes in (Section VII-A).
enum class MinOnlyPriceModel {
  kAverage,  ///< Min-Only (Avg): mean of the policy's level prices
  kLow,      ///< Min-Only (Low): lowest level price
};

/// The state-of-the-art baseline ([2], as characterized in Section VII-A):
/// an optimization-based cost minimizer that (1) treats the data centers as
/// price takers — a constant locational price unaffected by its own routing
/// — and (2) models only server power, ignoring cooling and networking.
/// It never looks at a budget.
///
/// The returned result carries the baseline's *beliefs*; the simulator
/// bills the resulting allocation through core::evaluate_allocation, which
/// is where the 17.9 % / 33.5 % gaps of Figure 3 come from.
AllocationResult min_only_allocate(
    const std::vector<datacenter::DataCenter>& sites,
    const std::vector<market::PricingPolicy>& policies,
    double lambda_total, MinOnlyPriceModel price_model,
    const OptimizerOptions& options = {});

/// The believed site models of the baseline (exposed for tests/ablations):
/// flat price, server-only power.
std::vector<SiteModel> min_only_site_models(
    const std::vector<datacenter::DataCenter>& sites,
    const std::vector<market::PricingPolicy>& policies,
    MinOnlyPriceModel price_model);

}  // namespace billcap::core
