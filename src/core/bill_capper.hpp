#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "core/cost_minimizer.hpp"
#include "core/throughput_maximizer.hpp"

namespace billcap::core {

/// Why an hour's allocation came from the degradation ladder (incumbent or
/// greedy heuristic) instead of a clean optimal solve.
enum class FailureReason {
  kNone,            ///< clean optimal solves all the way
  kNodeLimit,       ///< branch-and-bound node budget exhausted
  kIterationLimit,  ///< simplex pivot budget exhausted
  kTimeLimit,       ///< wall-clock solver deadline expired
  kInfeasible,      ///< solver reported infeasible (numerical trouble)
  kUnbounded,       ///< solver reported unbounded (model corruption)
  kArenaExhausted,  ///< solver arena byte cap hit (lp::kArenaExhausted)
  kThrown,          ///< chunk task threw; caught at the fault envelope
  kPriceOscillation,  ///< market coupler detected a price-load limit cycle
  kCouplerDiverged,   ///< coupler fixed point missed its iteration cap
};

/// Number of FailureReason values (for per-reason tally arrays).
inline constexpr std::size_t kFailureReasonCount = 10;

const char* to_string(FailureReason reason) noexcept;

/// Maps a failed solve status onto the reason recorded for the hour.
FailureReason failure_reason_from(lp::SolveStatus status) noexcept;

/// One invocation of the two-step bill capping algorithm (Section III).
struct CappingOutcome {
  /// Which branch of the algorithm produced the allocation.
  enum class Mode {
    kUncapped,     ///< step 1 alone: minimized cost fits the hourly budget
    kCapped,       ///< step 2: ordinary traffic throttled to fit the budget
    kPremiumOnly,  ///< budget insufficient even for premium: QoS guarantee
                   ///< forces a deliberate budget violation (Section V-B)
  };
  Mode mode = Mode::kUncapped;
  AllocationResult allocation;
  double hourly_budget = 0.0;
  double served_premium = 0.0;   ///< requests/hour with guaranteed QoS
  double served_ordinary = 0.0;  ///< best-effort requests/hour served
  double dropped_capacity = 0.0; ///< arrivals beyond physical capacity

  /// Degradation ladder bookkeeping: optimal -> incumbent -> greedy
  /// heuristic. `degraded` is true whenever any step fell off the top rung.
  bool degraded = false;
  FailureReason failure = FailureReason::kNone;
  bool used_incumbent = false;  ///< reused a limit-terminated solve's best
  bool used_heuristic = false;  ///< greedy water-filling produced the hour
};

const char* to_string(CappingOutcome::Mode mode) noexcept;

/// Per-call environment overrides for fault injection and degraded
/// operation. All spans are either empty (no override) or one entry per
/// site.
struct DecideOptions {
  /// 0 = site is down this hour (capacity forced to zero, surviving sites
  /// absorb the load). Empty = all sites up.
  std::span<const std::uint8_t> site_available{};
  /// The background demand the *optimizer believes* (a stale market feed);
  /// ground-truth billing still uses the real demand. Empty = fresh feed.
  std::span<const double> believed_demand_mw{};
  /// Wall-clock deadline for each MILP solve this hour; >= 0 overrides the
  /// configured MilpOptions::time_limit_ms, < 0 keeps it.
  double time_limit_ms = -1.0;
  /// Branch-and-bound node budget for each MILP solve this hour; >= 0
  /// overrides MilpOptions::max_nodes, < 0 keeps it. The fleet layer's
  /// primary (deterministic) chunk deadline.
  long max_nodes = -1;
  /// Per-solve arena byte cap; nonzero tightens
  /// MilpOptions::max_arena_bytes for this hour's solves (arena exhaustion
  /// degrades the chunk with FailureReason::kArenaExhausted).
  std::size_t max_arena_bytes = 0;
  /// Degraded standby mode: skip the MILP entirely and serve only the
  /// premium workload via the greedy fallback allocator (the supervisor's
  /// escalation target when the primary keeps dying). The outcome is
  /// tagged degraded + used_heuristic with mode kPremiumOnly.
  bool standby = false;
};

/// The bill capper: per invocation period, first minimize cost for the full
/// workload; if the predicted cost exceeds the hourly budget, re-solve as
/// throughput maximization within the budget, admission-controlling only
/// ordinary customers; if even the premium workload cannot fit, serve
/// premium at minimum cost and accept the violation.
///
/// decide() never throws on solver trouble: a limit-terminated solve's
/// incumbent is reused when feasible, otherwise the greedy fallback
/// allocator produces the hour, and the outcome is tagged degraded. Only
/// caller bugs (negative arrivals, size mismatches) raise
/// std::invalid_argument.
///
/// Holds references to the site and policy catalogs — the caller keeps them
/// alive for the capper's lifetime (the Simulator owns both).
class BillCapper {
 public:
  BillCapper(const std::vector<datacenter::DataCenter>& sites,
             const std::vector<market::PricingPolicy>& policies,
             OptimizerOptions options = {});

  /// Decides the hour's allocation. `lambda_premium`/`lambda_ordinary` are
  /// the hour's arriving premium/ordinary request rates, `other_demand_mw`
  /// the per-site background demand, `hourly_budget` the budgeter's figure.
  /// Arrivals beyond the believed system capacity are shed (ordinary
  /// first) and reported as dropped_capacity.
  CappingOutcome decide(double lambda_premium, double lambda_ordinary,
                        std::span<const double> other_demand_mw,
                        double hourly_budget) const;

  /// Same, with fault-injection / degraded-mode overrides.
  CappingOutcome decide(double lambda_premium, double lambda_ordinary,
                        std::span<const double> other_demand_mw,
                        double hourly_budget,
                        const DecideOptions& overrides) const;

 private:
  const std::vector<datacenter::DataCenter>& sites_;
  const std::vector<market::PricingPolicy>& policies_;
  OptimizerOptions options_;
  // One persistent solver arena per solve role, so each role's hour-over-
  // hour problem sequence stays structurally coherent for warm starts
  // (OptimizerOptions::warm_hourly_solver). With the flag off the arenas
  // carry no state between calls and decide() remains a pure function of
  // its arguments. Mutable: solver state is a cache, not an observable
  // property of the capper.
  mutable lp::ArenaSolver min_cost_solver_;
  mutable lp::ArenaSolver throughput_solver_;
  mutable lp::ArenaSolver premium_solver_;
};

}  // namespace billcap::core
