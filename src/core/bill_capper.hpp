#pragma once

#include <span>
#include <vector>

#include "core/cost_minimizer.hpp"
#include "core/throughput_maximizer.hpp"

namespace billcap::core {

/// One invocation of the two-step bill capping algorithm (Section III).
struct CappingOutcome {
  /// Which branch of the algorithm produced the allocation.
  enum class Mode {
    kUncapped,     ///< step 1 alone: minimized cost fits the hourly budget
    kCapped,       ///< step 2: ordinary traffic throttled to fit the budget
    kPremiumOnly,  ///< budget insufficient even for premium: QoS guarantee
                   ///< forces a deliberate budget violation (Section V-B)
  };
  Mode mode = Mode::kUncapped;
  AllocationResult allocation;
  double hourly_budget = 0.0;
  double served_premium = 0.0;   ///< requests/hour with guaranteed QoS
  double served_ordinary = 0.0;  ///< best-effort requests/hour served
  double dropped_capacity = 0.0; ///< arrivals beyond physical capacity
};

const char* to_string(CappingOutcome::Mode mode) noexcept;

/// The bill capper: per invocation period, first minimize cost for the full
/// workload; if the predicted cost exceeds the hourly budget, re-solve as
/// throughput maximization within the budget, admission-controlling only
/// ordinary customers; if even the premium workload cannot fit, serve
/// premium at minimum cost and accept the violation.
///
/// Holds references to the site and policy catalogs — the caller keeps them
/// alive for the capper's lifetime (the Simulator owns both).
class BillCapper {
 public:
  BillCapper(const std::vector<datacenter::DataCenter>& sites,
             const std::vector<market::PricingPolicy>& policies,
             OptimizerOptions options = {});

  /// Decides the hour's allocation. `lambda_premium`/`lambda_ordinary` are
  /// the hour's arriving premium/ordinary request rates, `other_demand_mw`
  /// the per-site background demand, `hourly_budget` the budgeter's figure.
  /// Arrivals beyond the believed system capacity are shed (ordinary
  /// first) and reported as dropped_capacity.
  CappingOutcome decide(double lambda_premium, double lambda_ordinary,
                        std::span<const double> other_demand_mw,
                        double hourly_budget) const;

 private:
  const std::vector<datacenter::DataCenter>& sites_;
  const std::vector<market::PricingPolicy>& policies_;
  OptimizerOptions options_;
};

}  // namespace billcap::core
