#pragma once

#include <cstdint>
#include <string>

#include "core/market_feed.hpp"
#include "core/simulator.hpp"

namespace billcap::core {

/// Everything the hourly control loop needs to continue a month after the
/// controller process dies: how far it got, the budget ledger's spent
/// total, the partial MonthlyResult (aggregates, FailureReason tallies and
/// every committed HourRecord), the market-feed client's stream state, and
/// the crash-plan cursor. Doubles are persisted bitwise, so a resumed
/// month finishes with a result bit-identical to the uninterrupted run.
struct CheckpointState {
  /// Digest of the (config, strategy) pair that wrote the checkpoint;
  /// loading under a different configuration is refused rather than
  /// silently mixing two months.
  std::uint64_t config_digest = 0;
  Strategy strategy = Strategy::kCostCapping;
  std::size_t next_hour = 0;      ///< first hour not yet committed
  double spent = 0.0;             ///< budget ledger: $ billed so far
  std::size_t crashes_fired = 0;  ///< FaultPlan::ControllerCrash cursor
  MarketFeed::State feed;         ///< retrying feed client's RNG + cursor
  MonthlyResult partial;          ///< committed hours + aggregates
};

/// Digest of the simulation configuration fields that determine a month's
/// trajectory (seed, budget, workload shape, fault schedule, feed policy,
/// strategy...). Two configs with equal digests produce the same month.
std::uint64_t checkpoint_digest(const SimulationConfig& config,
                                Strategy strategy);

/// True if a checkpoint file exists at `path` (it may still fail to load).
bool checkpoint_exists(const std::string& path) noexcept;

/// Atomically persists `state` (write-temp-then-rename): a kill at any
/// instant leaves either the previous checkpoint or this one, never a torn
/// file. Throws std::runtime_error on I/O failure.
void save_checkpoint(const std::string& path, const CheckpointState& state);

/// Loads and verifies a checkpoint. Throws std::runtime_error when the
/// file is missing, truncated, corrupted (checksum mismatch), from an
/// unsupported format version, or structurally inconsistent.
CheckpointState load_checkpoint(const std::string& path);

}  // namespace billcap::core
