#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/market_feed.hpp"
#include "core/simulator.hpp"

namespace billcap::core {

/// Everything the hourly control loop needs to continue a month after the
/// controller process dies: how far it got, the budget ledger's spent
/// total, the partial MonthlyResult (aggregates, FailureReason tallies and
/// every committed HourRecord), the market-feed client's stream state, and
/// the crash-plan cursor. Doubles are persisted bitwise, so a resumed
/// month finishes with a result bit-identical to the uninterrupted run.
struct CheckpointState {
  /// Digest of the (config, strategy) pair that wrote the checkpoint;
  /// loading under a different configuration is refused rather than
  /// silently mixing two months.
  std::uint64_t config_digest = 0;
  Strategy strategy = Strategy::kCostCapping;
  std::size_t next_hour = 0;      ///< first hour not yet committed
  double spent = 0.0;             ///< budget ledger: $ billed so far
  std::size_t crashes_fired = 0;  ///< FaultPlan::ControllerCrash cursor
  std::size_t storms_fired = 0;   ///< FaultPlan::ExitStorm deaths consumed
  /// FaultPlan::CheckpointCorruption cursor. Persisted into the fallback
  /// generation *before* the corrupted one is written, so a resume that
  /// falls back a generation does not re-fire the same corruption.
  std::size_t corruptions_fired = 0;
  MarketFeed::State feed;         ///< retrying feed client's RNG + cursor
  /// Closed-loop market coupler trajectory (breaker clock, damping ladder,
  /// last executed fixed point). All defaults for open-loop months and
  /// when loading pre-coupler checkpoint files.
  MarketCoupler::State coupler;
  MonthlyResult partial;          ///< committed hours + aggregates
};

/// Digest of the simulation configuration fields that determine a month's
/// trajectory (seed, budget, workload shape, fault schedule, feed policy,
/// strategy...). Two configs with equal digests produce the same month.
std::uint64_t checkpoint_digest(const SimulationConfig& config,
                                Strategy strategy);

/// True if a checkpoint file exists at `path` (it may still fail to load).
bool checkpoint_exists(const std::string& path) noexcept;

/// Atomically persists `state` (write-temp-then-rename): a kill at any
/// instant leaves either the previous checkpoint or this one, never a torn
/// file. Throws std::runtime_error on I/O failure.
void save_checkpoint(const std::string& path, const CheckpointState& state);

/// Loads and verifies a checkpoint. Throws std::runtime_error when the
/// file is missing, truncated, corrupted (checksum mismatch), from an
/// unsupported format version, or structurally inconsistent.
CheckpointState load_checkpoint(const std::string& path);

/// Like save_checkpoint, but first shifts the existing generation chain
/// down one slot (`path` -> "<path>.1" -> ... -> "<path>.<K-1>", oldest
/// dropped) so the last `keep_generations` checkpoints survive on disk.
/// keep_generations <= 1 degenerates to plain save_checkpoint.
void save_checkpoint_rotated(const std::string& path,
                             const CheckpointState& state,
                             std::size_t keep_generations);

/// What load_checkpoint_fallback actually recovered, and what it had to
/// step over to get there.
struct CheckpointLoadReport {
  CheckpointState state;
  std::size_t generation = 0;  ///< 0 = newest; g came from "<path>.<g>"
  /// One line per rejected newer generation: its path and why it was
  /// unusable (missing, corrupted, digest mismatch...).
  std::vector<std::string> skipped;
};

/// True if any generation of the rotated set exists at `path` (the newest
/// or any of "<path>.1" ... "<path>.<K-1>").
bool any_checkpoint_generation_exists(const std::string& path,
                                      std::size_t keep_generations) noexcept;

/// Scans generations newest-first and returns the first one that loads
/// cleanly AND matches `expected_digest`; corrupted, truncated, missing or
/// digest-mismatched generations are recorded in `skipped` and passed
/// over. Each generation the scan falls back costs at most the hours
/// between the two saves (one simulated hour for a per-hour checkpointer).
/// Throws std::runtime_error when no viable generation exists.
CheckpointLoadReport load_checkpoint_fallback(const std::string& path,
                                              std::size_t keep_generations,
                                              std::uint64_t expected_digest);

}  // namespace billcap::core
