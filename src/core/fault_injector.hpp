#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace billcap::core {

/// A deterministic schedule of operational hazards injected into the
/// closed-loop month: site outages, stale market-data feeds, background
/// demand shocks and solver-deadline squeezes. Hours are month-local
/// (0 = first evaluation hour); intervals are [start, start + duration).
/// The plan is plain data — build it by hand for targeted scenarios or via
/// generate_fault_plan for rate-driven sweeps.
struct FaultPlan {
  /// A site's capacity is forced to zero for the interval; surviving sites
  /// absorb what they can and the rest is shed.
  struct SiteOutage {
    std::size_t site = 0;
    std::size_t start_hour = 0;
    std::size_t duration_hours = 0;
  };
  /// The market feed freezes: the optimizer plans every hour of the
  /// interval against the background demand last seen before it started,
  /// while ground-truth billing uses the real demand.
  struct StaleInterval {
    std::size_t start_hour = 0;
    std::size_t duration_hours = 0;
  };
  /// Background demand at one site is multiplied for the interval (a
  /// heat-wave or industrial surge at that location).
  struct DemandShock {
    std::size_t site = 0;
    std::size_t start_hour = 0;
    std::size_t duration_hours = 0;
    double multiplier = 1.0;
  };
  /// Every MILP solve in the interval gets a hard wall-clock deadline (an
  /// overloaded control node must still produce an allocation on time).
  struct DeadlineSqueeze {
    std::size_t start_hour = 0;
    std::size_t duration_hours = 0;
    double time_limit_ms = 0.0;
  };

  /// The controller process dies. Consumed by Simulator::run_resumable,
  /// not by the per-hour injector: the run aborts at `hour` and must be
  /// resumed from its durable checkpoint. `before_checkpoint` chooses the
  /// kill instant — false models dying right after hour `hour`'s
  /// checkpoint committed (the hour survives), true models dying after the
  /// hour was computed but *before* its checkpoint was written (the resume
  /// must recompute it). Each entry fires once; the checkpoint records how
  /// many have fired so a resumed run does not re-crash on the same entry.
  struct ControllerCrash {
    std::size_t hour = 0;
    bool before_checkpoint = false;
  };

  /// A repeated-death defect: the controller dies `count` times in a row at
  /// `hour`, always *before* that hour's checkpoint commits, so each restart
  /// makes zero forward progress. Consumed by Simulator::run_resumable; the
  /// checkpoint records how many deaths have been consumed. This is the
  /// scenario a supervisor's escalation logic exists for — a per-crash
  /// restart never gets past the hour, only standby mode (which bypasses
  /// the primary decide path where the defect lives) does.
  struct ExitStorm {
    std::size_t hour = 0;
    std::size_t count = 0;
  };

  /// A flash crowd: interactive arrivals across the whole fleet are
  /// multiplied for the interval (a viral event, not a single-site surge —
  /// contrast DemandShock, which scales one site's *background* demand).
  /// Consumed by the serve-mode ingest plane, which scales per-tick request
  /// arrivals; the hourly batch loop ignores it.
  struct FlashCrowd {
    std::size_t start_hour = 0;
    std::size_t duration_hours = 0;
    double multiplier = 1.0;
  };

  /// A feed burst: the market feed emits `updates_per_tick` mid-hour price
  /// revisions every serve tick of the interval (normally it emits at hour
  /// boundaries only). Stresses the bounded FeedUpdateQueue and the re-plan
  /// circuit breaker; the hourly batch loop ignores it.
  struct FeedBurst {
    std::size_t start_hour = 0;
    std::size_t duration_hours = 0;
    std::size_t updates_per_tick = 0;
  };

  /// The newest checkpoint generation is corrupted (bit rot, torn device
  /// write below the filesystem) right after hour `hour` commits, and the
  /// controller dies. A resume must fall back to an older generation and
  /// replay at most one hour. Fires once; the *fallback* generation carries
  /// the advanced cursor so the replay cannot re-corrupt itself forever.
  struct CheckpointCorruption {
    std::size_t hour = 0;
  };

  /// A whole region drops off the fleet for the interval (shared substation
  /// or backbone failure — every site in the region is down at once, so a
  /// per-site outage draw would essentially never produce it). Region
  /// indices follow the FleetController's region catalog.
  struct RegionOutage {
    std::size_t region = 0;
    std::size_t start_hour = 0;
    std::size_t duration_hours = 0;
  };

  /// One region's chunk solver stalls: every MILP solve for that chunk gets
  /// a crushing branch-and-bound node budget for the interval (a sick
  /// control node grinding through swap). The chunk's deadline envelope
  /// must degrade it locally — the fleet hour still completes.
  struct ChunkSolverStall {
    std::size_t region = 0;
    std::size_t start_hour = 0;
    std::size_t duration_hours = 0;
    long node_budget = 1;  ///< per-solve max_nodes while stalled
  };

  /// One region's solver arena is squeezed to `arena_bytes` for the
  /// interval (memory pressure on that chunk's control node). Solves hit
  /// lp::SolveStatus::kArenaExhausted and the chunk degrades with
  /// FailureReason::kArenaExhausted.
  struct ChunkArenaSqueeze {
    std::size_t region = 0;
    std::size_t start_hour = 0;
    std::size_t duration_hours = 0;
    std::size_t arena_bytes = 1;
  };

  /// A transmission line drops out of the grid for the interval (storm
  /// damage, protection trip). The closed-loop market coupler re-solves the
  /// DC-OPF on the reduced network, so LMPs — and the re-derived step
  /// curves — jump; open-loop runs keep their static curves and simply do
  /// not see it. Line indices follow the coupled grid's line catalog.
  struct TransmissionLineOutage {
    std::size_t line = 0;
    std::size_t start_hour = 0;
    std::size_t duration_hours = 0;
  };

  /// The *grid-side* background demand at one bus is multiplied for the
  /// interval (a regional heat wave seen by the ISO). Contrast DemandShock,
  /// which scales one site's billing-base demand: this kind moves the
  /// coupled OPF's nodal load — and therefore the LMPs the coupler derives
  /// curves from — without touching the billing base.
  struct BackgroundDemandShock {
    std::size_t bus = 0;
    std::size_t start_hour = 0;
    std::size_t duration_hours = 0;
    double multiplier = 1.0;
  };

  /// A line's thermal limit is derated for the interval (ambient heat,
  /// conservative re-rating after a near-trip). Congestion binds earlier,
  /// so price steps appear at lower load. Only lines with a finite nominal
  /// limit are affected. Overlapping spikes: the tightest factor wins.
  struct CongestionSpike {
    std::size_t line = 0;
    std::size_t start_hour = 0;
    std::size_t duration_hours = 0;
    double limit_factor = 1.0;  ///< limit is multiplied by this (< 1 derates)
  };

  std::vector<SiteOutage> outages;
  std::vector<StaleInterval> stale_intervals;
  std::vector<DemandShock> demand_shocks;
  std::vector<DeadlineSqueeze> deadline_squeezes;
  std::vector<ControllerCrash> crashes;
  std::vector<ExitStorm> exit_storms;
  std::vector<CheckpointCorruption> checkpoint_corruptions;
  std::vector<FlashCrowd> flash_crowds;
  std::vector<FeedBurst> feed_bursts;
  std::vector<RegionOutage> region_outages;
  std::vector<ChunkSolverStall> chunk_stalls;
  std::vector<ChunkArenaSqueeze> chunk_squeezes;
  std::vector<TransmissionLineOutage> line_outages;
  std::vector<BackgroundDemandShock> grid_demand_shocks;
  std::vector<CongestionSpike> congestion_spikes;

  bool empty() const noexcept {
    return outages.empty() && stale_intervals.empty() &&
           demand_shocks.empty() && deadline_squeezes.empty() &&
           crashes.empty() && exit_storms.empty() &&
           checkpoint_corruptions.empty() && flash_crowds.empty() &&
           feed_bursts.empty() && region_outages.empty() &&
           chunk_stalls.empty() && chunk_squeezes.empty() &&
           line_outages.empty() && grid_demand_shocks.empty() &&
           congestion_spikes.empty();
  }
};

/// Per-hour fault *rates* for randomized resilience sweeps. A fault of each
/// kind starts independently each hour with the given probability;
/// durations are drawn uniformly in [1, 2 * mean - 1] so the mean holds.
struct FaultRates {
  double outage_rate = 0.0;        ///< per site-hour
  std::size_t outage_mean_hours = 6;
  double stale_rate = 0.0;         ///< per hour
  std::size_t stale_mean_hours = 4;
  double shock_rate = 0.0;         ///< per site-hour
  std::size_t shock_mean_hours = 3;
  double shock_multiplier = 1.5;
  double squeeze_rate = 0.0;       ///< per hour
  std::size_t squeeze_mean_hours = 2;
  double squeeze_ms = 5.0;
  double crash_rate = 0.0;         ///< controller death per hour

  bool any() const noexcept {
    return outage_rate > 0.0 || stale_rate > 0.0 || shock_rate > 0.0 ||
           squeeze_rate > 0.0 || crash_rate > 0.0;
  }
};

/// Draws a FaultPlan from the rates, deterministically in `seed`: the same
/// (rates, horizon, num_sites, seed) quadruple always yields the same plan.
FaultPlan generate_fault_plan(const FaultRates& rates,
                              std::size_t horizon_hours,
                              std::size_t num_sites, std::uint64_t seed);

/// Precomputed per-hour view of a FaultPlan, the object the simulator
/// queries inside the hourly loop. Hours at or beyond the horizon report
/// "no fault" (multi-month runs outlive a month-scoped plan).
class FaultInjector {
 public:
  /// No faults at all (default-constructed injector is free to query).
  FaultInjector() = default;

  FaultInjector(const FaultPlan& plan, std::size_t num_sites,
                std::size_t horizon_hours);

  /// Fleet-aware injector: also precomputes the region-scoped kinds
  /// (RegionOutage / ChunkSolverStall / ChunkArenaSqueeze) against
  /// `num_regions` chunk slots. The 3-argument constructor leaves those
  /// kinds inert (queries report "no fault").
  FaultInjector(const FaultPlan& plan, std::size_t num_sites,
                std::size_t num_regions, std::size_t horizon_hours);

  bool enabled() const noexcept { return enabled_; }

  bool site_available(std::size_t site, std::size_t hour) const noexcept;
  /// Number of sites down this hour.
  std::size_t sites_down(std::size_t hour) const noexcept;

  bool prices_stale(std::size_t hour) const noexcept;
  /// The hour whose market data the optimizer actually observes: `hour`
  /// when the feed is fresh, the last pre-interval hour when stale.
  std::size_t observed_market_hour(std::size_t hour) const noexcept;

  double demand_multiplier(std::size_t site, std::size_t hour) const noexcept;

  /// Wall-clock MILP deadline for the hour in ms; 0 = no squeeze. When
  /// several squeezes overlap, the tightest wins.
  double solver_deadline_ms(std::size_t hour) const noexcept;

  /// Fleet-wide interactive-arrival multiplier for the hour (flash crowds;
  /// overlapping crowds compound). 1.0 when calm.
  double arrival_multiplier(std::size_t hour) const noexcept;

  /// Mid-hour price revisions the feed emits per serve tick this hour
  /// (feed bursts; overlapping bursts add). 0 when calm.
  std::size_t feed_burst_updates(std::size_t hour) const noexcept;

  /// True when the whole region is down this hour (RegionOutage).
  bool region_down(std::size_t region, std::size_t hour) const noexcept;
  /// Stalled chunk's per-solve node budget; 0 = no stall. Overlapping
  /// stalls: the tightest (smallest) budget wins.
  long chunk_node_budget(std::size_t region, std::size_t hour) const noexcept;
  /// Squeezed chunk's per-solve arena byte cap; 0 = no squeeze.
  /// Overlapping squeezes: the tightest cap wins.
  std::size_t chunk_arena_bytes(std::size_t region,
                                std::size_t hour) const noexcept;

  /// True when the transmission line is out this hour
  /// (TransmissionLineOutage). Line indices beyond the plan report false.
  bool line_out(std::size_t line, std::size_t hour) const noexcept;
  /// Thermal-limit derate factor for the line this hour (CongestionSpike;
  /// overlapping spikes take the tightest). 1.0 when nominal.
  double line_limit_factor(std::size_t line, std::size_t hour) const noexcept;
  /// Grid-side background multiplier at the bus this hour
  /// (BackgroundDemandShock; overlapping shocks compound). 1.0 when calm.
  double bus_demand_multiplier(std::size_t bus,
                               std::size_t hour) const noexcept;
  /// True when any grid-side fault (line outage, congestion spike, bus
  /// demand shock) is active this hour — lets the coupler skip building a
  /// per-hour fault view on calm hours.
  bool grid_faulted(std::size_t hour) const noexcept;
  /// Extents of the precomputed grid-fault arrays (max plan index + 1).
  std::size_t grid_lines() const noexcept { return num_lines_; }
  std::size_t grid_buses() const noexcept { return num_buses_; }

 private:
  bool enabled_ = false;
  std::size_t num_sites_ = 0;
  std::size_t num_regions_ = 0;
  std::size_t horizon_ = 0;
  std::vector<std::uint8_t> down_;          // [site * horizon + hour]
  std::vector<std::size_t> observed_hour_;  // [hour]
  std::vector<double> multiplier_;          // [site * horizon + hour]
  std::vector<double> deadline_ms_;         // [hour]
  std::vector<double> arrival_mult_;        // [hour]
  std::vector<std::size_t> burst_updates_;  // [hour]
  std::vector<std::uint8_t> region_down_;   // [region * horizon + hour]
  std::vector<long> stall_nodes_;           // [region * horizon + hour]
  std::vector<std::size_t> squeeze_bytes_;  // [region * horizon + hour]
  std::size_t num_lines_ = 0;               // grid-fault array extents
  std::size_t num_buses_ = 0;
  std::vector<std::uint8_t> line_out_;      // [line * horizon + hour]
  std::vector<double> line_factor_;         // [line * horizon + hour]
  std::vector<double> bus_mult_;            // [bus * horizon + hour]
  std::vector<std::uint8_t> grid_faulted_;  // [hour]
};

}  // namespace billcap::core
