#include "core/budgeter.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/calendar.hpp"

namespace billcap::core {

Budgeter::Budgeter(double monthly_budget,
                   std::vector<double> hour_of_week_weights,
                   std::size_t horizon_hours, std::size_t phase_offset_hours)
    : monthly_budget_(monthly_budget),
      weights_(std::move(hour_of_week_weights)),
      horizon_(horizon_hours),
      phase_offset_(phase_offset_hours % util::kHoursPerWeek) {
  if (!(monthly_budget > 0.0))
    throw std::invalid_argument("Budgeter: monthly budget must be > 0");
  if (weights_.size() != util::kHoursPerWeek)
    throw std::invalid_argument("Budgeter: need 168 hour-of-week weights");
  if (horizon_ == 0)
    throw std::invalid_argument("Budgeter: horizon must be >= 1 hour");
  for (double w : weights_)
    if (w < 0.0)
      throw std::invalid_argument("Budgeter: negative weight");

  // Precompute suffix sums of the per-hour weights over the whole horizon.
  suffix_weight_.assign(horizon_ + 1, 0.0);
  for (std::size_t h = horizon_; h-- > 0;) {
    suffix_weight_[h] =
        suffix_weight_[h + 1] +
        weights_[util::hour_of_week(phase_offset_ + h)];
  }
  if (suffix_weight_.front() <= 0.0)
    throw std::invalid_argument("Budgeter: weights sum to zero over horizon");
}

double Budgeter::weight_of_hour(std::size_t hour_index) const {
  if (hour_index >= horizon_)
    throw std::out_of_range("Budgeter: hour beyond horizon");
  return weights_[util::hour_of_week(phase_offset_ + hour_index)] /
         suffix_weight_.front();
}

double Budgeter::hourly_budget(std::size_t hour_index,
                               double spent_so_far) const {
  if (hour_index >= horizon_)
    throw std::out_of_range("Budgeter: hour beyond horizon");
  const double remaining = std::max(0.0, monthly_budget_ - spent_so_far);
  const double weight =
      weights_[util::hour_of_week(phase_offset_ + hour_index)];
  const double future = suffix_weight_[hour_index];
  if (future <= 0.0) return remaining;  // degenerate: all-zero tail weights
  return remaining * weight / future;
}

}  // namespace billcap::core
