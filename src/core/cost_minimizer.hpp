#pragma once

#include <span>
#include <vector>

#include "core/formulation.hpp"
#include "lp/arena_solver.hpp"

namespace billcap::core {

/// Step 1 of the bill capping algorithm (Section IV): distribute
/// `lambda_total` requests/hour over the sites to minimize the total
/// electricity cost
///   min  sum_i Pr_i(p_i + d_i) * p_i
///   s.t. sum_i lambda_i = lambda_total,  p_i <= Ps_i,  R_i <= Rs_i,
/// with the price-maker step pricing and the full three-part power model
/// linearized into a MILP (segment binaries per price level, Section IV-C).
///
/// Returns kInfeasible when lambda_total exceeds what the believed site
/// models can absorb (the caller decides how to shed load).
AllocationResult minimize_cost(
    const std::vector<datacenter::DataCenter>& sites,
    const std::vector<market::PricingPolicy>& policies,
    std::span<const double> other_demand_mw, double lambda_total,
    const OptimizerOptions& options = {});

/// Same, but over prebuilt believed site models (used by the baselines and
/// the ablations, which believe different models).
AllocationResult minimize_cost_over_models(std::span<const SiteModel> models,
                                           double lambda_total,
                                           const OptimizerOptions& options = {});

/// Same, solving on a caller-owned lp::ArenaSolver. A long-lived solver
/// warm starts each hour's MILP from the previous hour's basis when
/// configured with warm_across_solves (see OptimizerOptions::
/// warm_hourly_solver); the three-argument overload uses a solve-local
/// arena instead.
AllocationResult minimize_cost_over_models(std::span<const SiteModel> models,
                                           double lambda_total,
                                           const OptimizerOptions& options,
                                           lp::ArenaSolver& solver);

}  // namespace billcap::core
