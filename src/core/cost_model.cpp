#include "core/cost_model.hpp"

#include <algorithm>
#include <stdexcept>

namespace billcap::core {

GroundTruth evaluate_allocation(
    const std::vector<datacenter::DataCenter>& sites,
    const std::vector<market::PricingPolicy>& policies,
    std::span<const double> other_demand_mw, std::span<const double> lambda) {
  const std::size_t n = sites.size();
  if (policies.size() != n || other_demand_mw.size() != n ||
      lambda.size() != n)
    throw std::invalid_argument(
        "evaluate_allocation: sites/policies/demand/lambda size mismatch");

  GroundTruth out;
  out.sites.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    GroundTruthSite& site = out.sites[i];
    site.lambda = lambda[i];
    site.servers = sites[i].servers_for(lambda[i]);
    site.power = sites[i].power_breakdown(lambda[i]);
    const double p = site.power.total_mw();
    site.price_per_mwh = policies[i].price_at(p + other_demand_mw[i]);
    site.overage_mw =
        std::max(0.0, p - sites[i].spec().power_cap_mw);
    site.penalty =
        kPowerCapPenaltyMultiplier * site.price_per_mwh * site.overage_mw;
    site.cost = site.price_per_mwh * p + site.penalty;  // 1 h: MW == MWh
    out.total_cost += site.cost;
    out.total_penalty += site.penalty;
    out.total_power_mw += p;
  }
  return out;
}

}  // namespace billcap::core
