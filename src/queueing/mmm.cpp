#include "queueing/mmm.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace billcap::queueing {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

double erlang_c(std::uint64_t m_servers, double arrival_rate,
                double service_rate) noexcept {
  if (m_servers == 0) return 1.0;
  const double a = arrival_rate / service_rate;  // offered load (Erlangs)
  const double m = static_cast<double>(m_servers);
  if (a >= m) return 1.0;
  if (a == 0.0) return 0.0;

  // Stable recurrence on the Erlang-B blocking probability:
  //   B(0) = 1;  B(k) = a B(k-1) / (k + a B(k-1)).
  double b = 1.0;
  for (std::uint64_t k = 1; k <= m_servers; ++k) {
    const double kd = static_cast<double>(k);
    b = a * b / (kd + a * b);
  }
  const double rho = a / m;
  return b / (1.0 - rho * (1.0 - b));
}

double mmm_response_time(std::uint64_t m_servers, double arrival_rate,
                         double service_rate) noexcept {
  const double capacity = static_cast<double>(m_servers) * service_rate;
  if (arrival_rate < 0.0 || capacity <= arrival_rate) return kInf;
  if (arrival_rate == 0.0) return 1.0 / service_rate;
  const double c = erlang_c(m_servers, arrival_rate, service_rate);
  return 1.0 / service_rate + c / (capacity - arrival_rate);
}

double mm1_response_time(double arrival_rate, double service_rate) noexcept {
  if (arrival_rate < 0.0 || service_rate <= arrival_rate) return kInf;
  return 1.0 / (service_rate - arrival_rate);
}

std::uint64_t mmm_min_servers(double arrival_rate, double service_rate,
                              double target_response) {
  if (!(target_response > 1.0 / service_rate))
    throw std::invalid_argument(
        "mmm_min_servers: target must exceed the service time");
  if (arrival_rate == 0.0) return 0;
  auto m = static_cast<std::uint64_t>(
      std::floor(arrival_rate / service_rate));  // below stability floor
  for (;;) {
    ++m;
    if (mmm_response_time(m, arrival_rate, service_rate) <= target_response)
      return m;
  }
}

}  // namespace billcap::queueing
