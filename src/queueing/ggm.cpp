#include "queueing/ggm.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace billcap::queueing {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

void check_params(const GgmParams& params) {
  if (!(params.service_rate > 0.0))
    throw std::invalid_argument("GgmParams: service_rate must be > 0");
  if (params.ca2 < 0.0 || params.cb2 < 0.0)
    throw std::invalid_argument("GgmParams: squared CVs must be >= 0");
}

double variability(const GgmParams& params) noexcept {
  return 0.5 * (params.ca2 + params.cb2);
}

}  // namespace

double allen_cunneen_response_time(const GgmParams& params, double n_servers,
                                   double arrival_rate) noexcept {
  const double mu = params.service_rate;
  const double capacity = n_servers * mu;
  if (arrival_rate < 0.0 || capacity <= arrival_rate) return kInf;
  if (arrival_rate == 0.0) return 1.0 / mu;
  return 1.0 / mu + variability(params) / (capacity - arrival_rate);
}

double allen_cunneen_full_response_time(const GgmParams& params,
                                        std::uint64_t m_servers,
                                        double arrival_rate) noexcept {
  const double mu = params.service_rate;
  const double m = static_cast<double>(m_servers);
  const double capacity = m * mu;
  if (arrival_rate < 0.0 || capacity <= arrival_rate) return kInf;
  if (arrival_rate == 0.0) return 1.0 / mu;
  const double rho = arrival_rate / capacity;
  // Sakasegawa's approximation of the Erlang-C delay probability inside the
  // Allen-Cunneen waiting-time formula:
  //   Wq ~= (C_A^2 + C_B^2)/2 * rho^(sqrt(2(m+1)) - 1) / (m (1 - rho) mu).
  const double exponent = std::sqrt(2.0 * (m + 1.0)) - 1.0;
  const double wq = variability(params) * std::pow(rho, exponent) /
                    (m * (1.0 - rho) * mu);
  return 1.0 / mu + wq;
}

double fractional_servers_for_response_time(const GgmParams& params,
                                            double arrival_rate,
                                            double target_response) {
  check_params(params);
  if (arrival_rate < 0.0)
    throw std::invalid_argument("arrival_rate must be >= 0");
  const auto coefs = server_requirement_coefficients(params, target_response);
  if (arrival_rate == 0.0) return 0.0;
  return coefs.slope * arrival_rate + coefs.intercept;
}

std::uint64_t min_servers_for_response_time(const GgmParams& params,
                                            double arrival_rate,
                                            double target_response) {
  const double fractional =
      fractional_servers_for_response_time(params, arrival_rate, target_response);
  if (fractional == 0.0) return 0;
  const double ceiled = std::ceil(fractional - 1e-9);
  return static_cast<std::uint64_t>(ceiled);
}

ServerRequirementCoefficients server_requirement_coefficients(
    const GgmParams& params, double target_response) {
  check_params(params);
  const double mu = params.service_rate;
  const double slack = target_response - 1.0 / mu;
  if (!(slack > 0.0))
    throw std::invalid_argument(
        "target_response must exceed the service time 1/mu");
  ServerRequirementCoefficients coefs;
  coefs.slope = 1.0 / mu;
  coefs.intercept = variability(params) / (mu * slack);
  return coefs;
}

}  // namespace billcap::queueing
