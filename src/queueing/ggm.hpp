#pragma once

#include <cstdint>

namespace billcap::queueing {

/// Parameters of a G/G/m data-center queue in the paper's model (eq. 3).
/// Rates are per hour to match the invocation period; a server with service
/// rate mu serves mu requests per hour on average.
struct GgmParams {
  double service_rate = 1.0;  ///< mu: requests/hour per server, > 0
  double ca2 = 1.0;           ///< squared CV of inter-arrival times (C_A^2)
  double cb2 = 1.0;           ///< squared CV of request sizes (C_B^2)
};

/// Allen-Cunneen response time of a G/G/m queue with n busy servers and
/// arrival rate lambda, using the paper's rho -> 1 simplification:
///   R = 1/mu + ((C_A^2 + C_B^2)/2) * 1/(n*mu - lambda).
/// Requires n*mu > lambda (stability); returns +inf otherwise.
double allen_cunneen_response_time(const GgmParams& params, double n_servers,
                                   double arrival_rate) noexcept;

/// Full Allen-Cunneen approximation (without the rho -> 1 shortcut):
///   R = 1/mu + ((C_A^2 + C_B^2)/2) * (rho^(sqrt(2(m+1)) ) ... )
/// We use the standard P_wait-based form with the Sakasegawa exponent
/// rho^(sqrt(2(m+1))-1); provided for sensitivity tests against the
/// simplified model the optimizer uses. Returns +inf when unstable.
double allen_cunneen_full_response_time(const GgmParams& params,
                                        std::uint64_t m_servers,
                                        double arrival_rate) noexcept;

/// Minimum number of servers n (integer) such that the simplified
/// Allen-Cunneen response time is <= `target_response`. This is the paper's
/// per-site "local optimizer" (Section IV-B): it keeps just enough servers
/// active to meet the response-time set point Rs.
///
/// Requires target_response > 1/mu (otherwise no finite n works; throws
/// std::invalid_argument). Returns 0 when arrival_rate == 0.
std::uint64_t min_servers_for_response_time(const GgmParams& params,
                                            double arrival_rate,
                                            double target_response);

/// The continuous (un-ceiled) server requirement:
///   n*(lambda) = (lambda + K / (Rs - 1/mu)) / mu,  K = (C_A^2 + C_B^2)/2.
/// This affine function of lambda is what the MILP formulations embed; the
/// integer requirement is its ceiling.
double fractional_servers_for_response_time(const GgmParams& params,
                                            double arrival_rate,
                                            double target_response);

/// Slope (d n*/d lambda = 1/mu) and intercept (K / (mu (Rs - 1/mu))) of the
/// affine server requirement, exposed so model-building code documents its
/// provenance instead of re-deriving the algebra.
struct ServerRequirementCoefficients {
  double slope = 0.0;      ///< servers per (request/hour)
  double intercept = 0.0;  ///< servers required as lambda -> 0+
};
ServerRequirementCoefficients server_requirement_coefficients(
    const GgmParams& params, double target_response);

}  // namespace billcap::queueing
