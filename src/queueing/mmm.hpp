#pragma once

#include <cstdint>

namespace billcap::queueing {

/// Exact M/M/m (Erlang-C) results, used as ground truth to validate the
/// Allen-Cunneen approximation (which is exact for M/M/1 and asymptotically
/// tight for M/M/m): the paper's G/G/m model reduces to M/M/m when
/// C_A^2 = C_B^2 = 1.

/// Erlang-C probability that an arriving request must wait, for m servers,
/// arrival rate lambda and per-server service rate mu. Requires stability
/// (lambda < m*mu); returns 1.0 at or beyond saturation. Computed with a
/// numerically-stable recurrence (no factorials).
double erlang_c(std::uint64_t m_servers, double arrival_rate,
                double service_rate) noexcept;

/// Exact mean response time of an M/M/m queue:
///   R = 1/mu + C(m, lambda/mu) / (m*mu - lambda).
/// Returns +inf when unstable.
double mmm_response_time(std::uint64_t m_servers, double arrival_rate,
                         double service_rate) noexcept;

/// Exact mean response time of an M/M/1 queue: 1 / (mu - lambda).
/// Returns +inf when unstable.
double mm1_response_time(double arrival_rate, double service_rate) noexcept;

/// Smallest m with exact M/M/m response time <= target. Linear scan from
/// the stability floor; intended for validation, not hot paths. Throws
/// std::invalid_argument when target <= 1/mu.
std::uint64_t mmm_min_servers(double arrival_rate, double service_rate,
                              double target_response);

}  // namespace billcap::queueing
