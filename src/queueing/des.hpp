#pragma once

#include <cstdint>

namespace billcap::queueing {

/// Inter-arrival / service-time distributions for the discrete-event
/// simulator, parameterized by mean and squared coefficient of variation:
///  * kDeterministic: cv2 = 0
///  * kExponential:   cv2 = 1
///  * kHyperexponential: two-phase balanced-means H2, any cv2 > 1
///  * kErlang: k-phase Erlang, cv2 = 1/k for k = round(1/cv2) (cv2 in (0,1))
enum class Distribution {
  kDeterministic,
  kExponential,
  kHyperexponential,
  kErlang,
};

/// Picks the distribution family that realizes a given cv2 (0 ->
/// deterministic, 1 -> exponential, <1 -> Erlang, >1 -> H2).
Distribution distribution_for_cv2(double cv2) noexcept;

/// Configuration of one G/G/m FCFS simulation run.
struct DesConfig {
  std::uint64_t servers = 1;
  double arrival_rate = 0.5;     ///< requests per time unit
  double service_rate = 1.0;     ///< per server per time unit
  double arrival_cv2 = 1.0;      ///< C_A^2
  double service_cv2 = 1.0;      ///< C_B^2
  std::size_t warmup = 20'000;   ///< requests discarded before measuring
  std::size_t measured = 200'000;
  std::uint64_t seed = 1;
};

/// Empirical results of a run.
struct DesResult {
  double mean_response = 0.0;  ///< sojourn time (wait + service)
  double mean_wait = 0.0;
  double utilization = 0.0;    ///< busy time share per server
  std::size_t completed = 0;
};

/// Event-driven FCFS G/G/m simulation (exact for this discipline: each
/// arrival is assigned the earliest-free server). Used by the property
/// tests to validate the Allen-Cunneen approximation and the Erlang-C
/// formulas against an independent ground truth.
DesResult simulate_ggm(const DesConfig& config);

}  // namespace billcap::queueing
