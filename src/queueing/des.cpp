#include "queueing/des.hpp"

#include <algorithm>
#include <cmath>
#include <queue>
#include <stdexcept>
#include <vector>

#include "util/rng.hpp"

namespace billcap::queueing {

namespace {

/// Draws nonnegative variates with a given mean and cv2.
class Sampler {
 public:
  Sampler(double mean, double cv2, util::Rng& rng)
      : mean_(mean), cv2_(cv2), rng_(rng),
        dist_(distribution_for_cv2(cv2)) {
    if (!(mean > 0.0)) throw std::invalid_argument("Sampler: mean must be > 0");
    if (cv2 < 0.0) throw std::invalid_argument("Sampler: cv2 must be >= 0");
    if (dist_ == Distribution::kHyperexponential) {
      // Balanced-means H2: with probability p use rate 2p/mean, else
      // 2(1-p)/mean;  p = (1 + sqrt((cv2-1)/(cv2+1)))/2 realizes cv2.
      p_ = 0.5 * (1.0 + std::sqrt((cv2 - 1.0) / (cv2 + 1.0)));
    } else if (dist_ == Distribution::kErlang) {
      phases_ = std::max<std::uint64_t>(
          1, static_cast<std::uint64_t>(std::llround(1.0 / cv2)));
    }
  }

  double draw() {
    switch (dist_) {
      case Distribution::kDeterministic:
        return mean_;
      case Distribution::kExponential:
        return rng_.exponential(1.0 / mean_);
      case Distribution::kHyperexponential: {
        const double rate = rng_.bernoulli(p_) ? 2.0 * p_ / mean_
                                               : 2.0 * (1.0 - p_) / mean_;
        return rng_.exponential(rate);
      }
      case Distribution::kErlang: {
        const double phase_rate = static_cast<double>(phases_) / mean_;
        double total = 0.0;
        for (std::uint64_t k = 0; k < phases_; ++k)
          total += rng_.exponential(phase_rate);
        return total;
      }
    }
    return mean_;
  }

 private:
  double mean_;
  double cv2_;
  util::Rng& rng_;
  Distribution dist_;
  double p_ = 0.5;
  std::uint64_t phases_ = 1;
};

}  // namespace

Distribution distribution_for_cv2(double cv2) noexcept {
  if (cv2 <= 1e-12) return Distribution::kDeterministic;
  if (std::abs(cv2 - 1.0) <= 1e-9) return Distribution::kExponential;
  return cv2 > 1.0 ? Distribution::kHyperexponential : Distribution::kErlang;
}

DesResult simulate_ggm(const DesConfig& config) {
  if (config.servers == 0)
    throw std::invalid_argument("simulate_ggm: need at least one server");
  if (!(config.arrival_rate > 0.0) || !(config.service_rate > 0.0))
    throw std::invalid_argument("simulate_ggm: rates must be > 0");
  if (config.arrival_rate >=
      static_cast<double>(config.servers) * config.service_rate)
    throw std::invalid_argument("simulate_ggm: unstable configuration");

  util::Rng rng(config.seed);
  Sampler arrivals(1.0 / config.arrival_rate, config.arrival_cv2, rng);
  Sampler services(1.0 / config.service_rate, config.service_cv2, rng);

  // Earliest-free-server discipline: a min-heap of server free times.
  std::priority_queue<double, std::vector<double>, std::greater<>> free_at;
  for (std::uint64_t s = 0; s < config.servers; ++s) free_at.push(0.0);

  DesResult result;
  double clock = 0.0;
  double wait_sum = 0.0;
  double response_sum = 0.0;
  double busy_sum = 0.0;
  double measure_start_time = 0.0;
  const std::size_t total = config.warmup + config.measured;
  for (std::size_t i = 0; i < total; ++i) {
    clock += arrivals.draw();
    const double service = services.draw();
    const double server_free = free_at.top();
    free_at.pop();
    const double start = std::max(clock, server_free);
    const double finish = start + service;
    free_at.push(finish);
    if (i == config.warmup) measure_start_time = clock;
    if (i >= config.warmup) {
      wait_sum += start - clock;
      response_sum += finish - clock;
      busy_sum += service;
      ++result.completed;
    }
  }
  if (result.completed > 0) {
    result.mean_wait = wait_sum / static_cast<double>(result.completed);
    result.mean_response =
        response_sum / static_cast<double>(result.completed);
    const double span = std::max(clock - measure_start_time, 1e-12);
    result.utilization =
        busy_sum / (span * static_cast<double>(config.servers));
  }
  return result;
}

}  // namespace billcap::queueing
