#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace billcap::util {

/// Right-padded ASCII table for bench/example output. The figure benches use
/// this to print the paper's series as aligned rows on stdout.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends a row of preformatted cells (must match header width).
  void add_row(std::vector<std::string> cells);

  /// Appends a row where every value is formatted with `precision` digits
  /// after the decimal point.
  void add_numeric_row(const std::vector<double>& values, int precision = 3);

  /// Renders the table with a separator rule under the header.
  std::string to_string() const;

  /// Streams to_string() to `os`.
  void print(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Fixed-precision formatting helper shared by tables and benches.
std::string format_fixed(double x, int precision);

}  // namespace billcap::util
