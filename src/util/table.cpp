#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace billcap::util {

std::string format_fixed(double x, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, x);
  return buf;
}

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != header_.size())
    throw std::invalid_argument("Table::add_row: width mismatch");
  rows_.push_back(std::move(cells));
}

void Table::add_numeric_row(const std::vector<double>& values, int precision) {
  std::vector<std::string> cells;
  cells.reserve(values.size());
  for (double v : values) cells.push_back(format_fixed(v, precision));
  add_row(std::move(cells));
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c)
    widths[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) os << "  ";
      os << cells[c];
      for (std::size_t pad = cells[c].size(); pad < widths[c]; ++pad)
        os << ' ';
    }
    os << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c)
    total += widths[c] + (c ? 2 : 0);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
  return os.str();
}

void Table::print(std::ostream& os) const { os << to_string(); }

}  // namespace billcap::util
