#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <string>
#include <thread>
#include <type_traits>
#include <vector>

namespace billcap::util {

/// Outcome of a task submitted through `submit_noexcept`: either the task's
/// return value or the `what()` of the exception it threw. Workers never
/// terminate the process on a throwing task — the error travels back to the
/// submitter as data, the same way `CappingOutcome.failure` carries solver
/// trouble instead of an exception.
template <typename R>
struct TaskResult {
  bool ok = false;
  R value{};
  std::string error;
};

template <>
struct TaskResult<void> {
  bool ok = false;
  std::string error;
};

/// Fixed-size worker pool. The sweep benches (pricing policies, monthly
/// budgets) and the Monte-Carlo property tests run independent month-long
/// simulations through this pool; on a single-core host it degrades
/// gracefully to near-serial execution.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (defaults to hardware concurrency, min 1).
  explicit ThreadPool(std::size_t num_threads = 0);

  /// Drains outstanding work and joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueues a task and returns a future for its result.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> fut = task->get_future();
    {
      std::lock_guard lock(mutex_);
      if (stopping_) throw std::runtime_error("ThreadPool: submit after stop");
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  /// Enqueues a task whose exceptions are converted into a typed
  /// `TaskResult` instead of being rethrown from `future::get()`. Use this
  /// for fan-out work where one bad shard must not abort the reduction —
  /// the caller inspects `ok`/`error` per task and degrades locally.
  template <typename F>
  auto submit_noexcept(F&& fn)
      -> std::future<TaskResult<std::invoke_result_t<F>>> {
    using R = std::invoke_result_t<F>;
    return submit(
        [task = std::forward<F>(fn)]() mutable -> TaskResult<R> {
          TaskResult<R> result;
          try {
            if constexpr (std::is_void_v<R>) {
              task();
            } else {
              result.value = task();
            }
            result.ok = true;
          } catch (const std::exception& ex) {
            result.error = ex.what();
          } catch (...) {  // billcap-lint: allow(catch-all): typed TaskResult
            // boundary — unknown exception becomes an error string, never
            // an aborted worker thread.
            result.error = "unknown exception";
          }
          return result;
        });
  }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

/// Runs fn(i) for i in [0, n) on the pool, blocking until ALL tasks have
/// completed (even when some throw — pending tasks reference `fn`, so an
/// early return would dangle). The first exception is then rethrown.
void parallel_for(ThreadPool& pool, std::size_t n,
                  const std::function<void(std::size_t)>& fn);

/// Convenience overload using a process-wide shared pool.
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

/// The lazily-created process-wide pool used by the convenience overload.
ThreadPool& shared_pool();

}  // namespace billcap::util
