#include "util/rng.hpp"

#include <cmath>
#include <cstddef>

namespace billcap::util {

namespace {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& lane : s_) lane = splitmix64(sm);
}

Rng::result_type Rng::operator()() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::below(std::uint64_t n) noexcept {
  // Lemire's method with rejection to remove modulo bias.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < n) {
    const std::uint64_t threshold = (0 - n) % n;
    while (lo < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * n;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::normal() noexcept {
  if (has_spare_) {
    has_spare_ = false;
    return spare_normal_;
  }
  double u = 0.0;
  double v = 0.0;
  double s = 0.0;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_normal_ = v * factor;
  has_spare_ = true;
  return u * factor;
}

double Rng::normal(double mean, double stddev) noexcept {
  return mean + stddev * normal();
}

double Rng::lognormal(double mu, double sigma) noexcept {
  return std::exp(normal(mu, sigma));
}

double Rng::exponential(double rate) noexcept {
  // 1 - uniform() is in (0, 1], so the log is finite.
  return -std::log(1.0 - uniform()) / rate;
}

bool Rng::bernoulli(double p) noexcept { return uniform() < p; }

Rng Rng::split() noexcept { return Rng((*this)()); }

std::array<std::uint64_t, 4> Rng::state() const noexcept {
  return {s_[0], s_[1], s_[2], s_[3]};
}

void Rng::set_state(const std::array<std::uint64_t, 4>& state) noexcept {
  for (int i = 0; i < 4; ++i) s_[i] = state[static_cast<std::size_t>(i)];
  has_spare_ = false;
  spare_normal_ = 0.0;
}

}  // namespace billcap::util
