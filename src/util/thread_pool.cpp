#include "util/thread_pool.hpp"

#include <algorithm>

namespace billcap::util {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void parallel_for(ThreadPool& pool, std::size_t n,
                  const std::function<void(std::size_t)>& fn) {
  std::vector<std::future<void>> futures;
  futures.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    futures.push_back(pool.submit([&fn, i] { fn(i); }));
  // Every future must complete before any exception is rethrown: pending
  // tasks capture `fn` by reference, so returning early would let workers
  // run against a dead frame.
  std::exception_ptr first;
  for (auto& fut : futures) {
    try {
      fut.get();
    } catch (...) {  // billcap-lint: allow(catch-all): captured as
      // exception_ptr and rethrown below once all tasks have completed.
      if (!first) first = std::current_exception();
    }
  }
  if (first) std::rethrow_exception(first);
}

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn) {
  parallel_for(shared_pool(), n, fn);
}

ThreadPool& shared_pool() {
  static ThreadPool pool;
  return pool;
}

}  // namespace billcap::util
