#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace billcap::util {

/// Deterministic, fast pseudo-random generator (xoshiro256**), seeded via
/// SplitMix64. Used everywhere randomness is needed so that every trace,
/// test and benchmark in the repository is exactly reproducible from a
/// 64-bit seed. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four 64-bit lanes from `seed` using SplitMix64, which
  /// guarantees well-mixed non-zero state for any seed (including 0).
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  /// Next raw 64-bit draw.
  result_type operator()() noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;

  /// Uniform double in [lo, hi). Requires lo <= hi.
  double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [0, n). Requires n > 0. Uses Lemire's unbiased
  /// multiply-shift rejection method.
  std::uint64_t below(std::uint64_t n) noexcept;

  /// Standard normal draw (Marsaglia polar method; caches the spare value).
  double normal() noexcept;

  /// Normal draw with the given mean and standard deviation.
  double normal(double mean, double stddev) noexcept;

  /// Lognormal draw: exp(Normal(mu, sigma)).
  double lognormal(double mu, double sigma) noexcept;

  /// Exponential draw with the given rate (> 0).
  double exponential(double rate) noexcept;

  /// Bernoulli trial with success probability p in [0, 1].
  bool bernoulli(double p) noexcept;

  /// Derives an independent child generator; lets parallel workers share a
  /// root seed without sharing a stream.
  Rng split() noexcept;

  /// The four xoshiro lanes, for durable checkpointing of a stream's
  /// position. The cached spare normal is not part of the state: set_state
  /// discards it, so save/restore is exact for the uniform/bernoulli draws
  /// the checkpointed streams use, and merely re-draws a pending normal.
  std::array<std::uint64_t, 4> state() const noexcept;
  void set_state(const std::array<std::uint64_t, 4>& state) noexcept;

 private:
  std::uint64_t s_[4];
  double spare_normal_ = 0.0;
  bool has_spare_ = false;
};

}  // namespace billcap::util
