#include "util/csv.hpp"

#include <algorithm>
#include <charconv>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace billcap::util {

namespace {

bool needs_quoting(std::string_view cell) {
  return cell.find_first_of(",\"\n\r") != std::string_view::npos;
}

std::string quote(std::string_view cell) {
  std::string out;
  out.reserve(cell.size() + 2);
  out.push_back('"');
  for (char c : cell) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

std::string serialize_row(const std::vector<std::string>& cells) {
  std::string line;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) line.push_back(',');
    line += needs_quoting(cells[i]) ? quote(cells[i]) : cells[i];
  }
  line.push_back('\n');
  return line;
}

}  // namespace

std::string format_double(double x) {
  char buf[64];
  const auto res = std::to_chars(buf, buf + sizeof(buf), x);
  return std::string(buf, res.ptr);
}

Csv::Csv(std::vector<std::string> header) : header_(std::move(header)) {}

void Csv::add_row(std::vector<std::string> cells) {
  if (cells.size() != header_.size())
    throw std::invalid_argument("Csv::add_row: width mismatch");
  rows_.push_back(std::move(cells));
}

void Csv::add_numeric_row(const std::vector<double>& values) {
  std::vector<std::string> cells;
  cells.reserve(values.size());
  for (double v : values) cells.push_back(format_double(v));
  add_row(std::move(cells));
}

const std::string& Csv::cell(std::size_t row, std::size_t col) const {
  return rows_.at(row).at(col);
}

double Csv::cell_as_double(std::size_t row, std::size_t col) const {
  const std::string& s = cell(row, col);
  double value = 0.0;
  const auto res = std::from_chars(s.data(), s.data() + s.size(), value);
  if (res.ec != std::errc{})
    throw std::runtime_error("Csv: cell is not numeric: " + s);
  return value;
}

std::size_t Csv::column_index(std::string_view name) const {
  for (std::size_t i = 0; i < header_.size(); ++i)
    if (header_[i] == name) return i;
  throw std::out_of_range("Csv: no such column: " + std::string(name));
}

std::vector<double> Csv::column_as_doubles(std::string_view name) const {
  const std::size_t col = column_index(name);
  std::vector<double> out;
  out.reserve(rows_.size());
  for (std::size_t r = 0; r < rows_.size(); ++r)
    out.push_back(cell_as_double(r, col));
  return out;
}

std::string Csv::to_string() const {
  std::ostringstream os;
  auto emit_row = [&os](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (i) os << ',';
      os << (needs_quoting(cells[i]) ? quote(cells[i]) : cells[i]);
    }
    os << '\n';
  };
  emit_row(header_);
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

void Csv::save(const std::string& path) const {
  // Callers own atomicity: CsvWriter's resume path saves to a temp file
  // and renames over the original.
  // billcap-lint: allow(raw-write): primitive used by the temp+rename path
  std::ofstream out(path);
  if (!out) throw std::runtime_error("Csv::save: cannot open " + path);
  out << to_string();
  if (!out) throw std::runtime_error("Csv::save: write failed: " + path);
}

namespace {

/// Splits CSV text into records of cells (quote-aware); no width checks.
std::vector<std::vector<std::string>> collect_records(std::string_view text) {
  std::vector<std::vector<std::string>> records;
  std::vector<std::string> record;
  std::string cell;
  bool in_quotes = false;
  bool row_has_content = false;

  auto end_cell = [&] {
    record.push_back(std::move(cell));
    cell.clear();
  };
  auto end_record = [&] {
    if (row_has_content || !record.empty() || !cell.empty()) {
      end_cell();
      records.push_back(std::move(record));
      record.clear();
    }
    row_has_content = false;
  };

  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          cell.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cell.push_back(c);
      }
      continue;
    }
    switch (c) {
      case '"':
        in_quotes = true;
        row_has_content = true;
        break;
      case ',':
        end_cell();
        row_has_content = true;
        break;
      case '\r':
        break;
      case '\n':
        end_record();
        break;
      default:
        cell.push_back(c);
        row_has_content = true;
    }
  }
  end_record();
  return records;
}

}  // namespace

Csv Csv::parse(std::string_view text) {
  auto records = collect_records(text);
  if (records.empty()) throw std::runtime_error("Csv::parse: empty document");
  Csv doc(std::move(records.front()));
  for (std::size_t r = 1; r < records.size(); ++r)
    doc.add_row(std::move(records[r]));
  return doc;
}

Csv Csv::parse_resilient(std::string_view text) {
  // An unterminated final line is a row the writer never finished: the
  // newline is the last byte of every committed row, so anything after the
  // last '\n' is torn and cannot be trusted (its last cell may be a
  // truncated prefix that still parses).
  if (!text.empty() && text.back() != '\n') {
    const std::size_t nl = text.find_last_of('\n');
    text = nl == std::string_view::npos ? std::string_view{}
                                        : text.substr(0, nl + 1);
  }
  auto records = collect_records(text);
  if (records.empty()) throw std::runtime_error("Csv::parse: empty document");
  Csv doc(std::move(records.front()));
  for (std::size_t r = 1; r < records.size(); ++r) {
    if (r + 1 == records.size() && records[r].size() != doc.num_cols())
      break;  // torn final row (partial OS write that still got a newline)
    doc.add_row(std::move(records[r]));
  }
  return doc;
}

Csv Csv::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("Csv::load: cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse(buffer.str());
}

CsvWriter::CsvWriter(const std::string& path, std::vector<std::string> header)
    : path_(path), header_(std::move(header)) {
  open_fresh();
}

CsvWriter::CsvWriter(const std::string& path, std::vector<std::string> header,
                     std::size_t keep_rows)
    : path_(path), header_(std::move(header)) {
  std::ifstream probe(path_);
  if (!probe) {
    open_fresh();
    return;
  }
  probe.close();

  std::string text;
  {
    std::ifstream in(path_, std::ios::binary);
    if (!in) throw std::runtime_error("CsvWriter: cannot open " + path_);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    text = buffer.str();
  }
  // A kill mid-append leaves a torn last row; it was never
  // checkpoint-committed, so dropping it is exactly the dedup the resume
  // performs anyway.
  const Csv existing = Csv::parse_resilient(text);
  if (existing.header() != header_)
    throw std::runtime_error("CsvWriter: header of " + path_ +
                             " does not match (stale file from a different "
                             "run?)");
  // Rewrite with only the rows the caller vouches for, then append. The
  // rewrite goes through a temp file + rename so a kill here cannot lose
  // the committed prefix.
  Csv kept(header_);
  const std::size_t rows = std::min(keep_rows, existing.num_rows());
  for (std::size_t r = 0; r < rows; ++r) kept.add_row(existing.rows()[r]);
  const std::string tmp = path_ + ".tmp";
  kept.save(tmp);
  if (std::rename(tmp.c_str(), path_.c_str()) != 0)
    throw std::runtime_error("CsvWriter: rename " + tmp + " -> " + path_ +
                             " failed");
  out_.open(path_, std::ios::app);
  if (!out_) throw std::runtime_error("CsvWriter: cannot reopen " + path_);
  num_rows_ = rows;
}

void CsvWriter::open_fresh() {
  out_.open(path_, std::ios::trunc);
  if (!out_) throw std::runtime_error("CsvWriter: cannot open " + path_);
  out_ << serialize_row(header_);
  out_.flush();
  if (!out_) throw std::runtime_error("CsvWriter: write failed: " + path_);
}

void CsvWriter::add_row(const std::vector<std::string>& cells) {
  if (cells.size() != header_.size())
    throw std::invalid_argument("CsvWriter::add_row: width mismatch");
  out_ << serialize_row(cells);
  out_.flush();
  if (!out_) throw std::runtime_error("CsvWriter: write failed: " + path_);
  ++num_rows_;
}

}  // namespace billcap::util
