#include "util/journal.hpp"

#include <bit>
#include <cerrno>
#include <charconv>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#endif

namespace billcap::util {

namespace {

/// FNV-1a over the journal payload; cheap, stable, and plenty to catch
/// truncation and bit rot (this is an integrity check, not authentication).
std::uint64_t fnv1a(std::string_view data) noexcept {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (char c : data) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

std::string hex_u64(std::uint64_t value) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(value));
  return std::string(buf, 16);
}

std::uint64_t parse_hex_u64(std::string_view text) {
  std::uint64_t value = 0;
  const auto res =
      std::from_chars(text.data(), text.data() + text.size(), value, 16);
  if (res.ec != std::errc{} || res.ptr != text.data() + text.size())
    throw std::runtime_error("Journal: bad hex value '" + std::string(text) +
                             "'");
  return value;
}

}  // namespace

Journal::Journal(std::string magic, int version)
    : magic_(std::move(magic)), version_(version) {
  if (magic_.empty() || magic_.find_first_of(" \n") != std::string::npos)
    throw std::invalid_argument("Journal: bad magic word");
  if (version_ < 1) throw std::invalid_argument("Journal: version >= 1");
}

void Journal::set(const std::string& key, std::string value) {
  if (key.empty() || key.find_first_of("=\n") != std::string::npos)
    throw std::invalid_argument("Journal: bad key '" + key + "'");
  if (value.find('\n') != std::string::npos)
    throw std::invalid_argument("Journal: value for '" + key +
                                "' contains newline");
  if (has(key))
    throw std::invalid_argument("Journal: duplicate key '" + key + "'");
  entries_.emplace_back(key, std::move(value));
}

void Journal::set_u64(const std::string& key, std::uint64_t value) {
  set(key, std::to_string(value));
}

void Journal::set_size(const std::string& key, std::size_t value) {
  set_u64(key, static_cast<std::uint64_t>(value));
}

void Journal::set_double_bits(const std::string& key, double value) {
  set(key, hex_u64(std::bit_cast<std::uint64_t>(value)));
}

void Journal::set_double_list(const std::string& key,
                              const std::vector<double>& values) {
  std::string joined;
  joined.reserve(values.size() * 17);
  for (double v : values) {
    if (!joined.empty()) joined.push_back(' ');
    joined += hex_u64(std::bit_cast<std::uint64_t>(v));
  }
  set(key, std::move(joined));
}

bool Journal::has(const std::string& key) const noexcept {
  for (const auto& [k, v] : entries_)
    if (k == key) return true;
  return false;
}

const std::string& Journal::get(const std::string& key) const {
  for (const auto& [k, v] : entries_)
    if (k == key) return v;
  throw std::runtime_error("Journal: missing key '" + key + "'");
}

std::uint64_t Journal::get_u64(const std::string& key) const {
  const std::string& s = get(key);
  std::uint64_t value = 0;
  const auto res = std::from_chars(s.data(), s.data() + s.size(), value);
  if (res.ec != std::errc{} || res.ptr != s.data() + s.size())
    throw std::runtime_error("Journal: key '" + key + "' is not an integer: " +
                             s);
  return value;
}

std::size_t Journal::get_size(const std::string& key) const {
  return static_cast<std::size_t>(get_u64(key));
}

double Journal::get_double_bits(const std::string& key) const {
  return std::bit_cast<double>(parse_hex_u64(get(key)));
}

std::vector<double> Journal::get_double_list(const std::string& key) const {
  const std::string& s = get(key);
  std::vector<double> out;
  std::stringstream tokens(s);
  std::string token;
  while (tokens >> token)
    out.push_back(std::bit_cast<double>(parse_hex_u64(token)));
  return out;
}

std::string Journal::serialize() const {
  std::string payload = magic_ + " v" + std::to_string(version_) + "\n";
  for (const auto& [k, v] : entries_) {
    payload += k;
    payload += '=';
    payload += v;
    payload += '\n';
  }
  return payload + "checksum " + hex_u64(fnv1a(payload)) + "\n";
}

Journal Journal::parse(std::string_view text, std::string_view expected_magic,
                       int max_version) {
  // The checksum line is the last non-empty line; everything before it is
  // the covered payload.
  const std::size_t marker = text.rfind("checksum ");
  if (marker == std::string_view::npos)
    throw std::runtime_error("Journal: no checksum (truncated file?)");
  if (marker == 0 || text[marker - 1] != '\n')
    throw std::runtime_error("Journal: malformed checksum line");
  std::string_view checksum_line = text.substr(marker);
  if (!checksum_line.empty() && checksum_line.back() == '\n')
    checksum_line.remove_suffix(1);
  const std::string_view payload = text.substr(0, marker);
  const std::uint64_t stated =
      parse_hex_u64(checksum_line.substr(std::string_view("checksum ").size()));
  if (stated != fnv1a(payload))
    throw std::runtime_error("Journal: checksum mismatch (corrupted file)");

  // Header: "<magic> v<version>".
  const std::size_t eol = payload.find('\n');
  if (eol == std::string_view::npos)
    throw std::runtime_error("Journal: missing header");
  const std::string_view header = payload.substr(0, eol);
  const std::size_t space = header.rfind(" v");
  if (space == std::string_view::npos)
    throw std::runtime_error("Journal: malformed header");
  const std::string_view magic = header.substr(0, space);
  if (magic != expected_magic)
    throw std::runtime_error("Journal: magic '" + std::string(magic) +
                             "' != expected '" + std::string(expected_magic) +
                             "'");
  int version = 0;
  const std::string_view vtext = header.substr(space + 2);
  const auto vres =
      std::from_chars(vtext.data(), vtext.data() + vtext.size(), version);
  if (vres.ec != std::errc{} || vres.ptr != vtext.data() + vtext.size())
    throw std::runtime_error("Journal: malformed version");
  if (version < 1 || version > max_version)
    throw std::runtime_error("Journal: version " + std::to_string(version) +
                             " not supported (max " +
                             std::to_string(max_version) + ")");

  Journal journal(std::string(magic), version);
  std::size_t pos = eol + 1;
  while (pos < payload.size()) {
    std::size_t next = payload.find('\n', pos);
    if (next == std::string_view::npos) next = payload.size();
    const std::string_view line = payload.substr(pos, next - pos);
    pos = next + 1;
    if (line.empty()) continue;
    const std::size_t eq = line.find('=');
    if (eq == std::string_view::npos)
      throw std::runtime_error("Journal: malformed line '" +
                               std::string(line) + "'");
    journal.set(std::string(line.substr(0, eq)),
                std::string(line.substr(eq + 1)));
  }
  return journal;
}

void Journal::save_atomic(const std::string& path) const {
  const std::string tmp = path + ".tmp";
  const std::string text = serialize();
#if defined(__unix__) || defined(__APPLE__)
  // POSIX path: fsync the data before the rename and the directory after
  // it. Without the directory fsync the rename lives only in the page
  // cache — a power cut could resurrect the *old* journal (process-death
  // durability but not power-loss durability).
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) throw std::runtime_error("Journal: cannot open " + tmp);
  std::size_t written = 0;
  while (written < text.size()) {
    const ssize_t n =
        ::write(fd, text.data() + written, text.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      throw std::runtime_error("Journal: write failed: " + tmp);
    }
    written += static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    throw std::runtime_error("Journal: fsync failed: " + tmp);
  }
  if (::close(fd) != 0)
    throw std::runtime_error("Journal: close failed: " + tmp);
  if (std::rename(tmp.c_str(), path.c_str()) != 0)
    throw std::runtime_error("Journal: rename " + tmp + " -> " + path +
                             " failed");
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? std::string(".")
                                                     : path.substr(0, slash);
  const int dfd = ::open(dir.c_str(), O_RDONLY);
  if (dfd >= 0) {
    // Some filesystems refuse fsync on a directory handle (EINVAL); that
    // is a property of the mount, not an I/O error worth aborting for.
    ::fsync(dfd);
    ::close(dfd);
  }
#else
  {
    // This IS the atomic path — the non-POSIX half of save_atomic writes
    // the temp file that the rename below commits.
    // billcap-lint: allow(raw-write): temp half of the temp+rename commit
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw std::runtime_error("Journal: cannot open " + tmp);
    out << text;
    out.flush();
    if (!out) throw std::runtime_error("Journal: write failed: " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0)
    throw std::runtime_error("Journal: rename " + tmp + " -> " + path +
                             " failed");
#endif
}

std::string Journal::generation_path(const std::string& path,
                                     std::size_t generation) {
  return generation == 0 ? path : path + "." + std::to_string(generation);
}

void Journal::rotate_generations(const std::string& path,
                                 std::size_t keep_generations) {
  for (std::size_t g = keep_generations; g-- > 1;) {
    // A failed rename (usually ENOENT: that generation does not exist yet)
    // leaves the older generation in place; the fallback scan on load
    // copes with gaps and duplicates.
    std::rename(generation_path(path, g - 1).c_str(),
                generation_path(path, g).c_str());
  }
}

Journal Journal::load(const std::string& path, std::string_view expected_magic,
                      int max_version) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("Journal: cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse(buffer.str(), expected_magic, max_version);
}

}  // namespace billcap::util
