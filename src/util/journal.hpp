#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace billcap::util {

/// A small versioned key/value journal for durable state (checkpoints).
/// The on-disk form is line-oriented text:
///
///   <magic> v<version>
///   <key>=<value>
///   ...
///   checksum <16 hex digits>
///
/// Doubles are stored as the hex of their bit pattern so a load reproduces
/// the written value *bitwise* (no shortest-round-trip subtleties). The
/// trailing FNV-1a checksum covers everything before it, so a truncated or
/// corrupted file is rejected at parse time rather than silently resuming
/// from garbage. save_atomic() writes to "<path>.tmp" and renames, so a
/// crash at any instant leaves either the old journal or the new one,
/// never a torn mix.
class Journal {
 public:
  /// Starts an empty journal with the given magic word and format version.
  Journal(std::string magic, int version);

  const std::string& magic() const noexcept { return magic_; }
  int version() const noexcept { return version_; }

  /// Appends a key/value pair. Keys must be non-empty, unique and free of
  /// '=' and newlines; values must be free of newlines. Violations throw
  /// std::invalid_argument.
  void set(const std::string& key, std::string value);
  void set_u64(const std::string& key, std::uint64_t value);
  void set_size(const std::string& key, std::size_t value);
  /// Stores the double's bit pattern as 16 hex digits (exact round-trip).
  void set_double_bits(const std::string& key, double value);
  /// Space-separated list of bit-pattern doubles.
  void set_double_list(const std::string& key,
                       const std::vector<double>& values);

  bool has(const std::string& key) const noexcept;

  /// Getters throw std::runtime_error when the key is missing or the value
  /// does not parse as the requested type.
  const std::string& get(const std::string& key) const;
  std::uint64_t get_u64(const std::string& key) const;
  std::size_t get_size(const std::string& key) const;
  double get_double_bits(const std::string& key) const;
  std::vector<double> get_double_list(const std::string& key) const;

  /// Full text including header and checksum line.
  std::string serialize() const;

  /// Parses and verifies a serialized journal. Throws std::runtime_error on
  /// a wrong magic, a version newer than `max_version`, a missing or
  /// mismatched checksum (truncation/corruption), or malformed lines.
  static Journal parse(std::string_view text, std::string_view expected_magic,
                       int max_version);

  /// Durable write: serialize to "<path>.tmp", fsync the file, rename over
  /// `path`, then fsync the containing directory so the rename itself
  /// survives power loss (not just process death). Throws
  /// std::runtime_error on I/O failure.
  void save_atomic(const std::string& path) const;

  /// Path of generation `g` of a rotated journal set: generation 0 is
  /// `path` itself (the newest), older generations are "<path>.1",
  /// "<path>.2", ... up to "<path>.<K-1>".
  static std::string generation_path(const std::string& path,
                                     std::size_t generation);

  /// Shifts the existing generations down one slot via renames
  /// ("<path>.<K-2>" -> "<path>.<K-1>", ..., "<path>" -> "<path>.1"; the
  /// oldest is dropped), making room for a fresh save_atomic(path) on top.
  /// Each rename is atomic, so a kill mid-rotation leaves every surviving
  /// generation intact (at worst one is duplicated, never torn). Missing
  /// generations are skipped; keep_generations <= 1 is a no-op.
  static void rotate_generations(const std::string& path,
                                 std::size_t keep_generations);

  /// Loads and verifies a journal file; throws std::runtime_error on I/O
  /// or verification failure.
  static Journal load(const std::string& path, std::string_view expected_magic,
                      int max_version);

 private:
  std::string magic_;
  int version_ = 1;
  std::vector<std::pair<std::string, std::string>> entries_;
};

}  // namespace billcap::util
