#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace billcap::util {

/// Streaming summary statistics (Welford's online algorithm). Numerically
/// stable for long series such as a month of hourly costs.
class RunningStats {
 public:
  /// Incorporates one observation.
  void add(double x) noexcept;

  /// Number of observations so far.
  std::size_t count() const noexcept { return n_; }
  /// Arithmetic mean; 0 when empty.
  double mean() const noexcept { return mean_; }
  /// Unbiased sample variance; 0 with fewer than two observations.
  double variance() const noexcept;
  /// Square root of variance().
  double stddev() const noexcept;
  /// Smallest observation; +inf when empty.
  double min() const noexcept { return min_; }
  /// Largest observation; -inf when empty.
  double max() const noexcept { return max_; }
  /// Sum of all observations.
  double sum() const noexcept { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = 1e300;
  double max_ = -1e300;
};

/// Sum of a series.
double sum(std::span<const double> xs) noexcept;

/// Arithmetic mean; 0 for an empty span.
double mean(std::span<const double> xs) noexcept;

/// Linearly-interpolated quantile, q in [0, 1]. Copies and sorts; intended
/// for reporting, not hot loops. Returns 0 for an empty span.
double quantile(std::span<const double> xs, double q);

/// Squared coefficient of variation (variance / mean^2) of a series; this is
/// the C_A^2 / C_B^2 statistic of the Allen-Cunneen formula. Returns 0 when
/// the mean is 0 or there are fewer than two observations.
double squared_cv(std::span<const double> xs) noexcept;

/// Element-wise relative error |a-b| / max(|b|, eps), useful in tests
/// comparing measured series against expected shapes.
std::vector<double> relative_error(std::span<const double> a,
                                   std::span<const double> b,
                                   double eps = 1e-12);

}  // namespace billcap::util
