#include "util/calendar.hpp"

#include <array>
#include <cstdio>

namespace billcap::util {

std::string hour_label(std::size_t hour_index) {
  static constexpr std::array<const char*, 7> kDays = {
      "Mon", "Tue", "Wed", "Thu", "Fri", "Sat", "Sun"};
  char buf[32];
  std::snprintf(buf, sizeof(buf), "d%02zu h%02zu (%s)", day_index(hour_index),
                hour_of_day(hour_index), kDays[day_of_week(hour_index)]);
  return buf;
}

}  // namespace billcap::util
