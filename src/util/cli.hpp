#pragma once

#include <map>
#include <stdexcept>
#include <string>
#include <vector>

namespace billcap::util {

/// A bad command line (unparseable value, out-of-range flag, contradictory
/// flags). Tools catch this separately from std::runtime_error and exit
/// with the usage code (2) instead of the generic error code (1).
class UsageError : public std::runtime_error {
 public:
  explicit UsageError(const std::string& what) : std::runtime_error(what) {}
};

/// Minimal command-line parser for the repository's tools:
///   prog <command> [--flag value] [--flag=value] [--switch] [positional...]
/// Unknown flags are collected rather than rejected so callers can decide;
/// values are typed on access with defaults.
class CliArgs {
 public:
  /// Parses argv (argv[0] is skipped). The first non-flag token becomes the
  /// command; later non-flag tokens are positionals.
  CliArgs(int argc, const char* const* argv);

  const std::string& command() const noexcept { return command_; }
  const std::vector<std::string>& positionals() const noexcept {
    return positionals_;
  }

  /// True if the flag was given (with or without a value).
  bool has(const std::string& name) const;

  /// Typed access with defaults. Throws std::runtime_error when the flag is
  /// present but not parseable as the requested type.
  std::string get(const std::string& name,
                  const std::string& fallback = "") const;
  double get_double(const std::string& name, double fallback) const;
  long get_long(const std::string& name, long fallback) const;
  bool get_bool(const std::string& name, bool fallback = false) const;

  /// Comma-separated list of doubles ("0.5e6,1e6,2e6").
  std::vector<double> get_double_list(const std::string& name,
                                      std::vector<double> fallback) const;

  /// Range-validated access: these reject NaN/out-of-range values with a
  /// UsageError naming the flag, so degenerate configurations (negative
  /// fault rates, zero mean durations, non-positive deadlines) fail fast
  /// with exit code 2 instead of silently producing a broken run.
  /// A probability in [0, 1].
  double get_prob(const std::string& name, double fallback) const;
  /// A finite double > 0.
  double get_positive_double(const std::string& name, double fallback) const;
  /// An integer >= 1.
  long get_positive_long(const std::string& name, long fallback) const;

 private:
  std::string command_;
  std::vector<std::string> positionals_;
  std::map<std::string, std::string> flags_;  // name (no dashes) -> value
};

}  // namespace billcap::util
