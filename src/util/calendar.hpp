#pragma once

#include <cstddef>
#include <string>

namespace billcap::util {

/// Calendar helpers for hourly series. The simulation clock is a plain hour
/// index; these helpers map it onto days / weeks the way the paper's
/// budgeter does (hour-of-week history, weekly carry-over).
inline constexpr std::size_t kHoursPerDay = 24;
inline constexpr std::size_t kHoursPerWeek = 7 * kHoursPerDay;

/// Hour within the day, [0, 24).
constexpr std::size_t hour_of_day(std::size_t hour_index) noexcept {
  return hour_index % kHoursPerDay;
}

/// Day index since the start of the series.
constexpr std::size_t day_index(std::size_t hour_index) noexcept {
  return hour_index / kHoursPerDay;
}

/// Day within the week, [0, 7).
constexpr std::size_t day_of_week(std::size_t hour_index) noexcept {
  return day_index(hour_index) % 7;
}

/// Hour within the week, [0, 168).
constexpr std::size_t hour_of_week(std::size_t hour_index) noexcept {
  return hour_index % kHoursPerWeek;
}

/// Week index since the start of the series.
constexpr std::size_t week_index(std::size_t hour_index) noexcept {
  return hour_index / kHoursPerWeek;
}

/// True for Saturday/Sunday under the convention that hour 0 is Monday 00:00.
constexpr bool is_weekend(std::size_t hour_index) noexcept {
  return day_of_week(hour_index) >= 5;
}

/// "d03 h14 (Thu)"-style label for bench output.
std::string hour_label(std::size_t hour_index);

}  // namespace billcap::util
