#include "util/cli.hpp"

#include <cmath>
#include <cstdlib>
#include <stdexcept>

namespace billcap::util {

namespace {

bool is_flag(const std::string& token) {
  return token.size() >= 3 && token[0] == '-' && token[1] == '-';
}

}  // namespace

CliArgs::CliArgs(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string token = argv[i];
    if (is_flag(token)) {
      const std::string body = token.substr(2);
      const std::size_t eq = body.find('=');
      if (eq != std::string::npos) {
        flags_[body.substr(0, eq)] = body.substr(eq + 1);
      } else if (i + 1 < argc && !is_flag(argv[i + 1])) {
        flags_[body] = argv[++i];
      } else {
        flags_[body] = "";  // bare switch
      }
    } else if (command_.empty()) {
      command_ = token;
    } else {
      positionals_.push_back(token);
    }
  }
}

bool CliArgs::has(const std::string& name) const {
  return flags_.count(name) > 0;
}

std::string CliArgs::get(const std::string& name,
                         const std::string& fallback) const {
  const auto it = flags_.find(name);
  return it == flags_.end() ? fallback : it->second;
}

double CliArgs::get_double(const std::string& name, double fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  char* end = nullptr;
  const double value = std::strtod(it->second.c_str(), &end);
  if (end != it->second.c_str() + it->second.size() || it->second.empty())
    throw std::runtime_error("--" + name + ": expected a number, got '" +
                             it->second + "'");
  return value;
}

long CliArgs::get_long(const std::string& name, long fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  char* end = nullptr;
  const long value = std::strtol(it->second.c_str(), &end, 10);
  if (end != it->second.c_str() + it->second.size() || it->second.empty())
    throw std::runtime_error("--" + name + ": expected an integer, got '" +
                             it->second + "'");
  return value;
}

bool CliArgs::get_bool(const std::string& name, bool fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  if (it->second.empty() || it->second == "true" || it->second == "1")
    return true;
  if (it->second == "false" || it->second == "0") return false;
  throw std::runtime_error("--" + name + ": expected a boolean, got '" +
                           it->second + "'");
}

std::vector<double> CliArgs::get_double_list(
    const std::string& name, std::vector<double> fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  std::vector<double> out;
  std::string current;
  auto flush = [&] {
    if (current.empty()) return;
    char* end = nullptr;
    const double value = std::strtod(current.c_str(), &end);
    if (end != current.c_str() + current.size())
      throw std::runtime_error("--" + name + ": bad list item '" + current +
                               "'");
    out.push_back(value);
    current.clear();
  };
  for (char c : it->second) {
    if (c == ',')
      flush();
    else
      current.push_back(c);
  }
  flush();
  if (out.empty())
    throw std::runtime_error("--" + name + ": empty list");
  return out;
}

double CliArgs::get_prob(const std::string& name, double fallback) const {
  double value = fallback;
  try {
    value = get_double(name, fallback);
  } catch (const std::runtime_error& e) {
    throw UsageError(e.what());
  }
  if (std::isnan(value) || value < 0.0 || value > 1.0)
    throw UsageError("--" + name + ": expected a probability in [0, 1], got " +
                     get(name));
  return value;
}

double CliArgs::get_positive_double(const std::string& name,
                                    double fallback) const {
  double value = fallback;
  try {
    value = get_double(name, fallback);
  } catch (const std::runtime_error& e) {
    throw UsageError(e.what());
  }
  if (!std::isfinite(value) || value <= 0.0)
    throw UsageError("--" + name + ": expected a finite value > 0, got " +
                     get(name));
  return value;
}

long CliArgs::get_positive_long(const std::string& name, long fallback) const {
  long value = fallback;
  try {
    value = get_long(name, fallback);
  } catch (const std::runtime_error& e) {
    throw UsageError(e.what());
  }
  if (value < 1)
    throw UsageError("--" + name + ": expected an integer >= 1, got " +
                     get(name));
  return value;
}

}  // namespace billcap::util
