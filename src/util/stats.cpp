#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace billcap::util {

void RunningStats::add(double x) noexcept {
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double RunningStats::variance() const noexcept {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double sum(std::span<const double> xs) noexcept {
  double acc = 0.0;
  for (double x : xs) acc += x;
  return acc;
}

double mean(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  return sum(xs) / static_cast<double>(xs.size());
}

double quantile(std::span<const double> xs, double q) {
  if (xs.empty()) return 0.0;
  if (q < 0.0 || q > 1.0) throw std::invalid_argument("quantile: q outside [0,1]");
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double squared_cv(std::span<const double> xs) noexcept {
  RunningStats s;
  for (double x : xs) s.add(x);
  if (s.count() < 2 || s.mean() == 0.0) return 0.0;
  return s.variance() / (s.mean() * s.mean());
}

std::vector<double> relative_error(std::span<const double> a,
                                   std::span<const double> b, double eps) {
  if (a.size() != b.size())
    throw std::invalid_argument("relative_error: size mismatch");
  std::vector<double> out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    out[i] = std::abs(a[i] - b[i]) / std::max(std::abs(b[i]), eps);
  return out;
}

}  // namespace billcap::util
