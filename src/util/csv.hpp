#pragma once

#include <fstream>
#include <string>
#include <string_view>
#include <vector>

namespace billcap::util {

/// Minimal CSV document: a header row plus numeric/text cells. The benches
/// write their series as CSV so results can be plotted,
/// and tests read fixture traces through the same code path.
class Csv {
 public:
  Csv() = default;

  /// Creates an empty document with the given column names.
  explicit Csv(std::vector<std::string> header);

  /// Appends a row of preformatted cells. Must match the header width.
  void add_row(std::vector<std::string> cells);

  /// Appends a row of doubles, formatted with enough digits to round-trip.
  void add_numeric_row(const std::vector<double>& values);

  const std::vector<std::string>& header() const noexcept { return header_; }
  const std::vector<std::vector<std::string>>& rows() const noexcept {
    return rows_;
  }
  std::size_t num_rows() const noexcept { return rows_.size(); }
  std::size_t num_cols() const noexcept { return header_.size(); }

  /// Cell accessors; throw std::out_of_range on bad indices.
  const std::string& cell(std::size_t row, std::size_t col) const;
  double cell_as_double(std::size_t row, std::size_t col) const;

  /// Index of a named column; throws std::out_of_range if absent.
  std::size_t column_index(std::string_view name) const;

  /// Whole column parsed as doubles.
  std::vector<double> column_as_doubles(std::string_view name) const;

  /// Serializes to RFC-4180-ish CSV (quotes cells containing separators).
  std::string to_string() const;

  /// Writes to a file; throws std::runtime_error on I/O failure.
  void save(const std::string& path) const;

  /// Parses CSV text (first row is the header). Handles quoted cells.
  static Csv parse(std::string_view text);

  /// Parses like parse(), but tolerates the shape a SIGKILL mid-append
  /// leaves behind: a torn *final* record — an unterminated last line, or
  /// a trailing row with fewer cells than the header — is dropped instead
  /// of throwing. Malformed rows anywhere else still throw.
  static Csv parse_resilient(std::string_view text);

  /// Loads and parses a file; throws std::runtime_error on I/O failure.
  static Csv load(const std::string& path);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double compactly but losslessly (shortest round-trip form).
std::string format_double(double x);

/// Incremental CSV writer for long-running loops: every appended row is
/// written and flushed immediately, so a process killed mid-run leaves a
/// readable file whose last line is a complete row (hour-aligned — no torn
/// records for a resumed run to deduplicate).
class CsvWriter {
 public:
  /// Starts a fresh file containing only the header.
  CsvWriter(const std::string& path, std::vector<std::string> header);

  /// Resumes an existing file: parses it, verifies the header matches,
  /// keeps the first `keep_rows` data rows (dropping any beyond — rows a
  /// checkpoint never committed), and appends after them. A torn final
  /// row (the writer was killed mid-append) is dropped, not an error. If
  /// the file does not exist it is created fresh. Throws
  /// std::runtime_error on a header mismatch or unparseable file.
  CsvWriter(const std::string& path, std::vector<std::string> header,
            std::size_t keep_rows);

  /// Appends one row (must match the header width) and flushes to disk.
  void add_row(const std::vector<std::string>& cells);

  /// Data rows currently in the file (kept + appended).
  std::size_t num_rows() const noexcept { return num_rows_; }
  const std::string& path() const noexcept { return path_; }

 private:
  void open_fresh();

  std::string path_;
  std::vector<std::string> header_;
  std::size_t num_rows_ = 0;
  // The stream lives in a pimpl-free member; ofstream is movable.
  // CsvWriter is the sanctioned streaming writer: append-only, flushed
  // per row, torn rows dropped on resume.
  // billcap-lint: allow(raw-write): append stream with torn-row recovery
  std::ofstream out_;
};

}  // namespace billcap::util
