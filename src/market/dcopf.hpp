#pragma once

#include <span>
#include <vector>

#include "lp/problem.hpp"
#include "market/grid.hpp"

namespace billcap::market {

/// Result of a DC optimal power flow.
struct DcOpfResult {
  lp::SolveStatus status = lp::SolveStatus::kInfeasible;
  double total_cost = 0.0;              ///< $/h at the optimum
  std::vector<double> dispatch_mw;      ///< per generator
  std::vector<double> flow_mw;          ///< per line (from -> to positive)
  std::vector<double> lmp;              ///< per bus, $/MWh
  std::vector<double> theta;            ///< per bus voltage angle (bus 0 = 0)

  bool ok() const noexcept { return status == lp::SolveStatus::kOptimal; }
};

/// Solves the DC optimal power flow
///   min  sum_g c_g P_g
///   s.t. per-bus balance:  sum_{g at b} P_g - sum_l A_{bl} f_l = load_b
///        f_l = (theta_from - theta_to) / x_l,   |f_l| <= limit_l,
///        0 <= P_g <= cap_g,  theta_slack = 0
/// with the B-theta formulation, using the repository's own simplex. The
/// locational marginal price at each bus is read directly from the dual of
/// that bus's balance constraint — the mechanism behind the step pricing
/// policies of Section II: every time an additional generator or line limit
/// becomes binding as load grows, the LMP vector jumps.
DcOpfResult solve_dcopf(const Grid& grid, std::span<const double> load_mw);

/// A constraint that is binding at the OPF optimum — the events that
/// create new price levels as load grows (Section II: "a step change
/// happens when a new constraint, either transmission or generation,
/// becomes binding").
struct BindingConstraint {
  enum class Kind { kGeneratorLimit, kLineLimit };
  Kind kind = Kind::kGeneratorLimit;
  int index = -1;      ///< generator or line index in the grid
  double value = 0.0;  ///< dispatch or |flow| at the limit
};

/// Post-solution analysis of an OPF: the locational price decomposition
/// (energy reference = slack-bus LMP, congestion = per-bus deviation) and
/// the set of binding constraints.
struct DcOpfReport {
  double reference_price = 0.0;              ///< LMP at the slack bus
  std::vector<double> congestion_component;  ///< lmp_b - reference, per bus
  std::vector<BindingConstraint> binding;
};

/// Builds the report from a solved OPF; `tol` (MW) decides bindingness.
/// Throws std::invalid_argument if the result is not optimal.
DcOpfReport analyze_opf(const Grid& grid, const DcOpfResult& result,
                        double tol = 1e-4);

}  // namespace billcap::market
