#pragma once

#include <string>
#include <vector>

namespace billcap::market {

/// A transmission line in the DC power-flow model, characterized by its
/// series reactance (per unit) and thermal limit.
struct Line {
  std::string name;
  int from_bus = -1;
  int to_bus = -1;
  double reactance = 0.0;  ///< x > 0, per unit
  double limit_mw = 0.0;   ///< thermal limit; <= 0 means unlimited
};

/// A dispatchable generator with a constant marginal cost.
struct Generator {
  std::string name;
  int bus = -1;
  double capacity_mw = 0.0;
  double marginal_cost = 0.0;  ///< $/MWh
};

/// A small transmission grid for locational-marginal-price studies: buses,
/// lines with reactances/limits, and generators with offer curves. This is
/// the physical substrate behind the step pricing policies (Section II).
class Grid {
 public:
  /// Adds a bus and returns its index.
  int add_bus(std::string name);

  /// Adds a line between existing buses; throws on bad indices or x <= 0.
  int add_line(std::string name, int from_bus, int to_bus, double reactance,
               double limit_mw = 0.0);

  /// Adds a generator at an existing bus; throws on bad indices or
  /// non-positive capacity.
  int add_generator(std::string name, int bus, double capacity_mw,
                    double marginal_cost);

  int num_buses() const noexcept { return static_cast<int>(buses_.size()); }
  int num_lines() const noexcept { return static_cast<int>(lines_.size()); }
  int num_generators() const noexcept {
    return static_cast<int>(generators_.size());
  }

  const std::string& bus_name(int b) const { return buses_.at(static_cast<std::size_t>(b)); }
  const Line& line(int l) const { return lines_.at(static_cast<std::size_t>(l)); }
  const Generator& generator(int g) const { return generators_.at(static_cast<std::size_t>(g)); }
  const std::vector<Line>& lines() const noexcept { return lines_; }
  const std::vector<Generator>& generators() const noexcept {
    return generators_;
  }

  /// Index of a named bus; throws std::out_of_range if absent.
  int bus_index(const std::string& name) const;

  /// Total generation capacity (MW).
  double total_capacity_mw() const noexcept;

 private:
  std::vector<std::string> buses_;
  std::vector<Line> lines_;
  std::vector<Generator> generators_;
};

}  // namespace billcap::market
