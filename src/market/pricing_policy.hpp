#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "lp/piecewise.hpp"

namespace billcap::market {

/// A locational step pricing policy (Section II): the electricity price in
/// $/MWh is a step function of the *total* power consumption P at the
/// location,
///   price(P) = prices[k]   for   thresholds[k] <= P < thresholds[k+1],
/// with thresholds[0] == 0 and the last level unbounded. Step changes
/// happen when an additional generation or transmission constraint becomes
/// binding under the LMP methodology [6], [13].
class PricingPolicy {
 public:
  /// `thresholds` must start at 0 and increase strictly; `prices` has the
  /// same length (price level k starts at thresholds[k]).
  PricingPolicy(std::vector<double> thresholds_mw,
                std::vector<double> prices_per_mwh);

  /// A single-level policy: the price-taker world of the Min-Only baseline.
  static PricingPolicy flat(double price_per_mwh);

  std::size_t num_levels() const noexcept { return prices_.size(); }
  const std::vector<double>& thresholds_mw() const noexcept {
    return thresholds_;
  }
  const std::vector<double>& prices_per_mwh() const noexcept {
    return prices_;
  }

  /// Price at a total locational consumption (MW).
  double price_at(double total_load_mw) const noexcept;

  /// Hourly cost ($) for a data center drawing `dc_power_mw` while other
  /// consumers in the same ISO region draw `other_demand_mw`: the price
  /// level is set by the total, the data center pays for its own energy
  /// (1 h invocation period makes MW numerically MWh).
  double cost_for(double dc_power_mw, double other_demand_mw) const noexcept;

  /// Average of the level prices — the constant price Min-Only (Avg)
  /// believes in.
  double average_price() const noexcept;

  /// Lowest level price — the constant price Min-Only (Low) believes in.
  double min_price() const noexcept;

  /// The data-center cost curve cost(p) = price(p + d) * p as a
  /// piecewise-affine function of the data center's own draw p in
  /// [0, dc_power_cap_mw], given the other consumers' demand d. This is the
  /// object the MILP linearization consumes.
  lp::PiecewiseAffine dc_cost_curve(double other_demand_mw,
                                    double dc_power_cap_mw) const;

  /// Derives the policy with every price increase over the base level
  /// multiplied by `factor` — the construction of the paper's Policies 2
  /// and 3 (doubling / tripling the increase of Policy 1).
  PricingPolicy scale_increases(double factor) const;

  /// "name: 10.00/13.90/... @ 0/200/..." debug string.
  std::string to_string() const;

 private:
  std::vector<double> thresholds_;
  std::vector<double> prices_;
};

/// The canonical per-site policies of the evaluation (Section VII-A):
/// `level` 0 is the flat price-taker policy (per-site average of Policy 1),
/// 1 is the PJM-five-bus-derived locational policy, 2 and 3 double/triple
/// the price increases of 1. Returns one policy per paper data center
/// (DC1..DC3). Throws for levels outside 0..3.
std::vector<PricingPolicy> paper_policies(int level);

}  // namespace billcap::market
