#include "market/policy_derivation.hpp"

#include <cmath>
#include <stdexcept>
#include <string>

#include "market/dcopf.hpp"

namespace billcap::market {

std::vector<PricingPolicy> derive_policies_from_opf(
    const Grid& grid, const std::vector<int>& load_buses,
    double max_system_load_mw, double step_mw, double price_tol) {
  if (load_buses.empty())
    throw std::invalid_argument("derive_policies_from_opf: no load buses");
  if (!(step_mw > 0.0) || !(max_system_load_mw > 0.0))
    throw std::invalid_argument("derive_policies_from_opf: bad sweep range");

  const double share = 1.0 / static_cast<double>(load_buses.size());

  // LMP series per load bus over the sweep.
  std::vector<std::vector<double>> lmp_series(load_buses.size());
  std::vector<double> local_loads;
  for (double system_load = step_mw; system_load <= max_system_load_mw + 1e-9;
       system_load += step_mw) {
    std::vector<double> loads(static_cast<std::size_t>(grid.num_buses()), 0.0);
    for (int bus : load_buses)
      loads[static_cast<std::size_t>(bus)] = system_load * share;
    const DcOpfResult opf = solve_dcopf(grid, loads);
    if (!opf.ok())
      throw std::runtime_error(
          "derive_policies_from_opf: OPF infeasible at system load " +
          std::to_string(system_load) + " MW");
    local_loads.push_back(system_load * share);
    for (std::size_t i = 0; i < load_buses.size(); ++i)
      lmp_series[i].push_back(
          opf.lmp[static_cast<std::size_t>(load_buses[i])]);
  }

  // Collapse each series into a step policy over the bus's local load.
  std::vector<PricingPolicy> policies;
  policies.reserve(load_buses.size());
  for (const auto& series : lmp_series) {
    std::vector<double> thresholds = {0.0};
    std::vector<double> prices = {series.front()};
    for (std::size_t t = 1; t < series.size(); ++t) {
      if (std::abs(series[t] - prices.back()) > price_tol) {
        thresholds.push_back(local_loads[t]);
        prices.push_back(series[t]);
      }
    }
    policies.emplace_back(std::move(thresholds), std::move(prices));
  }
  return policies;
}

}  // namespace billcap::market
