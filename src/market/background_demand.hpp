#pragma once

#include <cstdint>
#include <vector>

namespace billcap::market {

/// Shape parameters for one location's synthetic background demand — the
/// power drawn by all consumers *other than* the data center in the same
/// ISO region (the paper uses the Rockland Electric / PJM June 2005 trace
/// [27]; we synthesize a series with the same structure, see DESIGN.md).
struct BackgroundDemandParams {
  double base_mw = 170.0;        ///< overnight floor
  double diurnal_amplitude_mw = 45.0;  ///< day/night swing
  double weekend_drop = 0.12;    ///< fractional reduction on Sat/Sun
  double noise_sigma = 0.015;    ///< lognormal hour-to-hour jitter
  double peak_hour = 15.0;       ///< local hour of the daily maximum
};

/// Generates `hours` of hourly background demand (MW) with a diurnal double
/// shoulder, weekly weekday/weekend structure, and multiplicative noise.
/// Deterministic in `seed`.
std::vector<double> generate_background_demand(
    const BackgroundDemandParams& params, std::size_t hours,
    std::uint64_t seed);

/// Per-site parameters used by the evaluation: three locations whose demand
/// levels sit near the 200-300 MW price-step thresholds of the canonical
/// policies, so the data centers' tens of MW genuinely move the price level
/// (the price-maker effect the paper models).
std::vector<BackgroundDemandParams> paper_background_params();

/// Convenience: one demand series per paper location, split-seeded.
std::vector<std::vector<double>> paper_background_demand(std::size_t hours,
                                                         std::uint64_t seed);

}  // namespace billcap::market
