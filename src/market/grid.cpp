#include "market/grid.hpp"

#include <stdexcept>

namespace billcap::market {

int Grid::add_bus(std::string name) {
  buses_.push_back(std::move(name));
  return static_cast<int>(buses_.size()) - 1;
}

int Grid::add_line(std::string name, int from_bus, int to_bus,
                   double reactance, double limit_mw) {
  if (from_bus < 0 || from_bus >= num_buses() || to_bus < 0 ||
      to_bus >= num_buses())
    throw std::out_of_range("Grid::add_line: bad bus index for " + name);
  if (from_bus == to_bus)
    throw std::invalid_argument("Grid::add_line: self-loop " + name);
  if (!(reactance > 0.0))
    throw std::invalid_argument("Grid::add_line: reactance must be > 0");
  lines_.push_back(Line{std::move(name), from_bus, to_bus, reactance, limit_mw});
  return static_cast<int>(lines_.size()) - 1;
}

int Grid::add_generator(std::string name, int bus, double capacity_mw,
                        double marginal_cost) {
  if (bus < 0 || bus >= num_buses())
    throw std::out_of_range("Grid::add_generator: bad bus index for " + name);
  if (!(capacity_mw > 0.0))
    throw std::invalid_argument("Grid::add_generator: capacity must be > 0");
  generators_.push_back(
      Generator{std::move(name), bus, capacity_mw, marginal_cost});
  return static_cast<int>(generators_.size()) - 1;
}

int Grid::bus_index(const std::string& name) const {
  for (int b = 0; b < num_buses(); ++b)
    if (buses_[static_cast<std::size_t>(b)] == name) return b;
  throw std::out_of_range("Grid: no such bus: " + name);
}

double Grid::total_capacity_mw() const noexcept {
  double total = 0.0;
  for (const auto& g : generators_) total += g.capacity_mw;
  return total;
}

}  // namespace billcap::market
