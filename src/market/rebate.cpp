#include "market/rebate.hpp"

#include <algorithm>
#include <stdexcept>

namespace billcap::market {

bool RebateProgram::is_peak_hour(std::size_t hour_of_day) const noexcept {
  return hour_of_day >= peak_start_hour && hour_of_day < peak_end_hour;
}

void RebateProgram::validate() const {
  if (baseline_mw < 0.0)
    throw std::invalid_argument("RebateProgram: negative baseline");
  if (rebate_per_mwh < 0.0)
    throw std::invalid_argument("RebateProgram: negative rebate");
  if (peak_start_hour >= peak_end_hour || peak_end_hour > 24)
    throw std::invalid_argument("RebateProgram: bad peak window");
}

lp::PiecewiseAffine apply_rebate(const lp::PiecewiseAffine& curve,
                                 const RebateProgram& program) {
  program.validate();
  curve.validate();
  if (program.rebate_per_mwh == 0.0 || program.baseline_mw <= 0.0)
    return curve;

  const double baseline = program.baseline_mw;
  const double rebate = program.rebate_per_mwh;

  lp::PiecewiseAffine out;
  out.breaks.push_back(curve.breaks.front());
  for (std::size_t k = 0; k < curve.num_segments(); ++k) {
    const double lo = curve.breaks[k];
    const double hi = curve.breaks[k + 1];
    const double slope = curve.slopes[k];
    const double intercept = curve.intercepts[k];
    auto emit = [&out](double upper, double s, double b) {
      out.breaks.push_back(upper);
      out.slopes.push_back(s);
      out.intercepts.push_back(b);
    };
    if (hi <= baseline) {
      // Entirely below the baseline: marginal cost up, intercept credited.
      emit(hi, slope + rebate, intercept - rebate * baseline);
    } else if (lo >= baseline) {
      emit(hi, slope, intercept);
    } else {
      // Straddles the baseline: split.
      emit(baseline, slope + rebate, intercept - rebate * baseline);
      emit(hi, slope, intercept);
    }
  }
  out.validate();
  return out;
}

double rebated_cost(const PricingPolicy& policy, const RebateProgram& program,
                    bool peak_hour, double dc_power_mw,
                    double other_demand_mw) {
  program.validate();
  const double energy = policy.cost_for(dc_power_mw, other_demand_mw);
  if (!peak_hour) return energy;
  const double credit =
      program.rebate_per_mwh *
      std::max(0.0, program.baseline_mw - dc_power_mw);
  return energy - credit;
}

}  // namespace billcap::market
