#include "market/pricing_policy.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace billcap::market {

PricingPolicy::PricingPolicy(std::vector<double> thresholds_mw,
                             std::vector<double> prices_per_mwh)
    : thresholds_(std::move(thresholds_mw)), prices_(std::move(prices_per_mwh)) {
  if (prices_.empty() || thresholds_.size() != prices_.size())
    throw std::invalid_argument(
        "PricingPolicy: thresholds/prices must be equal-length, nonempty");
  if (thresholds_.front() != 0.0)
    throw std::invalid_argument("PricingPolicy: first threshold must be 0");
  for (std::size_t k = 1; k < thresholds_.size(); ++k) {
    if (!(thresholds_[k] > thresholds_[k - 1]))
      throw std::invalid_argument(
          "PricingPolicy: thresholds must increase strictly");
  }
  for (double price : prices_) {
    if (!(price >= 0.0) || !std::isfinite(price))
      throw std::invalid_argument("PricingPolicy: prices must be finite, >= 0");
  }
}

PricingPolicy PricingPolicy::flat(double price_per_mwh) {
  return PricingPolicy({0.0}, {price_per_mwh});
}

double PricingPolicy::price_at(double total_load_mw) const noexcept {
  const double load = std::max(total_load_mw, 0.0);
  std::size_t k = 0;
  while (k + 1 < thresholds_.size() && load >= thresholds_[k + 1]) ++k;
  return prices_[k];
}

double PricingPolicy::cost_for(double dc_power_mw,
                               double other_demand_mw) const noexcept {
  return price_at(dc_power_mw + other_demand_mw) * dc_power_mw;
}

double PricingPolicy::average_price() const noexcept {
  double total = 0.0;
  for (double price : prices_) total += price;
  return total / static_cast<double>(prices_.size());
}

double PricingPolicy::min_price() const noexcept {
  return *std::min_element(prices_.begin(), prices_.end());
}

lp::PiecewiseAffine PricingPolicy::dc_cost_curve(
    double other_demand_mw, double dc_power_cap_mw) const {
  if (other_demand_mw < 0.0)
    throw std::invalid_argument("dc_cost_curve: negative background demand");
  if (!(dc_power_cap_mw > 0.0))
    throw std::invalid_argument("dc_cost_curve: power cap must be > 0");

  // Interior thresholds are pulled down by a small margin: the real market
  // already charges the higher price AT the threshold, and the exact
  // (integer servers/switches) draw can exceed the optimizer's affine
  // estimate by a few kW. The margin makes "stay on the cheap side of the
  // step" decisions robust instead of grazing the boundary.
  constexpr double kThresholdMarginMw = 0.02;

  lp::PiecewiseAffine pw;
  pw.breaks.push_back(0.0);
  for (std::size_t k = 0; k < prices_.size(); ++k) {
    // Level k covers total load [thresholds[k], next) in margined form; in
    // dc-power space that is [prev break, next - margin - d], clipped to
    // [0, cap]. Building breaks sequentially keeps segments contiguous.
    const double hi_total = (k + 1 < thresholds_.size())
                                ? thresholds_[k + 1] - kThresholdMarginMw
                                : std::numeric_limits<double>::infinity();
    const double hi_dc = std::min(dc_power_cap_mw, hi_total - other_demand_mw);
    if (hi_dc <= pw.breaks.back()) continue;  // level not reachable for this d
    pw.breaks.push_back(hi_dc);
    pw.slopes.push_back(prices_[k]);
    pw.intercepts.push_back(0.0);
    if (hi_dc >= dc_power_cap_mw) break;
  }
  if (pw.slopes.empty()) {
    // d is beyond the last threshold: the whole range is at the top price.
    pw.breaks = {0.0, dc_power_cap_mw};
    pw.slopes = {prices_.back()};
    pw.intercepts = {0.0};
  }
  pw.validate();
  return pw;
}

PricingPolicy PricingPolicy::scale_increases(double factor) const {
  if (!(factor > 0.0))
    throw std::invalid_argument("scale_increases: factor must be > 0");
  const double base = prices_.front();
  std::vector<double> scaled;
  scaled.reserve(prices_.size());
  for (double price : prices_)
    scaled.push_back(base + factor * (price - base));
  return PricingPolicy(thresholds_, std::move(scaled));
}

std::string PricingPolicy::to_string() const {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(2);
  for (std::size_t k = 0; k < prices_.size(); ++k) {
    if (k) os << ", ";
    os << prices_[k] << "$/MWh@" << thresholds_[k] << "MW";
  }
  return os.str();
}

std::vector<PricingPolicy> paper_policies(int level) {
  // Per-location thresholds: the PJM five-bus step events at system loads
  // 600, 711.8, 800 and 900 MW, divided by the three uniformly-loaded
  // consumers (Section II / Figure 1).
  const std::vector<double> thresholds = {0.0, 200.0, 237.3, 266.7, 300.0};

  // Policy 1 level prices. DC1 (location B) is verbatim from Section VII-B;
  // DC2 (location C) and DC3 (location D) are reconstructed with the same
  // structure from the five-bus LMP literature (see DESIGN.md section 2).
  // Location D is reconstructed as the mildly-congested site (served by
  // cheap imports until the E-D line binds): its *average* price is low but
  // its top tiers still bite. This is what separates the two Min-Only
  // beliefs: averaging makes D look cheapest, while the uniform lowest-step
  // belief makes all sites look identical (Section VII-A).
  const std::vector<std::vector<double>> policy1 = {
      {10.00, 13.90, 15.00, 22.00, 24.00},   // DC1 / location B
      {10.00, 15.00, 24.00, 30.00, 35.00},   // DC2 / location C
      {10.00, 11.50, 13.00, 16.00, 20.00},   // DC3 / location D
  };

  std::vector<PricingPolicy> base;
  base.reserve(policy1.size());
  for (const auto& prices : policy1)
    base.emplace_back(thresholds, prices);

  switch (level) {
    case 0: {
      // Flat price-taker world; Cost Capping and Min-Only coincide here
      // (Figure 4's Policy 0 bar). The flat value is the Policy-1 average,
      // i.e. exactly what Min-Only (Avg) assumes.
      std::vector<PricingPolicy> flat;
      for (const auto& policy : base)
        flat.push_back(PricingPolicy::flat(policy.average_price()));
      return flat;
    }
    case 1:
      return base;
    case 2:
    case 3: {
      std::vector<PricingPolicy> scaled;
      for (const auto& policy : base)
        scaled.push_back(policy.scale_increases(static_cast<double>(level)));
      return scaled;
    }
    default:
      throw std::invalid_argument("paper_policies: level must be 0..3");
  }
}

}  // namespace billcap::market
