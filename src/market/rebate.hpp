#pragma once

#include "lp/piecewise.hpp"
#include "market/pricing_policy.hpp"

namespace billcap::market {

/// A Peak Power Rebate program (Section II): "many power suppliers offer
/// Peak Power Rebate pricing policies such that large power consumers get
/// a temporarily lowered price for voluntarily reducing electricity use
/// during peak times" (e.g. Ameren's Power Smart Pricing, ~20 % savings).
///
/// Model: during designated peak hours the consumer is credited
/// `rebate_per_mwh` for every MWh it stays below its committed baseline:
///   cost(p) = price(p + d) * p - rebate * max(0, baseline - p).
/// The credit makes curtailment valuable exactly when the grid is tight —
/// one more lever the bill capper can trade against throughput.
struct RebateProgram {
  double baseline_mw = 0.0;     ///< committed draw during peak hours
  double rebate_per_mwh = 0.0;  ///< credit per MWh of curtailment
  std::size_t peak_start_hour = 14;  ///< local hour the peak window opens
  std::size_t peak_end_hour = 19;    ///< first hour after the window

  /// True if the given hour-of-day falls inside the peak window.
  bool is_peak_hour(std::size_t hour_of_day) const noexcept;

  /// Validates shape; throws std::invalid_argument.
  void validate() const;
};

/// Applies the rebate credit to a data-center cost curve (as produced by
/// PricingPolicy::dc_cost_curve): below the baseline every segment's
/// marginal cost rises by the rebate (drawing one more MW forfeits one MWh
/// of credit) and the intercept drops by rebate * baseline; above the
/// baseline the curve is unchanged. Segments straddling the baseline are
/// split. The result stays piecewise-affine and MILP-ready.
lp::PiecewiseAffine apply_rebate(const lp::PiecewiseAffine& curve,
                                 const RebateProgram& program);

/// Ground-truth hourly cost under the program ($, possibly negative when
/// the credit exceeds the energy charge).
double rebated_cost(const PricingPolicy& policy, const RebateProgram& program,
                    bool peak_hour, double dc_power_mw,
                    double other_demand_mw);

}  // namespace billcap::market
