#include "market/dcopf.hpp"

#include <cmath>
#include <stdexcept>
#include <string>

#include "lp/simplex.hpp"

namespace billcap::market {

DcOpfResult solve_dcopf(const Grid& grid, std::span<const double> load_mw) {
  const int nb = grid.num_buses();
  const int nl = grid.num_lines();
  const int ng = grid.num_generators();
  if (static_cast<int>(load_mw.size()) != nb)
    throw std::invalid_argument("solve_dcopf: one load per bus required");
  if (nb == 0 || ng == 0)
    throw std::invalid_argument("solve_dcopf: need buses and generators");

  lp::Problem p;
  p.set_sense(lp::Sense::kMinimize);

  // Generator dispatch variables.
  std::vector<int> gen_var(static_cast<std::size_t>(ng));
  for (int g = 0; g < ng; ++g) {
    const Generator& gen = grid.generator(g);
    gen_var[static_cast<std::size_t>(g)] = p.add_variable(
        "P." + gen.name, 0.0, gen.capacity_mw, gen.marginal_cost);
  }

  // Bus angles; the slack bus (0) is pinned at zero.
  std::vector<int> theta_var(static_cast<std::size_t>(nb));
  for (int b = 0; b < nb; ++b) {
    const bool slack = (b == 0);
    theta_var[static_cast<std::size_t>(b)] = p.add_variable(
        "theta." + grid.bus_name(b), slack ? 0.0 : -lp::kInfinity,
        slack ? 0.0 : lp::kInfinity);
  }

  // Line flows as explicit variables tied to the angle difference.
  std::vector<int> flow_var(static_cast<std::size_t>(nl));
  for (int l = 0; l < nl; ++l) {
    const Line& line = grid.line(l);
    const double cap =
        line.limit_mw > 0.0 ? line.limit_mw : lp::kInfinity;
    const int f = p.add_variable("f." + line.name,
                                 cap == lp::kInfinity ? -lp::kInfinity : -cap,
                                 cap);
    flow_var[static_cast<std::size_t>(l)] = f;
    const double b_susceptance = 1.0 / line.reactance;
    // f - (theta_from - theta_to)/x = 0.
    p.add_constraint(
        "flowdef." + line.name,
        {{f, 1.0},
         {theta_var[static_cast<std::size_t>(line.from_bus)], -b_susceptance},
         {theta_var[static_cast<std::size_t>(line.to_bus)], b_susceptance}},
        lp::Relation::kEqual, 0.0);
  }

  // Nodal balance per bus: generation - net outflow = load. The dual of
  // this row is the bus LMP.
  std::vector<int> balance_row(static_cast<std::size_t>(nb));
  for (int b = 0; b < nb; ++b) {
    std::vector<lp::Term> terms;
    for (int g = 0; g < ng; ++g)
      if (grid.generator(g).bus == b)
        terms.push_back({gen_var[static_cast<std::size_t>(g)], 1.0});
    for (int l = 0; l < nl; ++l) {
      const Line& line = grid.line(l);
      if (line.from_bus == b)
        terms.push_back({flow_var[static_cast<std::size_t>(l)], -1.0});
      else if (line.to_bus == b)
        terms.push_back({flow_var[static_cast<std::size_t>(l)], 1.0});
    }
    if (terms.empty() && load_mw[static_cast<std::size_t>(b)] != 0.0)
      throw std::invalid_argument("solve_dcopf: isolated loaded bus " +
                                  grid.bus_name(b));
    balance_row[static_cast<std::size_t>(b)] = p.add_constraint(
        "balance." + grid.bus_name(b), std::move(terms), lp::Relation::kEqual,
        load_mw[static_cast<std::size_t>(b)]);
  }

  const lp::Solution sol = lp::solve_lp(p);
  DcOpfResult out;
  out.status = sol.status;
  if (!sol.ok()) return out;

  out.total_cost = sol.objective;
  out.dispatch_mw.resize(static_cast<std::size_t>(ng));
  for (int g = 0; g < ng; ++g)
    out.dispatch_mw[static_cast<std::size_t>(g)] =
        sol.x[static_cast<std::size_t>(gen_var[static_cast<std::size_t>(g)])];
  out.flow_mw.resize(static_cast<std::size_t>(nl));
  for (int l = 0; l < nl; ++l)
    out.flow_mw[static_cast<std::size_t>(l)] =
        sol.x[static_cast<std::size_t>(flow_var[static_cast<std::size_t>(l)])];
  out.theta.resize(static_cast<std::size_t>(nb));
  out.lmp.resize(static_cast<std::size_t>(nb));
  for (int b = 0; b < nb; ++b) {
    out.theta[static_cast<std::size_t>(b)] =
        sol.x[static_cast<std::size_t>(theta_var[static_cast<std::size_t>(b)])];
    out.lmp[static_cast<std::size_t>(b)] =
        sol.duals[static_cast<std::size_t>(balance_row[static_cast<std::size_t>(b)])];
  }
  return out;
}

DcOpfReport analyze_opf(const Grid& grid, const DcOpfResult& result,
                        double tol) {
  if (!result.ok())
    throw std::invalid_argument("analyze_opf: result is not optimal");
  DcOpfReport report;
  report.reference_price = result.lmp.empty() ? 0.0 : result.lmp.front();
  report.congestion_component.reserve(result.lmp.size());
  for (double lmp : result.lmp)
    report.congestion_component.push_back(lmp - report.reference_price);

  for (int g = 0; g < grid.num_generators(); ++g) {
    const Generator& gen = grid.generator(g);
    const double dispatch = result.dispatch_mw[static_cast<std::size_t>(g)];
    if (dispatch >= gen.capacity_mw - tol && dispatch > tol) {
      report.binding.push_back({BindingConstraint::Kind::kGeneratorLimit, g,
                                dispatch});
    }
  }
  for (int l = 0; l < grid.num_lines(); ++l) {
    const Line& line = grid.line(l);
    if (line.limit_mw <= 0.0) continue;
    const double flow =
        std::abs(result.flow_mw[static_cast<std::size_t>(l)]);
    if (flow >= line.limit_mw - tol) {
      report.binding.push_back({BindingConstraint::Kind::kLineLimit, l, flow});
    }
  }
  return report;
}

}  // namespace billcap::market
