#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <span>
#include <vector>

#include "market/dcopf.hpp"
#include "market/grid.hpp"
#include "market/pricing_policy.hpp"

namespace billcap::market {

/// Knobs of the bounded fixed-point iteration that closes the market loop
/// (allocation -> nodal demand -> LMPs -> step curves -> allocation). All
/// defaults are the ones bench/market_loop archives.
struct ClosedLoopOptions {
  /// Fraction of each site's physical draw fed back into its bus's nodal
  /// demand. 1.0 = the paper's price-maker world; > 1 models a fleet whose
  /// co-located tenants follow the same price signal (the destabilizing
  /// regime the oscillation machinery exists for).
  double feedback_gain = 1.0;
  /// Fixed-point iteration cap per hour; hitting it without convergence
  /// classifies the hour kCouplerDiverged.
  std::size_t max_iters = 12;
  /// Converged when no site's physical draw moved more than this (MW)
  /// between consecutive iterates.
  double epsilon_mw = 0.25;
  /// LMP step-collapse tolerance when re-deriving local curves ($/MWh).
  double price_tol = 0.05;
  /// Own-draw sweep granularity of the local curve re-derivation (MW).
  double sweep_step_mw = 2.0;
  /// Rung >= 1: blend freshly derived curve prices toward the previous
  /// iterate's curve (new = alpha * fresh + (1 - alpha) * previous).
  double smoothing_alpha = 0.5;
  /// Rung >= 2: per-iteration cap on each site's fed-back draw move (MW),
  /// halved every iteration so the damped feedback signal is forced to
  /// settle within ~log2(cap/eps) iterates.
  double trust_region_mw = 16.0;
  /// Rung 3: a plan that powers up a previously idle site is kept only if
  /// it beats the stay-put plan's predicted cost by this fraction.
  double hysteresis_frac = 0.02;
};

/// Deterministic cycle detector over the fixed-point iterates: a sliding
/// window of recent vectors (L-inf metric). Fires when the latest iterate
/// closes a period-k cycle (k >= 2) that is *not* plain convergence — the
/// consecutive delta must still exceed the tolerance, so a settling
/// sequence (period-1) and a slow monotone drift never fire.
class OscillationDetector {
 public:
  explicit OscillationDetector(std::size_t window = 8, double tol_mw = 0.5);

  /// Pushes the next iterate; returns true when it completes a period-k
  /// cycle (2 <= k <= window/2) observed over two full periods.
  bool push(std::span<const double> iterate);

  /// Detected cycle length of the last firing push (0 = none yet).
  std::size_t period() const noexcept { return period_; }

  void reset() noexcept;

 private:
  std::size_t window_;
  double tol_;
  std::size_t period_ = 0;
  std::deque<std::vector<double>> recent_;
};

/// The damping ladder: one rung per hazard response, escalated one rung per
/// troubled hour and de-escalated one rung only after a streak of clean
/// hours (hysteresis, mirroring the serve admission ladder).
///   rung 0 — undamped fixed point
///   rung 1 — + LMP smoothing (ClosedLoopOptions::smoothing_alpha)
///   rung 2 — + trust-region cap on per-iteration feedback moves
///   rung 3 — + hysteresis on powering up idle sites
class DampingLadder {
 public:
  static constexpr std::size_t kMaxRung = 3;

  explicit DampingLadder(std::size_t deescalate_after = 3);

  std::size_t rung() const noexcept { return rung_; }

  /// Feeds one finished hour's verdict: troubled hours step the ladder up
  /// one rung immediately; `deescalate_after` consecutive clean hours step
  /// it down one.
  void on_hour(bool troubled) noexcept;

  /// Checkpoint support.
  struct State {
    std::size_t rung = 0;
    std::size_t clean_streak = 0;
  };
  State snapshot() const noexcept { return {rung_, clean_streak_}; }
  void restore(const State& state) noexcept {
    rung_ = state.rung;
    clean_streak_ = state.clean_streak;
  }

 private:
  std::size_t deescalate_after_;
  std::size_t rung_ = 0;
  std::size_t clean_streak_ = 0;
};

/// Grid-side hazards resolved for one hour (from the FaultInjector's
/// TransmissionLineOutage / BackgroundDemandShock / CongestionSpike kinds).
/// Empty vectors mean the nominal grid.
struct CoupledHourFaults {
  std::vector<std::uint8_t> line_out;   ///< per line; 1 = removed this hour
  std::vector<double> line_limit_factor;  ///< per line thermal derate (1 = nominal)
  std::vector<double> bus_demand_multiplier;  ///< per bus background scale

  bool nominal() const noexcept;
};

/// The physical side of the closed loop: a grid whose load buses host the
/// data centers. Solves the hour's DC-OPF with the fleet's draw added to
/// nodal demand and re-derives each site's *local* step curve by sweeping
/// that site's own draw with every other site held fixed — the price
/// response the controller re-decides against.
class CoupledMarket {
 public:
  /// `site_buses[i]` is the grid bus of site i.
  CoupledMarket(Grid grid, std::vector<int> site_buses);

  /// The paper's instance: the PJM five-bus grid with the three data
  /// centers on its load buses B, C, D.
  static CoupledMarket paper();

  std::size_t num_sites() const noexcept { return site_buses_.size(); }
  const Grid& grid() const noexcept { return grid_; }
  const std::vector<int>& site_buses() const noexcept { return site_buses_; }

  /// OPF at the operating point: bus load = background (scaled by any
  /// BackgroundDemandShock) + feedback_gain * site draw, under the hour's
  /// line outages / congestion derates. `faults` may be null (nominal).
  DcOpfResult solve_at(std::span<const double> site_power_mw,
                       std::span<const double> background_mw,
                       double feedback_gain,
                       const CoupledHourFaults* faults) const;

  /// Re-derives one step curve per site around the operating point:
  /// site i's own draw is swept over [0, sweep_cap_mw[i]] while the other
  /// sites stay at `site_power_mw`, and the LMP-vs-draw series collapses
  /// into a PricingPolicy exactly as the static derivation does. The
  /// returned thresholds are expressed over the site's *total* locational
  /// consumption p + billing_base_mw[i], so PricingPolicy::cost_for keeps
  /// its contract when the capper passes that same demand.
  ///
  /// Throws std::runtime_error if the OPF is infeasible anywhere in a
  /// sweep (load shed beyond the grid's capability).
  std::vector<PricingPolicy> derive_local_policies(
      std::span<const double> site_power_mw,
      std::span<const double> background_mw,
      std::span<const double> billing_base_mw,
      std::span<const double> sweep_cap_mw, const ClosedLoopOptions& options,
      const CoupledHourFaults* faults) const;

 private:
  /// Grid with the hour's line outages removed and congestion derates
  /// applied; returns the nominal grid when `faults` is null/nominal.
  Grid faulted_grid(const CoupledHourFaults* faults) const;

  Grid grid_;
  std::vector<int> site_buses_;
};

/// Rung-1 damping: a copy of `fresh` whose level prices are blended toward
/// `previous`'s price at the same consumption level
/// (alpha * fresh + (1 - alpha) * previous). Thresholds are kept from
/// `fresh`.
PricingPolicy smooth_policy(const PricingPolicy& fresh,
                            const PricingPolicy& previous, double alpha);

}  // namespace billcap::market
