#include "market/pjm5.hpp"

namespace billcap::market {

Grid pjm5_grid() {
  Grid grid;
  const int a = grid.add_bus("A");
  const int b = grid.add_bus("B");
  const int c = grid.add_bus("C");
  const int d = grid.add_bus("D");
  const int e = grid.add_bus("E");

  // Reactances (p.u.) from the canonical five-bus data; only the E-D line
  // carries a binding 240 MW thermal limit in the base case.
  grid.add_line("A-B", a, b, 0.0281);
  grid.add_line("A-D", a, d, 0.0304);
  grid.add_line("A-E", a, e, 0.0064);
  grid.add_line("B-C", b, c, 0.0108);
  grid.add_line("C-D", c, d, 0.0297);
  grid.add_line("D-E", d, e, 0.0297, 240.0);

  grid.add_generator("Alta", a, 110.0, 14.0);
  grid.add_generator("ParkCity", a, 100.0, 15.0);
  grid.add_generator("Solitude", c, 520.0, 30.0);
  grid.add_generator("Sundance", d, 200.0, 35.0);
  grid.add_generator("Brighton", e, 600.0, 10.0);
  return grid;
}

std::vector<int> pjm5_load_buses() { return {1, 2, 3}; }

std::vector<double> pjm5_loads(double system_load_mw) {
  std::vector<double> loads(5, 0.0);
  const double share = system_load_mw / 3.0;
  for (int bus : pjm5_load_buses()) loads[static_cast<std::size_t>(bus)] = share;
  return loads;
}

}  // namespace billcap::market
