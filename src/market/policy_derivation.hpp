#pragma once

#include <vector>

#include "market/grid.hpp"
#include "market/pricing_policy.hpp"

namespace billcap::market {

/// Derives locational step pricing policies from first principles: sweeps
/// the total system load from ~0 to `max_system_load_mw` in `step_mw`
/// increments (load uniformly distributed over `load_buses`), solves the DC
/// optimal power flow at each point, and converts each load bus's
/// LMP-vs-local-load curve into a step PricingPolicy. Consecutive sweep
/// points whose LMP differs by less than `price_tol` $/MWh are merged into
/// one level.
///
/// This reproduces how Figure 1 was constructed from the PJM five-bus
/// system: price levels appear exactly where a generator or line constraint
/// becomes binding. Throws std::runtime_error if the OPF is infeasible
/// anywhere in the sweep (load beyond generation capacity).
std::vector<PricingPolicy> derive_policies_from_opf(
    const Grid& grid, const std::vector<int>& load_buses,
    double max_system_load_mw, double step_mw = 2.0, double price_tol = 0.05);

}  // namespace billcap::market
