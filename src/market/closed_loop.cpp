#include "market/closed_loop.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>

#include "market/pjm5.hpp"

namespace billcap::market {

namespace {

/// L-inf distance between two iterates; mismatched sizes are maximally far
/// (never part of a cycle).
double linf(std::span<const double> a, std::span<const double> b) noexcept {
  if (a.size() != b.size()) return std::numeric_limits<double>::infinity();
  double d = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i)
    d = std::max(d, std::abs(a[i] - b[i]));
  return d;
}

}  // namespace

OscillationDetector::OscillationDetector(std::size_t window, double tol_mw)
    : window_(std::max<std::size_t>(4, window)), tol_(tol_mw) {}

bool OscillationDetector::push(std::span<const double> iterate) {
  recent_.emplace_back(iterate.begin(), iterate.end());
  if (recent_.size() > window_) recent_.pop_front();
  period_ = 0;

  const std::size_t n = recent_.size();
  if (n < 4) return false;
  // A settling sequence must not fire: if the latest step is already within
  // tolerance the iteration is converging, not cycling.
  if (linf(recent_[n - 1], recent_[n - 2]) <= tol_) return false;

  for (std::size_t k = 2; 2 * k <= n; ++k) {
    bool cycle = true;
    // Two full periods: the last k entries must match the k before them.
    for (std::size_t j = 0; j < k && cycle; ++j)
      cycle = linf(recent_[n - 1 - j], recent_[n - 1 - j - k]) <= tol_;
    if (cycle) {
      period_ = k;
      return true;
    }
  }
  return false;
}

void OscillationDetector::reset() noexcept {
  recent_.clear();
  period_ = 0;
}

DampingLadder::DampingLadder(std::size_t deescalate_after)
    : deescalate_after_(std::max<std::size_t>(1, deescalate_after)) {}

void DampingLadder::on_hour(bool troubled) noexcept {
  if (troubled) {
    rung_ = std::min(kMaxRung, rung_ + 1);
    clean_streak_ = 0;
    return;
  }
  if (rung_ == 0) return;
  if (++clean_streak_ >= deescalate_after_) {
    --rung_;
    clean_streak_ = 0;
  }
}

bool CoupledHourFaults::nominal() const noexcept {
  for (std::uint8_t out : line_out)
    if (out) return false;
  for (double f : line_limit_factor)
    if (f != 1.0) return false;
  for (double m : bus_demand_multiplier)
    if (m != 1.0) return false;
  return true;
}

CoupledMarket::CoupledMarket(Grid grid, std::vector<int> site_buses)
    : grid_(std::move(grid)), site_buses_(std::move(site_buses)) {
  for (int bus : site_buses_)
    if (bus < 0 || bus >= grid_.num_buses())
      throw std::invalid_argument("CoupledMarket: site bus out of range");
}

CoupledMarket CoupledMarket::paper() {
  return CoupledMarket(pjm5_grid(), pjm5_load_buses());
}

Grid CoupledMarket::faulted_grid(const CoupledHourFaults* faults) const {
  if (faults == nullptr || faults->nominal()) return grid_;
  Grid out;
  for (int b = 0; b < grid_.num_buses(); ++b) out.add_bus(grid_.bus_name(b));
  for (int l = 0; l < grid_.num_lines(); ++l) {
    const std::size_t li = static_cast<std::size_t>(l);
    if (li < faults->line_out.size() && faults->line_out[li]) continue;
    const Line& line = grid_.line(l);
    double limit = line.limit_mw;
    // A derated line with no nominal limit stays unlimited (limit <= 0 is
    // the "no thermal constraint" convention, not a zero-MW line).
    if (limit > 0.0 && li < faults->line_limit_factor.size())
      limit *= std::max(0.0, faults->line_limit_factor[li]);
    out.add_line(line.name, line.from_bus, line.to_bus, line.reactance, limit);
  }
  for (const Generator& g : grid_.generators())
    out.add_generator(g.name, g.bus, g.capacity_mw, g.marginal_cost);
  return out;
}

DcOpfResult CoupledMarket::solve_at(std::span<const double> site_power_mw,
                                    std::span<const double> background_mw,
                                    double feedback_gain,
                                    const CoupledHourFaults* faults) const {
  if (site_power_mw.size() != site_buses_.size() ||
      background_mw.size() != site_buses_.size())
    throw std::invalid_argument("CoupledMarket::solve_at: size mismatch");
  const Grid working = faulted_grid(faults);
  std::vector<double> loads(static_cast<std::size_t>(working.num_buses()), 0.0);
  for (std::size_t i = 0; i < site_buses_.size(); ++i) {
    const std::size_t bus = static_cast<std::size_t>(site_buses_[i]);
    double mult = 1.0;
    if (faults != nullptr && bus < faults->bus_demand_multiplier.size())
      mult = faults->bus_demand_multiplier[bus];
    loads[bus] += background_mw[i] * mult + feedback_gain * site_power_mw[i];
  }
  return solve_dcopf(working, loads);
}

std::vector<PricingPolicy> CoupledMarket::derive_local_policies(
    std::span<const double> site_power_mw, std::span<const double> background_mw,
    std::span<const double> billing_base_mw, std::span<const double> sweep_cap_mw,
    const ClosedLoopOptions& options, const CoupledHourFaults* faults) const {
  const std::size_t n = site_buses_.size();
  if (site_power_mw.size() != n || background_mw.size() != n ||
      billing_base_mw.size() != n || sweep_cap_mw.size() != n)
    throw std::invalid_argument(
        "CoupledMarket::derive_local_policies: size mismatch");
  const double step = std::max(0.1, options.sweep_step_mw);

  std::vector<PricingPolicy> policies;
  policies.reserve(n);
  std::vector<double> point(site_power_mw.begin(), site_power_mw.end());
  for (std::size_t i = 0; i < n; ++i) {
    const double kept = point[i];
    std::vector<double> thresholds;
    std::vector<double> prices;
    // Own-draw sweep with the other sites pinned at the operating point:
    // the local price response the controller's next decision sees.
    for (double p = 0.0; p <= sweep_cap_mw[i] + 1e-9; p += step) {
      point[i] = p;
      const DcOpfResult opf =
          solve_at(point, background_mw, options.feedback_gain, faults);
      if (!opf.ok())
        throw std::runtime_error(
            "CoupledMarket: OPF infeasible sweeping site " + std::to_string(i) +
            " at draw " + std::to_string(p) + " MW");
      const double lmp = opf.lmp[static_cast<std::size_t>(site_buses_[i])];
      if (thresholds.empty()) {
        thresholds.push_back(0.0);
        prices.push_back(lmp);
      } else if (std::abs(lmp - prices.back()) > options.price_tol) {
        thresholds.push_back(billing_base_mw[i] + p);
        prices.push_back(lmp);
      }
    }
    point[i] = kept;
    policies.emplace_back(std::move(thresholds), std::move(prices));
  }
  return policies;
}

PricingPolicy smooth_policy(const PricingPolicy& fresh,
                            const PricingPolicy& previous, double alpha) {
  const double a = std::clamp(alpha, 0.0, 1.0);
  std::vector<double> thresholds = fresh.thresholds_mw();
  std::vector<double> prices = fresh.prices_per_mwh();
  for (std::size_t k = 0; k < prices.size(); ++k)
    prices[k] = a * prices[k] + (1.0 - a) * previous.price_at(thresholds[k]);
  return PricingPolicy(std::move(thresholds), std::move(prices));
}

}  // namespace billcap::market
