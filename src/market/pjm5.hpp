#pragma once

#include <vector>

#include "market/grid.hpp"

namespace billcap::market {

/// The PJM five-bus test system (Li & Bo [6], [13]) the paper derives its
/// locational pricing policies from (Figure 1): buses A..E; five generators
/// — Alta and Park City at A, Solitude at C, Sundance at D, Brighton at E —
/// and three uniformly-loaded consumers at B, C and D. Brighton is the
/// cheap 600 MW unit whose capacity limit causes the first LMP step as
/// system load grows; the 240 MW E-D line limit causes the next.
Grid pjm5_grid();

/// Bus indices of the three load locations B, C, D in pjm5_grid().
std::vector<int> pjm5_load_buses();

/// Per-bus load vector for a given total system load, uniformly distributed
/// over the three consumers (Section II).
std::vector<double> pjm5_loads(double system_load_mw);

}  // namespace billcap::market
