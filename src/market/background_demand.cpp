#include "market/background_demand.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "util/calendar.hpp"
#include "util/rng.hpp"

namespace billcap::market {

std::vector<double> generate_background_demand(
    const BackgroundDemandParams& params, std::size_t hours,
    std::uint64_t seed) {
  if (params.base_mw <= 0.0 || params.diurnal_amplitude_mw < 0.0)
    throw std::invalid_argument("generate_background_demand: bad levels");
  if (params.weekend_drop < 0.0 || params.weekend_drop >= 1.0)
    throw std::invalid_argument(
        "generate_background_demand: weekend_drop in [0,1) required");

  util::Rng rng(seed);
  std::vector<double> demand;
  demand.reserve(hours);
  for (std::size_t h = 0; h < hours; ++h) {
    const double hour =
        static_cast<double>(util::hour_of_day(h));
    // Diurnal shape: a cosine dipping overnight, peaking at peak_hour.
    const double phase =
        2.0 * std::numbers::pi * (hour - params.peak_hour) / 24.0;
    const double diurnal =
        params.diurnal_amplitude_mw * 0.5 * (1.0 + std::cos(phase));
    double level = params.base_mw + diurnal;
    if (util::is_weekend(h)) level *= 1.0 - params.weekend_drop;
    level *= rng.lognormal(0.0, params.noise_sigma);
    demand.push_back(level);
  }
  return demand;
}

std::vector<BackgroundDemandParams> paper_background_params() {
  // Calibrated so that each location idles one price level below a
  // threshold at night and crosses one to two thresholds during the day
  // even before the data center's own draw is added.
  // Location B carries the heaviest non-data-center load (its price steps
  // bite first), D the lightest — the asymmetry that makes naive
  // lowest-price beliefs costly.
  return {
      {.base_mw = 228.0, .diurnal_amplitude_mw = 50.0, .weekend_drop = 0.10,
       .noise_sigma = 0.015, .peak_hour = 15.0},
      {.base_mw = 182.0, .diurnal_amplitude_mw = 70.0, .weekend_drop = 0.14,
       .noise_sigma = 0.020, .peak_hour = 16.0},
      {.base_mw = 172.0, .diurnal_amplitude_mw = 55.0, .weekend_drop = 0.12,
       .noise_sigma = 0.018, .peak_hour = 14.0},
  };
}

std::vector<std::vector<double>> paper_background_demand(std::size_t hours,
                                                         std::uint64_t seed) {
  util::Rng root(seed);
  std::vector<std::vector<double>> series;
  for (const auto& params : paper_background_params())
    series.push_back(generate_background_demand(params, hours, root()));
  return series;
}

}  // namespace billcap::market
