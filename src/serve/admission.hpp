#pragma once

#include <cstddef>

namespace billcap::serve {

/// The deterministic degradation ladder, cheapest casualty first:
/// everything -> shed ordinary (water-filling) -> premium-only standby.
enum class AdmissionLevel {
  kAdmitAll = 0,      ///< serve both classes to plan capacity
  kShedOrdinary = 1,  ///< ordinary throttled by greedy water-filling
  kPremiumOnly = 2,   ///< the PR-3 standby chunk: premium only, no MILP
};
const char* to_string(AdmissionLevel level) noexcept;

/// Ladder thresholds. Enter/exit pairs are deliberately far apart
/// (hysteresis): a queue hovering at one threshold must not flap the
/// ladder every tick.
struct AdmissionConfig {
  double shed_enter_fill = 0.70;  ///< ordinary fill that starts shedding
  double shed_exit_fill = 0.30;   ///< ordinary fill that ends it
  double standby_enter_fill = 0.95;  ///< premium fill that forces standby
  double standby_exit_fill = 0.50;   ///< premium fill that releases it
  /// Re-plan staleness (ticks since the active plan was adopted) tolerated
  /// before the ladder treats the plan as unreliable and sheds.
  std::size_t stale_ticks_tolerated = 12;
};

/// The pressure signals one tick feeds the ladder.
struct AdmissionInputs {
  double premium_fill = 0.0;   ///< premium queue depth / capacity
  double ordinary_fill = 0.0;  ///< ordinary queue depth / capacity
  std::size_t plan_stale_ticks = 0;
  bool breaker_open = false;  ///< re-plan breaker not closed
};

/// The admission controller: maps queue depth and re-plan staleness onto
/// the degradation ladder. Escalation is immediate (overload waits for no
/// one); de-escalation is hysteretic and one rung per tick, so recovery is
/// gradual and the ladder never oscillates. Purely arithmetic — no clocks,
/// no randomness — so a resumed serve loop re-derives the identical
/// ladder trajectory.
class AdmissionController {
 public:
  /// `pin_premium_only` is the supervisor's standby escalation: the ladder
  /// is fixed at kPremiumOnly regardless of pressure.
  explicit AdmissionController(AdmissionConfig config,
                               bool pin_premium_only = false);

  AdmissionLevel level() const noexcept { return level_; }

  /// Feeds one tick's pressure; returns the (possibly new) level.
  AdmissionLevel update(const AdmissionInputs& inputs) noexcept;

  /// Checkpoint support.
  void restore(AdmissionLevel level) noexcept;

 private:
  AdmissionConfig config_;
  bool pinned_ = false;
  AdmissionLevel level_ = AdmissionLevel::kAdmitAll;
};

}  // namespace billcap::serve
