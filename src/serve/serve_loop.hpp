#pragma once

#include <csignal>
#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "core/simulator.hpp"
#include "serve/admission.hpp"
#include "serve/health.hpp"
#include "serve/ingest.hpp"
#include "serve/replan.hpp"

namespace billcap::serve {

/// Knobs of the serving daemon. Everything that changes decisions is mixed
/// into the serve checkpoint digest; `standby` and `die_on_kill` are
/// deliberately excluded (a standby attempt must be able to pick up the
/// primary's checkpoint, exactly like the batch loop).
struct ServeConfig {
  /// Sub-hour reaction granularity: the hour is split into this many
  /// ticks; arrivals, service, billing and checkpoints are per tick.
  std::size_t ticks_per_hour = 6;
  /// Hours to serve (0 = the whole evaluation month).
  std::size_t horizon_hours = 0;

  /// Queue capacities, in units of the trace's crowd-free mean tick
  /// arrivals of each class. 4.0 = the queue absorbs four average ticks of
  /// backlog before the door drops.
  double premium_queue_ticks = 4.0;
  double ordinary_queue_ticks = 4.0;

  /// Bounded mid-hour price-revision queue and its per-tick drain rate.
  std::size_t feed_queue_capacity = 16;
  std::size_t feed_updates_per_tick = 1;

  AdmissionConfig admission;
  BreakerConfig breaker;

  /// Deterministic per-tick re-plan deadline: a branch-and-bound node cap
  /// (<= 0 keeps the configured MILP limit). Preferred over wall-clock so
  /// breaker trajectories replay bitwise across kill/resume.
  long replan_node_budget = 20000;
  /// Optional wall-clock assist per re-plan in ms (0 = off). Turning it on
  /// trades bitwise resume for a hard real-time bound.
  double replan_deadline_ms = 0.0;

  /// Injected daemon deaths: the process dies at these ticks, before the
  /// tick's checkpoint commits (zero forward progress for that tick; the
  /// resume recomputes it). Each entry fires once — the checkpoint records
  /// how many were consumed. Requires a checkpoint path.
  std::vector<std::size_t> kill_at_ticks;

  /// Standby rung (the supervisor's escalation target): admission pinned
  /// to premium-only, no MILP re-plans, injected kills do not fire.
  bool standby = false;
};

/// Everything recorded about one tick.
struct TickRecord {
  std::size_t tick = 0;
  std::size_t hour = 0;
  double premium_arrivals = 0.0;
  double ordinary_arrivals = 0.0;
  double dropped_premium = 0.0;   ///< at the door, this tick
  double dropped_ordinary = 0.0;
  double served_premium = 0.0;
  double served_ordinary = 0.0;
  double premium_depth = 0.0;     ///< backlog after serving
  double ordinary_depth = 0.0;
  double cost = 0.0;              ///< ground-truth $ billed this tick
  double hour_budget = 0.0;
  double crowd_multiplier = 1.0;
  std::size_t feed_updates = 0;   ///< revisions processed this tick
  bool replanned = false;
  bool replan_degraded = false;
  bool plan_held = false;         ///< a wanted re-plan was breaker-blocked
  bool stale = false;             ///< hour planned on a stale market feed
  AdmissionLevel admission = AdmissionLevel::kAdmitAll;
  BreakerState breaker = BreakerState::kClosed;
  ServeHealth health = ServeHealth::kOk;
};

/// Aggregates plus the bounded health transition log. The aggregate fields
/// are checkpoint-persisted bitwise, so a killed-and-resumed serve run
/// finishes with byte-identical numbers; `ticks_this_attempt` holds only
/// the current attempt's records (memory stays bounded by attempt length,
/// not by uptime).
struct ServeReport {
  std::size_t ticks_committed = 0;  ///< total, across all attempts
  std::size_t ticks_per_hour = 0;

  double total_premium_arrivals = 0.0;
  double total_ordinary_arrivals = 0.0;
  double total_served_premium = 0.0;
  double total_served_ordinary = 0.0;
  double dropped_premium = 0.0;
  double dropped_ordinary = 0.0;
  double total_cost = 0.0;
  double max_premium_depth = 0.0;
  double max_ordinary_depth = 0.0;
  double final_premium_depth = 0.0;
  double final_ordinary_depth = 0.0;
  double premium_queue_capacity = 0.0;
  double ordinary_queue_capacity = 0.0;

  std::size_t feed_updates_seen = 0;
  std::size_t feed_updates_dropped = 0;
  std::size_t replans = 0;
  std::size_t degraded_replans = 0;
  /// Hour boundaries whose coupled planning curves actually derived (an
  /// infeasible grid sweep falls back to static curves and is not counted).
  /// Always 0 when closed-loop coupling is off.
  std::size_t coupled_refreshes = 0;
  std::size_t breaker_trips = 0;
  std::size_t shed_ticks = 0;
  std::size_t standby_ticks = 0;
  std::size_t degraded_ticks = 0;

  ServeHealth final_health = ServeHealth::kOk;
  std::vector<HealthTransition> health_history;  ///< bounded tail
  std::size_t health_transitions = 0;            ///< total incl. evicted

  std::vector<TickRecord> ticks_this_attempt;

  /// The QoS contract the soak asserts: nothing premium was dropped at the
  /// door and no premium backlog was left stranded at the end.
  bool premium_qos_ok() const noexcept;
  double premium_throughput_ratio() const noexcept;
  double ordinary_throughput_ratio() const noexcept;
};

/// One serve attempt's outcome (mirrors Simulator::ResumableOutcome).
struct ServeOutcome {
  ServeReport report;
  bool crashed = false;  ///< an injected kill fired (resume to continue)
  std::size_t crash_tick = 0;
  bool stopped = false;  ///< stop flag / max_ticks: checkpoint consistent
  std::size_t resumed_from_tick = 0;
  std::size_t resumed_generation = 0;
  std::vector<std::string> resume_skipped;
};

/// The serving daemon's deterministic core: a tick loop over the bounded
/// ingest plane, the admission ladder, the breaker-guarded re-plan engine
/// and tick-granular durable checkpoints. Built on a Simulator for the
/// world model (sites, policies, trace, demand, budgeter, fault plan) —
/// the daemon is the batch loop's production-shaped sibling, not a fork.
class ServeLoop {
 public:
  ServeLoop(const core::Simulator& sim, ServeConfig config);

  const ServeConfig& config() const noexcept { return config_; }
  std::size_t total_ticks() const noexcept { return total_ticks_; }
  double premium_queue_capacity() const noexcept { return premium_cap_; }
  double ordinary_queue_capacity() const noexcept { return ordinary_cap_; }
  /// Digest guarding serve checkpoints against config/plan drift.
  std::uint64_t digest() const noexcept { return digest_; }

  struct Controls {
    std::size_t keep_generations = 1;
    /// Stop gracefully after committing this many ticks this attempt
    /// (0 = no limit). The supervisor bounds standby attempts with this.
    std::size_t max_ticks = 0;
    const volatile std::sig_atomic_t* stop_flag = nullptr;
  };

  /// Runs (or resumes) the daemon. An empty `checkpoint_path` runs purely
  /// in memory — no durability, and injected kills are rejected (they
  /// would be unrecoverable). `on_tick` fires just BEFORE each tick's
  /// checkpoint commits, so a streamed CSV can never end up one committed
  /// row short (an uncommitted extra row is truncated on resume).
  ServeOutcome run(const std::string& checkpoint_path, bool resume,
                   const std::function<void(const TickRecord&)>& on_tick = {})
      const;
  ServeOutcome run(const std::string& checkpoint_path, bool resume,
                   const std::function<void(const TickRecord&)>& on_tick,
                   const Controls& controls) const;

 private:
  const core::Simulator& sim_;
  ServeConfig config_;
  std::size_t horizon_hours_ = 0;
  std::size_t total_ticks_ = 0;
  double premium_cap_ = 0.0;
  double ordinary_cap_ = 0.0;
  std::uint64_t digest_ = 0;
};

}  // namespace billcap::serve
