#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "serve/admission.hpp"
#include "serve/replan.hpp"

namespace billcap::serve {

/// The one-word liveness summary the supervisor and tests assert on.
/// Ordered worst-last so classification can take the max of the active
/// conditions.
enum class ServeHealth {
  kOk = 0,           ///< both classes served, plan fresh, breaker closed
  kDegraded = 1,     ///< serving, but the plan is stale or ladder-produced
  kShedding = 2,     ///< ordinary load is being shed (water-filling)
  kBreakerOpen = 3,  ///< re-plan circuit breaker is open / probing
  kStandby = 4,      ///< premium-only standby rung
};
const char* to_string(ServeHealth health) noexcept;

/// Derives the health word from the subsystems' states. `plan_unreliable`
/// is "the active plan is degraded or past its staleness tolerance".
ServeHealth classify_health(AdmissionLevel admission, BreakerState breaker,
                            bool plan_unreliable) noexcept;

/// One recorded state change.
struct HealthTransition {
  std::size_t tick = 0;
  ServeHealth from = ServeHealth::kOk;
  ServeHealth to = ServeHealth::kOk;
};

/// Tracks the current health word and a *bounded* transition history (the
/// journal must not grow with uptime): the newest kMaxHistory transitions
/// are kept, older ones are evicted but still counted. The history encodes
/// to a single journal value and decodes bit-identically, so a resumed
/// daemon continues the same transition log.
class HealthTracker {
 public:
  static constexpr std::size_t kMaxHistory = 64;

  explicit HealthTracker(ServeHealth initial = ServeHealth::kOk);

  ServeHealth current() const noexcept { return current_; }
  const std::vector<HealthTransition>& history() const noexcept {
    return history_;
  }
  /// Transitions ever observed, including evicted ones.
  std::size_t transitions_total() const noexcept { return total_; }

  /// Observes this tick's health; records a transition when it changed.
  /// Returns true exactly when a transition was recorded.
  bool observe(ServeHealth next, std::size_t tick);

  /// "tick:from:to tick:from:to ..." — one journal value.
  std::string encode_history() const;

  /// Rebuilds a tracker from checkpointed state. Throws std::runtime_error
  /// on a malformed encoding (a corrupted journal must not half-load).
  static HealthTracker decode(ServeHealth current, std::size_t total,
                              const std::string& encoded);

 private:
  ServeHealth current_;
  std::vector<HealthTransition> history_;
  std::size_t total_ = 0;
};

}  // namespace billcap::serve
