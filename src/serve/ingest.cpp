#include "serve/ingest.hpp"

#include <algorithm>
#include <stdexcept>

namespace billcap::serve {

BoundedQueue::BoundedQueue(double capacity) : capacity_(capacity) {
  if (!(capacity > 0.0))
    throw std::invalid_argument("BoundedQueue: capacity must be > 0");
}

double BoundedQueue::offer(double amount) noexcept {
  if (amount <= 0.0) return 0.0;
  const double accepted = std::min(amount, capacity_ - depth_);
  depth_ += accepted;
  dropped_ += amount - accepted;
  return accepted;
}

double BoundedQueue::take(double amount) noexcept {
  if (amount <= 0.0) return 0.0;
  const double taken = std::min(amount, depth_);
  depth_ -= taken;
  return taken;
}

void BoundedQueue::restore(double depth, double dropped) noexcept {
  depth_ = std::clamp(depth, 0.0, capacity_);
  dropped_ = std::max(dropped, 0.0);
}

RequestFeed::RequestFeed(const workload::Trace& trace,
                         const core::FaultInjector& injector,
                         double premium_share, std::size_t ticks_per_hour)
    : trace_(trace),
      injector_(injector),
      split_(premium_share),
      ticks_per_hour_(ticks_per_hour) {
  if (ticks_per_hour == 0)
    throw std::invalid_argument("RequestFeed: ticks_per_hour must be >= 1");
}

RequestFeed::TickArrivals RequestFeed::at(std::size_t tick) const {
  const std::size_t hour = tick / ticks_per_hour_;
  const double crowd = injector_.arrival_multiplier(hour);
  const double per_tick = trace_.at(hour) * crowd /
                          static_cast<double>(ticks_per_hour_);
  TickArrivals arrivals;
  arrivals.premium = split_.premium(per_tick);
  arrivals.ordinary = split_.ordinary(per_tick);
  arrivals.crowd_multiplier = crowd;
  return arrivals;
}

double RequestFeed::mean_tick_arrivals() const noexcept {
  return trace_.mean() / static_cast<double>(ticks_per_hour_);
}

FeedUpdateQueue::FeedUpdateQueue(std::size_t capacity) : capacity_(capacity) {
  if (capacity == 0)
    throw std::invalid_argument("FeedUpdateQueue: capacity must be >= 1");
}

void FeedUpdateQueue::push(std::size_t count) noexcept {
  seen_ += count;
  const std::size_t accepted = std::min(count, capacity_ - pending_);
  pending_ += accepted;
  dropped_ += count - accepted;
}

std::size_t FeedUpdateQueue::drain(std::size_t max_count) noexcept {
  const std::size_t taken = std::min(max_count, pending_);
  pending_ -= taken;
  return taken;
}

void FeedUpdateQueue::restore(std::size_t pending, std::size_t seen,
                              std::size_t dropped) noexcept {
  pending_ = std::min(pending, capacity_);
  seen_ = seen;
  dropped_ = dropped;
}

}  // namespace billcap::serve
