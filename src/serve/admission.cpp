#include "serve/admission.hpp"

#include <stdexcept>

namespace billcap::serve {

const char* to_string(AdmissionLevel level) noexcept {
  switch (level) {
    case AdmissionLevel::kAdmitAll: return "admit-all";
    case AdmissionLevel::kShedOrdinary: return "shed-ordinary";
    case AdmissionLevel::kPremiumOnly: return "premium-only";
  }
  return "unknown";
}

AdmissionController::AdmissionController(AdmissionConfig config,
                                         bool pin_premium_only)
    : config_(config), pinned_(pin_premium_only) {
  if (config_.shed_exit_fill >= config_.shed_enter_fill ||
      config_.standby_exit_fill >= config_.standby_enter_fill)
    throw std::invalid_argument(
        "AdmissionController: exit thresholds must sit below enter "
        "thresholds (hysteresis)");
  if (pinned_) level_ = AdmissionLevel::kPremiumOnly;
}

AdmissionLevel AdmissionController::update(
    const AdmissionInputs& inputs) noexcept {
  if (pinned_) return level_;

  // The rung the pressure alone calls for. Premium pressure (or ordinary
  // pressure with the re-plan path broken) demands the standby rung;
  // ordinary pressure or an unreliable plan demands shedding.
  AdmissionLevel demanded = AdmissionLevel::kAdmitAll;
  const bool stale = inputs.plan_stale_ticks > config_.stale_ticks_tolerated;
  if (inputs.ordinary_fill >= config_.shed_enter_fill || stale ||
      inputs.breaker_open)
    demanded = AdmissionLevel::kShedOrdinary;
  if (inputs.premium_fill >= config_.standby_enter_fill ||
      (inputs.breaker_open &&
       inputs.ordinary_fill >= config_.standby_enter_fill))
    demanded = AdmissionLevel::kPremiumOnly;

  // Escalation is immediate.
  if (demanded > level_) {
    level_ = demanded;
    return level_;
  }

  // De-escalation: one rung per tick, and only once the *exit* threshold
  // clears (hysteresis keeps the ladder from flapping around one value).
  if (level_ == AdmissionLevel::kPremiumOnly &&
      demanded < AdmissionLevel::kPremiumOnly &&
      inputs.premium_fill <= config_.standby_exit_fill) {
    level_ = AdmissionLevel::kShedOrdinary;
    return level_;
  }
  if (level_ == AdmissionLevel::kShedOrdinary &&
      demanded == AdmissionLevel::kAdmitAll &&
      inputs.ordinary_fill <= config_.shed_exit_fill) {
    level_ = AdmissionLevel::kAdmitAll;
  }
  return level_;
}

void AdmissionController::restore(AdmissionLevel level) noexcept {
  level_ = pinned_ ? AdmissionLevel::kPremiumOnly : level;
}

}  // namespace billcap::serve
