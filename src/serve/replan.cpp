#include "serve/replan.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace billcap::serve {

namespace {

/// Clamps node_budget onto the options the engine's capper will use: the
/// per-tick deadline is a *node* budget so that a re-plan interrupted by a
/// kill replays to the same outcome bit-for-bit on resume.
core::OptimizerOptions budgeted(core::OptimizerOptions options,
                                long node_budget) {
  if (node_budget > 0)
    options.milp.max_nodes =
        std::min(options.milp.max_nodes, node_budget);
  return options;
}

}  // namespace

const char* to_string(BreakerState state) noexcept {
  switch (state) {
    case BreakerState::kClosed: return "closed";
    case BreakerState::kOpen: return "open";
    case BreakerState::kHalfOpen: return "half-open";
  }
  return "unknown";
}

CircuitBreaker::CircuitBreaker(BreakerConfig config) : config_(config) {
  if (config_.trip_after == 0)
    throw std::invalid_argument("CircuitBreaker: trip_after must be >= 1");
  if (config_.cooldown_ticks == 0)
    throw std::invalid_argument("CircuitBreaker: cooldown_ticks must be >= 1");
  if (config_.cooldown_multiplier < 1.0)
    throw std::invalid_argument(
        "CircuitBreaker: cooldown_multiplier must be >= 1");
  current_cooldown_ticks_ = config_.cooldown_ticks;
}

void CircuitBreaker::open() noexcept {
  state_ = BreakerState::kOpen;
  cooldown_remaining_ = current_cooldown_ticks_;
  consecutive_degraded_ = 0;
  ++trips_;
}

bool CircuitBreaker::on_tick() noexcept {
  if (state_ != BreakerState::kOpen) return false;
  if (cooldown_remaining_ > 0) --cooldown_remaining_;
  if (cooldown_remaining_ == 0) {
    state_ = BreakerState::kHalfOpen;
    return true;
  }
  return false;
}

bool CircuitBreaker::on_replan(bool degraded) noexcept {
  if (state_ == BreakerState::kHalfOpen) {
    if (degraded) {
      // Failed probe: re-open for an exponentially longer cooldown.
      const double next = static_cast<double>(current_cooldown_ticks_) *
                          config_.cooldown_multiplier;
      current_cooldown_ticks_ = std::min(
          config_.cooldown_max_ticks,
          static_cast<std::size_t>(std::llround(next)));
      open();
    } else {
      // Clean probe: close and forget the escalated cooldown.
      state_ = BreakerState::kClosed;
      current_cooldown_ticks_ = config_.cooldown_ticks;
      consecutive_degraded_ = 0;
    }
    return true;
  }
  if (state_ != BreakerState::kClosed) return false;
  if (!degraded) {
    consecutive_degraded_ = 0;
    return false;
  }
  if (++consecutive_degraded_ >= config_.trip_after) {
    open();
    return true;
  }
  return false;
}

CircuitBreaker::State CircuitBreaker::snapshot() const noexcept {
  State s;
  s.state = state_;
  s.consecutive_degraded = consecutive_degraded_;
  s.cooldown_remaining = cooldown_remaining_;
  s.current_cooldown_ticks = current_cooldown_ticks_;
  s.trips = trips_;
  return s;
}

void CircuitBreaker::restore(const State& state) noexcept {
  state_ = state.state;
  consecutive_degraded_ = state.consecutive_degraded;
  cooldown_remaining_ = state.cooldown_remaining;
  current_cooldown_ticks_ =
      std::max<std::size_t>(1, state.current_cooldown_ticks);
  trips_ = state.trips;
}

ReplanEngine::ReplanEngine(const std::vector<datacenter::DataCenter>& sites,
                           const std::vector<market::PricingPolicy>& policies,
                           core::OptimizerOptions options, long node_budget,
                           double deadline_ms, BreakerConfig breaker)
    : capper_(sites, policies, budgeted(options, node_budget)),
      deadline_ms_(deadline_ms),
      breaker_(breaker) {}

bool ReplanEngine::replan(const Request& request, ActivePlan& plan) {
  if (!breaker_.allows_replan()) return false;

  core::DecideOptions overrides;
  overrides.site_available = request.site_available;
  if (deadline_ms_ > 0.0) overrides.time_limit_ms = deadline_ms_;

  const core::CappingOutcome outcome =
      capper_.decide(request.premium_rate, request.ordinary_rate,
                     request.demand_mw, request.hourly_budget, overrides);
  ++replans_;
  const bool degraded = outcome.degraded;
  if (degraded) ++degraded_replans_;
  breaker_.on_replan(degraded);

  // decide() always returns a servable allocation (its own degradation
  // ladder bottoms out at greedy water-filling), so every executed re-plan
  // replaces the active plan; the breaker decides whether the *next* one
  // gets to run at all.
  plan.valid = true;
  plan.degraded = degraded;
  plan.lambda = outcome.allocation.lambda_vector();
  plan.premium_rate = outcome.served_premium;
  plan.ordinary_rate = outcome.served_ordinary;
  plan.predicted_cost = outcome.allocation.predicted_cost;
  plan.plan_tick = request.tick;
  return true;
}

}  // namespace billcap::serve
